#!/usr/bin/env python3
"""Docs-drift check for the energylint rule registry.

Reads `energylint -rules` output on stdin and a DESIGN.md path as the
single argument, and verifies the two agree: every registered analyzer
has a `### energylint-<name>` section in DESIGN.md § Static analysis,
and every such section names a registered analyzer. Each rule's URL
field points readers at its DESIGN.md anchor, so an undocumented rule
ships a dead link and a leftover section documents behaviour the suite
no longer has — both fail CI here.

Usage:
  go run ./cmd/energylint -rules | python3 scripts/check_lint_docs.py DESIGN.md
"""

import re
import sys

HEADING_RE = re.compile(r"^### energylint-([a-z0-9_]+)\s*$")


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2

    # -rules prints one non-indented "name doc" line per analyzer with
    # the URL on an indented continuation line; the first token of each
    # non-indented line is the registered rule name.
    registered = set()
    for line in sys.stdin:
        if not line.strip() or line[0] in (" ", "\t"):
            continue
        registered.add(line.split()[0])
    if not registered:
        print("check_lint_docs: no rules on stdin (pipe `energylint -rules` in)",
              file=sys.stderr)
        return 2

    documented = set()
    with open(sys.argv[1]) as f:
        for line in f:
            m = HEADING_RE.match(line)
            if m:
                documented.add(m.group(1))

    failed = False
    for name in sorted(registered - documented):
        print(f"check_lint_docs: rule {name!r} is registered but has no "
              f"'### energylint-{name}' section in {sys.argv[1]}")
        failed = True
    for name in sorted(documented - registered):
        print(f"check_lint_docs: {sys.argv[1]} documents 'energylint-{name}' "
              f"but no such rule is registered (stale section?)")
        failed = True
    if failed:
        return 1
    print(f"check_lint_docs: {len(registered)} rules, all documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
