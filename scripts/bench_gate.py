#!/usr/bin/env python3
"""Bench regression gate.

Parses one or more `go test -bench` text outputs, compares every
benchmark that also appears in a checked-in baseline JSON (BENCH_PR*.json)
on ns/op, and fails if any regresses by more than the threshold.
Benchmarks present on only one side are reported and skipped — the gate
compares the intersection, so adding new benchmarks never breaks it.

Baseline entries marked "hotpath": true get a second, stricter check:
any increase in allocs/op fails the gate outright, with no threshold.
ns/op is noisy on shared runners; an allocation count is deterministic,
so a +1 there is a real regression on a path the energylint hotalloc
rule audits (run the benches with -benchmem or the counts parse as 0).
B/op deltas on hotpath benchmarks are printed but do not gate — byte
sizes move with unrelated struct edits; the allocation count is the
contract.

Optionally re-emits the parsed results in the BENCH_PR*.json schema so
the next PR's baseline is one `--emit` away; --hotpath REGEX stamps the
marker onto matching benchmark names at emit time.

Usage:
  go test -run '^$' -bench 'BenchmarkRing' -benchmem ./internal/fleet | tee /tmp/b1.txt
  python3 scripts/bench_gate.py --baseline BENCH_PR9.json /tmp/b1.txt
  python3 scripts/bench_gate.py --baseline BENCH_PR9.json \
      --emit BENCH_PR10.json --pr 10 --hotpath 'CacheGet|MixSeed' \
      --note '...' /tmp/b1.txt /tmp/b2.txt
"""

import argparse
import datetime
import json
import re
import sys

BENCH_RE = re.compile(
    r"^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([\d.]+) ns/op"
    r"(?:\s+(\d+) B/op\s+(\d+) allocs/op)?"
)
META_RE = re.compile(r"^(goos|goarch|cpu): (.+)$")


def parse(paths):
    """Returns ({name: result dict}, {goos/goarch/cpu}). The name has the
    trailing -<GOMAXPROCS> suffix stripped; a name seen more than once
    (e.g. -count=N) keeps its fastest run."""
    results, meta = {}, {}
    for path in paths:
        with open(path) as f:
            for line in f:
                line = line.strip()
                m = META_RE.match(line)
                if m:
                    meta[m.group(1)] = m.group(2).strip()
                    continue
                m = BENCH_RE.match(line)
                if not m:
                    continue
                name = m.group(1)
                r = {
                    "name": name,
                    "iterations": int(m.group(3)),
                    "ns_per_op": float(m.group(4)),
                    "bytes_per_op": int(m.group(5) or 0),
                    "allocs_per_op": int(m.group(6) or 0),
                }
                if name not in results:
                    results[name] = r
                else:
                    # Fastest ns/op, min allocs/bytes: each metric takes
                    # its best observation so one noisy run cannot fail
                    # the strict hotpath allocation gate.
                    prev = results[name]
                    if r["ns_per_op"] < prev["ns_per_op"]:
                        prev["ns_per_op"] = r["ns_per_op"]
                        prev["iterations"] = r["iterations"]
                    prev["bytes_per_op"] = min(prev["bytes_per_op"], r["bytes_per_op"])
                    prev["allocs_per_op"] = min(prev["allocs_per_op"], r["allocs_per_op"])
    return results, meta


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_output", nargs="+", help="go test -bench output files")
    ap.add_argument("--baseline", required=True, help="baseline BENCH_PR*.json")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional ns/op regression (default 0.15)")
    ap.add_argument("--emit", help="write parsed results as a new BENCH_PR*.json")
    ap.add_argument("--hotpath", default="",
                    help="regex over benchmark names; matches are stamped "
                         '"hotpath": true at --emit and gate on allocs/op')
    ap.add_argument("--pr", type=int, help="PR number for --emit")
    ap.add_argument("--note", default="", help="note field for --emit")
    ap.add_argument("--benchtime", default="1s", help="benchtime field for --emit")
    ap.add_argument("--command", default="", help="command field for --emit")
    args = ap.parse_args()

    with open(args.baseline) as f:
        baseline = {r["name"]: r for r in json.load(f)["results"]}
    results, meta = parse(args.bench_output)
    if not results:
        print("bench_gate: no benchmark lines found in input", file=sys.stderr)
        return 2

    failed = False
    compared = 0
    regressions = 0
    max_delta = None
    for name in sorted(baseline):
        if name not in results:
            print(f"  SKIP  {name}: in baseline, not in this run")
            continue
        compared += 1
        old, new = baseline[name]["ns_per_op"], results[name]["ns_per_op"]
        delta = (new - old) / old
        if max_delta is None or delta > max_delta:
            max_delta = delta
        verdict = "ok"
        if delta > args.threshold:
            verdict = "REGRESSION"
            regressions += 1
            failed = True
        print(f"  {verdict:>10}  {name}: {old:g} -> {new:g} ns/op ({delta:+.1%})")
        if baseline[name].get("hotpath"):
            oa = baseline[name].get("allocs_per_op", 0)
            na = results[name]["allocs_per_op"]
            ob = baseline[name].get("bytes_per_op", 0)
            nb = results[name]["bytes_per_op"]
            if na > oa:
                regressions += 1
                failed = True
                print(f"  REGRESSION  {name}: {oa} -> {na} allocs/op "
                      f"(hotpath benchmarks gate on any allocation increase)")
            else:
                print(f"          ok  {name}: {oa} -> {na} allocs/op, "
                      f"{ob} -> {nb} B/op (hotpath)")
    for name in sorted(set(results) - set(baseline)):
        print(f"   NEW  {name}: {results[name]['ns_per_op']:g} ns/op (no baseline)")
    if compared == 0:
        print("bench_gate: no benchmark overlaps the baseline", file=sys.stderr)
        return 2

    if args.emit:
        if args.pr is None:
            print("bench_gate: --emit requires --pr", file=sys.stderr)
            return 2
        if args.hotpath:
            hot = re.compile(args.hotpath)
            for r in results.values():
                if hot.search(r["name"]):
                    r["hotpath"] = True
        doc = {
            "pr": args.pr,
            "date": datetime.date.today().isoformat(),
            "goos": meta.get("goos", ""),
            "goarch": meta.get("goarch", ""),
            "cpu": meta.get("cpu", ""),
            "benchtime": args.benchtime,
            "command": args.command,
            "note": args.note,
            "results": [results[k] for k in sorted(results)],
        }
        with open(args.emit, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        # One-line machine-readable summary for the CI log: what was
        # emitted, what was compared, and the worst observed delta.
        summary = {
            "bench_gate": {
                "emitted": args.emit,
                "pr": args.pr,
                "results": len(results),
                "compared": compared,
                "regressions": regressions,
                "threshold": args.threshold,
                "max_delta": round(max_delta, 4) if max_delta is not None else None,
            }
        }
        print(json.dumps(summary, separators=(",", ":")))

    if failed:
        print(f"bench_gate: ns/op regression beyond {args.threshold:.0%} "
              f"or allocs/op increase on a hotpath benchmark",
              file=sys.stderr)
        return 1
    print(f"bench_gate: {compared} benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
