package main

// The cmd/go vettool protocol (a subset of what
// golang.org/x/tools/go/analysis/unitchecker implements): go vet
// type-checks nothing itself; it hands the tool a JSON "unit config"
// naming the package's files and the export data of every dependency,
// already built by the go command. We re-parse the listed files, type-
// check against that export data with the stdlib's gc importer, and run
// the suite. The energylint analyzers exchange no facts between
// packages, so the .vetx fact files cmd/go expects are written empty.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"dvfsroofline/internal/analysis"
)

// vetConfig mirrors the fields of cmd/go's vet config JSON that this
// tool consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runVetConfig(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "energylint: parsing %s: %v\n", path, err)
		return 2
	}
	// Facts first: cmd/go caches the vetx output even for VetxOnly runs.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("energylint-no-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "energylint:", err)
			return 2
		}
	}
	if cfg.VetxOnly || isExamplePath(cfg.ImportPath) {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// Tests are exempt from energylint (see analysis.Loader); under
		// go vet they arrive as the package's test variant.
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return typecheckFailure(cfg, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}
	imp := importer.ForCompiler(fset, "gc", func(importPath string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		file, ok := cfg.PackageFile[importPath]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", importPath)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return typecheckFailure(cfg, err)
	}
	pkg := &analysis.Package{
		Fset:   fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		Path:   cfg.ImportPath,
		Allows: analysis.NewAllowIndex(fset, files),
	}
	diags, err := analysis.Run(pkg, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s [%s]\n", d.Pos, d.Rule, d.Message, d.URL)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func typecheckFailure(cfg vetConfig, err error) int {
	if cfg.SucceedOnTypecheckFailure {
		return 0
	}
	fmt.Fprintf(os.Stderr, "energylint: %s: %v\n", cfg.ImportPath, err)
	return 2
}
