package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestVettoolProbes(t *testing.T) {
	for _, arg := range []string{"-V=full", "-flags", "-rules"} {
		if got := run([]string{arg}); got != 0 {
			t.Errorf("run(%q) = %d, want 0", arg, got)
		}
	}
}

func TestIsExamplePath(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"dvfsroofline/examples/quickstart", true},
		{"examples", true},
		{"dvfsroofline/internal/core", false},
		{"dvfsroofline/internal/examplesaurus", false},
	}
	for _, tc := range cases {
		if got := isExamplePath(tc.path); got != tc.want {
			t.Errorf("isExamplePath(%q) = %v, want %v", tc.path, got, tc.want)
		}
	}
}

// TestCleanPackageExitsZero runs the standalone driver over a real
// package of this module that is known clean.
func TestCleanPackageExitsZero(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages from source")
	}
	if got := run([]string{"./../../internal/stats"}); got != 0 {
		t.Errorf("run on internal/stats = %d, want 0", got)
	}
}

// TestAllowsListing drives the -allows audit mode over internal/serve
// and internal/fleet, which carry the module's two known determinism
// suppressions (the injected-clock defaults); the listing must name
// them with file:line and reason and exit 0.
func TestAllowsListing(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages from source")
	}
	bin := filepath.Join(t.TempDir(), "energylint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building energylint: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-allows", "./../../internal/serve", "./../../internal/fleet").CombinedOutput()
	if err != nil {
		t.Fatalf("energylint -allows failed: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"breaker.go:", "server.go:",
		"determinism(", "Options.Clock",
		"allow directive(s)",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("-allows output missing %q:\n%s", want, s)
		}
	}
}

// chdirTo switches the working directory for the duration of the test.
func chdirTo(t *testing.T, dir string) {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	})
}

// allowModule writes a throwaway module with one used allow directive
// (it suppresses a real time.Now diagnostic) and, when stale is set, one
// directive on an innocent line that suppresses nothing.
func allowModule(t *testing.T, stale bool) string {
	t.Helper()
	dir := t.TempDir()
	src := `package tmpmod

import "time"

//energylint:allow determinism(test fixture: the clock is part of the fixture)
func Stamp() time.Time { return time.Now() }
`
	if stale {
		src += `
//energylint:allow determinism(left behind after the code below was fixed)
func Fixed() int { return 42 }
`
	}
	files := map[string]string{
		"go.mod":   "module tmpmod\n\ngo 1.22\n",
		"clock.go": src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestAllowsAuditStale pins the stale-directive contract: an allow that
// suppresses nothing fails the -allows audit with exit 1, while a
// module whose every allow is load-bearing passes.
func TestAllowsAuditStale(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages from source")
	}
	t.Run("all used exits zero", func(t *testing.T) {
		chdirTo(t, allowModule(t, false))
		if got := run([]string{"-allows", "./..."}); got != 0 {
			t.Errorf("-allows with only used directives = %d, want 0", got)
		}
	})
	t.Run("stale exits one", func(t *testing.T) {
		chdirTo(t, allowModule(t, true))
		if got := run([]string{"-allows", "./..."}); got != 1 {
			t.Errorf("-allows with a stale directive = %d, want 1", got)
		}
	})
}

// TestAllowsAuditStaleOutput checks the listing marks the stale line.
func TestAllowsAuditStaleOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and loads packages from source")
	}
	bin := filepath.Join(t.TempDir(), "energylint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building energylint: %v\n%s", err, out)
	}
	cmd := exec.Command(bin, "-allows", "./...")
	cmd.Dir = allowModule(t, true)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("-allows on a module with a stale directive succeeded; output:\n%s", out)
	}
	s := string(out)
	if !strings.Contains(s, "STALE determinism(left behind") {
		t.Errorf("-allows output missing the STALE marker:\n%s", s)
	}
	if strings.Contains(s, "STALE determinism(test fixture") {
		t.Errorf("-allows output marks the load-bearing directive stale:\n%s", s)
	}
	if !strings.Contains(s, "2 allow directive(s), 1 stale") {
		t.Errorf("-allows output missing the stale tally:\n%s", s)
	}
}

// violationModule writes a throwaway module whose single package reads
// the wall clock, and returns its directory.
func violationModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"clock.go": `package tmpmod

import "time"

// Stamp reads the wall clock, which energylint must flag.
func Stamp() time.Time { return time.Now() }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestViolationExitsOne chdirs into a module containing a time.Now call
// and expects the standalone driver to fail with exit code 1.
func TestViolationExitsOne(t *testing.T) {
	if testing.Short() {
		t.Skip("loads packages from source")
	}
	dir := violationModule(t)
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(wd); err != nil {
			t.Fatal(err)
		}
	}()
	if got := run([]string{"./..."}); got != 1 {
		t.Errorf("run on a module with a time.Now call = %d, want 1", got)
	}
}

// TestGoVetVettool builds the binary and drives it through cmd/go's
// vettool protocol: clean on this module's internal/stats, failing on
// the violation module.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := filepath.Join(t.TempDir(), "energylint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building energylint: %v\n%s", err, out)
	}

	if out, err := exec.Command("go", "vet", "-vettool="+bin, "./../../internal/stats").CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool on internal/stats: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = violationModule(t)
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool on a module with a time.Now call succeeded; output:\n%s", out)
	}
	if !strings.Contains(string(out), "time.Now reads the wall clock") {
		t.Errorf("go vet -vettool output missing the determinism diagnostic:\n%s", out)
	}
}
