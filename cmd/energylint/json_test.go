package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildLint builds the driver binary once per test into a temp dir.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "energylint")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building energylint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a throwaway module from a file map.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestJSONOutput pins the -json contract: one JSON object per line in
// deterministic order, suppressed findings included with allowed=true,
// exit code driven by the live findings only — and the whole stream
// byte-stable across runs.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and loads packages from source")
	}
	bin := buildLint(t)
	dir := writeModule(t, map[string]string{
		"clock.go": `package tmpmod

import "time"

// Stamp reads the wall clock, which energylint must flag.
func Stamp() time.Time { return time.Now() }

//energylint:allow determinism(fixture keeps its own clock on purpose)
func Fixture() time.Time { return time.Now() }
`,
	})

	runOnce := func() []byte {
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = dir
		var stdout, stderr bytes.Buffer
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("-json with a live finding: err = %v (stderr %q), want exit 1", err, stderr.String())
		}
		return stdout.Bytes()
	}

	first := runOnce()
	second := runOnce()
	if !bytes.Equal(first, second) {
		t.Fatalf("-json output is not byte-stable across runs:\n--- first\n%s--- second\n%s", first, second)
	}

	lines := strings.Split(strings.TrimRight(string(first), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("-json emitted %d lines, want 2 (live + allowed):\n%s", len(lines), first)
	}
	type diag struct {
		Rule    string `json:"rule"`
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Message string `json:"message"`
		URL     string `json:"url"`
		Allowed bool   `json:"allowed"`
	}
	var got [2]diag
	for i, ln := range lines {
		if err := json.Unmarshal([]byte(ln), &got[i]); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, ln)
		}
	}
	for i, d := range got {
		if d.Rule != "determinism" || !strings.HasSuffix(d.File, "clock.go") || d.Line == 0 || d.Col == 0 {
			t.Errorf("diag %d = %+v, want a positioned determinism finding in clock.go", i, d)
		}
		if !strings.Contains(d.Message, "time.Now") {
			t.Errorf("diag %d message %q does not mention time.Now", i, d.Message)
		}
	}
	// Deterministic order is by file position: Stamp (live) precedes
	// Fixture (allowed).
	if got[0].Allowed || !got[1].Allowed {
		t.Errorf("allowed flags = %v, %v; want the first finding live and the second suppressed", got[0].Allowed, got[1].Allowed)
	}
	if got[0].Line >= got[1].Line {
		t.Errorf("diagnostics out of position order: line %d then %d", got[0].Line, got[1].Line)
	}
}

// TestJSONCleanPackage: no findings means no output and exit 0.
func TestJSONCleanPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and loads packages from source")
	}
	bin := buildLint(t)
	cmd := exec.Command(bin, "-json", "./../../internal/stats")
	var stdout bytes.Buffer
	cmd.Stdout = &stdout
	if err := cmd.Run(); err != nil {
		t.Fatalf("-json on a clean package: %v", err)
	}
	if stdout.Len() != 0 {
		t.Errorf("-json on a clean package produced output:\n%s", stdout.String())
	}
}
