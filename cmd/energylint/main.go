// Command energylint runs the repository's static-analysis suite
// (internal/analysis) over Go package patterns:
//
//	go run ./cmd/energylint ./...
//
// It prints one line per diagnostic in deterministic order and exits
// non-zero when anything fires, which is how CI gates on it. The rules
// and their escape hatch are documented in DESIGN.md § Static analysis.
//
// The binary also speaks the cmd/go vettool protocol, so it can run as
//
//	go vet -vettool=$(which energylint) ./...
//
// (-V=full, -flags, and *.cfg unit configs are handled in vettool.go).
//
// Example and demo programs (examples/...) are exempt: they are
// pedagogical wall-clock-and-print code, not part of the reproduction
// pipeline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"dvfsroofline/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// vettool protocol entry points must be handled before flag parsing:
	// cmd/go probes with -V=full and -flags, then invokes with a single
	// *.cfg argument.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full" || args[0] == "--V=full":
			fmt.Println("energylint version 1 (dvfsroofline static-analysis suite)")
			return 0
		case args[0] == "-flags" || args[0] == "--flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetConfig(args[0])
		}
	}

	fs := flag.NewFlagSet("energylint", flag.ContinueOnError)
	list := fs.Bool("rules", false, "list the analyzers and exit")
	allows := fs.Bool("allows", false, "list every //energylint:allow directive with file:line and reason, then exit")
	jsonOut := fs.Bool("json", false, "emit one JSON object per diagnostic (including allowed ones) instead of text")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n\t%s\n", a.Name, a.Doc, a.URL)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := listPackages(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "energylint:", err)
		return 2
	}
	loader := analysis.NewLoader()
	if *allows {
		return runAllows(loader, pkgs)
	}
	nDiags := 0
	for _, p := range pkgs {
		loaded, err := loader.LoadDir(p.dir, p.importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "energylint:", err)
			return 2
		}
		if *jsonOut {
			diags, err := analysis.RunAll(loaded, analysis.All())
			if err != nil {
				fmt.Fprintln(os.Stderr, "energylint:", err)
				return 2
			}
			n, err := writeJSONDiags(os.Stdout, diags)
			if err != nil {
				fmt.Fprintln(os.Stderr, "energylint:", err)
				return 2
			}
			nDiags += n
			continue
		}
		diags, err := analysis.Run(loaded, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "energylint:", err)
			return 2
		}
		for _, d := range diags {
			fmt.Printf("%s: %s: %s [%s]\n", d.Pos, d.Rule, d.Message, d.URL)
			nDiags++
		}
	}
	if nDiags > 0 {
		fmt.Fprintf(os.Stderr, "energylint: %d issue(s); see DESIGN.md § Static analysis (escape hatch: //energylint:allow <rule>(<reason>))\n", nDiags)
		return 1
	}
	return 0
}

// jsonDiag is the -json wire shape: a fixed field order (encoding/json
// marshals struct fields in declaration order) plus the deterministic
// diagnostic ordering of analysis.Run make the output byte-stable
// across runs, so CI artifacts and tooling can diff it.
type jsonDiag struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
	URL     string `json:"url"`
	Allowed bool   `json:"allowed"`
}

// writeJSONDiags emits one JSON object per line and returns how many
// diagnostics were live (not suppressed) for the exit code.
func writeJSONDiags(w io.Writer, diags []analysis.Diagnostic) (int, error) {
	enc := json.NewEncoder(w)
	live := 0
	for _, d := range diags {
		if err := enc.Encode(jsonDiag{
			Rule:    d.Rule,
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Col:     d.Pos.Column,
			Message: d.Message,
			URL:     d.URL,
			Allowed: d.Allowed,
		}); err != nil {
			return live, err
		}
		if !d.Allowed {
			live++
		}
	}
	return live, nil
}

// runAllows prints the escape-hatch inventory: one line per well-formed
// //energylint:allow directive, in deterministic order, so CI logs keep
// an auditable record of every suppression and its stated reason. The
// full suite runs first so each directive's usage is known: a STALE
// directive — one that suppressed no diagnostic — fails the audit,
// because the code it excused has moved or been fixed and the leftover
// suppression would silently cover the next regression on that line.
// Malformed directives remain the allowdecl analyzer's job.
func runAllows(loader *analysis.Loader, pkgs []listedPkg) int {
	n, stale := 0, 0
	for _, p := range pkgs {
		loaded, err := loader.LoadDir(p.dir, p.importPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "energylint:", err)
			return 2
		}
		// Run for the side effect of marking which directives suppress
		// something; the diagnostics themselves are the default mode's
		// business.
		if _, err := analysis.Run(loaded, analysis.All()); err != nil {
			fmt.Fprintln(os.Stderr, "energylint:", err)
			return 2
		}
		for _, e := range loaded.Allows.Entries() {
			if e.Used {
				fmt.Printf("%s:%d: %s(%s)\n", e.Pos.Filename, e.Pos.Line, e.Rule, e.Reason)
			} else {
				fmt.Printf("%s:%d: STALE %s(%s)\n", e.Pos.Filename, e.Pos.Line, e.Rule, e.Reason)
				stale++
			}
			n++
		}
	}
	fmt.Fprintf(os.Stderr, "energylint: %d allow directive(s), %d stale\n", n, stale)
	if stale > 0 {
		fmt.Fprintf(os.Stderr, "energylint: stale directives suppress nothing; delete them (or fix the drifted code they were written for)\n")
		return 1
	}
	return 0
}

type listedPkg struct {
	dir        string
	importPath string
}

// listPackages resolves package patterns through the go tool, skipping
// example programs and packages with no non-test Go files.
func listPackages(patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-f", "{{.Dir}}\x01{{.ImportPath}}\x01{{len .GoFiles}}"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}
	var pkgs []listedPkg
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		parts := strings.Split(string(line), "\x01")
		if len(parts) != 3 || parts[2] == "0" {
			continue
		}
		if isExamplePath(parts[1]) {
			continue
		}
		pkgs = append(pkgs, listedPkg{dir: parts[0], importPath: parts[1]})
	}
	return pkgs, nil
}

func isExamplePath(importPath string) bool {
	for _, seg := range strings.Split(importPath, "/") {
		if seg == "examples" {
			return true
		}
	}
	return false
}
