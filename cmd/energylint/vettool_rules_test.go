package main

import (
	"os/exec"
	"strings"
	"testing"
)

// The vettool-mode e2e coverage for the concurrency and hot-path
// analyzers: cmd/go type-checks with export data and hands us a unit
// config, a different loading path from the standalone driver, so each
// new rule gets a firing and a clean module driven through
// `go vet -vettool`.

func vetModule(t *testing.T, bin string, files map[string]string) (string, error) {
	t.Helper()
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = writeModule(t, files)
	out, err := vet.CombinedOutput()
	return string(out), err
}

func TestGoVetVettoolLockorder(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := buildLint(t)

	out, err := vetModule(t, bin, map[string]string{
		"locks.go": `package tmpmod

import "sync"

type inbox struct {
	mu sync.Mutex
	n  int
}

type outbox struct {
	mu sync.Mutex
	n  int
}

func forward(i *inbox, o *outbox) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock()
	o.n += i.n
	o.mu.Unlock()
}

func bounce(i *inbox, o *outbox) {
	o.mu.Lock()
	defer o.mu.Unlock()
	i.mu.Lock()
	i.n += o.n
	i.mu.Unlock()
}
`,
	})
	if err == nil {
		t.Fatalf("go vet -vettool on an AB-BA module succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "lock-order cycle") {
		t.Errorf("go vet -vettool output missing the lockorder cycle diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "inbox.mu") || !strings.Contains(out, "outbox.mu") {
		t.Errorf("cycle diagnostic does not name both mutexes:\n%s", out)
	}

	out, err = vetModule(t, bin, map[string]string{
		"locks.go": `package tmpmod

import "sync"

type inbox struct {
	mu sync.Mutex
	n  int
}

type outbox struct {
	mu sync.Mutex
	n  int
}

// Both paths agree on the inbox-then-outbox order: no cycle.
func forward(i *inbox, o *outbox) {
	i.mu.Lock()
	defer i.mu.Unlock()
	o.mu.Lock()
	o.n += i.n
	o.mu.Unlock()
}

func drain(i *inbox, o *outbox) {
	i.mu.Lock()
	n := i.n
	i.n = 0
	i.mu.Unlock()
	o.mu.Lock()
	o.n += n
	o.mu.Unlock()
}
`,
	})
	if err != nil {
		t.Errorf("go vet -vettool on a consistently ordered module failed: %v\n%s", err, out)
	}
}

func TestGoVetVettoolHotalloc(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary and runs go vet")
	}
	bin := buildLint(t)

	out, err := vetModule(t, bin, map[string]string{
		"hot.go": `package tmpmod

import "fmt"

//energylint:hotpath
func Render(v float64) string {
	return fmt.Sprintf("%g", v)
}
`,
	})
	if err == nil {
		t.Fatalf("go vet -vettool on a fmt-in-hotpath module succeeded; output:\n%s", out)
	}
	if !strings.Contains(out, "fmt.Sprintf formats through reflection") {
		t.Errorf("go vet -vettool output missing the hotalloc diagnostic:\n%s", out)
	}

	out, err = vetModule(t, bin, map[string]string{
		"hot.go": `package tmpmod

import "strconv"

//energylint:hotpath
func Render(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
`,
	})
	if err != nil {
		t.Errorf("go vet -vettool on an allocation-free hot path failed: %v\n%s", err, out)
	}
}
