// Command roofline prints the energy-roofline analysis the DVFS-aware
// model extends (paper refs [2,3]): attained performance, power and
// energy efficiency as functions of arithmetic intensity, together with
// the machine's time and energy balance points, for chosen DVFS settings
// of the simulated Tegra K1.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"text/tabwriter"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func main() {
	app := cli.New("roofline")
	class := flag.String("class", "DP", "op class to analyze: SP, DP or Int")
	app.Parse()

	var c core.OpClass
	var opsPerCycle units.PerCycle
	switch *class {
	case "SP":
		c, opsPerCycle = core.ClassSP, tegra.SPPerCycle
	case "DP":
		c, opsPerCycle = core.ClassDP, tegra.DPPerCycle
	case "Int":
		c, opsPerCycle = core.ClassInt, tegra.IntPerCycle
	default:
		log.Fatalf("unknown class %q (want SP, DP or Int)", *class)
	}

	cal, err := app.Calibrate(context.Background(), app.Device())
	app.Check(err)
	model := cal.Model

	settings := []dvfs.Setting{
		dvfs.MaxSetting(),
		dvfs.MustSetting(540, 528),
		dvfs.MustSetting(180, 204),
	}
	intensities := []units.OpsPerWord{0.125, 0.25, 0.5, 1, 2, 4, 8, 16, 32, 64, 128, 256}

	for _, s := range settings {
		mach := core.MachineFor(opsPerCycle, tegra.DRAMWordsPerCycle, s)
		fmt.Printf("%s roofline at %v\n", *class, s)
		fmt.Printf("  time balance %.2f ops/word, energy balance %.2f ops/word",
			mach.TimeBalance(), model.EnergyBalance(c, s))
		eff := model.EffectiveEnergyBalance(c, mach, s)
		if math.IsInf(float64(eff), 1) {
			fmt.Printf(", effective balance: unreachable (constant power exceeds ε at peak)\n")
		} else {
			fmt.Printf(", effective balance %.2f ops/word\n", eff)
		}
		w := cli.Table(tabwriter.AlignRight)
		fmt.Fprintln(w, "I ops/word\tGops/s\tGops/J\tW\t")
		for _, pt := range model.Roofline(c, mach, s, intensities) {
			fmt.Fprintf(w, "%.3f\t%.2f\t%.3f\t%.2f\t\n",
				pt.Intensity, pt.OpsPerSec/1e9, pt.OpsPerJoule/1e9, pt.Power)
		}
		w.Flush()
		fmt.Println()
	}
	fmt.Println("Reading: below the time balance a kernel is bandwidth-bound; below the")
	fmt.Println("energy balance its dynamic energy is data-movement-dominated; when the")
	fmt.Println("effective balance is unreachable, constant power dominates at every")
	fmt.Println("intensity — the regime the paper's FMM occupies (§IV-C).")
}
