// Command energyd serves the DVFS-aware energy model over HTTP. Where
// the other cmd/* binaries recalibrate per process, energyd calibrates
// once at startup — or loads a -cache sample CSV and skips the
// measurement campaign entirely — and then answers prediction and
// autotuning queries until terminated:
//
//	POST /v1/predict     — Eq. 9 energy + parts for an op profile
//	POST /v1/autotune    — best (f_core, f_mem) vs the time oracle,
//	                       served from a keyed LRU + single-flight cache
//	GET  /v1/calibration — Table I, model constants, CV statistics
//	GET  /healthz        — liveness
//	GET  /metrics        — Prometheus text format
//
// SIGINT/SIGTERM drain in-flight requests before the process exits.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/serve"
)

func main() {
	app := cli.New("energyd")
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	cacheCap := flag.Int("cachecap", 64, "autotune sweep cache capacity (entries)")
	sweepTimeout := flag.Duration("sweep-timeout", 30*time.Second, "server-side cap on one autotune sweep")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	app.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dev := app.Device()
	cal, err := app.Calibrate(ctx, dev)
	app.Check(err)
	log.Printf("calibration ready: %d samples, 16-fold CV mean %.2f%%",
		len(cal.Samples), cal.KFold.Percent().Mean)

	// The serving config drops the CLI progress callback: request sweeps
	// run concurrently and must not share the App's milestone tracker.
	cfg := app.Config()
	cfg.OnProgress = nil
	s := serve.New(dev, cal, cfg, serve.Options{
		CacheSize:    *cacheCap,
		SweepTimeout: *sweepTimeout,
	})
	l, err := net.Listen("tcp", *addr)
	app.Check(err)
	log.Printf("listening on http://%s (endpoints: /v1/predict /v1/autotune /v1/calibration /healthz /metrics)", l.Addr())

	app.Check(serve.Run(ctx, l, s.Handler(), *drain))
	log.Printf("drained, bye")
}
