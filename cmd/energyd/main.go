// Command energyd serves the DVFS-aware energy model over HTTP. Where
// the other cmd/* binaries recalibrate per process, energyd calibrates
// once at startup — or loads a -cache sample CSV and skips the
// measurement campaign entirely — and then answers prediction and
// autotuning queries until terminated:
//
//	POST /v1/predict     — Eq. 9 energy + parts for an op profile
//	POST /v1/autotune    — best (f_core, f_mem) vs the time oracle,
//	                       served from a keyed LRU + single-flight cache
//	GET  /v1/calibration — Table I, model constants, CV statistics
//	GET  /healthz        — liveness (stays 200 in degraded mode)
//	GET  /readyz         — readiness (503 while the sweep breaker is open)
//	GET  /metrics        — Prometheus text format
//
// A circuit breaker guards the autotune sweep path: after
// -breaker-threshold consecutive sweep failures it opens for
// -breaker-cooldown, during which /v1/autotune serves stale cached
// sweeps flagged "degraded": true. -force-degraded pins it open for
// drills. SIGINT/SIGTERM drain in-flight requests before the process
// exits.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/serve"
)

func main() {
	app := cli.New("energyd")
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	cacheCap := flag.Int("cachecap", 64, "autotune sweep cache capacity (entries)")
	sweepTimeout := flag.Duration("sweep-timeout", 30*time.Second, "server-side cap on one autotune sweep")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive sweep failures that open the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "open period before the breaker allows a probe sweep")
	forceDegraded := flag.Bool("force-degraded", false, "pin the sweep breaker open at startup (degraded-mode drill)")
	app.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	dev := app.Device()
	cal, err := app.Calibrate(ctx, dev)
	app.Check(err)
	log.Printf("calibration ready: %d samples, 16-fold CV mean %.2f%%",
		len(cal.Samples), cal.KFold.Percent().Mean)

	// The serving config drops the CLI progress callback: request sweeps
	// run concurrently and must not share the App's milestone tracker.
	cfg := app.Config()
	cfg.OnProgress = nil
	s := serve.New(dev, cal, cfg, serve.Options{
		CacheSize:        *cacheCap,
		SweepTimeout:     *sweepTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	})
	if *forceDegraded {
		s.ForceBreakerOpen(true)
		log.Printf("sweep breaker forced open: autotune serves cached results only")
	}
	l, err := net.Listen("tcp", *addr)
	app.Check(err)
	log.Printf("listening on http://%s (endpoints: /v1/predict /v1/autotune /v1/calibration /healthz /readyz /metrics)", l.Addr())

	app.Check(serve.Run(ctx, l, s.Handler(), *drain))
	log.Printf("drained, bye")
}
