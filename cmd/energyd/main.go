// Command energyd serves the DVFS-aware energy model over HTTP. Where
// the other cmd/* binaries recalibrate per process, energyd calibrates
// once at startup — or loads a -cache sample CSV and skips the
// measurement campaign entirely — and then answers prediction and
// autotuning queries until terminated:
//
//	POST /v1/predict       — Eq. 9 energy + parts for an op profile
//	POST /v1/autotune      — best (f_core, f_mem) vs the time oracle,
//	                         served from a keyed LRU + single-flight cache
//	GET  /v1/calibration   — Table I, model constants, CV statistics
//	POST /v1/fleet/predict — predict routed across the device fleet
//	POST /v1/fleet/place   — cheapest (device, setting) across the fleet
//	GET  /v1/fleet/devices — fleet inventory with per-device health
//	GET  /healthz          — liveness (stays 200 in degraded mode)
//	GET  /readyz           — readiness (503 once no device can sweep)
//	GET  /metrics          — Prometheus text format
//
// With -fleet fleet.json the daemon serves a heterogeneous multi-device
// fleet: each declared device gets its own simulator, calibration
// (loaded from its calibration_cache CSV, or synthesized instantly from
// its declared parameters), seed lineage, sweep cache and circuit
// breaker, and traffic shards across devices by consistent hashing.
// Without -fleet it serves the single local device exactly as before —
// the degenerate one-device fleet, byte-identical on the wire.
//
// Per-device circuit breakers guard the autotune sweep paths: after
// -breaker-threshold consecutive sweep failures a device's breaker
// opens for -breaker-cooldown, during which its autotunes serve stale
// cached sweeps flagged "degraded": true and fresh sweep traffic fails
// over along the hash ring. -force-degraded pins every breaker open for
// drills. SIGINT/SIGTERM drain in-flight requests before the process
// exits.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/units"
)

func main() {
	app := cli.New("energyd")
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	fleetPath := flag.String("fleet", "", "fleet config JSON (list of device specs); empty = single local device")
	cacheCap := flag.Int("cachecap", 64, "autotune sweep cache capacity per device (entries)")
	sweepTimeout := flag.Duration("sweep-timeout", 30*time.Second, "server-side cap on one autotune sweep")
	drain := flag.Duration("drain", 30*time.Second, "grace period for in-flight requests on shutdown")
	breakerThreshold := flag.Int("breaker-threshold", 5, "consecutive sweep failures that open a device's circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 30*time.Second, "open period before a breaker allows a probe sweep")
	forceDegraded := flag.Bool("force-degraded", false, "pin the sweep breakers open at startup (degraded-mode drill)")
	admin := flag.Bool("admin", true, "enable the fleet membership API (POST/DELETE /v1/fleet/devices; fleet mode only)")
	drainDeadline := flag.Duration("drain-deadline", 30*time.Second, "default deadline a DELETE ?mode=drain waits for a device's in-flight requests")
	healthInterval := flag.Duration("health-interval", 15*time.Second, "health loop tick period (quarantine + probe; fleet mode only); 0 disables")
	quarantineAfter := flag.Int("quarantine-after", 2, "consecutive health ticks with an open breaker before a device is quarantined")
	probeBackoff := flag.Duration("probe-backoff", 30*time.Second, "base wait before a quarantined device's first recovery probe (doubles per failure)")
	driftThreshold := flag.Float64("drift-threshold", 0.75, "CUSUM threshold on accumulated relative residual before recalibration; 0 disables the drift watchdog")
	driftSlack := flag.Float64("drift-slack", 0.05, "per-observation relative residual absorbed before drift accumulates")
	driftWindow := flag.Int("drift-window", 32, "sweep candidates folded into the drift statistic per observation")
	app.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := serve.Options{
		CacheSize:        *cacheCap,
		SweepTimeout:     *sweepTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
	}
	// The serving config drops the CLI progress callback: request sweeps
	// run concurrently and must not share the App's milestone tracker.
	cfg := app.Config()
	cfg.OnProgress = nil

	var s *serve.Server
	var reg *fleet.Registry
	if *fleetPath != "" {
		fc, err := fleet.LoadConfig(*fleetPath)
		app.Check(err)
		reg, err = fleet.Build(fc, cfg, cli.LoadCalibration, opts.NodeOptions())
		app.Check(err)
		for _, n := range reg.Nodes() {
			log.Printf("device %q ready: %d samples, seed %d, grids cal=%d full=%d",
				n.ID, len(n.Cal().Samples), n.Cfg.Seed, len(n.Grids["calibration"]), len(n.Grids["full"]))
		}
		fleetSeed := fleet.ResolveSeed(fc, cfg)
		if *admin {
			opts.Admin = &fleet.Admin{
				FleetSeed: fleetSeed,
				Base:      cfg,
				Load:      cli.LoadCalibration,
				Node:      opts.NodeOptions(),
			}
			opts.DrainDeadline = *drainDeadline
		}
		if *driftThreshold > 0 {
			opts.Drift = &fleet.DriftConfig{
				Window:    *driftWindow,
				Slack:     units.Ratio(*driftSlack),
				Threshold: units.Ratio(*driftThreshold),
			}
		}
		s = serve.NewFleet(reg, opts)
		log.Printf("fleet ready: %d devices (admin=%v, drift=%v)", reg.Len(), *admin, *driftThreshold > 0)
		if *healthInterval > 0 {
			health := fleet.NewHealth(reg, fleet.HealthConfig{
				QuarantineAfter: *quarantineAfter,
				ProbeBackoff:    *probeBackoff,
				Seed:            fleetSeed,
			}, nil)
			go func() {
				t := time.NewTicker(*healthInterval)
				defer t.Stop()
				for {
					select {
					case <-ctx.Done():
						return
					case now := <-t.C:
						health.Tick(ctx, now)
					}
				}
			}()
		}
	} else {
		dev := app.Device()
		cal, err := app.Calibrate(ctx, dev)
		app.Check(err)
		log.Printf("calibration ready: %d samples, 16-fold CV mean %.2f%%",
			len(cal.Samples), cal.KFold.Percent().Mean)
		s = serve.New(dev, cal, cfg, opts)
	}
	if *forceDegraded {
		s.ForceBreakerOpen(true)
		log.Printf("sweep breakers forced open: autotune serves cached results only")
	}
	l, err := net.Listen("tcp", *addr)
	app.Check(err)
	log.Printf("listening on http://%s (endpoints: /v1/predict /v1/autotune /v1/calibration /v1/fleet/predict /v1/fleet/place /v1/fleet/devices /healthz /readyz /metrics)", l.Addr())

	app.Check(serve.Run(ctx, l, s.Handler(), *drain))
	if reg != nil {
		// The listener is closed and its handlers have finished; drain
		// the whole fleet so device-level in-flight work (background
		// recalibrations aside) is accounted for before exit.
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		if reg.DrainAll(dctx) {
			log.Printf("fleet drained")
		} else {
			log.Printf("fleet drain deadline expired with requests in flight")
		}
		cancel()
	}
	log.Printf("drained, bye")
}
