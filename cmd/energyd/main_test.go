package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/export"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/serve"
)

// TestCachedSamplesMatchFixture pins testdata/samples.csv — the CSV the
// CI smoke test boots energyd from — to serve.FixtureSamples byte for
// byte, so the checked-in artifact cannot drift from the code that
// defines it.
func TestCachedSamplesMatchFixture(t *testing.T) {
	var want bytes.Buffer
	if err := export.WriteSamples(&want, serve.FixtureSamples()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join("testdata", "samples.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("testdata/samples.csv does not match serve.FixtureSamples(); regenerate it with export.WriteSamples")
	}
}

// TestCachedSamplesLoad exercises the exact -cache startup path.
func TestCachedSamplesLoad(t *testing.T) {
	cal, err := cli.LoadCalibration(filepath.Join("testdata", "samples.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Samples) != 128 {
		t.Fatalf("loaded %d samples, want 128", len(cal.Samples))
	}
	if m := cal.KFold.Percent().Mean; m > 1e-6 {
		t.Errorf("noiseless cached calibration CV mean %g%%, want ~0", m)
	}
}

// TestFleetConfigBoots exercises the exact -fleet startup path against
// the checked-in testdata/fleet.json the CI smoke test uses: the config
// must parse, build a 3-device registry, and calibrate every device.
func TestFleetConfigBoots(t *testing.T) {
	fc, err := fleet.LoadConfig(filepath.Join("testdata", "fleet.json"))
	if err != nil {
		t.Fatal(err)
	}
	reg, err := fleet.Build(fc, experiments.Config{Seed: fc.Seed}, cli.LoadCalibration, fleet.NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 {
		t.Fatalf("testdata/fleet.json built %d devices, want 3", reg.Len())
	}
	seen := map[int64]bool{}
	for _, n := range reg.Nodes() {
		if len(n.Cal().Samples) == 0 {
			t.Errorf("device %q has no calibration samples", n.ID)
		}
		if m := n.Cal().KFold.Percent().Mean; m > 1e-6 {
			t.Errorf("device %q synthetic calibration CV mean %g%%, want ~0", n.ID, m)
		}
		if seen[n.Cfg.Seed] {
			t.Errorf("device %q shares its derived seed %d with another device", n.ID, n.Cfg.Seed)
		}
		seen[n.Cfg.Seed] = true
	}
	if n, ok := reg.Get("tk1-lowpower-sku"); !ok || len(n.Grids["full"]) >= len(dvfs.Grid()) {
		t.Error("tk1-lowpower-sku's DVFS bounds did not trim its full grid")
	}
}
