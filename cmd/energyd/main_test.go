package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/export"
	"dvfsroofline/internal/serve"
)

// TestCachedSamplesMatchFixture pins testdata/samples.csv — the CSV the
// CI smoke test boots energyd from — to serve.FixtureSamples byte for
// byte, so the checked-in artifact cannot drift from the code that
// defines it.
func TestCachedSamplesMatchFixture(t *testing.T) {
	var want bytes.Buffer
	if err := export.WriteSamples(&want, serve.FixtureSamples()); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join("testdata", "samples.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatal("testdata/samples.csv does not match serve.FixtureSamples(); regenerate it with export.WriteSamples")
	}
}

// TestCachedSamplesLoad exercises the exact -cache startup path.
func TestCachedSamplesLoad(t *testing.T) {
	cal, err := cli.LoadCalibration(filepath.Join("testdata", "samples.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Samples) != 128 {
		t.Fatalf("loaded %d samples, want 128", len(cal.Samples))
	}
	if m := cal.KFold.Percent().Mean; m > 1e-6 {
		t.Errorf("noiseless cached calibration CV mean %g%%, want ~0", m)
	}
}
