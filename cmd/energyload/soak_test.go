package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/workload"
)

func readSoakTrace(t *testing.T) *workload.Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "soak.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.Read(f)
	if err != nil {
		t.Fatalf("reading checked-in trace: %v", err)
	}
	return tr
}

// soakServer builds the faulted single-device server the soak replays
// against. disconnect=0.5 under plan seed 17 sits in the gap where
// every calibration-grid sweep succeeds and every full-grid sweep
// fails permanently (the fault stream keys on setting identity, so a
// grid's fate is uniform): full-grid autotunes trip the breaker while
// calibration keys warm the cache, and the warmed keys then serve
// degraded — deterministically.
func soakServer(t *testing.T, clk *workload.StepClock) *serve.Server {
	t.Helper()
	cal, err := serve.FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParsePlan("disconnect=0.5,seed=17")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Seed: 42, Faults: plan}
	return serve.New(tegra.NewDevice(), cal, cfg, serve.Options{
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Minute,
		Clock:            clk.Now,
	})
}

func replaySoak(t *testing.T) []byte {
	t.Helper()
	tr := readSoakTrace(t)
	clk := workload.NewStepClock(time.Millisecond)
	srv := soakServer(t, clk)
	rep, err := workload.Replay(context.Background(), tr, workload.HandlerTarget{Handler: srv.Handler()},
		workload.ReplayOptions{Mode: workload.ModeSync, Now: clk.Now})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance contract: replaying the checked-in trace twice against
// identically-seeded servers yields byte-identical reports.
func TestSoakReplayByteIdentical(t *testing.T) {
	a, b := replaySoak(t), replaySoak(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two replays against identically-seeded servers differ:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// The soak must actually exercise the failure machinery — breaker
// trips, degraded serves — and the client-side report must reconcile
// exactly with the server's own counters.
func TestSoakReplayReconcilesWithServer(t *testing.T) {
	raw := replaySoak(t)
	var rep workload.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	tr := readSoakTrace(t)
	if rep.Requests != len(tr.Events) {
		t.Fatalf("report counts %d requests, trace has %d", rep.Requests, len(tr.Events))
	}
	if rep.TransportFailures != 0 {
		t.Fatalf("%d transport failures against an in-process handler", rep.TransportFailures)
	}
	srv := rep.Server
	if srv == nil {
		t.Fatalf("report carries no server snapshot")
	}
	if srv.BreakerTrips == 0 {
		t.Fatalf("soak never tripped a breaker; the fault plan has drifted out of its regime")
	}
	if srv.DegradedServes == 0 || rep.DegradedResponses == 0 {
		t.Fatalf("soak produced no degraded serves (server %d, client %d)", srv.DegradedServes, rep.DegradedResponses)
	}
	if uint64(rep.DegradedResponses) != srv.DegradedServes {
		t.Fatalf("client saw %d degraded responses, server counted %d", rep.DegradedResponses, srv.DegradedServes)
	}
	if srv.CacheHits == 0 {
		t.Fatalf("soak never hit the sweep cache")
	}
	if srv.SweepJ <= 0 || srv.AnsweredJ <= 0 || srv.AnsweredPerSweepJ <= 0 {
		t.Fatalf("energy ledgers empty: sweep %v answered %v ratio %v", srv.SweepJ, srv.AnsweredJ, srv.AnsweredPerSweepJ)
	}

	// Every endpoint's client-side status counts must match the server's
	// own request counters — /v1/stats reads must not move them.
	clk := workload.NewStepClock(time.Millisecond)
	target := workload.HandlerTarget{Handler: soakServer(t, clk).Handler()}
	rep2, err := workload.Replay(context.Background(), tr, target, workload.ReplayOptions{Mode: workload.ModeSync, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := target.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for path, ep := range rep2.Endpoints {
		srvEp, ok := stats.Endpoints[path]
		if !ok {
			t.Fatalf("server has no counters for %s", path)
		}
		if uint64(ep.Requests) != srvEp.Requests {
			t.Fatalf("%s: client sent %d, server counted %d", path, ep.Requests, srvEp.Requests)
		}
		for code, n := range ep.ByStatus {
			if uint64(n) != srvEp.ByCode[code] {
				t.Fatalf("%s status %s: client saw %d, server counted %d", path, code, n, srvEp.ByCode[code])
			}
		}
	}
}

// The CLI wrapper end to end: gen twice is byte-identical, and an
// in-process fleet replay through runReplay is too.
func TestCLIGenAndReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	genOut := func(name string) string {
		p := filepath.Join(dir, name)
		if err := runGen([]string{"-seed", "7", "-duration", "2", "-out", p}); err != nil {
			t.Fatalf("gen: %v", err)
		}
		return p
	}
	a, b := genOut("a.jsonl"), genOut("b.jsonl")
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("two gens with one seed differ")
	}

	replayOut := func(name string) []byte {
		p := filepath.Join(dir, name)
		if err := runReplay([]string{"-trace", a, "-inprocess", "-report", p}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	ra, rb := replayOut("ra.json"), replayOut("rb.json")
	if !bytes.Equal(ra, rb) {
		t.Fatalf("two in-process replays differ:\n--- a\n%s\n--- b\n%s", ra, rb)
	}
	var rep workload.Report
	if err := json.Unmarshal(ra, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	// The built-in fleet has three devices; the hash ring should spread
	// the request keys across all of them.
	devs := 0
	for dev, share := range rep.DeviceShare {
		if dev != "" && share > 0 {
			devs++
		}
	}
	if devs != 3 {
		t.Fatalf("device share covers %d devices, want 3: %v", devs, rep.DeviceShare)
	}
}

// ---- Membership chaos soak ----------------------------------------------
//
// The same checked-in trace, replayed against a 3-device fleet whose
// membership churns mid-flight: a device is added live (and serves), a
// device sickens and is quarantined then probed back to health, a
// device's hardware drifts and is recalibrated by the watchdog, and the
// added device is drained out again. Everything — probe backoff jitter,
// drift firing, recalibration constants — derives from fixed seeds and
// a shared step clock, so two runs produce byte-identical reports.

// membershipHarness is one fully-wired chaos soak instance.
type membershipHarness struct {
	clk    *workload.StepClock
	reg    *fleet.Registry
	health *fleet.Health
	target workload.HandlerTarget
	plan   *workload.ChurnPlan
	extras map[string]int // hook-issued requests per endpoint label
}

func newMembershipHarness(t *testing.T) *membershipHarness {
	t.Helper()
	clk := workload.NewStepClock(time.Millisecond)
	fc := fleet.FleetConfig{Seed: 42, Devices: []fleet.Spec{
		{ID: "soak-a"},
		{ID: "soak-b", Params: fleet.ParamsJSON{LeakProcWpV: 3.55}},
		{ID: "soak-c", Params: fleet.ParamsJSON{SPpJ: 22.1}},
	}}
	base := experiments.Config{Seed: 42}
	opts := serve.Options{
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Minute,
		Clock:            clk.Now,
		DrainDeadline:    time.Second,
		Drift: &fleet.DriftConfig{
			// Slack sits above the healthy fleet's systematic residual
			// (the non-ideal simulator runs ~5% hot against the synthetic
			// fit) so only injected drift accumulates.
			Window: 32, Slack: 0.10, Threshold: 0.75,
		},
		SyncRecalibrate: true,
	}
	reg, err := fleet.Build(fc, base, nil, opts.NodeOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts.Admin = &fleet.Admin{
		FleetSeed: fleet.ResolveSeed(fc, base),
		Base:      base,
		Node:      opts.NodeOptions(),
	}
	srv := serve.NewFleet(reg, opts)
	h := &membershipHarness{
		clk:    clk,
		reg:    reg,
		target: workload.HandlerTarget{Handler: srv.Handler()},
		extras: make(map[string]int),
	}
	// Probe backoffs are tiny because the step clock advances ~4 virtual
	// ms per replayed event: 10 ms keeps the whole quarantine -> probe ->
	// recovery arc inside the 400-event trace.
	h.health = fleet.NewHealth(reg, fleet.HealthConfig{
		QuarantineAfter: 2,
		ProbeBackoff:    10 * time.Millisecond,
		ProbeBackoffMax: 40 * time.Millisecond,
		Seed:            42,
	}, nil)
	h.plan = &workload.ChurnPlan{Steps: []workload.ChurnStep{
		// A fourth device joins live and starts serving ring keys.
		{Before: 20, Action: "add", Spec: json.RawMessage(`{"id": "soak-added", "params": {"misc_w": 0.3}}`)},
		// soak-b sickens: breaker pinned open (serving degrades but never
		// errors) and its meter drops off the bus so recovery probes fail.
		{Before: 40, Action: "call", Run: func(ctx context.Context) error {
			n, _ := reg.Get("soak-b")
			n.Breaker.ForceOpen(true)
			n.Cfg.Faults = faults.Plan{MeterDisconnect: 1, Seed: 9}
			return nil
		}},
		// soak-b heals: the next due probe measures a real sweep and
		// brings it back to active.
		{Before: 80, Action: "call", Run: func(ctx context.Context) error {
			n, _ := reg.Get("soak-b")
			n.Breaker.ForceOpen(false)
			n.Cfg.Faults = faults.Plan{}
			return nil
		}},
		// soak-c's hardware drifts under a sustained thermal event: the
		// clocks throttle deep and the heat-soaked sense path reads hot
		// (a gain error), so measured energy diverges decisively from the
		// calibrated model. A fresh placement sweep carries the signal to
		// the watchdog, which must recalibrate exactly once, synchronously,
		// mid-trace — the refit constants then describe the device as it
		// now behaves, so the watchdog quiets down again.
		{Before: 100, Action: "call", Run: func(ctx context.Context) error {
			n, _ := reg.Get("soak-c")
			n.Cfg.Faults = faults.Plan{Throttle: 1, ThrottleFactor: 0.05, ThrottleFraction: 1, MeterSpike: 1, SpikeFactor: 4, Seed: 5}
			h.extras["/v1/fleet/place"]++
			status, body, err := h.target.Admin(ctx, "POST", "/v1/fleet/place",
				[]byte(`{"profile": {"sp": 9.5e8, "int": 3.1e8, "dram_words": 1.7e8}, "occupancy": 0.55}`))
			if err != nil {
				return err
			}
			if status != 200 {
				return fmt.Errorf("drift-trigger place = %d: %s", status, body)
			}
			return nil
		}},
		// The live-added device drains back out.
		{Before: 160, Action: "drain", Device: "soak-added"},
	}}
	return h
}

// replayMembershipSoak runs the chaos soak once and returns the report
// bytes plus the harness for post-mortem assertions.
func replayMembershipSoak(t *testing.T) ([]byte, *membershipHarness) {
	t.Helper()
	tr := readSoakTrace(t)
	h := newMembershipHarness(t)
	ctx := context.Background()
	churn := h.plan.Hook(ctx, h.target)
	rep, err := workload.Replay(ctx, tr, h.target, workload.ReplayOptions{
		Mode: workload.ModeSync,
		Now:  h.clk.Now,
		BeforeEvent: func(i int) error {
			if i%10 == 0 {
				h.health.Tick(ctx, h.clk.Now())
			}
			return churn(i)
		},
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), h
}

// Determinism first: the full churn arc — add, quarantine, probe,
// recalibrate, drain — replays byte-identically under one seed set.
func TestMembershipSoakByteIdentical(t *testing.T) {
	a, _ := replayMembershipSoak(t)
	b, _ := replayMembershipSoak(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two chaos replays against identically-seeded fleets differ:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// The chaos contract: mid-trace membership churn may degrade requests
// (503) or orphan pinned ones (404) but never surface any other
// failure, and the client report plus the hook's own admin traffic must
// reconcile exactly with the server's counters.
func TestMembershipSoakChaos(t *testing.T) {
	raw, h := replayMembershipSoak(t)
	var rep workload.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.TransportFailures != 0 {
		t.Fatalf("%d transport failures against an in-process handler", rep.TransportFailures)
	}
	allowed := map[string]bool{"200": true, "201": true, "202": true, "404": true, "503": true}
	for path, ep := range rep.Endpoints {
		for code, n := range ep.ByStatus {
			if !allowed[code] {
				t.Errorf("%s answered %d requests with disallowed status %s", path, n, code)
			}
		}
	}

	// The live-added device actually served trace traffic while it was a
	// member.
	if rep.DeviceShare["soak-added"] <= 0 {
		t.Errorf("live-added device served no requests: share %v", rep.DeviceShare)
	}

	// Exact reconciliation: every server-counted request is either a
	// trace event or a hook-issued admin call.
	stats, err := h.target.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	hookIssued := map[string]int{
		"/v1/fleet/devices":      h.plan.Issued["/v1/fleet/devices"],
		"/v1/fleet/devices/{id}": h.plan.Issued["/v1/fleet/devices/{id}"],
	}
	for path, n := range h.extras {
		hookIssued[path] += n
	}
	for path, srvEp := range stats.Endpoints {
		if path == "/v1/stats" {
			continue // the reconciliation reads themselves
		}
		want := rep.Endpoints[path].Requests + hookIssued[path]
		if int(srvEp.Requests) != want {
			t.Errorf("%s: server counted %d, client sent %d trace + %d hook",
				path, srvEp.Requests, rep.Endpoints[path].Requests, hookIssued[path])
		}
	}
	if h.plan.Issued["/v1/fleet/devices"] != 1 || h.plan.Issued["/v1/fleet/devices/{id}"] != 1 {
		t.Errorf("churn plan issued %v, want one add and one remove", h.plan.Issued)
	}

	// Final membership: the added device is gone, the original three are
	// active again, and the registry epoch moved with the churn.
	if stats.States["active"] != 3 || len(stats.Devices) != 3 {
		t.Fatalf("final states %v over %d devices, want 3 active", stats.States, len(stats.Devices))
	}
	byID := make(map[string]serve.DeviceStats, len(stats.Devices))
	for _, d := range stats.Devices {
		byID[d.DeviceID] = d
	}
	if _, ok := byID["soak-added"]; ok {
		t.Error("drained device still in the final stats")
	}
	// soak-b went through exactly one quarantine spell and recovered.
	if b := byID["soak-b"]; b.Quarantines != 1 || b.State != "active" || b.Breaker != "closed" {
		t.Errorf("soak-b = %+v, want one quarantine, active, closed breaker", b)
	}
	// soak-c's drift fired exactly one recalibration; the constants
	// swapped under a new generation.
	if c := byID["soak-c"]; c.Recalibrations != 1 || c.CalGeneration != 2 {
		t.Errorf("soak-c = %+v, want exactly one recalibration at generation 2", c)
	}
	nc, _ := h.reg.Get("soak-c")
	if nc.RecalFailures() != 0 {
		t.Errorf("soak-c recorded %d recalibration failures", nc.RecalFailures())
	}
	// Untouched device: no lifecycle events at all.
	if a := byID["soak-a"]; a.Quarantines != 0 || a.Recalibrations != 0 || a.CalGeneration != 1 {
		t.Errorf("soak-a = %+v, want no lifecycle churn", a)
	}
}
