package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/workload"
)

func readSoakTrace(t *testing.T) *workload.Trace {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "soak.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := workload.Read(f)
	if err != nil {
		t.Fatalf("reading checked-in trace: %v", err)
	}
	return tr
}

// soakServer builds the faulted single-device server the soak replays
// against. disconnect=0.5 under plan seed 17 sits in the gap where
// every calibration-grid sweep succeeds and every full-grid sweep
// fails permanently (the fault stream keys on setting identity, so a
// grid's fate is uniform): full-grid autotunes trip the breaker while
// calibration keys warm the cache, and the warmed keys then serve
// degraded — deterministically.
func soakServer(t *testing.T, clk *workload.StepClock) *serve.Server {
	t.Helper()
	cal, err := serve.FixtureCalibration()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := faults.ParsePlan("disconnect=0.5,seed=17")
	if err != nil {
		t.Fatal(err)
	}
	cfg := experiments.Config{Seed: 42, Faults: plan}
	return serve.New(tegra.NewDevice(), cal, cfg, serve.Options{
		BreakerThreshold: 2,
		BreakerCooldown:  5 * time.Minute,
		Clock:            clk.Now,
	})
}

func replaySoak(t *testing.T) []byte {
	t.Helper()
	tr := readSoakTrace(t)
	clk := workload.NewStepClock(time.Millisecond)
	srv := soakServer(t, clk)
	rep, err := workload.Replay(context.Background(), tr, workload.HandlerTarget{Handler: srv.Handler()},
		workload.ReplayOptions{Mode: workload.ModeSync, Now: clk.Now})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The acceptance contract: replaying the checked-in trace twice against
// identically-seeded servers yields byte-identical reports.
func TestSoakReplayByteIdentical(t *testing.T) {
	a, b := replaySoak(t), replaySoak(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("two replays against identically-seeded servers differ:\n--- a\n%s\n--- b\n%s", a, b)
	}
}

// The soak must actually exercise the failure machinery — breaker
// trips, degraded serves — and the client-side report must reconcile
// exactly with the server's own counters.
func TestSoakReplayReconcilesWithServer(t *testing.T) {
	raw := replaySoak(t)
	var rep workload.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}

	tr := readSoakTrace(t)
	if rep.Requests != len(tr.Events) {
		t.Fatalf("report counts %d requests, trace has %d", rep.Requests, len(tr.Events))
	}
	if rep.TransportFailures != 0 {
		t.Fatalf("%d transport failures against an in-process handler", rep.TransportFailures)
	}
	srv := rep.Server
	if srv == nil {
		t.Fatalf("report carries no server snapshot")
	}
	if srv.BreakerTrips == 0 {
		t.Fatalf("soak never tripped a breaker; the fault plan has drifted out of its regime")
	}
	if srv.DegradedServes == 0 || rep.DegradedResponses == 0 {
		t.Fatalf("soak produced no degraded serves (server %d, client %d)", srv.DegradedServes, rep.DegradedResponses)
	}
	if uint64(rep.DegradedResponses) != srv.DegradedServes {
		t.Fatalf("client saw %d degraded responses, server counted %d", rep.DegradedResponses, srv.DegradedServes)
	}
	if srv.CacheHits == 0 {
		t.Fatalf("soak never hit the sweep cache")
	}
	if srv.SweepJ <= 0 || srv.AnsweredJ <= 0 || srv.AnsweredPerSweepJ <= 0 {
		t.Fatalf("energy ledgers empty: sweep %v answered %v ratio %v", srv.SweepJ, srv.AnsweredJ, srv.AnsweredPerSweepJ)
	}

	// Every endpoint's client-side status counts must match the server's
	// own request counters — /v1/stats reads must not move them.
	clk := workload.NewStepClock(time.Millisecond)
	target := workload.HandlerTarget{Handler: soakServer(t, clk).Handler()}
	rep2, err := workload.Replay(context.Background(), tr, target, workload.ReplayOptions{Mode: workload.ModeSync, Now: clk.Now})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := target.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for path, ep := range rep2.Endpoints {
		srvEp, ok := stats.Endpoints[path]
		if !ok {
			t.Fatalf("server has no counters for %s", path)
		}
		if uint64(ep.Requests) != srvEp.Requests {
			t.Fatalf("%s: client sent %d, server counted %d", path, ep.Requests, srvEp.Requests)
		}
		for code, n := range ep.ByStatus {
			if uint64(n) != srvEp.ByCode[code] {
				t.Fatalf("%s status %s: client saw %d, server counted %d", path, code, n, srvEp.ByCode[code])
			}
		}
	}
}

// The CLI wrapper end to end: gen twice is byte-identical, and an
// in-process fleet replay through runReplay is too.
func TestCLIGenAndReplayDeterministic(t *testing.T) {
	dir := t.TempDir()
	genOut := func(name string) string {
		p := filepath.Join(dir, name)
		if err := runGen([]string{"-seed", "7", "-duration", "2", "-out", p}); err != nil {
			t.Fatalf("gen: %v", err)
		}
		return p
	}
	a, b := genOut("a.jsonl"), genOut("b.jsonl")
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("two gens with one seed differ")
	}

	replayOut := func(name string) []byte {
		p := filepath.Join(dir, name)
		if err := runReplay([]string{"-trace", a, "-inprocess", "-report", p}); err != nil {
			t.Fatalf("replay: %v", err)
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	ra, rb := replayOut("ra.json"), replayOut("rb.json")
	if !bytes.Equal(ra, rb) {
		t.Fatalf("two in-process replays differ:\n--- a\n%s\n--- b\n%s", ra, rb)
	}
	var rep workload.Report
	if err := json.Unmarshal(ra, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	// The built-in fleet has three devices; the hash ring should spread
	// the request keys across all of them.
	devs := 0
	for dev, share := range rep.DeviceShare {
		if dev != "" && share > 0 {
			devs++
		}
	}
	if devs != 3 {
		t.Fatalf("device share covers %d devices, want 3: %v", devs, rep.DeviceShare)
	}
}
