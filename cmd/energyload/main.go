// Command energyload generates and replays deterministic request
// traces against energyd (see internal/workload):
//
//	energyload gen    -seed 7 -duration 30 -out trace.jsonl
//	energyload replay -trace trace.jsonl -addr http://127.0.0.1:8080
//	energyload replay -trace trace.jsonl -inprocess -report report.json
//
// gen expands the standard soak spec (diurnal predict/autotune/fleet
// mixes with burst episodes) into a JSONL trace; the same seed and
// duration always produce the same bytes.
//
// replay drives every request of a trace at a target and writes a
// machine-readable report: per-endpoint latency percentiles and status
// counts, cache hit rate, breaker trips, degraded serves, per-device
// request share, and energy answered per joule of sweep work. The
// target is a live daemon (-addr) or an in-process fleet built from
// -fleet (default: the standard 3-device heterogeneous fleet), which
// needs no network and — in the default sync mode, where the replayer
// and server share one virtual step clock — produces byte-identical
// reports across runs. -mode open paces requests open-loop at the
// recorded offsets (scaled by -speed) instead; its latencies are
// wall-clock. -faults injects the usual sweep fault plan into the
// in-process fleet, for soak tests that exercise breakers and degraded
// serves.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: energyload <gen|replay> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "energyload: unknown subcommand %q (want gen or replay)\n", os.Args[1])
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "energyload: %v\n", err)
		os.Exit(1)
	}
}

// runGen expands the default soak spec into a trace file.
func runGen(args []string) error {
	fs := flag.NewFlagSet("energyload gen", flag.ExitOnError)
	app := cli.NewOn("energyload", fs)
	duration := fs.Float64("duration", 30, "trace length in seconds of trace time")
	name := fs.String("name", "", "trace name recorded in the header (default: the spec's)")
	out := fs.String("out", "-", "output trace path (- = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := app.Validate(); err != nil {
		return err
	}
	spec := workload.DefaultSpec(app.Seed, *duration)
	if *name != "" {
		spec.Name = *name
	}
	tr, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	w, closeW, err := openOut(*out)
	if err != nil {
		return err
	}
	if err := tr.Write(w); err != nil {
		closeW()
		return err
	}
	return closeW()
}

// runReplay drives a trace at a live daemon or an in-process fleet and
// writes the report.
func runReplay(args []string) error {
	fs := flag.NewFlagSet("energyload replay", flag.ExitOnError)
	app := cli.NewOn("energyload", fs)
	tracePath := fs.String("trace", "", "trace file to replay (required)")
	addr := fs.String("addr", "", "base URL of a live energyd, e.g. http://127.0.0.1:8080")
	inprocess := fs.Bool("inprocess", false, "replay against an in-process fleet instead of a live daemon")
	fleetPath := fs.String("fleet", "", "fleet config JSON for -inprocess (empty = built-in 3-device fleet)")
	mode := fs.String("mode", "sync", "replay mode: sync (sequential, deterministic) or open (paced open-loop)")
	speed := fs.Float64("speed", 1, "open-mode rate multiplier: 2 replays a 60s trace in 30s")
	route := fs.String("route", "", "fleet_predict routing selector, e.g. least_loaded")
	report := fs.String("report", "-", "report output path (- = stdout)")
	step := fs.Duration("step", time.Millisecond, "virtual clock step per read in -inprocess sync mode")
	cacheCap := fs.Int("cachecap", 64, "autotune sweep cache capacity per in-process device")
	sweepTimeout := fs.Duration("sweep-timeout", 30*time.Second, "server-side cap on one in-process autotune sweep")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive sweep failures that open an in-process breaker")
	breakerCooldown := fs.Duration("breaker-cooldown", 30*time.Second, "open period before an in-process breaker allows a probe")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := app.Validate(); err != nil {
		return err
	}
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	if (*addr == "") == !*inprocess {
		return fmt.Errorf("exactly one of -addr and -inprocess is required")
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		return err
	}
	tr, err := workload.Read(f)
	f.Close()
	if err != nil {
		return err
	}

	opts := workload.ReplayOptions{
		Mode:  workload.Mode(*mode),
		Speed: *speed,
		Route: *route,
		//energylint:allow determinism(replay pacing against a live daemon is wall-clock by nature; the deterministic path injects a StepClock below)
		Now:   time.Now,
		Sleep: time.Sleep,
	}
	var target workload.Target
	if *inprocess {
		srvOpts := serve.Options{
			CacheSize:        *cacheCap,
			SweepTimeout:     *sweepTimeout,
			BreakerThreshold: *breakerThreshold,
			BreakerCooldown:  *breakerCooldown,
		}
		if opts.Mode == workload.ModeSync {
			// One virtual clock on both sides makes latency a count of
			// clock reads along the request path — the byte-identical
			// report contract.
			clk := workload.NewStepClock(*step)
			opts.Now = clk.Now
			srvOpts.Clock = clk.Now
		}
		cfg := app.Config()
		// Request sweeps run concurrently and must not share the App's
		// milestone tracker (same rule as cmd/energyd).
		cfg.OnProgress = nil
		srv, err := buildFleet(*fleetPath, cfg, srvOpts)
		if err != nil {
			return err
		}
		target = workload.HandlerTarget{Handler: srv.Handler()}
	} else {
		target = workload.HTTPTarget{Base: *addr}
	}

	rep, err := workload.Replay(context.Background(), tr, target, opts)
	if err != nil {
		return err
	}
	w, closeW, err := openOut(*report)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(w); err != nil {
		closeW()
		return err
	}
	return closeW()
}

// defaultFleetConfig is the built-in 3-device heterogeneous fleet,
// mirroring cmd/energyd/testdata/fleet.json: the TK1 reference, a hot
// leaky bin, and a frequency-capped low-power SKU. Synthetic noiseless
// calibrations boot each device instantly and deterministically.
func defaultFleetConfig() fleet.FleetConfig {
	return fleet.FleetConfig{Devices: []fleet.Spec{
		{ID: "tk1-reference"},
		{ID: "tk1-binned-hot", Params: fleet.ParamsJSON{LeakProcWpV: 3.55, MiscW: 0.32}},
		{ID: "tk1-lowpower-sku", Params: fleet.ParamsJSON{SPpJ: 22.1, DRAMpJ: 318.5}, MaxCoreMHz: 612},
	}}
}

// buildFleet assembles the in-process registry: the built-in fleet, or
// a -fleet config through the same loader cmd/energyd uses.
func buildFleet(path string, cfg experiments.Config, opts serve.Options) (*serve.Server, error) {
	fc := defaultFleetConfig()
	if path != "" {
		var err error
		fc, err = fleet.LoadConfig(path)
		if err != nil {
			return nil, err
		}
	}
	reg, err := fleet.Build(fc, cfg, cli.LoadCalibration, opts.NodeOptions())
	if err != nil {
		return nil, err
	}
	return serve.NewFleet(reg, opts), nil
}

// openOut opens an output sink; "-" is stdout (whose close is a no-op,
// so a report can pipe into a shell without double-close errors).
func openOut(path string) (io.Writer, func() error, error) {
	if path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}
