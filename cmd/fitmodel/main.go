// Command fitmodel runs the paper's model-instantiation pipeline
// (§II-C/D): it executes the intensity microbenchmark suite over the 16
// calibration DVFS settings on the simulated Jetson TK1, measures every
// run with the simulated PowerMon 2, fits the DVFS-aware energy roofline
// by non-negative least squares, and prints
//
//   - Table I: the derived per-operation energy costs and constant power
//     for every calibration setting, and
//   - the §II-D validation: 2-fold holdout and 16-fold cross-validation
//     error statistics.
package main

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/export"
)

func main() {
	app := cli.New("fitmodel")
	app.Parse()

	cal, err := app.Calibrate(context.Background(), app.Device())
	app.Check(err)

	fmt.Printf("Fitted %d samples (116 kernels x 16 settings) by NNLS.\n", len(cal.Samples))
	m := cal.Model
	fmt.Printf("Model constants: c0 = {SP %.2f, DP %.2f, Int %.2f, SM %.2f, L2 %.2f, DRAM %.2f} pJ/V^2\n",
		m.SPpJ, m.DPpJ, m.IntpJ, m.SMpJ, m.L2pJ, m.DRAMpJ)
	fmt.Printf("                 c1,proc %.2f W/V   c1,mem %.2f W/V   Pmisc %.2f W\n\n",
		m.C1Proc, m.C1Mem, m.PMisc)

	fmt.Println("TABLE I: frequency/voltage settings and derived energy and power costs")
	w := cli.Table(tabwriter.AlignRight)
	fmt.Fprintln(w, "Type\tCore MHz\tCore mV\tMem MHz\tMem mV\tSP pJ\tDP pJ\tInt pJ\tSM pJ\tL2 pJ\tMem pJ\tConst W\t")
	for _, r := range cal.TableI() {
		fmt.Fprintf(w, "%s\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			r.Type, r.Setting.Core.FreqMHz, r.Setting.Core.VoltageMV,
			r.Setting.Mem.FreqMHz, r.Setting.Mem.VoltageMV,
			r.Eps.SP, r.Eps.DP, r.Eps.Int, r.Eps.SM, r.Eps.L2, r.Eps.DRAM, r.Eps.ConstPower)
	}
	w.Flush()

	h := cal.Holdout.Percent()
	k := cal.KFold.Percent()
	fmt.Println("\nVALIDATION (relative error, %, vs measured energy)")
	fmt.Printf("  2-fold holdout (T trains, V validates):  mean %.2f  stddev %.2f  min %.2f  max %.2f   (paper: 2.87 / 2.47 / 0.00 / 11.94)\n",
		h.Mean, h.Stddev, h.Min, h.Max)
	fmt.Printf("  16-fold CV (leave-one-setting-out):      mean %.2f  stddev %.2f  min %.2f  max %.2f   (paper: 6.56 / 3.80 / 1.60 / 15.22)\n",
		k.Mean, k.Stddev, k.Min, k.Max)

	app.Check(app.WriteArtifact("samples.csv", func(f io.Writer) error {
		return export.WriteSamples(f, cal.Samples)
	}))
	app.Check(app.WriteArtifact("table1.csv", func(f io.Writer) error {
		return export.WriteTableI(f, cal.TableI())
	}))
}
