// Command validate reproduces the paper's FMM energy validation and
// analysis (§IV):
//
//   - Figure 5: predicted vs measured energy for the 64 (setting, input)
//     cases of Table IV, with the overall error statistics;
//   - Figure 6: the energy breakdown by instruction and data-access type
//     at the maximum frequency setting;
//   - Figure 7: the split between computation, data movement and
//     constant power, plus the microbenchmark comparison point.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/export"
)

func main() {
	app := cli.New("validate")
	small := flag.Bool("small", false, "scale inputs down 8x for a quick demo")
	app.Parse()

	ctx := context.Background()
	dev := app.Device()
	cfg := app.Config()
	cal, err := app.Calibrate(ctx, dev)
	app.Check(err)

	inputs := experiments.FMMInputs()
	if *small {
		var clamped []string
		inputs, clamped = experiments.ScaleInputs(inputs, 8)
		if len(clamped) > 0 {
			log.Printf("warning: clamped %s to N=2Q; scaling 8x would have left N <= Q (a degenerate single-leaf octree)",
				strings.Join(clamped, ", "))
		}
	}
	for _, in := range inputs {
		fmt.Fprintf(os.Stderr, "running FMM %s (N=%d, Q=%d)...\n", in.ID, in.N, in.Q)
	}
	runs, err := experiments.RunFMMInputs(ctx, inputs, cfg)
	app.Check(err)

	f5, err := experiments.Figure5(ctx, dev, cal.Model, runs, cfg)
	app.Check(err)

	fmt.Println("FIGURE 5: estimated vs measured energy, 64 test cases")
	w := cli.Table(tabwriter.AlignRight)
	fmt.Fprintln(w, "Case\tTime s\tMeasured J\tPredicted J\tError %\tConst %\t")
	for _, c := range f5.Cases {
		fmt.Fprintf(w, "%s-%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t\n",
			c.SettingID, c.Input.ID, c.Time, c.MeasuredEnergy, c.PredictedEnergy,
			c.RelErr*100, c.ConstantFraction()*100)
	}
	w.Flush()
	fmt.Printf("\nError summary (%%): mean %.2f  stddev %.2f  min %.2f  max %.2f   (paper: 6.17 / 4.65 / 0.09 / 14.89)\n",
		f5.Summary.Mean*100, f5.Summary.Stddev*100, f5.Summary.Min*100, f5.Summary.Max*100)

	fmt.Println("\nFIGURE 6: energy breakdown by type at max frequency (852/924 MHz)")
	w = cli.Table(tabwriter.AlignRight)
	fmt.Fprintln(w, "Input\tFMA %\tAdd %\tMul %\tInt %\tSM %\tL2 %\tDRAM %\tInt/compute %\tDRAM/data %\t")
	s1 := dvfs.MaxSetting()
	for _, run := range runs {
		sched := run.Schedule(dev, s1)
		parts := cal.Model.PredictParts(run.TotalProfile(), s1, sched.Duration())
		dyn := parts.Compute() + parts.Data()
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			run.Input.ID,
			// The model charges all DP flavors at the DP cost; split the
			// DP bar by instruction share for display, as the paper does.
			100*float64(parts.DP)/float64(dyn)*run.Result.Profiles.Total().DPFMA/dpTotal(run),
			100*float64(parts.DP)/float64(dyn)*run.Result.Profiles.Total().DPAdd/dpTotal(run),
			100*float64(parts.DP)/float64(dyn)*run.Result.Profiles.Total().DPMul/dpTotal(run),
			100*parts.Int/dyn, 100*parts.SM/dyn, 100*parts.L2/dyn, 100*parts.DRAM/dyn,
			100*parts.Int/parts.Compute(),
			100*parts.DRAM/parts.Data())
	}
	w.Flush()
	fmt.Println("(paper: integers ~23% of computation energy; DRAM up to ~50% of data energy)")

	fmt.Println("\nFIGURE 7: computation / data / constant-power energy split (%)")
	w = cli.Table(tabwriter.AlignRight)
	fmt.Fprintln(w, "Case\tComputation\tData\tConstant\t")
	for _, c := range f5.Cases {
		tot := c.PredictedParts.Total()
		fmt.Fprintf(w, "%s-%s\t%.1f\t%.1f\t%.1f\t\n", c.SettingID, c.Input.ID,
			100*c.PredictedParts.Compute()/tot, 100*c.PredictedParts.Data()/tot,
			100*c.PredictedParts.Constant/tot)
	}
	w.Flush()

	mb, err := experiments.MicrobenchConstantFraction(dev, cal.Model, cfg, s1)
	app.Check(err)
	fmt.Printf("\nConstant power dominates the FMM (paper: 75–95%% of total energy), while a\n")
	fmt.Printf("saturating microbenchmark spends only %.0f%% on constant power (paper: ~30%%).\n", mb*100)
	fmt.Println("Hence, for the FMM, the energy-optimal DVFS setting coincides with the")
	fmt.Println("time-optimal one (§IV-C).")

	app.Check(app.WriteArtifact("figure5.csv", func(f io.Writer) error {
		return export.WriteFigure5(f, f5.Cases)
	}))
}

func dpTotal(run *experiments.FMMRun) float64 {
	p := run.Result.Profiles.Total()
	return p.DPFMA + p.DPAdd + p.DPMul
}
