// Command validate reproduces the paper's FMM energy validation and
// analysis (§IV):
//
//   - Figure 5: predicted vs measured energy for the 64 (setting, input)
//     cases of Table IV, with the overall error statistics;
//   - Figure 6: the energy breakdown by instruction and data-access type
//     at the maximum frequency setting;
//   - Figure 7: the split between computation, data movement and
//     constant power, plus the microbenchmark comparison point.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/export"
	"dvfsroofline/internal/tegra"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for measurement noise and experiment randomness")
	small := flag.Bool("small", false, "scale inputs down 8x for a quick demo")
	csvDir := flag.String("csv", "", "directory to write figure5.csv (empty disables)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("validate: ")

	dev := tegra.NewDevice()
	cfg := experiments.Config{Seed: *seed}
	cal, err := experiments.Calibrate(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}

	inputs := experiments.FMMInputs()
	if *small {
		for i := range inputs {
			inputs[i].N /= 8
		}
	}
	runs := make([]*experiments.FMMRun, len(inputs))
	for i, in := range inputs {
		fmt.Fprintf(os.Stderr, "running FMM %s (N=%d, Q=%d)...\n", in.ID, in.N, in.Q)
		if runs[i], err = experiments.RunFMMInput(in, cfg); err != nil {
			log.Fatal(err)
		}
	}

	f5, err := experiments.Figure5(dev, cal.Model, runs, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("FIGURE 5: estimated vs measured energy, 64 test cases")
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Case\tTime s\tMeasured J\tPredicted J\tError %\tConst %\t")
	for _, c := range f5.Cases {
		fmt.Fprintf(w, "%s-%s\t%.2f\t%.2f\t%.2f\t%.2f\t%.1f\t\n",
			c.SettingID, c.Input.ID, c.Time, c.MeasuredEnergy, c.PredictedEnergy,
			c.RelErr*100, c.ConstantFraction()*100)
	}
	w.Flush()
	fmt.Printf("\nError summary (%%): mean %.2f  stddev %.2f  min %.2f  max %.2f   (paper: 6.17 / 4.65 / 0.09 / 14.89)\n",
		f5.Summary.Mean*100, f5.Summary.Stddev*100, f5.Summary.Min*100, f5.Summary.Max*100)

	fmt.Println("\nFIGURE 6: energy breakdown by type at max frequency (852/924 MHz)")
	w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Input\tFMA %\tAdd %\tMul %\tInt %\tSM %\tL2 %\tDRAM %\tInt/compute %\tDRAM/data %\t")
	s1 := dvfs.MaxSetting()
	for _, run := range runs {
		sched := run.Schedule(dev, s1)
		parts := cal.Model.PredictParts(run.TotalProfile(), s1, sched.Duration())
		dyn := parts.Compute() + parts.Data()
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			run.Input.ID,
			// The model charges all DP flavors at the DP cost; split the
			// DP bar by instruction share for display, as the paper does.
			100*parts.DP/dyn*run.Result.Profiles.Total().DPFMA/dpTotal(run),
			100*parts.DP/dyn*run.Result.Profiles.Total().DPAdd/dpTotal(run),
			100*parts.DP/dyn*run.Result.Profiles.Total().DPMul/dpTotal(run),
			100*parts.Int/dyn, 100*parts.SM/dyn, 100*parts.L2/dyn, 100*parts.DRAM/dyn,
			100*parts.Int/parts.Compute(),
			100*parts.DRAM/parts.Data())
	}
	w.Flush()
	fmt.Println("(paper: integers ~23% of computation energy; DRAM up to ~50% of data energy)")

	fmt.Println("\nFIGURE 7: computation / data / constant-power energy split (%)")
	w = tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(w, "Case\tComputation\tData\tConstant\t")
	for _, c := range f5.Cases {
		tot := c.PredictedParts.Total()
		fmt.Fprintf(w, "%s-%s\t%.1f\t%.1f\t%.1f\t\n", c.SettingID, c.Input.ID,
			100*c.PredictedParts.Compute()/tot, 100*c.PredictedParts.Data()/tot,
			100*c.PredictedParts.Constant/tot)
	}
	w.Flush()

	mb, err := experiments.MicrobenchConstantFraction(dev, cal.Model, cfg, s1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nConstant power dominates the FMM (paper: 75–95%% of total energy), while a\n")
	fmt.Printf("saturating microbenchmark spends only %.0f%% on constant power (paper: ~30%%).\n", mb*100)
	fmt.Println("Hence, for the FMM, the energy-optimal DVFS setting coincides with the")
	fmt.Println("time-optimal one (§IV-C).")

	if *csvDir != "" {
		path := filepath.Join(*csvDir, "figure5.csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := export.WriteFigure5(f, f5.Cases); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}

func dpTotal(run *experiments.FMMRun) float64 {
	p := run.Result.Profiles.Total()
	return p.DPFMA + p.DPAdd + p.DPMul
}
