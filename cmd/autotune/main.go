// Command autotune reproduces the paper's Table II (§II-E): for every
// intensity microbenchmark it sweeps the measured DVFS settings and
// compares two strategies for picking the (f_proc, f_mem) pair that
// minimizes energy —
//
//   - "Our model": the DVFS-aware energy roofline's prediction, and
//   - "Time Oracle": race-to-halt, i.e. the fastest configuration —
//
// scoring both against the experimentally measured minimum.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/export"
	"dvfsroofline/internal/tegra"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for measurement noise and experiment randomness")
	csvDir := flag.String("csv", "", "directory to write table2.csv (empty disables)")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("autotune: ")

	dev := tegra.NewDevice()
	cfg := experiments.Config{Seed: *seed}
	cal, err := experiments.Calibrate(dev, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := experiments.Autotune(dev, cal.Model, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("TABLE II: energy autotuning — mispredictions and energy lost (%)")
	fmt.Println("(energy lost is relative to the experimentally measured minimum,")
	fmt.Println(" summarized over the mispredicted cases only, as in the paper)")
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "Family\tStrategy\tMispredictions\tMean\tMin\tMax\t")
	for _, r := range rows {
		mp := r.Model.LostPercent()
		op := r.Oracle.LostPercent()
		fmt.Fprintf(w, "%s\tOur model\t%d (out of %d)\t%.2f\t%.2f\t%.2f\t\n",
			r.Family, r.Model.Mispredictions, r.Model.Cases, mp.Mean, mp.Min, mp.Max)
		fmt.Fprintf(w, "\tTime Oracle\t%d (out of %d)\t%.2f\t%.2f\t%.2f\t\n",
			r.Oracle.Mispredictions, r.Oracle.Cases, op.Mean, op.Min, op.Max)
	}
	w.Flush()
	fmt.Println("\nPaper's headline: race-to-halt is not energy-optimal even for uniform")
	fmt.Println("computations; the model picks (near-)optimal settings at a fraction of the loss.")

	if *csvDir != "" {
		path := filepath.Join(*csvDir, "table2.csv")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := export.WriteTableII(f, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
}
