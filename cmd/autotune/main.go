// Command autotune reproduces the paper's Table II (§II-E): for every
// intensity microbenchmark it sweeps the measured DVFS settings and
// compares two strategies for picking the (f_proc, f_mem) pair that
// minimizes energy —
//
//   - "Our model": the DVFS-aware energy roofline's prediction, and
//   - "Time Oracle": race-to-halt, i.e. the fastest configuration —
//
// scoring both against the experimentally measured minimum.
package main

import (
	"context"
	"fmt"
	"io"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/export"
)

func main() {
	app := cli.New("autotune")
	app.Parse()

	ctx := context.Background()
	dev := app.Device()
	cal, err := app.Calibrate(ctx, dev)
	app.Check(err)
	rows, err := experiments.Autotune(ctx, dev, cal.Model, app.Config())
	app.Check(err)

	fmt.Println("TABLE II: energy autotuning — mispredictions and energy lost (%)")
	fmt.Println("(energy lost is relative to the experimentally measured minimum,")
	fmt.Println(" summarized over the mispredicted cases only, as in the paper)")
	w := cli.Table(0)
	fmt.Fprintln(w, "Family\tStrategy\tMispredictions\tMean\tMin\tMax\t")
	for _, r := range rows {
		mp := r.Model.LostPercent()
		op := r.Oracle.LostPercent()
		fmt.Fprintf(w, "%s\tOur model\t%d (out of %d)\t%.2f\t%.2f\t%.2f\t\n",
			r.Family, r.Model.Mispredictions, r.Model.Cases, mp.Mean, mp.Min, mp.Max)
		fmt.Fprintf(w, "\tTime Oracle\t%d (out of %d)\t%.2f\t%.2f\t%.2f\t\n",
			r.Oracle.Mispredictions, r.Oracle.Cases, op.Mean, op.Min, op.Max)
	}
	w.Flush()
	fmt.Println("\nPaper's headline: race-to-halt is not energy-optimal even for uniform")
	fmt.Println("computations; the model picks (near-)optimal settings at a fraction of the loss.")

	app.Check(app.WriteArtifact("table2.csv", func(f io.Writer) error {
		return export.WriteTableII(f, rows)
	}))
}
