// Command fmmprof runs the FMM proxy application for the paper's
// Table IV inputs F1–F8 and prints the Figure 4 profile: the breakdown
// of computation instructions by class and of data accesses by
// memory-hierarchy level, as counted by the Table III performance
// counters during a real (simulated-platform, real-algorithm) FMM
// execution.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/tegra"
)

func main() {
	seed := flag.Int64("seed", 42, "seed for point generation")
	small := flag.Bool("small", false, "scale inputs down 8x for a quick demo")
	attribute := flag.Bool("attribute", false, "segment the power trace of the last input and attribute energy per phase")
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("fmmprof: ")

	inputs := experiments.FMMInputs()
	if *small {
		for i := range inputs {
			inputs[i].N /= 8
		}
	}

	fmt.Println("TABLE IV (FMM inputs) and FIGURE 4 (instruction/data breakdown)")
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	header := "ID\tN\tQ\tleaves\tdepth\tinstr FMA\tadd\tmul\tint\taccess SM\tL1\tL2\tDRAM\t"
	fmt.Fprintln(w, header)
	for _, in := range inputs {
		run, err := experiments.RunFMMInput(in, experiments.Config{Seed: *seed})
		if err != nil {
			log.Fatal(err)
		}
		p := run.TotalProfile()
		ins := p.Instructions()
		acc := p.Accesses()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			in.ID, in.N, in.Q, run.Result.Tree.NumLeaves(), run.Result.Tree.Depth(),
			100*p.DPFMA/ins, 100*p.DPAdd/ins, 100*p.DPMul/ins, 100*p.Int/ins,
			100*p.SharedWords/acc, 100*p.L1Words/acc, 100*p.L2Words/acc, 100*p.DRAMWords/acc)
	}
	w.Flush()

	fmt.Println("\nPer-phase instruction share (last input):")
	in := inputs[len(inputs)-1]
	run, err := experiments.RunFMMInput(in, experiments.Config{Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	var total float64
	for ph := fmm.Phase(0); ph < fmm.NumPhases; ph++ {
		total += run.Result.Profiles[ph].Instructions()
	}
	var parts []string
	for _, ph := range fmm.Phases() {
		parts = append(parts, fmt.Sprintf("%s %.1f%%",
			ph, 100*run.Result.Profiles[ph].Instructions()/total))
	}
	fmt.Println("  " + strings.Join(parts, "  "))
	fmt.Println("\nPaper's observations: integer instructions are ~60% of all computation")
	fmt.Println("instructions for every input; DRAM is a small share (~13%) of accesses.")

	if *attribute {
		fmt.Println("\nBLIND PHASE ATTRIBUTION (trace segmentation vs model, at 852/924 MHz):")
		dev := tegra.NewDevice()
		cfg := experiments.Config{Seed: *seed}
		cal, err := experiments.Calibrate(dev, cfg)
		if err != nil {
			log.Fatal(err)
		}
		att, err := experiments.AttributePhases(dev, cfg.NewMeter(*seed+50), cal.Model, run, dvfs.MaxSetting())
		if err != nil {
			log.Fatal(err)
		}
		w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(w, "Phase\tWindow s\tMeasured J\tPredicted J\t")
		for _, pe := range att.Phases {
			fmt.Fprintf(w, "%s\t%.3f-%.3f\t%.3f\t%.3f\t\n",
				pe.Phase, pe.Start, pe.End, pe.MeasuredJ, pe.PredictedJ)
		}
		w.Flush()
		fmt.Printf("(%d segments detected blindly from the power samples; total %.2f J)\n",
			len(att.Segments), att.TotalJ)
	}
}
