// Command fmmprof runs the FMM proxy application for the paper's
// Table IV inputs F1–F8 and prints the Figure 4 profile: the breakdown
// of computation instructions by class and of data accesses by
// memory-hierarchy level, as counted by the Table III performance
// counters during a real (simulated-platform, real-algorithm) FMM
// execution.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"text/tabwriter"

	"dvfsroofline/internal/cli"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fmm"
)

func main() {
	app := cli.New("fmmprof")
	small := flag.Bool("small", false, "scale inputs down 8x for a quick demo")
	attribute := flag.Bool("attribute", false, "segment the power trace of the last input and attribute energy per phase")
	app.Parse()

	ctx := context.Background()
	cfg := app.Config()

	inputs := experiments.FMMInputs()
	if *small {
		var clamped []string
		inputs, clamped = experiments.ScaleInputs(inputs, 8)
		if len(clamped) > 0 {
			log.Printf("warning: clamped %s to N=2Q; scaling 8x would have left N <= Q (a degenerate single-leaf octree)",
				strings.Join(clamped, ", "))
		}
	}
	runs, err := experiments.RunFMMInputs(ctx, inputs, cfg)
	app.Check(err)

	fmt.Println("TABLE IV (FMM inputs) and FIGURE 4 (instruction/data breakdown)")
	w := cli.Table(tabwriter.AlignRight)
	header := "ID\tN\tQ\tleaves\tdepth\tinstr FMA\tadd\tmul\tint\taccess SM\tL1\tL2\tDRAM\t"
	fmt.Fprintln(w, header)
	for _, run := range runs {
		in := run.Input
		p := run.TotalProfile()
		ins := p.Instructions()
		acc := p.Accesses()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t\n",
			in.ID, in.N, in.Q, run.Result.Tree.NumLeaves(), run.Result.Tree.Depth(),
			100*p.DPFMA/ins, 100*p.DPAdd/ins, 100*p.DPMul/ins, 100*p.Int/ins,
			100*p.SharedWords/acc, 100*p.L1Words/acc, 100*p.L2Words/acc, 100*p.DRAMWords/acc)
	}
	w.Flush()

	fmt.Println("\nPer-phase instruction share (last input):")
	run := runs[len(runs)-1]
	var total float64
	for ph := fmm.Phase(0); ph < fmm.NumPhases; ph++ {
		total += run.Result.Profiles[ph].Instructions()
	}
	var parts []string
	for _, ph := range fmm.Phases() {
		parts = append(parts, fmt.Sprintf("%s %.1f%%",
			ph, 100*run.Result.Profiles[ph].Instructions()/total))
	}
	fmt.Println("  " + strings.Join(parts, "  "))
	fmt.Println("\nPaper's observations: integer instructions are ~60% of all computation")
	fmt.Println("instructions for every input; DRAM is a small share (~13%) of accesses.")

	if *attribute {
		fmt.Println("\nBLIND PHASE ATTRIBUTION (trace segmentation vs model, at 852/924 MHz):")
		dev := app.Device()
		cal, err := app.Calibrate(ctx, dev)
		app.Check(err)
		meter, err := cfg.NewMeter(app.Seed + 50)
		app.Check(err)
		att, err := experiments.AttributePhases(dev, meter, cal.Model, run, dvfs.MaxSetting())
		app.Check(err)
		w := cli.Table(tabwriter.AlignRight)
		fmt.Fprintln(w, "Phase\tWindow s\tMeasured J\tPredicted J\t")
		for _, pe := range att.Phases {
			fmt.Fprintf(w, "%s\t%.3f-%.3f\t%.3f\t%.3f\t\n",
				pe.Phase, pe.Start, pe.End, pe.MeasuredJ, pe.PredictedJ)
		}
		w.Flush()
		fmt.Printf("(%d segments detected blindly from the power samples; total %.2f J)\n",
			len(att.Segments), att.TotalJ)
	}
}
