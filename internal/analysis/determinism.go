package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// orderSensitivePkgs are the packages in which ranging over a map while
// appending to a slice or writing to an output stream is flagged: the
// measurement, experiment and statistics layers, where iteration order
// leaks straight into seeds, CSV artifacts and fitted constants. (The
// gate is by package name so analysistest packages can opt in.)
var orderSensitivePkgs = map[string]bool{
	"tegra": true, "microbench": true, "experiments": true,
	"faults": true, "powermon": true, "core": true, "stats": true,
}

// wallClockFuncs are the time-package functions that read the wall
// clock. Since and Until are included because they are sugar over Now.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// globalRandAllowed are the math/rand package-level functions that do
// NOT touch the shared global source and are therefore fine: they
// construct explicitly seeded generators.
var globalRandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Determinism enforces the repository's headline reproducibility
// guarantee at the source level. Three sub-rules:
//
//  1. no wall clock: time.Now / time.Since / time.Until are forbidden in
//     production code — a simulated measurement that reads the host
//     clock is no longer a function of (seed, identity). Injected
//     clocks (serve.Options.Clock) declare their time.Now default with
//     an //energylint:allow determinism(...) directive.
//  2. no global rand: math/rand package-level functions draw from the
//     process-wide source, whose state depends on everything that ran
//     before; only explicitly seeded generators (rand.New,
//     rand.NewSource, stats.NewRNG) are allowed.
//  3. no order-dependent map iteration (in the measurement/experiment
//     packages): a `for range m` over a map that appends to an outer
//     slice or writes to a stream emits results in a different order
//     every run unless the collected slice is sorted afterwards in the
//     same function.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock reads, global math/rand, and order-dependent map iteration",
	URL:  ruleURL("determinism"),
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				checkClockAndRand(pass, sel)
			}
			return true
		})
	}
	if orderSensitivePkgs[pass.Pkg.Name()] {
		checkMapOrder(pass)
	}
	return nil
}

// checkClockAndRand flags uses (calls or references) of wall-clock and
// global-rand functions.
func checkClockAndRand(pass *Pass, sel *ast.SelectorExpr) {
	obj := pass.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Only package-level functions: a method named Now on an injected
	// clock interface is precisely the sanctioned alternative.
	if fn.Type().(*types.Signature).Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock; inject a clock (cf. serve.Options.Clock) so simulated runs stay a pure function of the seed", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !globalRandAllowed[fn.Name()] {
			pass.Reportf(sel.Pos(), "rand.%s draws from the process-global source; use an explicitly seeded generator (rand.New(rand.NewSource(seed)) or stats.NewRNG)", fn.Name())
		}
	}
}

// checkMapOrder flags map-range loops whose body appends to a slice
// declared outside the loop (unless that slice is sorted later in the
// same function) or writes to an output stream.
func checkMapOrder(pass *Pass) {
	for _, file := range pass.Files {
		// Walk function by function so "sorted later" can be resolved
		// against the enclosing body.
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			checkMapOrderFunc(pass, body)
			return true
		})
	}
}

func checkMapOrderFunc(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Info.TypeOf(rng.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, body, rng)
		return true
	})
}

func checkMapRangeBody(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own function; analyzed separately
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(n.Lhs) {
					continue
				}
				target, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.ObjectOf(target)
				if obj == nil || insideNode(rng, obj.Pos()) {
					continue // loop-local accumulator: scoped to one iteration
				}
				if sortedLater(pass, funcBody, obj, rng.End()) {
					continue
				}
				pass.Reportf(n.Pos(), "append to %q while ranging over a map visits keys in nondeterministic order; collect and sort the keys first (cf. serve.sortedKeys)", target.Name)
			}
		case *ast.CallExpr:
			if name, ok := writerCall(pass, rng, n); ok {
				pass.Reportf(n.Pos(), "%s inside a map-range loop emits output in nondeterministic order; iterate sorted keys instead", name)
				return false
			}
		}
		return true
	})
}

// isBuiltin reports whether fun denotes the named predeclared function.
func isBuiltin(pass *Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Info.ObjectOf(id).(*types.Builtin)
	return ok
}

// insideNode reports whether pos falls inside n's source range.
func insideNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

// sortedLater reports whether obj is passed to a sort.* or slices.Sort*
// call after the map-range loop ends — the collect-then-sort idiom.
func sortedLater(pass *Pass, funcBody *ast.BlockStmt, obj types.Object, after token.Pos) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after {
			return true
		}
		fn, ok := calledFunc(pass, call)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// calledFunc resolves the *types.Func a call invokes, if any.
func calledFunc(pass *Pass, call *ast.CallExpr) (*types.Func, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, ok := pass.Info.ObjectOf(fun).(*types.Func)
		return fn, ok
	case *ast.SelectorExpr:
		fn, ok := pass.Info.ObjectOf(fun.Sel).(*types.Func)
		return fn, ok
	}
	return nil, false
}

// mentionsObject reports whether expr references obj anywhere.
func mentionsObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// writerNames are the method names that emit bytes to a stream.
var writerNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// writerCall recognizes stream writes whose sink outlives one loop
// iteration: fmt.Fprint{,f,ln}, io.WriteString, and Write* methods on a
// receiver declared outside the loop. A bytes.Buffer or strings.Builder
// created inside the iteration is per-key state and stays deterministic.
func writerCall(pass *Pass, rng *ast.RangeStmt, call *ast.CallExpr) (string, bool) {
	fn, ok := calledFunc(pass, call)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil {
		switch fn.Pkg().Path() {
		case "fmt":
			switch fn.Name() {
			case "Fprint", "Fprintf", "Fprintln":
				return "fmt." + fn.Name(), true
			}
		case "io":
			if fn.Name() == "WriteString" {
				return "io.WriteString", true
			}
		}
		return "", false
	}
	if !writerNames[fn.Name()] {
		return "", false
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if root := rootIdent(sel.X); root != nil {
			if obj := pass.Info.ObjectOf(root); obj != nil && insideNode(rng, obj.Pos()) {
				return "", false
			}
		}
	}
	return "(" + types.TypeString(sig.Recv().Type(), types.RelativeTo(pass.Pkg)) + ")." + fn.Name(), true
}

// rootIdent unwraps selectors/indexing/derefs to the base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}
