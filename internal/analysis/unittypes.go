package analysis

import (
	"go/ast"
)

// unitTypePkgs are the packages whose exported API must speak in the
// defined quantity types of internal/units rather than raw float64.
// They are the packages where a number *is* a physical quantity: the
// device model (tegra), the Eq. 9 energy model (core), the energyd wire
// types (serve), the fleet device specs (fleet), the power-meter
// simulation (powermon) and the frequency/voltage tables (dvfs). This
// is a superset of unitPkgs
// (unitdoc's gate): unitdoc's name-a-unit-in-the-name convention is the
// deprecated predecessor of this rule, and inside unitTypePkgs it is
// subsumed — a units.Joule field needs no "…J" suffix because the type
// system already says more than the suffix ever did.
var unitTypePkgs = map[string]bool{
	"core": true, "tegra": true, "serve": true, "fleet": true, "powermon": true, "dvfs": true,
}

// Unittypes forbids raw float64 in exported API surfaces of the
// unit-bearing packages: struct fields, function parameters and results
// must use a defined quantity type (units.Joule, units.Watt,
// units.Second, units.MegaHertz, …) so that swapping a Watt for a Joule
// is a compile error instead of a silent fit-absorbed bias. Unexported
// identifiers, test files (never loaded) and non-quantity numerics that
// genuinely are dimensionless belong behind a defined type too
// (units.Ratio) or behind an //energylint:allow with a reason.
var Unittypes = &Analyzer{
	Name: "unittypes",
	Doc:  "exported API in core/tegra/serve/powermon/dvfs must use units.* quantity types, not raw float64",
	URL:  ruleURL("unittypes"),
	Run:  runUnittypes,
}

func runUnittypes(pass *Pass) error {
	if !unitTypePkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					unittypesType(pass, ts)
				}
			case *ast.FuncDecl:
				unittypesFunc(pass, d)
			}
		}
	}
	return nil
}

// unittypesType checks an exported type declaration: struct fields and
// the signatures of exported interface methods. A defined type whose
// underlying is float64 (type Joule float64) is precisely the sanctioned
// pattern, so *ast.Ident float64 at the top of a TypeSpec is only
// flagged for aliases (type Power = float64), which launder rawness.
func unittypesType(pass *Pass, ts *ast.TypeSpec) {
	switch t := ts.Type.(type) {
	case *ast.StructType:
		for _, field := range t.Fields.List {
			exported := field.Names == nil // embedded: visibility rides on the type name
			for _, name := range field.Names {
				if name.IsExported() {
					exported = true
				}
			}
			if !exported {
				continue
			}
			if bad := rawFloat64In(pass, field.Type); bad != nil {
				fieldName := ts.Name.Name
				if len(field.Names) > 0 {
					fieldName += "." + field.Names[0].Name
				}
				pass.Reportf(bad.Pos(), "exported field %s has raw float64 type: use a units.* quantity type (units.Joule, units.Watt, units.Second, units.Ratio, …) so unit mix-ups fail to compile", fieldName)
			}
		}
	case *ast.InterfaceType:
		for _, m := range t.Methods.List {
			for _, name := range m.Names {
				if !name.IsExported() {
					continue
				}
				if ft, ok := m.Type.(*ast.FuncType); ok {
					unittypesSignature(pass, "method "+ts.Name.Name+"."+name.Name, ft)
				}
			}
		}
	case *ast.Ident:
		if ts.Assign.IsValid() && isFloat64Expr(pass, t) {
			pass.Reportf(ts.Name.Pos(), "exported alias %s = float64 launders raw float64: declare a defined type (type %s float64) in internal/units instead", ts.Name.Name, ts.Name.Name)
		}
	}
}

// unittypesFunc checks an exported function or method signature.
// Methods on unexported receiver types are themselves unreachable
// outside the package, so they are exempt.
func unittypesFunc(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() {
		return
	}
	if fn.Recv != nil && !exportedReceiver(fn.Recv) {
		return
	}
	unittypesSignature(pass, fn.Name.Name, fn.Type)
}

func unittypesSignature(pass *Pass, what string, ft *ast.FuncType) {
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if bad := rawFloat64In(pass, field.Type); bad != nil {
				pass.Reportf(bad.Pos(), "exported %s takes raw float64: give the parameter a units.* quantity type so callers cannot swap a Watt for a Joule", what)
			}
		}
	}
	if ft.Results != nil {
		for _, field := range ft.Results.List {
			if bad := rawFloat64In(pass, field.Type); bad != nil {
				pass.Reportf(bad.Pos(), "exported %s returns raw float64: return a units.* quantity type so the result's dimension is machine-checked", what)
			}
		}
	}
}

// exportedReceiver reports whether the method's receiver base type name
// is exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

// rawFloat64In returns the first syntactic occurrence of raw float64 in
// a type expression, descending through slices, arrays, maps, pointers,
// channels and inline func types. Named types are the boundary: a
// units.Joule or a counters.Profile is checked where it is declared,
// not at every use site.
func rawFloat64In(pass *Pass, e ast.Expr) ast.Expr {
	switch t := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		// A bare identifier of basic type float64 is the raw spelling;
		// defined types (units.Joule) have *types.Named type and pass.
		if isFloat64Expr(pass, e) {
			return e
		}
	case *ast.StarExpr:
		return rawFloat64In(pass, t.X)
	case *ast.ArrayType:
		return rawFloat64In(pass, t.Elt)
	case *ast.MapType:
		if bad := rawFloat64In(pass, t.Key); bad != nil {
			return bad
		}
		return rawFloat64In(pass, t.Value)
	case *ast.ChanType:
		return rawFloat64In(pass, t.Value)
	case *ast.Ellipsis:
		return rawFloat64In(pass, t.Elt)
	case *ast.FuncType:
		for _, list := range []*ast.FieldList{t.Params, t.Results} {
			if list == nil {
				continue
			}
			for _, f := range list.List {
				if bad := rawFloat64In(pass, f.Type); bad != nil {
					return bad
				}
			}
		}
	case *ast.ParenExpr:
		return rawFloat64In(pass, t.X)
	}
	return nil
}
