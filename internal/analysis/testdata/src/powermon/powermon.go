// Package powermon opts into the unittypes analyzer by carrying one of
// the unit-typed package names: exported API here must use defined
// quantity types, never raw float64.
package powermon

// Watt and Second stand in for the internal/units quantity types; any
// defined float64 type satisfies the rule.
type (
	Watt   float64
	Second float64
)

// Measurement mixes typed and raw fields; only the raw ones fire.
type Measurement struct {
	MeanPower Watt
	Duration  Second
	Energy    float64 // want `exported field Measurement\.Energy has raw float64 type`
	noise     float64
}

// Trace carries raw float64 inside composite types, which the rule
// chases through slices, maps, pointers and function types.
type Trace struct {
	Samples []float64            // want `exported field Trace\.Samples has raw float64 type`
	ByName  map[string]float64   // want `exported field Trace\.ByName has raw float64 type`
	Peak    *float64             // want `exported field Trace\.Peak has raw float64 type`
	Shape   func(Second) float64 // want `exported field Trace\.Shape has raw float64 type`
	Typed   []Watt
}

// Meter is an interface whose exported methods are checked like
// top-level functions.
type Meter interface {
	Read() Watt
	Raw() float64 // want `exported method Meter\.Raw returns raw float64`
}

// Integrate takes a raw duration.
func Integrate(samples []Watt, duration float64) Watt { // want `exported Integrate takes raw float64`
	_ = duration
	var sum Watt
	for _, s := range samples {
		sum += s
	}
	return sum
}

// Mean returns a raw average.
func Mean(samples []Watt) float64 { // want `exported Mean returns raw float64`
	return 0
}

// Scaled is fully typed end to end and passes.
func Scaled(p Watt, by Ratio) Watt { return p * Watt(by) }

// Ratio is the sanctioned home for dimensionless values.
type Ratio float64

// helper is unexported: raw float64 is fine off the exported surface.
func helper(x float64) float64 { return x }

// meterImpl is an unexported type; its exported-looking methods are
// unreachable and exempt.
type meterImpl struct{}

func (meterImpl) Raw() float64 { return 0 }

// Calibrate has an allow directive with a reason; the diagnostic is
// suppressed but stays auditable.
//
//energylint:allow unittypes(tolerance is a pure convergence knob, not a physical quantity)
func Calibrate(tol float64) error { return nil }
