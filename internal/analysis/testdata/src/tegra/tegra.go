// Package tegra opts into the unitdoc analyzer by carrying one of the
// unit-bearing package names.
package tegra

// Rail models one power rail.
type Rail struct {
	VoltageMV float64
	// Power drawn by the rail, in W.
	Power float64
	Droop float64 // want `exported float64 field Rail\.Droop does not name its unit`
	slack float64
}

// Budget is the rail's remaining headroom, in joules.
type Budget struct {
	Remaining float64
	Ceiling   float64
}

// Scale converts a core clock into an operating point index.
func Scale(coreMHz float64, droop float64) float64 { // want `float64 parameter "droop" of exported Scale`
	return coreMHz * droop
}

// Headroom returns the remaining budget in J at the given draw in W.
func Headroom(budget, draw float64) float64 {
	return budget / draw
}

func internalHelper(x float64) float64 { return x }
