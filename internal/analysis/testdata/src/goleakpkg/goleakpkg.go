// Package goleakpkg exercises the goleak analyzer: spawned goroutines
// need a reachable termination path — a ctx.Done exit, a closed-channel
// exit, a bounded loop — and helpers are summarized one level deep.
package goleakpkg

import "context"

// leaky spawns a forever-loop with no exit of any kind.
func leaky(work func()) {
	go func() { // want `goroutine never terminates: its body contains an unconditional for-loop`
		for {
			work()
		}
	}()
}

// blocker parks forever on an empty select.
func blocker() {
	go func() { // want `goroutine never terminates: its body contains an empty select`
		select {}
	}()
}

// cancellable exits when its context ends: the return inside the select
// leaves the loop.
func cancellable(ctx context.Context, work func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// drains ranges over a channel; close(ch) ends the loop by construction.
func drains(ch chan int, use func(int)) {
	go func() {
		for v := range ch {
			use(v)
		}
	}()
}

// bounded runs a counted loop.
func bounded(n int, work func()) {
	go func() {
		for i := 0; i < n; i++ {
			work()
		}
	}()
}

// breakOut leaves the loop with a loop-level break.
func breakOut(done chan struct{}, work func()) {
	go func() {
		for {
			if done == nil {
				break
			}
			work()
		}
	}()
}

// innerBreakOnly breaks out of the select, not the loop: the goroutine
// still spins forever.
func innerBreakOnly(done chan struct{}, work func()) {
	go func() { // want `goroutine never terminates: its body contains an unconditional for-loop`
		for {
			select {
			case <-done:
				break
			default:
				work()
			}
		}
	}()
}

// spin is a divergent helper: spawning it leaks, one level deep.
func spin(work func()) {
	for {
		work()
	}
}

func spawnsHelper(work func()) {
	go spin(work) // want `goroutine never terminates: spin contains an unconditional for-loop`
}

// callsHelper reaches the divergent helper from inside a literal body.
func callsHelper(work func()) {
	go func() { // want `goroutine never terminates: its body calls spin`
		work()
		spin(work)
	}()
}

// pump exits when its channel closes; spawning it is fine.
func pump(ch chan int, use func(int)) {
	for {
		v, ok := <-ch
		if !ok {
			return
		}
		use(v)
	}
}

func spawnsPump(ch chan int, use func(int)) {
	go pump(ch, use)
}

// tick is the daemon's health-ticker shape: an unconditional loop whose
// select returns on ctx.Done.
func tick(ctx context.Context, beat func()) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				beat()
			}
		}
	}()
}

// assignedClosure: a var-assigned closure gets the same summary
// treatment as a declared function.
func assignedClosure(work func()) {
	run := func() {
		for {
			work()
		}
	}
	go run() // want `goroutine never terminates: run contains an unconditional for-loop`
}

// assignedGood: the drift-recalibration shape — a bounded closure run in
// the background.
func assignedGood(work func()) {
	run := func() {
		work()
	}
	go run()
}
