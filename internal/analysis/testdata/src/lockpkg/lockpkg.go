// Package lockpkg exercises the lockguard analyzer: fields annotated
// "guarded by <mu>" must only be touched while that mutex is provably
// held, caller-holds helpers are summarized, and early-exit unlock
// paths must not poison the straight-line path.
package lockpkg

import "sync"

type table struct {
	mu   sync.Mutex
	rows map[string]int // guarded by mu
	hits int            // guarded by mu
	name string         // read-only after construction
}

func newTable(name string) *table {
	// Composite-literal keys are construction, not access.
	return &table{name: name, rows: map[string]int{}}
}

// get holds the lock across both accesses via the defer idiom.
func (t *table) get(k string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hits++
	return t.rows[k]
}

// Bad is exported and reads a guarded field without locking: callers
// outside the package cannot hold the unexported mutex, so there is no
// caller-holds contract to lean on.
func (t *table) Bad(k string) int {
	return t.rows[k] // want `t\.rows is guarded by "mu" but the mutex is not held`
}

// bump is an unexported caller-holds helper: its own accesses are
// excused, and its call sites are checked instead.
func (t *table) bump(k string) {
	t.rows[k]++
	t.hits++
}

// doubleBump requires the lock transitively, through bump.
func (t *table) doubleBump(k string) {
	t.bump(k)
	t.bump(k)
}

func (t *table) goodCaller(k string) {
	t.mu.Lock()
	t.bump(k)
	t.doubleBump(k)
	t.mu.Unlock()
}

// BadCaller is exported, so it cannot push the requirement up to its
// own callers; the unheld call to the caller-holds helper is the error.
func (t *table) BadCaller(k string) {
	t.bump(k) // want `call to bump without holding t\.mu`
}

// conditional releases on the early-exit path only; the happy path must
// still count as locked after the branch merge.
func (t *table) conditional(k string, ok bool) int {
	t.mu.Lock()
	if !ok {
		t.mu.Unlock()
		return -1
	}
	v := t.rows[k]
	t.mu.Unlock()
	return v
}

// unlockedTail unlocks on the straight-line path and then keeps going:
// the access after the merge is unprotected.
func (t *table) unlockedTail(k string, ok bool) int {
	t.mu.Lock()
	if !ok {
		t.mu.Unlock()
		return -1
	}
	t.mu.Unlock()
	return t.rows[k] // want `t\.rows is guarded by "mu" but the mutex is not held`
}

// leakyWrite spawns a goroutine from inside the critical section; the
// goroutine runs concurrently and holds nothing.
func (t *table) leakyWrite(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	go func() {
		t.rows[k] = 1 // want `t\.rows is guarded by "mu" but the mutex is not held`
	}()
}

// selfLockingClosure is the single-flight cleanup shape: a deferred
// closure registered outside the critical section takes the lock itself.
func (t *table) selfLockingClosure(k string) func() {
	return func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		t.rows[k] = 0
	}
}

// snapshot is a plain function; lockguard follows the parameter's lock
// the same way it follows a receiver's.
func snapshot(t *table) map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int, len(t.rows))
	for k, v := range t.rows {
		out[k] = v
	}
	return out
}

func raw(t *table) int {
	return t.hits // want `t\.hits is guarded by "mu" but the mutex is not held`
}

// twoInstances: holding a's lock says nothing about b's.
func transfer(a, b *table, k string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.rows[k]++
	b.rows[k]++ // want `b\.rows is guarded by "mu" but the mutex is not held`
}

// gauge uses an RWMutex; RLock counts as held for reads.
type gauge struct {
	mu  sync.RWMutex
	val int // guarded by mu
}

func (g *gauge) read() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

func (g *gauge) set(v int) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

// badWrite mutates the guarded field under only an RLock: a read hold
// cannot vouch for writes.
func (g *gauge) badWrite(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = v // want `g\.val is guarded by "mu" and written here, but only an RLock is held`
}

// badIncr: ++ is a write too.
func (g *gauge) badIncr() {
	g.mu.RLock()
	g.val++ // want `g\.val is guarded by "mu" and written here, but only an RLock is held`
	g.mu.RUnlock()
}

// setLocked is a caller-holds writer; its callers must hold the write
// lock, not just a read lock.
func (g *gauge) setLocked(v int) { g.val = v }

func (g *gauge) badDelegate(v int) {
	g.mu.RLock()
	g.setLocked(v) // want `call to setLocked holding only g\.mu\.RLock`
	g.mu.RUnlock()
}

func (g *gauge) goodDelegate(v int) {
	g.mu.Lock()
	g.setLocked(v)
	g.mu.Unlock()
}

// mixedMerge: a merge of a Lock branch and an RLock branch only proves
// a read hold, so the write after the merge is flagged.
func (g *gauge) mixedMerge(w bool, v int) {
	if w {
		g.mu.Lock()
	} else {
		g.mu.RLock()
	}
	g.val = v // want `g\.val is guarded by "mu" and written here, but only an RLock is held`
	if w {
		g.mu.Unlock()
	} else {
		g.mu.RUnlock()
	}
}

// broken carries an annotation that names no sibling mutex; the
// annotation itself is the diagnostic.
type broken struct {
	// guarded by missing
	rows map[string]int // want `guarded-by annotation names "missing", which is not a sibling`
}
