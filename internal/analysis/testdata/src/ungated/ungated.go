// Package ungated carries no expectation comments at all: every rule
// that is gated by package name (unitdoc, unittypes, the map-order
// sub-rule of determinism) must stay completely silent here.
package ungated

// Quantity has an exported float64 with no unit suffix; unitdoc is
// gated to tegra/core/serve, unittypes to core/tegra/serve/powermon/dvfs.
type Quantity struct {
	Amount float64
}

// Raw returns raw float64 from an exported function; unittypes stays
// quiet outside its gate.
func Raw(q Quantity) float64 { return q.Amount }

// keys appends under a map range; the map-order rule is gated to the
// measurement and experiment packages.
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
