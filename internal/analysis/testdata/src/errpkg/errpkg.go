// Package errpkg exercises the errwrap analyzer: %w wrapping and
// errors.Is sentinel comparison.
package errpkg

import (
	"errors"
	"fmt"
)

var ErrNotCached = errors.New("not cached")

func wrapV(err error) error {
	return fmt.Errorf("load: %v", err) // want `error wrapped with %v loses its chain`
}

func wrapS(key string, err error) error {
	return fmt.Errorf("load %s: %s", key, err) // want `error wrapped with %s loses its chain`
}

func wrapW(err error) error {
	return fmt.Errorf("load: %w", err)
}

func nonErrorOperand(name string) error {
	return fmt.Errorf("bad name %v", name) // %v on a non-error: fine
}

type payload struct{ n int }

// mixedVerbs checks verb/argument pairing through flags: %+v consumes
// the payload, %w wraps the error.
func mixedVerbs(p payload, err error) error {
	return fmt.Errorf("payload %+v: %w", p, err)
}

func widthAndPercent(pct float64, err error) error {
	return fmt.Errorf("at %6.2f%%: %w", pct, err)
}

func sentinelEq(err error) bool {
	return err == ErrNotCached // want `comparing errors with == misses wrapped chains; use errors\.Is`
}

func sentinelNeq(err error) bool {
	return err != ErrNotCached // want `comparing errors with != misses wrapped chains; use !errors\.Is`
}

func nilCompare(err error) bool {
	return err == nil // nil checks stay ==
}

func isIdiom(err error) bool {
	return errors.Is(err, ErrNotCached)
}
