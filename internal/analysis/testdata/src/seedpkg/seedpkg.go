// Package seedpkg exercises the taint-tracking seedflow analyzer:
// values derived from loop indices must not flow into the RNG
// constructors, no matter what the variables are called. None of the
// identifiers here mention "seed" — the rule tracks flow, not names.
package seedpkg

import "math/rand"

// positional derives a per-iteration value by arithmetic on the loop
// index; the value reaches rand.NewSource through an intermediate
// variable.
func positional(base int64, n int) []*rand.Rand {
	var out []*rand.Rand
	for i := 0; i < n; i++ {
		k := base + int64(i)
		out = append(out, rand.New(rand.NewSource(k))) // want `seed derived from loop index "i" flows into rand\.NewSource`
	}
	return out
}

// rangeIndex feeds a range index straight into the constructor, with
// only a conversion in between.
func rangeIndex(kinds []string) []rand.Source {
	var out []rand.Source
	for idx := range kinds {
		out = append(out, rand.NewSource(int64(idx))) // want `seed derived from loop index "idx" flows into rand\.NewSource`
	}
	return out
}

// reassigned launders the index through two assignments and a compound
// update; taint survives all of them.
func reassigned(base int64, rows []int) []rand.Source {
	var out []rand.Source
	for r := range rows {
		step := int64(r) * 3
		mixed := base
		mixed += step
		out = append(out, rand.NewSource(mixed)) // want `seed derived from loop index "r" flows into rand\.NewSource`
	}
	return out
}

// workerClosure captures the loop index in a closure; the positional
// seed is just as order-dependent there.
func workerClosure(base int64, tasks []string) []func() *rand.Rand {
	var fns []func() *rand.Rand
	for i := range tasks {
		fns = append(fns, func() *rand.Rand {
			return rand.New(rand.NewSource(base ^ int64(i))) // want `seed derived from loop index "i" flows into rand\.NewSource`
		})
	}
	return fns
}

// spawn is a package-local helper whose parameter reaches a sink; calls
// to it are sinks one level deep.
func spawn(stream int64) *rand.Rand {
	return rand.New(rand.NewSource(stream))
}

// viaHelper passes a loop-derived value through spawn's summarized
// parameter.
func viaHelper(base int64, n int) []*rand.Rand {
	var out []*rand.Rand
	for i := 0; i < n; i++ {
		out = append(out, spawn(base*int64(i+1))) // want `seed derived from loop index "i" flows into spawn`
	}
	return out
}

// constantOffset is a stream discriminator: no loop index involved.
func constantOffset(base int64) rand.Source {
	return rand.NewSource(base + 9)
}

// identityDerived hands the base and the unit's identity to a mixing
// helper instead of doing index arithmetic — the sanctioned pattern.
// Call results are clean: hashing decouples the seed from position.
func identityDerived(base int64, names []string) []rand.Source {
	out := make([]rand.Source, 0, len(names))
	for _, name := range names {
		out = append(out, rand.NewSource(mix(base, name)))
	}
	return out
}

// indexElsewhere does arithmetic on the loop index that never reaches a
// seed sink; accumulators and offsets are not the rule's business.
func indexElsewhere(vals []int64) int64 {
	var total int64
	for i, v := range vals {
		total += v * int64(i+1)
	}
	return total
}

// carrier is a config-style struct a seed travels through.
type carrier struct {
	stream int64
	label  string
}

// fieldLaundered stores index arithmetic into a struct field and loads
// it back into the constructor: the store-then-load must not launder the
// positional dependence.
func fieldLaundered(base int64, n int) []rand.Source {
	var out []rand.Source
	for i := 0; i < n; i++ {
		var c carrier
		c.stream = base + int64(i)
		out = append(out, rand.NewSource(c.stream)) // want `seed derived from loop index "i" flows into rand\.NewSource`
	}
	return out
}

// fieldCompound smuggles the index into the field via a compound update.
func fieldCompound(base int64, rows []int) []rand.Source {
	var out []rand.Source
	for r := range rows {
		c := carrier{stream: base}
		c.stream += int64(r)
		out = append(out, rand.NewSource(c.stream)) // want `seed derived from loop index "r" flows into rand\.NewSource`
	}
	return out
}

// fieldClean stores an identity-derived value in the same field shape;
// no index reaches the sink.
func fieldClean(base int64, names []string) []rand.Source {
	var out []rand.Source
	for _, name := range names {
		var c carrier
		c.stream = mix(base, name)
		c.label = name
		out = append(out, rand.NewSource(c.stream))
	}
	return out
}

func mix(base int64, name string) int64 {
	h := base
	for _, r := range name {
		h = (h ^ int64(r)) * 1099511628211
	}
	return h
}
