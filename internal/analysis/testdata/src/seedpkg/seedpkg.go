// Package seedpkg exercises the seedflow analyzer: seeds derived by
// arithmetic on loop indices are flagged, identity-derived and
// constant-offset seeds are not.
package seedpkg

func positionalSeeds(seed int64, n int) []int64 {
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, seed+int64(i)) // want `seed "seed" combined with loop index "i"`
	}
	return out
}

func rangeSeeds(cfgSeed int64, kinds []string) []int64 {
	var out []int64
	for i := range kinds {
		out = append(out, cfgSeed*int64(i+1)) // want `seed "cfgSeed" combined with loop index "i"`
	}
	return out
}

func xorSeeds(baseSeed int64, rows []int) []int64 {
	var out []int64
	for r := range rows {
		out = append(out, baseSeed^int64(r)) // want `seed "baseSeed" combined with loop index "r"`
	}
	return out
}

// workerClosure captures the loop index in a closure; the positional
// seed is just as order-dependent there.
func workerClosure(seed int64, tasks []string) []func() int64 {
	var fns []func() int64
	for i := range tasks {
		fns = append(fns, func() int64 {
			return seed + int64(i) // want `seed "seed" combined with loop index "i"`
		})
	}
	return fns
}

// constantOffset is a stream discriminator: no loop index involved.
func constantOffset(seed int64) int64 {
	return seed + 9
}

// identityDerived hands the seed and the unit's identity to a mixing
// helper instead of doing index arithmetic — the sanctioned pattern.
func identityDerived(seed int64, names []string) []int64 {
	out := make([]int64, 0, len(names))
	for _, name := range names {
		out = append(out, mix(seed, name))
	}
	return out
}

func mix(base int64, name string) int64 {
	h := base
	for _, r := range name {
		h = (h ^ int64(r)) * 1099511628211
	}
	return h
}
