// Package atomicpkg exercises the atomicfield analyzer: a struct field
// touched through the sync/atomic function API anywhere must be touched
// that way everywhere — one plain access races with all the atomic ones.
package atomicpkg

import "sync/atomic"

type counter struct {
	n    uint64
	gen  int64
	done uint32
	name string
}

func (c *counter) incr() { atomic.AddUint64(&c.n, 1) }

func (c *counter) read() uint64 { return atomic.LoadUint64(&c.n) }

// plainRead mixes a direct load with the atomic accesses above.
func (c *counter) plainRead() uint64 {
	return c.n // want `field n mixes atomic and plain access`
}

// reset writes without atomics.
func (c *counter) reset() {
	c.n = 0 // want `field n mixes atomic and plain access`
}

// leakAddr hands out the address for non-atomic use.
func leakAddr(c *counter) *uint64 {
	return &c.n // want `field n mixes atomic and plain access`
}

// gen is only ever touched atomically.
func (c *counter) bump() int64 { return atomic.AddInt64(&c.gen, 1) }

func (c *counter) generation() int64 { return atomic.LoadInt64(&c.gen) }

// finish settles done with a CAS; the increment below races with it.
func (c *counter) finish() bool {
	return atomic.CompareAndSwapUint32(&c.done, 0, 1)
}

func (c *counter) sloppyFinish() {
	c.done++ // want `field done mixes atomic and plain access`
}

// newCounter builds by composite literal: keyed construction is exempt.
func newCounter(name string) *counter {
	return &counter{name: name}
}

// name is never atomic; plain access stays plain.
func (c *counter) label() string { return c.name }

// plainOnly never sees sync/atomic: the rule stays quiet about a struct
// with ordinary mutable state.
type plainOnly struct {
	hits int
}

func (p *plainOnly) touch() { p.hits++ }
