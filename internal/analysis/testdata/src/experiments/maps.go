// Package experiments opts into the determinism analyzer's map-order
// rule by carrying one of the order-sensitive package names.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" while ranging over a map`
	}
	return keys
}

func sortedKeysIdiom(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys) // collect-then-sort: fine
	return keys
}

func dumpUnsorted(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside a map-range loop`
	}
}

func dumpIO(w io.Writer, m map[string]int) {
	for k := range m {
		io.WriteString(w, k) // want `io\.WriteString inside a map-range loop`
	}
}

func sharedBuilder(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `\(\*strings\.Builder\)\.WriteString inside a map-range loop`
	}
	return b.String()
}

// perIterationBuilder writes to a sink that lives one iteration only and
// sorts the collected slice afterwards; both halves are deterministic.
func perIterationBuilder(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		out = append(out, b.String())
	}
	sort.Strings(out)
	return out
}

// loopLocalAccumulator appends to a slice scoped to one iteration, which
// cannot leak iteration order.
func loopLocalAccumulator(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
