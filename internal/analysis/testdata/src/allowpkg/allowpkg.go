// Package allowpkg exercises the allowdecl analyzer on directive forms
// whose diagnosis does not depend on the text after the rule name (the
// payload-dependent forms — bare allow, empty reason, unknown rule — are
// covered by unit tests in internal/analysis, because appending an
// expectation comment to those directives would change their payload).
package allowpkg

import "time"

// energylint:allow determinism(spaced directives are ignored by go vet conventions) // want `malformed directive: write //energylint: with no space`

//energylint:ignore determinism // want `unknown energylint directive`

//energylint:allow determinism(a well-formed directive produces no allowdecl diagnostic)
var injectedDefault = time.Now
