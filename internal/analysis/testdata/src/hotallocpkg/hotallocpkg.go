// Package hotallocpkg exercises the hotalloc analyzer: every
// allocation-causing construct inside //energylint:hotpath functions
// and their one-level callees, plus the cold and preallocated shapes
// that must stay silent.
package hotallocpkg

import (
	"fmt"
	"strconv"
	"strings"
)

// render is a hot formatter leaning on fmt: flagged anywhere in the
// function, loop or not.
//
//energylint:hotpath
func render(vals []float64) string {
	var b strings.Builder
	for _, v := range vals {
		b.WriteString(fmt.Sprintf("%g", v)) // want `fmt\.Sprintf formats through reflection and allocates`
	}
	return b.String()
}

// join accumulates strings by concatenation, once per iteration.
//
//energylint:hotpath
func join(keys []string) string {
	s := ""
	t := ""
	for _, k := range keys {
		s = s + "," + k // want `string concatenation per loop iteration`
		t += k          // want `string \+= per loop iteration`
	}
	return s + t
}

// checksum round-trips through []byte per line.
//
//energylint:hotpath
func checksum(lines []string) int {
	total := 0
	for _, ln := range lines {
		total += len([]byte(ln)) // want `\[\]byte↔string conversion copies per loop iteration`
	}
	return total
}

// gather appends to a slice that was never given a capacity.
//
//energylint:hotpath
func gather(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want `append to out in a loop may regrow the slice`
	}
	return out
}

// gatherPrealloc is the fixed shape: a 3-arg make before the loop.
//
//energylint:hotpath
func gatherPrealloc(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// index allocates a map and a slice literal on every iteration.
//
//energylint:hotpath
func index(keys []string) int {
	total := 0
	for _, k := range keys {
		m := map[string]int{k: 1} // want `map literal allocated per loop iteration`
		s := []int{len(k)}        // want `slice literal allocated per loop iteration`
		total += m[k] + s[0]
	}
	return total
}

// schedule captures the loop variable in a fresh closure per iteration.
//
//energylint:hotpath
func schedule(n int) []func() int {
	out := make([]func() int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, func() int { return i }) // want `closure literal allocated per loop iteration`
	}
	return out
}

// closeAll defers inside the loop; the frames pile up until return.
//
//energylint:hotpath
func closeAll(fns []func()) {
	for _, f := range fns {
		defer f() // want `defer inside a loop`
	}
}

type weigher interface{ weigh() float64 }

type cell struct{ m float64 }

func (c cell) weigh() float64 { return c.m }

func consume(w weigher) float64 { return w.weigh() }

// tally boxes each concrete cell into the weigher interface at the
// call; the copy escapes to the heap.
//
//energylint:hotpath
func tally(cs []cell) float64 {
	total := 0.0
	for _, c := range cs {
		total += consume(c) // want `c \(hotallocpkg\.cell\) is boxed into interface`
	}
	return total
}

func variadicSink(xs ...any) int { return len(xs) }

// feed: the int is boxed into the variadic any; the pointer and the
// constants are pointer-shaped or interned and stay silent.
//
//energylint:hotpath
func feed(a int, b *int) int {
	return variadicSink(a, b, 1, "x") // want `a \(int\) is boxed into interface`
}

// encode delegates to a package-local helper: one level of callees is
// just as hot as the annotated function.
//
//energylint:hotpath
func encode(vs []int) string {
	return helperJoin(vs)
}

func helperJoin(vs []int) string {
	out := ""
	for _, v := range vs {
		out += strconv.Itoa(v) // want `string \+= per loop iteration`
	}
	return out
}

// coldPath commits every sin above but carries no annotation and is
// called from no hot path: silent.
func coldPath(keys []string) string {
	s := ""
	m := map[string]int{}
	var out []string
	for _, k := range keys {
		s += k
		m[k] = len([]byte(k))
		out = append(out, k)
		defer func() {}()
	}
	return fmt.Sprintf("%d:%s:%d", len(m), s, len(out))
}

// warmOutside uses the flagged constructs outside any loop, where a
// single allocation per call is the accepted cost of the shape — only
// fmt calls and boxing are flagged loop-independently.
//
//energylint:hotpath
func warmOutside(k string) []string {
	s := k + "!"             // concat outside a loop: silent
	parts := []string{s, k}  // slice literal outside a loop: silent
	defer func() { _ = s }() // defer outside a loop: silent
	return parts
}
