// Package lockorderpkg exercises the lockorder analyzer: AB–BA
// acquisition cycles, self-deadlocks, recursive RLocks, two-instance
// ordering hazards, and one-level summaries — plus the clean shapes
// that must stay silent.
package lockorderpkg

import "sync"

// registry and breaker model the PR8 shape: two subsystems, two
// mutexes, opposite acquisition orders on two paths. The cycle is
// reported at the first witness of the representative cycle, which
// starts from the alphabetically least node (breaker.mu).
type registry struct {
	mu      sync.Mutex
	members map[string]*breaker
}

type breaker struct {
	mu   sync.Mutex
	open bool
}

// tick locks the registry, then a member breaker: registry.mu → breaker.mu.
func (r *registry) tick(b *breaker) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b.mu.Lock()
	b.open = false
	b.mu.Unlock()
}

// report locks the breaker, then the registry: breaker.mu → registry.mu.
// Concurrent with tick this is the classic AB–BA deadlock.
func (b *breaker) report(r *registry) {
	b.mu.Lock()
	defer b.mu.Unlock()
	r.mu.Lock() // want `lock-order cycle breaker\.mu → registry\.mu → breaker\.mu`
	delete(r.members, "x")
	r.mu.Unlock()
}

// doubleLock re-acquires a lock the path provably holds.
func (r *registry) doubleLock() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want `r\.mu\.Lock\(\) while r\.mu is already held on this path: self-deadlock`
	_ = r.members
}

type gauge struct {
	mu  sync.RWMutex
	val int
}

// recursiveRead: sync.RWMutex forbids recursive read locking.
func (g *gauge) recursiveRead() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.mu.RLock() // want `recursive g\.mu\.RLock\(\) while the read lock is already held`
	v := g.val
	g.mu.RUnlock()
	return v
}

// upgrade is a read-to-write upgrade attempt: the Lock blocks forever
// behind our own RLock.
func (g *gauge) upgrade(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.mu.Lock() // want `g\.mu\.Lock\(\) while g\.mu is already held on this path: self-deadlock`
	g.val = v
	g.mu.Unlock()
}

// merge locks the same struct's mutex on two instances with no
// canonical order: the reverse interleaving deadlocks.
func merge(a, b *gauge) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `b\.mu acquired while gauge\.mu is held on another instance \(a\.mu\)`
	a.val += b.val
	b.mu.Unlock()
}

// pool and shard close their cycle through one-level summaries: adopt
// nests the locks directly, rebalance reaches the reverse order only
// through the warm() call.
type pool struct {
	mu   sync.Mutex
	free []int
}

type shard struct {
	mu   sync.Mutex
	hot  bool
	pool *pool
}

func (s *shard) adopt(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pool.mu.Lock()
	s.pool.free = append(s.pool.free, n)
	s.pool.mu.Unlock()
}

func (s *shard) warm() {
	s.mu.Lock()
	s.hot = true
	s.mu.Unlock()
}

func (p *pool) rebalance(s *shard) {
	p.mu.Lock()
	defer p.mu.Unlock()
	s.warm() // want `lock-order cycle pool\.mu → shard\.mu → pool\.mu`
}

// reacquireViaCall: the callee's summarized receiver acquisition maps
// back onto a lock the caller already holds.
func (s *shard) reacquireViaCall() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.warm() // want `call to warm acquires s\.mu, which is already held on this path: self-deadlock`
}

// sequential is the clean shape: the first lock is released before the
// second is taken, so no ordering edge exists.
func (r *registry) sequential(b *breaker) {
	r.mu.Lock()
	n := len(r.members)
	r.mu.Unlock()
	b.mu.Lock()
	b.open = n == 0
	b.mu.Unlock()
}

// initMu is a package-level mutex, keyed as a bare identifier; one-way
// nesting under it is fine.
var initMu sync.Mutex

func initOnce(r *registry) {
	initMu.Lock()
	defer initMu.Unlock()
	r.mu.Lock()
	r.members = map[string]*breaker{}
	r.mu.Unlock()
}

// goroutines escape the spawning critical section: the spawned body's
// acquisition is not ordered after the spawner's lock, so warming a
// pool from a goroutine creates no pool.mu edge from shard.mu... and
// the reverse nesting in adopt stays a plain one-way edge.
func (s *shard) async(p *pool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		p.mu.Lock()
		p.free = p.free[:0]
		p.mu.Unlock()
	}()
}
