// Package determ exercises the determinism analyzer's wall-clock and
// global-rand rules, which apply in every package, and shows that the
// map-range and unitdoc rules stay silent outside their gated packages.
package determ

import (
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until reads the wall clock`
}

func globalRand() float64 {
	return rand.Float64() // want `rand\.Float64 draws from the process-global source`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `rand\.Shuffle draws from the process-global source`
}

func seededRand(seed int64) float64 {
	return rand.New(rand.NewSource(seed)).Float64() // explicitly seeded generator: fine
}

type clock struct{}

func (clock) Now() time.Time { return time.Time{} }

func injectedClock(c clock) time.Time {
	return c.Now() // a Now *method* is the sanctioned injected-clock shape
}

func allowedDefault() func() time.Time {
	//energylint:allow determinism(test fixture exercising the directive on the line above)
	return time.Now
}

var trailingAllow = time.Now //energylint:allow determinism(test fixture exercising the trailing directive form)

// ungatedMapRange appends under a map range, but package determ is not
// order-sensitive, so the map-order rule does not apply here.
func ungatedMapRange(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
