// Package ctxpkg exercises the ctxloop analyzer: loops that do real work
// inside context-taking functions must consult a context.
package ctxpkg

import "context"

func work(x int) int { return x * 2 }

func workCtx(_ context.Context, x int) int { return x }

func sweepNoCheck(ctx context.Context, points []int) int {
	total := 0
	for _, p := range points { // want `loop inside a context-taking function never consults a context`
		total += work(p)
	}
	return total
}

func sweepChecked(ctx context.Context, points []int) (int, error) {
	total := 0
	for _, p := range points {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		total += work(p)
	}
	return total, nil
}

func sweepPassesCtx(ctx context.Context, points []int) int {
	total := 0
	for _, p := range points {
		total += workCtx(ctx, p) // handing ctx to the callee qualifies
	}
	return total
}

func sweepSelects(ctx context.Context, points []int) int {
	total := 0
	for _, p := range points {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += work(p)
	}
	return total
}

// assemblyOnly's loop contains no calls beyond builtins; cheap slice
// assembly is exempt.
func assemblyOnly(ctx context.Context, n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// channelRange is exempt: the receive is the blocking point and the
// sender owns cancellation.
func channelRange(ctx context.Context, ch <-chan int) int {
	total := 0
	for v := range ch {
		total += work(v)
	}
	return total
}

// noCtxParam makes no cancellation promise, so its loops are exempt.
func noCtxParam(points []int) int {
	total := 0
	for _, p := range points {
		total += work(p)
	}
	return total
}

// closureInherits: a func literal without its own context parameter
// answers to the enclosing function's ctx.
func closureInherits(ctx context.Context, points []int) func() int {
	return func() int {
		total := 0
		for _, p := range points { // want `loop inside a context-taking function never consults a context`
			total += work(p)
		}
		return total
	}
}

// closureOwnCtx: a func literal with its own context parameter restarts
// the obligation against that parameter.
func closureOwnCtx(ctx context.Context, points []int) func(context.Context) int {
	return func(inner context.Context) int {
		total := 0
		for _, p := range points {
			if inner.Err() != nil {
				return total
			}
			total += work(p)
		}
		return total
	}
}

// job carries its context in a field; its methods consult it internally
// without taking a ctx parameter.
type job struct{ ctx context.Context }

func (j job) cancelled() bool { return j.ctx.Err() != nil }

// helperDone consults the enclosing package's summarized pattern: the
// loop never mentions a context, but calling a method that checks one
// internally qualifies (one-level cross-function summary).
func helperDone(ctx context.Context, points []int) int {
	j := job{ctx: ctx}
	total := 0
	for _, p := range points {
		if j.cancelled() {
			return total
		}
		total += work(p)
	}
	return total
}

// closureHelper: a captured-ctx closure held in a variable is
// summarized the same way.
func closureHelper(ctx context.Context, points []int) (int, error) {
	stop := func() error { return ctx.Err() }
	total := 0
	for _, p := range points {
		if err := stop(); err != nil {
			return 0, err
		}
		total += work(p)
	}
	return total, nil
}

// obliviousHelper never consults any context, so calling it does not
// discharge the obligation.
func obliviousHelper() bool { return false }

func sweepObliviousHelper(ctx context.Context, points []int) int {
	total := 0
	for _, p := range points { // want `loop inside a context-taking function never consults a context`
		if obliviousHelper() {
			return total
		}
		total += work(p)
	}
	return total
}

// twoLevels: the summary is one level deep by design — a callee that
// only reaches a context through its own callee does not qualify.
func viaOblivious(j job) bool { return obliviousThenCtx(j) }

func obliviousThenCtx(j job) bool { return j.cancelled() }

func sweepTwoLevels(ctx context.Context, points []int) int {
	j := job{ctx: ctx}
	total := 0
	for _, p := range points { // want `loop inside a context-taking function never consults a context`
		if viaOblivious(j) {
			return total
		}
		total += work(p)
	}
	return total
}
