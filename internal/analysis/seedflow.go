package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Seedflow enforces the pipeline's identity-seeding discipline: a unit
// of work derives its random stream from *what it is*, never from
// *where it ran*. Arithmetic like seed+i or seed*int64(i) on a loop
// index produces seeds that change whenever the iteration order, grid
// size, or subset changes — exactly the property that breaks
// "parallel == serial byte-identically" and "subsets reproduce the full
// suite". The sanctioned derivations are the FNV-mixing helpers
// stats.MixSeed, experiments.deriveSeed and microbench.SampleSeed,
// which hash the unit's identity values; a plain constant offset
// (cfg.Seed+9, a stream discriminator) is fine because no loop index
// is involved.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "forbid seeds built by arithmetic on loop indices; derive seeds from unit identity",
	URL:  ruleURL("seedflow"),
	Run:  runSeedflow,
}

// seedflowOps are the integer operators that smuggle a loop index into
// a seed value.
var seedflowOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.XOR: true, token.OR: true, token.REM: true, token.SHL: true,
}

func runSeedflow(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			seedflowFunc(pass, body)
			return true
		})
	}
	return nil
}

// seedflowFunc collects the function's loop variables, then flags every
// binary expression mixing a seed-named operand with one of them.
// Closures inherit the loop variables of their enclosing function — a
// worker body capturing the pipeline index is the classic offender.
func seedflowFunc(pass *Pass, body *ast.BlockStmt) {
	loopVars := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			for _, e := range []ast.Expr{s.Key, s.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pass.Info.ObjectOf(id); obj != nil {
						loopVars[obj] = true
					}
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							loopVars[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok || !seedflowOps[bin.Op] {
			return true
		}
		if !isInteger(pass.Info.TypeOf(bin)) {
			return true
		}
		seedName, seedSide := seedOperand(pass, bin.X), seedOperand(pass, bin.Y)
		name := seedName
		if name == "" {
			name = seedSide
		}
		if name == "" {
			return true
		}
		var idx *ast.Ident
		for _, side := range []ast.Expr{bin.X, bin.Y} {
			if id := loopVarIn(pass, side, loopVars); id != nil {
				idx = id
				break
			}
		}
		if idx == nil {
			return true
		}
		pass.Reportf(bin.Pos(), "seed %q combined with loop index %q by arithmetic: positional seeds break order- and subset-reproducibility; derive from the unit's identity via stats.MixSeed (cf. experiments.deriveSeed, microbench.SampleSeed)", name, idx.Name)
		return false
	})
}

// seedOperand returns the seed-ish name an expression carries, if any:
// an identifier or field selection whose name mentions "seed".
func seedOperand(pass *Pass, e ast.Expr) string {
	name := ""
	ast.Inspect(e, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if strings.Contains(strings.ToLower(id.Name), "seed") && isInteger(pass.Info.TypeOf(id)) {
			name = id.Name
		}
		return true
	})
	return name
}

// loopVarIn returns a loop-variable identifier referenced anywhere in e
// (through conversions like int64(i), nested arithmetic, etc.).
func loopVarIn(pass *Pass, e ast.Expr, loopVars map[types.Object]bool) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && loopVars[pass.Info.ObjectOf(id)] {
			found = id
		}
		return true
	})
	return found
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
