package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Seedflow enforces the pipeline's identity-seeding discipline: a unit
// of work derives its random stream from *what it is*, never from
// *where it ran*. Arithmetic like base+i or base*int64(i) on a loop
// index produces seeds that change whenever the iteration order, grid
// size, or subset changes — exactly the property that breaks
// "parallel == serial byte-identically" and "subsets reproduce the full
// suite".
//
// The rule is a taint pass, not a name heuristic: loop indices are the
// sources, and the RNG constructors rand.NewSource and stats.NewRNG are
// the sinks. Taint propagates through integer arithmetic, type
// conversions and assignments, and one level through package-local call
// arguments (a helper whose parameter reaches a sink makes that
// argument position a sink for its callers). Renaming the variables
// changes nothing — only laundering the index through a genuine mixing
// function does. The sanctioned derivations are the FNV-mixing helpers
// stats.MixSeed, experiments.deriveSeed and microbench.SampleSeed,
// which hash the unit's identity values; their call results are clean
// because hashing, unlike arithmetic, decouples the seed from the
// iteration position. A plain constant offset (cfg.Seed+9, a stream
// discriminator) is fine because no loop index is involved.
var Seedflow = &Analyzer{
	Name: "seedflow",
	Doc:  "forbid loop indices from flowing into RNG seeds; derive seeds from unit identity",
	URL:  ruleURL("seedflow"),
	Run:  runSeedflow,
}

// seedflowOps are the integer operators that smuggle a loop index into
// a seed value.
var seedflowOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true, token.MUL: true,
	token.XOR: true, token.OR: true, token.REM: true, token.SHL: true,
}

func runSeedflow(pass *Pass) error {
	// First pass: summarize which parameters of each package-local
	// function flow into a direct seed sink, so call arguments can be
	// treated as sinks one level deep.
	summaries := map[types.Object][]int{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if idxs := seedParamSummary(pass, fn); len(idxs) > 0 {
				if obj := pass.Info.ObjectOf(fn.Name); obj != nil {
					summaries[obj] = idxs
				}
			}
		}
	}
	// Second pass: taint loop indices and report every sink they reach.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			seedflowFunc(pass, fn.Body, summaries)
		}
	}
	return nil
}

// seedParamSummary returns the indices of fn's integer parameters that
// flow (through assignments and arithmetic) into a direct seed sink
// inside fn's own body.
func seedParamSummary(pass *Pass, fn *ast.FuncDecl) []int {
	if fn.Type.Params == nil {
		return nil
	}
	var idxs []int
	paramIdx := 0
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := pass.Info.ObjectOf(name)
			if obj == nil || name.Name == "_" || !isInteger(obj.Type()) {
				paramIdx++
				continue
			}
			e := newTaintEngine(pass, nil)
			e.tainted[obj] = name.Name
			e.propagate(fn.Body)
			if e.anySinkReached(fn.Body) {
				idxs = append(idxs, paramIdx)
			}
			paramIdx++
		}
		if len(field.Names) == 0 {
			paramIdx++
		}
	}
	return idxs
}

// seedflowFunc taints the function's loop indices (including those of
// loops inside closures, which answer to the same iteration order) and
// reports every seed sink a tainted value reaches.
func seedflowFunc(pass *Pass, body *ast.BlockStmt, summaries map[types.Object][]int) {
	e := newTaintEngine(pass, summaries)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.RangeStmt:
			// Only the key is positional: the range value is the unit's
			// own data, which is exactly what identity seeding wants.
			if id, ok := s.Key.(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.Info.ObjectOf(id); obj != nil && isInteger(obj.Type()) {
					e.tainted[obj] = id.Name
				}
			}
		case *ast.ForStmt:
			if init, ok := s.Init.(*ast.AssignStmt); ok {
				for _, lhs := range init.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.ObjectOf(id); obj != nil && isInteger(obj.Type()) {
							e.tainted[obj] = id.Name
						}
					}
				}
			}
		}
		return true
	})
	if len(e.tainted) == 0 {
		return
	}
	e.propagate(body)
	e.reportSinks(body)
}

// taintEngine tracks which objects carry loop-index taint within one
// function body. The tainted map records the originating loop index's
// name for each tainted object, so diagnostics can say where the
// positional dependence came from. taintedFields tracks struct fields of
// local variables ((base, field) pairs), so storing base+i into c.stream
// and loading it back does not launder the taint.
type taintEngine struct {
	pass          *Pass
	summaries     map[types.Object][]int
	tainted       map[types.Object]string
	taintedFields map[fieldTaintKey]string
}

// fieldTaintKey names one field of one local variable: the variable's
// object plus the field's object.
type fieldTaintKey struct {
	base  types.Object
	field types.Object
}

func newTaintEngine(pass *Pass, summaries map[types.Object][]int) *taintEngine {
	return &taintEngine{
		pass:          pass,
		summaries:     summaries,
		tainted:       map[types.Object]string{},
		taintedFields: map[fieldTaintKey]string{},
	}
}

// fieldKeyOf resolves an expression of the form base.field (base a plain
// identifier) to its taint key.
func (e *taintEngine) fieldKeyOf(x ast.Expr) (fieldTaintKey, bool) {
	sel, ok := ast.Unparen(x).(*ast.SelectorExpr)
	if !ok {
		return fieldTaintKey{}, false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return fieldTaintKey{}, false
	}
	base := e.pass.Info.ObjectOf(id)
	field := e.pass.Info.ObjectOf(sel.Sel)
	if base == nil || field == nil {
		return fieldTaintKey{}, false
	}
	return fieldTaintKey{base: base, field: field}, true
}

// propagate runs assignment transfer to a fixpoint: x := <tainted expr>
// taints x with the same origin. Compound assignments (x += i) taint
// their target as well.
func (e *taintEngine) propagate(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i := range s.Lhs {
						origin := e.origin(s.Rhs[i])
						if origin == "" && s.Tok != token.ASSIGN && s.Tok != token.DEFINE {
							// x += i: the RHS alone may carry the taint.
							origin = e.origin(s.Lhs[i])
						}
						if origin == "" {
							continue
						}
						if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
							if obj := e.pass.Info.ObjectOf(id); obj != nil && e.tainted[obj] == "" {
								e.tainted[obj] = origin
								changed = true
							}
						} else if key, ok := e.fieldKeyOf(s.Lhs[i]); ok && e.taintedFields[key] == "" {
							// c.stream = base + int64(i): the store taints
							// the (variable, field) pair, so the later
							// load cannot launder the index.
							e.taintedFields[key] = origin
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) == len(s.Values) {
					for i, name := range s.Names {
						if origin := e.origin(s.Values[i]); origin != "" && name.Name != "_" {
							if obj := e.pass.Info.ObjectOf(name); obj != nil && e.tainted[obj] == "" {
								e.tainted[obj] = origin
								changed = true
							}
						}
					}
				}
			}
			return true
		})
	}
}

// origin returns the name of the loop index an expression derives from,
// or "" if the expression is clean. Taint flows through parentheses,
// unary operators, the seed-smuggling integer arithmetic operators, and
// type conversions. It does NOT flow through function call results:
// a call is either a sanctioned mixing helper (stats.MixSeed hashes the
// position away) or gets its own summary-based sink treatment.
func (e *taintEngine) origin(x ast.Expr) string {
	switch v := x.(type) {
	case *ast.Ident:
		if obj := e.pass.Info.ObjectOf(v); obj != nil {
			return e.tainted[obj]
		}
	case *ast.SelectorExpr:
		if key, ok := e.fieldKeyOf(v); ok {
			return e.taintedFields[key]
		}
	case *ast.ParenExpr:
		return e.origin(v.X)
	case *ast.UnaryExpr:
		return e.origin(v.X)
	case *ast.BinaryExpr:
		if !seedflowOps[v.Op] || !isInteger(e.pass.Info.TypeOf(v)) {
			return ""
		}
		if o := e.origin(v.X); o != "" {
			return o
		}
		return e.origin(v.Y)
	case *ast.CallExpr:
		// Type conversions (int64(i)) are transparent; real calls launder.
		if tv, ok := e.pass.Info.Types[v.Fun]; ok && tv.IsType() && len(v.Args) == 1 {
			return e.origin(v.Args[0])
		}
	}
	return ""
}

// sinkArgs returns the argument indices of call that act as seed sinks:
// [0] for the RNG constructors themselves, and the summarized positions
// for package-local helpers whose parameter reaches a constructor.
func (e *taintEngine) sinkArgs(call *ast.CallExpr) []int {
	obj := calleeObject(e.pass, call)
	if obj == nil {
		return nil
	}
	if isSeedSink(obj) {
		return []int{0}
	}
	return e.summaries[obj]
}

func (e *taintEngine) reportSinks(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, ix := range e.sinkArgs(call) {
			if ix >= len(call.Args) {
				continue
			}
			if origin := e.origin(call.Args[ix]); origin != "" {
				e.pass.Reportf(call.Args[ix].Pos(), "seed derived from loop index %q flows into %s: positional seeds break order- and subset-reproducibility; derive the seed from the unit's identity via stats.MixSeed (cf. experiments.deriveSeed, microbench.SampleSeed)", origin, calleeName(call))
			}
		}
		return true
	})
}

// anySinkReached reports whether any currently tainted value reaches a
// direct sink in body (used for parameter summaries, which deliberately
// stay one level deep: only the RNG constructors count here).
func (e *taintEngine) anySinkReached(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(e.pass, call)
		if obj != nil && isSeedSink(obj) && len(call.Args) > 0 && e.origin(call.Args[0]) != "" {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSeedSink reports whether obj is one of the RNG constructors whose
// first argument is a seed: math/rand.NewSource or stats.NewRNG.
func isSeedSink(obj types.Object) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Name() {
	case "NewSource":
		return fn.Pkg().Path() == "math/rand"
	case "NewRNG":
		path := fn.Pkg().Path()
		return path == "stats" || strings.HasSuffix(path, "/stats")
	}
	return false
}

// calleeObject resolves the function object a call invokes, if it is a
// plain identifier or selector (method values, conversions and builtins
// return nil or non-Func objects handled by the callers).
func calleeObject(pass *Pass, call *ast.CallExpr) types.Object {
	return calleeObjectOf(pass.Info, call)
}

// calleeObjectOf is calleeObject over a bare types.Info, for helpers
// (the lock simulation) that are not tied to a Pass.
func calleeObjectOf(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.ObjectOf(fun)
	case *ast.SelectorExpr:
		return info.ObjectOf(fun.Sel)
	}
	return nil
}

// calleeName renders the call target for diagnostics ("rand.NewSource",
// "stats.NewRNG", "spawnRNG").
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "the seed sink"
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
