package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

func parseFixture(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, f
}

// TestAllowDirectiveProblems covers the malformed-directive forms whose
// diagnosis depends on the directive payload; these cannot live in
// analysistest testdata because appending a // want expectation to the
// comment would become part of that payload.
func TestAllowDirectiveProblems(t *testing.T) {
	cases := []struct {
		name    string
		comment string
		problem string // required substring of the reported problem
	}{
		{"bare", "//energylint:allow", "bare //energylint:allow"},
		{"rule without reason", "//energylint:allow determinism", "want <rule>(<non-empty reason>)"},
		{"empty parens", "//energylint:allow determinism()", "want <rule>(<non-empty reason>)"},
		{"blank reason", "//energylint:allow determinism(   )", "empty reason"},
		{"unknown rule", "//energylint:allow nosuchrule(looks plausible)", "unknown rule"},
		{"space after slashes", "// energylint:allow determinism(spaced)", "no space after //"},
		{"unknown directive", "//energylint:ignore determinism", "unknown energylint directive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := "package p\n\n" + tc.comment + "\nvar x = 1\n"
			fset, f := parseFixture(t, src)
			idx := NewAllowIndex(fset, []*ast.File{f})
			if len(idx.malformed) != 1 {
				t.Fatalf("got %d malformed directives, want 1", len(idx.malformed))
			}
			if got := idx.malformed[0].problem; !strings.Contains(got, tc.problem) {
				t.Errorf("problem = %q, want substring %q", got, tc.problem)
			}
		})
	}
}

func TestWellFormedDirectiveIsNotMalformed(t *testing.T) {
	src := "package p\n\n//energylint:allow determinism(a perfectly auditable reason)\nvar x = 1\n"
	fset, f := parseFixture(t, src)
	idx := NewAllowIndex(fset, []*ast.File{f})
	if len(idx.malformed) != 0 {
		t.Fatalf("well-formed directive reported as malformed: %+v", idx.malformed)
	}
}

// TestAllowedScope pins the suppression window: the directive's own
// line, the line directly below, nothing else, and only the named rule.
func TestAllowedScope(t *testing.T) {
	src := "package p\n\n//energylint:allow determinism(next line)\nvar a = 1\nvar b = 1\n"
	fset, f := parseFixture(t, src)
	idx := NewAllowIndex(fset, []*ast.File{f})
	pos := func(line int) token.Position { return token.Position{Filename: "fixture.go", Line: line} }
	if !idx.Allowed("determinism", pos(3)) {
		t.Error("diagnostic on the directive's own line should be suppressed")
	}
	if !idx.Allowed("determinism", pos(4)) {
		t.Error("diagnostic on the line below the directive should be suppressed")
	}
	if idx.Allowed("determinism", pos(5)) {
		t.Error("diagnostic two lines below the directive should NOT be suppressed")
	}
	if idx.Allowed("seedflow", pos(4)) {
		t.Error("a directive for one rule should not suppress another")
	}
}

// TestBareAllowIsDiagnostic runs the full suite end to end over a
// hand-built package: a bare //energylint:allow must surface as exactly
// one allowdecl diagnostic.
func TestBareAllowIsDiagnostic(t *testing.T) {
	src := "package p\n\n//energylint:allow\nvar x = 1\n"
	fset, f := parseFixture(t, src)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	pkg := &Package{
		Fset:   fset,
		Files:  []*ast.File{f},
		Types:  tpkg,
		Info:   info,
		Path:   "p",
		Allows: NewAllowIndex(fset, []*ast.File{f}),
	}
	diags, err := Run(pkg, All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "allowdecl" || !strings.Contains(d.Message, "bare //energylint:allow") {
		t.Errorf("unexpected diagnostic: %+v", d)
	}
	if d.URL != "DESIGN.md#energylint-allowdecl" {
		t.Errorf("URL = %q, want DESIGN.md#energylint-allowdecl", d.URL)
	}
	if d.Pos.Line != 3 {
		t.Errorf("diagnostic line = %d, want 3", d.Pos.Line)
	}
}

// TestAllowEntries checks the -allows enumeration API: well-formed
// directives come back in (file, line) order with rule and reason;
// malformed ones are excluded (they are allowdecl diagnostics instead).
func TestAllowEntries(t *testing.T) {
	src := `package p

//energylint:allow determinism(clock injected in tests)
var a = 1

//energylint:allow seedflow(identity mixing happens one call up)
var b = 2

//energylint:allow
var c = 3
`
	fset, f := parseFixture(t, src)
	idx := NewAllowIndex(fset, []*ast.File{f})
	entries := idx.Entries()
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2: %+v", len(entries), entries)
	}
	if entries[0].Rule != "determinism" || entries[0].Reason != "clock injected in tests" {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Rule != "seedflow" || entries[1].Pos.Line != 6 {
		t.Errorf("entry 1 = %+v", entries[1])
	}
	if entries[0].Pos.Line >= entries[1].Pos.Line {
		t.Errorf("entries not in line order: %+v", entries)
	}
}

// TestEntriesUsedTracking pins the stale-audit bookkeeping: a directive
// reports Used only after Allowed matched it, and both directives
// covering one line (same line and line above) are credited.
func TestEntriesUsedTracking(t *testing.T) {
	src := `package p

//energylint:allow determinism(above the line)
var a = 1 //energylint:allow determinism(on the line)

//energylint:allow seedflow(never fires)
var b = 2
`
	fset, f := parseFixture(t, src)
	idx := NewAllowIndex(fset, []*ast.File{f})
	for _, e := range idx.Entries() {
		if e.Used {
			t.Errorf("directive %+v used before any diagnostic", e)
		}
	}
	if !idx.Allowed("determinism", token.Position{Filename: "fixture.go", Line: 4}) {
		t.Fatal("diagnostic on line 4 should be suppressed")
	}
	for _, e := range idx.Entries() {
		switch e.Rule {
		case "determinism":
			if !e.Used {
				t.Errorf("determinism directive at line %d not marked used", e.Pos.Line)
			}
		case "seedflow":
			if e.Used {
				t.Errorf("seedflow directive marked used but never matched")
			}
		}
	}
}
