// Package analysis is energylint: a suite of static analyzers that turn
// this repository's reproducibility conventions into compiler-grade,
// CI-checked rules. The headline guarantee of the reproduction — Eq. 9
// constants recovered byte-identically for any -workers count, with
// per-sample identity-derived seeds and context-aware sweeps — survives
// only as long as nobody introduces a stray time.Now, an unseeded
// global rand call, an order-dependent map iteration, or a positional
// seed+i derivation. Each analyzer here mechanically enforces one such
// invariant; cmd/energylint is the multichecker driver.
//
// The framework mirrors the golang.org/x/tools/go/analysis API surface
// (Analyzer, Pass, Reportf, analysistest-style testdata) but is built
// entirely on the standard library's go/ast and go/types, because this
// module deliberately has no third-party dependencies. Every diagnostic
// carries a URL-style rule ID pointing at the "Static analysis" section
// of DESIGN.md, and every rule has a single escape hatch:
//
//	//energylint:allow <rule>(<reason>)
//
// placed on the flagged line or the line directly above it. A bare
// allow without a rule or a reason is itself a diagnostic (see the
// allowdecl analyzer), so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one energylint rule. The shape intentionally
// matches golang.org/x/tools/go/analysis.Analyzer so the suite could be
// ported onto the upstream framework without touching the rule logic.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //energylint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// URL is the rule's documentation anchor (DESIGN.md#energylint-<name>).
	URL string
	// Run reports the rule's diagnostics through the pass.
	Run func(*Pass) error
}

// Diagnostic is one resolved finding, positioned and attributed.
type Diagnostic struct {
	Pos     token.Position
	Rule    string
	Message string
	URL     string
	// Allowed marks a finding suppressed by an //energylint:allow
	// directive. Run drops these; RunAll keeps them so the -json mode
	// can show the audited suppressions alongside live findings.
	Allowed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.URL)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Path is the package's import path ("determinism" etc. under
	// analysistest).
	Path string

	allows *AllowIndex
	diags  []Diagnostic
}

// Reportf records a diagnostic at pos unless an //energylint:allow
// directive for this rule covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	allowed := p.allows != nil && p.allows.Allowed(p.Analyzer.Name, position)
	p.diags = append(p.diags, Diagnostic{
		Pos:     position,
		Rule:    p.Analyzer.Name,
		Message: fmt.Sprintf(format, args...),
		URL:     p.Analyzer.URL,
		Allowed: allowed,
	})
}

// errorType is the predeclared error interface, shared by analyzers.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// Run executes the analyzers over one loaded package and returns the
// combined diagnostics in deterministic order (file, line, column, rule,
// message) so repeated runs and parallel CI shards agree byte-for-byte.
// Findings suppressed by //energylint:allow directives are dropped.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAll(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	live := all[:0]
	for _, d := range all {
		if !d.Allowed {
			live = append(live, d)
		}
	}
	return live, nil
}

// RunAll is Run without the suppression filter: allowed findings stay
// in the result, marked Allowed, in the same deterministic order.
func RunAll(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Path:     pkg.Path,
			allows:   pkg.Allows,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		all = append(all, pass.diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return all, nil
}

// All returns the full energylint suite in the order diagnostics should
// be attributed when several rules fire on one line.
func All() []*Analyzer {
	return []*Analyzer{
		Allowdecl,
		Atomicfield,
		Ctxloop,
		Determinism,
		Errwrap,
		Goleak,
		Hotalloc,
		Lockguard,
		Lockorder,
		Seedflow,
		Unitdoc,
		Unittypes,
	}
}

// ruleURL builds the documentation anchor every analyzer advertises.
func ruleURL(name string) string {
	return "DESIGN.md#energylint-" + name
}
