package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Goleak flags go statements that spawn a goroutine with no reachable
// termination path. The daemon's background loops — the health ticker,
// the drift recalibration runner, the async calibrate-and-activate — are
// all expected to exit when their context ends or their channel closes;
// a goroutine that can only spin (`for { work() }` with no return, or a
// bare `select {}`) outlives every drain and leaks a scheduler slot per
// spawn, which the chaos soak only notices if the leak is fast enough to
// hurt within one test run.
//
// The check is syntactic and deliberately shallow: a goroutine body
// diverges when it contains an unconditional `for` loop that no
// `return`, labeled/loop-level `break`, or `goto` can leave, or an empty
// `select{}`. Bounded loops (`for i := 0; i < n; i++`), conditional
// loops, and range loops — including range over a channel, which ends
// when the channel closes — terminate by construction and pass. A
// `select` with a `case <-ctx.Done(): return` inside the loop is an
// escape; a bare `break` inside that select is not (it leaves the
// select, not the loop). Helpers get a one-level summary: `go spin()` is
// flagged when spin's own body diverges, matching how the health and
// drift loops are factored, but divergence two calls deep is out of
// scope — as is a loop that exits only by panicking.
var Goleak = &Analyzer{
	Name: "goleak",
	Doc:  "spawned goroutines must have a reachable termination path",
	URL:  ruleURL("goleak"),
	Run:  runGoleak,
}

func runGoleak(pass *Pass) error {
	div := goleakDivergentCallees(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				checkGoStmt(pass, g, div)
			}
			return true
		})
	}
	return nil
}

// goleakDivergentCallees summarizes the package's named functions and
// var-assigned closures: the ones whose own body diverges. Spawning one
// of them is as leaky as inlining the loop.
func goleakDivergentCallees(pass *Pass) map[types.Object]string {
	out := map[types.Object]string{}
	record := func(name *ast.Ident, body *ast.BlockStmt) {
		if name == nil || name.Name == "_" || body == nil {
			return
		}
		obj := pass.Info.ObjectOf(name)
		if obj == nil {
			return
		}
		if detail, bad := divergentBody(body); bad {
			out[obj] = detail
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				record(fn.Name, fn.Body)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) != len(s.Rhs) {
					return true
				}
				for i, rhs := range s.Rhs {
					if lit, ok := rhs.(*ast.FuncLit); ok {
						if id, ok := s.Lhs[i].(*ast.Ident); ok {
							record(id, lit.Body)
						}
					}
				}
			case *ast.ValueSpec:
				if len(s.Names) != len(s.Values) {
					return true
				}
				for i, v := range s.Values {
					if lit, ok := v.(*ast.FuncLit); ok {
						record(s.Names[i], lit.Body)
					}
				}
			}
			return true
		})
	}
	return out
}

func checkGoStmt(pass *Pass, g *ast.GoStmt, div map[types.Object]string) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if detail, bad := divergentBody(lit.Body); bad {
			pass.Reportf(g.Pos(), "goroutine never terminates: its body contains %s; exit on ctx.Done() or a closed channel, or bound the loop", detail)
			return
		}
		if name, detail, bad := callsDivergent(pass, lit.Body, div); bad {
			pass.Reportf(g.Pos(), "goroutine never terminates: its body calls %s, which contains %s; exit on ctx.Done() or a closed channel, or bound the loop", name, detail)
		}
		return
	}
	if obj := calleeObject(pass, g.Call); obj != nil {
		if detail, bad := div[obj]; bad {
			pass.Reportf(g.Pos(), "goroutine never terminates: %s contains %s; exit on ctx.Done() or a closed channel, or bound the loop", obj.Name(), detail)
		}
	}
}

// divergentBody reports the first construct that makes a body run
// forever: an unconditional for-loop with no escape, or an empty select.
// Nested closures are skipped — they run on their own goroutines.
func divergentBody(body *ast.BlockStmt) (string, bool) {
	detail := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if detail != "" {
			return false
		}
		switch v := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			if v.Cond == nil && !loopEscapes(v) {
				detail = `an unconditional for-loop with no return or break`
				return false
			}
		case *ast.SelectStmt:
			if len(v.Body.List) == 0 {
				detail = "an empty select{} that blocks forever"
				return false
			}
		}
		return true
	})
	return detail, detail != ""
}

// callsDivergent finds a call (outside nested closures) to a summarized
// divergent callee.
func callsDivergent(pass *Pass, body *ast.BlockStmt, div map[types.Object]string) (string, string, bool) {
	var name, detail string
	ast.Inspect(body, func(n ast.Node) bool {
		if detail != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObject(pass, call); obj != nil {
			if d, bad := div[obj]; bad {
				name, detail = obj.Name(), d
				return false
			}
		}
		return true
	})
	return name, detail, detail != ""
}

// loopEscapes reports whether an unconditional for-loop has a statement
// that leaves it: a return, a goto, a labeled break, or an unlabeled
// break at the loop's own nesting level (not one swallowed by an inner
// loop, switch, or select).
func loopEscapes(loop *ast.ForStmt) bool {
	return stmtsEscape(loop.Body.List, true)
}

func stmtsEscape(list []ast.Stmt, breakExits bool) bool {
	for _, s := range list {
		if stmtEscapes(s, breakExits) {
			return true
		}
	}
	return false
}

func stmtEscapes(s ast.Stmt, breakExits bool) bool {
	switch v := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch v.Tok {
		case token.BREAK:
			// A labeled break targets an enclosing statement; from inside
			// the loop that is always an exit.
			return breakExits || v.Label != nil
		case token.GOTO:
			return true
		}
		return false
	case *ast.BlockStmt:
		return stmtsEscape(v.List, breakExits)
	case *ast.LabeledStmt:
		return stmtEscapes(v.Stmt, breakExits)
	case *ast.IfStmt:
		if stmtEscapes(v.Body, breakExits) {
			return true
		}
		return v.Else != nil && stmtEscapes(v.Else, breakExits)
	case *ast.ForStmt:
		return stmtsEscape(v.Body.List, false)
	case *ast.RangeStmt:
		return stmtsEscape(v.Body.List, false)
	case *ast.SwitchStmt:
		return clausesEscape(v.Body, false)
	case *ast.TypeSwitchStmt:
		return clausesEscape(v.Body, false)
	case *ast.SelectStmt:
		return clausesEscape(v.Body, false)
	}
	return false
}

func clausesEscape(body *ast.BlockStmt, breakExits bool) bool {
	for _, cl := range body.List {
		switch c := cl.(type) {
		case *ast.CaseClause:
			if stmtsEscape(c.Body, breakExits) {
				return true
			}
		case *ast.CommClause:
			if stmtsEscape(c.Body, breakExits) {
				return true
			}
		}
	}
	return false
}
