package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// Errwrap enforces modern error plumbing, which the retrying calibration
// path depends on: faults.Do and the CLI cache loader classify failures
// with errors.Is, and a %v along the wrapping chain or a == comparison
// against a sentinel silently defeats both.
//
// Two sub-rules: fmt.Errorf must wrap error operands with %w (not %v or
// %s), and sentinel comparisons err == ErrX / err != ErrX must be
// errors.Is (nil comparisons stay untouched).
var Errwrap = &Analyzer{
	Name: "errwrap",
	Doc:  "wrap errors with %w and compare sentinels with errors.Is",
	URL:  ruleURL("errwrap"),
	Run:  runErrwrap,
}

func runErrwrap(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkErrorf(pass, n)
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkErrorf flags %v / %s verbs whose operand is an error in a
// fmt.Errorf call with a literal format string.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	fn, ok := calledFunc(pass, call)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return // explicit argument indexes; too clever to second-guess
	}
	for i, verb := range verbs {
		argIdx := 1 + i
		if argIdx >= len(call.Args) {
			break // vet's argument-count check owns this mismatch
		}
		if verb != 'v' && verb != 's' {
			continue
		}
		t := pass.Info.TypeOf(call.Args[argIdx])
		if t == nil || !types.Implements(t, errorType) {
			continue
		}
		pass.Reportf(call.Args[argIdx].Pos(), "error wrapped with %%%c loses its chain; use %%w so errors.Is/As keep working through this wrap", verb)
	}
}

// formatVerbs returns one rune per argument-consuming verb of a Printf
// format string, in order. '*' width/precision arguments appear as '*'.
// ok is false when the format uses explicit indexes like %[1]v.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); {
		if format[i] != '%' {
			i++
			continue
		}
		i++ // past '%'
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		for {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				i++
			}
			if i < len(format) && format[i] == '*' {
				verbs = append(verbs, '*')
				i++
			}
			if i < len(format) && format[i] == '.' {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			i++
		case '[':
			return nil, false
		default:
			verbs = append(verbs, rune(format[i]))
			i++
		}
	}
	return verbs, true
}

// checkSentinelCompare flags == / != between two error values where
// neither side is nil.
func checkSentinelCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNilExpr(pass, bin.X) || isNilExpr(pass, bin.Y) {
		return
	}
	tx, ty := pass.Info.TypeOf(bin.X), pass.Info.TypeOf(bin.Y)
	if tx == nil || ty == nil {
		return
	}
	if !types.Implements(tx, errorType) || !types.Implements(ty, errorType) {
		return
	}
	op := "errors.Is(err, target)"
	if bin.Op == token.NEQ {
		op = "!errors.Is(err, target)"
	}
	pass.Reportf(bin.Pos(), "comparing errors with %s misses wrapped chains; use %s", bin.Op, op)
}

func isNilExpr(pass *Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.Info.ObjectOf(id).(*types.Nil)
	return isNil
}
