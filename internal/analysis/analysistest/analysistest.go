// Package analysistest runs energylint analyzers over testdata packages
// and checks their diagnostics against // want expectations, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library.
//
// Expectation syntax, on the line the diagnostic is expected:
//
//	x := seed + i // want `regexp` `another regexp`
//
// Each backquoted (or double-quoted) string is a regular expression that
// must match the message of exactly one diagnostic reported on that
// line; diagnostics without a matching want, and wants without a
// matching diagnostic, fail the test.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"dvfsroofline/internal/analysis"
)

// loader is shared across all tests in the process: the source importer
// caches type-checked dependencies (fmt, context, math/rand), which
// would otherwise be re-checked for every testdata package.
var (
	loaderOnce sync.Once
	loader     *analysis.Loader
)

func sharedLoader() *analysis.Loader {
	loaderOnce.Do(func() { loader = analysis.NewLoader() })
	return loader
}

// Run loads each testdata/src/<pkg> package, applies the analyzer, and
// reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		loaded, err := sharedLoader().LoadDir(dir, pkg)
		if err != nil {
			t.Errorf("loading %s: %v", pkg, err)
			continue
		}
		diags, err := analysis.Run(loaded, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("running %s on %s: %v", a.Name, pkg, err)
			continue
		}
		checkExpectations(t, loaded, diags)
	}
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// wantRe pulls the payload out of a "// want ..." comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

func checkExpectations(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitPatterns(m[1])
				if err != nil {
					t.Errorf("%s: bad want: %v", pos, err)
					continue
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, p, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

func matchWant(wants []*expectation, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// splitPatterns parses a want payload: a sequence of backquoted or
// double-quoted strings.
func splitPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated backquote in %q", s)
			}
			out = append(out, s[1:1+end])
			s = strings.TrimSpace(s[end+2:])
		case '"':
			// find the closing quote, honoring escapes
			i := 1
			for i < len(s) && (s[i] != '"' || s[i-1] == '\\') {
				i++
			}
			if i >= len(s) {
				return nil, fmt.Errorf("unterminated quote in %q", s)
			}
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[i+1:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted or backquoted, got %q", s)
		}
	}
	return out, nil
}
