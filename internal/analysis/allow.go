package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// The escape hatch. A directive comment of the form
//
//	//energylint:allow determinism(the breaker clock is injected via Options.Clock)
//
// suppresses diagnostics of the named rule on the directive's own line
// and on the line immediately below it (so it can trail the flagged
// statement or sit on its own line above). The reason is mandatory:
// a suppression nobody can explain is a suppression nobody can audit.

// allowDirective is one parsed //energylint: comment.
type allowDirective struct {
	pos    token.Position
	rule   string
	reason string
	// problem is non-empty for malformed directives; allowdecl reports it.
	problem string
	// used flips when the directive suppresses a diagnostic; the -allows
	// audit fails on directives that stay false through a full run.
	used bool
}

// AllowIndex holds every energylint directive of a package, keyed for
// position lookup during Pass.Reportf.
type AllowIndex struct {
	// byFileLine maps filename -> line -> directives written on that
	// line. Directives are held by pointer so Allowed can record usage.
	byFileLine map[string]map[int][]*allowDirective
	malformed  []allowDirective
}

// directiveRe matches the payload after "energylint:allow":
// a rule identifier followed by a parenthesized, non-empty reason.
var directiveRe = regexp.MustCompile(`^([A-Za-z][A-Za-z0-9_]*)\((.+)\)$`)

// NewAllowIndex scans a package's comments for energylint directives.
// It is exported for drivers that load packages by other means than
// Loader.LoadDir (the go vet unit-config path of cmd/energylint).
func NewAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	return newAllowIndex(fset, files)
}

// newAllowIndex scans the package's comments for energylint directives.
func newAllowIndex(fset *token.FileSet, files []*ast.File) *AllowIndex {
	idx := &AllowIndex{byFileLine: make(map[string]map[int][]*allowDirective)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx.addComment(fset.Position(c.Pos()), c.Text)
			}
		}
	}
	return idx
}

func (idx *AllowIndex) addComment(pos token.Position, text string) {
	if !strings.HasPrefix(text, "//") {
		return // /* */ comments cannot carry directives, same as go:build
	}
	body := text[len("//"):]
	trimmed := strings.TrimSpace(body)
	if !strings.HasPrefix(trimmed, "energylint:") {
		return
	}
	d := allowDirective{pos: pos}
	switch {
	case !strings.HasPrefix(body, "energylint:"):
		// "// energylint:" — a directive must start //energylint: with no
		// space, like go:build; flag it instead of silently ignoring it.
		d.problem = "malformed directive: write //energylint: with no space after //"
	case strings.HasPrefix(trimmed, "energylint:hotpath"):
		// The hotalloc annotation: a bare marker with no payload. It is
		// consumed by the hotalloc analyzer straight from the function
		// doc comment; here we only police its shape.
		if strings.TrimSpace(strings.TrimPrefix(trimmed, "energylint:hotpath")) != "" {
			d.problem = "malformed //energylint:hotpath: the directive takes no arguments"
			idx.malformed = append(idx.malformed, d)
		}
		return
	case !strings.HasPrefix(trimmed, "energylint:allow"):
		d.problem = "unknown energylint directive " + quoteHead(trimmed) + ": only //energylint:allow <rule>(<reason>) and //energylint:hotpath are defined"
	default:
		payload := strings.TrimSpace(strings.TrimPrefix(trimmed, "energylint:allow"))
		m := directiveRe.FindStringSubmatch(payload)
		switch {
		case payload == "":
			d.problem = "bare //energylint:allow: name the rule and give a reason, e.g. //energylint:allow determinism(why this is safe)"
		case m == nil:
			d.problem = "malformed //energylint:allow " + quoteHead(payload) + ": want <rule>(<non-empty reason>)"
		case strings.TrimSpace(m[2]) == "":
			d.problem = "//energylint:allow " + m[1] + " has an empty reason: say why the suppression is safe"
		case !knownRule(m[1]):
			d.problem = "//energylint:allow names unknown rule " + quoteHead(m[1])
		default:
			d.rule = m[1]
			d.reason = strings.TrimSpace(m[2])
		}
	}
	if d.problem != "" {
		idx.malformed = append(idx.malformed, d)
		return
	}
	lines := idx.byFileLine[pos.Filename]
	if lines == nil {
		lines = make(map[int][]*allowDirective)
		idx.byFileLine[pos.Filename] = lines
	}
	lines[pos.Line] = append(lines[pos.Line], &d)
}

// AllowEntry is one well-formed //energylint:allow directive, as
// surfaced by the -allows audit listing of cmd/energylint.
type AllowEntry struct {
	Pos    token.Position
	Rule   string
	Reason string
	// Used reports whether the directive suppressed at least one
	// diagnostic during the analyzer runs preceding Entries. A directive
	// that suppresses nothing is stale: the code it excused has moved or
	// been fixed, and the suppression would silently cover the next
	// regression on that line.
	Used bool
}

// Entries returns every well-formed allow directive of the package in
// deterministic (file, line) order, so the escape-hatch inventory can
// be audited and diffed across CI runs. Used is only meaningful after
// the full suite has run against the package.
func (idx *AllowIndex) Entries() []AllowEntry {
	var out []AllowEntry
	for _, lines := range idx.byFileLine {
		for _, ds := range lines {
			for _, d := range ds {
				out = append(out, AllowEntry{Pos: d.pos, Rule: d.rule, Reason: d.reason, Used: d.used})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// Allowed reports whether a diagnostic of rule at pos is suppressed by a
// directive on the same line or the line directly above. Every matching
// directive is marked used, so the -allows audit can flag the ones that
// never fire.
func (idx *AllowIndex) Allowed(rule string, pos token.Position) bool {
	lines := idx.byFileLine[pos.Filename]
	if lines == nil {
		return false
	}
	ok := false
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.rule == rule {
				d.used = true
				ok = true
			}
		}
	}
	return ok
}

func quoteHead(s string) string {
	if i := strings.IndexAny(s, " \t"); i > 0 && i < len(s) {
		// keep the message single-token for readability
		s = s[:i] + "…"
	}
	if len(s) > 40 {
		s = s[:40] + "…"
	}
	return "\"" + s + "\""
}

func knownRule(name string) bool {
	for _, a := range All() {
		if a.Name == name {
			return true
		}
	}
	return false
}

// Allowdecl polices the escape hatch itself: every //energylint:
// directive must be a well-formed allow with a known rule and a
// non-empty reason. Without this rule a typoed suppression would both
// fail to suppress and fail to be noticed — or worse, a bare blanket
// allow would hide a diagnostic with no recorded justification.
var Allowdecl = &Analyzer{
	Name: "allowdecl",
	Doc:  "energylint:allow directives must name a known rule and carry a non-empty reason",
	URL:  ruleURL("allowdecl"),
	Run: func(pass *Pass) error {
		if pass.allows == nil {
			return nil
		}
		for _, d := range pass.allows.malformed {
			pass.diags = append(pass.diags, Diagnostic{
				Pos:     d.pos,
				Rule:    pass.Analyzer.Name,
				Message: d.problem,
				URL:     pass.Analyzer.URL,
			})
		}
		return nil
	},
}
