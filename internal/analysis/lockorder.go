package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Lockorder hunts for the deadlocks lockguard cannot see: paths where
// every individual lock is held correctly, but two paths acquire the
// same pair of locks in opposite orders. PR8's live-membership machinery
// made this the repo's sharpest risk surface — the Registry, Health
// loop, drift watchdog and per-device breakers each own a mutex, and a
// health tick that locks the registry and then a breaker can deadlock
// against a breaker callback that locks in the other order.
//
// The rule reuses lockguard's flow-sensitive held-lock simulation, but
// tracks *every* sync.Mutex/RWMutex struct field and package-level
// mutex var, annotated or not. Per function (and through one-level
// summaries of package-local callees, so `r.mu.Lock(); r.rebuild()`
// attributes rebuild's acquisitions to the call site) it records each
// lock acquired while another is held, then assembles a package-wide
// acquisition-order graph whose nodes are (struct type, mutex field)
// pairs. Any cycle is an AB–BA deadlock waiting for the right
// interleaving; the diagnostic spells out the full witness chain of
// call sites so the fix (pick one order, or drop a lock before the
// call) is mechanical. Two acquisitions of the same node on one path
// are reported directly: re-locking a mutex the path already holds is
// a guaranteed self-deadlock (for an RWMutex, a recursive RLock can
// deadlock against a writer waiting between the two RLocks), and
// locking a second *instance* of the same struct while holding the
// first has no defined order between instances at all.
//
// Known limits, by design: lock identity is lexical (per lockguard), a
// cycle spanning packages is invisible to a per-package pass, and
// summaries stop at one level — a chain laundered through two helpers
// needs the intermediate call inlined or annotated away.
var Lockorder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic across the package, and no path may re-acquire a lock it already holds",
	URL:  ruleURL("lockorder"),
	Run:  runLockorder,
}

func runLockorder(pass *Pass) error {
	lo := &lockorderPass{
		pass:    pass,
		mutexes: map[*types.Var]bool{},
		labels:  map[*types.Var]string{},
		acq:     map[types.Object][]acqRec{},
		edges:   map[orderEdge]*orderWitness{},
	}
	lo.collect()
	if len(lo.mutexes) == 0 {
		return nil
	}
	lo.summarize()
	lo.walkFunctions()
	lo.reportCycles()
	return nil
}

// acqRec is one acquisition a function performs directly: the mutex
// node, whether the base expression is the method receiver (so a call
// site can rebind it to the call's own base), and the rendered lock
// expression for messages.
type acqRec struct {
	mu      *types.Var
	viaRecv bool
	expr    string
}

// orderEdge from→to means some path acquires `to` while holding `from`.
type orderEdge struct {
	from, to *types.Var
}

// orderWitness is the first (deterministically: files and declarations
// in order) call site proving an edge.
type orderWitness struct {
	fn   string
	pos  token.Pos
	desc string
}

type lockorderPass struct {
	pass    *Pass
	mutexes map[*types.Var]bool
	// labels names each mutex node "StructType.field" (or the bare var
	// name for a package-level mutex).
	labels map[*types.Var]string
	// acq holds the one-level summaries: every function's direct
	// acquisitions.
	acq   map[types.Object][]acqRec
	edges map[orderEdge]*orderWitness
}

// collect finds every mutex node in the package: struct fields of type
// sync.Mutex/RWMutex (keyed by declaring struct so Registry.mu and
// Breaker.mu are distinct nodes even when both are spelled "mu") and
// package-level mutex vars.
func (lo *lockorderPass) collect() {
	for _, file := range lo.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch v := n.(type) {
			case *ast.TypeSpec:
				st, ok := v.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						mv, ok := lo.pass.Info.ObjectOf(name).(*types.Var)
						if ok && isMutexType(mv.Type()) {
							lo.mutexes[mv] = true
							lo.labels[mv] = v.Name.Name + "." + name.Name
						}
					}
				}
			case *ast.ValueSpec:
				for _, name := range v.Names {
					mv, ok := lo.pass.Info.ObjectOf(name).(*types.Var)
					if ok && mv.Parent() == lo.pass.Pkg.Scope() && isMutexType(mv.Type()) {
						lo.mutexes[mv] = true
						lo.labels[mv] = name.Name
					}
				}
			}
			return true
		})
	}
}

func (lo *lockorderPass) newSim() *lockSim {
	return &lockSim{
		info:    lo.pass.Info,
		tracked: func(v *types.Var) bool { return lo.mutexes[v] },
	}
}

// summarize records each function's direct (synchronous, top-level)
// acquisitions so walkFunctions can attribute them to call sites one
// level up. Closure bodies are excluded: a stored closure or goroutine
// does not acquire at the time of the enclosing call.
func (lo *lockorderPass) summarize() {
	for _, file := range lo.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := lo.pass.Info.ObjectOf(fn.Name)
			if obj == nil {
				continue
			}
			recv := recvIdentName(fn)
			sim := lo.newSim()
			sim.onAcquire = func(call *ast.CallExpr, key lockKey, mode lockMode, held heldSet) {
				if sim.litDepth != 0 {
					return
				}
				rec := acqRec{
					mu:      key.mu,
					viaRecv: recv != "" && key.base == recv,
					expr:    lo.lockExpr(key),
				}
				for _, have := range lo.acq[obj] {
					if have.mu == rec.mu && have.viaRecv == rec.viaRecv {
						return
					}
				}
				lo.acq[obj] = append(lo.acq[obj], rec)
			}
			sim.block(fn.Body.List, heldSet{})
		}
	}
}

// walkFunctions re-simulates every body, reporting same-node
// re-acquisitions immediately and recording cross-node pairs as graph
// edges — both for direct acquisitions and, through the summaries, for
// calls made while a lock is held.
func (lo *lockorderPass) walkFunctions() {
	for _, file := range lo.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fnName := fn.Name.Name
			sim := lo.newSim()
			sim.onAcquire = func(call *ast.CallExpr, key lockKey, mode lockMode, held heldSet) {
				if prior, ok := held[key]; ok {
					lo.reportReacquire(call.Pos(), key, mode, prior)
					return
				}
				for _, hk := range sortedHeld(lo, held) {
					if hk.mu == key.mu {
						lo.pass.Reportf(call.Pos(), "%s acquired while %s is held on another instance (%s): locks on two instances of the same struct have no defined order and can deadlock against the reverse interleaving", lo.lockExpr(key), lo.labels[key.mu], lo.lockExpr(hk))
						continue
					}
					lo.addEdge(hk.mu, key.mu, &orderWitness{
						fn:  fnName,
						pos: call.Pos(),
						desc: fmt.Sprintf("%s acquires %s while holding %s", fnName,
							lo.labels[key.mu], lo.labels[hk.mu]),
					})
				}
			}
			sim.onCall = func(call *ast.CallExpr, callee types.Object, held heldSet) {
				recs := lo.acq[callee]
				if len(recs) == 0 {
					return
				}
				callBase, baseOK := "", false
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
					callBase, baseOK = exprKey(sel.X)
				}
				for _, rec := range recs {
					if rec.viaRecv && baseOK {
						if _, already := held[lockKey{callBase, rec.mu}]; already {
							lo.pass.Reportf(call.Pos(), "call to %s acquires %s.%s, which is already held on this path: self-deadlock", callee.Name(), callBase, rec.mu.Name())
							continue
						}
					}
					for _, hk := range sortedHeld(lo, held) {
						if hk.mu == rec.mu {
							continue
						}
						lo.addEdge(hk.mu, rec.mu, &orderWitness{
							fn:  fnName,
							pos: call.Pos(),
							desc: fmt.Sprintf("%s calls %s, which acquires %s, while holding %s", fnName,
								callee.Name(), lo.labels[rec.mu], lo.labels[hk.mu]),
						})
					}
				}
			}
			sim.block(fn.Body.List, heldSet{})
		}
	}
}

func (lo *lockorderPass) reportReacquire(pos token.Pos, key lockKey, mode, prior lockMode) {
	name := lo.lockExpr(key)
	if mode == modeRead && prior == modeRead {
		lo.pass.Reportf(pos, "recursive %s.RLock() while the read lock is already held on this path: deadlocks if a writer's Lock() lands between the two (sync.RWMutex forbids recursive read locking)", name)
		return
	}
	verb := "Lock"
	if mode == modeRead {
		verb = "RLock"
	}
	lo.pass.Reportf(pos, "%s.%s() while %s is already held on this path: self-deadlock", name, verb, name)
}

func (lo *lockorderPass) addEdge(from, to *types.Var, w *orderWitness) {
	key := orderEdge{from, to}
	if _, ok := lo.edges[key]; ok {
		return
	}
	lo.edges[key] = w
}

// lockExpr renders a held-set key for a message: "r.mu" when the base is
// known, the node label otherwise.
func (lo *lockorderPass) lockExpr(key lockKey) string {
	if key.base == "" {
		return key.mu.Name()
	}
	return key.base + "." + key.mu.Name()
}

// sortedHeld returns the held keys in a deterministic order (node
// label, then base) so edge witnesses do not depend on map iteration.
func sortedHeld(lo *lockorderPass, held heldSet) []lockKey {
	keys := make([]lockKey, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		li, lj := lo.labels[keys[i].mu], lo.labels[keys[j].mu]
		if li != lj {
			return li < lj
		}
		return keys[i].base < keys[j].base
	})
	return keys
}

// reportCycles finds strongly connected components of the acquisition
// graph and reports one diagnostic per component, with the witness
// chain spelling out every call site on a representative cycle.
func (lo *lockorderPass) reportCycles() {
	nodes := make([]*types.Var, 0, len(lo.mutexes))
	for mu := range lo.mutexes {
		nodes = append(nodes, mu)
	}
	sort.Slice(nodes, func(i, j int) bool { return lo.labels[nodes[i]] < lo.labels[nodes[j]] })
	succ := map[*types.Var][]*types.Var{}
	for e := range lo.edges {
		succ[e.from] = append(succ[e.from], e.to)
	}
	for _, s := range succ {
		sort.Slice(s, func(i, j int) bool { return lo.labels[s[i]] < lo.labels[s[j]] })
	}
	for _, scc := range stronglyConnected(nodes, succ) {
		if len(scc) < 2 {
			continue
		}
		lo.reportCycle(scc, succ)
	}
}

// stronglyConnected is Tarjan's algorithm, iterative over the sorted
// node list so component discovery order is deterministic.
func stronglyConnected(nodes []*types.Var, succ map[*types.Var][]*types.Var) [][]*types.Var {
	index := map[*types.Var]int{}
	lowlink := map[*types.Var]int{}
	onStack := map[*types.Var]bool{}
	var stack []*types.Var
	var sccs [][]*types.Var
	next := 0

	type frame struct {
		v  *types.Var
		ei int
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{root, 0}}
		index[root], lowlink[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei < len(succ[f.v]) {
				w := succ[f.v][f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w], lowlink[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{w, 0})
				} else if onStack[w] && index[w] < lowlink[f.v] {
					lowlink[f.v] = index[w]
				}
				continue
			}
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				var scc []*types.Var
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// reportCycle reconstructs one representative cycle through the
// component and emits the diagnostic at its first witness.
func (lo *lockorderPass) reportCycle(scc []*types.Var, succ map[*types.Var][]*types.Var) {
	in := map[*types.Var]bool{}
	for _, mu := range scc {
		in[mu] = true
	}
	sort.Slice(scc, func(i, j int) bool { return lo.labels[scc[i]] < lo.labels[scc[j]] })
	start := scc[0]
	path := []*types.Var{start}
	visited := map[*types.Var]bool{start: true}
	cur := start
	for range make([]struct{}, 2*len(scc)+1) {
		var next *types.Var
		for _, w := range succ[cur] {
			if w == start && len(path) > 1 {
				next = w
				break
			}
			if in[w] && !visited[w] {
				next = w
				break
			}
		}
		if next == nil {
			// All in-SCC successors already visited; close through any.
			for _, w := range succ[cur] {
				if in[w] {
					next = w
					break
				}
			}
		}
		if next == nil {
			return
		}
		path = append(path, next)
		if next == start {
			break
		}
		visited[next] = true
		cur = next
	}
	if path[len(path)-1] != start {
		return
	}
	labels := make([]string, len(path))
	for i, mu := range path {
		labels[i] = lo.labels[mu]
	}
	var chain []string
	for i := 0; i+1 < len(path); i++ {
		w := lo.edges[orderEdge{path[i], path[i+1]}]
		if w == nil {
			continue
		}
		chain = append(chain, fmt.Sprintf("%s (%s)", w.desc, lo.posn(w.pos)))
	}
	first := lo.edges[orderEdge{path[0], path[1]}]
	lo.pass.Reportf(first.pos, "lock-order cycle %s: %s — a concurrent pair of these paths deadlocks; acquire in one global order or release before the crossing call",
		strings.Join(labels, " → "), strings.Join(chain, "; "))
}

func (lo *lockorderPass) posn(pos token.Pos) string {
	p := lo.pass.Fset.Position(pos)
	return fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
}
