package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Types  *types.Package
	Info   *types.Info
	Path   string
	Allows *AllowIndex
}

// Loader parses and type-checks packages from directories. One Loader
// shares a FileSet and a source importer across every package it loads,
// so the (expensive) from-source type-checking of common dependencies —
// fmt, context, this module's internal packages — happens once per
// process instead of once per package.
type Loader struct {
	Fset *token.FileSet
	imp  types.Importer
}

// NewLoader builds a loader backed by the compiler-independent "source"
// importer, which resolves both standard-library and module-internal
// imports from source. It needs no pre-built export data, which keeps
// energylint runnable with nothing but the go toolchain.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadDir loads the single non-test package in dir under the given
// import path. Test files (*_test.go) are exempt from energylint by
// design: tests may legitimately wall-clock, and their randomness is
// already pinned by explicit rand.NewSource seeds.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") ||
			strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s holds two packages, %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{
		Fset:   l.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
		Path:   path,
		Allows: newAllowIndex(l.Fset, files),
	}, nil
}
