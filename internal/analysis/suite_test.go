package analysis_test

import (
	"testing"

	"dvfsroofline/internal/analysis"
	"dvfsroofline/internal/analysis/analysistest"
)

// Each analyzer runs over its firing testdata package(s) plus, where a
// rule is gated by package name, the want-free "ungated" package that
// proves the gate holds.

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Determinism, "determ", "experiments", "ungated")
}

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Seedflow, "seedpkg")
}

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Ctxloop, "ctxpkg")
}

func TestErrwrap(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Errwrap, "errpkg")
}

func TestUnitdoc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Unitdoc, "tegra", "ungated")
}

func TestUnittypes(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Unittypes, "powermon", "ungated")
}

func TestAllowdecl(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Allowdecl, "allowpkg")
}

func TestLockguard(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockguard, "lockpkg")
}

func TestLockorder(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Lockorder, "lockorderpkg")
}

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Hotalloc, "hotallocpkg")
}

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Goleak, "goleakpkg")
}

func TestAtomicfield(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.Atomicfield, "atomicpkg")
}
