package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Atomicfield enforces all-or-nothing atomicity on struct fields: a
// field that any code touches through the sync/atomic function API
// (atomic.AddUint64(&c.n, 1) on a generation counter, an epoch counter,
// a breaker state word) must be touched that way everywhere. A single
// plain read or write racing with the atomic ones is undefined behavior
// the race detector only sees when a test drives both sides at once —
// and it silently defeats the happens-before edges the atomic side was
// built to provide.
//
// The fleet packages use the typed atomics (atomic.Uint64, atomic.Bool,
// atomic.Pointer[T]) which make mixed access unrepresentable; this rule
// covers the function-based API, where the compiler is perfectly happy
// to let `c.n++` coexist with atomic.AddUint64(&c.n, 1). Composite
// literal keys are construction, not access, and are exempt. The
// preferred fix is migrating the field to its typed atomic equivalent.
var Atomicfield = &Analyzer{
	Name: "atomicfield",
	Doc:  "a field accessed via sync/atomic anywhere must be accessed atomically everywhere",
	URL:  ruleURL("atomicfield"),
	Run:  runAtomicfield,
}

func runAtomicfield(pass *Pass) error {
	// Pass 1: every struct field that appears as &x.f in the first
	// argument of a sync/atomic call, and the exact selector nodes so
	// sanctioned; the name of the first atomic call seen names the
	// diagnostic.
	atomicFields := map[*types.Var]string{}
	sanctioned := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := atomicCallName(pass, call)
			if !ok || len(call.Args) == 0 {
				return true
			}
			un, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || un.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v, ok := pass.Info.ObjectOf(sel.Sel).(*types.Var)
			if !ok || !v.IsField() {
				return true
			}
			if _, seen := atomicFields[v]; !seen {
				atomicFields[v] = "atomic." + name
			}
			sanctioned[sel] = true
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}
	// Pass 2: any other selector reaching one of those fields — a plain
	// read, a plain write, an increment, an address taken for non-atomic
	// use — mixes memory orders.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			v, ok := pass.Info.ObjectOf(sel.Sel).(*types.Var)
			if !ok {
				return true
			}
			if fn, hot := atomicFields[v]; hot {
				pass.Reportf(sel.Sel.Pos(), "field %s mixes atomic and plain access: it is accessed with %s elsewhere, and this plain access races with those; use the sync/atomic API on every access (or migrate the field to a typed atomic)", v.Name(), fn)
			}
			return true
		})
	}
	return nil
}

func atomicCallName(pass *Pass, call *ast.CallExpr) (string, bool) {
	fn, ok := calleeObject(pass, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return "", false
	}
	return fn.Name(), true
}
