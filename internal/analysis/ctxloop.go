package analysis

import (
	"go/ast"
	"go/types"
)

// Ctxloop enforces cancellation-awareness in the sweep and calibration
// loops. A function that accepts a context.Context advertises that its
// work is bounded by the caller's deadline; a loop inside it that grinds
// through samples or grid points without ever consulting the context
// keeps an energyd request running long after the client hung up, and
// keeps cmd/* pipelines alive after SIGINT. Every loop that does real
// work (calls a function) inside a context-taking function must
// reference a context in its body — ctx.Err(), a select on ctx.Done(),
// or passing ctx to the callee all qualify.
//
// Loops with no calls (pure index arithmetic, slice assembly) and loops
// ranging over channels (the receive itself is the blocking point, and
// the sender owns cancellation) are exempt.
//
// Consulting the context may also happen one call level deep: a loop
// that calls a package-local function, method or closure whose own body
// consults a context — a method on a struct carrying the ctx, or a
// closure capturing it — is covered, even though the callee takes no
// ctx parameter. The summary is deliberately one level only (computed
// from direct context references, never transitively), keeping the
// analysis predictable: if cancellation is buried deeper than one call,
// the loop should say so explicitly.
var Ctxloop = &Analyzer{
	Name: "ctxloop",
	Doc:  "loops doing work inside context-taking functions must consult the context",
	URL:  ruleURL("ctxloop"),
	Run:  runCtxloop,
}

func runCtxloop(pass *Pass) error {
	consults := ctxConsultingCallees(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				return true
			}
			if !hasCtxParam(pass, fn.Type) {
				return true
			}
			checkCtxLoops(pass, fn.Body, consults)
			return false // checkCtxLoops descends into closures itself
		})
	}
	return nil
}

// ctxConsultingCallees builds the one-level cross-function summary: the
// set of package-local functions, methods and closure-holding variables
// whose body directly references a context value. Calling one of them
// counts as consulting the context.
func ctxConsultingCallees(pass *Pass) map[types.Object]bool {
	consults := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.FuncDecl:
				if d.Body != nil && referencesContext(pass, d.Body) {
					if obj := pass.Info.ObjectOf(d.Name); obj != nil {
						consults[obj] = true
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range d.Rhs {
					lit, ok := rhs.(*ast.FuncLit)
					if !ok || i >= len(d.Lhs) || !referencesContext(pass, lit.Body) {
						continue
					}
					if id, ok := d.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Info.ObjectOf(id); obj != nil {
							consults[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range d.Values {
					lit, ok := v.(*ast.FuncLit)
					if !ok || i >= len(d.Names) || !referencesContext(pass, lit.Body) {
						continue
					}
					if obj := pass.Info.ObjectOf(d.Names[i]); obj != nil {
						consults[obj] = true
					}
				}
			}
			return true
		})
	}
	return consults
}

// hasCtxParam reports whether the signature declares a named, non-blank
// context.Context parameter. A parameter named _ cannot be consulted,
// which is a deliberate statement that the function ignores
// cancellation; that choice is visible at the signature and not this
// rule's business.
func hasCtxParam(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if !isContextType(pass.Info.TypeOf(field.Type)) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return true
			}
		}
	}
	return false
}

// checkCtxLoops flags qualifying loops in body, descending into nested
// closures: a func literal without its own context parameter inherits
// the obligation (and the captured ctx) of its enclosing function.
func checkCtxLoops(pass *Pass, body *ast.BlockStmt, consults map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if hasCtxParam(pass, n.Type) {
				checkCtxLoops(pass, n.Body, consults)
				return false
			}
			return true // keep walking: its loops answer to the outer ctx
		case *ast.ForStmt:
			checkOneLoop(pass, n, n.Body, consults)
		case *ast.RangeStmt:
			if t := pass.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					return true
				}
			}
			checkOneLoop(pass, n, n.Body, consults)
		}
		return true
	})
}

func checkOneLoop(pass *Pass, loop ast.Node, body *ast.BlockStmt, consults map[types.Object]bool) {
	if !loopDoesWork(pass, body) {
		return
	}
	if referencesContext(pass, body) {
		return
	}
	if callsCtxConsultingCallee(pass, body, consults) {
		return
	}
	pass.Reportf(loop.Pos(), "loop inside a context-taking function never consults a context; check ctx.Err() (or pass ctx to the work, or call a helper that consults it) so deadlines and client disconnects stop the loop")
}

// callsCtxConsultingCallee reports whether the loop body calls a
// summarized package-local callee that consults a context internally.
func callsCtxConsultingCallee(pass *Pass, body *ast.BlockStmt, consults map[types.Object]bool) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj := calleeObject(pass, call); obj != nil && consults[obj] {
			found = true
			return false
		}
		return true
	})
	return found
}

// loopDoesWork reports whether the loop body contains at least one call
// that is not a predeclared builtin — the heuristic separating sweeps
// and measurement loops from cheap slice/index assembly.
func loopDoesWork(pass *Pass, body *ast.BlockStmt) bool {
	work := false
	ast.Inspect(body, func(n ast.Node) bool {
		if work {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			switch pass.Info.ObjectOf(fun).(type) {
			case *types.Builtin, *types.TypeName:
				return true // append/len/make/... or a conversion
			}
		case *ast.SelectorExpr:
			if _, ok := pass.Info.ObjectOf(fun.Sel).(*types.TypeName); ok {
				return true // qualified conversion, e.g. time.Duration(x)
			}
		}
		work = true
		return false
	})
	return work
}

// referencesContext reports whether the body mentions any value of type
// context.Context — the parameter itself, a derived WithTimeout child,
// or a captured one.
func referencesContext(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.ObjectOf(id)
		if v, ok := obj.(*types.Var); ok && isContextType(v.Type()) {
			found = true
		}
		return true
	})
	return found
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
