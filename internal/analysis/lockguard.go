package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// Lockguard turns the repository's "guarded by <mu>" field comments into
// a checked contract. PR6–PR8 built a fleet whose correctness rests on
// mutex discipline that used to live only in prose — the registry's
// member list, the breaker's state window, the LRU cache's tables. The
// race detector only catches the interleavings a test happens to drive;
// this rule proves the discipline on every syntactic path.
//
// A struct field annotated
//
//	members []*Node // guarded by mu
//
// may only be read or written while the named sibling mutex is held.
// The checker runs a flow-sensitive simulation over each function body:
// base.mu.Lock()/RLock() adds (base, mu) to the held set,
// Unlock()/RUnlock() removes it, defer base.mu.Unlock() keeps it held to
// the end of the function, and branches merge by intersection — a branch
// that returns early (the classic `if n == nil { r.mu.Unlock(); return }`
// bailout) does not poison the straight-line path. Method summaries are
// computed first: an unexported method whose body touches guarded
// receiver fields without locking (rebuildLocked, removeLocked) is
// recorded as a caller-holds helper, its call sites are checked instead,
// and the requirement propagates up through receiver-method call chains.
// Exported methods cannot lean on that contract when the mutex is
// unexported — an external caller has no way to hold it — so their
// unheld accesses are reported directly. Goroutine bodies and stored
// closures start with an empty held set: a `go` statement escapes the
// critical section that spawned it.
//
// Known limits, by design: lock identity is tracked lexically (the
// rendered base expression), RLock counts as fully held, loop bodies are
// simulated once with the entry state, and summaries only cover methods
// of the annotated struct — a helper reached through a function value is
// checked as an independent closure.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated // guarded by <mu> must only be accessed while that mutex is held",
	URL:  ruleURL("lockguard"),
	Run:  runLockguard,
}

// guardedByRe extracts the mutex field name from a field comment. The
// grammar is deliberately the prose people already write: any comment on
// the field containing "guarded by <ident>".
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runLockguard(pass *Pass) error {
	lg := &lockguardPass{
		pass:     pass,
		guarded:  map[*types.Var]*types.Var{},
		mutexes:  map[*types.Var]bool{},
		requires: map[types.Object][]*types.Var{},
	}
	lg.collect()
	if len(lg.guarded) == 0 {
		return nil
	}
	lg.summarize()
	lg.check()
	return nil
}

type lockguardPass struct {
	pass *Pass
	// guarded maps an annotated struct field to the sibling mutex that
	// guards it.
	guarded map[*types.Var]*types.Var
	// mutexes is every mutex field named by some annotation; Lock and
	// Unlock calls on these drive the held-set simulation.
	mutexes map[*types.Var]bool
	// requires maps a method to the receiver mutexes its callers must
	// hold (the caller-holds summaries), sorted by name.
	requires map[types.Object][]*types.Var
}

// collect parses the guarded-by annotations and validates that each one
// names a sibling mutex field.
func (lg *lockguardPass) collect() {
	for _, file := range lg.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				name := guardNameOf(field)
				if name == "" {
					continue
				}
				mu := lg.siblingMutex(st, name)
				if mu == nil {
					lg.pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex or sync.RWMutex field", name)
					continue
				}
				lg.mutexes[mu] = true
				for _, fn := range field.Names {
					if v, ok := lg.pass.Info.ObjectOf(fn).(*types.Var); ok {
						lg.guarded[v] = mu
					}
				}
			}
			return true
		})
	}
}

// guardNameOf returns the mutex name a field's doc or trailing comment
// claims guards it, or "".
func guardNameOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// siblingMutex resolves name to a sync.Mutex/RWMutex field of the same
// struct, or nil.
func (lg *lockguardPass) siblingMutex(st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, fn := range f.Names {
			if fn.Name != name {
				continue
			}
			if v, ok := lg.pass.Info.ObjectOf(fn).(*types.Var); ok && isMutexType(v.Type()) {
				return v
			}
			return nil
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// summarize computes the caller-holds contracts to a fixpoint: a method
// that touches guarded receiver fields (or calls another caller-holds
// method on its receiver) without locking requires the mutex from its
// own callers. Exported methods with an unexported guard are excluded —
// callers outside the package cannot satisfy such a contract, so phase
// two reports their accesses directly.
func (lg *lockguardPass) summarize() {
	for changed := true; changed; {
		changed = false
		for _, file := range lg.pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || fn.Recv == nil {
					continue
				}
				recv := recvIdentName(fn)
				obj := lg.pass.Info.ObjectOf(fn.Name)
				if recv == "" || obj == nil {
					continue
				}
				unheld := map[*types.Var]bool{}
				sim := &lockSim{lg: lg}
				sim.found = func(sel *ast.SelectorExpr, base string, f, mu *types.Var) {
					if sim.litDepth == 0 && base == recv {
						unheld[mu] = true
					}
				}
				sim.foundCall = func(call *ast.CallExpr, callee types.Object, base string, mu *types.Var) {
					if sim.litDepth == 0 && base == recv {
						unheld[mu] = true
					}
				}
				sim.block(fn.Body.List, heldSet{})
				for mu := range unheld {
					if fn.Name.IsExported() && !mu.Exported() {
						continue
					}
					if !containsVar(lg.requires[obj], mu) {
						lg.requires[obj] = append(lg.requires[obj], mu)
						changed = true
					}
				}
			}
		}
	}
	for obj, mus := range lg.requires {
		sort.Slice(mus, func(i, j int) bool { return mus[i].Name() < mus[j].Name() })
		lg.requires[obj] = mus
	}
}

// check is phase two: simulate every function, seeding methods with
// their own caller-holds contract, and report the accesses and calls
// that reach a guarded field with the mutex demonstrably not held.
func (lg *lockguardPass) check() {
	for _, file := range lg.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := heldSet{}
			if fn.Recv != nil {
				if recv := recvIdentName(fn); recv != "" {
					if obj := lg.pass.Info.ObjectOf(fn.Name); obj != nil {
						for _, mu := range lg.requires[obj] {
							held[lockKey{recv, mu}] = true
						}
					}
				}
			}
			sim := &lockSim{lg: lg}
			sim.found = func(sel *ast.SelectorExpr, base string, f, mu *types.Var) {
				lg.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %q but the mutex is not held on this path; hold %s.%s across the access (or lift it into a method whose callers do)", base, f.Name(), mu.Name(), base, mu.Name())
			}
			sim.foundCall = func(call *ast.CallExpr, callee types.Object, base string, mu *types.Var) {
				lg.pass.Reportf(call.Pos(), "call to %s without holding %s.%s: the callee touches fields guarded by %q and expects its caller to hold the mutex", callee.Name(), base, mu.Name(), mu.Name())
			}
			sim.block(fn.Body.List, held)
		}
	}
}

// recvIdentName returns the receiver identifier of a method, or "" when
// it is unnamed or blank (such a method cannot touch its fields anyway).
func recvIdentName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	name := fn.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

func containsVar(vs []*types.Var, v *types.Var) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}

// lockKey identifies one held mutex: the rendered base expression plus
// the mutex field object, so r.mu and other.mu stay distinct.
type lockKey struct {
	base string
	mu   *types.Var
}

type heldSet map[lockKey]bool

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

func intersect(a, b heldSet) heldSet {
	out := heldSet{}
	for k := range a {
		if b[k] {
			out[k] = true
		}
	}
	return out
}

func intersectAll(sets []heldSet) heldSet {
	if len(sets) == 0 {
		return heldSet{}
	}
	out := sets[0]
	for _, s := range sets[1:] {
		out = intersect(out, s)
	}
	return out
}

// exprKey renders a lock base expression to a stable key: identifier
// chains only (r, s.reg). Anything else — an index expression, a call —
// is unkeyable and conservatively treated as never held.
func exprKey(x ast.Expr) (string, bool) {
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(v.X)
		if !ok {
			return "", false
		}
		return base + "." + v.Sel.Name, true
	}
	return "", false
}

// lockSim walks one function body tracking which (base, mutex) pairs are
// provably held, invoking found/foundCall for unheld guarded accesses.
type lockSim struct {
	lg        *lockguardPass
	litDepth  int
	found     func(sel *ast.SelectorExpr, base string, f, mu *types.Var)
	foundCall func(call *ast.CallExpr, callee types.Object, base string, mu *types.Var)
}

// block simulates a statement list, returning the exit held set and
// whether the list terminates (returns/branches) rather than falling
// through.
func (s *lockSim) block(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, st := range list {
		var term bool
		held, term = s.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockSim) stmt(st ast.Stmt, held heldSet) (heldSet, bool) {
	switch v := st.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		return s.block(v.List, held)
	case *ast.LabeledStmt:
		return s.stmt(v.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
			if key, acquire, isLock := s.lockOp(call); isLock {
				if acquire {
					held[key] = true
				} else {
					delete(held, key)
				}
				return held, false
			}
		}
		s.scan(v.X, held)
		return held, false
	case *ast.DeferStmt:
		if _, acquire, isLock := s.lockOp(v.Call); isLock && !acquire {
			// defer mu.Unlock(): held to the end of the function.
			return held, false
		}
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure runs at return time with whatever was
			// held when the defer was registered still in force on the
			// usual lock-then-defer pattern.
			s.funcLit(lit, held.clone())
			for _, a := range v.Call.Args {
				s.scan(a, held)
			}
			return held, false
		}
		s.scan(v.Call, held)
		return held, false
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently: nothing the spawner
		// holds is held inside it.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			s.funcLit(lit, heldSet{})
		} else {
			s.checkCall(v.Call, heldSet{})
		}
		for _, a := range v.Call.Args {
			s.scan(a, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			s.scan(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; terminating
		// here keeps the intersection merges from mixing in their state.
		return held, true
	case *ast.IfStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		s.scan(v.Cond, held)
		thenHeld, thenTerm := s.block(v.Body.List, held.clone())
		if v.Else == nil {
			if thenTerm {
				return held, false
			}
			return intersect(held, thenHeld), false
		}
		elseHeld, elseTerm := s.stmt(v.Else, held.clone())
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		}
		return intersect(thenHeld, elseHeld), false
	case *ast.ForStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		if v.Cond != nil {
			s.scan(v.Cond, held)
		}
		bodyHeld, _ := s.block(v.Body.List, held.clone())
		if v.Post != nil {
			s.stmt(v.Post, bodyHeld.clone())
		}
		return intersect(held, bodyHeld), false
	case *ast.RangeStmt:
		s.scan(v.X, held)
		bodyHeld, _ := s.block(v.Body.List, held.clone())
		return intersect(held, bodyHeld), false
	case *ast.SwitchStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		if v.Tag != nil {
			s.scan(v.Tag, held)
		}
		return s.clauses(v.Body, held, hasDefaultClause(v.Body))
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		held, _ = s.stmt(v.Assign, held)
		return s.clauses(v.Body, held, hasDefaultClause(v.Body))
	case *ast.SelectStmt:
		if len(v.Body.List) == 0 {
			return held, true // select{} blocks forever
		}
		// A select always takes one of its cases, so if every body
		// terminates the select never falls through.
		return s.clauses(v.Body, held, true)
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			s.scan(r, held)
		}
		for _, l := range v.Lhs {
			s.scan(l, held)
		}
		return held, false
	default:
		s.scan(st, held)
		return held, false
	}
}

// clauses merges the bodies of a switch or select: the exit state is the
// intersection of every clause that can fall through, plus the entry
// state when no clause has to be taken (a switch without default).
func (s *lockSim) clauses(body *ast.BlockStmt, held heldSet, exhaustive bool) (heldSet, bool) {
	var outs []heldSet
	allTerm := true
	for _, cl := range body.List {
		h := held.clone()
		var term bool
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.scan(e, held)
			}
			h, term = s.block(c.Body, h)
		case *ast.CommClause:
			if c.Comm != nil {
				h, _ = s.stmt(c.Comm, h)
			}
			h, term = s.block(c.Body, h)
		}
		if !term {
			outs = append(outs, h)
			allTerm = false
		}
	}
	if !exhaustive {
		outs = append(outs, held)
		allTerm = false
	}
	if allTerm {
		return held, true
	}
	return intersectAll(outs), false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// funcLit simulates a closure body with the given entry state.
func (s *lockSim) funcLit(lit *ast.FuncLit, held heldSet) {
	s.litDepth++
	s.block(lit.Body.List, held)
	s.litDepth--
}

// lockOp recognizes base.mu.Lock()/RLock()/Unlock()/RUnlock() on a
// tracked mutex field, returning the held-set key and whether the call
// acquires.
func (s *lockSim) lockOp(call *ast.CallExpr) (lockKey, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return lockKey{}, false, false
	}
	muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, false, false
	}
	mv, ok := s.lg.pass.Info.ObjectOf(muSel.Sel).(*types.Var)
	if !ok || !s.lg.mutexes[mv] {
		return lockKey{}, false, false
	}
	base, keyable := exprKey(muSel.X)
	if !keyable {
		return lockKey{}, false, false
	}
	return lockKey{base, mv}, acquire, true
}

// scan walks a non-control node reporting guarded accesses and
// caller-holds calls against the current held set. Closures inside start
// empty: a stored function value can run on any goroutine at any time.
func (s *lockSim) scan(n ast.Node, held heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			s.funcLit(v, heldSet{})
			return false
		case *ast.CallExpr:
			s.checkCall(v, held)
		case *ast.SelectorExpr:
			s.checkAccess(v, held)
		}
		return true
	})
}

func (s *lockSim) checkAccess(sel *ast.SelectorExpr, held heldSet) {
	fv, ok := s.lg.pass.Info.ObjectOf(sel.Sel).(*types.Var)
	if !ok {
		return
	}
	mu := s.lg.guarded[fv]
	if mu == nil {
		return
	}
	key, keyable := exprKey(sel.X)
	if keyable && held[lockKey{key, mu}] {
		return
	}
	base := key
	if !keyable {
		base = types.ExprString(sel.X)
	}
	if s.found != nil {
		s.found(sel, base, fv, mu)
	}
}

func (s *lockSim) checkCall(call *ast.CallExpr, held heldSet) {
	obj := calleeObject(s.lg.pass, call)
	if obj == nil {
		return
	}
	mus := s.lg.requires[obj]
	if len(mus) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	key, keyable := exprKey(sel.X)
	base := key
	if !keyable {
		base = types.ExprString(sel.X)
	}
	for _, mu := range mus {
		if keyable && held[lockKey{key, mu}] {
			continue
		}
		if s.foundCall != nil {
			s.foundCall(call, obj, base, mu)
		}
	}
}
