package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
)

// Lockguard turns the repository's "guarded by <mu>" field comments into
// a checked contract. PR6–PR8 built a fleet whose correctness rests on
// mutex discipline that used to live only in prose — the registry's
// member list, the breaker's state window, the LRU cache's tables. The
// race detector only catches the interleavings a test happens to drive;
// this rule proves the discipline on every syntactic path.
//
// A struct field annotated
//
//	members []*Node // guarded by mu
//
// may only be read or written while the named sibling mutex is held.
// The checker runs a flow-sensitive simulation over each function body:
// base.mu.Lock() adds (base, mu) to the held set in write mode,
// base.mu.RLock() adds it in read mode, Unlock()/RUnlock() removes it,
// defer base.mu.Unlock() keeps it held to the end of the function, and
// branches merge by intersection at the weaker mode — a branch that
// returns early (the classic `if n == nil { r.mu.Unlock(); return }`
// bailout) does not poison the straight-line path, and a path that only
// proves an RLock cannot vouch for writes. Reads are satisfied by
// either mode; writes (assignment targets, `++`/`--`, stores through an
// index chain rooted at the field) demand the write lock, so a
// `guarded by` field mutated under nothing but an RLock is a
// diagnostic. Method summaries are computed first: an unexported method
// whose body touches guarded receiver fields without locking
// (rebuildLocked, removeLocked) is recorded as a caller-holds helper at
// the strongest mode its accesses need, its call sites are checked
// instead, and the requirement propagates up through receiver-method
// call chains. Exported methods cannot lean on that contract when the
// mutex is unexported — an external caller has no way to hold it — so
// their unheld accesses are reported directly. Goroutine bodies and
// stored closures start with an empty held set: a `go` statement
// escapes the critical section that spawned it.
//
// Known limits, by design: lock identity is tracked lexically (the
// rendered base expression), loop bodies are simulated once with the
// entry state, and summaries only cover methods of the annotated
// struct — a helper reached through a function value is checked as an
// independent closure.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated // guarded by <mu> must only be accessed while that mutex is held (writes need the write lock)",
	URL:  ruleURL("lockguard"),
	Run:  runLockguard,
}

// guardedByRe extracts the mutex field name from a field comment. The
// grammar is deliberately the prose people already write: any comment on
// the field containing "guarded by <ident>".
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

func runLockguard(pass *Pass) error {
	lg := &lockguardPass{
		pass:     pass,
		guarded:  map[*types.Var]*types.Var{},
		mutexes:  map[*types.Var]bool{},
		requires: map[types.Object][]lockReq{},
	}
	lg.collect()
	if len(lg.guarded) == 0 {
		return nil
	}
	lg.summarize()
	lg.check()
	return nil
}

type lockguardPass struct {
	pass *Pass
	// guarded maps an annotated struct field to the sibling mutex that
	// guards it.
	guarded map[*types.Var]*types.Var
	// mutexes is every mutex field named by some annotation; Lock and
	// Unlock calls on these drive the held-set simulation.
	mutexes map[*types.Var]bool
	// requires maps a method to the receiver mutexes (and the hold mode)
	// its callers must provide — the caller-holds summaries, sorted by
	// mutex name.
	requires map[types.Object][]lockReq
}

// newSim builds a lock simulation over this pass's annotated mutexes.
func (lg *lockguardPass) newSim() *lockSim {
	return &lockSim{
		info:     lg.pass.Info,
		tracked:  func(v *types.Var) bool { return lg.mutexes[v] },
		guarded:  lg.guarded,
		requires: lg.requires,
	}
}

// collect parses the guarded-by annotations and validates that each one
// names a sibling mutex field.
func (lg *lockguardPass) collect() {
	for _, file := range lg.pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				name := guardNameOf(field)
				if name == "" {
					continue
				}
				mu := lg.siblingMutex(st, name)
				if mu == nil {
					lg.pass.Reportf(field.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex or sync.RWMutex field", name)
					continue
				}
				lg.mutexes[mu] = true
				for _, fn := range field.Names {
					if v, ok := lg.pass.Info.ObjectOf(fn).(*types.Var); ok {
						lg.guarded[v] = mu
					}
				}
			}
			return true
		})
	}
}

// guardNameOf returns the mutex name a field's doc or trailing comment
// claims guards it, or "".
func guardNameOf(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// siblingMutex resolves name to a sync.Mutex/RWMutex field of the same
// struct, or nil.
func (lg *lockguardPass) siblingMutex(st *ast.StructType, name string) *types.Var {
	for _, f := range st.Fields.List {
		for _, fn := range f.Names {
			if fn.Name != name {
				continue
			}
			if v, ok := lg.pass.Info.ObjectOf(fn).(*types.Var); ok && isMutexType(v.Type()) {
				return v
			}
			return nil
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// summarize computes the caller-holds contracts to a fixpoint: a method
// that touches guarded receiver fields (or calls another caller-holds
// method on its receiver) without locking requires the mutex from its
// own callers, at the strongest mode any of its accesses needs.
// Exported methods with an unexported guard are excluded — callers
// outside the package cannot satisfy such a contract, so phase two
// reports their accesses directly.
func (lg *lockguardPass) summarize() {
	for changed := true; changed; {
		changed = false
		for _, file := range lg.pass.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || fn.Recv == nil {
					continue
				}
				recv := recvIdentName(fn)
				obj := lg.pass.Info.ObjectOf(fn.Name)
				if recv == "" || obj == nil {
					continue
				}
				unheld := map[*types.Var]lockMode{}
				sim := lg.newSim()
				sim.found = func(sel *ast.SelectorExpr, base string, f, mu *types.Var, write bool, heldMode lockMode) {
					if sim.litDepth == 0 && base == recv {
						need := modeRead
						if write {
							need = modeWrite
						}
						if need > unheld[mu] {
							unheld[mu] = need
						}
					}
				}
				sim.foundCall = func(call *ast.CallExpr, callee types.Object, base string, req lockReq, heldMode lockMode) {
					if sim.litDepth == 0 && base == recv {
						if req.mode > unheld[req.mu] {
							unheld[req.mu] = req.mode
						}
					}
				}
				sim.block(fn.Body.List, heldSet{})
				for mu, mode := range unheld {
					if fn.Name.IsExported() && !mu.Exported() {
						continue
					}
					reqs := lg.requires[obj]
					have := false
					for i := range reqs {
						if reqs[i].mu == mu {
							have = true
							if mode > reqs[i].mode {
								reqs[i].mode = mode
								changed = true
							}
						}
					}
					if !have {
						lg.requires[obj] = append(reqs, lockReq{mu: mu, mode: mode})
						changed = true
					}
				}
			}
		}
	}
	for obj, reqs := range lg.requires {
		sort.Slice(reqs, func(i, j int) bool { return reqs[i].mu.Name() < reqs[j].mu.Name() })
		lg.requires[obj] = reqs
	}
}

// check is phase two: simulate every function, seeding methods with
// their own caller-holds contract, and report the accesses and calls
// that reach a guarded field with the mutex demonstrably not held (or
// held only for reading where a write needs it).
func (lg *lockguardPass) check() {
	for _, file := range lg.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			held := heldSet{}
			if fn.Recv != nil {
				if recv := recvIdentName(fn); recv != "" {
					if obj := lg.pass.Info.ObjectOf(fn.Name); obj != nil {
						for _, req := range lg.requires[obj] {
							held[lockKey{recv, req.mu}] = req.mode
						}
					}
				}
			}
			sim := lg.newSim()
			sim.found = func(sel *ast.SelectorExpr, base string, f, mu *types.Var, write bool, heldMode lockMode) {
				if write && heldMode == modeRead {
					lg.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %q and written here, but only an RLock is held on this path; a write needs %s.%s.Lock()", base, f.Name(), mu.Name(), base, mu.Name())
					return
				}
				lg.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %q but the mutex is not held on this path; hold %s.%s across the access (or lift it into a method whose callers do)", base, f.Name(), mu.Name(), base, mu.Name())
			}
			sim.foundCall = func(call *ast.CallExpr, callee types.Object, base string, req lockReq, heldMode lockMode) {
				if heldMode == modeRead && req.mode == modeWrite {
					lg.pass.Reportf(call.Pos(), "call to %s holding only %s.%s.RLock: the callee writes fields guarded by %q and needs the write lock", callee.Name(), base, req.mu.Name(), req.mu.Name())
					return
				}
				lg.pass.Reportf(call.Pos(), "call to %s without holding %s.%s: the callee touches fields guarded by %q and expects its caller to hold the mutex", callee.Name(), base, req.mu.Name(), req.mu.Name())
			}
			sim.block(fn.Body.List, held)
		}
	}
}

// recvIdentName returns the receiver identifier of a method, or "" when
// it is unnamed or blank (such a method cannot touch its fields anyway).
func recvIdentName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	name := fn.Recv.List[0].Names[0].Name
	if name == "_" {
		return ""
	}
	return name
}

// lockMode is how strongly a mutex is held: an RLock proves shared
// (read) access, a Lock proves exclusive (write) access. The zero value
// means "not held".
type lockMode int

const (
	modeRead  lockMode = 1
	modeWrite lockMode = 2
)

// lockReq is one caller-holds obligation: the mutex and the minimum
// mode the callee's accesses need.
type lockReq struct {
	mu   *types.Var
	mode lockMode
}

// lockKey identifies one held mutex: the rendered base expression plus
// the mutex field object, so r.mu and other.mu stay distinct.
type lockKey struct {
	base string
	mu   *types.Var
}

// heldSet maps each provably held mutex to the strongest mode the path
// guarantees.
type heldSet map[lockKey]lockMode

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, m := range h {
		out[k] = m
	}
	return out
}

// intersect keeps the locks held on both paths, at the weaker of the
// two modes: a merge of a Lock branch and an RLock branch only proves a
// read hold.
func intersect(a, b heldSet) heldSet {
	out := heldSet{}
	for k, ma := range a {
		if mb, ok := b[k]; ok {
			if mb < ma {
				out[k] = mb
			} else {
				out[k] = ma
			}
		}
	}
	return out
}

func intersectAll(sets []heldSet) heldSet {
	if len(sets) == 0 {
		return heldSet{}
	}
	out := sets[0]
	for _, s := range sets[1:] {
		out = intersect(out, s)
	}
	return out
}

// exprKey renders a lock base expression to a stable key: identifier
// chains only (r, s.reg). Anything else — an index expression, a call —
// is unkeyable and conservatively treated as never held.
func exprKey(x ast.Expr) (string, bool) {
	switch v := ast.Unparen(x).(type) {
	case *ast.Ident:
		return v.Name, true
	case *ast.SelectorExpr:
		base, ok := exprKey(v.X)
		if !ok {
			return "", false
		}
		return base + "." + v.Sel.Name, true
	}
	return "", false
}

// lockSim walks one function body tracking which (base, mutex) pairs
// are provably held and at what mode. It is shared by lockguard (which
// wires found/foundCall to report unheld guarded accesses) and
// lockorder (which wires onAcquire/onCall to build the acquisition-
// order graph); every hook is optional.
type lockSim struct {
	info *types.Info
	// tracked selects the mutex variables whose Lock/Unlock calls drive
	// the held-set simulation.
	tracked func(*types.Var) bool
	// guarded maps annotated fields to their guards (lockguard only).
	guarded map[*types.Var]*types.Var
	// requires holds caller-holds summaries (lockguard only).
	requires map[types.Object][]lockReq

	litDepth int
	// found reports an access to a guarded field the current path does
	// not cover: heldMode is the mode actually held (0 when unheld).
	found func(sel *ast.SelectorExpr, base string, f, mu *types.Var, write bool, heldMode lockMode)
	// foundCall reports a call whose callee's caller-holds requirement
	// the current path does not cover.
	foundCall func(call *ast.CallExpr, callee types.Object, base string, req lockReq, heldMode lockMode)
	// onAcquire observes every acquisition of a tracked mutex, with the
	// held set as it stood *before* the acquisition.
	onAcquire func(call *ast.CallExpr, key lockKey, mode lockMode, held heldSet)
	// onCall observes every resolved call expression with the current
	// held set (lock-op calls themselves excluded).
	onCall func(call *ast.CallExpr, callee types.Object, held heldSet)
}

// block simulates a statement list, returning the exit held set and
// whether the list terminates (returns/branches) rather than falling
// through.
func (s *lockSim) block(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, st := range list {
		var term bool
		held, term = s.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockSim) stmt(st ast.Stmt, held heldSet) (heldSet, bool) {
	switch v := st.(type) {
	case nil:
		return held, false
	case *ast.BlockStmt:
		return s.block(v.List, held)
	case *ast.LabeledStmt:
		return s.stmt(v.Stmt, held)
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(v.X).(*ast.CallExpr); ok {
			if key, mode, acquire, isLock := s.lockOp(call); isLock {
				if acquire {
					if s.onAcquire != nil {
						s.onAcquire(call, key, mode, held)
					}
					held[key] = mode
				} else {
					delete(held, key)
				}
				return held, false
			}
		}
		s.scan(v.X, held)
		return held, false
	case *ast.DeferStmt:
		if _, _, acquire, isLock := s.lockOp(v.Call); isLock && !acquire {
			// defer mu.Unlock(): held to the end of the function.
			return held, false
		}
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			// A deferred closure runs at return time with whatever was
			// held when the defer was registered still in force on the
			// usual lock-then-defer pattern.
			s.funcLit(lit, held.clone())
			for _, a := range v.Call.Args {
				s.scan(a, held)
			}
			return held, false
		}
		s.scan(v.Call, held)
		return held, false
	case *ast.GoStmt:
		// The spawned goroutine runs concurrently: nothing the spawner
		// holds is held inside it.
		if lit, ok := v.Call.Fun.(*ast.FuncLit); ok {
			s.funcLit(lit, heldSet{})
		} else {
			s.checkCall(v.Call, heldSet{})
		}
		for _, a := range v.Call.Args {
			s.scan(a, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, r := range v.Results {
			s.scan(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; terminating
		// here keeps the intersection merges from mixing in their state.
		return held, true
	case *ast.IfStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		s.scan(v.Cond, held)
		thenHeld, thenTerm := s.block(v.Body.List, held.clone())
		if v.Else == nil {
			if thenTerm {
				return held, false
			}
			return intersect(held, thenHeld), false
		}
		elseHeld, elseTerm := s.stmt(v.Else, held.clone())
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		}
		return intersect(thenHeld, elseHeld), false
	case *ast.ForStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		if v.Cond != nil {
			s.scan(v.Cond, held)
		}
		bodyHeld, _ := s.block(v.Body.List, held.clone())
		if v.Post != nil {
			s.stmt(v.Post, bodyHeld.clone())
		}
		return intersect(held, bodyHeld), false
	case *ast.RangeStmt:
		s.scan(v.X, held)
		bodyHeld, _ := s.block(v.Body.List, held.clone())
		return intersect(held, bodyHeld), false
	case *ast.SwitchStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		if v.Tag != nil {
			s.scan(v.Tag, held)
		}
		return s.clauses(v.Body, held, hasDefaultClause(v.Body))
	case *ast.TypeSwitchStmt:
		if v.Init != nil {
			held, _ = s.stmt(v.Init, held)
		}
		held, _ = s.stmt(v.Assign, held)
		return s.clauses(v.Body, held, hasDefaultClause(v.Body))
	case *ast.SelectStmt:
		if len(v.Body.List) == 0 {
			return held, true // select{} blocks forever
		}
		// A select always takes one of its cases, so if every body
		// terminates the select never falls through.
		return s.clauses(v.Body, held, true)
	case *ast.AssignStmt:
		for _, r := range v.Rhs {
			s.scan(r, held)
		}
		for _, l := range v.Lhs {
			s.scanWrite(l, held)
		}
		return held, false
	case *ast.IncDecStmt:
		s.scanWrite(v.X, held)
		return held, false
	default:
		s.scan(st, held)
		return held, false
	}
}

// clauses merges the bodies of a switch or select: the exit state is the
// intersection of every clause that can fall through, plus the entry
// state when no clause has to be taken (a switch without default).
func (s *lockSim) clauses(body *ast.BlockStmt, held heldSet, exhaustive bool) (heldSet, bool) {
	var outs []heldSet
	allTerm := true
	for _, cl := range body.List {
		h := held.clone()
		var term bool
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.scan(e, held)
			}
			h, term = s.block(c.Body, h)
		case *ast.CommClause:
			if c.Comm != nil {
				h, _ = s.stmt(c.Comm, h)
			}
			h, term = s.block(c.Body, h)
		}
		if !term {
			outs = append(outs, h)
			allTerm = false
		}
	}
	if !exhaustive {
		outs = append(outs, held)
		allTerm = false
	}
	if allTerm {
		return held, true
	}
	return intersectAll(outs), false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, cl := range body.List {
		if c, ok := cl.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}

// funcLit simulates a closure body with the given entry state.
func (s *lockSim) funcLit(lit *ast.FuncLit, held heldSet) {
	s.litDepth++
	s.block(lit.Body.List, held)
	s.litDepth--
}

// lockOp recognizes Lock()/RLock()/Unlock()/RUnlock() on a tracked
// mutex — base.mu.Lock() or a bare mu.Lock() on a package-level mutex
// var — returning the held-set key, the mode the call (would) grant,
// and whether it acquires.
func (s *lockSim) lockOp(call *ast.CallExpr) (lockKey, lockMode, bool, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false, false
	}
	var acquire bool
	mode := modeWrite
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, mode = true, modeRead
	case "Unlock":
		acquire = false
	case "RUnlock":
		acquire, mode = false, modeRead
	default:
		return lockKey{}, 0, false, false
	}
	var mv *types.Var
	var base string
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		v, ok := s.info.ObjectOf(x.Sel).(*types.Var)
		if !ok {
			return lockKey{}, 0, false, false
		}
		b, keyable := exprKey(x.X)
		if !keyable {
			return lockKey{}, 0, false, false
		}
		mv, base = v, b
	case *ast.Ident:
		v, ok := s.info.ObjectOf(x).(*types.Var)
		if !ok {
			return lockKey{}, 0, false, false
		}
		mv = v
	default:
		return lockKey{}, 0, false, false
	}
	if s.tracked == nil || !s.tracked(mv) {
		return lockKey{}, 0, false, false
	}
	return lockKey{base, mv}, mode, acquire, true
}

// scan walks a non-control node reporting guarded accesses and
// caller-holds calls against the current held set. Closures inside start
// empty: a stored function value can run on any goroutine at any time.
func (s *lockSim) scan(n ast.Node, held heldSet) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			s.funcLit(v, heldSet{})
			return false
		case *ast.CallExpr:
			s.checkCall(v, held)
		case *ast.SelectorExpr:
			s.checkAccess(v, held, false)
		}
		return true
	})
}

// scanWrite walks an assignment target: the guarded field at the root
// of the selector/index chain is a *write* (it needs the write lock),
// while the index expressions and base chains it evaluates are reads.
func (s *lockSim) scanWrite(x ast.Expr, held heldSet) {
	switch v := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		s.checkAccess(v, held, true)
		s.scan(v.X, held)
	case *ast.IndexExpr:
		// t.rows[k] = v mutates the map/slice the field refers to: the
		// field itself is the write target.
		s.scanWrite(v.X, held)
		s.scan(v.Index, held)
	case *ast.StarExpr:
		s.scan(v.X, held)
	default:
		s.scan(x, held)
	}
}

func (s *lockSim) checkAccess(sel *ast.SelectorExpr, held heldSet, write bool) {
	if s.guarded == nil {
		return
	}
	fv, ok := s.info.ObjectOf(sel.Sel).(*types.Var)
	if !ok {
		return
	}
	mu := s.guarded[fv]
	if mu == nil {
		return
	}
	need := modeRead
	if write {
		need = modeWrite
	}
	key, keyable := exprKey(sel.X)
	var heldMode lockMode
	if keyable {
		heldMode = held[lockKey{key, mu}]
		if heldMode >= need {
			return
		}
	}
	base := key
	if !keyable {
		base = types.ExprString(sel.X)
	}
	if s.found != nil {
		s.found(sel, base, fv, mu, write, heldMode)
	}
}

func (s *lockSim) checkCall(call *ast.CallExpr, held heldSet) {
	obj := calleeObjectOf(s.info, call)
	if obj == nil {
		return
	}
	if s.onCall != nil {
		s.onCall(call, obj, held)
	}
	if s.requires == nil {
		return
	}
	reqs := s.requires[obj]
	if len(reqs) == 0 {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	key, keyable := exprKey(sel.X)
	base := key
	if !keyable {
		base = types.ExprString(sel.X)
	}
	for _, req := range reqs {
		var heldMode lockMode
		if keyable {
			heldMode = held[lockKey{key, req.mu}]
			if heldMode >= req.mode {
				continue
			}
		}
		if s.foundCall != nil {
			s.foundCall(call, obj, base, req, heldMode)
		}
	}
}
