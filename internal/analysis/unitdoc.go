package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// unitPkgs are the packages whose exported float64 surfaces carry
// physical quantities: the device model (tegra), the Eq. 9 energy model
// (core), and the energyd wire types (serve). Everywhere else float64s
// are mostly dimensionless math.
var unitPkgs = map[string]bool{"tegra": true, "core": true, "serve": true}

// Unitdoc enforces that every exported float64 struct field and every
// exported function's float64 parameter in the unit-bearing packages
// names its unit — either in the identifier (TimeS, PredictedJ,
// ConstPowerW, CoreMHz) or in a doc comment ("seconds, measured",
// "W/V"). Eq. 9 mixes V² dynamic terms with V-linear leakage terms and
// pJ/J/W across one struct; a silently mislabeled field is exactly the
// class of bug an energy-model reproduction cannot detect numerically,
// because the fit will happily absorb it.
//
// Deprecated: in the unit-typed packages (see unittypes) the quantity
// types of internal/units carry the unit in the type system itself, so
// this naming convention is subsumed there — a units.Joule field is
// invisible to unitdoc (its type is no longer basic float64) and needs
// no "…J" suffix. The rule stays in the suite only to police any raw
// float64 that slips past migration with a misleadingly mute name; new
// code should satisfy unittypes instead.
var Unitdoc = &Analyzer{
	Name: "unitdoc",
	Doc:  "exported float64 fields and params in tegra/core/serve must name their unit",
	URL:  ruleURL("unitdoc"),
	Run:  runUnitdoc,
}

// unitSuffixes are identifier endings that name a unit (or an explicit
// count/ratio), checked case-sensitively: J/pJ (joules), W (watts),
// V/MV/mV (volts), S/Sec/Seconds (seconds), Hz/MHz/GHz, Pct/Percent,
// and the count-like Words/Bytes/Ops/Count/Frac/Fraction/Ratio.
var unitSuffixes = []string{
	"J", "pJ", "nJ", "mJ", "Joule", "Joules",
	"W", "mW", "Watt", "Watts",
	"V", "MV", "mV", "Volt", "Volts",
	"S", "Sec", "Secs", "Seconds", "Ms", "Ns", "Us",
	"Hz", "KHz", "MHz", "GHz", "Cycle", "Cycles",
	"Pct", "Percent",
	"Words", "Bytes", "Ops", "Count", "Frac", "Fraction", "Ratio", "Occupancy",
}

// unitWordRe matches a unit mention inside a comment: either a
// case-sensitive symbol token (J, pJ, W, V, mV, s, ms, Hz, MHz, W/V, %)
// or a case-insensitive spelled-out unit word.
var unitWordRe = regexp.MustCompile(
	`(^|[^A-Za-z0-9/])(J|pJ|nJ|W|V|mV|MV|s|ms|ns|µs|us|Hz|MHz|GHz|W/V|V²|V\^2|%)($|[^A-Za-z0-9/])` +
		`|(?i)\b(joules?|watts?|volts?|seconds?|hertz|percent(age)?|ratio|fractions?|multiplier|factor|dimensionless|unitless|counts?|words?|bytes?|occupancy|millivolts?|megahertz)\b`)

func runUnitdoc(pass *Pass) error {
	if !unitPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					doc := ts.Doc
					if doc == nil {
						doc = d.Doc
					}
					checkStruct(pass, ts.Name.Name, st, doc)
				}
			case *ast.FuncDecl:
				checkFuncParams(pass, d)
			}
		}
	}
	return nil
}

// checkStruct verifies each exported float64 field. A unit named in the
// struct's own doc comment ("...decomposes a prediction by component,
// in joules") blesses every field at once — the idiomatic way to
// document a homogeneous struct.
func checkStruct(pass *Pass, structName string, st *ast.StructType, doc *ast.CommentGroup) {
	if commentNamesUnit(doc) {
		return
	}
	for _, field := range st.Fields.List {
		if !isFloat64Expr(pass, field.Type) {
			continue
		}
		if commentNamesUnit(field.Doc) || commentNamesUnit(field.Comment) {
			continue
		}
		for _, name := range field.Names {
			if !name.IsExported() {
				continue
			}
			if hasUnitSuffix(name.Name) {
				continue
			}
			pass.Reportf(name.Pos(), "exported float64 field %s.%s does not name its unit: add a unit suffix (…J, …W, …S, …MHz, …Pct) or a doc comment naming the unit (J, W, V, s, Hz, ratio, count)", structName, name.Name)
		}
	}
}

// checkFuncParams verifies float64 parameters of exported functions and
// methods: either the parameter name carries a unit suffix or the
// function's doc comment names a unit.
func checkFuncParams(pass *Pass, fn *ast.FuncDecl) {
	if !fn.Name.IsExported() || fn.Type.Params == nil {
		return
	}
	if commentNamesUnit(fn.Doc) {
		return
	}
	for _, field := range fn.Type.Params.List {
		if !isFloat64Expr(pass, field.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" || hasUnitSuffix(name.Name) {
				continue
			}
			pass.Reportf(name.Pos(), "float64 parameter %q of exported %s does not name its unit: use a unit-suffixed name or name the unit in the doc comment", name.Name, fn.Name.Name)
		}
	}
}

func isFloat64Expr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.Float64
}

func hasUnitSuffix(name string) bool {
	for _, suf := range unitSuffixes {
		if strings.HasSuffix(name, suf) {
			return true
		}
		// Parameters are lowerCamel: accept "timeS" for "TimeS" as well
		// as fully lowercase spellings like "seconds" or "joules".
		if strings.EqualFold(name, suf) {
			return true
		}
	}
	return false
}

func commentNamesUnit(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	return unitWordRe.MatchString(cg.Text())
}
