package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Hotalloc enforces allocation discipline on the serving hot path. The
// paper's Eq. 9 makes energy the product of time and power, so every
// avoidable allocation on a per-request or per-cell path is wasted
// joules twice over: the allocation itself, and the GC cycles that
// reclaim it. PR7 already paid for this lesson once — ring.walk was
// rewritten allocation-free after profiling — and this rule keeps such
// reclaimed allocations from regressing.
//
// A function opts in with a doc-comment annotation:
//
//	//energylint:hotpath
//	func (c *Cache) Get(key string) (V, bool) { ... }
//
// Inside an annotated function, and inside its package-local callees
// one level deep (the helper a hot path delegates to is just as hot),
// the rule flags the constructs that allocate on every execution:
// fmt.* calls anywhere (reflection-driven formatting); string
// concatenation, []byte↔string conversions, map/slice composite
// literals, closure literals, `defer`, and `append` to a slice not
// preallocated by a 3-arg make, when any of these sit inside a loop;
// and interface boxing at call sites anywhere (a concrete non-pointer
// argument passed to an interface parameter heap-allocates its copy).
// Constant arguments and pointer-shaped values (pointers, maps, chans,
// funcs) box without allocating and are not flagged.
//
// Known limits, by design: callee expansion stops at one level and at
// package boundaries, escape analysis is not modeled (a flagged
// construct the compiler proves non-escaping is a false positive to
// //energylint:allow with that reason), and preallocation is only
// recognized as a literal 3-arg make in the same function.
var Hotalloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions annotated //energylint:hotpath (and their direct callees) must avoid per-iteration and per-call allocations",
	URL:  ruleURL("hotalloc"),
	Run:  runHotalloc,
}

func runHotalloc(pass *Pass) error {
	h := &hotallocPass{pass: pass, decls: map[types.Object]*ast.FuncDecl{}}
	hot := h.collectHot()
	for _, hf := range hot {
		h.checkFunc(hf.decl, hf.where)
	}
	return nil
}

type hotallocPass struct {
	pass  *Pass
	decls map[types.Object]*ast.FuncDecl
}

type hotFunc struct {
	decl  *ast.FuncDecl
	where string
}

// collectHot indexes the package's function declarations, finds the
// //energylint:hotpath annotations, and expands the checked set by the
// annotated functions' package-local callees, one level deep. Order is
// deterministic: files and declarations in source order, annotated
// functions before their callees.
func (h *hotallocPass) collectHot() []hotFunc {
	var annotated []*ast.FuncDecl
	for _, file := range h.pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := h.pass.Info.ObjectOf(fn.Name); obj != nil {
				h.decls[obj] = fn
			}
			if isHotpathAnnotated(fn) {
				annotated = append(annotated, fn)
			}
		}
	}
	seen := map[*ast.FuncDecl]bool{}
	var out []hotFunc
	for _, fn := range annotated {
		if !seen[fn] {
			seen[fn] = true
			out = append(out, hotFunc{fn, "hot path"})
		}
	}
	for _, fn := range annotated {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeObject(h.pass, call)
			if obj == nil || obj.Pkg() != h.pass.Pkg {
				return true
			}
			callee := h.decls[obj]
			if callee == nil || seen[callee] {
				return true
			}
			seen[callee] = true
			out = append(out, hotFunc{callee, "hot path (callee of " + fn.Name.Name + ")"})
			return true
		})
	}
	return out
}

func isHotpathAnnotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//energylint:hotpath")
		if ok && strings.TrimSpace(rest) == "" {
			return true
		}
	}
	return false
}

func (h *hotallocPass) checkFunc(fn *ast.FuncDecl, where string) {
	w := &hotWalker{
		h:       h,
		where:   where,
		pre:     preallocatedSlices(fn.Body, h.pass.Info),
		chained: map[ast.Expr]bool{},
	}
	w.visit(fn.Body, false)
}

// preallocatedSlices collects the local slice variables initialized by
// a 3-arg make — the one shape append cannot force to regrow as long as
// the capacity estimate holds.
func preallocatedSlices(body *ast.BlockStmt, info *types.Info) map[*types.Var]bool {
	pre := map[*types.Var]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 3 {
				continue
			}
			if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fid.Name != "make" || info.ObjectOf(fid) != types.Universe.Lookup("make") {
				continue
			}
			if v, ok := info.ObjectOf(id).(*types.Var); ok {
				pre[v] = true
			}
		}
		return true
	})
	return pre
}

// hotWalker walks one hot function's body tracking whether the current
// node executes once per loop iteration.
type hotWalker struct {
	h     *hotallocPass
	where string
	pre   map[*types.Var]bool
	// chained suppresses duplicate reports on the sub-expressions of an
	// already-reported string concatenation chain.
	chained map[ast.Expr]bool
}

func (w *hotWalker) reportf(pos token.Pos, format string, args ...any) {
	w.h.pass.Reportf(pos, format+" in a "+w.where, args...)
}

// visit dispatches one node. Loop bodies (and conditions/post
// statements, which also run per iteration) descend with inLoop set;
// closure bodies reset it — the literal itself is the per-iteration
// cost, its body runs on the closure's own schedule.
func (w *hotWalker) visit(n ast.Node, inLoop bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		if x == nil {
			return false
		}
		switch v := x.(type) {
		case *ast.ForStmt:
			if x != n {
				w.visit(v, inLoop)
				return false
			}
			w.visit(v.Init, inLoop)
			w.visit(v.Cond, true)
			w.visit(v.Post, true)
			w.visit(v.Body, true)
			return false
		case *ast.RangeStmt:
			if x != n {
				w.visit(v, inLoop)
				return false
			}
			w.visit(v.X, inLoop)
			w.visit(v.Body, true)
			return false
		case *ast.FuncLit:
			if x != n {
				if inLoop {
					w.reportf(v.Pos(), "closure literal allocated per loop iteration")
				}
				w.visit(v.Body, false)
				return false
			}
			w.visit(v.Body, false)
			return false
		case *ast.DeferStmt:
			if inLoop {
				w.reportf(v.Pos(), "defer inside a loop: every iteration allocates a deferred frame that only runs at function return")
			}
			return true
		case *ast.CallExpr:
			w.call(v, inLoop)
			return true
		case *ast.BinaryExpr:
			if inLoop && v.Op == token.ADD && !w.chained[v] && w.isStringExpr(v) && !w.isConst(v) {
				w.reportf(v.OpPos, "string concatenation per loop iteration; build into a strings.Builder or preallocated []byte")
				w.chained[v.X] = true
				w.chained[v.Y] = true
			} else if w.chained[v] {
				w.chained[v.X] = true
				w.chained[v.Y] = true
			}
			return true
		case *ast.AssignStmt:
			if inLoop && v.Tok == token.ADD_ASSIGN && len(v.Lhs) == 1 && w.isStringExpr(v.Lhs[0]) {
				w.reportf(v.TokPos, "string += per loop iteration reallocates the accumulated string; use a strings.Builder")
			}
			return true
		case *ast.CompositeLit:
			if inLoop {
				switch w.underlying(v).(type) {
				case *types.Map:
					w.reportf(v.Pos(), "map literal allocated per loop iteration; hoist it and clear() between uses")
				case *types.Slice:
					w.reportf(v.Pos(), "slice literal allocated per loop iteration; hoist it and reslice to [:0]")
				}
			}
			return true
		}
		return true
	})
}

func (w *hotWalker) underlying(e ast.Expr) types.Type {
	tv, ok := w.h.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return nil
	}
	return tv.Type.Underlying()
}

func (w *hotWalker) isStringExpr(e ast.Expr) bool {
	b, ok := w.underlying(e).(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (w *hotWalker) isConst(e ast.Expr) bool {
	tv, ok := w.h.pass.Info.Types[e]
	return ok && tv.Value != nil
}

// call checks one call expression: fmt formatting, string↔[]byte
// conversions and growing appends in loops, and interface boxing of
// arguments anywhere in the hot function.
func (w *hotWalker) call(call *ast.CallExpr, inLoop bool) {
	if name, ok := w.fmtCallName(call); ok {
		w.reportf(call.Pos(), "%s formats through reflection and allocates; use strconv appends or preformatted strings", name)
		return
	}
	if tv, ok := w.h.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if inLoop && len(call.Args) == 1 && w.isByteStringConversion(tv.Type, call.Args[0]) {
			w.reportf(call.Pos(), "[]byte↔string conversion copies per loop iteration; hoist it or reuse a shared buffer")
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && w.h.pass.Info.ObjectOf(id) == types.Universe.Lookup("append") {
		if inLoop && len(call.Args) > 0 {
			w.checkAppend(call)
		}
		return
	}
	w.checkBoxing(call)
}

func (w *hotWalker) fmtCallName(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := w.h.pass.Info.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return "", false
	}
	return "fmt." + sel.Sel.Name, true
}

func (w *hotWalker) isByteStringConversion(to types.Type, arg ast.Expr) bool {
	from := w.underlying(arg)
	return (isStringType(to) && isByteSlice(from)) || (isByteSlice(to.Underlying()) && isStringType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func (w *hotWalker) checkAppend(call *ast.CallExpr) {
	target := ast.Unparen(call.Args[0])
	if id, ok := target.(*ast.Ident); ok {
		if v, ok := w.h.pass.Info.ObjectOf(id).(*types.Var); ok && w.pre[v] {
			return
		}
	}
	w.reportf(call.Pos(), "append to %s in a loop may regrow the slice every few iterations; preallocate with a 3-arg make before the loop", types.ExprString(call.Args[0]))
}

// checkBoxing flags concrete, non-pointer-shaped arguments passed to
// interface parameters: the value is copied to the heap to fit behind
// the interface header. Constants are exempt (the compiler interns
// them), as are pointer-shaped values that live in the data word.
func (w *hotWalker) checkBoxing(call *ast.CallExpr) {
	tv, ok := w.h.pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // xs... passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().Underlying().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := w.h.pass.Info.Types[arg]
		if at.Type == nil || at.Value != nil {
			continue // constants go to static storage
		}
		if types.IsInterface(at.Type) || isPointerShaped(at.Type) || isUntypedNil(at.Type) {
			continue
		}
		w.reportf(arg.Pos(), "%s (%s) is boxed into interface %s at this call and escapes to the heap; keep the concrete type or pass a pointer", types.ExprString(arg), at.Type, pt)
	}
}

func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
