package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvfsroofline/internal/serve"
)

// testSpec is a small spec that generates quickly but exercises every
// arrival-process feature: diurnal modulation, bursts, and a multi-class
// merge.
func testSpec(seed int64) Spec {
	return Spec{
		Name:      "test",
		Seed:      seed,
		DurationS: 3,
		Classes: []ClassSpec{
			{Op: OpPredict, BaseRate: 10, DiurnalAmp: 0.5, DiurnalPeriodS: 7, BurstsPerS: 0.2, BurstDurS: 1, BurstBoost: 3},
			{Op: OpAutotune, BaseRate: 4, DiurnalAmp: 0.3, DiurnalPeriodS: 11, DiurnalPhase: 1.1},
			{Op: OpFleetPredict, BaseRate: 3},
		},
		ProfileSizes: []int{64, 128},
	}
}

func mustGenerate(t *testing.T, spec Spec) *Trace {
	t.Helper()
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return tr
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// Same spec, same bytes: the tentpole determinism property.
func TestGenerateDeterministic(t *testing.T) {
	a := encode(t, mustGenerate(t, testSpec(11)))
	b := encode(t, mustGenerate(t, testSpec(11)))
	if !bytes.Equal(a, b) {
		t.Fatalf("two generations of an equal spec differ:\n%d bytes vs %d bytes", len(a), len(b))
	}
	c := encode(t, mustGenerate(t, testSpec(12)))
	if bytes.Equal(a, c) {
		t.Fatalf("different seeds produced identical traces")
	}
	tr := mustGenerate(t, testSpec(11))
	if len(tr.Events) == 0 {
		t.Fatalf("empty trace")
	}
	if tr.Header.Events != len(tr.Events) {
		t.Fatalf("header declares %d events, trace holds %d", tr.Header.Events, len(tr.Events))
	}
}

// Removing one class must not perturb another class's stream: seeds are
// identity-derived (op code), not position-derived.
func TestGenerateClassStreamsIndependent(t *testing.T) {
	full := mustGenerate(t, testSpec(11))
	solo := testSpec(11)
	solo.Classes = solo.Classes[:1] // OpPredict only
	alone := mustGenerate(t, solo)

	var fromFull []Event
	for _, ev := range full.Events {
		if ev.Op == OpPredict {
			fromFull = append(fromFull, ev)
		}
	}
	if len(fromFull) != len(alone.Events) {
		t.Fatalf("predict stream length changed: %d with siblings, %d alone", len(fromFull), len(alone.Events))
	}
	for i := range alone.Events {
		if fromFull[i].AtS != alone.Events[i].AtS || !bytes.Equal(fromFull[i].Body, alone.Events[i].Body) {
			t.Fatalf("predict event %d differs when sibling classes are removed", i)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	orig := encode(t, mustGenerate(t, testSpec(11)))
	tr, err := Read(bytes.NewReader(orig))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	again := encode(t, tr)
	if !bytes.Equal(orig, again) {
		t.Fatalf("Write ∘ Read is not the identity")
	}
}

func TestTraceEventsOrderedAndWellFormed(t *testing.T) {
	tr := mustGenerate(t, testSpec(11))
	prev := 0.0
	for i, ev := range tr.Events {
		if ev.Index != i {
			t.Fatalf("event %d carries index %d", i, ev.Index)
		}
		if ev.AtS < prev {
			t.Fatalf("event %d at %gs precedes predecessor at %gs", i, ev.AtS, prev)
		}
		prev = ev.AtS
		if ev.AtS < 0 || ev.AtS >= tr.Header.DurationS {
			t.Fatalf("event %d offset %gs outside [0, %gs)", i, ev.AtS, tr.Header.DurationS)
		}
		if !json.Valid(ev.Body) {
			t.Fatalf("event %d body is not JSON", i)
		}
	}
}

func TestReadRejectsMalformedTraces(t *testing.T) {
	header := `{"schema":"energytrace/v1","seed":1,"duration_s":1,"events":1}`
	cases := map[string]string{
		"empty file":      "",
		"wrong schema":    `{"schema":"energytrace/v99","seed":1,"duration_s":1,"events":0}`,
		"bad index":       header + "\n" + `{"i":7,"t_s":0.5,"op":"predict","body":{}}`,
		"unknown op":      header + "\n" + `{"i":0,"t_s":0.5,"op":"teleport","body":{}}`,
		"count mismatch":  header + "\n",
		"time regression": strings.Replace(header, `"events":1`, `"events":2`, 1) + "\n" + `{"i":0,"t_s":0.9,"op":"predict","body":{}}` + "\n" + `{"i":1,"t_s":0.1,"op":"predict","body":{}}`,
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read accepted a malformed trace", name)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Seed = 0 },
		func(s *Spec) { s.DurationS = -1 },
		func(s *Spec) { s.Classes = nil },
		func(s *Spec) { s.Classes = append(s.Classes, s.Classes[0]) },
		func(s *Spec) { s.Classes[0].BaseRate = 0 },
		func(s *Spec) { s.Classes[0].DiurnalAmp = 1 },
		func(s *Spec) { s.Classes[0].BurstsPerS = 0.1; s.Classes[0].BurstDurS = 0 },
		func(s *Spec) { s.ProfileSizes = []int{4} },
	}
	for i, mutate := range bad {
		s := testSpec(11)
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad spec", i)
		}
	}
	if err := DefaultSpec(1, 30).Validate(); err != nil {
		t.Errorf("DefaultSpec does not validate: %v", err)
	}
}

// seqTarget records the order requests arrive in; bodies carry their
// trace index as {"k":N}.
type seqTarget struct {
	mu    sync.Mutex
	order []int
	done  atomic.Int64
}

func (s *seqTarget) Do(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error) {
	var v struct {
		K int `json:"k"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		return 0, "", nil, err
	}
	s.mu.Lock()
	s.order = append(s.order, v.K)
	s.mu.Unlock()
	s.done.Add(1)
	return http.StatusOK, "dev-x", []byte(`{}`), nil
}

func (s *seqTarget) Stats(ctx context.Context) (*serve.StatsResponse, error) { return nil, nil }

// Scaled-rate open replay preserves trace order and hits the scaled
// send offsets. The virtual clock advances only inside Sleep, and Sleep
// waits for every dispatched request to land first — so with strictly
// increasing offsets the pacing is fully deterministic.
func TestReplayOpenScaledPreservesOrder(t *testing.T) {
	const n = 40
	const speed = 2.0
	tr := &Trace{Header: Header{Schema: Schema, Seed: 1, DurationS: float64(n), Events: n}}
	for i := 0; i < n; i++ {
		tr.Events = append(tr.Events, Event{
			Index: i,
			AtS:   0.5 + float64(i), // strictly increasing, all positive
			Op:    OpPredict,
			Body:  json.RawMessage(fmt.Sprintf(`{"k":%d}`, i)),
		})
	}

	tgt := &seqTarget{}
	var mu sync.Mutex
	now := time.Unix(0, 0).UTC()
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	sleeps := 0
	var wake []time.Duration
	sleep := func(d time.Duration) {
		// Drain every in-flight request before letting time advance:
		// exactly one Sleep happens per event, so the expected completion
		// count is the Sleep ordinal.
		for tgt.done.Load() != int64(sleeps) {
			runtime.Gosched()
		}
		sleeps++
		mu.Lock()
		now = now.Add(d)
		wake = append(wake, now.Sub(time.Unix(0, 0).UTC()))
		mu.Unlock()
	}

	rep, err := Replay(context.Background(), tr, tgt, ReplayOptions{
		Mode: ModeOpen, Speed: speed, Now: clock, Sleep: sleep,
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}

	if len(tgt.order) != n {
		t.Fatalf("target saw %d requests, want %d", len(tgt.order), n)
	}
	for i, k := range tgt.order {
		if k != i {
			t.Fatalf("request %d arrived out of order (saw trace index %d)", i, k)
		}
	}
	if len(wake) != n {
		t.Fatalf("pacing slept %d times, want once per event (%d)", len(wake), n)
	}
	for i, w := range wake {
		want := time.Duration(tr.Events[i].AtS / speed * float64(time.Second))
		if w != want {
			t.Fatalf("event %d dispatched at virtual %v, want %v (AtS/speed)", i, w, want)
		}
	}
	if rep.Requests != n || rep.TransportFailures != 0 {
		t.Fatalf("report: %d requests, %d transport failures", rep.Requests, rep.TransportFailures)
	}
	if rep.Endpoints["/v1/predict"].Requests != n {
		t.Fatalf("endpoint report lost requests: %+v", rep.Endpoints)
	}
	if got := rep.DeviceShare["dev-x"]; got != 1 {
		t.Fatalf("device share = %v, want all on dev-x", rep.DeviceShare)
	}
}

// scriptTarget is a deterministic fake server: every 3rd autotune is
// degraded, devices alternate, one op class always fails transport.
type scriptTarget struct {
	calls int
}

func (s *scriptTarget) Do(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error) {
	s.calls++
	if op == OpFleetPredict {
		return 0, "", nil, fmt.Errorf("scripted transport failure")
	}
	dev := "dev-a"
	if s.calls%2 == 0 {
		dev = "dev-b"
	}
	resp := []byte(`{}`)
	if op == OpAutotune && s.calls%3 == 0 {
		resp = []byte(`{"degraded":true}`)
	}
	return http.StatusOK, dev, resp, nil
}

func (s *scriptTarget) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	return &serve.StatsResponse{
		Devices: []serve.DeviceStats{
			{DeviceID: "dev-a", CacheHits: 6, CacheMisses: 2, BreakerOpens: 1, DegradedServes: 3, SweepJ: 4, AnsweredJ: 10},
			{DeviceID: "dev-b", CacheHits: 2, CacheMisses: 2, SweepJ: 1, AnsweredJ: 2},
		},
	}, nil
}

// Sync replay with a step clock is byte-deterministic end to end.
func TestReplaySyncReportDeterministic(t *testing.T) {
	tr := mustGenerate(t, testSpec(11))
	run := func() []byte {
		clk := NewStepClock(time.Millisecond)
		rep, err := Replay(context.Background(), tr, &scriptTarget{}, ReplayOptions{Mode: ModeSync, Now: clk.Now})
		if err != nil {
			t.Fatalf("Replay: %v", err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two sync replays of one trace differ:\n--- a\n%s\n--- b\n%s", a, b)
	}

	var rep Report
	if err := json.Unmarshal(a, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != ReportSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, ReportSchema)
	}
	if rep.Requests != len(tr.Events) {
		t.Fatalf("report counts %d requests, trace has %d", rep.Requests, len(tr.Events))
	}
	if rep.TransportFailures == 0 {
		t.Fatalf("scripted fleet_predict transport failures not counted")
	}
	if rep.DegradedResponses == 0 {
		t.Fatalf("scripted degraded autotunes not counted")
	}
	if _, ok := rep.Endpoints["/v1/fleet/predict"]; ok {
		t.Fatalf("transport failures must not produce endpoint rows")
	}
	var share float64
	for _, f := range rep.DeviceShare {
		share += f
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("device shares sum to %g, want 1", share)
	}
	srv := rep.Server
	if srv == nil {
		t.Fatalf("server snapshot missing from report")
	}
	if srv.CacheHits != 8 || srv.CacheMisses != 4 {
		t.Fatalf("server totals misfolded: %+v", srv)
	}
	if want := 8.0 / 12.0; srv.CacheHitRate != want {
		t.Fatalf("hit rate %g, want %g", srv.CacheHitRate, want)
	}
	if srv.BreakerTrips != 1 || srv.DegradedServes != 3 {
		t.Fatalf("breaker/degraded totals misfolded: %+v", srv)
	}
	if want := 12.0 / 5.0; srv.AnsweredPerSweepJ != want {
		t.Fatalf("answered-per-sweep %g, want %g", srv.AnsweredPerSweepJ, want)
	}
}

func TestReplayRouteQueryReachesFleetPredict(t *testing.T) {
	tr := &Trace{
		Header: Header{Schema: Schema, Seed: 1, DurationS: 1, Events: 2},
		Events: []Event{
			{Index: 0, AtS: 0, Op: OpFleetPredict, Body: json.RawMessage(`{}`)},
			{Index: 1, AtS: 0.5, Op: OpPredict, Body: json.RawMessage(`{}`)},
		},
	}
	var queries []string
	tgt := targetFunc(func(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error) {
		queries = append(queries, query)
		return http.StatusOK, "", []byte(`{}`), nil
	})
	clk := NewStepClock(0)
	if _, err := Replay(context.Background(), tr, tgt, ReplayOptions{Route: "least_loaded", Now: clk.Now}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if queries[0] != "?route=least_loaded" {
		t.Fatalf("fleet_predict query = %q, want ?route=least_loaded", queries[0])
	}
	if queries[1] != "" {
		t.Fatalf("route selector leaked onto %s: %q", OpPredict.Path(), queries[1])
	}
}

type targetFunc func(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error)

func (f targetFunc) Do(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error) {
	return f(ctx, op, query, body)
}
func (f targetFunc) Stats(ctx context.Context) (*serve.StatsResponse, error) { return nil, nil }

func TestStepClockAdvancesPerRead(t *testing.T) {
	clk := NewStepClock(time.Second)
	a, b := clk.Now(), clk.Now()
	if got := b.Sub(a); got != time.Second {
		t.Fatalf("consecutive reads %v apart, want 1s", got)
	}
}
