package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"net/url"
	"sort"
)

// This file scripts fleet-membership churn against a replayed trace: a
// ChurnPlan is a sorted list of admin actions keyed to event indices,
// compiled into a ReplayOptions.BeforeEvent hook. The chaos soak uses
// it to add, quarantine, drain and evict devices mid-trace while the
// request stream keeps flowing, with every admin call it issued
// accounted for so the client report still reconciles exactly against
// the server's /v1/stats snapshot.

// ChurnStep is one scripted membership action, executed immediately
// before the trace event at index Before is issued.
type ChurnStep struct {
	// Before is the trace event index this step precedes. Steps sharing
	// an index run in plan order.
	Before int `json:"before"`
	// Action is "add", "drain", "evict" or "call". The first three hit
	// the membership API; "call" invokes the step's Run func — the
	// escape hatch for test-local actions (forcing a breaker open,
	// injecting faults, ticking a health loop).
	Action string `json:"action"`
	// Device names the target for drain/evict.
	Device string `json:"device,omitempty"`
	// Spec is the device spec JSON posted by an "add" step.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Run is the body of a "call" step (not serializable; test-only).
	Run func(ctx context.Context) error `json:"-"`
}

// ChurnPlan is an ordered churn script plus the bookkeeping of what it
// actually sent, for report reconciliation.
type ChurnPlan struct {
	Steps []ChurnStep
	// Issued counts the admin requests the plan sent, keyed by the
	// normalized endpoint label the server's metrics use
	// ("/v1/fleet/devices", "/v1/fleet/devices/{id}"). Populated as the
	// hook runs.
	Issued map[string]int
}

// Hook compiles the plan into a ReplayOptions.BeforeEvent callback
// bound to the given admin target. Steps are processed in (Before, plan
// order); an admin call that doesn't return the expected status aborts
// the replay with the response body in the error.
func (p *ChurnPlan) Hook(ctx context.Context, t AdminTarget) func(int) error {
	steps := make([]ChurnStep, len(p.Steps))
	copy(steps, p.Steps)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].Before < steps[j].Before })
	if p.Issued == nil {
		p.Issued = make(map[string]int)
	}
	next := 0
	return func(i int) error {
		for next < len(steps) && steps[next].Before <= i {
			if err := p.run(ctx, t, &steps[next]); err != nil {
				return fmt.Errorf("churn step %d (%s): %w", next, steps[next].Action, err)
			}
			next++
		}
		return nil
	}
}

func (p *ChurnPlan) run(ctx context.Context, t AdminTarget, st *ChurnStep) error {
	switch st.Action {
	case "add":
		// wait=1 calibrates synchronously so the device serves traffic
		// deterministically from the next event on.
		p.Issued["/v1/fleet/devices"]++
		status, body, err := t.Admin(ctx, "POST", "/v1/fleet/devices?wait=1", st.Spec)
		if err != nil {
			return err
		}
		if status < 200 || status > 299 {
			return fmt.Errorf("add = %d: %s", status, body)
		}
	case "drain", "evict":
		p.Issued["/v1/fleet/devices/{id}"]++
		path := "/v1/fleet/devices/" + url.PathEscape(st.Device) + "?mode=" + st.Action
		status, body, err := t.Admin(ctx, "DELETE", path, nil)
		if err != nil {
			return err
		}
		if status != 200 {
			return fmt.Errorf("%s %q = %d: %s", st.Action, st.Device, status, body)
		}
	case "call":
		if st.Run == nil {
			return fmt.Errorf("call step has no Run func")
		}
		return st.Run(ctx)
	default:
		return fmt.Errorf("unknown churn action %q", st.Action)
	}
	return nil
}
