package workload

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

// ReportSchema versions the replay report format.
const ReportSchema = "energyreport/v1"

// LatencySummary holds the latency order statistics for one endpoint,
// in milliseconds. In sync mode these are virtual (StepClock reads
// along the request path — deterministic, comparable across runs); in
// open mode they are wall-clock.
type LatencySummary struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
}

// EndpointReport is the client-side view of one endpoint's replay.
type EndpointReport struct {
	Requests int            `json:"requests"`
	ByStatus map[string]int `json:"by_status"`
	Latency  LatencySummary `json:"latency"`
}

// ServerReport is the server-side counter snapshot taken after the last
// response, fleet totals first. AnsweredPerSweepJ is the headline
// ratio: joules of energy answered to clients per joule of sweep work
// burned — the cache's and single-flight's leverage under the trace.
type ServerReport struct {
	CacheHits         uint64              `json:"cache_hits"`
	CacheMisses       uint64              `json:"cache_misses"`
	CacheHitRate      float64             `json:"cache_hit_rate"`
	BreakerTrips      uint64              `json:"breaker_trips"`
	DegradedServes    uint64              `json:"degraded_serves"`
	SweepJ            units.Joule         `json:"sweep_j"`
	AnsweredJ         units.Joule         `json:"answered_j"`
	AnsweredPerSweepJ float64             `json:"answered_per_sweep_j"`
	Devices           []serve.DeviceStats `json:"devices"`
}

// Report is the replayer's machine-readable output.
type Report struct {
	Schema            string                    `json:"schema"`
	TraceName         string                    `json:"trace_name,omitempty"`
	TraceSeed         int64                     `json:"trace_seed"`
	Mode              Mode                      `json:"mode"`
	Speed             float64                   `json:"speed"`
	Requests          int                       `json:"requests"`
	TransportFailures int                       `json:"transport_failures"`
	DegradedResponses int                       `json:"degraded_responses"`
	Endpoints         map[string]EndpointReport `json:"endpoints"`
	// DeviceShare is each serving device's fraction of answered
	// requests, keyed by device ID (the single legacy device reports
	// under the empty key).
	DeviceShare map[string]float64 `json:"device_share"`
	Server      *ServerReport      `json:"server,omitempty"`
}

// buildReport aggregates the per-request outcomes and the final server
// snapshot. All maps marshal with sorted keys, so the report bytes are
// a pure function of the outcomes and the snapshot.
func buildReport(tr *Trace, mode Mode, speed float64, outs []outcome, srvStats *serve.StatsResponse) *Report {
	r := &Report{
		Schema:      ReportSchema,
		TraceName:   tr.Header.Name,
		TraceSeed:   tr.Header.Seed,
		Mode:        mode,
		Speed:       speed,
		Requests:    len(outs),
		Endpoints:   make(map[string]EndpointReport),
		DeviceShare: make(map[string]float64),
	}
	latencies := make(map[string][]float64)
	answered := 0
	for _, o := range outs {
		if o.transportErr {
			r.TransportFailures++
			continue
		}
		path := o.op.Path()
		ep := r.Endpoints[path]
		if ep.ByStatus == nil {
			ep.ByStatus = make(map[string]int)
		}
		ep.Requests++
		ep.ByStatus[fmt.Sprintf("%d", o.status)]++
		r.Endpoints[path] = ep
		latencies[path] = append(latencies[path], float64(o.latency)/float64(time.Millisecond))
		if o.degraded {
			r.DegradedResponses++
		}
		answered++
		r.DeviceShare[o.device]++
	}
	for path, ep := range r.Endpoints {
		xs := latencies[path]
		ep.Latency = LatencySummary{
			P50MS: stats.Percentile(xs, 0.50),
			P95MS: stats.Percentile(xs, 0.95),
			P99MS: stats.Percentile(xs, 0.99),
			MaxMS: stats.Percentile(xs, 1),
		}
		r.Endpoints[path] = ep
	}
	if answered > 0 {
		for dev := range r.DeviceShare {
			r.DeviceShare[dev] /= float64(answered)
		}
	}
	if srvStats != nil {
		r.Server = serverReport(srvStats)
	}
	return r
}

// serverReport folds the per-device stats rows into fleet totals.
func serverReport(s *serve.StatsResponse) *ServerReport {
	sr := &ServerReport{Devices: s.Devices}
	for _, d := range s.Devices {
		sr.CacheHits += d.CacheHits
		sr.CacheMisses += d.CacheMisses
		sr.BreakerTrips += d.BreakerOpens
		sr.DegradedServes += d.DegradedServes
		sr.SweepJ += d.SweepJ
		sr.AnsweredJ += d.AnsweredJ
	}
	if total := sr.CacheHits + sr.CacheMisses; total > 0 {
		sr.CacheHitRate = float64(sr.CacheHits) / float64(total)
	}
	if sr.SweepJ > 0 {
		sr.AnsweredPerSweepJ = float64(sr.AnsweredJ) / float64(sr.SweepJ)
	}
	return sr
}

// WriteJSON emits the report indented, with a trailing newline. The
// encoding is deterministic: map keys sort, struct fields keep
// declaration order.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
