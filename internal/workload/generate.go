package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/serve"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

// Stream discriminators for the per-class seed derivations. These are
// part of the trace format in effect: changing them changes every
// generated trace.
const (
	streamArrivals = 1
	streamBursts   = 2
	streamBodies   = 3
	streamPool     = 4
)

// poolEntry is one sampled request workload: the operation profile of
// one FMM phase at one problem size, with the phase's occupancy.
type poolEntry struct {
	profile   counters.Profile
	occupancy units.Ratio
}

// profilePool evaluates the FMM once per declared problem size and
// collects every phase's operation profile. The pool is deliberately
// small (sizes × 6 phases): request bodies repeat, which is what gives
// the sweep cache and the consistent-hash routing something to bite on.
func profilePool(spec Spec) ([]poolEntry, error) {
	pool := make([]poolEntry, 0, len(spec.ProfileSizes)*int(fmm.NumPhases))
	for _, n := range spec.ProfileSizes {
		pts := fmm.GeneratePoints(fmm.Plummer, n, stats.MixSeed(spec.Seed, streamPool, int64(n)))
		dens := fmm.GenerateDensities(n, stats.MixSeed(spec.Seed, streamPool, int64(n), 2))
		res, err := fmm.Evaluate(pts, dens, fmm.Options{})
		if err != nil {
			return nil, fmt.Errorf("workload: profiling n=%d: %w", n, err)
		}
		for _, ph := range fmm.Phases() {
			p := res.Workload(ph)
			if p == (counters.Profile{}) {
				continue // degenerate tree: phase never ran at this size
			}
			pool = append(pool, poolEntry{profile: p, occupancy: units.Ratio(ph.Occupancy())})
		}
	}
	if len(pool) == 0 {
		return nil, fmt.Errorf("workload: empty profile pool")
	}
	return pool, nil
}

// episode is one burst window [start, end) in trace seconds.
type episode struct{ start, end float64 }

// burstEpisodes places a class's burst windows by a homogeneous Poisson
// process over the trace duration.
func burstEpisodes(c ClassSpec, seed int64, duration float64) []episode {
	if c.BurstsPerS <= 0 {
		return nil
	}
	rng := stats.NewRNG(seed)
	var eps []episode
	t := expDraw(rng, c.BurstsPerS)
	for t < duration {
		eps = append(eps, episode{start: t, end: t + c.BurstDurS})
		t += expDraw(rng, c.BurstsPerS)
	}
	return eps
}

// rateAt is the class's instantaneous arrival rate: the base rate
// modulated by the diurnal sinusoid and the burst boost.
func (c ClassSpec) rateAt(t float64, eps []episode) float64 {
	r := c.BaseRate
	if c.DiurnalAmp > 0 {
		r *= 1 + c.DiurnalAmp*math.Sin(2*math.Pi*t/c.DiurnalPeriodS+c.DiurnalPhase)
	}
	for _, e := range eps {
		if t >= e.start && t < e.end {
			r *= c.BurstBoost
			break
		}
	}
	return r
}

// rateMax bounds rateAt from above, for the thinning envelope.
func (c ClassSpec) rateMax() float64 {
	r := c.BaseRate * (1 + c.DiurnalAmp)
	if c.BurstsPerS > 0 && c.BurstBoost > 1 {
		r *= c.BurstBoost
	}
	return r
}

// expDraw samples an exponential inter-arrival gap at the given rate.
func expDraw(rng *stats.RNG, rate float64) float64 {
	u := rng.Float64()
	for u == 0 { // log(0) guard; Float64 is in [0,1)
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}

// classArrivals generates one class's arrival offsets by thinning a
// homogeneous Poisson envelope at rateMax down to the instantaneous
// rate — the standard exact sampler for non-homogeneous Poisson
// processes, and a pure function of the class spec and its seeds.
func classArrivals(c ClassSpec, spec Spec) []float64 {
	eps := burstEpisodes(c, classSeed(spec.Seed, c.Op, streamBursts), spec.DurationS)
	rng := stats.NewRNG(classSeed(spec.Seed, c.Op, streamArrivals))
	env := c.rateMax()
	var at []float64
	for t := expDraw(rng, env); t < spec.DurationS; t += expDraw(rng, env) {
		if rng.Float64()*env <= c.rateAt(t, eps) {
			at = append(at, t)
		}
	}
	return at
}

// settingIDs is the predict-request setting pool: the paper's eight
// validation settings plus the race-to-halt maximum.
var settingIDs = []string{"max", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8"}

// body builds one request's JSON body for the class from its body
// stream. The encoding goes through the serve wire structs, so every
// generated body decodes under the server's DisallowUnknownFields.
func body(op Op, rng *stats.RNG, pool []poolEntry) (json.RawMessage, error) {
	e := pool[rng.Intn(len(pool))]
	prof := profileJSON(e.profile)
	var v any
	switch op {
	case OpPredict:
		v = serve.PredictRequest{Profile: prof, SettingID: settingIDs[rng.Intn(len(settingIDs))], Occupancy: e.occupancy}
	case OpFleetPredict:
		v = serve.FleetPredictRequest{PredictRequest: serve.PredictRequest{
			Profile: prof, SettingID: settingIDs[rng.Intn(len(settingIDs))], Occupancy: e.occupancy,
		}}
	case OpAutotune, OpFleetPlace:
		// One sweep in four runs the full 105-setting grid instead of the
		// 16 calibration settings: distinct settings mean distinct sweep
		// cache keys and distinct fault-injection streams, so a replay
		// under faults exercises mixed success/failure instead of every
		// sweep sharing one fate.
		grid := ""
		if rng.Intn(4) == 0 {
			grid = "full"
		}
		v = serve.AutotuneRequest{Profile: prof, Occupancy: e.occupancy, Grid: grid}
	default:
		return nil, fmt.Errorf("workload: no body builder for op %q", op)
	}
	return json.Marshal(v)
}

func profileJSON(p counters.Profile) serve.ProfileJSON {
	return serve.ProfileJSON{
		SP:    units.Count(p.SP),
		DPFMA: units.Count(p.DPFMA), DPAdd: units.Count(p.DPAdd), DPMul: units.Count(p.DPMul),
		Int:         units.Count(p.Int),
		SharedWords: units.Count(p.SharedWords), L1Words: units.Count(p.L1Words),
		L2Words: units.Count(p.L2Words), DRAMWords: units.Count(p.DRAMWords),
	}
}

// Generate expands a spec into its trace: per-class non-homogeneous
// Poisson arrivals, merged by send time, each carrying an exact JSON
// body drawn from the class's body stream. Same spec, same bytes.
func Generate(spec Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	pool, err := profilePool(spec)
	if err != nil {
		return nil, err
	}
	var events []Event
	for _, c := range spec.Classes {
		at := classArrivals(c, spec)
		rng := stats.NewRNG(classSeed(spec.Seed, c.Op, streamBodies))
		for _, t := range at {
			b, err := body(c.Op, rng, pool)
			if err != nil {
				return nil, err
			}
			events = append(events, Event{AtS: t, Op: c.Op, Body: b})
		}
	}
	// Merge the class streams into send order. Equal offsets (possible
	// only through float coincidence) break by op identity so the trace
	// stays a pure function of the spec.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].AtS != events[j].AtS {
			return events[i].AtS < events[j].AtS
		}
		return events[i].Op.opCode() < events[j].Op.opCode()
	})
	for i := range events {
		events[i].Index = i
	}
	s := spec
	return &Trace{
		Header: Header{
			Schema:    Schema,
			Name:      spec.Name,
			Seed:      spec.Seed,
			DurationS: spec.DurationS,
			Events:    len(events),
			Spec:      &s,
		},
		Events: events,
	}, nil
}
