package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"dvfsroofline/internal/serve"
)

// Mode selects how the replayer paces a trace.
type Mode string

const (
	// ModeSync issues requests sequentially, ignoring send offsets: the
	// fully deterministic mode. With an in-process target and a
	// StepClock, two replays of one trace against identically-seeded
	// servers produce byte-identical reports.
	ModeSync Mode = "sync"
	// ModeOpen paces requests open-loop at the trace's recorded offsets
	// (optionally rate-scaled), dispatching concurrently and never
	// waiting for earlier responses — arrivals don't slow down because
	// the server did. This is the load-testing mode; its latencies are
	// wall-clock and its report is not run-to-run byte-stable.
	ModeOpen Mode = "open"
)

// Target is where replayed requests go: a live daemon over HTTP or an
// in-process serve handler.
type Target interface {
	// Do posts one request body to the op's endpoint (query may carry a
	// routing selector) and returns the HTTP status, the serving device
	// (X-Energyd-Device; empty in single-device mode), and the response
	// body. err reports transport failure, not HTTP error statuses.
	Do(ctx context.Context, op Op, query string, body []byte) (status int, device string, resp []byte, err error)
	// Stats fetches the server's /v1/stats counter snapshot; targets
	// without one may return (nil, nil).
	Stats(ctx context.Context) (*serve.StatsResponse, error)
}

// AdminTarget extends Target with raw admin-plane access — the fleet
// membership endpoints take methods and paths the Op vocabulary doesn't
// model (POST /v1/fleet/devices, DELETE /v1/fleet/devices/{id}). Both
// built-in targets implement it; churn plans require it.
type AdminTarget interface {
	Target
	// Admin issues one arbitrary request and returns the HTTP status and
	// response body. err reports transport failure only.
	Admin(ctx context.Context, method, path string, body []byte) (status int, resp []byte, err error)
}

// HandlerTarget replays against an in-process http.Handler — no
// network, no goroutine handoff, fully deterministic in ModeSync.
type HandlerTarget struct{ Handler http.Handler }

func (t HandlerTarget) Do(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, op.Path()+query, bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	rec := &memRecorder{h: make(http.Header)}
	t.Handler.ServeHTTP(rec, req)
	return rec.status(), rec.h.Get("X-Energyd-Device"), rec.body.Bytes(), nil
}

func (t HandlerTarget) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	rec := &memRecorder{h: make(http.Header)}
	t.Handler.ServeHTTP(rec, req)
	if rec.status() != http.StatusOK {
		return nil, fmt.Errorf("workload: /v1/stats = %d: %s", rec.status(), rec.body.String())
	}
	var stats serve.StatsResponse
	if err := json.Unmarshal(rec.body.Bytes(), &stats); err != nil {
		return nil, fmt.Errorf("workload: decoding /v1/stats: %w", err)
	}
	return &stats, nil
}

func (t HandlerTarget) Admin(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	rec := &memRecorder{h: make(http.Header)}
	t.Handler.ServeHTTP(rec, req)
	return rec.status(), rec.body.Bytes(), nil
}

// memRecorder is a minimal in-memory http.ResponseWriter (the stdlib
// httptest recorder lives in a test-only package by convention).
type memRecorder struct {
	h    http.Header
	code int
	body bytes.Buffer
}

func (r *memRecorder) Header() http.Header { return r.h }
func (r *memRecorder) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.body.Write(p)
}
func (r *memRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
}
func (r *memRecorder) status() int {
	if r.code == 0 {
		return http.StatusOK
	}
	return r.code
}

// HTTPTarget replays against a live energyd over HTTP.
type HTTPTarget struct {
	// Base is the daemon's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// Client overrides the HTTP client; nil uses http.DefaultClient.
	Client *http.Client
}

func (t HTTPTarget) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

func (t HTTPTarget) Do(ctx context.Context, op Op, query string, body []byte) (int, string, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, t.Base+op.Path()+query, bytes.NewReader(body))
	if err != nil {
		return 0, "", nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := t.client().Do(req)
	if err != nil {
		return 0, "", nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, "", nil, err
	}
	return resp.StatusCode, resp.Header.Get("X-Energyd-Device"), b, nil
}

func (t HTTPTarget) Admin(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, t.Base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, b, nil
}

func (t HTTPTarget) Stats(ctx context.Context) (*serve.StatsResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.Base+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := t.client().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: /v1/stats = %d: %s", resp.StatusCode, b)
	}
	var stats serve.StatsResponse
	if err := json.Unmarshal(b, &stats); err != nil {
		return nil, fmt.Errorf("workload: decoding /v1/stats: %w", err)
	}
	return &stats, nil
}

// StepClock is a virtual time source that advances a fixed step on
// every Now call. Wired into both the replayer and the server's
// Options.Clock in sync mode, it makes "latency" a deterministic count
// of clock reads along the request path instead of wall time — the
// piece that lets two replays of one trace emit byte-identical reports.
type StepClock struct {
	mu   sync.Mutex
	t    time.Time // guarded by mu
	step time.Duration
}

// NewStepClock starts a virtual clock at the Unix epoch; step <= 0
// selects 1 ms per read.
func NewStepClock(step time.Duration) *StepClock {
	if step <= 0 {
		step = time.Millisecond
	}
	return &StepClock{t: time.Unix(0, 0).UTC(), step: step}
}

// Now advances the clock one step and returns the new time.
func (c *StepClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

// ReplayOptions tune a Replay run.
type ReplayOptions struct {
	// Mode selects sync (deterministic sequential) or open (paced
	// concurrent) replay; empty = sync.
	Mode Mode
	// Speed rescales the trace's send offsets in open mode: 2 replays a
	// 60 s trace in 30 s. Zero or negative = 1 (recorded rate).
	Speed float64
	// Route, when set, adds ?route=<value> to every fleet_predict
	// request (e.g. "least_loaded").
	Route string
	// Now is the latency clock. Sync replays pass a StepClock shared
	// with the server; open replays pass the wall clock.
	Now func() time.Time
	// Sleep paces open-mode dispatch; required in open mode.
	Sleep func(time.Duration)
	// BeforeEvent, when set, runs before event i is issued (sync mode)
	// or scheduled (open mode) — the hook point for mid-trace membership
	// churn and health ticks. A non-nil error aborts the replay.
	BeforeEvent func(i int) error
}

// outcome is one replayed request's result.
type outcome struct {
	op           Op
	status       int
	device       string
	latency      time.Duration
	degraded     bool
	transportErr bool
}

// Replay drives every event of the trace at the target and assembles
// the report, reconciling against the server's /v1/stats snapshot when
// the target provides one.
func Replay(ctx context.Context, tr *Trace, target Target, opts ReplayOptions) (*Report, error) {
	if opts.Mode == "" {
		opts.Mode = ModeSync
	}
	if opts.Now == nil {
		return nil, fmt.Errorf("workload: ReplayOptions.Now is required")
	}
	speed := opts.Speed
	if speed <= 0 {
		speed = 1
	}
	var outs []outcome
	switch opts.Mode {
	case ModeSync:
		outs = make([]outcome, len(tr.Events))
		for i := range tr.Events {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if opts.BeforeEvent != nil {
				if err := opts.BeforeEvent(i); err != nil {
					return nil, fmt.Errorf("workload: before event %d: %w", i, err)
				}
			}
			outs[i] = issue(ctx, target, &tr.Events[i], opts)
		}
	case ModeOpen:
		if opts.Sleep == nil {
			return nil, fmt.Errorf("workload: open mode needs ReplayOptions.Sleep")
		}
		outs = make([]outcome, len(tr.Events))
		start := opts.Now()
		var wg sync.WaitGroup
		for i := range tr.Events {
			if err := ctx.Err(); err != nil {
				wg.Wait()
				return nil, err
			}
			due := time.Duration(tr.Events[i].AtS / speed * float64(time.Second))
			for {
				elapsed := opts.Now().Sub(start)
				if elapsed >= due {
					break
				}
				if err := ctx.Err(); err != nil {
					wg.Wait()
					return nil, err
				}
				opts.Sleep(due - elapsed)
			}
			if opts.BeforeEvent != nil {
				if err := opts.BeforeEvent(i); err != nil {
					wg.Wait()
					return nil, fmt.Errorf("workload: before event %d: %w", i, err)
				}
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i] = issue(ctx, target, &tr.Events[i], opts)
			}(i)
		}
		wg.Wait()
	default:
		return nil, fmt.Errorf("workload: unknown replay mode %q", opts.Mode)
	}
	stats, err := target.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("workload: fetching final server stats: %w", err)
	}
	return buildReport(tr, opts.Mode, speed, outs, stats), nil
}

// issue sends one event and classifies the outcome. Each distinct slot
// of outs is written by exactly one goroutine, so open mode needs no
// lock around it.
func issue(ctx context.Context, target Target, ev *Event, opts ReplayOptions) outcome {
	query := ""
	if ev.Op == OpFleetPredict && opts.Route != "" {
		query = "?route=" + url.QueryEscape(opts.Route)
	}
	o := outcome{op: ev.Op}
	start := opts.Now()
	status, device, resp, err := target.Do(ctx, ev.Op, query, ev.Body)
	o.latency = opts.Now().Sub(start)
	if err != nil {
		o.transportErr = true
		return o
	}
	o.status = status
	o.device = device
	if ev.Op == OpAutotune && status == http.StatusOK {
		var flags struct {
			Degraded bool `json:"degraded"`
		}
		if json.Unmarshal(resp, &flags) == nil {
			o.degraded = flags.Degraded
		}
	}
	return o
}
