package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Schema is the trace wire-format version. It is the first field of the
// header line; readers reject traces whose schema they do not speak, so
// the format can evolve without silently misreplaying old files.
const Schema = "energytrace/v1"

// Header is the first JSONL line of a trace file.
type Header struct {
	Schema    string  `json:"schema"`
	Name      string  `json:"name,omitempty"`
	Seed      int64   `json:"seed"`
	DurationS float64 `json:"duration_s"`
	Events    int     `json:"events"`
	// Spec echoes the generating recipe so a trace is self-describing
	// and exactly regenerable.
	Spec *Spec `json:"spec,omitempty"`
}

// Event is one request of the trace: its send offset from trace start,
// the op class, and the exact JSON body to post. Body bytes are part of
// the format — replaying a trace must put the same bytes on the wire
// that the generator committed to, or cache-affinity behavior would
// drift between replays.
type Event struct {
	Index int             `json:"i"`
	AtS   float64         `json:"t_s"`
	Op    Op              `json:"op"`
	Body  json.RawMessage `json:"body"`
}

// Trace is a parsed trace: the header and its events in send order.
type Trace struct {
	Header Header
	Events []Event
}

// Write emits the trace as JSONL: the header line, then one line per
// event, in send order. The encoding is deterministic (struct fields in
// declaration order, raw bodies verbatim), so Write∘Read and
// Generate-with-equal-specs are byte-identical.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(tr.Header); err != nil {
		return fmt.Errorf("workload: writing trace header: %w", err)
	}
	for i := range tr.Events {
		if err := enc.Encode(&tr.Events[i]); err != nil {
			return fmt.Errorf("workload: writing trace event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// maxTraceLine bounds one JSONL line; bodies are a handful of numbers,
// so 1 MiB is generous.
const maxTraceLine = 1 << 20

// Read parses and validates a JSONL trace: schema version, event count,
// contiguous indices, nondecreasing send offsets, known ops, and
// well-formed JSON bodies.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxTraceLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("workload: reading trace header: %w", err)
		}
		return nil, fmt.Errorf("workload: empty trace file")
	}
	var tr Trace
	if err := json.Unmarshal(sc.Bytes(), &tr.Header); err != nil {
		return nil, fmt.Errorf("workload: parsing trace header: %w", err)
	}
	if tr.Header.Schema != Schema {
		return nil, fmt.Errorf("workload: trace schema %q, this reader speaks %q", tr.Header.Schema, Schema)
	}
	if tr.Header.Events < 0 {
		return nil, fmt.Errorf("workload: negative event count %d", tr.Header.Events)
	}
	tr.Events = make([]Event, 0, tr.Header.Events)
	prev := 0.0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return nil, fmt.Errorf("workload: parsing trace event %d: %w", len(tr.Events), err)
		}
		if ev.Index != len(tr.Events) {
			return nil, fmt.Errorf("workload: trace event %d carries index %d", len(tr.Events), ev.Index)
		}
		if ev.AtS < prev {
			return nil, fmt.Errorf("workload: trace event %d at %gs precedes event %d at %gs", ev.Index, ev.AtS, ev.Index-1, prev)
		}
		prev = ev.AtS
		if ev.Op.Path() == "" {
			return nil, fmt.Errorf("workload: trace event %d has unknown op %q", ev.Index, ev.Op)
		}
		if !json.Valid(ev.Body) {
			return nil, fmt.Errorf("workload: trace event %d body is not valid JSON", ev.Index)
		}
		tr.Events = append(tr.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tr.Events) != tr.Header.Events {
		return nil, fmt.Errorf("workload: header declares %d events, file holds %d", tr.Header.Events, len(tr.Events))
	}
	return &tr, nil
}
