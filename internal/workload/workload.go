// Package workload generates and replays deterministic open-loop
// request traces against energyd. The paper's evaluation drives the
// energy model one request at a time; production questions — does the
// sweep cache hold under burst arrivals, do breakers shed load without
// losing answers, what does a joule of sweep work buy — only show up
// under sustained, temporally structured traffic. This package supplies
// that traffic as data, not as a live generator:
//
//   - Spec declares the workload: per-op-class arrival processes
//     (diurnal sinusoid rate curves with distinct periods and phases,
//     Poisson burst episodes with rate multipliers) and the FMM phase
//     mixes the request bodies draw from.
//   - Generate expands a Spec into a Trace — every request's send
//     offset and exact JSON body — via non-homogeneous Poisson thinning
//     with seed-derived streams, so the same Spec always yields a
//     byte-identical trace.
//   - The trace wire format is JSONL ("energytrace/v1"): one header
//     line, then one line per request, diffable and replayable.
//   - Replay drives a Target (an in-process serve handler or a live
//     daemon over HTTP) from a trace, sequentially at full determinism
//     (sync mode) or paced open-loop at recorded or scaled rate (open
//     mode), and emits a machine-readable Report.
//
// Everything follows the repository's determinism discipline: random
// streams derive from (spec seed, class identity) via stats.MixSeed,
// never from generation order, and the replayer takes injected clocks
// so sync-mode reports are byte-identical across runs.
package workload

import (
	"fmt"

	"dvfsroofline/internal/stats"
)

// Op names one request class of the trace.
type Op string

const (
	OpPredict      Op = "predict"
	OpAutotune     Op = "autotune"
	OpFleetPredict Op = "fleet_predict"
	OpFleetPlace   Op = "fleet_place"
)

// Path returns the energyd endpoint the op posts to.
func (o Op) Path() string {
	switch o {
	case OpPredict:
		return "/v1/predict"
	case OpAutotune:
		return "/v1/autotune"
	case OpFleetPredict:
		return "/v1/fleet/predict"
	case OpFleetPlace:
		return "/v1/fleet/place"
	default:
		return ""
	}
}

// opCode is the op's identity value for seed derivation — a fixed
// constant per class, never a slice position, so adding or reordering
// classes in a Spec does not reshuffle another class's random stream.
func (o Op) opCode() int64 {
	switch o {
	case OpPredict:
		return 1
	case OpAutotune:
		return 2
	case OpFleetPredict:
		return 3
	case OpFleetPlace:
		return 4
	default:
		return 0
	}
}

// ClassSpec is one op class's arrival process: a base Poisson rate
// modulated by a diurnal sinusoid and amplified inside Poisson-placed
// burst episodes. Rates are requests per second of trace time.
type ClassSpec struct {
	Op Op `json:"op"`
	// BaseRate is the mean arrival rate before modulation.
	BaseRate float64 `json:"base_rate"`
	// DiurnalAmp in [0,1) scales the sinusoid: the instantaneous rate
	// swings between BaseRate·(1−amp) and BaseRate·(1+amp).
	DiurnalAmp float64 `json:"diurnal_amp,omitempty"`
	// DiurnalPeriodS is the sinusoid period; classes with different
	// periods drift in and out of phase, producing the multi-period
	// mixes real fleets see. Zero disables the sinusoid.
	DiurnalPeriodS float64 `json:"diurnal_period_s,omitempty"`
	// DiurnalPhase offsets the sinusoid, in radians.
	DiurnalPhase float64 `json:"diurnal_phase,omitempty"`
	// BurstsPerS is the Poisson rate of burst episode starts.
	BurstsPerS float64 `json:"bursts_per_s,omitempty"`
	// BurstDurS is each episode's duration.
	BurstDurS float64 `json:"burst_dur_s,omitempty"`
	// BurstBoost multiplies the rate inside an episode (≥ 1).
	BurstBoost float64 `json:"burst_boost,omitempty"`
}

// Spec is a full trace recipe. Two Generate calls on the same Spec
// yield byte-identical traces.
type Spec struct {
	Name string `json:"name,omitempty"`
	// Seed roots every random stream in the generation.
	Seed int64 `json:"seed"`
	// DurationS is the trace length in seconds of trace time.
	DurationS float64 `json:"duration_s"`
	// Classes are the op classes; at most one entry per Op.
	Classes []ClassSpec `json:"classes"`
	// ProfileSizes are the FMM problem sizes (point counts) whose
	// per-phase operation profiles form the request-body pool: each
	// request samples one (size, phase) workload. Order is irrelevant
	// to the stream derivation (sizes are identity-hashed).
	ProfileSizes []int `json:"profile_sizes"`
}

// DefaultSpec is the standard soak mix: steady predict traffic with a
// pronounced diurnal swing, slower autotune traffic whose bursts stress
// the sweep cache and breakers, and a trickle of fleet placements. The
// periods are deliberately co-prime-ish so the class peaks drift.
func DefaultSpec(seed int64, durationS float64) Spec {
	return Spec{
		Name:      "default-soak",
		Seed:      seed,
		DurationS: durationS,
		Classes: []ClassSpec{
			{Op: OpPredict, BaseRate: 20, DiurnalAmp: 0.6, DiurnalPeriodS: 19, BurstsPerS: 0.05, BurstDurS: 2, BurstBoost: 4},
			{Op: OpAutotune, BaseRate: 6, DiurnalAmp: 0.4, DiurnalPeriodS: 31, DiurnalPhase: 1.3, BurstsPerS: 0.08, BurstDurS: 1.5, BurstBoost: 5},
			{Op: OpFleetPredict, BaseRate: 8, DiurnalAmp: 0.5, DiurnalPeriodS: 23, DiurnalPhase: 2.1, BurstsPerS: 0.04, BurstDurS: 2, BurstBoost: 6},
			{Op: OpFleetPlace, BaseRate: 0.5, DiurnalAmp: 0.3, DiurnalPeriodS: 41},
		},
		ProfileSizes: []int{192, 384, 768},
	}
}

// Validate checks the spec's internal consistency.
func (s Spec) Validate() error {
	if s.Seed <= 0 {
		return fmt.Errorf("workload: seed %d must be positive", s.Seed)
	}
	if s.DurationS <= 0 {
		return fmt.Errorf("workload: duration %g must be positive", s.DurationS)
	}
	if len(s.Classes) == 0 {
		return fmt.Errorf("workload: no op classes")
	}
	if len(s.ProfileSizes) == 0 {
		return fmt.Errorf("workload: no profile sizes")
	}
	seen := map[Op]bool{}
	for _, c := range s.Classes {
		if c.Op.Path() == "" {
			return fmt.Errorf("workload: unknown op %q", c.Op)
		}
		if seen[c.Op] {
			// One class per op keeps stream seeds identity-derived: the
			// op code alone names the stream.
			return fmt.Errorf("workload: duplicate class for op %q", c.Op)
		}
		seen[c.Op] = true
		if c.BaseRate <= 0 {
			return fmt.Errorf("workload: op %q base rate %g must be positive", c.Op, c.BaseRate)
		}
		if c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 {
			return fmt.Errorf("workload: op %q diurnal amplitude %g must be in [0,1)", c.Op, c.DiurnalAmp)
		}
		if c.DiurnalAmp > 0 && c.DiurnalPeriodS <= 0 {
			return fmt.Errorf("workload: op %q diurnal amplitude without a period", c.Op)
		}
		if c.BurstsPerS < 0 || c.BurstDurS < 0 {
			return fmt.Errorf("workload: op %q negative burst parameters", c.Op)
		}
		if c.BurstsPerS > 0 && (c.BurstDurS <= 0 || c.BurstBoost < 1) {
			return fmt.Errorf("workload: op %q bursts need a positive duration and boost >= 1", c.Op)
		}
	}
	for _, n := range s.ProfileSizes {
		if n < 16 {
			return fmt.Errorf("workload: profile size %d too small for an FMM tree", n)
		}
	}
	return nil
}

// classSeed roots one class's random streams in the spec seed and the
// class identity. stream discriminates the independent draws a class
// needs (arrivals, bursts, bodies).
func classSeed(specSeed int64, op Op, stream int64) int64 {
	return stats.MixSeed(specSeed, op.opCode(), stream)
}
