package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Stddev != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{3.5})
	if s.N != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 || s.Stddev != 0 {
		t.Fatalf("single-element summary wrong: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} about mean 5 is 32/7.
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Errorf("mean = %v, want 5", s.Mean)
	}
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Stddev-want) > 1e-12 {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeBounds(t *testing.T) {
	// Property: min <= mean <= max, stddev >= 0, for any input.
	f := func(xs []float64) bool {
		clean := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-9*math.Abs(s.Mean)+1e-300 &&
			s.Mean <= s.Max+1e-9*math.Abs(s.Max)+1e-300 &&
			s.Stddev >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRelErr(t *testing.T) {
	cases := []struct {
		pred, act, want float64
	}{
		{110, 100, 0.10},
		{90, 100, 0.10},
		{100, 100, 0},
		{0, 0, 0},
		{-50, -100, 0.5},
	}
	for _, c := range cases {
		if got := RelErr(c.pred, c.act); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelErr(%v,%v) = %v, want %v", c.pred, c.act, got, c.want)
		}
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Error("RelErr(1,0) should be +Inf")
	}
}

func TestRelErrsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched lengths")
		}
	}()
	RelErrs([]float64{1}, []float64{1, 2})
}

func TestKFoldPartition(t *testing.T) {
	n, k := 23, 5
	folds := KFold(n, k, 1)
	if len(folds) != k {
		t.Fatalf("got %d folds, want %d", len(folds), k)
	}
	seen := make(map[int]int)
	for _, f := range folds {
		if len(f.Train)+len(f.Test) != n {
			t.Errorf("fold train+test = %d, want %d", len(f.Train)+len(f.Test), n)
		}
		for _, i := range f.Test {
			seen[i]++
		}
		// Train and test must be disjoint.
		inTest := make(map[int]bool)
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Errorf("index %d in both train and test", i)
			}
		}
	}
	// Every index appears in exactly one test fold.
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("index %d appears in %d test folds, want 1", i, seen[i])
		}
	}
}

func TestKFoldSizesBalanced(t *testing.T) {
	folds := KFold(16, 16, 42)
	for i, f := range folds {
		if len(f.Test) != 1 {
			t.Errorf("fold %d: 16-fold CV of 16 samples should have 1 test sample, got %d", i, len(f.Test))
		}
	}
}

func TestKFoldDeterministic(t *testing.T) {
	a := KFold(10, 3, 7)
	b := KFold(10, 3, 7)
	for i := range a {
		if len(a[i].Test) != len(b[i].Test) {
			t.Fatal("KFold not deterministic for identical seeds")
		}
		for j := range a[i].Test {
			if a[i].Test[j] != b[i].Test[j] {
				t.Fatal("KFold not deterministic for identical seeds")
			}
		}
	}
}

func TestKFoldPanics(t *testing.T) {
	for _, bad := range []struct{ n, k int }{{5, 1}, {5, 6}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KFold(%d,%d) should panic", bad.n, bad.k)
				}
			}()
			KFold(bad.n, bad.k, 0)
		}()
	}
}

func TestHoldout(t *testing.T) {
	f := Holdout([]bool{true, false, true, true, false})
	if len(f.Train) != 3 || len(f.Test) != 2 {
		t.Fatalf("holdout sizes wrong: %+v", f)
	}
	if f.Train[0] != 0 || f.Train[1] != 2 || f.Train[2] != 3 {
		t.Errorf("train indices wrong: %v", f.Train)
	}
	if f.Test[0] != 1 || f.Test[1] != 4 {
		t.Errorf("test indices wrong: %v", f.Test)
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("RNG not deterministic")
		}
	}
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := g.Normal(10, 2)
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean = %v, want ~10", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Error("empty median should be 0")
	}
	if Median([]float64{3}) != 3 {
		t.Error("single-element median wrong")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median should interpolate")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := map[float64]float64{0: 10, 0.25: 20, 0.5: 30, 0.75: 40, 1: 50, 0.1: 14}
	for p, want := range cases {
		if got := Percentile(xs, p); math.Abs(got-want) > 1e-12 {
			t.Errorf("P%.0f = %v, want %v", p*100, got, want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 10 || xs[4] != 50 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p > 1")
		}
	}()
	Percentile([]float64{1}, 1.5)
}

func TestMedianAbsDiff(t *testing.T) {
	// Flat signal with one step: the step barely moves the median.
	xs := []float64{5, 5.01, 4.99, 5, 9, 9.01, 8.99, 9}
	mad := MedianAbsDiff(xs)
	if mad > 0.05 {
		t.Errorf("MAD = %v; a single step should not dominate", mad)
	}
	if MedianAbsDiff([]float64{1}) != 0 {
		t.Error("MAD of one sample should be 0")
	}
}

func TestMedianMAD(t *testing.T) {
	m, mad := MedianMAD([]float64{1, 2, 3, 4, 100})
	if m != 3 {
		t.Errorf("median = %v, want 3", m)
	}
	// Deviations about 3: |1-3|,|2-3|,|3-3|,|4-3|,|100-3| = 2,1,0,1,97 -> median 1.
	if mad != 1 {
		t.Errorf("mad = %v, want 1", mad)
	}
	if m, mad := MedianMAD(nil); m != 0 || mad != 0 {
		t.Errorf("empty input: (%v, %v), want (0, 0)", m, mad)
	}
}

func TestOutlierMask(t *testing.T) {
	xs := []float64{1.0, 1.1, 0.9, 1.05, 0.95, 8.0}
	mask := OutlierMask(xs, 6, 0)
	want := []bool{false, false, false, false, false, true}
	for i := range want {
		if mask[i] != want[i] {
			t.Errorf("mask[%d] = %v, want %v (xs=%v)", i, mask[i], want[i], xs)
		}
	}
	// A near-constant dataset has MAD ~ 0; without the floor the tiny
	// perturbation would be flagged, with it nothing is.
	tight := []float64{1, 1, 1, 1.001, 1}
	for i, f := range OutlierMask(tight, 6, 0.1) {
		if f {
			t.Errorf("floor failed to protect near-noiseless point %d", i)
		}
	}
	if n := len(OutlierMask(nil, 6, 0.1)); n != 0 {
		t.Errorf("empty input produced mask of length %d", n)
	}
}

func TestMixSeedIdentity(t *testing.T) {
	a := MixSeed(1, 2, 3)
	if a != MixSeed(1, 2, 3) {
		t.Error("MixSeed not deterministic")
	}
	if a == MixSeed(1, 3, 2) {
		t.Error("MixSeed ignored argument order")
	}
	if a == MixSeed(2, 2, 3) {
		t.Error("MixSeed ignored the base seed")
	}
	if MixSeed(0) == MixSeed(0, 0) {
		t.Error("MixSeed ignored extra zero values")
	}
}

// BenchmarkMixSeed covers the seed-mixing hot path: every unit of work
// in the pipeline calls it at least once, and the fault layer calls it
// per attempt. The bench gate holds allocs/op at zero — the variadic
// slice is the only candidate allocation and the compiler keeps it on
// the stack.
func BenchmarkMixSeed(b *testing.B) {
	b.ReportAllocs()
	var sink int64
	for i := 0; i < b.N; i++ {
		sink = MixSeed(42, int64(i), 7, 12345)
	}
	_ = sink
}
