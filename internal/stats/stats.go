// Package stats provides small statistical utilities shared across the
// energy-modeling pipeline: summary statistics, relative-error metrics,
// k-fold partitioning for cross-validation, and a deterministic random
// number generator so every experiment in the repository is reproducible.
package stats

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for its
// validation experiments: mean, standard deviation, minimum and maximum.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. The standard deviation is the
// sample standard deviation (divisor n-1), matching R's sd(), which the
// paper's analysis scripts used. An empty input yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// String formats the summary the way the paper quotes error statistics,
// e.g. "mean 6.17%, stddev 4.65%, min 0.09%, max 14.89%" (values are
// printed as given; the caller decides whether they are percentages).
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f stddev=%.2f min=%.2f max=%.2f",
		s.N, s.Mean, s.Stddev, s.Min, s.Max)
}

// RelErr returns |predicted-actual| / |actual|. It is the error metric used
// throughout the paper's validation sections. A zero actual with a nonzero
// prediction returns +Inf; zero/zero returns 0.
func RelErr(predicted, actual float64) float64 {
	if actual == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-actual) / math.Abs(actual)
}

// RelErrs maps RelErr over paired slices. It panics if lengths differ,
// since mismatched prediction/measurement sets indicate a programming
// error rather than a recoverable condition.
func RelErrs(predicted, actual []float64) []float64 {
	if len(predicted) != len(actual) {
		panic(fmt.Sprintf("stats: RelErrs length mismatch %d vs %d", len(predicted), len(actual)))
	}
	out := make([]float64, len(predicted))
	for i := range predicted {
		out[i] = RelErr(predicted[i], actual[i])
	}
	return out
}

// Fold describes one cross-validation fold as index sets into the original
// sample slice.
type Fold struct {
	Train []int
	Test  []int
}

// KFold partitions the indices 0..n-1 into k folds for cross-validation.
// Indices are shuffled with the given seed and then dealt round-robin, so
// fold sizes differ by at most one. It panics for k < 2 or k > n.
func KFold(n, k int, seed int64) []Fold {
	if k < 2 || k > n {
		panic(fmt.Sprintf("stats: KFold requires 2 <= k <= n, got k=%d n=%d", k, n))
	}
	perm := NewRNG(seed).Perm(n)
	buckets := make([][]int, k)
	for i, p := range perm {
		buckets[i%k] = append(buckets[i%k], p)
	}
	folds := make([]Fold, k)
	for i := range folds {
		test := append([]int(nil), buckets[i]...)
		sort.Ints(test)
		var train []int
		for j := range buckets {
			if j != i {
				train = append(train, buckets[j]...)
			}
		}
		sort.Ints(train)
		folds[i] = Fold{Train: train, Test: test}
	}
	return folds
}

// Holdout builds the paper's 2-fold "holdout method" split from an explicit
// boolean mask: entries with mask[i] true go to the training set, the rest
// to the test set. This mirrors the paper's use of the "T"-type settings
// for training and "V"-type settings for validation.
func Holdout(mask []bool) Fold {
	var f Fold
	for i, m := range mask {
		if m {
			f.Train = append(f.Train, i)
		} else {
			f.Test = append(f.Test, i)
		}
	}
	return f
}

// RNG is a deterministic random source for experiments. It is a thin
// wrapper over math/rand kept behind our own type so the substitution for
// hardware noise is easy to audit and to seed per-experiment.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded deterministically.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Intn returns a uniform integer in [0,n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Perm returns a random permutation of 0..n-1.
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Median returns the median of xs (the mean of the middle pair for even
// lengths). It copies its input. An empty input returns 0.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Percentile(xs, 0.5)
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs by linear
// interpolation between order statistics. It copies its input and panics
// for p outside [0, 1]. An empty input returns 0.
func Percentile(xs []float64, p float64) float64 {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %g outside [0,1]", p))
	}
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(pos)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// MedianAbsDiff returns the median of |x[i+1]-x[i]| — a robust noise
// estimate for sampled traces (step changes are rare among the
// differences, so they barely move the median).
func MedianAbsDiff(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	diffs := make([]float64, len(xs)-1)
	for i := 1; i < len(xs); i++ {
		diffs[i-1] = math.Abs(xs[i] - xs[i-1])
	}
	return Median(diffs)
}

// MedianMAD returns the median of xs and the median absolute deviation
// about it. The MAD is the robust scale estimate behind the calibration
// pipeline's outlier screen: unlike the standard deviation it is immune
// to the very outliers the screen hunts. An empty input returns (0, 0).
func MedianMAD(xs []float64) (median, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	median = Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - median)
	}
	return median, Median(devs)
}

// madToSigma converts a MAD into a standard-deviation estimate for
// normally distributed data (1 / Φ⁻¹(3/4)).
const madToSigma = 1.4826

// OutlierMask flags the entries of xs lying more than
// max(k·1.4826·MAD, floor) from the median. k is the cut in robust
// standard deviations; floor is an absolute deviation below which
// nothing is flagged regardless of how tight the MAD is — without it, a
// near-noiseless dataset (MAD ≈ 0) would flag every point. The returned
// mask is parallel to xs (true = outlier).
func OutlierMask(xs []float64, k, floor float64) []bool {
	mask := make([]bool, len(xs))
	if len(xs) == 0 {
		return mask
	}
	median, mad := MedianMAD(xs)
	cut := k * madToSigma * mad
	if cut < floor {
		cut = floor
	}
	for i, x := range xs {
		mask[i] = math.Abs(x-median) > cut
	}
	return mask
}

// MixSeed derives a new deterministic seed from a base seed and a list
// of identity values, via FNV-1a over the 64-bit patterns. Every unit of
// work in the experiment pipeline seeds its random streams this way —
// from its *identity*, never from its position in a run — which is what
// makes parallel, reordered and partial campaigns byte-identical to
// serial ones. microbench.SampleSeed and the fault-injection layer build
// on it.
//
//energylint:hotpath
func MixSeed(base int64, vals ...int64) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(base))
	for _, v := range vals {
		mix(uint64(v))
	}
	return int64(h)
}
