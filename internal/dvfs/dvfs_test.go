package dvfs

import (
	"strings"
	"testing"

	"dvfsroofline/internal/units"
)

func TestTablesValid(t *testing.T) {
	if err := Validate(CoreTable); err != nil {
		t.Errorf("core table invalid: %v", err)
	}
	if err := Validate(MemTable); err != nil {
		t.Errorf("mem table invalid: %v", err)
	}
}

func TestTableSizesMatchPaper(t *testing.T) {
	// Section II-C: "105 possible permutations (15 for the processor and
	// 7 for the memory)".
	if len(CoreTable) != 15 {
		t.Errorf("core table has %d points, paper says 15", len(CoreTable))
	}
	if len(MemTable) != 7 {
		t.Errorf("mem table has %d points, paper says 7", len(MemTable))
	}
	if g := Grid(); len(g) != 105 {
		t.Errorf("grid has %d settings, paper says 105", len(g))
	}
}

func TestPaperQuotedVoltages(t *testing.T) {
	// Every (freq, voltage) pair printed in Table I and Table IV must be
	// reproduced exactly.
	core := map[units.MegaHertz]units.MilliVolt{
		852: 1030, 756: 950, 648: 890, 540: 840,
		396: 770, 180: 760, 72: 760,
	}
	for f, v := range core {
		p, err := CorePoint(f)
		if err != nil {
			t.Fatalf("core %g MHz: %v", f, err)
		}
		if p.VoltageMV != v {
			t.Errorf("core %g MHz: voltage %g mV, paper says %g", f, p.VoltageMV, v)
		}
	}
	mem := map[units.MegaHertz]units.MilliVolt{924: 1010, 528: 880, 204: 800, 68: 800}
	for f, v := range mem {
		p, err := MemPoint(f)
		if err != nil {
			t.Fatalf("mem %g MHz: %v", f, err)
		}
		if p.VoltageMV != v {
			t.Errorf("mem %g MHz: voltage %g mV, paper says %g", f, p.VoltageMV, v)
		}
	}
}

func TestCalibrationSettings(t *testing.T) {
	cs := CalibrationSettings()
	if len(cs) != 16 {
		t.Fatalf("got %d calibration settings, want 16", len(cs))
	}
	var nT, nV int
	for _, c := range cs {
		switch c.Type {
		case "T":
			nT++
		case "V":
			nV++
		default:
			t.Errorf("unknown setting type %q", c.Type)
		}
	}
	if nT != 8 || nV != 8 {
		t.Errorf("got %d T and %d V settings, want 8 and 8", nT, nV)
	}
	// Spot-check the first and last rows of Table I.
	if cs[0].Setting.Core.FreqMHz != 852 || cs[0].Setting.Mem.FreqMHz != 924 {
		t.Errorf("first row = %v, want 852/924", cs[0].Setting)
	}
	if cs[15].Setting.Core.FreqMHz != 180 || cs[15].Setting.Mem.FreqMHz != 924 {
		t.Errorf("last row = %v, want 180/924", cs[15].Setting)
	}
}

func TestValidationSettings(t *testing.T) {
	vs := ValidationSettings()
	if len(vs) != 8 {
		t.Fatalf("got %d validation settings, want 8", len(vs))
	}
	// Table IV: S1 = 852/924, S5 = 612/528, S8 = 852/204.
	if vs[0].Core.FreqMHz != 852 || vs[0].Mem.FreqMHz != 924 {
		t.Errorf("S1 = %v", vs[0])
	}
	if vs[4].Core.FreqMHz != 612 || vs[4].Mem.FreqMHz != 528 {
		t.Errorf("S5 = %v", vs[4])
	}
	if vs[7].Core.FreqMHz != 852 || vs[7].Mem.FreqMHz != 204 {
		t.Errorf("S8 = %v", vs[7])
	}
	if ValidationID(0) != "S1" || ValidationID(7) != "S8" {
		t.Error("ValidationID labels wrong")
	}
}

func TestLookupUnknownFrequency(t *testing.T) {
	if _, err := CorePoint(1000); err == nil {
		t.Error("expected error for unknown core frequency")
	}
	if _, err := MemPoint(1); err == nil {
		t.Error("expected error for unknown mem frequency")
	}
}

func TestMustSettingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for invalid frequency")
		}
	}()
	MustSetting(999, 924)
}

func TestMaxSetting(t *testing.T) {
	s := MaxSetting()
	if s.Core.FreqMHz != 852 || s.Mem.FreqMHz != 924 {
		t.Errorf("MaxSetting = %v, want 852/924", s)
	}
}

func TestUnitConversions(t *testing.T) {
	p := OperatingPoint{FreqMHz: 852, VoltageMV: 1030}
	if p.FreqHz() != 852e6 {
		t.Errorf("FreqHz = %v", p.FreqHz())
	}
	if p.Volts() != 1.030 {
		t.Errorf("Volts = %v", p.Volts())
	}
}

func TestValidateRejectsBadTables(t *testing.T) {
	cases := map[string][]OperatingPoint{
		"empty":        {},
		"unsorted":     {{200, 800}, {100, 800}},
		"duplicate":    {{100, 800}, {100, 810}},
		"voltage drop": {{100, 900}, {200, 800}},
		"nonpositive":  {{0, 800}},
	}
	for name, table := range cases {
		if err := Validate(table); err == nil {
			t.Errorf("%s: Validate should fail", name)
		}
	}
}

func TestStrings(t *testing.T) {
	s := MustSetting(852, 924)
	str := s.String()
	for _, want := range []string{"852", "924", "1030", "1010"} {
		if !strings.Contains(str, want) {
			t.Errorf("Setting string %q missing %q", str, want)
		}
	}
	if Proc.String() != "proc" || Mem.String() != "mem" {
		t.Error("Domain strings wrong")
	}
	if Domain(9).String() != "Domain(9)" {
		t.Error("unknown Domain string wrong")
	}
}
