// Package dvfs models the dynamic voltage and frequency scaling (DVFS)
// operating points of the NVIDIA Tegra K1 SoC used in the paper: 15
// frequency steps for the GPU core and 7 for the external memory
// controller (EMC). As on the real board, selecting a frequency
// automatically selects a predetermined voltage (paper, footnote 1).
//
// The package also records the paper's experiment configurations: the 16
// training/validation calibration settings of Table I and the S1–S8
// validation settings of Table IV.
package dvfs

import (
	"fmt"
	"sort"

	"dvfsroofline/internal/units"
)

// Domain identifies an independently scalable voltage/frequency domain.
type Domain int

const (
	// Proc is the GPU core domain (the Kepler SMX).
	Proc Domain = iota
	// Mem is the external memory controller (EMC/DRAM) domain.
	Mem
)

func (d Domain) String() string {
	switch d {
	case Proc:
		return "proc"
	case Mem:
		return "mem"
	default:
		return fmt.Sprintf("Domain(%d)", int(d))
	}
}

// OperatingPoint is one frequency/voltage pair of a domain's DVFS table.
type OperatingPoint struct {
	FreqMHz   units.MegaHertz // clock frequency
	VoltageMV units.MilliVolt // predetermined supply voltage
}

// FreqHz returns the frequency in hertz.
func (p OperatingPoint) FreqHz() units.Hertz { return p.FreqMHz.Hertz() }

// Volts returns the supply voltage in volts.
func (p OperatingPoint) Volts() units.Volt { return p.VoltageMV.Volts() }

func (p OperatingPoint) String() string {
	return fmt.Sprintf("%.0fMHz@%.0fmV", float64(p.FreqMHz), float64(p.VoltageMV))
}

// CoreTable lists the 15 GPU core operating points of the Tegra K1,
// lowest frequency first. Voltages for the points the paper quotes
// (852/1030, 756/950, 648/890, 540/840, 396/770, 180/760, 72/760 mV)
// match Table I/IV exactly; the remaining steps follow the board's
// monotone voltage ladder.
var CoreTable = []OperatingPoint{
	{72, 760}, {108, 760}, {180, 760}, {252, 760}, {324, 770},
	{396, 770}, {468, 800}, {540, 840}, {612, 860}, {648, 890},
	{684, 900}, {708, 920}, {756, 950}, {804, 980}, {852, 1030},
}

// MemTable lists the 7 EMC operating points, lowest first. The paper
// quotes 924/1010, 528/880, 204/800 and 68/800 mV; the rest interpolate
// the ladder.
var MemTable = []OperatingPoint{
	{68, 800}, {204, 800}, {300, 820}, {396, 850},
	{528, 880}, {792, 960}, {924, 1010},
}

// Setting is one system configuration: a core point and a memory point.
// The paper's grid has len(CoreTable) x len(MemTable) = 105 permutations.
type Setting struct {
	Core OperatingPoint
	Mem  OperatingPoint
}

func (s Setting) String() string {
	return fmt.Sprintf("core=%v mem=%v", s.Core, s.Mem)
}

// CorePoint returns the core operating point with the given frequency.
func CorePoint(freqMHz units.MegaHertz) (OperatingPoint, error) {
	return lookup(CoreTable, freqMHz, "core")
}

// MemPoint returns the memory operating point with the given frequency.
func MemPoint(freqMHz units.MegaHertz) (OperatingPoint, error) {
	return lookup(MemTable, freqMHz, "mem")
}

func lookup(table []OperatingPoint, freqMHz units.MegaHertz, what string) (OperatingPoint, error) {
	for _, p := range table {
		if p.FreqMHz == freqMHz {
			return p, nil
		}
	}
	return OperatingPoint{}, fmt.Errorf("dvfs: no %s operating point at %g MHz", what, float64(freqMHz))
}

// MustSetting builds a Setting from core and memory frequencies that must
// exist in the tables; it panics otherwise. Use it for the fixed
// experiment configurations compiled into this repository.
func MustSetting(coreMHz, memMHz units.MegaHertz) Setting {
	c, err := CorePoint(coreMHz)
	if err != nil {
		panic(err)
	}
	m, err := MemPoint(memMHz)
	if err != nil {
		panic(err)
	}
	return Setting{Core: c, Mem: m}
}

// Grid returns every core x memory setting combination (the paper's 105
// permutations), ordered core-major, ascending frequency.
func Grid() []Setting {
	out := make([]Setting, 0, len(CoreTable)*len(MemTable))
	for _, c := range CoreTable {
		for _, m := range MemTable {
			out = append(out, Setting{Core: c, Mem: m})
		}
	}
	return out
}

// CalibrationSetting is a Table I row: a Setting tagged as training ("T")
// or validation ("V") for the 2-fold holdout.
type CalibrationSetting struct {
	Type    string // "T" or "V"
	Setting Setting
}

// CalibrationSettings returns the paper's 16 calibration settings in the
// order of Table I: 8 training rows then 8 validation rows.
func CalibrationSettings() []CalibrationSetting {
	rows := []struct {
		typ       string
		core, mem units.MegaHertz
	}{
		{"T", 852, 924}, {"T", 396, 924}, {"T", 852, 528}, {"T", 648, 528},
		{"T", 396, 528}, {"T", 852, 204}, {"T", 648, 204}, {"T", 396, 204},
		{"V", 756, 924}, {"V", 180, 528}, {"V", 540, 528}, {"V", 540, 204},
		{"V", 756, 204}, {"V", 72, 68}, {"V", 756, 68}, {"V", 180, 924},
	}
	out := make([]CalibrationSetting, len(rows))
	for i, r := range rows {
		out[i] = CalibrationSetting{Type: r.typ, Setting: MustSetting(r.core, r.mem)}
	}
	return out
}

// ValidationSettings returns the paper's Table IV system settings S1–S8
// used for the FMM validation study.
func ValidationSettings() []Setting {
	rows := [][2]units.MegaHertz{
		{852, 924}, {756, 924}, {180, 924}, {852, 792},
		{612, 528}, {540, 528}, {612, 396}, {852, 204},
	}
	out := make([]Setting, len(rows))
	for i, r := range rows {
		out[i] = MustSetting(r[0], r[1])
	}
	return out
}

// ValidationID returns the paper's label ("S1".."S8") for index i of
// ValidationSettings.
func ValidationID(i int) string { return fmt.Sprintf("S%d", i+1) }

// MaxSetting returns the highest-frequency setting in both domains
// (852 MHz core, 924 MHz memory) — the paper's Figure 6 configuration.
func MaxSetting() Setting {
	return Setting{Core: CoreTable[len(CoreTable)-1], Mem: MemTable[len(MemTable)-1]}
}

// Validate checks table invariants: strictly increasing frequencies and
// non-decreasing voltages. It is exercised by tests and callable from
// applications that extend the tables for other boards.
func Validate(table []OperatingPoint) error {
	if len(table) == 0 {
		return fmt.Errorf("dvfs: empty operating-point table")
	}
	if !sort.SliceIsSorted(table, func(i, j int) bool { return table[i].FreqMHz < table[j].FreqMHz }) {
		return fmt.Errorf("dvfs: table not sorted by frequency")
	}
	for i := 1; i < len(table); i++ {
		if table[i].FreqMHz == table[i-1].FreqMHz {
			return fmt.Errorf("dvfs: duplicate frequency %g MHz", float64(table[i].FreqMHz))
		}
		if table[i].VoltageMV < table[i-1].VoltageMV {
			return fmt.Errorf("dvfs: voltage not monotone at %g MHz", float64(table[i].FreqMHz))
		}
	}
	for _, p := range table {
		if p.FreqMHz <= 0 || p.VoltageMV <= 0 {
			return fmt.Errorf("dvfs: non-positive operating point %v", p)
		}
	}
	return nil
}
