package dvfs_test

import (
	"fmt"

	"dvfsroofline/internal/dvfs"
)

func ExampleMustSetting() {
	s := dvfs.MustSetting(852, 924)
	fmt.Println(s)
	fmt.Printf("core %.2f V, mem %.2f V\n", s.Core.Volts(), s.Mem.Volts())
	// Output:
	// core=852MHz@1030mV mem=924MHz@1010mV
	// core 1.03 V, mem 1.01 V
}

func ExampleGrid() {
	fmt.Println(len(dvfs.Grid()), "settings")
	// Output: 105 settings
}

func ExampleCalibrationSettings() {
	cs := dvfs.CalibrationSettings()
	fmt.Println(len(cs), "settings,", cs[0].Type, cs[0].Setting.Core.FreqMHz, "MHz first")
	// Output: 16 settings, T 852 MHz first
}
