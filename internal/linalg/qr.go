package linalg

import (
	"errors"
	"math"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// ErrRankDeficient is returned when a triangular solve meets a (near-)zero
// pivot, indicating the system does not have a unique solution.
var ErrRankDeficient = errors.New("linalg: matrix is rank deficient")

// QR holds a Householder QR factorization A = Q*R with A m-by-n, m >= n,
// stored compactly: the strict upper triangle of qr holds R, the lower
// triangle (including the diagonal) holds the Householder vectors, and
// rdiag holds the diagonal of R.
type QR struct {
	qr    *Matrix
	rdiag []float64
}

// FactorQR computes the Householder QR factorization of a. It panics if
// a has fewer rows than columns (the least-squares use cases in this
// repository are always overdetermined or square).
func FactorQR(a *Matrix) *QR {
	if a.Rows < a.Cols {
		panic("linalg: FactorQR requires rows >= cols")
	}
	m, n := a.Rows, a.Cols
	f := &QR{qr: a.Clone(), rdiag: make([]float64, n)}
	q := f.qr
	for k := 0; k < n; k++ {
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, q.At(i, k))
		}
		if nrm != 0 {
			// Choose the sign that avoids cancellation in v_k.
			if q.At(k, k) < 0 {
				nrm = -nrm
			}
			for i := k; i < m; i++ {
				q.Set(i, k, q.At(i, k)/nrm)
			}
			q.Set(k, k, q.At(k, k)+1)
			for j := k + 1; j < n; j++ {
				var s float64
				for i := k; i < m; i++ {
					s += q.At(i, k) * q.At(i, j)
				}
				s = -s / q.At(k, k)
				for i := k; i < m; i++ {
					q.Set(i, j, q.At(i, j)+s*q.At(i, k))
				}
			}
		}
		f.rdiag[k] = -nrm
	}
	return f
}

// RDiag returns the k-th diagonal element of R.
func (f *QR) RDiag(k int) float64 { return f.rdiag[k] }

// FullRank reports whether every diagonal element of R is meaningfully
// non-zero relative to the largest one.
func (f *QR) FullRank() bool {
	var maxAbs float64
	for _, d := range f.rdiag {
		if a := math.Abs(d); a > maxAbs {
			maxAbs = a
		}
	}
	tol := 1e-12 * maxAbs
	for _, d := range f.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return maxAbs > 0
}

// Solve computes the least-squares solution x of min ||A*x - b||_2 using
// the stored factorization. b must have length A.Rows. It returns
// ErrRankDeficient if R is numerically singular.
func (f *QR) Solve(b []float64) ([]float64, error) {
	m, n := f.qr.Rows, f.qr.Cols
	if len(b) != m {
		panic("linalg: QR.Solve right-hand side has wrong length")
	}
	if !f.FullRank() {
		return nil, ErrRankDeficient
	}
	y := append([]float64(nil), b...)
	// Apply Qᵀ to b, one Householder reflector at a time.
	for k := 0; k < n; k++ {
		vk := f.qr.At(k, k)
		if vk == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += f.qr.At(i, k) * y[i]
		}
		s = -s / vk
		for i := k; i < m; i++ {
			y[i] += s * f.qr.At(i, k)
		}
	}
	// Back substitution with R.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.qr.At(i, j) * x[j]
		}
		x[i] = s / f.rdiag[i]
	}
	return x, nil
}

// SolveLS is a convenience wrapper: factorize a and solve the
// least-squares problem min ||a*x - b|| in one call.
func SolveLS(a *Matrix, b []float64) ([]float64, error) {
	return FactorQR(a).Solve(b)
}

// Cholesky computes the lower-triangular factor L with a = L*Lᵀ for a
// symmetric positive-definite matrix. It returns ErrRankDeficient when a
// pivot is not strictly positive.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		panic("linalg: Cholesky requires a square matrix")
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 0 {
			return nil, ErrRankDeficient
		}
		l.Set(j, j, math.Sqrt(d))
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/l.At(j, j))
		}
	}
	return l, nil
}

// CholeskySolve solves a*x = b given the Cholesky factor L of a.
func CholeskySolve(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: CholeskySolve dimension mismatch")
	}
	// Forward: L y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= l.At(i, j) * y[j]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= l.At(j, i) * x[j]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}
