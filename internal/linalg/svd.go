package linalg

import "math"

// SVD holds a thin singular value decomposition a = U * diag(S) * Vᵀ for an
// m-by-n matrix with m >= n: U is m-by-n with orthonormal columns, S holds
// the n singular values in descending order, and V is n-by-n orthogonal.
type SVD struct {
	U *Matrix
	S []float64
	V *Matrix
}

// FactorSVD computes a thin SVD using the one-sided Jacobi method, which is
// simple, backward stable, and more than fast enough for the operator
// matrices in this repository (a few hundred rows at most). For inputs with
// m < n the routine factorizes the transpose and swaps U and V.
func FactorSVD(a *Matrix) *SVD {
	if a.Rows < a.Cols {
		s := FactorSVD(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	m, n := a.Rows, a.Cols
	u := a.Clone()
	v := Identity(n)

	// One-sided Jacobi: repeatedly orthogonalize pairs of columns of U,
	// accumulating rotations into V, until all pairs are orthogonal to
	// machine precision.
	const eps = 1e-15
	for sweep := 0; sweep < 60; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					up := u.At(i, p)
					uq := u.At(i, q)
					alpha += up * up
					beta += uq * uq
					gamma += up * uq
				}
				if gamma == 0 {
					continue
				}
				if math.Abs(gamma) > eps*math.Sqrt(alpha*beta) {
					off += gamma * gamma
					// Jacobi rotation that zeroes the (p,q) inner product.
					zeta := (beta - alpha) / (2 * gamma)
					t := sign(zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
					c := 1 / math.Sqrt(1+t*t)
					s := c * t
					for i := 0; i < m; i++ {
						up := u.At(i, p)
						uq := u.At(i, q)
						u.Set(i, p, c*up-s*uq)
						u.Set(i, q, s*up+c*uq)
					}
					for i := 0; i < n; i++ {
						vp := v.At(i, p)
						vq := v.At(i, q)
						v.Set(i, p, c*vp-s*vq)
						v.Set(i, q, s*vp+c*vq)
					}
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Column norms of U are the singular values; normalize the columns.
	s := make([]float64, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm = math.Hypot(norm, u.At(i, j))
		}
		s[j] = norm
		if norm > 0 {
			inv := 1 / norm
			for i := 0; i < m; i++ {
				u.Set(i, j, u.At(i, j)*inv)
			}
		}
	}

	// Sort singular values descending, permuting U and V columns to match.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ {
		best := i
		for j := i + 1; j < n; j++ {
			if s[order[j]] > s[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	su := NewMatrix(m, n)
	sv := NewMatrix(n, n)
	ss := make([]float64, n)
	for jnew, jold := range order {
		ss[jnew] = s[jold]
		for i := 0; i < m; i++ {
			su.Set(i, jnew, u.At(i, jold))
		}
		for i := 0; i < n; i++ {
			sv.Set(i, jnew, v.At(i, jold))
		}
	}
	return &SVD{U: su, S: ss, V: sv}
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}

// PseudoInverse returns the Moore-Penrose pseudo-inverse computed from the
// SVD, truncating singular values below rcond times the largest. This is
// the regularization the kernel-independent FMM uses to invert its
// (ill-conditioned) equivalent-to-check potential operators.
func (d *SVD) PseudoInverse(rcond float64) *Matrix {
	n := len(d.S)
	cutoff := 0.0
	if n > 0 {
		cutoff = rcond * d.S[0]
	}
	// pinv = V * diag(1/s) * Uᵀ, skipping truncated values.
	ut := d.U.T()
	out := NewMatrix(d.V.Rows, ut.Cols)
	for k := 0; k < n; k++ {
		if d.S[k] <= cutoff || d.S[k] == 0 {
			continue
		}
		inv := 1 / d.S[k]
		for i := 0; i < out.Rows; i++ {
			vik := d.V.At(i, k) * inv
			if vik == 0 {
				continue
			}
			urow := ut.Data[k*ut.Cols : (k+1)*ut.Cols]
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, uv := range urow {
				orow[j] += vik * uv
			}
		}
	}
	return out
}

// PseudoInverse is a convenience wrapper combining FactorSVD and
// SVD.PseudoInverse.
func PseudoInverse(a *Matrix, rcond float64) *Matrix {
	return FactorSVD(a).PseudoInverse(rcond)
}

// Cond2 returns the 2-norm condition number estimate from the SVD
// (largest over smallest non-zero singular value). It returns +Inf when
// the matrix is singular to working precision.
func (d *SVD) Cond2() float64 {
	if len(d.S) == 0 || d.S[0] == 0 {
		return math.Inf(1)
	}
	smin := d.S[len(d.S)-1]
	if smin == 0 {
		return math.Inf(1)
	}
	return d.S[0] / smin
}
