// Package linalg implements the small dense linear algebra kernel the
// reproduction needs: matrix/vector arithmetic, Householder QR for least
// squares (used by the NNLS solver), Cholesky factorization, a one-sided
// Jacobi SVD, and truncated pseudo-inverses (used to build the KIFMM
// equivalent-density operators). Matrices are row-major and sized for the
// problem at hand — at most a few hundred rows/columns — so the
// implementation favors clarity and numerical robustness over blocking.
package linalg

import "fmt"

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[i*Cols+j] = element (i,j)
}

// NewMatrix returns a zeroed r-by-c matrix. It panics for non-positive
// dimensions.
func NewMatrix(r, c int) *Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows requires a non-empty rectangular input")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged row %d: len %d, want %d", i, len(row), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], row)
	}
	return m
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a*b. It panics on a dimension mismatch.
func Mul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d * %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}

// MulVec returns the matrix-vector product m*x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d * %d", m.Rows, m.Cols, len(x)))
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// MulVecTo computes m*x into a caller-provided destination, avoiding
// allocation in hot loops (the FMM translation operators call this once
// per tree node per phase).
func (m *Matrix) MulVecTo(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic("linalg: MulVecTo dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// Add returns a+b. It panics on shape mismatch.
func Add(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: Add shape mismatch")
	}
	c := a.Clone()
	for i, v := range b.Data {
		c.Data[i] += v
	}
	return c
}

// Scale returns s*m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	c := m.Clone()
	for i := range c.Data {
		c.Data[i] *= s
	}
	return c
}

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow for extreme inputs.
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 {
			continue
		}
		ax := x
		if ax < 0 {
			ax = -ax
		}
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 {
		return 0
	}
	return scale * sqrt(ssq)
}
