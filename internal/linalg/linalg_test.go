package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 4, 7)
	got := Mul(a, Identity(7))
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatal("A*I != A")
		}
	}
	got = Mul(Identity(4), a)
	for i := range a.Data {
		if got.Data[i] != a.Data[i] {
			t.Fatal("I*A != A")
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Errorf("c[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(8)
		c := 1 + rng.Intn(8)
		a := randomMatrix(rng, r, c)
		tt := a.T().T()
		for i := range a.Data {
			if tt.Data[i] != a.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 5, 3)
	x := []float64{1, -2, 0.5}
	xm := NewMatrix(3, 1)
	copy(xm.Data, x)
	y := a.MulVec(x)
	ym := Mul(a, xm)
	for i := range y {
		if !approxEq(y[i], ym.At(i, 0), 1e-14) {
			t.Fatalf("MulVec[%d] = %v, Mul = %v", i, y[i], ym.At(i, 0))
		}
	}
	dst := make([]float64, 5)
	a.MulVecTo(dst, x)
	for i := range dst {
		if dst[i] != y[i] {
			t.Fatal("MulVecTo differs from MulVec")
		}
	}
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); !approxEq(got, 5, 1e-15) {
		t.Errorf("Norm2(3,4) = %v, want 5", got)
	}
	if got := Norm2(nil); got != 0 {
		t.Errorf("Norm2(nil) = %v, want 0", got)
	}
	// Overflow resistance.
	if got := Norm2([]float64{3e200, 4e200}); !approxEq(got, 5e200, 1e-14) {
		t.Errorf("Norm2 large = %v, want 5e200", got)
	}
}

func TestQRSolveSquare(t *testing.T) {
	a := FromRows([][]float64{
		{4, 1, 0},
		{1, 3, 1},
		{0, 1, 2},
	})
	want := []float64{1, -2, 3}
	b := a.MulVec(want)
	x, err := SolveLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !approxEq(x[i], want[i], 1e-12) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestQRLeastSquaresResidualOrthogonality(t *testing.T) {
	// Property: for the LS solution, the residual is orthogonal to the
	// column space: Aᵀ(Ax - b) = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(10)
		n := 1 + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := SolveLS(a, b)
		if err != nil {
			return true // rank-deficient random draw; acceptable
		}
		ax := a.MulVec(x)
		res := make([]float64, m)
		for i := range res {
			res[i] = ax[i] - b[i]
		}
		atr := a.T().MulVec(res)
		for _, v := range atr {
			if math.Abs(v) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestQRRankDeficient(t *testing.T) {
	a := FromRows([][]float64{
		{1, 2},
		{2, 4},
		{3, 6},
	})
	if _, err := SolveLS(a, []float64{1, 2, 3}); err == nil {
		t.Error("expected rank-deficiency error for collinear columns")
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Build SPD matrix A = BᵀB + I.
	b := randomMatrix(rng, 6, 6)
	a := Add(Mul(b.T(), b), Identity(6))
	l, err := Cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	llt := Mul(l, l.T())
	for i := range a.Data {
		if !approxEq(llt.Data[i], a.Data[i], 1e-10) {
			t.Fatalf("L*Lᵀ != A at %d: %v vs %v", i, llt.Data[i], a.Data[i])
		}
	}
	want := []float64{1, 2, 3, 4, 5, 6}
	rhs := a.MulVec(want)
	x := CholeskySolve(l, rhs)
	for i := range want {
		if !approxEq(x[i], want[i], 1e-9) {
			t.Errorf("CholeskySolve x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 1}}) // indefinite
	if _, err := Cholesky(a); err == nil {
		t.Error("expected error for non-SPD matrix")
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][2]int{{5, 3}, {3, 5}, {4, 4}, {8, 2}, {1, 1}} {
		a := randomMatrix(rng, dims[0], dims[1])
		d := FactorSVD(a)
		// Reconstruct U * diag(S) * Vᵀ.
		us := d.U.Clone()
		for j := 0; j < len(d.S); j++ {
			for i := 0; i < us.Rows; i++ {
				us.Set(i, j, us.At(i, j)*d.S[j])
			}
		}
		rec := Mul(us, d.V.T())
		for i := range a.Data {
			if !approxEq(rec.Data[i], a.Data[i], 1e-10) {
				t.Fatalf("%dx%d: SVD reconstruction mismatch at %d: %v vs %v",
					dims[0], dims[1], i, rec.Data[i], a.Data[i])
			}
		}
		// Singular values sorted descending and non-negative.
		for k := 1; k < len(d.S); k++ {
			if d.S[k] > d.S[k-1] {
				t.Fatal("singular values not sorted descending")
			}
		}
		for _, s := range d.S {
			if s < 0 {
				t.Fatal("negative singular value")
			}
		}
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomMatrix(rng, 7, 4)
	d := FactorSVD(a)
	utu := Mul(d.U.T(), d.U)
	vtv := Mul(d.V.T(), d.V)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !approxEq(utu.At(i, j), want, 1e-10) {
				t.Errorf("UᵀU[%d][%d] = %v, want %v", i, j, utu.At(i, j), want)
			}
			if !approxEq(vtv.At(i, j), want, 1e-10) {
				t.Errorf("VᵀV[%d][%d] = %v, want %v", i, j, vtv.At(i, j), want)
			}
		}
	}
}

func TestSVDKnownSingularValues(t *testing.T) {
	// diag(3, 2, 1) has singular values 3, 2, 1.
	a := FromRows([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	d := FactorSVD(a)
	want := []float64{3, 2, 1}
	for i := range want {
		if !approxEq(d.S[i], want[i], 1e-12) {
			t.Errorf("S[%d] = %v, want %v", i, d.S[i], want[i])
		}
	}
}

func TestPseudoInverseMoorePenrose(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 6, 4)
	p := PseudoInverse(a, 1e-13)
	// A * A⁺ * A = A.
	apa := Mul(Mul(a, p), a)
	for i := range a.Data {
		if !approxEq(apa.Data[i], a.Data[i], 1e-9) {
			t.Fatalf("A A⁺ A != A at %d", i)
		}
	}
	// A⁺ * A * A⁺ = A⁺.
	pap := Mul(Mul(p, a), p)
	for i := range p.Data {
		if !approxEq(pap.Data[i], p.Data[i], 1e-9) {
			t.Fatalf("A⁺ A A⁺ != A⁺ at %d", i)
		}
	}
}

func TestPseudoInverseTruncation(t *testing.T) {
	// A matrix with singular values {1, 1e-12}: with rcond=1e-6 the tiny
	// value must be truncated, so pinv has spectral norm ~1, not ~1e12.
	a := FromRows([][]float64{{1, 0}, {0, 1e-12}})
	p := PseudoInverse(a, 1e-6)
	if p.At(1, 1) != 0 {
		t.Errorf("truncated pseudo-inverse should zero tiny mode, got %v", p.At(1, 1))
	}
	if !approxEq(p.At(0, 0), 1, 1e-12) {
		t.Errorf("dominant mode should invert to 1, got %v", p.At(0, 0))
	}
}

func TestCond2(t *testing.T) {
	a := FromRows([][]float64{{10, 0}, {0, 0.1}})
	d := FactorSVD(a)
	if !approxEq(d.Cond2(), 100, 1e-10) {
		t.Errorf("Cond2 = %v, want 100", d.Cond2())
	}
}

func TestFromRowsPanicsOnRagged(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestDimensionPanics(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	for name, fn := range map[string]func(){
		"Mul":      func() { Mul(a, b) },
		"MulVec":   func() { a.MulVec([]float64{1}) },
		"Dot":      func() { Dot([]float64{1}, []float64{1, 2}) },
		"NewBad":   func() { NewMatrix(0, 3) },
		"Cholesky": func() { Cholesky(a) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
