package nbody

import (
	"math"
	"testing"

	"dvfsroofline/internal/fmm"
)

// cluster builds a small virialized-ish Plummer cluster.
func cluster(t *testing.T, n int) *System {
	t.Helper()
	pos := fmm.GeneratePoints(fmm.Plummer, n, 201)
	vel := make([]fmm.Point, n)
	mass := make([]float64, n)
	for i := range mass {
		mass[i] = 1.0 / float64(n)
	}
	s, err := NewSystem(pos, vel, mass, 0.02, fmm.Options{Q: 64})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	p := []fmm.Point{{X: 0.5, Y: 0.5, Z: 0.5}}
	v := []fmm.Point{{}}
	m := []float64{1}
	if _, err := NewSystem(p, v, m, 0.01, fmm.Options{}); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	if _, err := NewSystem(p, v, []float64{1, 2}, 0.01, fmm.Options{}); err == nil {
		t.Error("size mismatch accepted")
	}
	if _, err := NewSystem(p, v, m, 0, fmm.Options{}); err == nil {
		t.Error("zero softening accepted")
	}
	if _, err := NewSystem(p, v, []float64{-1}, 0.01, fmm.Options{}); err == nil {
		t.Error("negative mass accepted")
	}
}

func TestAccelerationsMatchDirectTwoBody(t *testing.T) {
	// Two bodies: acceleration magnitude m/(r²+ε²)^(3/2)·r toward the
	// partner.
	pos := []fmm.Point{{X: 0.3, Y: 0.5, Z: 0.5}, {X: 0.7, Y: 0.5, Z: 0.5}}
	vel := make([]fmm.Point, 2)
	mass := []float64{1, 1}
	const eps = 0.01
	s, err := NewSystem(pos, vel, mass, eps, fmm.Options{Q: 8})
	if err != nil {
		t.Fatal(err)
	}
	acc, _, err := s.Accelerations()
	if err != nil {
		t.Fatal(err)
	}
	r := 0.4
	want := r / math.Pow(r*r+eps*eps, 1.5) // toward +x for body 0
	if math.Abs(acc[0][0]-want)/want > 1e-10 {
		t.Errorf("a0.x = %v, want %v", acc[0][0], want)
	}
	if math.Abs(acc[1][0]+want)/want > 1e-10 {
		t.Errorf("a1.x = %v, want %v", acc[1][0], -want)
	}
	if math.Abs(acc[0][1]) > 1e-12 || math.Abs(acc[0][2]) > 1e-12 {
		t.Error("transverse acceleration should vanish")
	}
}

func TestMomentumConserved(t *testing.T) {
	s := cluster(t, 2000)
	before := s.Momentum()
	for i := 0; i < 3; i++ {
		if err := s.Step(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	after := s.Momentum()
	d := fmm.Point{X: after.X - before.X, Y: after.Y - before.Y, Z: after.Z - before.Z}
	// The FMM's approximate far field breaks exact pairwise antisymmetry
	// at the expansion-accuracy level, so momentum is conserved to the
	// force error (~1e-3 relative), not to round-off.
	if d.Norm() > 3e-4 {
		t.Errorf("momentum drifted by %v", d.Norm())
	}
}

func TestEnergyDriftBounded(t *testing.T) {
	// Leapfrog is symplectic: over a few small steps the total energy
	// must stay within a small relative band.
	s := cluster(t, 1500)
	e0, err := s.TotalEnergy()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Step(5e-4); err != nil {
			t.Fatal(err)
		}
	}
	e1, err := s.TotalEnergy()
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(e1-e0) / math.Abs(e0); rel > 5e-3 {
		t.Errorf("energy drifted by %.2e over 5 steps (E0=%v, E1=%v)", rel, e0, e1)
	}
}

func TestCollapseUnderGravity(t *testing.T) {
	// A cold (zero-velocity) cluster must contract: kinetic energy grows
	// from zero as potential energy is released.
	s := cluster(t, 1000)
	if k := s.KineticEnergy(); k != 0 {
		t.Fatalf("cold start has kinetic energy %v", k)
	}
	for i := 0; i < 3; i++ {
		if err := s.Step(1e-3); err != nil {
			t.Fatal(err)
		}
	}
	if k := s.KineticEnergy(); k <= 0 {
		t.Errorf("kinetic energy %v after collapse steps; gravity should accelerate bodies", k)
	}
}

func TestStepValidation(t *testing.T) {
	s := cluster(t, 100)
	if err := s.Step(0); err == nil {
		t.Error("zero dt accepted")
	}
	if err := s.Step(-1); err == nil {
		t.Error("negative dt accepted")
	}
}

func TestSoftenedKernelGradConsistency(t *testing.T) {
	k := softenedKernel{eps2: 1e-4}
	const h = 1e-7
	d := fmm.Point{X: 0.21, Y: -0.4, Z: 0.33}
	_, gx, gy, gz := k.EvalGrad(d.X, d.Y, d.Z)
	fdx := (k.Eval(d.X+h, d.Y, d.Z) - k.Eval(d.X-h, d.Y, d.Z)) / (2 * h)
	fdy := (k.Eval(d.X, d.Y+h, d.Z) - k.Eval(d.X, d.Y-h, d.Z)) / (2 * h)
	fdz := (k.Eval(d.X, d.Y, d.Z+h) - k.Eval(d.X, d.Y, d.Z-h)) / (2 * h)
	for _, pair := range [][2]float64{{gx, fdx}, {gy, fdy}, {gz, fdz}} {
		if math.Abs(pair[0]-pair[1]) > 1e-5*(1+math.Abs(pair[1])) {
			t.Errorf("softened gradient %v vs finite difference %v", pair[0], pair[1])
		}
	}
}
