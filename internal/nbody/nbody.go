// Package nbody is a gravitational n-body integrator built on the FMM —
// the downstream application class the paper's proxy stands in for
// (Eq. 10 "might model electrostatic or gravitational interactions").
// Each step evaluates the softened potential and force field with the
// kernel-independent FMM and advances the system with the symplectic
// leapfrog (kick-drift-kick) scheme.
package nbody

import (
	"fmt"
	"math"

	"dvfsroofline/internal/fmm"
)

// System is a self-gravitating particle system. Units are G = 1.
type System struct {
	Pos  []fmm.Point // positions
	Vel  []fmm.Point // velocities
	Mass []float64   // masses, all > 0
	Soft float64     // Plummer softening length ε > 0
	Opt  fmm.Options // FMM options used for force evaluation
}

// softenedKernel is the Plummer-softened gravitational kernel
// K(x,y) = 1 / sqrt(|x-y|² + ε²) (up to the 1/4π normalization the FMM
// kernels carry, which the integrator divides back out).
type softenedKernel struct {
	eps2 float64
}

func (k softenedKernel) Eval(dx, dy, dz float64) float64 {
	r2 := dx*dx + dy*dy + dz*dz + k.eps2
	return 1 / (4 * math.Pi * math.Sqrt(r2))
}

func (k softenedKernel) Name() string { return "plummer-softened" }

func (k softenedKernel) EvalGrad(dx, dy, dz float64) (v, gx, gy, gz float64) {
	r2 := dx*dx + dy*dy + dz*dz + k.eps2
	r := math.Sqrt(r2)
	v = 1 / (4 * math.Pi * r)
	g := -v / r2
	return v, g * dx, g * dy, g * dz
}

// NewSystem validates and assembles a system.
func NewSystem(pos, vel []fmm.Point, mass []float64, soft float64, opt fmm.Options) (*System, error) {
	if len(pos) == 0 || len(pos) != len(vel) || len(pos) != len(mass) {
		return nil, fmt.Errorf("nbody: inconsistent sizes pos=%d vel=%d mass=%d", len(pos), len(vel), len(mass))
	}
	if soft <= 0 {
		return nil, fmt.Errorf("nbody: softening must be positive, got %g", soft)
	}
	for i, m := range mass {
		if m <= 0 || math.IsNaN(m) {
			return nil, fmt.Errorf("nbody: mass %d is %g", i, m)
		}
	}
	return &System{
		Pos:  append([]fmm.Point(nil), pos...),
		Vel:  append([]fmm.Point(nil), vel...),
		Mass: append([]float64(nil), mass...),
		Soft: soft,
		Opt:  opt,
	}, nil
}

// Accelerations evaluates the gravitational accelerations (and the
// potential energy) of the current configuration with the FMM. The FMM
// kernels carry a 1/4π normalization; gravity does not, so results are
// scaled by 4π. Gravity attracts: a_i = -∇Φ evaluated here directly.
func (s *System) Accelerations() ([]fmm.Gradient, float64, error) {
	opt := s.Opt
	opt.Kernel = softenedKernel{eps2: s.Soft * s.Soft}
	res, grad, err := fmm.EvaluateGrad(s.Pos, s.Mass, opt)
	if err != nil {
		return nil, 0, err
	}
	const fourPi = 4 * math.Pi
	acc := make([]fmm.Gradient, len(grad))
	for i := range grad {
		// The gravitational potential is Φ = -Σ m/r = -4π·(kernel sum),
		// so the acceleration a = -∇Φ = +4π·∇(kernel sum): the kernel
		// gradient already points toward the sources.
		acc[i] = fmm.Gradient{
			fourPi * grad[i][0],
			fourPi * grad[i][1],
			fourPi * grad[i][2],
		}
	}
	// Total potential energy U = -1/2 Σ_i m_i Σ_j m_j/r_ij (the self
	// term vanishes only up to softening; with softening the i=j term is
	// m_i²/ε, which we subtract explicitly).
	var u float64
	for i, m := range s.Mass {
		u += m * res.Potentials[i] * fourPi
		u -= m * m / s.Soft // remove the softened self-interaction
	}
	return acc, -u / 2, nil
}

// Step advances the system by dt with one kick-drift-kick leapfrog step.
func (s *System) Step(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("nbody: non-positive time step %g", dt)
	}
	acc, _, err := s.Accelerations()
	if err != nil {
		return err
	}
	half := dt / 2
	for i := range s.Vel {
		s.Vel[i].X += half * acc[i][0]
		s.Vel[i].Y += half * acc[i][1]
		s.Vel[i].Z += half * acc[i][2]
		s.Pos[i].X += dt * s.Vel[i].X
		s.Pos[i].Y += dt * s.Vel[i].Y
		s.Pos[i].Z += dt * s.Vel[i].Z
	}
	acc, _, err = s.Accelerations()
	if err != nil {
		return err
	}
	for i := range s.Vel {
		s.Vel[i].X += half * acc[i][0]
		s.Vel[i].Y += half * acc[i][1]
		s.Vel[i].Z += half * acc[i][2]
	}
	return nil
}

// KineticEnergy returns Σ ½ m v².
func (s *System) KineticEnergy() float64 {
	var k float64
	for i, m := range s.Mass {
		v := s.Vel[i]
		k += 0.5 * m * (v.X*v.X + v.Y*v.Y + v.Z*v.Z)
	}
	return k
}

// TotalEnergy returns kinetic plus potential energy.
func (s *System) TotalEnergy() (float64, error) {
	_, u, err := s.Accelerations()
	if err != nil {
		return 0, err
	}
	return s.KineticEnergy() + u, nil
}

// Momentum returns the total linear momentum.
func (s *System) Momentum() fmm.Point {
	var p fmm.Point
	for i, m := range s.Mass {
		p.X += m * s.Vel[i].X
		p.Y += m * s.Vel[i].Y
		p.Z += m * s.Vel[i].Z
	}
	return p
}
