package faults

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"dvfsroofline/internal/units"
)

func TestZeroPlanInactive(t *testing.T) {
	var p Plan
	if p.Active() {
		t.Error("zero plan must not inject faults")
	}
	if inj := p.ForSample(1, 0); inj != nil {
		t.Error("inactive plan must return a nil injector")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=7, dropout=0.01,spike=0.02,spike-factor=4,disconnect=0.1,dvfs=0.05,dvfs-latency=3ms,throttle=0.03,throttle-factor=0.5,throttle-fraction=0.4")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Seed: 7, MeterDropout: 0.01, MeterSpike: 0.02, SpikeFactor: 4,
		MeterDisconnect: 0.1, DVFSFailure: 0.05, DVFSSettleLatency: 3 * time.Millisecond,
		Throttle: 0.03, ThrottleFactor: 0.5, ThrottleFraction: 0.4,
	}
	if p != want {
		t.Errorf("parsed %+v, want %+v", p, want)
	}
	if !p.Active() {
		t.Error("parsed plan should be active")
	}

	if p, err := ParsePlan("  "); err != nil || p.Active() {
		t.Errorf("empty spec: got %+v, %v; want inactive zero plan", p, err)
	}

	for _, bad := range []string{
		"dropout",        // not key=value
		"volts=3",        // unknown key
		"dropout=x",      // bad float
		"dropout=1.5",    // probability out of range
		"dvfs-latency=3", // missing duration unit
		"throttle-factor=2",
		"spike-factor=-1",
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted a bad spec", bad)
		}
	}
}

// drain records every fault decision one injector makes, in the harness
// call order, so two injectors can be compared for byte-identical fault
// streams.
func drain(in *Injector) string {
	dvfsErr := in.DVFSTransition()
	wins := in.ThrottleWindows(0.5)
	beginErr := in.BeginMeasure(0.5, 64)
	var samples [64]units.Watt
	prev := units.Watt(0)
	for i := range samples {
		samples[i] = in.ObserveSample(i, units.Watt(float64(i)+1), prev)
		prev = samples[i]
	}
	return fmt.Sprint(dvfsErr, wins, beginErr, samples)
}

func TestInjectorDeterministicPerKeyAndAttempt(t *testing.T) {
	p := Plan{Seed: 11, MeterDropout: 0.2, MeterSpike: 0.3, MeterDisconnect: 0.1, DVFSFailure: 0.3, Throttle: 0.4}
	a := drain(p.ForSample(1234, 0))
	b := drain(p.ForSample(1234, 0))
	if a != b {
		t.Error("same (key, attempt) must deal identical faults")
	}
	// Across keys, attempts and plan seeds, the streams must decorrelate.
	// Any single pair may collide, so require at least one difference per
	// axis over a handful of draws.
	differs := func(mutate func(k int64) string) bool {
		for k := int64(0); k < 8; k++ {
			if mutate(k) != drain(p.ForSample(k, 0)) {
				return true
			}
		}
		return false
	}
	if !differs(func(k int64) string { return drain(p.ForSample(k, 1)) }) {
		t.Error("attempt number never changed the fault stream")
	}
	q := p
	q.Seed = 12
	if !differs(func(k int64) string { return drain(q.ForSample(k, 0)) }) {
		t.Error("plan seed never changed the fault stream")
	}
}

func TestInjectorFaultRates(t *testing.T) {
	// Over many keys the injected rates must track the plan probabilities.
	p := Plan{Seed: 3, MeterDisconnect: 0.2, DVFSFailure: 0.1, Throttle: 0.3}
	const n = 4000
	var disconnects, dvfs, throttles int
	for k := int64(0); k < n; k++ {
		in := p.ForSample(k, 0)
		if in.DVFSTransition() != nil {
			dvfs++
		}
		if len(in.ThrottleWindows(1.0)) > 0 {
			throttles++
		}
		if in.BeginMeasure(1.0, 100) != nil {
			disconnects++
		}
	}
	check := func(name string, got int, want float64) {
		rate := float64(got) / n
		if rate < want-0.03 || rate > want+0.03 {
			t.Errorf("%s rate %.3f, want ~%.2f", name, rate, want)
		}
	}
	check("disconnect", disconnects, 0.2)
	check("dvfs", dvfs, 0.1)
	check("throttle", throttles, 0.3)
}

func TestSpikeWindowScalesSamples(t *testing.T) {
	p := Plan{Seed: 1, MeterSpike: 1, SpikeFactor: 6}
	in := p.ForSample(42, 0)
	const n = 128
	if err := in.BeginMeasure(1.0, n); err != nil {
		t.Fatal(err)
	}
	var spiked int
	for i := 0; i < n; i++ {
		v := in.ObserveSample(i, 1.0, 1.0)
		switch v {
		case 1.0:
		case 6.0:
			spiked++
		default:
			t.Fatalf("sample %d = %v, want 1 or 6", i, v)
		}
	}
	if spiked != n/8 {
		t.Errorf("spiked %d samples, want %d (n/8 burst)", spiked, n/8)
	}
}

func TestThrottleWindowFitsRun(t *testing.T) {
	p := Plan{Seed: 5, Throttle: 1}
	for k := int64(0); k < 50; k++ {
		wins := p.ForSample(k, 0).ThrottleWindows(2.0)
		if len(wins) != 1 {
			t.Fatalf("key %d: %d windows, want 1", k, len(wins))
		}
		w := wins[0]
		if w.Start < 0 || w.Start+w.Duration > 2.0+1e-12 {
			t.Errorf("key %d: window [%g, %g] outside run [0, 2]", k, w.Start, w.Start+w.Duration)
		}
		if w.Duration != 0.6*2.0 {
			t.Errorf("key %d: duration %g, want default fraction 1.2", k, w.Duration)
		}
		if w.Factor != 0.3 {
			t.Errorf("key %d: factor %g, want default 0.3", k, w.Factor)
		}
	}
}

func TestTransientMarking(t *testing.T) {
	base := errors.New("boom")
	err := Transient(base)
	if !IsTransient(err) {
		t.Error("Transient error not detected")
	}
	if !errors.Is(err, base) {
		t.Error("Transient must preserve the cause chain")
	}
	if IsTransient(base) {
		t.Error("unmarked error reported transient")
	}
	if IsTransient(nil) || Transient(nil) != nil {
		t.Error("nil handling broken")
	}
	wrapped := fmt.Errorf("ctx: %w", Transient(base))
	if !IsTransient(wrapped) {
		t.Error("transience lost through wrapping")
	}
}

func TestRetryAfterExtraction(t *testing.T) {
	err := fmt.Errorf("attempt: %w", Transient(&DVFSError{RetryAfter: 5 * time.Millisecond}))
	d, ok := RetryAfter(err)
	if !ok || d != 5*time.Millisecond {
		t.Errorf("RetryAfter = %v, %v; want 5ms, true", d, ok)
	}
	if _, ok := RetryAfter(errors.New("other")); ok {
		t.Error("RetryAfter invented a settle latency")
	}
}

func TestDoRetriesTransientOnly(t *testing.T) {
	r := Retry{Sleep: func(time.Duration) {}}
	ctx := context.Background()

	// Success on first try.
	n, err := Do(ctx, r, func(int) error { return nil })
	if n != 1 || err != nil {
		t.Errorf("clean run: %d attempts, %v", n, err)
	}

	// Transient failures retry up to the default 3 attempts.
	var seen []int
	n, err = Do(ctx, r, func(a int) error { seen = append(seen, a); return Transient(errors.New("flaky")) })
	if n != 3 || err == nil {
		t.Errorf("transient run: %d attempts, err %v; want 3 attempts and an error", n, err)
	}
	if fmt.Sprint(seen) != "[0 1 2]" {
		t.Errorf("attempt numbers %v, want [0 1 2]", seen)
	}

	// Recovery mid-way stops retrying.
	n, err = Do(ctx, r, func(a int) error {
		if a < 1 {
			return Transient(errors.New("flaky"))
		}
		return nil
	})
	if n != 2 || err != nil {
		t.Errorf("recovering run: %d attempts, %v; want 2, nil", n, err)
	}

	// Permanent errors never retry.
	perm := errors.New("bad config")
	n, err = Do(ctx, r, func(int) error { return perm })
	if n != 1 || !errors.Is(err, perm) {
		t.Errorf("permanent run: %d attempts, %v; want 1, the error", n, err)
	}
}

func TestDoBackoffHonorsRetryAfter(t *testing.T) {
	var delays []time.Duration
	r := Retry{MaxAttempts: 4, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond,
		Sleep: func(d time.Duration) { delays = append(delays, d) }}
	_, err := Do(context.Background(), r, func(int) error {
		return Transient(&DVFSError{RetryAfter: 3 * time.Millisecond})
	})
	if err == nil {
		t.Fatal("expected final error")
	}
	// Exponential floor 1, 2, 4 ms, but the settle latency lifts the
	// first two delays to 3 ms.
	want := []time.Duration{3 * time.Millisecond, 3 * time.Millisecond, 4 * time.Millisecond}
	if fmt.Sprint(delays) != fmt.Sprint(want) {
		t.Errorf("delays %v, want %v", delays, want)
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	n, err := Do(ctx, Retry{MaxAttempts: 10}, func(int) error {
		calls++
		cancel()
		return Transient(errors.New("flaky"))
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if n != 1 || calls != 1 {
		t.Errorf("made %d attempts after cancellation, want 1", calls)
	}
}
