// Package faults is a seeded, fully deterministic fault-injection layer
// for the simulated measurement rig. Real calibration campaigns on a
// PowerMon 2 + Jetson TK1 bench suffer transient artifacts the paper's
// pipeline quietly absorbed by hand: the meter drops samples or
// disconnects mid-run, DVFS setting transitions fail and need a settle
// period, and thermal throttling corrupts power traces. This package
// reproduces those artifacts on the simulated stack so the experiment
// pipeline's retry, quarantine and outlier-screening machinery can be
// exercised — and regression-tested — without a flaky physical rig.
//
// A Plan describes per-fault probabilities. Plan.ForSample derives one
// Injector per unit of work from the (plan seed, sample identity,
// attempt) triple, so faults land on the same samples no matter how the
// campaign is ordered or parallelized: serial, reordered and
// many-worker runs inject byte-identical faults. Retried attempts remix
// the attempt number into the stream, so a retry re-measures rather
// than replaying the same corruption.
//
// Errors produced by injected faults are transient (IsTransient): the
// pipeline retries them with bounded exponential backoff (Do) and
// quarantines the sample only when every attempt fails.
package faults

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Plan describes which faults a campaign injects and how often. The
// zero value injects nothing (Active reports false), so fault injection
// is strictly opt-in. Probabilities are per unit of work (one sample
// measurement), except MeterDropout, which is per meter sample.
type Plan struct {
	// Seed decorrelates the fault stream from the measurement-noise
	// stream; two plans with different seeds fault different samples.
	Seed int64

	// MeterDropout is the per-sample probability that the meter drops a
	// reading; a dropped reading repeats the previous sample, as a
	// sample-and-hold ADC does.
	MeterDropout float64
	// MeterSpike is the per-measurement probability that a transient
	// supply spike corrupts a contiguous window of the trace by
	// SpikeFactor. Spiked measurements complete without error — they can
	// only be caught downstream, by the fit's outlier screen.
	MeterSpike float64
	// SpikeFactor scales the samples inside a spike window; zero = 6.
	SpikeFactor float64
	// MeterDisconnect is the per-measurement probability that the meter
	// drops off the bus before the run starts (transient; a retry
	// reconnects).
	MeterDisconnect float64

	// DVFSFailure is the per-measurement probability that programming
	// the DVFS setting fails. The resulting error is transient and
	// carries a settle latency (RetryAfter) the retry loop honors.
	DVFSFailure float64
	// DVFSSettleLatency is the settle period a failed transition
	// requests before the next attempt; zero = 2 ms.
	DVFSSettleLatency time.Duration

	// Throttle is the per-measurement probability that a thermal
	// throttle window depresses the run's dynamic power. Like spikes,
	// throttled measurements complete without error.
	Throttle float64
	// ThrottleFactor scales dynamic power inside the window; zero = 0.3.
	ThrottleFactor float64
	// ThrottleFraction is the fraction of the run the window covers;
	// zero = 0.6.
	ThrottleFraction float64
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.MeterDropout > 0 || p.MeterSpike > 0 || p.MeterDisconnect > 0 ||
		p.DVFSFailure > 0 || p.Throttle > 0
}

// Validate reports a physically meaningless plan.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"dropout", p.MeterDropout}, {"spike", p.MeterSpike},
		{"disconnect", p.MeterDisconnect}, {"dvfs", p.DVFSFailure},
		{"throttle", p.Throttle},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faults: %s probability %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.SpikeFactor < 0 {
		return fmt.Errorf("faults: negative spike factor %g", p.SpikeFactor)
	}
	if p.ThrottleFactor < 0 || p.ThrottleFactor > 1 {
		return fmt.Errorf("faults: throttle factor %g outside [0, 1]", p.ThrottleFactor)
	}
	if p.ThrottleFraction < 0 || p.ThrottleFraction > 1 {
		return fmt.Errorf("faults: throttle fraction %g outside [0, 1]", p.ThrottleFraction)
	}
	if p.DVFSSettleLatency < 0 {
		return fmt.Errorf("faults: negative DVFS settle latency %v", p.DVFSSettleLatency)
	}
	return nil
}

func (p Plan) spikeFactor() float64 {
	if p.SpikeFactor == 0 {
		return 6
	}
	return p.SpikeFactor
}

func (p Plan) throttleFactor() float64 {
	if p.ThrottleFactor == 0 {
		return 0.3
	}
	return p.ThrottleFactor
}

func (p Plan) throttleFraction() float64 {
	if p.ThrottleFraction == 0 {
		return 0.6
	}
	return p.ThrottleFraction
}

func (p Plan) settleLatency() time.Duration {
	if p.DVFSSettleLatency == 0 {
		return 2 * time.Millisecond
	}
	return p.DVFSSettleLatency
}

// ParsePlan parses the "key=value,key=value" plan syntax of the cmd/*
// -faults flag. Keys: seed, dropout, spike, spike-factor, disconnect,
// dvfs, dvfs-latency (a Go duration), throttle, throttle-factor,
// throttle-fraction. An empty spec yields the inactive zero Plan.
func ParsePlan(spec string) (Plan, error) {
	var p Plan
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return p, nil
	}
	for _, field := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return Plan{}, fmt.Errorf("faults: %q is not key=value", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "dropout":
			p.MeterDropout, err = strconv.ParseFloat(val, 64)
		case "spike":
			p.MeterSpike, err = strconv.ParseFloat(val, 64)
		case "spike-factor":
			p.SpikeFactor, err = strconv.ParseFloat(val, 64)
		case "disconnect":
			p.MeterDisconnect, err = strconv.ParseFloat(val, 64)
		case "dvfs":
			p.DVFSFailure, err = strconv.ParseFloat(val, 64)
		case "dvfs-latency":
			p.DVFSSettleLatency, err = time.ParseDuration(val)
		case "throttle":
			p.Throttle, err = strconv.ParseFloat(val, 64)
		case "throttle-factor":
			p.ThrottleFactor, err = strconv.ParseFloat(val, 64)
		case "throttle-fraction":
			p.ThrottleFraction, err = strconv.ParseFloat(val, 64)
		default:
			return Plan{}, fmt.Errorf("faults: unknown key %q", key)
		}
		if err != nil {
			return Plan{}, fmt.Errorf("faults: bad value for %s: %w", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// faultStreamTag separates the fault stream from every other derived
// stream keyed on the same sample identity.
const faultStreamTag = 0x5fa17

// ForSample returns the injector for one unit of work, or nil when the
// plan is inactive. key must be the unit's identity-derived seed (e.g.
// microbench.SampleSeed) and attempt its zero-based retry count: the
// injector's random stream is a pure function of (plan seed, key,
// attempt), so faults are independent of execution order and worker
// count, and every retry redraws its faults instead of replaying them.
func (p Plan) ForSample(key int64, attempt int) *Injector {
	if !p.Active() {
		return nil
	}
	in := &Injector{
		plan:       p,
		rng:        stats.NewRNG(stats.MixSeed(p.Seed, faultStreamTag, key, int64(attempt))),
		spikeStart: -1,
		spikeEnd:   -1,
	}
	// All per-measurement fault decisions are drawn up front in a fixed
	// order, so the faults one injector deals do not depend on which of
	// its methods the harness happens to call, or in what order.
	in.uDVFS = in.rng.Float64()
	in.uDisconnect = in.rng.Float64()
	in.uThrottle = in.rng.Float64()
	in.throttlePos = in.rng.Float64()
	in.uSpike = in.rng.Float64()
	in.spikePos = in.rng.Float64()
	return in
}

// Injector deals the faults of one measurement attempt. The zero value
// is not usable; obtain injectors from Plan.ForSample. An Injector is
// consumed by a single attempt and is not safe for concurrent use.
//
// Injector implements powermon.FaultInjector.
type Injector struct {
	plan Plan
	rng  *stats.RNG

	uDVFS, uDisconnect   float64
	uThrottle            float64
	throttlePos          float64
	uSpike, spikePos     float64
	spikeStart, spikeEnd int // sample-index window; -1 = no spike
}

// DVFSTransition simulates programming the attempt's DVFS setting. On
// an injected failure it returns a transient *DVFSError carrying the
// settle latency to honor before retrying.
func (in *Injector) DVFSTransition() error {
	if in.uDVFS < in.plan.DVFSFailure {
		return Transient(&DVFSError{RetryAfter: in.plan.settleLatency()})
	}
	return nil
}

// ThrottleWindows returns the thermal-throttle windows this attempt
// injects into a run of the given duration (nil when none).
func (in *Injector) ThrottleWindows(runTime units.Second) []tegra.ThrottleWindow {
	if in.uThrottle >= in.plan.Throttle || runTime <= 0 {
		return nil
	}
	rt := float64(runTime)
	dur := in.plan.throttleFraction() * rt
	// Place the window's start so it always fits inside the run.
	start := in.throttlePos * (rt - dur)
	return []tegra.ThrottleWindow{{
		Start:    units.Second(start),
		Duration: units.Second(dur),
		Factor:   units.Ratio(in.plan.throttleFactor()),
	}}
}

// BeginMeasure opens the attempt's measurement session: it fails the
// whole session on an injected disconnect and otherwise positions the
// spike window (if this measurement drew one) among the n samples.
func (in *Injector) BeginMeasure(duration units.Second, n int) error {
	if in.uDisconnect < in.plan.MeterDisconnect {
		return Transient(ErrMeterDisconnect)
	}
	if in.uSpike < in.plan.MeterSpike && n > 0 {
		// A burst of about one eighth of the trace: long enough to move
		// the integrated energy far outside the honest noise band, so
		// the fit's outlier screen can catch what no error return flags.
		width := n / 8
		if width < 1 {
			width = 1
		}
		center := int(in.spikePos * float64(n))
		in.spikeStart = center - width/2
		in.spikeEnd = in.spikeStart + width
		if in.spikeStart < 0 {
			in.spikeStart, in.spikeEnd = 0, width
		}
		if in.spikeEnd > n {
			in.spikeStart, in.spikeEnd = n-width, n
		}
	}
	return nil
}

// ObserveSample filters one meter sample: clean is the value the meter
// would record, prev the previous recorded sample. Spike windows
// multiply the sample; dropouts hold the previous one.
func (in *Injector) ObserveSample(i int, clean, prev units.Watt) units.Watt {
	v := clean
	if i >= in.spikeStart && i < in.spikeEnd {
		v = units.Watt(float64(v) * in.plan.spikeFactor())
	}
	if in.plan.MeterDropout > 0 && in.rng.Float64() < in.plan.MeterDropout && i > 0 {
		return prev
	}
	return v
}

// ErrMeterDisconnect is the cause of an injected whole-measurement
// meter disconnect; it always arrives wrapped as a transient error.
var ErrMeterDisconnect = errors.New("power meter disconnected")

// DVFSError is a failed DVFS setting transition. RetryAfter is the
// settle period the (simulated) power rail needs before the transition
// can be retried; Do waits at least that long between attempts.
type DVFSError struct {
	RetryAfter time.Duration
}

func (e *DVFSError) Error() string {
	return fmt.Sprintf("DVFS setting transition failed (settle %v before retrying)", e.RetryAfter)
}

// transientErr marks an error as retry-able.
type transientErr struct {
	err error
}

func (t *transientErr) Error() string { return "transient: " + t.err.Error() }
func (t *transientErr) Unwrap() error { return t.err }

// Transient wraps err as transient: IsTransient(Transient(err)) is
// true, and errors.Is/As still see err. A nil err returns nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether any error in err's chain was marked
// transient. The experiment pipeline retries transient failures and
// treats everything else — bad configuration, impossible measurements —
// as permanent.
func IsTransient(err error) bool {
	var t *transientErr
	return errors.As(err, &t)
}

// RetryAfter extracts the settle latency an error requests before the
// next attempt, if it carries one.
func RetryAfter(err error) (time.Duration, bool) {
	var d *DVFSError
	if errors.As(err, &d) {
		return d.RetryAfter, true
	}
	return 0, false
}

// Retry bounds the retry loop around one unit of work. The zero value
// selects the defaults noted on each field.
type Retry struct {
	// MaxAttempts is the total number of tries (first attempt included);
	// zero = 3.
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per
	// attempt. Zero = 1 ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth; zero = 20 ms.
	MaxBackoff time.Duration
	// Sleep replaces the real clock, for tests and simulations where
	// settle latencies need not actually elapse. Nil sleeps for real
	// (honoring ctx cancellation).
	Sleep func(time.Duration)
}

func (r Retry) maxAttempts() int {
	if r.MaxAttempts <= 0 {
		return 3
	}
	return r.MaxAttempts
}

func (r Retry) backoff(attempt int) time.Duration {
	base := r.Backoff
	if base <= 0 {
		base = time.Millisecond
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = 20 * time.Millisecond
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// Do runs fn with bounded retries. fn receives the zero-based attempt
// number — the pipeline threads it into Plan.ForSample and into the
// measurement re-seed, so every retry is a fresh, deterministic
// measurement. Only transient errors are retried; permanent errors and
// context cancellation return immediately. Between attempts Do backs
// off exponentially, never less than the settle latency the failure
// requested (RetryAfter). It returns the number of attempts made and
// the final error.
func Do(ctx context.Context, r Retry, fn func(attempt int) error) (attempts int, err error) {
	max := r.maxAttempts()
	for attempt := 0; ; attempt++ {
		err = fn(attempt)
		attempts = attempt + 1
		if err == nil || !IsTransient(err) || attempts >= max {
			return attempts, err
		}
		if ctx.Err() != nil {
			return attempts, ctx.Err()
		}
		delay := r.backoff(attempt)
		if settle, ok := RetryAfter(err); ok && settle > delay {
			delay = settle
		}
		if r.Sleep != nil {
			r.Sleep(delay)
		} else {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return attempts, ctx.Err()
			}
		}
	}
}
