package fmm2d

import "math"

// Kernel is a 2-D interaction kernel K(x, y) evaluated on r = x - y.
type Kernel interface {
	Eval(dx, dy float64) float64
	Name() string
}

// Laplace is the 2-D single-layer Laplace kernel
// K(x,y) = -ln|x-y| / (2π), the Green's function of the plane. Note it
// is not scale-invariant (a log picks up an additive constant under
// scaling), which exercises the kernel-independent machinery's per-level
// operator construction.
type Laplace struct{}

// Eval implements Kernel.
func (Laplace) Eval(dx, dy float64) float64 {
	r2 := dx*dx + dy*dy
	if r2 == 0 {
		return 0
	}
	return -0.25 * math.Log(r2) / (2 * math.Pi) * 2 // = -ln(r)/(2π)
}

// Name implements Kernel.
func (Laplace) Name() string { return "laplace2d" }

// Yukawa2D is the 2-D screened kernel e^{-λr}·(-ln r)/(2π)·… — for
// simplicity we use K = e^{-λr}/(2π·max(r, ε))-style smooth decay via
// the modified form K = e^{-λr} · (-ln r)/(2π). It demonstrates kernel
// independence in 2-D; any evaluable kernel works.
type Yukawa2D struct {
	Lambda float64
}

// Eval implements Kernel.
func (y Yukawa2D) Eval(dx, dy float64) float64 {
	r2 := dx*dx + dy*dy
	if r2 == 0 {
		return 0
	}
	r := math.Sqrt(r2)
	return math.Exp(-y.Lambda*r) * (-math.Log(r)) / (2 * math.Pi)
}

// Name implements Kernel.
func (y Yukawa2D) Name() string { return "yukawa2d" }
