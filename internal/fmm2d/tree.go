package fmm2d

import (
	"fmt"
	"math"
)

const nilNode = -1

// Node is one square (quadrant) of the adaptive quadtree.
type Node struct {
	Center   Point
	Half     float64
	Level    int
	Parent   int
	Children [4]int
	Quadrant int
	Leaf     bool

	SrcStart, SrcEnd int
	TrgStart, TrgEnd int

	// Interaction lists, exactly the U/V/W/X of the paper's Figure 3.
	U, V, W, X []int32
}

// NumSources returns the node's source count.
func (n *Node) NumSources() int { return n.SrcEnd - n.SrcStart }

// NumTargets returns the node's target count.
func (n *Node) NumTargets() int { return n.TrgEnd - n.TrgStart }

// Tree is an adaptive quadtree over source and target point sets.
type Tree struct {
	Nodes []Node

	Src     []Point
	SrcPerm []int
	Trg     []Point
	TrgPerm []int
	Shared  bool

	Root      int
	MaxLeaf   int
	MaxLevel  int
	numLeaves int
	maxDepth  int
}

// BuildTree constructs the quadtree over a single point set.
func BuildTree(pts []Point, q, maxLevel int) (*Tree, error) {
	return buildTree(pts, nil, q, maxLevel, true)
}

// BuildDualTree constructs the quadtree over distinct targets and sources.
func BuildDualTree(targets, sources []Point, q, maxLevel int) (*Tree, error) {
	return buildTree(sources, targets, q, maxLevel, false)
}

func buildTree(src, trg []Point, q, maxLevel int, shared bool) (*Tree, error) {
	if len(src) == 0 {
		return nil, fmt.Errorf("fmm2d: no source points")
	}
	if !shared && len(trg) == 0 {
		return nil, fmt.Errorf("fmm2d: no target points")
	}
	if q < 1 {
		return nil, fmt.Errorf("fmm2d: invalid leaf capacity Q=%d", q)
	}
	if maxLevel < 0 || maxLevel > 30 {
		return nil, fmt.Errorf("fmm2d: invalid max level %d", maxLevel)
	}

	lo, hi := src[0], src[0]
	expand := func(pts []Point) {
		for _, p := range pts {
			lo.X = math.Min(lo.X, p.X)
			lo.Y = math.Min(lo.Y, p.Y)
			hi.X = math.Max(hi.X, p.X)
			hi.Y = math.Max(hi.Y, p.Y)
		}
	}
	expand(src)
	if !shared {
		expand(trg)
	}
	center := Point{(lo.X + hi.X) / 2, (lo.Y + hi.Y) / 2}
	half := math.Max(hi.X-lo.X, hi.Y-lo.Y)/2*1.0001 + 1e-12

	t := &Tree{
		Src:      append([]Point(nil), src...),
		SrcPerm:  identity(len(src)),
		Shared:   shared,
		MaxLeaf:  q,
		MaxLevel: maxLevel,
	}
	if shared {
		t.Trg = t.Src
		t.TrgPerm = t.SrcPerm
	} else {
		t.Trg = append([]Point(nil), trg...)
		t.TrgPerm = identity(len(trg))
	}
	t.Root = t.addNode(Node{
		Center: center, Half: half, Level: 0, Parent: nilNode,
		SrcStart: 0, SrcEnd: len(src),
		TrgStart: 0, TrgEnd: len(t.Trg),
	})
	t.split(t.Root)
	return t, nil
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (t *Tree) addNode(n Node) int {
	for i := range n.Children {
		n.Children[i] = nilNode
	}
	t.Nodes = append(t.Nodes, n)
	return len(t.Nodes) - 1
}

// quadrantOf returns the quadrant (0..3) of p relative to c: bit 0 for
// x, bit 1 for y.
func quadrantOf(p, c Point) int {
	o := 0
	if p.X >= c.X {
		o |= 1
	}
	if p.Y >= c.Y {
		o |= 2
	}
	return o
}

// quadrantCenter returns the center of quadrant o of a square at c with
// half width h.
func quadrantCenter(c Point, h float64, o int) Point {
	q := h / 2
	d := Point{-q, -q}
	if o&1 != 0 {
		d.X = q
	}
	if o&2 != 0 {
		d.Y = q
	}
	return c.Add(d)
}

func partitionQuadrants(pts []Point, perm []int, start, end int, center Point) (offsets, counts [4]int) {
	for p := start; p < end; p++ {
		counts[quadrantOf(pts[p], center)]++
	}
	sum := start
	for o := 0; o < 4; o++ {
		offsets[o] = sum
		sum += counts[o]
	}
	permuted := make([]Point, end-start)
	permIdx := make([]int, end-start)
	cursor := offsets
	for p := start; p < end; p++ {
		o := quadrantOf(pts[p], center)
		permuted[cursor[o]-start] = pts[p]
		permIdx[cursor[o]-start] = perm[p]
		cursor[o]++
	}
	copy(pts[start:end], permuted)
	copy(perm[start:end], permIdx)
	return offsets, counts
}

func (t *Tree) split(i int) {
	n := &t.Nodes[i]
	if (n.NumSources() <= t.MaxLeaf && n.NumTargets() <= t.MaxLeaf) || n.Level >= t.MaxLevel {
		n.Leaf = true
		t.numLeaves++
		if n.Level > t.maxDepth {
			t.maxDepth = n.Level
		}
		return
	}
	center := n.Center
	srcOff, srcCnt := partitionQuadrants(t.Src, t.SrcPerm, n.SrcStart, n.SrcEnd, center)
	trgOff, trgCnt := srcOff, srcCnt
	if !t.Shared {
		trgOff, trgCnt = partitionQuadrants(t.Trg, t.TrgPerm, n.TrgStart, n.TrgEnd, center)
	}
	level := n.Level
	half := n.Half
	for o := 0; o < 4; o++ {
		if srcCnt[o] == 0 && trgCnt[o] == 0 {
			continue
		}
		child := t.addNode(Node{
			Center:   quadrantCenter(center, half, o),
			Half:     half / 2,
			Level:    level + 1,
			Parent:   i,
			Quadrant: o,
			SrcStart: srcOff[o], SrcEnd: srcOff[o] + srcCnt[o],
			TrgStart: trgOff[o], TrgEnd: trgOff[o] + trgCnt[o],
		})
		t.Nodes[i].Children[o] = child
		t.split(child)
	}
}

// NumLeaves returns the number of leaf squares.
func (t *Tree) NumLeaves() int { return t.numLeaves }

// Depth returns the deepest leaf level.
func (t *Tree) Depth() int { return t.maxDepth }

// Leaves returns leaf indices in construction order.
func (t *Tree) Leaves() []int {
	out := make([]int, 0, t.numLeaves)
	for i := range t.Nodes {
		if t.Nodes[i].Leaf {
			out = append(out, i)
		}
	}
	return out
}

func adjacent(a, b *Node) bool {
	gap := a.Center.Sub(b.Center).MaxAbs() - (a.Half + b.Half)
	return gap <= 1e-9*(a.Half+b.Half)
}

// Validate checks structural invariants for both point sides.
func (t *Tree) Validate() error {
	if err := t.validateSide("source", t.Src,
		func(n *Node) (int, int) { return n.SrcStart, n.SrcEnd }); err != nil {
		return err
	}
	return t.validateSide("target", t.Trg,
		func(n *Node) (int, int) { return n.TrgStart, n.TrgEnd })
}

func (t *Tree) validateSide(side string, pts []Point, rng func(*Node) (int, int)) error {
	seen := make([]bool, len(pts))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		start, end := rng(n)
		if start < 0 || end > len(pts) || start > end {
			return fmt.Errorf("fmm2d: node %d has bad %s range", i, side)
		}
		if n.Leaf {
			if n.Level < t.MaxLevel && end-start > t.MaxLeaf {
				return fmt.Errorf("fmm2d: leaf %d has %d %s points > Q=%d", i, end-start, side, t.MaxLeaf)
			}
			for p := start; p < end; p++ {
				if seen[p] {
					return fmt.Errorf("fmm2d: %s point %d in two leaves", side, p)
				}
				seen[p] = true
			}
		}
		for p := start; p < end; p++ {
			if pts[p].Sub(n.Center).MaxAbs() > n.Half*(1+1e-9) {
				return fmt.Errorf("fmm2d: %s point %d outside node %d", side, p, i)
			}
		}
		if !n.Leaf {
			covered := 0
			for _, c := range n.Children {
				if c == nilNode {
					continue
				}
				cn := &t.Nodes[c]
				if cn.Parent != i || cn.Level != n.Level+1 {
					return fmt.Errorf("fmm2d: child %d of %d badly linked", c, i)
				}
				cs, ce := rng(cn)
				covered += ce - cs
			}
			if covered != end-start {
				return fmt.Errorf("fmm2d: node %d children cover %d of %d %s points", i, covered, end-start, side)
			}
		}
	}
	for p, ok := range seen {
		if !ok {
			return fmt.Errorf("fmm2d: %s point %d unowned", side, p)
		}
	}
	return nil
}

// BuildLists computes the U, V, W, X lists — the quadtree instance of
// the paper's Figure 3.
func (t *Tree) BuildLists() {
	colleagues := t.buildColleagues()
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Parent != nilNode {
			for _, pc := range colleagues[n.Parent] {
				for _, c := range t.Nodes[pc].Children {
					if c == nilNode || c == i {
						continue
					}
					if !adjacent(&t.Nodes[c], n) {
						n.V = append(n.V, int32(c))
					}
				}
			}
		}
		if !n.Leaf {
			continue
		}
		t.collectAdjacentLeaves(t.Root, i, &n.U)
		for _, k := range colleagues[i] {
			if int(k) == i {
				continue
			}
			t.collectW(int(k), i, &n.W)
		}
	}
	for i := range t.Nodes {
		if !t.Nodes[i].Leaf {
			continue
		}
		for _, w := range t.Nodes[i].W {
			t.Nodes[w].X = append(t.Nodes[w].X, int32(i))
		}
	}
}

func (t *Tree) buildColleagues() [][]int32 {
	col := make([][]int32, len(t.Nodes))
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.Parent == nilNode {
			col[i] = []int32{int32(i)}
			continue
		}
		for _, pc := range col[n.Parent] {
			for _, c := range t.Nodes[pc].Children {
				if c == nilNode {
					continue
				}
				if adjacent(&t.Nodes[c], n) {
					col[i] = append(col[i], int32(c))
				}
			}
		}
	}
	return col
}

func (t *Tree) collectAdjacentLeaves(cur, target int, out *[]int32) {
	cn := &t.Nodes[cur]
	if !adjacent(cn, &t.Nodes[target]) {
		return
	}
	if cn.Leaf {
		*out = append(*out, int32(cur))
		return
	}
	for _, c := range cn.Children {
		if c != nilNode {
			t.collectAdjacentLeaves(c, target, out)
		}
	}
}

func (t *Tree) collectW(cur, target int, out *[]int32) {
	cn := &t.Nodes[cur]
	if cn.Leaf {
		return
	}
	for _, c := range cn.Children {
		if c == nilNode {
			continue
		}
		if adjacent(&t.Nodes[c], &t.Nodes[target]) {
			t.collectW(c, target, out)
		} else {
			*out = append(*out, int32(c))
		}
	}
}
