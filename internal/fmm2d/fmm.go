package fmm2d

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"dvfsroofline/internal/fft"
)

// Options configures a 2-D FMM evaluation.
type Options struct {
	// Q is the maximum number of points per leaf square. Default 64.
	Q int
	// SurfaceOrder is the boundary points per square edge. Default 8
	// (28 surface points), which gives ~5-digit accuracy for the log
	// kernel.
	SurfaceOrder int
	// UseFFTM2L selects the spectral V-list translation.
	UseFFTM2L bool
	// MaxLevel bounds tree depth. Default 24.
	MaxLevel int
	// Workers bounds parallelism. Default GOMAXPROCS.
	Workers int
	// Kernel is the interaction kernel. Default the 2-D Laplace kernel.
	Kernel Kernel
}

func (o Options) withDefaults() Options {
	if o.Q == 0 {
		o.Q = 64
	}
	if o.SurfaceOrder == 0 {
		o.SurfaceOrder = 8
	}
	if o.MaxLevel == 0 {
		o.MaxLevel = 24
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Kernel == nil {
		o.Kernel = Laplace{}
	}
	return o
}

// Result is the outcome of a 2-D FMM evaluation.
type Result struct {
	Potentials []float64
	Tree       *Tree
	Options    Options
}

// Evaluate computes the potentials for sources == targets == points.
func Evaluate(points []Point, densities []float64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(points) != len(densities) {
		return nil, fmt.Errorf("fmm2d: %d points but %d densities", len(points), len(densities))
	}
	tree, err := BuildTree(points, opt.Q, opt.MaxLevel)
	if err != nil {
		return nil, err
	}
	return evaluateOnTree(tree, densities, opt)
}

// EvaluateAt computes potentials at distinct targets due to distinct
// sources.
func EvaluateAt(targets, sources []Point, densities []float64, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if len(sources) != len(densities) {
		return nil, fmt.Errorf("fmm2d: %d sources but %d densities", len(sources), len(densities))
	}
	tree, err := BuildDualTree(targets, sources, opt.Q, opt.MaxLevel)
	if err != nil {
		return nil, err
	}
	return evaluateOnTree(tree, densities, opt)
}

func evaluateOnTree(tree *Tree, densities []float64, opt Options) (*Result, error) {
	tree.BuildLists()
	e := &engine{
		t:    tree,
		opt:  opt,
		ops:  newOperatorSet(opt.Kernel, opt.SurfaceOrder, tree.Nodes[tree.Root].Half),
		dens: make([]float64, len(tree.Src)),
		pot:  make([]float64, len(tree.Trg)),
	}
	for i, orig := range tree.SrcPerm {
		e.dens[i] = densities[orig]
	}
	nsurf := SurfaceCount(opt.SurfaceOrder)
	e.upEquiv = makeVecs(len(tree.Nodes), nsurf)
	e.dnCheck = makeVecs(len(tree.Nodes), nsurf)
	e.dnEquiv = makeVecs(len(tree.Nodes), nsurf)
	e.byLevel = groupByLevel(tree)
	for lvl := range e.byLevel {
		e.ops.at(lvl)
	}

	e.upward()
	if opt.UseFFTM2L {
		e.vPhaseFFT()
	} else {
		e.vPhaseDense()
	}
	e.xPhase()
	e.downward()
	e.wPhase()
	e.uPhase()

	out := make([]float64, len(tree.Trg))
	for i, orig := range tree.TrgPerm {
		out[orig] = e.pot[i]
	}
	return &Result{Potentials: out, Tree: tree, Options: opt}, nil
}

type engine struct {
	t    *Tree
	opt  Options
	ops  *operatorSet
	dens []float64
	pot  []float64

	upEquiv [][]float64
	dnCheck [][]float64
	dnEquiv [][]float64
	byLevel [][]int
}

func makeVecs(n, m int) [][]float64 {
	flat := make([]float64, n*m)
	out := make([][]float64, n)
	for i := range out {
		out[i] = flat[i*m : (i+1)*m]
	}
	return out
}

func groupByLevel(t *Tree) [][]int {
	depth := 0
	for i := range t.Nodes {
		if t.Nodes[i].Level > depth {
			depth = t.Nodes[i].Level
		}
	}
	out := make([][]int, depth+1)
	for i := range t.Nodes {
		out[t.Nodes[i].Level] = append(out[t.Nodes[i].Level], i)
	}
	return out
}

func (e *engine) parallelNodes(nodes []int, fn func(i int)) {
	workers := e.opt.Workers
	if workers > len(nodes) {
		workers = len(nodes)
	}
	if workers <= 1 {
		for _, i := range nodes {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, len(nodes))
	for _, i := range nodes {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func evalSum(k Kernel, targets []Point, acc []float64, sources []Point, q []float64) {
	for i, t := range targets {
		var s float64
		for j, y := range sources {
			s += k.Eval(t.X-y.X, t.Y-y.Y) * q[j]
		}
		acc[i] += s
	}
}

func (e *engine) upward() {
	nsurf := len(e.ops.unitSurf)
	for lvl := len(e.byLevel) - 1; lvl >= 0; lvl-- {
		ops := e.ops.at(lvl)
		e.parallelNodes(e.byLevel[lvl], func(i int) {
			n := &e.t.Nodes[i]
			chk := make([]float64, nsurf)
			if n.Leaf {
				ucPts := placeSurface(e.ops.unitSurf, n.Center, n.Half, checkRadius)
				evalSum(e.opt.Kernel, ucPts, chk, e.t.Src[n.SrcStart:n.SrcEnd], e.dens[n.SrcStart:n.SrcEnd])
			} else {
				tmp := make([]float64, nsurf)
				for _, c := range n.Children {
					if c == nilNode {
						continue
					}
					ops.m2m[e.t.Nodes[c].Quadrant].MulVecTo(tmp, e.upEquiv[c])
					for k := range chk {
						chk[k] += tmp[k]
					}
				}
			}
			ops.uc2ue.MulVecTo(e.upEquiv[i], chk)
		})
	}
}

func (e *engine) vPhaseDense() {
	nsurf := len(e.ops.unitSurf)
	for i := range e.t.Nodes {
		n := &e.t.Nodes[i]
		for _, v := range n.V {
			e.ops.m2lFor(n.Level, vOffset(n, &e.t.Nodes[v]))
		}
	}
	var all []int
	for i := range e.t.Nodes {
		if len(e.t.Nodes[i].V) > 0 {
			all = append(all, i)
		}
	}
	e.parallelNodes(all, func(i int) {
		n := &e.t.Nodes[i]
		tmp := make([]float64, nsurf)
		for _, v := range n.V {
			m := e.ops.m2lFor(n.Level, vOffset(n, &e.t.Nodes[v]))
			m.MulVecTo(tmp, e.upEquiv[v])
			dst := e.dnCheck[i]
			for k := range dst {
				dst[k] += tmp[k]
			}
		}
	})
}

// vPhaseFFT is the spectral V-list translation on the 2-D boundary
// lattice, embedded in a (2p)² cyclic grid.
func (e *engine) vPhaseFFT() {
	p := e.opt.SurfaceOrder
	m := 2 * p
	dim := fft.Dim3{Nx: m, Ny: m, Nz: 1}
	// Grid index of each unit-surface point.
	surfIdx := make([]int, len(e.ops.unitSurf))
	f := float64(p-1) / 2
	for i, u := range e.ops.unitSurf {
		ix := roundInt((u.X + 1) * f)
		iy := roundInt((u.Y + 1) * f)
		surfIdx[i] = dim.Index(ix, iy, 0)
	}

	for lvl := range e.byLevel {
		var targets []int
		sources := map[int32]bool{}
		for _, i := range e.byLevel[lvl] {
			n := &e.t.Nodes[i]
			if len(n.V) == 0 {
				continue
			}
			targets = append(targets, i)
			for _, v := range n.V {
				sources[v] = true
			}
		}
		if len(targets) == 0 {
			continue
		}
		h := e.ops.halfAt(lvl)
		delta := 2 * h / float64(p-1)

		// Spectral kernels per offset.
		kernels := map[[2]int8][]complex128{}
		var kmu sync.Mutex
		kernelHat := func(off [2]int8) []complex128 {
			kmu.Lock()
			if g, ok := kernels[off]; ok {
				kmu.Unlock()
				return g
			}
			kmu.Unlock()
			g := make([]complex128, dim.Len())
			bx := float64(off[0]) * float64(p-1) * delta
			by := float64(off[1]) * float64(p-1) * delta
			for dx := -p + 1; dx < p; dx++ {
				for dy := -p + 1; dy < p; dy++ {
					v := e.opt.Kernel.Eval(bx+float64(dx)*delta, by+float64(dy)*delta)
					g[dim.Index(mod(dx, m), mod(dy, m), 0)] = complex(v, 0)
				}
			}
			fft.Forward3(g, dim)
			kmu.Lock()
			if exist, ok := kernels[off]; ok {
				g = exist
			} else {
				kernels[off] = g
			}
			kmu.Unlock()
			return g
		}
		// Pre-build sequentially for determinism.
		for _, ti := range targets {
			n := &e.t.Nodes[ti]
			for _, v := range n.V {
				kernelHat(vOffset(n, &e.t.Nodes[v]))
			}
		}

		qhat := make(map[int32][]complex128, len(sources))
		var mu sync.Mutex
		srcList := make([]int, 0, len(sources))
		for s := range sources {
			srcList = append(srcList, int(s))
		}
		e.parallelNodes(srcList, func(si int) {
			grid := make([]complex128, dim.Len())
			for k, idx := range surfIdx {
				grid[idx] = complex(e.upEquiv[si][k], 0)
			}
			fft.Forward3(grid, dim)
			mu.Lock()
			qhat[int32(si)] = grid
			mu.Unlock()
		})

		e.parallelNodes(targets, func(ti int) {
			n := &e.t.Nodes[ti]
			acc := make([]complex128, dim.Len())
			for _, v := range n.V {
				ghat := kernelHat(vOffset(n, &e.t.Nodes[v]))
				src := qhat[v]
				for k := range acc {
					acc[k] += ghat[k] * src[k]
				}
			}
			fft.Inverse3(acc, dim)
			dst := e.dnCheck[ti]
			for k, idx := range surfIdx {
				dst[k] += real(acc[idx])
			}
		})
	}
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

func (e *engine) xPhase() {
	var nodes []int
	for i := range e.t.Nodes {
		if len(e.t.Nodes[i].X) > 0 {
			nodes = append(nodes, i)
		}
	}
	e.parallelNodes(nodes, func(i int) {
		n := &e.t.Nodes[i]
		dcPts := placeSurface(e.ops.unitSurf, n.Center, n.Half, equivRadius)
		for _, x := range n.X {
			a := &e.t.Nodes[x]
			evalSum(e.opt.Kernel, dcPts, e.dnCheck[i], e.t.Src[a.SrcStart:a.SrcEnd], e.dens[a.SrcStart:a.SrcEnd])
		}
	})
}

func (e *engine) downward() {
	nsurf := len(e.ops.unitSurf)
	for lvl := 0; lvl < len(e.byLevel); lvl++ {
		ops := e.ops.at(lvl)
		e.parallelNodes(e.byLevel[lvl], func(i int) {
			n := &e.t.Nodes[i]
			if n.Parent != nilNode {
				tmp := make([]float64, nsurf)
				parentOps := e.ops.at(n.Level - 1)
				parentOps.l2l[n.Quadrant].MulVecTo(tmp, e.dnEquiv[n.Parent])
				dst := e.dnCheck[i]
				for k := range dst {
					dst[k] += tmp[k]
				}
			}
			ops.dc2de.MulVecTo(e.dnEquiv[i], e.dnCheck[i])
			if n.Leaf {
				dePts := placeSurface(e.ops.unitSurf, n.Center, n.Half, checkRadius)
				evalSum(e.opt.Kernel, e.t.Trg[n.TrgStart:n.TrgEnd], e.pot[n.TrgStart:n.TrgEnd], dePts, e.dnEquiv[i])
			}
		})
	}
}

func (e *engine) wPhase() {
	leaves := e.t.Leaves()
	e.parallelNodes(leaves, func(i int) {
		n := &e.t.Nodes[i]
		for _, w := range n.W {
			a := &e.t.Nodes[w]
			uePts := placeSurface(e.ops.unitSurf, a.Center, a.Half, equivRadius)
			evalSum(e.opt.Kernel, e.t.Trg[n.TrgStart:n.TrgEnd], e.pot[n.TrgStart:n.TrgEnd], uePts, e.upEquiv[w])
		}
	})
}

func (e *engine) uPhase() {
	leaves := e.t.Leaves()
	e.parallelNodes(leaves, func(i int) {
		n := &e.t.Nodes[i]
		targets := e.t.Trg[n.TrgStart:n.TrgEnd]
		acc := e.pot[n.TrgStart:n.TrgEnd]
		for _, u := range n.U {
			a := &e.t.Nodes[u]
			evalSum(e.opt.Kernel, targets, acc, e.t.Src[a.SrcStart:a.SrcEnd], e.dens[a.SrcStart:a.SrcEnd])
		}
	})
}

// DirectSum evaluates the exact 2-D sums in O(N²).
func DirectSum(points []Point, densities []float64, k Kernel, workers int) []float64 {
	return DirectSumAt(points, points, densities, k, workers)
}

// DirectSumAt evaluates the exact potentials at targets due to sources.
func DirectSumAt(targets, sources []Point, densities []float64, k Kernel, workers int) []float64 {
	if len(sources) != len(densities) {
		panic("fmm2d: DirectSumAt length mismatch")
	}
	if k == nil {
		k = Laplace{}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := len(targets)
	out := make([]float64, n)
	chunk := (n + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			evalSum(k, targets[lo:hi], out[lo:hi], sources, densities)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// RelErrL2 returns the relative L2 error of approx against exact.
func RelErrL2(approx, exact []float64) float64 {
	if len(approx) != len(exact) {
		panic("fmm2d: RelErrL2 length mismatch")
	}
	var num, den float64
	for i := range approx {
		d := approx[i] - exact[i]
		num += d * d
		den += exact[i] * exact[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return 1
	}
	return math.Sqrt(num / den)
}
