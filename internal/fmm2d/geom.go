// Package fmm2d implements the kernel-independent fast multipole method
// in two dimensions — the quadtree variant the paper describes alongside
// the octree (§III-A; its Figure 3 illustrates the U, V, W and X lists
// on exactly such an adaptive quadtree). The structure mirrors
// internal/fmm: adaptive quadtree with per-node source/target ranges,
// the four interaction lists, equivalent-surface translation operators
// with SVD-regularized pseudo-inverses, dense and FFT-accelerated M2L,
// and a direct O(N²) baseline for validation.
package fmm2d

import (
	"fmt"
	"math"

	"dvfsroofline/internal/stats"
)

// Point is a location in R².
type Point struct {
	X, Y float64
}

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns s·p.
func (p Point) Scale(s float64) Point { return Point{s * p.X, s * p.Y} }

// MaxAbs returns the Chebyshev norm of p.
func (p Point) MaxAbs() float64 {
	return math.Max(math.Abs(p.X), math.Abs(p.Y))
}

// Distribution selects a synthetic 2-D point distribution.
type Distribution int

const (
	// Uniform fills the unit square uniformly.
	Uniform Distribution = iota
	// Disk distributes points with a center-heavy density on a disk —
	// the non-uniform case that exercises the adaptive lists, like the
	// quadtree of the paper's Figure 3.
	Disk
	// Circle places points on a circle (a 2-D boundary-integral
	// geometry).
	Circle
)

func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Disk:
		return "disk"
	case Circle:
		return "circle"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// GeneratePoints returns n seeded points of the distribution inside the
// unit square [0,1)².
func GeneratePoints(d Distribution, n int, seed int64) []Point {
	if n <= 0 {
		panic(fmt.Sprintf("fmm2d: invalid point count %d", n))
	}
	rng := stats.NewRNG(seed)
	pts := make([]Point, n)
	switch d {
	case Uniform:
		for i := range pts {
			pts[i] = Point{rng.Float64(), rng.Float64()}
		}
	case Disk:
		for i := range pts {
			// r ~ u² concentrates points near the center.
			r := 0.45 * rng.Float64() * rng.Float64()
			th := 2 * math.Pi * rng.Float64()
			pts[i] = Point{0.5 + r*math.Cos(th), 0.5 + r*math.Sin(th)}
		}
	case Circle:
		for i := range pts {
			th := 2 * math.Pi * rng.Float64()
			pts[i] = Point{0.5 + 0.45*math.Cos(th), 0.5 + 0.45*math.Sin(th)}
		}
	default:
		panic(fmt.Sprintf("fmm2d: unknown distribution %d", int(d)))
	}
	return pts
}

// GenerateDensities returns n seeded source densities in [-1, 1).
func GenerateDensities(n int, seed int64) []float64 {
	rng := stats.NewRNG(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = 2*rng.Float64() - 1
	}
	return out
}
