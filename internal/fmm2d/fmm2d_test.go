package fmm2d

import (
	"math"
	"testing"
)

func TestTreeValidates(t *testing.T) {
	for _, d := range []Distribution{Uniform, Disk, Circle} {
		pts := GeneratePoints(d, 3000, 1)
		tree, err := BuildTree(pts, 30, 24)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := tree.Validate(); err != nil {
			t.Errorf("%v: %v", d, err)
		}
	}
}

func TestTreeErrors(t *testing.T) {
	pts := GeneratePoints(Uniform, 10, 1)
	if _, err := BuildTree(nil, 10, 20); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := BuildTree(pts, 0, 20); err == nil {
		t.Error("Q=0 accepted")
	}
	if _, err := BuildDualTree(nil, pts, 10, 20); err == nil {
		t.Error("empty targets accepted")
	}
}

// isAncestorOrSelf reports whether a is an ancestor of b (or b itself).
func isAncestorOrSelf(t *Tree, a, b int) bool {
	for b != nilNode {
		if b == a {
			return true
		}
		b = t.Nodes[b].Parent
	}
	return false
}

func TestInteractionCoverage2D(t *testing.T) {
	// The exact-coverage invariant on the quadtree — the paper's
	// Figure 3 structure: every (target leaf, source leaf) pair is
	// accounted once across U/V/W/X.
	for _, d := range []Distribution{Uniform, Disk} {
		pts := GeneratePoints(d, 1200, 3)
		tree, err := BuildTree(pts, 15, 24)
		if err != nil {
			t.Fatal(err)
		}
		tree.BuildLists()
		leaves := tree.Leaves()
		for _, tb := range leaves {
			var ancestors []int
			for a := tb; a != nilNode; a = tree.Nodes[a].Parent {
				ancestors = append(ancestors, a)
			}
			for _, sb := range leaves {
				cover := 0
				for _, u := range tree.Nodes[tb].U {
					if int(u) == sb {
						cover++
					}
				}
				for _, anc := range ancestors {
					for _, v := range tree.Nodes[anc].V {
						if isAncestorOrSelf(tree, int(v), sb) {
							cover++
						}
					}
					for _, x := range tree.Nodes[anc].X {
						if int(x) == sb {
							cover++
						}
					}
				}
				for _, w := range tree.Nodes[tb].W {
					if isAncestorOrSelf(tree, int(w), sb) {
						cover++
					}
				}
				if cover != 1 {
					t.Fatalf("%v: pair (%d, %d) covered %d times", d, tb, sb, cover)
				}
			}
		}
	}
}

func TestVListBound2D(t *testing.T) {
	// In 2-D the V list is bounded by 6²-3² = 27.
	pts := GeneratePoints(Disk, 4000, 4)
	tree, err := BuildTree(pts, 20, 24)
	if err != nil {
		t.Fatal(err)
	}
	tree.BuildLists()
	for i := range tree.Nodes {
		if len(tree.Nodes[i].V) > 27 {
			t.Fatalf("node %d has %d V entries, bound is 27", i, len(tree.Nodes[i].V))
		}
	}
}

func TestSurfaceGrid2D(t *testing.T) {
	for _, p := range []int{2, 4, 8} {
		g := SurfaceGrid(p)
		if len(g) != SurfaceCount(p) {
			t.Errorf("p=%d: %d points, want %d", p, len(g), SurfaceCount(p))
		}
		for _, u := range g {
			if math.Abs(u.MaxAbs()-1) > 1e-12 {
				t.Fatalf("p=%d: point %v not on boundary", p, u)
			}
		}
	}
	if SurfaceCount(8) != 28 {
		t.Error("SurfaceCount(8) != 28")
	}
}

func TestAccuracy2DUniform(t *testing.T) {
	pts := GeneratePoints(Uniform, 3000, 5)
	dens := GenerateDensities(3000, 6)
	res, err := Evaluate(pts, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSum(pts, dens, nil, 0)
	e := RelErrL2(res.Potentials, exact)
	if e > 1e-4 {
		t.Errorf("2-D uniform error %.2e", e)
	}
	t.Logf("2-D uniform N=3000: rel err %.2e", e)
}

func TestAccuracy2DAdaptive(t *testing.T) {
	pts := GeneratePoints(Disk, 3000, 7)
	dens := GenerateDensities(3000, 8)
	res, err := Evaluate(pts, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	tree := res.Tree
	var totalW int
	for i := range tree.Nodes {
		totalW += len(tree.Nodes[i].W)
	}
	if totalW == 0 {
		t.Error("disk distribution should exercise W/X lists")
	}
	exact := DirectSum(pts, dens, nil, 0)
	if e := RelErrL2(res.Potentials, exact); e > 1e-4 {
		t.Errorf("2-D adaptive error %.2e", e)
	}
}

func TestFFT2DMatchesDense(t *testing.T) {
	pts := GeneratePoints(Disk, 2500, 9)
	dens := GenerateDensities(2500, 10)
	a, err := Evaluate(pts, dens, Options{Q: 25})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(pts, dens, Options{Q: 25, UseFFTM2L: true})
	if err != nil {
		t.Fatal(err)
	}
	// The two paths are algebraically identical; the tolerance covers
	// FFT round-off amplified by cancellation (±densities under the
	// sign-changing log kernel make the potentials' norm small relative
	// to the intermediate check potentials).
	if d := RelErrL2(b.Potentials, a.Potentials); d > 1e-7 {
		t.Errorf("2-D FFT M2L differs from dense by %.2e", d)
	}
}

func TestEvaluateAt2D(t *testing.T) {
	sources := GeneratePoints(Disk, 2000, 11)
	targets := GeneratePoints(Circle, 1000, 12)
	dens := GenerateDensities(2000, 13)
	res, err := EvaluateAt(targets, sources, dens, Options{Q: 30})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSumAt(targets, sources, dens, nil, 0)
	if e := RelErrL2(res.Potentials, exact); e > 1e-4 {
		t.Errorf("2-D dual-set error %.2e", e)
	}
}

func TestKernelIndependence2D(t *testing.T) {
	pts := GeneratePoints(Uniform, 2000, 14)
	dens := GenerateDensities(2000, 15)
	k := Yukawa2D{Lambda: 0.8}
	res, err := Evaluate(pts, dens, Options{Q: 30, Kernel: k})
	if err != nil {
		t.Fatal(err)
	}
	exact := DirectSum(pts, dens, k, 0)
	if e := RelErrL2(res.Potentials, exact); e > 5e-4 {
		t.Errorf("2-D yukawa error %.2e", e)
	}
}

func TestAccuracyImprovesWithOrder2D(t *testing.T) {
	pts := GeneratePoints(Uniform, 2000, 16)
	dens := GenerateDensities(2000, 17)
	exact := DirectSum(pts, dens, nil, 0)
	var errs []float64
	for _, p := range []int{4, 8, 12} {
		res, err := Evaluate(pts, dens, Options{Q: 30, SurfaceOrder: p})
		if err != nil {
			t.Fatal(err)
		}
		errs = append(errs, RelErrL2(res.Potentials, exact))
	}
	if !(errs[0] > errs[1] && errs[1] > errs[2]) {
		t.Errorf("errors not decreasing with order: %v", errs)
	}
	t.Logf("2-D convergence p=4,8,12: %.2e %.2e %.2e", errs[0], errs[1], errs[2])
}

func TestLaplace2DValues(t *testing.T) {
	k := Laplace{}
	if k.Eval(0, 0) != 0 {
		t.Error("self-interaction not zero")
	}
	// K(r=1) = 0 for the log kernel.
	if math.Abs(k.Eval(1, 0)) > 1e-15 {
		t.Errorf("K(1) = %v, want 0", k.Eval(1, 0))
	}
	// K(r=e) = -1/(2π).
	if got := k.Eval(math.E, 0); math.Abs(got+1/(2*math.Pi)) > 1e-15 {
		t.Errorf("K(e) = %v, want %v", got, -1/(2*math.Pi))
	}
}

func TestDeterminism2D(t *testing.T) {
	pts := GeneratePoints(Disk, 1500, 18)
	dens := GenerateDensities(1500, 19)
	a, err := Evaluate(pts, dens, Options{Q: 20, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(pts, dens, Options{Q: 20, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Potentials {
		if a.Potentials[i] != b.Potentials[i] {
			t.Fatal("2-D evaluation not deterministic across worker counts")
		}
	}
}

func TestPointsInUnitSquare(t *testing.T) {
	for _, d := range []Distribution{Uniform, Disk, Circle} {
		for _, p := range GeneratePoints(d, 1000, 20) {
			if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
				t.Fatalf("%v: point %v outside unit square", d, p)
			}
		}
	}
}
