package fmm2d

import (
	"sync"

	"dvfsroofline/internal/linalg"
)

// Surface radii, as in the 3-D implementation: equivalent densities live
// on the box boundary (FFT-compatible lattice), check potentials just
// inside the 3h exclusion zone of non-adjacent squares.
const (
	equivRadius = 1.0
	checkRadius = 2.95
	rcond       = 1e-9
)

// SurfaceGrid returns the boundary lattice of [-1,1]² with p points per
// edge: 4(p-1) points.
func SurfaceGrid(p int) []Point {
	if p < 2 {
		panic("fmm2d: surface order must be at least 2")
	}
	var pts []Point
	step := 2.0 / float64(p-1)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			if i == 0 || i == p-1 || j == 0 || j == p-1 {
				pts = append(pts, Point{-1 + float64(i)*step, -1 + float64(j)*step})
			}
		}
	}
	return pts
}

// SurfaceCount returns the number of points of a p-order surface: 4(p-1).
func SurfaceCount(p int) int { return 4 * (p - 1) }

func placeSurface(unit []Point, c Point, h, radius float64) []Point {
	out := make([]Point, len(unit))
	s := h * radius
	for i, u := range unit {
		out[i] = Point{c.X + s*u.X, c.Y + s*u.Y}
	}
	return out
}

// levelOps holds one level's translation operators. Built per level, so
// non-scale-invariant kernels (like the 2-D log kernel) are handled
// exactly.
type levelOps struct {
	uc2ue *linalg.Matrix
	dc2de *linalg.Matrix
	m2m   [4]*linalg.Matrix
	l2l   [4]*linalg.Matrix

	m2l   map[[2]int8]*linalg.Matrix
	m2lMu sync.Mutex
}

type operatorSet struct {
	kernel   Kernel
	unitSurf []Point
	rootHalf float64

	mu     sync.Mutex
	levels map[int]*levelOps
}

func newOperatorSet(k Kernel, surfaceOrder int, rootHalf float64) *operatorSet {
	return &operatorSet{
		kernel:   k,
		unitSurf: SurfaceGrid(surfaceOrder),
		rootHalf: rootHalf,
		levels:   make(map[int]*levelOps),
	}
}

func (o *operatorSet) halfAt(level int) float64 {
	h := o.rootHalf
	for i := 0; i < level; i++ {
		h /= 2
	}
	return h
}

func (o *operatorSet) kernelMatrix(targets, sources []Point) *linalg.Matrix {
	m := linalg.NewMatrix(len(targets), len(sources))
	for i, t := range targets {
		row := m.Row(i)
		for j, s := range sources {
			row[j] = o.kernel.Eval(t.X-s.X, t.Y-s.Y)
		}
	}
	return m
}

func (o *operatorSet) at(level int) *levelOps {
	o.mu.Lock()
	defer o.mu.Unlock()
	if ops, ok := o.levels[level]; ok {
		return ops
	}
	h := o.halfAt(level)
	origin := Point{}
	ue := placeSurface(o.unitSurf, origin, h, equivRadius)
	uc := placeSurface(o.unitSurf, origin, h, checkRadius)
	dc := placeSurface(o.unitSurf, origin, h, equivRadius)
	de := placeSurface(o.unitSurf, origin, h, checkRadius)

	ops := &levelOps{
		uc2ue: linalg.PseudoInverse(o.kernelMatrix(uc, ue), rcond),
		dc2de: linalg.PseudoInverse(o.kernelMatrix(dc, de), rcond),
		m2l:   make(map[[2]int8]*linalg.Matrix),
	}
	ch := h / 2
	for q := 0; q < 4; q++ {
		cc := quadrantCenter(origin, h, q)
		childUE := placeSurface(o.unitSurf, cc, ch, equivRadius)
		childDC := placeSurface(o.unitSurf, cc, ch, equivRadius)
		ops.m2m[q] = o.kernelMatrix(uc, childUE)
		ops.l2l[q] = o.kernelMatrix(childDC, de)
	}
	o.levels[level] = ops
	return ops
}

func (o *operatorSet) m2lFor(level int, off [2]int8) *linalg.Matrix {
	ops := o.at(level)
	ops.m2lMu.Lock()
	if m, ok := ops.m2l[off]; ok {
		ops.m2lMu.Unlock()
		return m
	}
	ops.m2lMu.Unlock()

	h := o.halfAt(level)
	src := placeSurface(o.unitSurf, Point{}, h, equivRadius)
	tc := Point{2 * h * float64(off[0]), 2 * h * float64(off[1])}
	dst := placeSurface(o.unitSurf, tc, h, equivRadius)
	m := o.kernelMatrix(dst, src)

	ops.m2lMu.Lock()
	if exist, ok := ops.m2l[off]; ok {
		m = exist
	} else {
		ops.m2l[off] = m
	}
	ops.m2lMu.Unlock()
	return m
}

func vOffset(t, s *Node) [2]int8 {
	edge := 2 * t.Half
	d := t.Center.Sub(s.Center)
	return [2]int8{int8(roundInt(d.X / edge)), int8(roundInt(d.Y / edge))}
}

func roundInt(x float64) int {
	if x >= 0 {
		return int(x + 0.5)
	}
	return -int(-x + 0.5)
}
