package powermon

import (
	"fmt"
	"math"

	"dvfsroofline/internal/stats"
)

// Trace segmentation: the paper's goal is to "identify where a program
// or the underlying hardware spends its energy". Phased applications
// such as the FMM show up in a PowerMon trace as a piecewise-constant
// power profile; this file recovers those phases from the samples alone
// (no knowledge of the application), so measured per-phase energy can be
// compared against the model's per-phase predictions.

// Segment is one detected constant-power region of a trace.
type Segment struct {
	Start, End float64 // seconds, [Start, End)
	MeanPower  float64 // watts
	Energy     float64 // joules, MeanPower x duration
}

// Duration returns the segment length in seconds.
func (s Segment) Duration() float64 { return s.End - s.Start }

// SegmentTrace partitions a measurement into constant-power segments by
// recursive binary splitting: the best split point of a region is the
// one maximizing the mean-power difference between its two sides, and a
// split is accepted while that difference exceeds both the noise floor
// (estimated from first differences) and minJump watts. Regions shorter
// than minDuration seconds are never split.
func (m *Meter) SegmentTrace(meas Measurement, minDuration, minJump float64) ([]Segment, error) {
	if len(meas.Samples) < 4 {
		return nil, fmt.Errorf("powermon: too few samples to segment")
	}
	if minDuration <= 0 {
		minDuration = 4 / m.cfg.SampleRate
	}
	dt := 1 / m.cfg.SampleRate
	minLen := int(minDuration / dt)
	if minLen < 2 {
		minLen = 2
	}

	// Noise floor: median absolute first difference, scaled. Robust to
	// the step changes themselves (they are rare among the diffs).
	noise := stats.MedianAbsDiff(meas.Samples) * 3
	if minJump < noise {
		minJump = noise
	}

	var bounds []int
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2*minLen {
			return
		}
		// Prefix sums for O(1) mean queries.
		best, bestGap := -1, 0.0
		var sum float64
		prefix := make([]float64, hi-lo+1)
		for i := lo; i < hi; i++ {
			sum += meas.Samples[i]
			prefix[i-lo+1] = sum
		}
		total := prefix[hi-lo]
		for cut := lo + minLen; cut <= hi-minLen; cut++ {
			left := prefix[cut-lo] / float64(cut-lo)
			right := (total - prefix[cut-lo]) / float64(hi-cut)
			if gap := math.Abs(left - right); gap > bestGap {
				bestGap, best = gap, cut
			}
		}
		if best < 0 || bestGap < minJump {
			return
		}
		split(lo, best)
		bounds = append(bounds, best)
		split(best, hi)
	}
	split(0, len(meas.Samples))

	// Assemble segments from the sorted boundaries (recursion emits them
	// in order).
	edges := append([]int{0}, bounds...)
	edges = append(edges, len(meas.Samples))
	out := make([]Segment, 0, len(edges)-1)
	for i := 1; i < len(edges); i++ {
		lo, hi := edges[i-1], edges[i]
		var sum float64
		for j := lo; j < hi; j++ {
			sum += meas.Samples[j]
		}
		mean := sum / float64(hi-lo)
		start := float64(lo) * dt
		end := float64(hi) * dt
		if end > meas.Duration {
			end = meas.Duration
		}
		out = append(out, Segment{
			Start:     start,
			End:       end,
			MeanPower: mean,
			Energy:    mean * (end - start),
		})
	}
	return out, nil
}
