package powermon

import (
	"fmt"
	"math"

	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

// Trace segmentation: the paper's goal is to "identify where a program
// or the underlying hardware spends its energy". Phased applications
// such as the FMM show up in a PowerMon trace as a piecewise-constant
// power profile; this file recovers those phases from the samples alone
// (no knowledge of the application), so measured per-phase energy can be
// compared against the model's per-phase predictions.

// Segment is one detected constant-power region of a trace.
type Segment struct {
	Start, End units.Second // [Start, End)
	MeanPower  units.Watt
	Energy     units.Joule // MeanPower x duration
}

// Duration returns the segment length.
func (s Segment) Duration() units.Second { return s.End - s.Start }

// SegmentTrace partitions a measurement into constant-power segments by
// recursive binary splitting: the best split point of a region is the
// one maximizing the mean-power difference between its two sides, and a
// split is accepted while that difference exceeds both the noise floor
// (estimated from first differences) and minJump. Regions shorter than
// minDuration are never split.
func (m *Meter) SegmentTrace(meas Measurement, minDuration units.Second, minJump units.Watt) ([]Segment, error) {
	if len(meas.Samples) < 4 {
		return nil, fmt.Errorf("powermon: too few samples to segment")
	}
	samples := make([]float64, len(meas.Samples))
	for i, v := range meas.Samples {
		samples[i] = float64(v)
	}
	rate := float64(m.cfg.SampleRate)
	minDur := float64(minDuration)
	if minDur <= 0 {
		minDur = 4 / rate
	}
	jump := float64(minJump)
	dt := 1 / rate
	minLen := int(minDur / dt)
	if minLen < 2 {
		minLen = 2
	}

	// Noise floor: median absolute first difference, scaled. Robust to
	// the step changes themselves (they are rare among the diffs).
	noise := stats.MedianAbsDiff(samples) * 3
	if jump < noise {
		jump = noise
	}

	var bounds []int
	var split func(lo, hi int)
	split = func(lo, hi int) {
		if hi-lo < 2*minLen {
			return
		}
		// Prefix sums for O(1) mean queries.
		best, bestGap := -1, 0.0
		var sum float64
		prefix := make([]float64, hi-lo+1)
		for i := lo; i < hi; i++ {
			sum += samples[i]
			prefix[i-lo+1] = sum
		}
		total := prefix[hi-lo]
		for cut := lo + minLen; cut <= hi-minLen; cut++ {
			left := prefix[cut-lo] / float64(cut-lo)
			right := (total - prefix[cut-lo]) / float64(hi-cut)
			if gap := math.Abs(left - right); gap > bestGap {
				bestGap, best = gap, cut
			}
		}
		if best < 0 || bestGap < jump {
			return
		}
		split(lo, best)
		bounds = append(bounds, best)
		split(best, hi)
	}
	split(0, len(samples))

	// Assemble segments from the sorted boundaries (recursion emits them
	// in order).
	edges := append([]int{0}, bounds...)
	edges = append(edges, len(samples))
	out := make([]Segment, 0, len(edges)-1)
	for i := 1; i < len(edges); i++ {
		lo, hi := edges[i-1], edges[i]
		var sum float64
		for j := lo; j < hi; j++ {
			sum += samples[j]
		}
		mean := sum / float64(hi-lo)
		start := float64(lo) * dt
		end := float64(hi) * dt
		if end > float64(meas.Duration) {
			end = float64(meas.Duration)
		}
		out = append(out, Segment{
			Start:     units.Second(start),
			End:       units.Second(end),
			MeanPower: units.Watt(mean),
			Energy:    units.Joule(mean * (end - start)),
		})
	}
	return out, nil
}
