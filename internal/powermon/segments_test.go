package powermon

import (
	"math"
	"testing"

	"dvfsroofline/internal/units"
)

// stepTrace builds a piecewise-constant power function.
func stepTrace(levels []units.Watt, segDur float64) (func(units.Second) units.Watt, units.Second) {
	total := units.Second(segDur * float64(len(levels)))
	return func(t units.Second) units.Watt {
		idx := int(float64(t) / segDur)
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		return levels[idx]
	}, total
}

func TestSegmentTraceCleanSteps(t *testing.T) {
	levels := []units.Watt{5, 9, 6.5}
	trace, dur := stepTrace(levels, 0.5)
	m := MustMeter(Config{SampleRate: 1024}, 1) // noiseless
	meas, err := m.Measure(trace, dur)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := m.SegmentTrace(meas, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("found %d segments, want 3: %+v", len(segs), segs)
	}
	for i, want := range levels {
		if math.Abs(float64(segs[i].MeanPower-want)) > 0.05 {
			t.Errorf("segment %d mean %.2f, want %.2f", i, segs[i].MeanPower, want)
		}
		if math.Abs(float64(segs[i].Duration())-0.5) > 0.02 {
			t.Errorf("segment %d duration %.3f, want 0.5", i, segs[i].Duration())
		}
	}
}

func TestSegmentTraceWithNoise(t *testing.T) {
	levels := []units.Watt{6, 10}
	trace, dur := stepTrace(levels, 0.8)
	m := MustMeter(DefaultConfig(), 3)
	meas, err := m.Measure(trace, dur)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := m.SegmentTrace(meas, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("found %d segments, want 2", len(segs))
	}
	// Boundary within 30 ms of the true step.
	if math.Abs(float64(segs[0].End)-0.8) > 0.03 {
		t.Errorf("boundary at %.3f, want 0.8", segs[0].End)
	}
}

func TestSegmentTraceFlat(t *testing.T) {
	m := MustMeter(DefaultConfig(), 5)
	meas, err := m.Measure(func(units.Second) units.Watt { return 7 }, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := m.SegmentTrace(meas, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("flat trace split into %d segments", len(segs))
	}
}

func TestSegmentEnergySumsToTotal(t *testing.T) {
	levels := []units.Watt{5, 8, 6, 9}
	trace, dur := stepTrace(levels, 0.4)
	m := MustMeter(Config{SampleRate: 1024}, 7)
	meas, err := m.Measure(trace, dur)
	if err != nil {
		t.Fatal(err)
	}
	segs, err := m.SegmentTrace(meas, 0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var sum units.Joule
	for _, s := range segs {
		sum += s.Energy
	}
	if rel := math.Abs(float64(sum-meas.Energy)) / float64(meas.Energy); rel > 0.01 {
		t.Errorf("segment energies sum to %.3f vs measured %.3f", sum, meas.Energy)
	}
}

func TestSegmentTraceTooShort(t *testing.T) {
	m := MustMeter(DefaultConfig(), 9)
	if _, err := m.SegmentTrace(Measurement{Samples: []units.Watt{1, 2}}, 0, 0); err == nil {
		t.Error("expected error for too-short trace")
	}
}
