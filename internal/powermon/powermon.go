// Package powermon simulates the PowerMon 2 measurement device of Bedard
// et al. (paper §II-B): an in-line power meter between the supply and the
// Jetson TK1 that samples direct current and voltage at up to 1024 Hz.
//
// The meter observes only an instantaneous power trace (watts as a
// function of time); energy is recovered by integrating discrete samples,
// exactly as the paper's measurement pipeline does. The simulation
// includes the device's principal error sources — per-session gain error
// from the sense-resistor tolerance, additive sample noise, and ADC
// quantization — all driven by a seeded generator so experiments are
// reproducible.
//
// Substitution note (DESIGN.md §2): this package replaces the physical
// PowerMon 2 board. The modeling pipeline obtains every "measured" joule
// through this sampled path, never from the simulator's closed-form
// energy, so measurement error is part of the reproduction.
package powermon

import (
	"fmt"
	"math"

	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

// MaxSampleRate is the PowerMon 2's maximum sampling rate in Hz.
const MaxSampleRate = 1024.0

// MaxSamples bounds one measurement session: about 68 minutes at full
// rate, three orders of magnitude above any run the harnesses produce
// (microbenchmark windows are fractions of a second). The bound exists
// because Measure's duration can descend from untrusted input — an
// energyd autotune body with absurd operation counts yields an absurd
// simulated runtime — and the sample buffer must not be sized by it.
const MaxSamples = 4 << 20

// Config describes one measurement session.
type Config struct {
	SampleRate units.Hertz // samples per second; clamped to MaxSampleRate
	GainSigma  units.Ratio // relative std-dev of the per-measurement gain error
	NoiseSigma units.Watt  // additive white noise per sample
	QuantumW   units.Watt  // ADC quantization step (0 disables)

	// Faults, if non-nil, intercepts the measurement session: it may
	// abort the session before the first sample (a meter disconnect) and
	// rewrite individual samples (dropouts, spikes). internal/faults
	// provides the standard deterministic implementation; nil injects
	// nothing.
	Faults FaultInjector
}

// Validate reports physically meaningless configurations.
func (c Config) Validate() error {
	if c.GainSigma < 0 || c.NoiseSigma < 0 || c.QuantumW < 0 {
		return fmt.Errorf("powermon: negative noise parameter in %+v", c)
	}
	return nil
}

// FaultInjector intercepts one measurement session. Implementations
// must be deterministic for reproducibility; internal/faults derives
// them from the sample's identity. The meter calls BeginMeasure once
// per session before sampling — a non-nil error aborts the measurement
// — and ObserveSample once per recorded sample, with the value the
// meter would record (clean) and the previously recorded sample (prev);
// the return value is what the meter stores.
type FaultInjector interface {
	BeginMeasure(duration units.Second, samples int) error
	ObserveSample(i int, clean, prev units.Watt) units.Watt
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: full rate, 3 % gain tolerance, 10 mW sample noise, and a
// 5 mW ADC step (12-bit converter over a ~20 W range).
func DefaultConfig() Config {
	return Config{SampleRate: MaxSampleRate, GainSigma: 0.030, NoiseSigma: 0.010, QuantumW: 0.005}
}

// Meter is a simulated PowerMon 2. Create one per experiment with NewMeter;
// measurements drawn from the same meter share its random stream, so a
// fixed seed reproduces an entire measurement campaign.
type Meter struct {
	cfg Config
	rng *stats.RNG
}

// NewMeter returns a meter with the given configuration and seed. A
// configuration with negative noise parameters is a caller bug on a
// hand-built Config but reachable from user input (flag and config
// plumbing), so it is reported as an error rather than a panic.
func NewMeter(cfg Config, seed int64) (*Meter, error) {
	if cfg.SampleRate <= 0 || cfg.SampleRate > MaxSampleRate {
		cfg.SampleRate = MaxSampleRate
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Meter{cfg: cfg, rng: stats.NewRNG(seed)}, nil
}

// MustMeter is NewMeter for statically known-good configurations; it
// panics on an invalid one. Tests, benchmarks and examples use it.
func MustMeter(cfg Config, seed int64) *Meter {
	m, err := NewMeter(cfg, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Measurement is the outcome of sampling one run.
type Measurement struct {
	Duration  units.Second // time observed
	Samples   []units.Watt // sampled power values
	Energy    units.Joule  // trapezoidal integral of Samples
	MeanPower units.Watt   // Energy / Duration
}

// Measure samples the power trace over [0, duration] and integrates the
// samples into an energy estimate. The trace function must be defined on
// the whole interval. Runs shorter than two sample periods cannot be
// integrated and yield an error; callers should repeat short kernels
// until they fill a measurable window (as the paper's microbenchmark
// harness does).
//
// When duration does not fall on the sample grid, one extra sample is
// taken at t = duration itself so the closing partial interval
// [(n-1)·dt, duration] is integrated rather than silently dropped —
// without it every measurement under-reads by up to one sample period of
// power.
func (m *Meter) Measure(trace func(t units.Second) units.Watt, duration units.Second) (Measurement, error) {
	dur := float64(duration)
	if dur <= 0 || math.IsNaN(dur) || math.IsInf(dur, 0) {
		return Measurement{}, fmt.Errorf("powermon: invalid duration %g", dur)
	}
	rate := float64(m.cfg.SampleRate)
	// Reject oversized runs on the float product, before the conversion
	// to int below can overflow for astronomically long durations.
	if dur*rate > MaxSamples-1 {
		return Measurement{}, fmt.Errorf("powermon: run of %gs needs more than %d samples at %g Hz; split or subsample the run", dur, MaxSamples, rate)
	}
	dt := 1 / rate
	n := int(dur/dt) + 1
	if n < 3 {
		return Measurement{}, fmt.Errorf("powermon: run of %gs too short to sample at %g Hz", dur, rate)
	}
	// The last grid point sits at (n-1)·dt <= duration. Unless the run is
	// grid-aligned, a tail of up to one sample period remains; close it
	// with one extra sample at the trailing edge.
	tail := dur - float64(n-1)*dt
	total := n
	if tail > dt*1e-9 {
		total = n + 1
	}
	if f := m.cfg.Faults; f != nil {
		if err := f.BeginMeasure(duration, total); err != nil {
			return Measurement{}, fmt.Errorf("powermon: %w", err)
		}
	}
	gain := m.rng.Normal(1, float64(m.cfg.GainSigma))
	samples := make([]units.Watt, total)
	for i := 0; i < total; i++ {
		t := float64(i) * dt
		if t > dur {
			t = dur // the appended closing sample
		}
		v := float64(trace(units.Second(t)))*gain + m.rng.Normal(0, float64(m.cfg.NoiseSigma))
		if q := float64(m.cfg.QuantumW); q > 0 {
			v = math.Round(v/q) * q
		}
		if v < 0 {
			v = 0
		}
		if f := m.cfg.Faults; f != nil {
			var prev units.Watt
			if i > 0 {
				prev = samples[i-1]
			}
			v = float64(f.ObserveSample(i, units.Watt(v), prev))
		}
		samples[i] = units.Watt(v)
	}
	// Trapezoidal integration: full sample periods over the grid, then
	// the closing trapezoid over the partial tail interval.
	var energy float64
	for i := 1; i < total; i++ {
		step := dt
		if i == n {
			step = tail
		}
		energy += 0.5 * (float64(samples[i-1]) + float64(samples[i])) * step
	}
	return Measurement{
		Duration:  duration,
		Samples:   samples,
		Energy:    units.Joule(energy),
		MeanPower: units.Watt(energy / dur),
	}, nil
}

// MinDuration returns the shortest run the meter can integrate with at
// least k samples. Harnesses use it to size kernel repetition counts.
func (m *Meter) MinDuration(k int) units.Second {
	if k < 3 {
		k = 3
	}
	return units.Second(float64(k) / float64(m.cfg.SampleRate))
}

// SampleRate returns the configured sampling rate.
func (m *Meter) SampleRate() units.Hertz { return m.cfg.SampleRate }
