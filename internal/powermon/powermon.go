// Package powermon simulates the PowerMon 2 measurement device of Bedard
// et al. (paper §II-B): an in-line power meter between the supply and the
// Jetson TK1 that samples direct current and voltage at up to 1024 Hz.
//
// The meter observes only an instantaneous power trace (watts as a
// function of time); energy is recovered by integrating discrete samples,
// exactly as the paper's measurement pipeline does. The simulation
// includes the device's principal error sources — per-session gain error
// from the sense-resistor tolerance, additive sample noise, and ADC
// quantization — all driven by a seeded generator so experiments are
// reproducible.
//
// Substitution note (DESIGN.md §2): this package replaces the physical
// PowerMon 2 board. The modeling pipeline obtains every "measured" joule
// through this sampled path, never from the simulator's closed-form
// energy, so measurement error is part of the reproduction.
package powermon

import (
	"fmt"
	"math"

	"dvfsroofline/internal/stats"
)

// MaxSampleRate is the PowerMon 2's maximum sampling rate in Hz.
const MaxSampleRate = 1024.0

// Config describes one measurement session.
type Config struct {
	SampleRate float64 // samples per second; clamped to MaxSampleRate
	GainSigma  float64 // relative std-dev of the per-measurement gain error
	NoiseSigma float64 // additive white noise per sample, in watts
	QuantumW   float64 // ADC quantization step in watts (0 disables)

	// Faults, if non-nil, intercepts the measurement session: it may
	// abort the session before the first sample (a meter disconnect) and
	// rewrite individual samples (dropouts, spikes). internal/faults
	// provides the standard deterministic implementation; nil injects
	// nothing.
	Faults FaultInjector
}

// Validate reports physically meaningless configurations.
func (c Config) Validate() error {
	if c.GainSigma < 0 || c.NoiseSigma < 0 || c.QuantumW < 0 {
		return fmt.Errorf("powermon: negative noise parameter in %+v", c)
	}
	return nil
}

// FaultInjector intercepts one measurement session. Implementations
// must be deterministic for reproducibility; internal/faults derives
// them from the sample's identity. The meter calls BeginMeasure once
// per session before sampling — a non-nil error aborts the measurement
// — and ObserveSample once per recorded sample, with the value the
// meter would record (clean) and the previously recorded sample (prev);
// the return value is what the meter stores.
type FaultInjector interface {
	BeginMeasure(duration float64, samples int) error
	ObserveSample(i int, clean, prev float64) float64
}

// DefaultConfig returns the configuration used throughout the paper's
// experiments: full rate, 3 % gain tolerance, 10 mW sample noise, and a
// 5 mW ADC step (12-bit converter over a ~20 W range).
func DefaultConfig() Config {
	return Config{SampleRate: MaxSampleRate, GainSigma: 0.030, NoiseSigma: 0.010, QuantumW: 0.005}
}

// Meter is a simulated PowerMon 2. Create one per experiment with NewMeter;
// measurements drawn from the same meter share its random stream, so a
// fixed seed reproduces an entire measurement campaign.
type Meter struct {
	cfg Config
	rng *stats.RNG
}

// NewMeter returns a meter with the given configuration and seed. A
// configuration with negative noise parameters is a caller bug on a
// hand-built Config but reachable from user input (flag and config
// plumbing), so it is reported as an error rather than a panic.
func NewMeter(cfg Config, seed int64) (*Meter, error) {
	if cfg.SampleRate <= 0 || cfg.SampleRate > MaxSampleRate {
		cfg.SampleRate = MaxSampleRate
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Meter{cfg: cfg, rng: stats.NewRNG(seed)}, nil
}

// MustMeter is NewMeter for statically known-good configurations; it
// panics on an invalid one. Tests, benchmarks and examples use it.
func MustMeter(cfg Config, seed int64) *Meter {
	m, err := NewMeter(cfg, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// Measurement is the outcome of sampling one run.
type Measurement struct {
	Duration  float64   // seconds observed
	Samples   []float64 // sampled power values, watts
	Energy    float64   // joules, trapezoidal integral of Samples
	MeanPower float64   // watts, Energy / Duration
}

// Measure samples the power trace over [0, duration] and integrates the
// samples into an energy estimate. The trace function must be defined on
// the whole interval. Runs shorter than two sample periods cannot be
// integrated and yield an error; callers should repeat short kernels
// until they fill a measurable window (as the paper's microbenchmark
// harness does).
//
// When duration does not fall on the sample grid, one extra sample is
// taken at t = duration itself so the closing partial interval
// [(n-1)·dt, duration] is integrated rather than silently dropped —
// without it every measurement under-reads by up to one sample period of
// power.
func (m *Meter) Measure(trace func(t float64) float64, duration float64) (Measurement, error) {
	if duration <= 0 || math.IsNaN(duration) || math.IsInf(duration, 0) {
		return Measurement{}, fmt.Errorf("powermon: invalid duration %g", duration)
	}
	dt := 1 / m.cfg.SampleRate
	n := int(duration/dt) + 1
	if n < 3 {
		return Measurement{}, fmt.Errorf("powermon: run of %gs too short to sample at %g Hz", duration, m.cfg.SampleRate)
	}
	// The last grid point sits at (n-1)·dt <= duration. Unless the run is
	// grid-aligned, a tail of up to one sample period remains; close it
	// with one extra sample at the trailing edge.
	tail := duration - float64(n-1)*dt
	total := n
	if tail > dt*1e-9 {
		total = n + 1
	}
	if f := m.cfg.Faults; f != nil {
		if err := f.BeginMeasure(duration, total); err != nil {
			return Measurement{}, fmt.Errorf("powermon: %w", err)
		}
	}
	gain := m.rng.Normal(1, m.cfg.GainSigma)
	samples := make([]float64, total)
	for i := 0; i < total; i++ {
		t := float64(i) * dt
		if t > duration {
			t = duration // the appended closing sample
		}
		v := trace(t)*gain + m.rng.Normal(0, m.cfg.NoiseSigma)
		if q := m.cfg.QuantumW; q > 0 {
			v = math.Round(v/q) * q
		}
		if v < 0 {
			v = 0
		}
		if f := m.cfg.Faults; f != nil {
			var prev float64
			if i > 0 {
				prev = samples[i-1]
			}
			v = f.ObserveSample(i, v, prev)
		}
		samples[i] = v
	}
	// Trapezoidal integration: full sample periods over the grid, then
	// the closing trapezoid over the partial tail interval.
	var energy float64
	for i := 1; i < total; i++ {
		step := dt
		if i == n {
			step = tail
		}
		energy += 0.5 * (samples[i-1] + samples[i]) * step
	}
	return Measurement{
		Duration:  duration,
		Samples:   samples,
		Energy:    energy,
		MeanPower: energy / duration,
	}, nil
}

// MinDuration returns the shortest run the meter can integrate with at
// least k samples. Harnesses use it to size kernel repetition counts.
func (m *Meter) MinDuration(k int) float64 {
	if k < 3 {
		k = 3
	}
	return float64(k) / m.cfg.SampleRate
}

// SampleRate returns the configured sampling rate in Hz.
func (m *Meter) SampleRate() float64 { return m.cfg.SampleRate }
