package powermon

import (
	"fmt"
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// noiseless returns a config with every error source disabled.
func noiseless(rate units.Hertz) Config {
	return Config{SampleRate: rate}
}

func TestConstantTraceExactWithoutNoise(t *testing.T) {
	m := MustMeter(noiseless(1024), 1)
	meas, err := m.Measure(func(units.Second) units.Watt { return 5.0 }, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(meas.Energy)-5.0) > 1e-9 {
		t.Errorf("energy = %v, want 5.0 J", meas.Energy)
	}
	if math.Abs(float64(meas.MeanPower)-5.0) > 1e-9 {
		t.Errorf("mean power = %v, want 5.0 W", meas.MeanPower)
	}
}

func TestLinearTraceTrapezoidExact(t *testing.T) {
	// The trapezoid rule is exact for linear integrands.
	m := MustMeter(noiseless(512), 1)
	meas, err := m.Measure(func(t units.Second) units.Watt { return units.Watt(2 + 3*float64(t)) }, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0 + 1.5 // integral of 2+3t over [0,1]
	if math.Abs(float64(meas.Energy)-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", meas.Energy, want)
	}
}

// TestTailIntervalIntegrated is the regression test for the tail
// truncation bug: the run below spans 512 full sample periods plus a
// 0.4999 ms tail, and the old integrator dropped the tail entirely
// (reading 5.000 J instead of 5.004999 J).
func TestTailIntervalIntegrated(t *testing.T) {
	m := MustMeter(noiseless(1024), 1)
	const duration = 0.5004999
	meas, err := m.Measure(func(units.Second) units.Watt { return 10.0 }, duration)
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 * duration // 5.004999 J
	if rel := math.Abs(float64(meas.Energy)-want) / want; rel > 1e-6 {
		t.Errorf("energy = %.9f J, want %.9f J (rel err %g)", meas.Energy, want, rel)
	}
}

// TestMeasureClosedFormOffGrid is the property test behind the fix: with
// noise disabled, trapezoidal integration is exact for constant and
// linear traces, so Measure must match the closed-form energy at any
// duration — including ones that are not integer multiples of the sample
// period, where the old code silently dropped the closing interval.
func TestMeasureClosedFormOffGrid(t *testing.T) {
	rates := []units.Hertz{256, 512, 1000, 1024}
	// A spread of durations: grid-aligned, barely off-grid, half-period
	// off, and nearly one full period off.
	durations := []float64{
		0.25, 0.25 + 1.0/2048, 0.3, 0.333333, 0.5004999,
		1.0, 1.0 + 0.9/1024, 0.0999999,
	}
	traces := []struct {
		name   string
		f      func(t units.Second) units.Watt
		energy func(d float64) float64 // closed-form integral over [0, d]
	}{
		{"constant", func(units.Second) units.Watt { return 7.25 }, func(d float64) float64 { return 7.25 * d }},
		{"linear", func(t units.Second) units.Watt { return units.Watt(2 + 3*float64(t)) }, func(d float64) float64 { return 2*d + 1.5*d*d }},
	}
	for _, rate := range rates {
		for _, d := range durations {
			for _, tr := range traces {
				m := MustMeter(noiseless(rate), 1)
				meas, err := m.Measure(tr.f, units.Second(d))
				if err != nil {
					t.Fatalf("rate %g duration %g: %v", rate, d, err)
				}
				want := tr.energy(d)
				if rel := math.Abs(float64(meas.Energy)-want) / want; rel > 1e-9 {
					t.Errorf("%s trace, rate %g Hz, duration %g s: energy %.12g J, want %.12g J (rel %g)",
						tr.name, rate, d, meas.Energy, want, rel)
				}
			}
		}
	}
}

func TestTooShortRunRejected(t *testing.T) {
	m := MustMeter(DefaultConfig(), 1)
	if _, err := m.Measure(func(units.Second) units.Watt { return 1 }, 0.001); err == nil {
		t.Error("expected error for sub-sample-period run")
	}
	if _, err := m.Measure(func(units.Second) units.Watt { return 1 }, -1); err == nil {
		t.Error("expected error for negative duration")
	}
	if _, err := m.Measure(func(units.Second) units.Watt { return 1 }, units.Second(math.NaN())); err == nil {
		t.Error("expected error for NaN duration")
	}
}

func TestGainErrorBoundsAccuracy(t *testing.T) {
	// With the default 2% gain sigma, measured energy of a constant
	// trace should stay within ~3 sigma of truth, and across many
	// measurements the mean should converge to truth.
	m := MustMeter(DefaultConfig(), 42)
	const truth = 6.0
	var sum float64
	const reps = 300
	for i := 0; i < reps; i++ {
		meas, err := m.Measure(func(units.Second) units.Watt { return truth }, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(float64(meas.Energy)-truth*0.5) / (truth * 0.5)
		if rel > 0.11 { // ~4 sigma of the default 3% gain error
			t.Errorf("measurement %d: relative error %v too large", i, rel)
		}
		sum += float64(meas.Energy)
	}
	meanRel := math.Abs(sum/reps-truth*0.5) / (truth * 0.5)
	if meanRel > 0.005 {
		t.Errorf("mean of %d measurements off by %v; gain error should be unbiased", reps, meanRel)
	}
}

func TestQuantization(t *testing.T) {
	cfg := Config{SampleRate: 1024, QuantumW: 0.5}
	m := MustMeter(cfg, 1)
	meas, err := m.Measure(func(units.Second) units.Watt { return 5.2 }, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range meas.Samples {
		if math.Abs(float64(s)-math.Round(float64(s)/0.5)*0.5) > 1e-12 {
			t.Fatalf("sample %v not quantized to 0.5 W", s)
		}
	}
}

func TestNegativeClamped(t *testing.T) {
	cfg := Config{SampleRate: 1024, NoiseSigma: 2.0}
	m := MustMeter(cfg, 7)
	meas, err := m.Measure(func(units.Second) units.Watt { return 0.1 }, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range meas.Samples {
		if s < 0 {
			t.Fatal("negative power sample survived clamping")
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, _ := MustMeter(DefaultConfig(), 9).Measure(func(t units.Second) units.Watt { return units.Watt(3 + float64(t)) }, 0.5)
	b, _ := MustMeter(DefaultConfig(), 9).Measure(func(t units.Second) units.Watt { return units.Watt(3 + float64(t)) }, 0.5)
	if a.Energy != b.Energy {
		t.Error("same seed should reproduce the measurement")
	}
	c, _ := MustMeter(DefaultConfig(), 10).Measure(func(t units.Second) units.Watt { return units.Watt(3 + float64(t)) }, 0.5)
	if a.Energy == c.Energy {
		t.Error("different seeds should perturb the measurement")
	}
}

func TestMinDuration(t *testing.T) {
	m := MustMeter(DefaultConfig(), 1)
	if d := m.MinDuration(256); d != 0.25 {
		t.Errorf("MinDuration(256) = %v, want 0.25", d)
	}
	if d := m.MinDuration(0); d != 3.0/1024 {
		t.Errorf("MinDuration(0) = %v, want %v", d, 3.0/1024)
	}
}

func TestRateClamped(t *testing.T) {
	m := MustMeter(Config{SampleRate: 1e6}, 1)
	if m.SampleRate() != MaxSampleRate {
		t.Errorf("rate %v not clamped to %v", m.SampleRate(), MaxSampleRate)
	}
}

func TestNegativeConfigRejected(t *testing.T) {
	for _, cfg := range []Config{
		{SampleRate: 100, GainSigma: -1},
		{SampleRate: 100, NoiseSigma: -0.01},
		{SampleRate: 100, QuantumW: -0.005},
	} {
		if _, err := NewMeter(cfg, 1); err == nil {
			t.Errorf("NewMeter(%+v) accepted a negative noise parameter", cfg)
		}
	}
}

func TestMustMeterPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	MustMeter(Config{SampleRate: 100, GainSigma: -1}, 1)
}

// stubInjector exercises the Config.Faults hook without pulling in the
// faults package (powermon must not depend on it).
type stubInjector struct {
	beginErr   error
	scale      float64 // multiplies every sample when non-zero
	dropFrom   int     // hold the previous sample from this index on (0 disables)
	sawSamples int
}

func (f *stubInjector) BeginMeasure(duration units.Second, samples int) error {
	f.sawSamples = samples
	return f.beginErr
}

func (f *stubInjector) ObserveSample(i int, clean, prev units.Watt) units.Watt {
	if f.dropFrom > 0 && i >= f.dropFrom {
		return prev
	}
	if f.scale != 0 {
		return clean * units.Watt(f.scale)
	}
	return clean
}

func TestFaultInjectorAbortsSession(t *testing.T) {
	inj := &stubInjector{beginErr: errTest}
	cfg := noiseless(1024)
	cfg.Faults = inj
	m := MustMeter(cfg, 1)
	if _, err := m.Measure(func(units.Second) units.Watt { return 5 }, 1.0); err == nil {
		t.Fatal("expected the injected BeginMeasure error to abort Measure")
	}
	if inj.sawSamples < 1024 {
		t.Errorf("injector saw %d samples, want >= 1024", inj.sawSamples)
	}
}

var errTest = fmt.Errorf("injected test failure")

func TestFaultInjectorRewritesSamples(t *testing.T) {
	cfg := noiseless(1024)
	cfg.Faults = &stubInjector{scale: 2}
	m := MustMeter(cfg, 1)
	meas, err := m.Measure(func(units.Second) units.Watt { return 5 }, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(meas.Energy)-10.0) > 1e-9 {
		t.Errorf("scaled energy = %v, want 10 J", meas.Energy)
	}

	cfg.Faults = &stubInjector{dropFrom: 1}
	m = MustMeter(cfg, 1)
	meas, err = m.Measure(func(t units.Second) units.Watt { return units.Watt(1 + 8*float64(t)) }, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Every sample after the first repeats it, so the integral collapses
	// to the held first reading.
	if math.Abs(float64(meas.Energy)-1.0) > 1e-9 {
		t.Errorf("sample-and-hold energy = %v, want 1 J", meas.Energy)
	}
}

func TestMeasureTegraRunMatchesTrueEnergy(t *testing.T) {
	// End-to-end: sampling a simulated device run must land within a few
	// percent of the device's closed-form energy.
	dev := tegra.NewDevice()
	w := tegra.Workload{
		Profile:   counters.Profile{SP: 5e9, DRAMWords: 5e7},
		Occupancy: 0.9,
	}
	e := dev.Execute(w, dvfs.MustSetting(852, 924))
	if e.Time < 0.02 {
		t.Fatalf("test workload too short to sample: %v s", e.Time)
	}
	m := MustMeter(DefaultConfig(), 3)
	meas, err := m.Measure(e.PowerAt, e.Time)
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(float64(meas.Energy-e.TrueEnergy())) / float64(e.TrueEnergy())
	if rel > 0.08 {
		t.Errorf("measured %v J vs true %v J (rel %v)", meas.Energy, e.TrueEnergy(), rel)
	}
}
