package units

import (
	"math"
	"testing"
	"testing/quick"
)

// The quick-check properties complement the grid sweep in units_test.go:
// instead of hand-chosen magnitudes they draw arbitrary float64 pairs,
// discard the physically meaningless ones, and assert the defining
// identities of the quantity helpers hold everywhere else.

// plausible maps an arbitrary float64 onto a positive, finite magnitude
// spanning roughly µ-scale to giga-scale, the range the simulator and
// wire formats actually carry.
func plausible(x float64) (float64, bool) {
	if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
		return 0, false
	}
	x = math.Abs(x)
	for x < 1e-6 {
		x *= 1e6
	}
	for x > 1e9 {
		x /= 1e9
	}
	return x, true
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// TestQuickEnergyIdentity: Energy(p,t) inverts through both Power and
// Duration for every plausible (power, time) pair.
func TestQuickEnergyIdentity(t *testing.T) {
	prop := func(pw, tw float64) bool {
		p, ok := plausible(pw)
		if !ok {
			return true
		}
		d, ok := plausible(tw)
		if !ok {
			return true
		}
		e := Energy(Watt(p), Second(d))
		return close(float64(Power(e, Second(d))), p) &&
			close(float64(Duration(e, Watt(p))), d)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickEnergyBilinear: energy is linear in each factor — scaling the
// power trace scales the joules, as does stretching the run.
func TestQuickEnergyBilinear(t *testing.T) {
	prop := func(pw, tw, kw float64) bool {
		p, ok := plausible(pw)
		if !ok {
			return true
		}
		d, ok := plausible(tw)
		if !ok {
			return true
		}
		k, ok := plausible(kw)
		if !ok {
			return true
		}
		e := float64(Energy(Watt(p), Second(d)))
		return close(float64(Energy(Watt(k*p), Second(d))), k*e) &&
			close(float64(Energy(Watt(p), Second(k*d))), k*e)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoefficientChain: the pJ/op coefficient helpers compose to
// the literal Eq. 9 arithmetic c0·V²·N·1e-12 for arbitrary inputs.
func TestQuickCoefficientChain(t *testing.T) {
	prop := func(cw, vw, nw float64) bool {
		c, ok := plausible(cw)
		if !ok {
			return true
		}
		v, ok := plausible(vw)
		if !ok {
			return true
		}
		n, ok := plausible(nw)
		if !ok {
			return true
		}
		got := PicoJoulePerOpPerVoltSq(c).At(Volt(v).Squared()).Joules().ForOps(Count(n))
		return close(float64(got), c*v*v*n*1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}
