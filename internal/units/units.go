// Package units defines the physical-quantity types the Eq. 9 energy
// model is written in. Every type is a defined float64: the JSON and
// CSV encodings are byte-identical to the raw floats they replace, but
// a swapped Watt/Joule argument is now a compile error instead of a
// review comment. The energylint unittypes rule forbids raw float64 on
// exported signatures in the packages that adopted these types.
//
// Numeric scales match the quantities they replace exactly — a
// units.MegaHertz holds the same number the old FreqMHz float64 held —
// so no fixture, fitted constant, or golden file moves.
package units

// Second is a duration in seconds.
type Second float64

// Joule is an energy in joules.
type Joule float64

// Watt is a power in watts.
type Watt float64

// Volt is an electric potential in volts.
type Volt float64

// MilliVolt is an electric potential in millivolts, the scale the DVFS
// tables are specified in.
type MilliVolt float64

// VoltSq is a squared potential in volts², the factor scaling dynamic
// energy per operation in Eq. 9.
type VoltSq float64

// Hertz is a frequency in hertz.
type Hertz float64

// MegaHertz is a frequency in MHz, the scale the DVFS tables are
// specified in.
type MegaHertz float64

// JoulePerOp is an energy cost in joules per operation.
type JoulePerOp float64

// PicoJoulePerOp is an energy cost in pJ per operation, the scale the
// paper reports fitted per-op constants in.
type PicoJoulePerOp float64

// PicoJoulePerOpPerVoltSq is a dynamic-energy coefficient in pJ/op/V²:
// the ĉ0 constants of Eq. 9 before the V² scaling is applied.
type PicoJoulePerOpPerVoltSq float64

// WattPerVolt is a leakage coefficient in W/V: the c1 constants of
// Eq. 9 before the rail voltage is applied.
type WattPerVolt float64

// Ratio is a dimensionless fraction or multiplier (occupancy, gain
// error, throttle factor, relative error).
type Ratio float64

// Percent is a dimensionless quantity scaled by 100.
type Percent float64

// Count is a dimensionless operation or word count.
type Count float64

// OpsPerSecond is a throughput in operations per second.
type OpsPerSecond float64

// WordsPerSecond is a memory throughput in words per second.
type WordsPerSecond float64

// OpsPerWord is an arithmetic intensity in operations per word.
type OpsPerWord float64

// OpsPerJoule is an energy efficiency in operations per joule.
type OpsPerJoule float64

// PerCycle is a per-clock-cycle rate (instructions per cycle, words
// per cycle).
type PerCycle float64

// Energy is the defining identity E = P·T.
func Energy(p Watt, t Second) Joule { return Joule(float64(p) * float64(t)) }

// Power is the inverse identity P = E/T.
func Power(e Joule, t Second) Watt { return Watt(float64(e) / float64(t)) }

// Duration is the inverse identity T = E/P.
func Duration(e Joule, p Watt) Second { return Second(float64(e) / float64(p)) }

// Hertz converts MHz to Hz.
func (f MegaHertz) Hertz() Hertz { return Hertz(float64(f) * 1e6) }

// Volts converts millivolts to volts.
func (mv MilliVolt) Volts() Volt { return Volt(float64(mv) * 1e-3) }

// Squared is the V² factor of Eq. 9's dynamic term.
func (v Volt) Squared() VoltSq { return VoltSq(float64(v) * float64(v)) }

// At scales a pJ/op/V² coefficient by a squared rail voltage,
// producing the per-op dynamic cost at that operating point.
func (c PicoJoulePerOpPerVoltSq) At(v2 VoltSq) PicoJoulePerOp {
	return PicoJoulePerOp(float64(c) * float64(v2))
}

// At scales a W/V leakage coefficient by a rail voltage, producing the
// constant-power contribution at that operating point.
func (c WattPerVolt) At(v Volt) Watt { return Watt(float64(c) * float64(v)) }

// Joules converts a pJ/op cost to J/op.
func (c PicoJoulePerOp) Joules() JoulePerOp { return JoulePerOp(float64(c) * 1e-12) }

// ForOps is the total energy of n operations at this per-op cost.
func (c JoulePerOp) ForOps(n Count) Joule { return Joule(float64(c) * float64(n)) }
