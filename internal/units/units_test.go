package units

import (
	"math"
	"testing"
)

// TestEnergyPowerRoundTrip sweeps power and duration across the scales
// the simulator actually produces (µW bursts to kW, µs to ks) and
// checks the defining identities against each other: recovering power
// from Energy(p,t) and duration from the same energy must return the
// inputs to within floating-point rounding.
func TestEnergyPowerRoundTrip(t *testing.T) {
	for pe := -6; pe <= 3; pe++ {
		for te := -6; te <= 3; te++ {
			for _, pm := range []float64{1, 1.7, 2.5, 9.99} {
				for _, tm := range []float64{1, 1.3, 3.14, 8.25} {
					p := Watt(pm * math.Pow(10, float64(pe)))
					d := Second(tm * math.Pow(10, float64(te)))
					e := Energy(p, d)
					if got := Power(e, d); math.Abs(float64(got-p)) > 1e-12*math.Abs(float64(p)) {
						t.Fatalf("Power(Energy(%v,%v),%v) = %v, want %v", p, d, d, got, p)
					}
					if got := Duration(e, p); math.Abs(float64(got-d)) > 1e-12*math.Abs(float64(d)) {
						t.Fatalf("Duration(Energy(%v,%v),%v) = %v, want %v", p, d, p, got, d)
					}
				}
			}
		}
	}
}

func TestConversionScales(t *testing.T) {
	if got := MegaHertz(852).Hertz(); got != 852e6 {
		t.Errorf("852 MHz = %v Hz, want 852e6", got)
	}
	if got := MilliVolt(1100).Volts(); got != 1.1 {
		t.Errorf("1100 mV = %v V, want 1.1", got)
	}
	if got := Volt(1.1).Squared(); math.Abs(float64(got)-1.21) > 1e-15 {
		t.Errorf("1.1 V squared = %v, want 1.21", got)
	}
	if got := PicoJoulePerOp(27.33).Joules(); math.Abs(float64(got)-27.33e-12) > 1e-24 {
		t.Errorf("27.33 pJ/op = %v J/op", got)
	}
}

// TestCoefficientHelpersMatchEq9 checks the helper chain reproduces the
// literal Eq. 9 arithmetic: c0·V² per-op dynamic cost and c1·V leakage.
func TestCoefficientHelpersMatchEq9(t *testing.T) {
	c0 := PicoJoulePerOpPerVoltSq(56.56)
	v := MilliVolt(1015).Volts()
	want := 56.56 * 1.015 * 1.015
	if got := c0.At(v.Squared()); math.Abs(float64(got)-want) > 1e-12*want {
		t.Errorf("c0.At(V²) = %v, want %v", got, want)
	}
	c1 := WattPerVolt(2.70)
	if got := c1.At(v); math.Abs(float64(got)-2.70*1.015) > 1e-12 {
		t.Errorf("c1.At(V) = %v, want %v", got, 2.70*1.015)
	}
	perOp := PicoJoulePerOp(100).Joules()
	if got := perOp.ForOps(1e9); math.Abs(float64(got)-0.1) > 1e-15 {
		t.Errorf("100 pJ/op × 1e9 ops = %v J, want 0.1", got)
	}
}
