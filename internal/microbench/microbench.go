// Package microbench reproduces the paper's "intensity" microbenchmark
// suite (§II-C, from the authors' archline project): highly tuned kernels
// that exercise one operation class — single-precision flops, double-
// precision flops, integer ops, shared-memory traffic, L2 traffic, or
// DRAM streaming — at a sweepable arithmetic intensity (operations of the
// target class per word of DRAM data).
//
// Running the full suite over the paper's 16 calibration settings yields
// 116 benchmarks x 16 settings = 1856 sample measurements, the exact
// sample count quoted in §II-C.
package microbench

import (
	"fmt"
	"math"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Kind enumerates the microbenchmark families. The first five match the
// rows of the paper's Table II; DRAM is the pure-streaming family that
// rounds the suite out to the paper's 116 kernels.
type Kind int

const (
	Single Kind = iota
	Double
	Integer
	Shared
	L2
	DRAM
	numKinds
)

func (k Kind) String() string {
	switch k {
	case Single:
		return "Single"
	case Double:
		return "Double"
	case Integer:
		return "Integer"
	case Shared:
		return "Shared memory"
	case L2:
		return "L2"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Kinds returns every benchmark family.
func Kinds() []Kind {
	return []Kind{Single, Double, Integer, Shared, L2, DRAM}
}

// intensityCount gives the number of swept intensities per family. The
// Table II families match the paper's "out of N" counts (25, 36, 23, 10,
// 9); DRAM's 13 completes the 116-kernel suite.
func (k Kind) intensityCount() int {
	switch k {
	case Single:
		return 25
	case Double:
		return 36
	case Integer:
		return 23
	case Shared:
		return 10
	case L2:
		return 9
	case DRAM:
		return 13
	default:
		panic(fmt.Sprintf("microbench: unknown kind %d", int(k)))
	}
}

// Intensities returns the family's swept arithmetic intensities: target
// operations per DRAM word, geometrically spaced. Compute families sweep
// from memory-bound (1/4 op per word) to strongly compute-bound; cache
// families sweep the ratio of cache words to DRAM words; DRAM sweeps a
// small flop dressing on a pure stream.
func (k Kind) Intensities() []float64 {
	n := k.intensityCount()
	var lo, hi float64
	switch k {
	case Single, Double, Integer:
		lo, hi = 0.25, 512
	case Shared, L2:
		lo, hi = 1, 64
	case DRAM:
		lo, hi = 1.0/64, 1
	}
	return geomspace(lo, hi, n)
}

func geomspace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	x := lo
	for i := range out {
		out[i] = x
		x *= ratio
	}
	out[n-1] = hi
	return out
}

// Benchmark identifies one kernel: a family at one arithmetic intensity.
type Benchmark struct {
	Kind      Kind
	Intensity float64 // target ops per DRAM word
}

// Suite returns all 116 benchmarks of the suite, family-major.
func Suite() []Benchmark {
	var out []Benchmark
	for _, k := range Kinds() {
		for _, ai := range k.Intensities() {
			out = append(out, Benchmark{Kind: k, Intensity: ai})
		}
	}
	return out
}

// occupancy returns the issue efficiency of a family's kernels. The
// paper's microbenchmarks are hand-tuned to saturate their target
// resource ("utilize close to 100%", §IV-C); cache-traffic kernels pay a
// small banking/tag overhead.
func (k Kind) occupancy() float64 {
	switch k {
	case Shared, L2:
		return 0.90
	default:
		return 0.97
	}
}

// loopOverheadInt is the integer loop/address overhead per element all
// real kernels carry, as a fraction of an element's target operations.
const loopOverheadInt = 0.02

// Workload materializes the benchmark as an operation profile with the
// given number of stream elements. Each element moves one word from DRAM
// and performs Intensity operations of the target class (for cache
// families, Intensity words of cache traffic).
func (b Benchmark) Workload(elements float64) tegra.Workload {
	if elements <= 0 {
		panic(fmt.Sprintf("microbench: non-positive element count %g", elements))
	}
	var p counters.Profile
	ops := b.Intensity * elements
	p.DRAMWords = elements
	switch b.Kind {
	case Single:
		p.SP = ops
		p.Int = loopOverheadInt * ops
	case Double:
		p.DPFMA = ops
		p.Int = loopOverheadInt * ops
	case Integer:
		p.Int = ops
	case Shared:
		p.SharedWords = ops
		p.Int = loopOverheadInt * ops
	case L2:
		p.L2Words = ops
		p.Int = loopOverheadInt * ops
	case DRAM:
		p.SP = ops // light flop dressing on the stream
		p.Int = loopOverheadInt * elements
	default:
		panic(fmt.Sprintf("microbench: unknown kind %d", int(b.Kind)))
	}
	return tegra.Workload{Profile: p, Occupancy: units.Ratio(b.Kind.occupancy())}
}

// Sample is one measured benchmark execution: the model's training row.
type Sample struct {
	Bench    Benchmark
	Setting  dvfs.Setting
	Workload tegra.Workload
	Time     units.Second // measured
	Energy   units.Joule  // integrated from PowerMon samples
	Power    units.Watt   // Energy / Time
}

// Runner executes benchmarks on a device and measures each run with its
// own deterministically seeded meter.
//
// Every (benchmark, setting) sample draws its measurement noise from a
// fresh meter whose seed SampleSeed derives from the campaign Seed and
// the *identity* of the pair — never from its position in a run. Two
// properties follow, and the experiment pipeline leans on both:
//
//   - Order independence: running a subset of the suite, or the same
//     benchmarks in a different order, reproduces identical samples.
//   - Parallel determinism: callers may fan samples out over any number
//     of workers and still obtain the byte-identical result of a serial
//     sweep.
type Runner struct {
	Device *tegra.Device
	// MeterConfig configures the per-sample meters; the zero value
	// selects powermon.DefaultConfig().
	MeterConfig powermon.Config
	// Seed is the campaign seed from which every per-sample meter seed
	// is derived.
	Seed int64
	// TargetTime is the wall-clock window each kernel is sized to fill so
	// that the meter integrates enough samples. Zero selects 0.3 s.
	TargetTime float64
	// Faults is the deterministic fault-injection plan threaded through
	// every measurement (DVFS transition failures, throttle windows,
	// meter faults). The zero Plan injects nothing. Faults derive from
	// the same (benchmark, setting) identity as the measurement noise,
	// so they too are order- and worker-count-independent.
	Faults faults.Plan
}

// SampleSeed derives the meter seed for one (benchmark, setting) sample
// from the campaign seed and the pair's identity, via FNV-1a over the
// constituent bit patterns. Using identities rather than loop indices is
// what makes Runner measurements independent of execution order.
func SampleSeed(seed int64, b Benchmark, s dvfs.Setting) int64 {
	return stats.MixSeed(seed,
		int64(b.Kind),
		int64(math.Float64bits(b.Intensity)),
		int64(math.Float64bits(float64(s.Core.FreqMHz))),
		int64(math.Float64bits(float64(s.Core.VoltageMV))),
		int64(math.Float64bits(float64(s.Mem.FreqMHz))),
		int64(math.Float64bits(float64(s.Mem.VoltageMV))))
}

// meterFor returns the fresh, deterministically seeded meter that
// measures one attempt of the (b, s) sample. Attempt 0 draws the seed
// the identity alone defines — the fault-free path is byte-identical
// with or without an (inactive) plan — while retries remix the attempt
// number so a re-measurement redraws its noise instead of replaying the
// corrupted stream.
func (r *Runner) meterFor(b Benchmark, s dvfs.Setting, attempt int, inj *faults.Injector) (*powermon.Meter, error) {
	cfg := r.MeterConfig
	if cfg == (powermon.Config{}) {
		cfg = powermon.DefaultConfig()
	}
	if inj != nil {
		cfg.Faults = inj
	}
	seed := SampleSeed(r.Seed, b, s)
	if attempt > 0 {
		seed = stats.MixSeed(seed, int64(attempt))
	}
	return powermon.NewMeter(cfg, seed)
}

// Run sizes, executes and measures one benchmark at one setting. The
// stream is sized so the run fills the measurement window at s.
func (r *Runner) Run(b Benchmark, s dvfs.Setting) (Sample, error) {
	return r.RunAttempt(b, s, 0)
}

// RunAttempt is Run for one retry attempt: the attempt number selects
// which deterministic faults (if any) the run suffers and, for
// attempt > 0, re-seeds the measurement noise.
func (r *Runner) RunAttempt(b Benchmark, s dvfs.Setting, attempt int) (Sample, error) {
	return r.RunSizedAttempt(b, r.SizeFor(b, s, r.TargetTime), s, attempt)
}

// SizeFor returns an element count such that the benchmark runs for
// about the target time at setting s.
func (r *Runner) SizeFor(b Benchmark, s dvfs.Setting, target float64) float64 {
	if target <= 0 {
		target = 0.3
	}
	probe := r.Device.Execute(b.Workload(1e6), s)
	return 1e6 * target / float64(probe.Time)
}

// RunSized executes and measures a benchmark with a fixed element count.
// Autotuning sweeps use it so that every DVFS setting runs the *same*
// work — energies are only comparable at equal work.
func (r *Runner) RunSized(b Benchmark, elements float64, s dvfs.Setting) (Sample, error) {
	return r.RunSizedAttempt(b, elements, s, 0)
}

// RunSizedAttempt is RunSized for one retry attempt. The attempt's
// injector (derived from the plan, the sample identity and the attempt
// number) gates the DVFS transition, may throttle the execution's power
// trace, and rides along into the meter to corrupt or abort the
// sampling session. Injected failures are transient (faults.IsTransient)
// so callers can retry with the next attempt number.
func (r *Runner) RunSizedAttempt(b Benchmark, elements float64, s dvfs.Setting, attempt int) (Sample, error) {
	inj := r.Faults.ForSample(SampleSeed(r.Seed, b, s), attempt)
	if inj != nil {
		if err := inj.DVFSTransition(); err != nil {
			return Sample{}, fmt.Errorf("microbench: switching to %v for %v: %w", s, b, err)
		}
	}
	exec := r.Device.Execute(b.Workload(elements), s)
	trace := exec.PowerAt
	if inj != nil {
		trace = exec.ThrottledTrace(inj.ThrottleWindows(exec.Time))
	}
	meter, err := r.meterFor(b, s, attempt, inj)
	if err != nil {
		return Sample{}, fmt.Errorf("microbench: %w", err)
	}
	meas, err := meter.Measure(trace, exec.Time)
	if err != nil {
		return Sample{}, fmt.Errorf("microbench: measuring %v at %v: %w", b, s, err)
	}
	return Sample{
		Bench:    b,
		Setting:  s,
		Workload: exec.Workload,
		Time:     exec.Time,
		Energy:   meas.Energy,
		Power:    meas.MeanPower,
	}, nil
}

// RunSuite measures every benchmark at every setting, in order
// (setting-major). With the full suite and the paper's 16 calibration
// settings this produces the paper's 1856 samples. Each sample depends
// only on the (benchmark, setting) identity, so a subset or reordering
// of the suite reproduces the corresponding entries of a full sweep,
// and the experiments package can fan the same sweep out over workers
// without changing a single value.
func (r *Runner) RunSuite(benches []Benchmark, settings []dvfs.Setting) ([]Sample, error) {
	out := make([]Sample, 0, len(benches)*len(settings))
	for _, s := range settings {
		for _, b := range benches {
			smp, err := r.Run(b, s)
			if err != nil {
				return nil, err
			}
			out = append(out, smp)
		}
	}
	return out, nil
}
