package microbench

import (
	"math"
	"testing"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
)

func TestSuiteSizeMatchesPaper(t *testing.T) {
	// 116 kernels x 16 settings = 1856 samples (§II-C).
	s := Suite()
	if len(s) != 116 {
		t.Fatalf("suite has %d kernels, want 116 (for 1856 samples over 16 settings)", len(s))
	}
	if len(s)*len(dvfs.CalibrationSettings()) != 1856 {
		t.Errorf("suite x calibration settings = %d, want 1856", len(s)*16)
	}
}

func TestTableIIIntensityCounts(t *testing.T) {
	// Table II "out of N" column: Single 25, Double 36, Integer 23,
	// Shared 10, L2 9.
	want := map[Kind]int{Single: 25, Double: 36, Integer: 23, Shared: 10, L2: 9, DRAM: 13}
	for k, n := range want {
		if got := len(k.Intensities()); got != n {
			t.Errorf("%v has %d intensities, want %d", k, got, n)
		}
	}
}

func TestIntensitiesMonotoneAndPositive(t *testing.T) {
	for _, k := range Kinds() {
		is := k.Intensities()
		for i, v := range is {
			if v <= 0 {
				t.Errorf("%v intensity %d is non-positive: %v", k, i, v)
			}
			if i > 0 && is[i] <= is[i-1] {
				t.Errorf("%v intensities not strictly increasing at %d", k, i)
			}
		}
	}
}

func TestWorkloadTargetsRightClass(t *testing.T) {
	const n = 1000.0
	cases := []struct {
		kind Kind
		get  func(w tegra.Workload) float64
	}{
		{Single, func(w tegra.Workload) float64 { return w.Profile.SP }},
		{Double, func(w tegra.Workload) float64 { return w.Profile.DPFMA }},
		{Integer, func(w tegra.Workload) float64 { return w.Profile.Int }},
		{Shared, func(w tegra.Workload) float64 { return w.Profile.SharedWords }},
		{L2, func(w tegra.Workload) float64 { return w.Profile.L2Words }},
	}
	for _, c := range cases {
		b := Benchmark{Kind: c.kind, Intensity: 8}
		w := b.Workload(n)
		if got := c.get(w); math.Abs(got-8*n) > 1e-9 {
			t.Errorf("%v: target-class ops = %v, want %v", c.kind, got, 8*n)
		}
		if w.Profile.DRAMWords != n {
			t.Errorf("%v: DRAM words = %v, want %v", c.kind, w.Profile.DRAMWords, n)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%v: invalid workload: %v", c.kind, err)
		}
	}
}

func TestWorkloadPanicsOnBadElements(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Benchmark{Kind: Single, Intensity: 1}.Workload(0)
}

func TestRunProducesMeasurableSample(t *testing.T) {
	r := &Runner{Device: tegra.NewDevice(), Seed: 1}
	smp, err := r.Run(Benchmark{Kind: Double, Intensity: 16}, dvfs.MustSetting(852, 924))
	if err != nil {
		t.Fatal(err)
	}
	if smp.Time < 0.25 || smp.Time > 0.40 {
		t.Errorf("run time %v outside the sizing window [0.25, 0.40]", smp.Time)
	}
	if smp.Energy <= 0 || smp.Power <= 0 {
		t.Errorf("non-positive measurement: E=%v P=%v", smp.Energy, smp.Power)
	}
	// Sanity: power must be at least constant power (~6.8 W at max
	// setting) and below a plausible board limit.
	if smp.Power < 5 || smp.Power > 25 {
		t.Errorf("implausible power %v W", smp.Power)
	}
}

func TestRunMeasurementTracksTruth(t *testing.T) {
	dev := tegra.NewDevice()
	r := &Runner{Device: dev, Seed: 2}
	s := dvfs.MustSetting(540, 528)
	smp, err := r.Run(Benchmark{Kind: L2, Intensity: 32}, s)
	if err != nil {
		t.Fatal(err)
	}
	truth := dev.Execute(smp.Workload, s).TrueEnergy()
	rel := math.Abs(float64(smp.Energy-truth)) / float64(truth)
	if rel > 0.08 {
		t.Errorf("measured energy off truth by %v", rel)
	}
}

func TestRunSuiteCountAndOrder(t *testing.T) {
	r := &Runner{
		Device:     tegra.NewDevice(),
		Seed:       3,
		TargetTime: 0.05, // keep the test fast; still > 50 samples at 1024 Hz
	}
	benches := []Benchmark{
		{Kind: Single, Intensity: 1},
		{Kind: DRAM, Intensity: 0.25},
	}
	settings := []dvfs.Setting{dvfs.MustSetting(852, 924), dvfs.MustSetting(396, 204)}
	samples, err := r.RunSuite(benches, settings)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 4 {
		t.Fatalf("got %d samples, want 4", len(samples))
	}
	// Setting-major order.
	if samples[0].Setting != settings[0] || samples[2].Setting != settings[1] {
		t.Error("samples not in setting-major order")
	}
	if samples[0].Bench.Kind != Single || samples[1].Bench.Kind != DRAM {
		t.Error("samples not in benchmark order within a setting")
	}
}

func TestRunSuiteSubsetReproducesFullSuite(t *testing.T) {
	// Sample measurements are seeded by the (seed, benchmark, setting)
	// identity, not by suite position: re-running any subset of the suite
	// must reproduce exactly the samples the full run produced for those
	// benchmarks. This is what makes cached and parallel calibrations
	// byte-identical to serial ones.
	r := &Runner{Device: tegra.NewDevice(), Seed: 42, TargetTime: 0.05}
	benches := []Benchmark{
		{Kind: Single, Intensity: 1},
		{Kind: Double, Intensity: 16},
		{Kind: DRAM, Intensity: 0.25},
	}
	settings := []dvfs.Setting{dvfs.MustSetting(852, 924), dvfs.MustSetting(396, 204)}
	full, err := r.RunSuite(benches, settings)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := r.RunSuite(benches[1:2], settings[1:])
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 {
		t.Fatalf("got %d subset samples, want 1", len(sub))
	}
	// full is setting-major: the (settings[1], benches[1]) sample is at
	// index 1*len(benches)+1.
	want := full[1*len(benches)+1]
	if sub[0] != want {
		t.Errorf("subset sample differs from full-suite sample:\n got %+v\nwant %+v", sub[0], want)
	}
	// Reversed benchmark order must also reproduce the same samples.
	rev, err := r.RunSuite([]Benchmark{benches[2], benches[1], benches[0]}, settings[:1])
	if err != nil {
		t.Fatal(err)
	}
	for i := range rev {
		if rev[i] != full[len(benches)-1-i] {
			t.Errorf("reordered sample %d differs from full-suite sample", i)
		}
	}
}

func TestKindStrings(t *testing.T) {
	if Single.String() != "Single" || Shared.String() != "Shared memory" {
		t.Error("Kind strings wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown Kind string wrong")
	}
}

func TestComputeBoundRunsFasterAtHigherFrequency(t *testing.T) {
	// The suite must actually exhibit the intensity behaviour the model
	// exploits: compute-bound kernels speed up with core frequency,
	// memory-bound kernels with memory frequency.
	dev := tegra.NewDevice()
	cb := Benchmark{Kind: Single, Intensity: 512}.Workload(1e7)
	mb := Benchmark{Kind: DRAM, Intensity: 1.0 / 64}.Workload(1e7)

	cbFast := dev.Execute(cb, dvfs.MustSetting(852, 204)).Time
	cbSlow := dev.Execute(cb, dvfs.MustSetting(396, 204)).Time
	if cbFast >= cbSlow {
		t.Error("compute-bound kernel did not speed up with core frequency")
	}
	mbFast := dev.Execute(mb, dvfs.MustSetting(396, 924)).Time
	mbSlow := dev.Execute(mb, dvfs.MustSetting(396, 204)).Time
	if mbFast >= mbSlow {
		t.Error("memory-bound kernel did not speed up with memory frequency")
	}
}

func TestSizeForHitsTarget(t *testing.T) {
	r := &Runner{Device: tegra.NewDevice(), Seed: 9}
	b := Benchmark{Kind: Double, Intensity: 8}
	for _, s := range []dvfs.Setting{dvfs.MaxSetting(), dvfs.MustSetting(180, 204)} {
		elements := r.SizeFor(b, s, 0.2)
		exec := tegra.NewDevice().Execute(b.Workload(elements), s)
		if math.Abs(float64(exec.Time)-0.2) > 1e-9 {
			t.Errorf("%v: sized run takes %v s, want 0.2", s, exec.Time)
		}
	}
}

func TestRunSizedKeepsWorkloadFixed(t *testing.T) {
	// The same element count at two settings must yield identical
	// operation profiles (that is the point of RunSized).
	r := &Runner{Device: tegra.NewDevice(), Seed: 10}
	b := Benchmark{Kind: L2, Intensity: 16}
	const elements = 5e7
	a, err := r.RunSized(b, elements, dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	c, err := r.RunSized(b, elements, dvfs.MustSetting(396, 204))
	if err != nil {
		t.Fatal(err)
	}
	if a.Workload.Profile != c.Workload.Profile {
		t.Error("RunSized changed the workload across settings")
	}
	if c.Time <= a.Time {
		t.Error("slower setting did not take longer for the same work")
	}
}

func TestRunSizedTooSmallErrors(t *testing.T) {
	// A microscopic workload finishes between meter samples and cannot
	// be measured.
	r := &Runner{Device: tegra.NewDevice(), Seed: 11}
	if _, err := r.RunSized(Benchmark{Kind: Single, Intensity: 1}, 10, dvfs.MaxSetting()); err == nil {
		t.Error("unmeasurably short run accepted")
	}
}
