package fleet

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrFlightPanic is the error waiters of a single-flight computation
// receive when the caller that owned it panicked. The panic itself
// propagates up the owner's stack; the flight is unregistered either
// way, so the key is immediately retryable instead of permanently
// poisoned.
var ErrFlightPanic = errors.New("fleet: in-flight computation panicked")

// ErrShared wraps the error a waiter received from another caller's
// flight. The waiter ran nothing itself, so callers feeding failure
// signals to a circuit breaker should treat ErrShared as "not my
// outcome" — the owner already reported the same failure once.
var ErrShared = errors.New("fleet: shared in-flight computation failed")

// ErrWaiterAbandoned wraps the context error of a waiter whose ctx
// ended while it was joined to another caller's flight. The waiter was
// never served: it got no value and learned nothing about the
// computation, which keeps running for its owner.
var ErrWaiterAbandoned = errors.New("fleet: waiter abandoned in-flight computation")

// Cache is a keyed LRU with single-flight semantics: concurrent Do
// calls for the same key run the expensive function once, with every
// waiter receiving the one result, and completed results are retained up
// to the capacity in least-recently-used order. Sweeps are deterministic
// in their key (workload identity plus the owning device's seed), so a
// cached answer is exactly the answer a fresh sweep would produce. Every
// fleet device owns one Cache, so evictions and breaker trips on one
// device never disturb another's working set.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used; guarded by mu
	items   map[string]*list.Element // key -> element whose Value is *cacheEntry; guarded by mu
	flights map[string]*flight       // guarded by mu

	// Close support: a removed device's cache settles everything and
	// refuses new work, so nothing keeps a departed node's sweeps alive.
	// closedCh is set once at construction and closed under mu; waiters
	// select on it without the lock.
	closed   bool  // guarded by mu
	closeErr error // guarded by mu
	closedCh chan struct{}
}

type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache builds a cache bounded at capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:      capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flights:  make(map[string]*flight),
		closedCh: make(chan struct{}),
	}
}

// Close shuts the cache down on behalf of a device leaving the fleet:
// the LRU is freed, new Do/Put calls fail fast with err, and every
// waiter currently joined to an in-flight computation is released with
// err instead of blocking on a flight whose owner may never report.
// Owners already inside fn run to completion (they hold real resources)
// but their results are discarded. Close is idempotent; the first
// error wins.
func (c *Cache) Close(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.closeErr = err
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	close(c.closedCh)
}

// Do returns the cached value for key, or runs fn to compute it. hit
// reports whether the caller was actually served a value without
// running fn itself — from the LRU, or by joining an in-flight
// computation that completed successfully. A caller that got nothing
// (its own fn failed, the joined flight failed, or its ctx ended while
// waiting) always reports hit=false, so hit counts requests served, not
// requests that merely queued behind one.
//
// Successful results are cached; errors are returned to every waiter
// but never cached, so a later request retries. A waiter whose joined
// flight failed sees the owner's error wrapped in ErrShared; a waiter
// whose ctx ends first returns its ctx error wrapped in
// ErrWaiterAbandoned (the computation keeps running for its owner). If
// fn panics, the panic propagates to the owner, the flight is
// unregistered — the key is never poisoned — and waiters fail with
// ErrFlightPanic (wrapped in ErrShared).
//
//energylint:hotpath
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if c.closed {
		err := c.closeErr
		c.mu.Unlock()
		return nil, false, err
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				//energylint:allow hotalloc(joined-flight failure exit, not the steady-state hit path; %w preserves the errors.Is chain)
				return nil, false, fmt.Errorf("%w: %w", ErrShared, f.err)
			}
			return f.val, true, nil
		case <-c.closedCh:
			c.mu.Lock()
			err := c.closeErr
			c.mu.Unlock()
			return nil, false, err
		case <-ctx.Done():
			//energylint:allow hotalloc(abandoned-waiter exit, not the steady-state hit path; %w preserves the errors.Is chain)
			return nil, false, fmt.Errorf("%w: %w", ErrWaiterAbandoned, ctx.Err())
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	// The deferred cleanup runs on every exit from fn, including a
	// panic: the flight is always unregistered and done always closed,
	// so a panicking fn cannot leave waiters blocked forever on a
	// permanently poisoned key.
	panicked := true
	defer func() {
		c.mu.Lock()
		delete(c.flights, key)
		if panicked {
			f.val, f.err = nil, ErrFlightPanic
		} else if f.err == nil {
			c.insert(key, f.val)
		}
		c.mu.Unlock()
		close(f.done)
	}()
	f.val, f.err = fn()
	panicked = false
	return f.val, false, f.err
}

// Put stores a value computed outside Do — the fleet placement path
// shards many devices' sweeps onto one worker pool and deposits each
// device's share here afterwards. Concurrent Put and Do for the same key
// are safe: sweeps are deterministic in the key, so whichever write
// lands last stores the same bytes the other computed.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	c.insert(key, val)
	c.mu.Unlock()
}

// insert stores a value, evicting the least recently used entry when the
// cache is full. Callers hold c.mu. Inserts after Close are dropped.
func (c *Cache) insert(key string, val any) {
	if c.closed {
		return
	}
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Get returns the cached value for key without computing anything on a
// miss. A hit still refreshes the entry's LRU position. This is the
// degraded-mode read path: while a device's breaker is open the serving
// layer answers from here instead of calling Do.
//
//energylint:hotpath
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
