package fleet

import (
	"container/list"
	"context"
	"sync"
)

// Cache is a keyed LRU with single-flight semantics: concurrent Do
// calls for the same key run the expensive function once, with every
// waiter receiving the one result, and completed results are retained up
// to the capacity in least-recently-used order. Sweeps are deterministic
// in their key (workload identity plus the owning device's seed), so a
// cached answer is exactly the answer a fresh sweep would produce. Every
// fleet device owns one Cache, so evictions and breaker trips on one
// device never disturb another's working set.
type Cache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List               // front = most recently used
	items   map[string]*list.Element // key -> element whose Value is *cacheEntry
	flights map[string]*flight
}

type cacheEntry struct {
	key string
	val any
}

// flight is one in-progress computation; waiters block on done.
type flight struct {
	done chan struct{}
	val  any
	err  error
}

// NewCache builds a cache bounded at capacity entries (minimum 1).
func NewCache(capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		cap:     capacity,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		flights: make(map[string]*flight),
	}
}

// Do returns the cached value for key, or runs fn to compute it. hit
// reports whether the caller was served without running fn itself —
// either from the LRU or by joining an in-flight computation. Successful
// results are cached; errors are returned to every waiter but never
// cached, so a later request retries. If ctx ends while waiting on
// another caller's computation, Do returns ctx.Err() (the computation
// itself keeps running for the caller that owns it).
func (c *Cache) Do(ctx context.Context, key string, fn func() (any, error)) (val any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*cacheEntry).val
		c.mu.Unlock()
		return v, true, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.val, true, f.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	f.val, f.err = fn()

	c.mu.Lock()
	delete(c.flights, key)
	if f.err == nil {
		c.insert(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Put stores a value computed outside Do — the fleet placement path
// shards many devices' sweeps onto one worker pool and deposits each
// device's share here afterwards. Concurrent Put and Do for the same key
// are safe: sweeps are deterministic in the key, so whichever write
// lands last stores the same bytes the other computed.
func (c *Cache) Put(key string, val any) {
	c.mu.Lock()
	c.insert(key, val)
	c.mu.Unlock()
}

// insert stores a value, evicting the least recently used entry when the
// cache is full. Callers hold c.mu.
func (c *Cache) insert(key string, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Get returns the cached value for key without computing anything on a
// miss. A hit still refreshes the entry's LRU position. This is the
// degraded-mode read path: while a device's breaker is open the serving
// layer answers from here instead of calling Do.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
