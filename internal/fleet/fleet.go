// Package fleet turns the single calibrated device behind energyd into
// a heterogeneous multi-device fleet. The paper calibrates one
// DVFS-aware energy model for one Jetson-class board; a production
// daemon serves many boards with distinct capacitances, leakage slopes
// and DVFS ladders, and must answer fleet-level questions — "which
// device, at which (f_core, f_mem), answers this workload cheapest?"
//
// The package provides:
//
//   - Spec / FleetConfig — JSON device declarations (tegra.DeviceParams
//     variants with per-device seeds, calibration caches, DVFS bounds).
//   - Node — one running device: simulator, calibration, per-device
//     sweep cache and circuit breaker, a load gauge, and a lifecycle
//     state (see NodeState).
//   - Registry — the routing layer: deterministic consistent-hash
//     placement with ring-order failover around open breakers, a
//     least-loaded picker, and live membership — devices are added,
//     drained and evicted at runtime through epoch'd immutable ring
//     snapshots, so in-flight walks never observe a half-built ring.
//   - Health — breaker-open windows and failed probes quarantine a
//     device; deterministic exponential-backoff probes bring it back.
//   - Drift — a per-device CUSUM over measured-vs-predicted residuals
//     that schedules recalibration when the constants go stale.
//   - SyntheticCalibration — instant noiseless calibration from declared
//     parameters, so an N-device fleet boots without N measurement
//     campaigns.
//
// Everything is deterministic: per-device seeds derive from the fleet
// seed and the device ID (never from registry order), routing is a pure
// function of the request key and the sorted active ID list, probe
// backoff jitter derives from MixSeed lineage, and sweeps shard over
// the experiments worker pool with identity-derived seeds — so a fleet
// answer is byte-identical at any worker count or routing order.
package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
)

// Node is one device of the fleet: the simulated board, its fitted
// calibration, its private sweep cache and circuit breaker, and its
// setting grids. Identity fields (ID, Dev, Cfg, Grids, Spec) are
// read-only after construction; the calibration pointer, lifecycle
// state, drift detector, Cache, Breaker and the load gauge synchronize
// internally.
type Node struct {
	// ID names the device; the empty ID is reserved for the legacy
	// single-device mode of internal/serve, which keeps device labels
	// off every wire format.
	ID      string
	Dev     *tegra.Device
	Cfg     experiments.Config // per-device seed lineage; OnProgress nil
	Grids   map[string][]dvfs.Setting
	Cache   *Cache
	Breaker *Breaker
	Spec    Spec

	// cal is the live calibration. It is swapped atomically by
	// SetCalibration (drift recalibration, add-device activation), so
	// readers never observe a half-written model; calGen counts swaps.
	cal    atomic.Pointer[experiments.Calibration]
	calGen atomic.Uint64

	state    atomic.Int32 // NodeState; transitions go through Registry
	inflight atomic.Int64

	quarantines atomic.Uint64 // active -> quarantined transitions
	recals      atomic.Uint64 // completed drift recalibrations
	recalFails  atomic.Uint64 // recalibration attempts that failed
	recalBusy   atomic.Bool   // one recalibration in flight at a time
	drift       driftWatch
}

// NodeOptions tune the per-device machinery; the zero value selects the
// serving defaults (64 cache entries, 5-failure breaker, 30 s cooldown,
// wall clock).
type NodeOptions struct {
	CacheSize        int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Clock            func() time.Time
}

// NewNode assembles a node from already-built parts, in the active
// state. cal may be nil for a device still calibrating (see
// Registry.Add); it must then be supplied via SetCalibration before the
// node serves. cfg.OnProgress, if set, fires from every sweep this node
// runs; callers serving concurrent requests should leave it nil.
func NewNode(id string, dev *tegra.Device, cal *experiments.Calibration, cfg experiments.Config, grids map[string][]dvfs.Setting, opts NodeOptions) *Node {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 64
	}
	n := &Node{
		ID:      id,
		Dev:     dev,
		Cfg:     cfg,
		Grids:   grids,
		Cache:   NewCache(opts.CacheSize),
		Breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock),
	}
	n.state.Store(int32(StateActive))
	if cal != nil {
		n.SetCalibration(cal)
	}
	return n
}

// Cal returns the node's live calibration. It is nil only while the
// node is still calibrating (a runtime add before activation); serving
// paths never see a nil calibration because calibrating nodes are kept
// off the ring.
func (n *Node) Cal() *experiments.Calibration { return n.cal.Load() }

// SetCalibration atomically swaps the node's calibration and bumps the
// generation counter. In-flight requests keep the pointer they loaded;
// the next request scores against the new constants.
func (n *Node) SetCalibration(cal *experiments.Calibration) {
	if cal == nil {
		return
	}
	n.cal.Store(cal)
	n.calGen.Add(1)
}

// CalGeneration counts calibration swaps: 1 after boot, +1 per
// recalibration. Stamped on /v1/fleet/devices so operators can tell
// which constants an answer was served from.
func (n *Node) CalGeneration() uint64 { return n.calGen.Load() }

// State returns the node's lifecycle state.
func (n *Node) State() NodeState { return NodeState(n.state.Load()) }

// Quarantines counts the node's active -> quarantined transitions.
func (n *Node) Quarantines() uint64 { return n.quarantines.Load() }

// Recalibrations counts completed drift recalibrations.
func (n *Node) Recalibrations() uint64 { return n.recals.Load() }

// RecalFailures counts recalibration attempts that did not land.
func (n *Node) RecalFailures() uint64 { return n.recalFails.Load() }

// Acquire increments the node's in-flight load gauge and returns the
// matching release. The least-loaded router and the drain path read
// this gauge.
func (n *Node) Acquire() func() {
	n.inflight.Add(1)
	return func() { n.inflight.Add(-1) }
}

// Load returns the node's current in-flight request count.
func (n *Node) Load() int64 { return n.inflight.Load() }

// Supports reports whether the node's DVFS bounds admit the setting.
// The legacy single-device node has no bounds and supports everything.
func (n *Node) Supports(s dvfs.Setting) bool { return n.Spec.supports(s) }

// Registry is the fleet's routing table with live membership. Readers
// (Route, RouteHealthy, LeastLoaded, Nodes, Get) load one immutable
// epoch'd snapshot — the member list, the ID index, and a
// consistent-hash ring built over the active members only — so a walk
// in flight keeps its coherent view while a writer swaps in the next
// epoch. Writers (Add, SetState, Drain, Evict) serialize on a mutex,
// rebuild the snapshot, and publish it atomically.
type Registry struct {
	mu       sync.Mutex
	replicas int
	members  []*Node // sorted by ID; source of truth, guarded by mu
	view     atomic.Pointer[registryView]
}

// registryView is one immutable membership snapshot.
type registryView struct {
	epoch  uint64
	nodes  []*Node // every member, sorted by ID
	byID   map[string]*Node
	active []*Node // ring index -> node; active members only, sorted
	ring   *ring   // consistent-hash ring over active
}

// NewRegistry builds a registry over the given nodes. Nodes are sorted
// by ID so every derived structure (ring points, iteration order,
// argmin tie-breaks) is a pure function of the node set, not of the
// caller's slice order. replicas <= 0 selects the ring default.
func NewRegistry(nodes []*Node, replicas int) (*Registry, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: registry needs at least one node")
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].ID < sorted[b].ID })
	seen := make(map[string]bool, len(sorted))
	for _, n := range sorted {
		if seen[n.ID] {
			return nil, fmt.Errorf("fleet: duplicate node id %q", n.ID)
		}
		seen[n.ID] = true
	}
	r := &Registry{replicas: replicas, members: sorted}
	// Uncontended (the registry has not been published yet), but taking
	// the lock keeps rebuildLocked's contract unconditional.
	r.mu.Lock()
	r.rebuildLocked()
	r.mu.Unlock()
	return r, nil
}

// rebuildLocked derives the next epoch's snapshot from the member list
// and publishes it. Callers hold r.mu.
func (r *Registry) rebuildLocked() {
	var epoch uint64 = 1
	if old := r.view.Load(); old != nil {
		epoch = old.epoch + 1
	}
	v := &registryView{
		epoch: epoch,
		nodes: r.members,
		byID:  make(map[string]*Node, len(r.members)),
	}
	ids := make([]string, 0, len(r.members))
	for _, n := range r.members {
		v.byID[n.ID] = n
		if n.State() == StateActive {
			v.active = append(v.active, n)
			ids = append(ids, n.ID)
		}
	}
	v.ring = newRing(ids, r.replicas)
	r.view.Store(v)
}

// Epoch returns the current snapshot's generation: it advances by one
// on every membership or state change, and is exported on /v1/stats and
// /metrics so operators can correlate routing shifts with fleet events.
func (r *Registry) Epoch() uint64 { return r.view.Load().epoch }

// Len returns the fleet size, every lifecycle state included.
func (r *Registry) Len() int { return len(r.view.Load().nodes) }

// Nodes returns every member sorted by ID, regardless of state.
// Callers must not mutate the slice.
func (r *Registry) Nodes() []*Node { return r.view.Load().nodes }

// Active returns the members currently accepting new placements,
// sorted by ID. Callers must not mutate the slice.
func (r *Registry) Active() []*Node { return r.view.Load().active }

// Get returns the member with the given ID, in any state.
func (r *Registry) Get(id string) (*Node, bool) {
	n, ok := r.view.Load().byID[id]
	return n, ok
}

// Route returns the active node owning key on the consistent-hash
// ring: the deterministic primary placement, regardless of breaker
// health. Prediction traffic routes here — it never runs sweeps, so an
// open sweep breaker is no reason to move it off its cache-affine
// home. Returns nil when no device is active.
func (r *Registry) Route(key string) *Node {
	v := r.view.Load()
	if len(v.active) == 0 {
		return nil
	}
	return v.active[v.ring.successor(key)]
}

// RouteHealthy returns the first active node in ring order from key
// whose sweep breaker admits fresh work, for traffic that will run a
// sweep. failover reports whether the primary was skipped. When every
// breaker is open it returns the primary, whose degraded cache path is
// then the only thing left to try; when no device is active it returns
// nil.
func (r *Registry) RouteHealthy(key string) (n *Node, failover bool) {
	v := r.view.Load()
	if len(v.active) == 0 {
		return nil, false
	}
	var primary *Node
	visited := 0
	v.ring.walkFrom(key, func(idx int) bool {
		node := v.active[idx]
		if primary == nil {
			primary = node
		}
		if state, _ := node.Breaker.Snapshot(); state != BreakerOpen {
			n = node
			failover = visited > 0
			return true
		}
		visited++
		return false
	})
	if n == nil {
		return primary, false
	}
	return n, failover
}

// LeastLoaded returns the active node with the fewest in-flight
// requests, breaking ties by ID so the choice is deterministic under
// equal load. Returns nil when no device is active.
func (r *Registry) LeastLoaded() *Node {
	v := r.view.Load()
	if len(v.active) == 0 {
		return nil
	}
	best := v.active[0]
	for _, n := range v.active[1:] {
		if n.Load() < best.Load() {
			best = n
		}
	}
	return best
}

// Loader resolves a calibration cache path to a fitted calibration;
// cmd/energyd passes cli.LoadCalibration. Build uses it only for specs
// that declare a cache.
type Loader func(path string) (*experiments.Calibration, error)

// Build assembles a registry from a validated config. Every device gets
// its own simulator (from its merged parameters), its own calibration
// (loaded from its cache when declared, synthesized from its declared
// parameters otherwise), a seed derived from the fleet seed and its ID,
// and its filtered setting grids. base supplies the fleet-wide
// experiment knobs (workers, meter, faults); its seed is overridden per
// device. The runtime add-device path (Admin) shares the same
// per-spec assembly, so a device added live is byte-identical to one
// declared at boot.
func Build(fc FleetConfig, base experiments.Config, load Loader, opts NodeOptions) (*Registry, error) {
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	a := Admin{FleetSeed: ResolveSeed(fc, base), Base: base, Load: load, Node: opts}
	nodes := make([]*Node, 0, len(fc.Devices))
	for _, spec := range fc.Devices {
		node, err := a.BuildNode(spec)
		if err != nil {
			return nil, err
		}
		cal, err := a.Calibrate(spec)
		if err != nil {
			return nil, err
		}
		node.SetCalibration(cal)
		nodes = append(nodes, node)
	}
	return NewRegistry(nodes, fc.Replicas)
}

// ResolveSeed returns the fleet's base seed: the config's pin when
// present, the caller's default otherwise.
func ResolveSeed(fc FleetConfig, base experiments.Config) int64 {
	if fc.Seed != 0 {
		return fc.Seed
	}
	return base.Seed
}

// NodeSeed resolves a device's measurement-noise seed: the spec's pin
// when present, otherwise a mix of the fleet seed with the device ID's
// hash — identity-derived, so seeds survive fleet membership changes
// and never depend on declaration order.
func NodeSeed(fleetSeed int64, spec Spec) int64 {
	if spec.Seed > 0 {
		return spec.Seed
	}
	return stats.MixSeed(fleetSeed, int64(hashKey(spec.ID)))
}
