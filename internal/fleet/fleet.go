// Package fleet turns the single calibrated device behind energyd into
// a heterogeneous multi-device fleet. The paper calibrates one
// DVFS-aware energy model for one Jetson-class board; a production
// daemon serves many boards with distinct capacitances, leakage slopes
// and DVFS ladders, and must answer fleet-level questions — "which
// device, at which (f_core, f_mem), answers this workload cheapest?"
//
// The package provides:
//
//   - Spec / FleetConfig — JSON device declarations (tegra.DeviceParams
//     variants with per-device seeds, calibration caches, DVFS bounds).
//   - Node — one running device: simulator, calibration, per-device
//     sweep cache and circuit breaker, and a load gauge.
//   - Registry — the routing layer: deterministic consistent-hash
//     placement with ring-order failover around open breakers, plus a
//     least-loaded picker for load-balancing callers.
//   - SyntheticCalibration — instant noiseless calibration from declared
//     parameters, so an N-device fleet boots without N measurement
//     campaigns.
//
// Everything is deterministic: per-device seeds derive from the fleet
// seed and the device ID (never from registry order), routing is a pure
// function of the request key and the sorted ID list, and sweeps shard
// over the experiments worker pool with identity-derived seeds — so a
// fleet answer is byte-identical at any worker count or routing order.
package fleet

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
)

// Node is one device of the fleet: the simulated board, its fitted
// calibration, its private sweep cache and circuit breaker, and its
// setting grids. All fields are read-only after construction; Cache,
// Breaker and the load gauge synchronize internally.
type Node struct {
	// ID names the device; the empty ID is reserved for the legacy
	// single-device mode of internal/serve, which keeps device labels
	// off every wire format.
	ID      string
	Dev     *tegra.Device
	Cal     *experiments.Calibration
	Cfg     experiments.Config // per-device seed lineage; OnProgress nil
	Grids   map[string][]dvfs.Setting
	Cache   *Cache
	Breaker *Breaker
	Spec    Spec

	inflight atomic.Int64
}

// NodeOptions tune the per-device machinery; the zero value selects the
// serving defaults (64 cache entries, 5-failure breaker, 30 s cooldown,
// wall clock).
type NodeOptions struct {
	CacheSize        int
	BreakerThreshold int
	BreakerCooldown  time.Duration
	Clock            func() time.Time
}

// NewNode assembles a node from already-built parts. cfg.OnProgress, if
// set, fires from every sweep this node runs; callers serving
// concurrent requests should leave it nil.
func NewNode(id string, dev *tegra.Device, cal *experiments.Calibration, cfg experiments.Config, grids map[string][]dvfs.Setting, opts NodeOptions) *Node {
	if opts.CacheSize <= 0 {
		opts.CacheSize = 64
	}
	return &Node{
		ID:      id,
		Dev:     dev,
		Cal:     cal,
		Cfg:     cfg,
		Grids:   grids,
		Cache:   NewCache(opts.CacheSize),
		Breaker: NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Clock),
	}
}

// Acquire increments the node's in-flight load gauge and returns the
// matching release. The least-loaded router reads this gauge.
func (n *Node) Acquire() func() {
	n.inflight.Add(1)
	return func() { n.inflight.Add(-1) }
}

// Load returns the node's current in-flight request count.
func (n *Node) Load() int64 { return n.inflight.Load() }

// Supports reports whether the node's DVFS bounds admit the setting.
// The legacy single-device node has no bounds and supports everything.
func (n *Node) Supports(s dvfs.Setting) bool { return n.Spec.supports(s) }

// Registry is the fleet's routing table: the sorted node list, an index
// by ID, and the consistent-hash ring. It is immutable after
// construction and safe for concurrent use.
type Registry struct {
	nodes []*Node // sorted by ID
	byID  map[string]*Node
	ring  *ring
}

// NewRegistry builds a registry over the given nodes. Nodes are sorted
// by ID so every derived structure (ring points, iteration order,
// argmin tie-breaks) is a pure function of the node set, not of the
// caller's slice order. replicas <= 0 selects the ring default.
func NewRegistry(nodes []*Node, replicas int) (*Registry, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("fleet: registry needs at least one node")
	}
	sorted := make([]*Node, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].ID < sorted[b].ID })
	byID := make(map[string]*Node, len(sorted))
	ids := make([]string, len(sorted))
	for i, n := range sorted {
		if _, dup := byID[n.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate node id %q", n.ID)
		}
		byID[n.ID] = n
		ids[i] = n.ID
	}
	return &Registry{nodes: sorted, byID: byID, ring: newRing(ids, replicas)}, nil
}

// Len returns the fleet size.
func (r *Registry) Len() int { return len(r.nodes) }

// Nodes returns the fleet sorted by ID. Callers must not mutate the
// slice.
func (r *Registry) Nodes() []*Node { return r.nodes }

// Get returns the node with the given ID.
func (r *Registry) Get(id string) (*Node, bool) {
	n, ok := r.byID[id]
	return n, ok
}

// Route returns the node owning key on the consistent-hash ring: the
// deterministic primary placement, regardless of health. Prediction
// traffic routes here — it never runs sweeps, so an open sweep breaker
// is no reason to move it off its cache-affine home.
func (r *Registry) Route(key string) *Node {
	return r.nodes[r.ring.successor(key)]
}

// RouteHealthy returns the first node in ring order from key whose
// sweep breaker admits fresh work, for traffic that will run a sweep.
// failover reports whether the primary was skipped. When every breaker
// is open it returns the primary, whose degraded cache path is then the
// only thing left to try.
func (r *Registry) RouteHealthy(key string) (n *Node, failover bool) {
	var primary *Node
	visited := 0
	r.ring.walkFrom(key, func(idx int) bool {
		node := r.nodes[idx]
		if primary == nil {
			primary = node
		}
		if state, _ := node.Breaker.Snapshot(); state != BreakerOpen {
			n = node
			failover = visited > 0
			return true
		}
		visited++
		return false
	})
	if n == nil {
		return primary, false
	}
	return n, failover
}

// LeastLoaded returns the node with the fewest in-flight requests,
// breaking ties by ID so the choice is deterministic under equal load.
func (r *Registry) LeastLoaded() *Node {
	best := r.nodes[0]
	for _, n := range r.nodes[1:] {
		if n.Load() < best.Load() {
			best = n
		}
	}
	return best
}

// Loader resolves a calibration cache path to a fitted calibration;
// cmd/energyd passes cli.LoadCalibration. Build uses it only for specs
// that declare a cache.
type Loader func(path string) (*experiments.Calibration, error)

// Build assembles a registry from a validated config. Every device gets
// its own simulator (from its merged parameters), its own calibration
// (loaded from its cache when declared, synthesized from its declared
// parameters otherwise), a seed derived from the fleet seed and its ID,
// and its filtered setting grids. base supplies the fleet-wide
// experiment knobs (workers, meter, faults); its seed is overridden per
// device.
func Build(fc FleetConfig, base experiments.Config, load Loader, opts NodeOptions) (*Registry, error) {
	if err := fc.Validate(); err != nil {
		return nil, err
	}
	fleetSeed := fc.Seed
	if fleetSeed == 0 {
		fleetSeed = base.Seed
	}
	nodes := make([]*Node, 0, len(fc.Devices))
	for _, spec := range fc.Devices {
		params := spec.DeviceParams()
		dev, err := tegra.NewCustomDevice(params)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
		}
		var cal *experiments.Calibration
		switch {
		case spec.CalibrationCache != "":
			if load == nil {
				return nil, fmt.Errorf("fleet: device %q declares a calibration cache but no loader was supplied", spec.ID)
			}
			cal, err = load(spec.CalibrationCache)
			if err != nil {
				return nil, fmt.Errorf("fleet: device %q: loading calibration: %w", spec.ID, err)
			}
		default:
			cal, err = SyntheticCalibration(DeclaredModel(params))
			if err != nil {
				return nil, fmt.Errorf("fleet: device %q: synthetic calibration: %w", spec.ID, err)
			}
		}
		grids, err := spec.Grids()
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.Seed = NodeSeed(fleetSeed, spec)
		node := NewNode(spec.ID, dev, cal, cfg, grids, opts)
		node.Spec = spec
		nodes = append(nodes, node)
	}
	return NewRegistry(nodes, fc.Replicas)
}

// NodeSeed resolves a device's measurement-noise seed: the spec's pin
// when present, otherwise a mix of the fleet seed with the device ID's
// hash — identity-derived, so seeds survive fleet membership changes
// and never depend on declaration order.
func NodeSeed(fleetSeed int64, spec Spec) int64 {
	if spec.Seed > 0 {
		return spec.Seed
	}
	return stats.MixSeed(fleetSeed, int64(hashKey(spec.ID)))
}
