package fleet

import (
	"context"
	"sync"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/units"
)

// Calibration drift: the paper's Eq. 9 constants are fitted once, but
// the hardware they describe moves — sustained thermal throttling (the
// internal/faults model) changes effective frequency and power, so
// measured sweep energies walk away from what the calibrated model
// predicts. The watchdog folds every fresh sweep's candidates into a
// per-device two-sided CUSUM over relative residuals
//
//	r = (measured - predicted) / measured
//
// with slack k absorbing the calibration's natural noise floor.
// Sustained one-sided bias accumulates past the threshold h and fires;
// symmetric noise cancels. Firing resets the statistic and hands the
// device to a Recalibrator — the same retrying, quarantining,
// faults-aware campaign that produced the boot constants — whose
// result swaps in atomically (Node.SetCalibration) under a new
// calibration generation. Cached sweeps stay valid across the swap:
// they are raw measurements, model-independent, and the serving layer
// re-scores them against the current model on every answer.

// DriftConfig tunes the per-device drift watchdog. The zero value of
// each field selects the documented default; a nil *DriftConfig in the
// serving layer disables drift detection entirely.
type DriftConfig struct {
	// Window caps how many of a sweep's candidates are folded per
	// observation (most-recent kept); zero selects 32. It bounds the
	// work per sweep, not the CUSUM memory, which is unbounded by
	// design — slow drift should accumulate.
	Window int
	// Slack is the CUSUM slack k: per-observation |relative residual|
	// absorbed before anything accumulates. Zero selects 0.05 (5%,
	// comfortably above the synthetic calibration's noise floor).
	Slack units.Ratio
	// Threshold is the CUSUM decision threshold h on the accumulated
	// statistic. Zero selects 1.0 — e.g. twenty observations biased 10%
	// past slack, or a few grossly-throttled ones.
	Threshold units.Ratio
}

func (c DriftConfig) window() int {
	if c.Window <= 0 {
		return 32
	}
	return c.Window
}

func (c DriftConfig) slack() float64 {
	if c.Slack <= 0 {
		return 0.05
	}
	return float64(c.Slack)
}

func (c DriftConfig) threshold() float64 {
	if c.Threshold <= 0 {
		return 1.0
	}
	return float64(c.Threshold)
}

// driftWatch is one device's CUSUM state.
type driftWatch struct {
	mu  sync.Mutex
	pos float64 // accumulated positive (under-prediction) drift; guarded by mu
	neg float64 // accumulated negative (over-prediction) drift; guarded by mu
}

// observe folds one relative residual and reports whether either side
// crossed the threshold; crossing resets both sides.
func (w *driftWatch) observe(r, k, h float64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pos = max(0, w.pos+r-k)
	w.neg = max(0, w.neg-r-k)
	if w.pos > h || w.neg > h {
		w.pos, w.neg = 0, 0
		return true
	}
	return false
}

// reset clears the CUSUM, for a freshly recalibrated device: residuals
// accumulated against the stale constants say nothing about the new
// ones.
func (w *driftWatch) reset() {
	w.mu.Lock()
	w.pos, w.neg = 0, 0
	w.mu.Unlock()
}

// ObserveSweep folds a fresh sweep's candidates into the node's drift
// statistic and reports whether the watchdog fired. Only genuinely
// fresh measurements belong here — cached or degraded answers re-score
// old bytes and carry no new information about the hardware.
func (n *Node) ObserveSweep(cfg DriftConfig, cands []core.Candidate) bool {
	cal := n.Cal()
	if cal == nil || len(cands) == 0 {
		return false
	}
	if w := cfg.window(); len(cands) > w {
		cands = cands[len(cands)-w:]
	}
	k, h := cfg.slack(), cfg.threshold()
	fired := false
	for _, c := range cands {
		if c.MeasuredEnergy <= 0 {
			continue
		}
		pred := cal.Model.Predict(c.Profile, c.Setting, c.Time)
		r := float64(c.MeasuredEnergy-pred) / float64(c.MeasuredEnergy)
		if n.drift.observe(r, k, h) {
			fired = true
		}
	}
	return fired
}

// BeginRecalibration claims the node's single recalibration slot.
// Callers that get false leave the work to the holder; the drift
// statistic was already reset by the firing observation.
func (n *Node) BeginRecalibration() bool {
	return n.recalBusy.CompareAndSwap(false, true)
}

// FinishRecalibration releases the slot claimed by BeginRecalibration
// and lands the outcome: on success the calibration swaps in atomically
// under a new generation; on failure the old constants keep serving and
// the failure is counted. Either way the drift statistic restarts
// clean.
func (n *Node) FinishRecalibration(cal *experiments.Calibration, err error) {
	if err == nil && cal != nil {
		n.SetCalibration(cal)
		n.recals.Add(1)
	} else {
		n.recalFails.Add(1)
	}
	n.drift.reset()
	n.recalBusy.Store(false)
}

// Recalibrator re-fits one device's constants; the serving layer runs
// it off the hot path when the watchdog fires.
type Recalibrator func(ctx context.Context, n *Node) (*experiments.Calibration, error)

// DefaultRecalibrator runs the full measured campaign against the live
// device — the same retrying, quarantining, faults-aware path as boot
// (experiments.Calibrate with the node's own config), so a drifted
// device is re-fit under whatever fault plan it is actually
// experiencing.
func DefaultRecalibrator(ctx context.Context, n *Node) (*experiments.Calibration, error) {
	cfg := n.Cfg
	cfg.OnProgress = nil
	return experiments.Calibrate(ctx, n.Dev, cfg)
}
