package fleet

import (
	"fmt"
	"testing"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev-%02d", i)
	}
	return ids
}

// TestRingStableUnderMembershipChange is the consistent-hashing
// contract: adding one device to N remaps only the keys the new device
// now owns (~K/(N+1) of them), and every remapped key moves TO the new
// device — no key shuffles between surviving devices. Removal is the
// mirror image.
func TestRingStableUnderMembershipChange(t *testing.T) {
	const numKeys = 4096
	ids := ringIDs(8)
	before := newRing(ids, 0)
	after := newRing(append(append([]string{}, ids...), "dev-new"), 0)
	newIndex := len(ids) // sorted position of "dev-new" given the dev-XX names

	moved := 0
	for k := 0; k < numKeys; k++ {
		key := fmt.Sprintf("workload-%d", k)
		b, a := before.successor(key), after.successor(key)
		if b != a {
			moved++
			if a != newIndex {
				t.Fatalf("key %q moved from node %d to node %d, not to the new device", key, b, a)
			}
		}
	}
	// Expected share is numKeys/9 ≈ 455; allow generous slack for hash
	// variance but fail on wholesale reshuffles.
	if moved == 0 || moved > numKeys/4 {
		t.Errorf("adding 1 of 9 devices moved %d/%d keys, want ~%d (< %d)",
			moved, numKeys, numKeys/9, numKeys/4)
	}

	// Removing the device restores the original mapping exactly.
	for k := 0; k < numKeys; k++ {
		key := fmt.Sprintf("workload-%d", k)
		if before.successor(key) != newRing(ids, 0).successor(key) {
			t.Fatal("ring construction is not a pure function of the ID list")
		}
		break // one spot-check; full rebuild per key is wasteful
	}
}

// TestRingWalkVisitsAllOnce checks the failover order: every node
// appears exactly once, starting at the key's successor.
func TestRingWalkVisitsAllOnce(t *testing.T) {
	ids := ringIDs(5)
	r := newRing(ids, 16)
	for k := 0; k < 64; k++ {
		key := fmt.Sprintf("wl-%d", k)
		order := r.walk(key)
		if len(order) != len(ids) {
			t.Fatalf("walk(%q) visited %d nodes, want %d", key, len(order), len(ids))
		}
		if order[0] != r.successor(key) {
			t.Fatalf("walk(%q) starts at %d, successor is %d", key, order[0], r.successor(key))
		}
		seen := make(map[int]bool)
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("walk(%q) visited node %d twice", key, idx)
			}
			seen[idx] = true
		}
	}
}

// TestRingBalance guards against gross imbalance: with the default
// replica count no device should own more than 2x its fair share.
func TestRingBalance(t *testing.T) {
	const numKeys = 8192
	ids := ringIDs(4)
	r := newRing(ids, 0)
	counts := make([]int, len(ids))
	for k := 0; k < numKeys; k++ {
		counts[r.successor(fmt.Sprintf("key-%d", k))]++
	}
	fair := numKeys / len(ids)
	for i, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("node %d owns %d keys, fair share %d — ring is unbalanced: %v", i, c, fair, counts)
		}
	}
}

// TestRingDeterministic pins the routing function: same IDs, same keys,
// same owners, across construction order of the input slice's copy.
func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"alpha", "beta", "gamma"}, 0)
	b := newRing([]string{"alpha", "beta", "gamma"}, 0)
	for k := 0; k < 256; k++ {
		key := fmt.Sprintf("k%d", k)
		if a.successor(key) != b.successor(key) {
			t.Fatalf("two rings over identical IDs disagree on %q", key)
		}
	}
}
