package fleet

import (
	"fmt"
	"testing"

	"dvfsroofline/internal/experiments"
)

func ringIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("dev-%02d", i)
	}
	return ids
}

// TestRingStableUnderMembershipChange is the consistent-hashing
// contract: adding one device to N remaps only the keys the new device
// now owns (~K/(N+1) of them), and every remapped key moves TO the new
// device — no key shuffles between surviving devices. Removal is the
// mirror image.
func TestRingStableUnderMembershipChange(t *testing.T) {
	const numKeys = 4096
	ids := ringIDs(8)
	before := newRing(ids, 0)
	after := newRing(append(append([]string{}, ids...), "dev-new"), 0)
	newIndex := len(ids) // sorted position of "dev-new" given the dev-XX names

	moved := 0
	for k := 0; k < numKeys; k++ {
		key := fmt.Sprintf("workload-%d", k)
		b, a := before.successor(key), after.successor(key)
		if b != a {
			moved++
			if a != newIndex {
				t.Fatalf("key %q moved from node %d to node %d, not to the new device", key, b, a)
			}
		}
	}
	// Expected share is numKeys/9 ≈ 455; allow generous slack for hash
	// variance but fail on wholesale reshuffles.
	if moved == 0 || moved > numKeys/4 {
		t.Errorf("adding 1 of 9 devices moved %d/%d keys, want ~%d (< %d)",
			moved, numKeys, numKeys/9, numKeys/4)
	}

	// Removing the device restores the original mapping exactly.
	for k := 0; k < numKeys; k++ {
		key := fmt.Sprintf("workload-%d", k)
		if before.successor(key) != newRing(ids, 0).successor(key) {
			t.Fatal("ring construction is not a pure function of the ID list")
		}
		break // one spot-check; full rebuild per key is wasteful
	}
}

// TestRingWalkVisitsAllOnce checks the failover order: every node
// appears exactly once, starting at the key's successor.
func TestRingWalkVisitsAllOnce(t *testing.T) {
	ids := ringIDs(5)
	r := newRing(ids, 16)
	for k := 0; k < 64; k++ {
		key := fmt.Sprintf("wl-%d", k)
		order := r.walk(key)
		if len(order) != len(ids) {
			t.Fatalf("walk(%q) visited %d nodes, want %d", key, len(order), len(ids))
		}
		if order[0] != r.successor(key) {
			t.Fatalf("walk(%q) starts at %d, successor is %d", key, order[0], r.successor(key))
		}
		seen := make(map[int]bool)
		for _, idx := range order {
			if seen[idx] {
				t.Fatalf("walk(%q) visited node %d twice", key, idx)
			}
			seen[idx] = true
		}
	}
}

// TestRingBalance guards against gross imbalance: with the default
// replica count no device should own more than 2x its fair share.
func TestRingBalance(t *testing.T) {
	const numKeys = 8192
	ids := ringIDs(4)
	r := newRing(ids, 0)
	counts := make([]int, len(ids))
	for k := 0; k < numKeys; k++ {
		counts[r.successor(fmt.Sprintf("key-%d", k))]++
	}
	fair := numKeys / len(ids)
	for i, c := range counts {
		if c > 2*fair || c < fair/2 {
			t.Errorf("node %d owns %d keys, fair share %d — ring is unbalanced: %v", i, c, fair, counts)
		}
	}
}

// referenceWalk is the original O(points) map-based implementation,
// kept as the oracle for the optimized walkFrom.
func referenceWalk(r *ring, key string) []int {
	h := hashKey(key)
	start := 0
	for i, p := range r.points {
		if p.hash >= h {
			start = i
			break
		}
	}
	seen := make(map[int]bool)
	order := make([]int, 0, 8)
	for k := 0; k < len(r.points); k++ {
		p := r.points[(start+k)%len(r.points)]
		if !seen[p.index] {
			seen[p.index] = true
			order = append(order, p.index)
		}
	}
	return order
}

// TestRingWalkMatchesReference checks the optimized early-exit walk
// against the exhaustive map-based scan it replaced, across fleet sizes
// that exercise both the bitmask and the []bool seen-set paths.
func TestRingWalkMatchesReference(t *testing.T) {
	for _, n := range []int{1, 2, 5, 64, 65, 80} {
		r := newRing(ringIDs(n), 0)
		for k := 0; k < 128; k++ {
			key := fmt.Sprintf("wl-%d", k)
			got := r.walk(key)
			want := referenceWalk(r, key)
			if len(got) != len(want) {
				t.Fatalf("n=%d walk(%q) = %d nodes, reference %d", n, key, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d walk(%q)[%d] = %d, reference %d", n, key, i, got[i], want[i])
				}
			}
		}
	}
}

// TestRingWalkEarlyExit verifies walkFrom stops at the first visit that
// returns true instead of scanning the rest of the ring.
func TestRingWalkEarlyExit(t *testing.T) {
	r := newRing(ringIDs(8), 0)
	calls := 0
	r.walkFrom("some-key", func(int) bool {
		calls++
		return calls == 2
	})
	if calls != 2 {
		t.Errorf("walkFrom visited %d nodes after stop, want 2", calls)
	}
}

// BenchmarkRingWalk measures the failover-order scan on the request hot
// path. The pre-PR7 implementation allocated a map and scanned all
// 128·N virtual points per lookup; the rewrite early-exits once every
// distinct node has appeared and keeps the seen-set in a register for
// fleets up to 64 devices, so the common case is zero-allocation.
func BenchmarkRingWalk(b *testing.B) {
	for _, n := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("devices=%d", n), func(b *testing.B) {
			r := newRing(ringIDs(n), 0)
			keys := make([]string, 64)
			for i := range keys {
				keys[i] = fmt.Sprintf("wl-%d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.walkFrom(keys[i%len(keys)], func(int) bool { return false })
			}
		})
	}
}

// BenchmarkRingRouteHealthy measures the full healthy-routing decision
// (walk + breaker snapshots) as the serving layer runs it per autotune
// request, with all breakers closed (the common case: the primary wins
// on the first visit).
func BenchmarkRingRouteHealthy(b *testing.B) {
	for _, n := range []int{4, 16} {
		b.Run(fmt.Sprintf("devices=%d", n), func(b *testing.B) {
			nodes := make([]*Node, n)
			for i := range nodes {
				nodes[i] = NewNode(fmt.Sprintf("dev-%02d", i), nil, nil, experiments.Config{Seed: 1}, nil, NodeOptions{})
			}
			reg, err := NewRegistry(nodes, 0)
			if err != nil {
				b.Fatal(err)
			}
			keys := make([]string, 64)
			for i := range keys {
				keys[i] = fmt.Sprintf("wl-%d", i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				reg.RouteHealthy(keys[i%len(keys)])
			}
		})
	}
}

// TestRingDeterministic pins the routing function: same IDs, same keys,
// same owners, across construction order of the input slice's copy.
func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"alpha", "beta", "gamma"}, 0)
	b := newRing([]string{"alpha", "beta", "gamma"}, 0)
	for k := 0; k < 256; k++ {
		key := fmt.Sprintf("k%d", k)
		if a.successor(key) != b.successor(key) {
			t.Fatalf("two rings over identical IDs disagree on %q", key)
		}
	}
}
