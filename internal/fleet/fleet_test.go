package fleet

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
)

// buildTestFleet assembles a 3-device heterogeneous registry from specs
// alone (synthetic calibrations, no loader).
func buildTestFleet(t *testing.T, specs ...Spec) *Registry {
	t.Helper()
	if len(specs) == 0 {
		specs = []Spec{
			{ID: "tk1-a"},
			{ID: "tk1-hot", Params: ParamsJSON{LeakProcWpV: 3.6, MiscW: 0.25}},
			{ID: "tk1-lowpower", Params: ParamsJSON{SPpJ: 21.0, DRAMpJ: 310.0}, MaxCoreMHz: 612},
		}
	}
	reg, err := Build(FleetConfig{Devices: specs}, experiments.Config{Seed: 42}, nil, NodeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestSyntheticCalibrationRecoversDeclaredModel: the synthetic campaign
// is noiseless, so fitting it must recover each device's declared
// constants to numerical precision — heterogeneous fleets boot with
// per-device models that match their specs.
func TestSyntheticCalibrationRecoversDeclaredModel(t *testing.T) {
	spec := Spec{ID: "x", Params: ParamsJSON{SPpJ: 19.5, DRAMpJ: 401.25, LeakProcWpV: 3.1, MiscW: 0.4}}
	declared := DeclaredModel(spec.DeviceParams())
	cal, err := SyntheticCalibration(declared)
	if err != nil {
		t.Fatal(err)
	}
	m := cal.Model
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"sp", float64(m.SPpJ), float64(declared.SPpJ)},
		{"dp", float64(m.DPpJ), float64(declared.DPpJ)},
		{"int", float64(m.IntpJ), float64(declared.IntpJ)},
		{"sm", float64(m.SMpJ), float64(declared.SMpJ)},
		{"l2", float64(m.L2pJ), float64(declared.L2pJ)},
		{"dram", float64(m.DRAMpJ), float64(declared.DRAMpJ)},
		{"c1proc", float64(m.C1Proc), float64(declared.C1Proc)},
		{"c1mem", float64(m.C1Mem), float64(declared.C1Mem)},
		{"pmisc", float64(m.PMisc), float64(declared.PMisc)},
	}
	for _, p := range pairs {
		if math.Abs(p.got-p.want) > 1e-6*math.Max(1, p.want) {
			t.Errorf("fitted %s = %v, declared %v", p.name, p.got, p.want)
		}
	}
}

func TestSpecParamsMergeFromTK1(t *testing.T) {
	base := tegra.TK1Params()
	p := Spec{ID: "x", Params: ParamsJSON{SPpJ: 11.5}}.DeviceParams()
	if p.SPpJ != 11.5 {
		t.Errorf("override SPpJ = %v, want 11.5", p.SPpJ)
	}
	if p.DPpJ != base.DPpJ || p.DRAMpJ != base.DRAMpJ || p.MiscW != base.MiscW {
		t.Error("unset fields did not inherit the TK1 baseline")
	}
	if p.ActivitySlope != base.ActivitySlope {
		t.Error("non-ideality knobs must inherit unless Ideal is set")
	}
	ideal := Spec{ID: "x", Ideal: true}.DeviceParams()
	if ideal.ActivitySlope != 0 || ideal.ThermalSlope != 0 || ideal.FreqSlope != 0 ||
		ideal.MixJitterAmp != 0 || ideal.StallWatts != 0 {
		t.Error("Ideal spec retained non-ideality knobs")
	}
	if ideal.SPpJ != base.SPpJ {
		t.Error("Ideal must not zero the physical coefficients")
	}
}

func TestSpecDVFSBoundsFilterGrids(t *testing.T) {
	s := Spec{ID: "trimmed", MinCoreMHz: 300, MaxCoreMHz: 612}
	grids, err := s.Grids()
	if err != nil {
		t.Fatal(err)
	}
	full, cal := grids["full"], grids["calibration"]
	if len(full) == 0 || len(cal) == 0 {
		t.Fatal("bounds emptied the grids")
	}
	for _, set := range full {
		if set.Core.FreqMHz < 300 || set.Core.FreqMHz > 612 {
			t.Fatalf("full grid leaked out-of-bounds setting %v", set)
		}
	}
	unbounded, err := Spec{ID: "all"}.Grids()
	if err != nil {
		t.Fatal(err)
	}
	if len(full) >= len(unbounded["full"]) {
		t.Error("bounds did not shrink the full grid")
	}
	// Impossible bounds are a config error, not an empty fleet member.
	if _, err := (Spec{ID: "bad", MinCoreMHz: 5000}).Grids(); err == nil {
		t.Error("impossible bounds must error")
	}
}

func TestParseConfigRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":   `{"devices": [{"id": "a", "capacitance": 1}]}`,
		"no devices":      `{"devices": []}`,
		"empty id":        `{"devices": [{"id": ""}]}`,
		"duplicate id":    `{"devices": [{"id": "a"}, {"id": "a"}]}`,
		"negative seed":   `{"devices": [{"id": "a", "seed": -1}]}`,
		"empty grid":      `{"devices": [{"id": "a", "min_core_mhz": 9000}]}`,
		"typo in params":  `{"devices": [{"id": "a", "params": {"sp_pj": 1}}]}`,
		"negative params": `{"devices": [{"id": "a", "params": {"sp_pj_v2": -3}}]}`,
	}
	for name, body := range cases {
		if _, err := ParseConfig([]byte(body)); err == nil {
			t.Errorf("%s: ParseConfig accepted %s", name, body)
		}
	}
}

func TestLoadConfigResolvesRelativeCachePaths(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "fleet.json")
	body := `{"devices": [{"id": "a", "calibration_cache": "caches/a.csv"}, {"id": "b"}]}`
	if err := os.WriteFile(cfgPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	fc, err := LoadConfig(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, "caches", "a.csv")
	if fc.Devices[0].CalibrationCache != want {
		t.Errorf("cache path = %q, want %q", fc.Devices[0].CalibrationCache, want)
	}
	if fc.Devices[1].CalibrationCache != "" {
		t.Error("device without a cache gained one")
	}
}

// TestNodeSeedsIdentityDerived: seeds come from the fleet seed and the
// device ID, so they are distinct across devices, stable under fleet
// membership changes, and honor explicit pins.
func TestNodeSeedsIdentityDerived(t *testing.T) {
	a := NodeSeed(42, Spec{ID: "alpha"})
	b := NodeSeed(42, Spec{ID: "beta"})
	if a == b {
		t.Error("two devices derived the same seed")
	}
	if NodeSeed(42, Spec{ID: "alpha"}) != a {
		t.Error("seed derivation is not stable")
	}
	if NodeSeed(7, Spec{ID: "alpha"}) == a {
		t.Error("fleet seed does not flow into device seeds")
	}
	if NodeSeed(42, Spec{ID: "alpha", Seed: 1234}) != 1234 {
		t.Error("explicit seed pin ignored")
	}
}

func TestRegistryRoutingDeterministicAcrossBuilds(t *testing.T) {
	r1 := buildTestFleet(t)
	r2 := buildTestFleet(t)
	keys := []string{"wl-a", "wl-b", "wl-c", "wl-d", "wl-e", "wl-f"}
	distinct := make(map[string]bool)
	for _, k := range keys {
		n1, n2 := r1.Route(k), r2.Route(k)
		if n1.ID != n2.ID {
			t.Fatalf("key %q routed to %q then %q across identical builds", k, n1.ID, n2.ID)
		}
		distinct[n1.ID] = true
	}
	if len(distinct) < 2 {
		t.Errorf("all %d keys landed on one device; ring looks degenerate", len(keys))
	}
}

// TestRouteHealthyFailsOverInRingOrder: an open breaker on the primary
// moves traffic to the next device in ring order — deterministically —
// and recovery moves it back.
func TestRouteHealthyFailsOverInRingOrder(t *testing.T) {
	reg := buildTestFleet(t)
	const key = "failover-workload"
	primary := reg.Route(key)
	n, failover := reg.RouteHealthy(key)
	if failover || n != primary {
		t.Fatalf("healthy fleet must serve from the primary %q, got %q", primary.ID, n.ID)
	}

	primary.Breaker.ForceOpen(true)
	n2, failover := reg.RouteHealthy(key)
	if !failover || n2 == primary {
		t.Fatalf("open primary not failed over: got %q (failover=%v)", n2.ID, failover)
	}
	// The backup is stable while the outage lasts.
	for i := 0; i < 8; i++ {
		if n, _ := reg.RouteHealthy(key); n != n2 {
			t.Fatal("failover target changed between requests")
		}
	}

	// With every breaker open the primary is returned (degraded path).
	for _, node := range reg.Nodes() {
		node.Breaker.ForceOpen(true)
	}
	if n, failover := reg.RouteHealthy(key); n != primary || failover {
		t.Errorf("all-open fleet must fall back to the primary, got %q (failover=%v)", n.ID, failover)
	}

	primary.Breaker.ForceOpen(false)
	if n, failover := reg.RouteHealthy(key); n != primary || failover {
		t.Errorf("recovered primary not restored: got %q", n.ID)
	}
}

func TestLeastLoadedTieBreaksByID(t *testing.T) {
	reg := buildTestFleet(t)
	if got := reg.LeastLoaded(); got != reg.Nodes()[0] {
		t.Fatalf("idle fleet least-loaded = %q, want lowest ID %q", got.ID, reg.Nodes()[0].ID)
	}
	release := reg.Nodes()[0].Acquire()
	if got := reg.LeastLoaded(); got != reg.Nodes()[1] {
		t.Fatalf("least-loaded = %q with node 0 busy, want %q", got.ID, reg.Nodes()[1].ID)
	}
	release()
	if reg.Nodes()[0].Load() != 0 {
		t.Error("release did not drop the load gauge")
	}
}

func TestBuildValidatesAndWiresNodes(t *testing.T) {
	reg := buildTestFleet(t)
	if reg.Len() != 3 {
		t.Fatalf("fleet size %d, want 3", reg.Len())
	}
	ids := []string{"tk1-a", "tk1-hot", "tk1-lowpower"}
	for i, n := range reg.Nodes() {
		if n.ID != ids[i] {
			t.Fatalf("nodes not sorted by ID: %q at %d", n.ID, i)
		}
		if n.Cal() == nil || n.Dev == nil || n.Cache == nil || n.Breaker == nil {
			t.Fatalf("node %q missing machinery", n.ID)
		}
		if n.Cfg.Seed == 42 {
			t.Errorf("node %q kept the raw fleet seed; want identity-derived", n.ID)
		}
	}
	lp, _ := reg.Get("tk1-lowpower")
	if len(lp.Grids["full"]) >= len(reg.Nodes()[0].Grids["full"]) {
		t.Error("DVFS-bounded device did not get a trimmed grid")
	}
	hot, _ := reg.Get("tk1-hot")
	if hot.Cal().Model.C1Proc == reg.Nodes()[0].Cal().Model.C1Proc {
		t.Error("heterogeneous leakage did not reach the fitted models")
	}
	// A declared cache path without a loader is a build error.
	_, err := Build(FleetConfig{Devices: []Spec{{ID: "a", CalibrationCache: "x.csv"}}},
		experiments.Config{Seed: 1}, nil, NodeOptions{})
	if err == nil {
		t.Error("Build accepted a calibration cache with no loader")
	}
}

func TestNodeOptionsDefaults(t *testing.T) {
	n := NewNode("x", nil, nil, experiments.Config{}, nil, NodeOptions{})
	if n.Cache == nil || n.Breaker == nil {
		t.Fatal("node machinery missing")
	}
	// Defaulted breaker: 5 failures trip it.
	now := time.Unix(0, 0)
	b := NewBreaker(0, 0, func() time.Time { return now })
	for i := 0; i < 4; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("breaker tripped after %d failures; default threshold is 5", i+1)
		}
	}
	b.Failure()
	if b.Allow() {
		t.Error("default threshold breaker did not trip at 5")
	}
}
