package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCacheHitAfterMiss(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	v, hit, err := c.Do(ctx, "k", func() (any, error) { return 7, nil })
	if err != nil || hit || v != 7 {
		t.Fatalf("first Do = (%v, %v, %v), want (7, false, nil)", v, hit, err)
	}
	v, hit, err = c.Do(ctx, "k", func() (any, error) {
		t.Fatal("fn re-ran on a cached key")
		return nil, nil
	})
	if err != nil || !hit || v != 7 {
		t.Fatalf("second Do = (%v, %v, %v), want (7, true, nil)", v, hit, err)
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	if _, _, err := c.Do(ctx, "k", func() (any, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	v, hit, err := c.Do(ctx, "k", func() (any, error) { return "ok", nil })
	if err != nil || hit || v != "ok" {
		t.Fatalf("retry after error = (%v, %v, %v), want fresh run", v, hit, err)
	}
}

func TestCacheSingleflightConcurrent(t *testing.T) {
	c := NewCache(4)
	var runs atomic.Int32
	gate := make(chan struct{})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _, err := c.Do(context.Background(), "k", func() (any, error) {
				runs.Add(1)
				<-gate
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = (%v, %v)", v, err)
			}
		}()
	}
	// Let the goroutines pile onto the flight, then release the owner.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if got := runs.Load(); got != 1 {
		t.Errorf("fn ran %d times, want 1", got)
	}
}

func TestCacheJoinerHonorsContext(t *testing.T) {
	c := NewCache(4)
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	go c.Do(context.Background(), "k", func() (any, error) {
		close(started)
		<-gate
		return 1, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, hit, err := c.Do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled joiner err = %v, want context.Canceled", err)
	}
	if !errors.Is(err, ErrWaiterAbandoned) {
		t.Errorf("cancelled joiner err = %v, want ErrWaiterAbandoned wrap", err)
	}
	// The waiter was never served, so it must not report a cache hit:
	// counting it would inflate the hit metric with requests that got
	// nothing.
	if hit || v != nil {
		t.Errorf("cancelled joiner = (%v, hit=%v), want (nil, false)", v, hit)
	}
}

// TestCachePanicDoesNotPoisonKey is the regression test for the
// single-flight poisoning bug: a panicking fn used to leave its flight
// registered forever with done never closed, so every later Do for the
// key blocked indefinitely. Now the panic propagates to the owner,
// waiters fail with ErrFlightPanic, and the key stays usable.
func TestCachePanicDoesNotPoisonKey(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()

	// A waiter joined to the doomed flight must be failed, not hung.
	inFn := make(chan struct{})
	release := make(chan struct{})
	waiterDone := make(chan error, 1)
	ownerDone := make(chan any, 1)
	go func() {
		defer func() { ownerDone <- recover() }()
		c.Do(ctx, "k", func() (any, error) {
			close(inFn)
			<-release
			panic("sweep blew up")
		})
	}()
	<-inFn
	go func() {
		_, hit, err := c.Do(ctx, "k", nil)
		if hit {
			err = errors.New("panicked flight reported hit=true")
		}
		waiterDone <- err
	}()
	// Give the waiter a moment to join the flight, then detonate.
	time.Sleep(50 * time.Millisecond)
	close(release)

	if r := <-ownerDone; r != "sweep blew up" {
		t.Fatalf("owner recovered %v, want the original panic value", r)
	}
	select {
	case err := <-waiterDone:
		if !errors.Is(err, ErrFlightPanic) {
			t.Fatalf("waiter err = %v, want ErrFlightPanic", err)
		}
		if !errors.Is(err, ErrShared) {
			t.Errorf("waiter err = %v, want ErrShared wrap", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter still blocked after the flight panicked: key is poisoned")
	}

	// The key must be retryable: a fresh Do runs fn and succeeds.
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, hit, err := c.Do(ctx, "k", func() (any, error) { return "recovered", nil })
		if err != nil || hit || v != "recovered" {
			t.Errorf("Do after panic = (%v, %v, %v), want fresh run", v, hit, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Do after panic still blocked: flight was not unregistered")
	}
	if v, hit, err := c.Do(ctx, "k", nil); err != nil || !hit || v != "recovered" {
		t.Errorf("cached retry = (%v, %v, %v), want (recovered, true, nil)", v, hit, err)
	}
}

// TestCacheSharedFailureNotAHit pins the hit semantics for waiters of a
// failing flight: they got no value, so hit must be false and the
// owner's error arrives wrapped in ErrShared.
func TestCacheSharedFailureNotAHit(t *testing.T) {
	c := NewCache(4)
	ctx := context.Background()
	boom := errors.New("boom")
	inFn := make(chan struct{})
	release := make(chan struct{})
	go c.Do(ctx, "k", func() (any, error) {
		close(inFn)
		<-release
		return nil, boom
	})
	<-inFn
	waiter := make(chan struct{})
	var v any
	var hit bool
	var err error
	go func() {
		defer close(waiter)
		v, hit, err = c.Do(ctx, "k", nil)
	}()
	time.Sleep(50 * time.Millisecond)
	close(release)
	<-waiter
	if hit || v != nil {
		t.Errorf("failed-flight waiter = (%v, hit=%v), want (nil, false)", v, hit)
	}
	if !errors.Is(err, boom) || !errors.Is(err, ErrShared) {
		t.Errorf("failed-flight waiter err = %v, want boom wrapped in ErrShared", err)
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := NewCache(2)
	ctx := context.Background()
	run := func(k string) (bool, error) {
		_, hit, err := c.Do(ctx, k, func() (any, error) { return k, nil })
		return hit, err
	}
	for _, k := range []string{"a", "b"} {
		if _, err := run(k); err != nil {
			t.Fatal(err)
		}
	}
	if hit, _ := run("a"); !hit { // refresh a: b is now least recently used
		t.Fatal("a evicted prematurely")
	}
	if _, err := run("c"); err != nil { // evicts b
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	if hit, _ := run("a"); !hit {
		t.Error("a lost despite being recently used")
	}
	if hit, _ := run("b"); hit {
		t.Error("b survived eviction at capacity 2")
	}
}

func TestCacheCapacityClamped(t *testing.T) {
	c := NewCache(0)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		k := fmt.Sprintf("k%d", i)
		if _, _, err := c.Do(ctx, k, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want clamp to 1", c.Len())
	}
}

func TestCachePutServesDo(t *testing.T) {
	c := NewCache(4)
	c.Put("k", 99)
	if v, ok := c.Get("k"); !ok || v != 99 {
		t.Fatalf("Get after Put = (%v, %v), want (99, true)", v, ok)
	}
	v, hit, err := c.Do(context.Background(), "k", func() (any, error) {
		t.Fatal("fn ran despite a deposited value")
		return nil, nil
	})
	if err != nil || !hit || v != 99 {
		t.Fatalf("Do after Put = (%v, %v, %v), want (99, true, nil)", v, hit, err)
	}
	// Put participates in LRU accounting.
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Put("d", 4)
	if c.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", c.Len())
	}
	if _, ok := c.Get("k"); ok {
		t.Error("oldest entry survived Put-driven eviction")
	}
}

// BenchmarkCacheGet measures the degraded-mode read path — the lookup
// the serving layer spins on while a device's breaker is open. The
// bench gate holds its allocs/op at zero: a Get is a mutex, a map
// lookup and an LRU list move, and must stay that way.
func BenchmarkCacheGet(b *testing.B) {
	c := NewCache(64)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("sweep-%02d", i), i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("sweep-17"); !ok {
			b.Fatal("lost the cached entry")
		}
	}
}
