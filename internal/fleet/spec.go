package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// FleetConfig is the on-disk shape of `energyd -fleet fleet.json`: a
// list of named device specs plus fleet-wide routing knobs. Relative
// calibration cache paths are resolved against the config file's
// directory by LoadConfig, so a config travels with its caches.
type FleetConfig struct {
	// Seed is the base of the fleet's seed lineage: every device without
	// an explicit seed derives its own from this value and its ID, so
	// two devices never share a measurement-noise stream. Zero defers to
	// the caller's default (the -seed flag in cmd/energyd).
	Seed int64 `json:"seed,omitempty"`
	// Replicas is the number of virtual points per device on the
	// consistent-hash ring; zero selects the default (128).
	Replicas int `json:"replicas,omitempty"`
	// Devices are the fleet members. At least one is required and IDs
	// must be unique and non-empty.
	Devices []Spec `json:"devices"`
}

// Spec declares one fleet device: its physical parameters (a
// tegra.DeviceParams variant), its seed lineage, where its calibration
// comes from, and which slice of the DVFS ladder it may run.
type Spec struct {
	// ID names the device in routing, metrics labels, and responses.
	ID string `json:"id"`
	// Seed pins this device's measurement-noise seed; zero derives one
	// from the fleet seed and the ID.
	Seed int64 `json:"seed,omitempty"`
	// CalibrationCache is a calibration sample CSV (as written by the
	// -cache flag). When empty the device boots from a synthetic
	// noiseless calibration derived from its declared parameters — the
	// fixture path, instant and deterministic.
	CalibrationCache string `json:"calibration_cache,omitempty"`
	// Params overrides the Tegra K1 ground truth field by field: zero
	// fields inherit the TK1 value, so a spec states only what differs.
	Params ParamsJSON `json:"params,omitempty"`
	// Ideal zeroes the non-ideality knobs (activity, thermal and
	// frequency slopes, mix jitter, stall power) instead of inheriting
	// the TK1 defaults, yielding an exactly-linear device.
	Ideal bool `json:"ideal,omitempty"`
	// DVFS grid restriction: devices often ship with a trimmed ladder
	// (a low-power SKU without the top bins, a server SKU without the
	// bottom). Zero bounds leave that side unrestricted. The bounds
	// filter both the calibration and full autotune grids.
	MinCoreMHz units.MegaHertz `json:"min_core_mhz,omitempty"`
	MaxCoreMHz units.MegaHertz `json:"max_core_mhz,omitempty"`
	MinMemMHz  units.MegaHertz `json:"min_mem_mhz,omitempty"`
	MaxMemMHz  units.MegaHertz `json:"max_mem_mhz,omitempty"`
}

// ParamsJSON mirrors tegra.DeviceParams on the wire. Zero fields mean
// "inherit the TK1 value" (see Spec.Ideal for the non-ideality knobs).
type ParamsJSON struct {
	SPpJ          units.PicoJoulePerOpPerVoltSq `json:"sp_pj_v2,omitempty"`
	DPpJ          units.PicoJoulePerOpPerVoltSq `json:"dp_pj_v2,omitempty"`
	IntpJ         units.PicoJoulePerOpPerVoltSq `json:"int_pj_v2,omitempty"`
	SharedpJ      units.PicoJoulePerOpPerVoltSq `json:"shared_pj_v2,omitempty"`
	L2pJ          units.PicoJoulePerOpPerVoltSq `json:"l2_pj_v2,omitempty"`
	DRAMpJ        units.PicoJoulePerOpPerVoltSq `json:"dram_pj_v2,omitempty"`
	LeakProcWpV   units.WattPerVolt             `json:"leak_proc_w_v,omitempty"`
	LeakMemWpV    units.WattPerVolt             `json:"leak_mem_w_v,omitempty"`
	MiscW         units.Watt                    `json:"misc_w,omitempty"`
	ActivitySlope units.Ratio                   `json:"activity_slope,omitempty"`
	ThermalSlope  units.Ratio                   `json:"thermal_slope,omitempty"`
	FreqSlope     units.Ratio                   `json:"freq_slope,omitempty"`
	MixJitterAmp  units.Ratio                   `json:"mix_jitter_amp,omitempty"`
	StallWatts    units.Watt                    `json:"stall_watts,omitempty"`
}

// DeviceParams resolves the spec's physical parameters: declared fields
// override the Tegra K1 baseline, and Ideal zeroes the non-ideality
// knobs that were not explicitly set.
func (s Spec) DeviceParams() tegra.DeviceParams {
	p := tegra.TK1Params()
	if s.Ideal {
		p.ActivitySlope, p.ThermalSlope, p.FreqSlope = 0, 0, 0
		p.MixJitterAmp, p.StallWatts = 0, 0
	}
	o := s.Params
	if o.SPpJ != 0 {
		p.SPpJ = o.SPpJ
	}
	if o.DPpJ != 0 {
		p.DPpJ = o.DPpJ
	}
	if o.IntpJ != 0 {
		p.IntpJ = o.IntpJ
	}
	if o.SharedpJ != 0 {
		p.SharedpJ = o.SharedpJ
	}
	if o.L2pJ != 0 {
		p.L2pJ = o.L2pJ
	}
	if o.DRAMpJ != 0 {
		p.DRAMpJ = o.DRAMpJ
	}
	if o.LeakProcWpV != 0 {
		p.LeakProcWpV = o.LeakProcWpV
	}
	if o.LeakMemWpV != 0 {
		p.LeakMemWpV = o.LeakMemWpV
	}
	if o.MiscW != 0 {
		p.MiscW = o.MiscW
	}
	if o.ActivitySlope != 0 {
		p.ActivitySlope = o.ActivitySlope
	}
	if o.ThermalSlope != 0 {
		p.ThermalSlope = o.ThermalSlope
	}
	if o.FreqSlope != 0 {
		p.FreqSlope = o.FreqSlope
	}
	if o.MixJitterAmp != 0 {
		p.MixJitterAmp = o.MixJitterAmp
	}
	if o.StallWatts != 0 {
		p.StallWatts = o.StallWatts
	}
	return p
}

// supports reports whether a setting falls inside the spec's DVFS
// bounds.
func (s Spec) supports(set dvfs.Setting) bool {
	if s.MinCoreMHz > 0 && set.Core.FreqMHz < s.MinCoreMHz {
		return false
	}
	if s.MaxCoreMHz > 0 && set.Core.FreqMHz > s.MaxCoreMHz {
		return false
	}
	if s.MinMemMHz > 0 && set.Mem.FreqMHz < s.MinMemMHz {
		return false
	}
	if s.MaxMemMHz > 0 && set.Mem.FreqMHz > s.MaxMemMHz {
		return false
	}
	return true
}

// Grids builds the device's autotune candidate grids by filtering the
// board tables through the spec's DVFS bounds: "calibration" is the
// paper's 16 measured settings, "full" every core x memory permutation.
// An empty filtered grid is a config error — a device that can run
// nothing cannot answer sweeps.
func (s Spec) Grids() (map[string][]dvfs.Setting, error) {
	calGrid := make([]dvfs.Setting, 0, 16)
	for _, cs := range dvfs.CalibrationSettings() {
		if s.supports(cs.Setting) {
			calGrid = append(calGrid, cs.Setting)
		}
	}
	full := make([]dvfs.Setting, 0, 105)
	for _, set := range dvfs.Grid() {
		if s.supports(set) {
			full = append(full, set)
		}
	}
	if len(calGrid) == 0 || len(full) == 0 {
		return nil, fmt.Errorf("fleet: device %q: DVFS bounds leave an empty setting grid", s.ID)
	}
	return map[string][]dvfs.Setting{"calibration": calGrid, "full": full}, nil
}

// Validate checks one spec in isolation.
func (s Spec) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("fleet: device with empty id")
	}
	if s.Seed < 0 {
		return fmt.Errorf("fleet: device %q: negative seed %d", s.ID, s.Seed)
	}
	if err := s.DeviceParams().Validate(); err != nil {
		return fmt.Errorf("fleet: device %q: %w", s.ID, err)
	}
	if _, err := s.Grids(); err != nil {
		return err
	}
	return nil
}

// Validate checks the whole config: at least one device, unique IDs,
// and every spec valid.
func (fc FleetConfig) Validate() error {
	if len(fc.Devices) == 0 {
		return fmt.Errorf("fleet: config declares no devices")
	}
	if fc.Replicas < 0 {
		return fmt.Errorf("fleet: negative ring replicas %d", fc.Replicas)
	}
	seen := make(map[string]bool, len(fc.Devices))
	for _, s := range fc.Devices {
		if err := s.Validate(); err != nil {
			return err
		}
		if seen[s.ID] {
			return fmt.Errorf("fleet: duplicate device id %q", s.ID)
		}
		seen[s.ID] = true
	}
	return nil
}

// ParseConfig decodes and validates a fleet config. Unknown fields are
// rejected so a typo in a parameter name cannot silently yield a
// baseline TK1.
func ParseConfig(data []byte) (FleetConfig, error) {
	var fc FleetConfig
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&fc); err != nil {
		return FleetConfig{}, fmt.Errorf("fleet: parsing config: %w", err)
	}
	if err := fc.Validate(); err != nil {
		return FleetConfig{}, err
	}
	return fc, nil
}

// LoadConfig reads a fleet config file and resolves relative calibration
// cache paths against the file's directory.
func LoadConfig(path string) (FleetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return FleetConfig{}, err
	}
	fc, err := ParseConfig(data)
	if err != nil {
		return FleetConfig{}, fmt.Errorf("fleet: %s: %w", path, err)
	}
	dir := filepath.Dir(path)
	for i, s := range fc.Devices {
		if s.CalibrationCache != "" && !filepath.IsAbs(s.CalibrationCache) {
			fc.Devices[i].CalibrationCache = filepath.Join(dir, s.CalibrationCache)
		}
	}
	return fc, nil
}
