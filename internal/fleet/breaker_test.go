package fleet

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(2, time.Minute, func() time.Time { return now })

	if !b.Allow() {
		t.Fatal("new breaker must be closed")
	}
	b.Failure()
	if !b.Allow() {
		t.Fatal("one failure below threshold must not trip")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("threshold failures must open the breaker")
	}
	if state, opens := b.Snapshot(); state != BreakerOpen || opens != 1 {
		t.Fatalf("state %v opens %d, want open 1", state, opens)
	}

	// Before the cooldown no probe; after it exactly one.
	now = now.Add(30 * time.Second)
	if b.Allow() {
		t.Fatal("probe allowed before cooldown elapsed")
	}
	now = now.Add(31 * time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed; a probe must be allowed")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}

	// A failed probe reopens for a full cooldown.
	b.Failure()
	if b.Allow() {
		t.Fatal("failed probe must reopen the breaker")
	}
	if _, opens := b.Snapshot(); opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("second probe not allowed after cooldown")
	}
	b.Success()
	if state, _ := b.Snapshot(); state != BreakerClosed {
		t.Fatalf("state %v after successful probe, want closed", state)
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("closed breaker must allow freely")
	}

	// Success resets the consecutive-failure count.
	b.Failure()
	b.Success()
	b.Failure()
	if !b.Allow() {
		t.Fatal("failure count survived an intervening success")
	}
}

func TestBreakerProbeRelease(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBreaker(1, time.Minute, func() time.Time { return now })
	b.Failure()
	now = now.Add(2 * time.Minute)
	if !b.Allow() {
		t.Fatal("probe not granted")
	}
	// The probe was answered from cache: no outcome, slot freed.
	b.Release()
	if !b.Allow() {
		t.Fatal("released probe slot not reusable")
	}
}

func TestBreakerForceOpen(t *testing.T) {
	b := NewBreaker(0, 0, nil)
	b.ForceOpen(true)
	if b.Allow() {
		t.Fatal("forced-open breaker allowed a sweep")
	}
	if state, opens := b.Snapshot(); state != BreakerOpen || opens != 1 {
		t.Fatalf("forced snapshot %v/%d, want open/1", state, opens)
	}
	b.ForceOpen(true) // idempotent; must not bump opens again
	if _, opens := b.Snapshot(); opens != 1 {
		t.Fatal("re-forcing bumped the opens counter")
	}
	b.ForceOpen(false)
	if !b.Allow() {
		t.Fatal("released breaker must close again")
	}
}
