package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dvfsroofline/internal/experiments"
)

// newTestNode builds a standalone calibrated node outside any registry.
func newTestNode(t *testing.T, id string) *Node {
	t.Helper()
	spec := Spec{ID: id}
	adm := Admin{FleetSeed: 42}
	n, err := adm.BuildNode(spec)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := adm.Calibrate(spec)
	if err != nil {
		t.Fatal(err)
	}
	n.SetCalibration(cal)
	return n
}

func TestLifecycleTransitionsValidated(t *testing.T) {
	reg := buildTestFleet(t)
	const id = "tk1-a"

	// Straight to drained or removed is not a transition the machine has.
	for _, bad := range []NodeState{StateDrained, StateRemoved, StateProbing, StateCalibrating} {
		if err := reg.SetState(id, bad); err == nil {
			t.Errorf("active -> %s accepted; want rejection", bad)
		}
	}
	epoch := reg.Epoch()
	if err := reg.SetState(id, StateQuarantined); err != nil {
		t.Fatal(err)
	}
	if reg.Epoch() == epoch {
		t.Error("quarantine did not publish a new epoch")
	}
	n, _ := reg.Get(id)
	if n.State() != StateQuarantined || n.Quarantines() != 1 {
		t.Fatalf("state=%s quarantines=%d, want quarantined/1", n.State(), n.Quarantines())
	}
	// Quarantined devices own no ring keys.
	for _, a := range reg.Active() {
		if a.ID == id {
			t.Fatal("quarantined device still listed active")
		}
	}
	// Probe round trip: probing -> quarantined again must NOT double-count.
	if err := reg.SetState(id, StateProbing); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetState(id, StateQuarantined); err != nil {
		t.Fatal(err)
	}
	if n.Quarantines() != 1 {
		t.Errorf("failed probe re-counted the quarantine: %d", n.Quarantines())
	}
	if err := reg.SetState(id, StateProbing); err != nil {
		t.Fatal(err)
	}
	if err := reg.SetState(id, StateActive); err != nil {
		t.Fatal(err)
	}
	if len(reg.Active()) != 3 {
		t.Fatalf("recovered fleet has %d active, want 3", len(reg.Active()))
	}
	if err := reg.SetState("nope", StateDraining); err == nil {
		t.Error("SetState accepted an unknown device")
	}
}

func TestAddCalibratingThenActivate(t *testing.T) {
	reg := buildTestFleet(t)
	epoch := reg.Epoch()

	n, err := (&Admin{FleetSeed: 42}).BuildNode(Spec{ID: "tk1-new"})
	if err != nil {
		t.Fatal(err)
	}
	// No calibration yet: active entry must be refused, calibrating fine.
	if err := reg.Add(n, StateActive); err == nil {
		t.Fatal("Add accepted an uncalibrated node as active")
	}
	if err := reg.Add(n, StateCalibrating); err != nil {
		t.Fatal(err)
	}
	if reg.Epoch() == epoch {
		t.Error("Add did not publish a new epoch")
	}
	if reg.Len() != 4 || len(reg.Active()) != 3 {
		t.Fatalf("len=%d active=%d, want 4/3", reg.Len(), len(reg.Active()))
	}
	if err := reg.SetState("tk1-new", StateActive); err == nil {
		t.Fatal("activation without a calibration accepted")
	}
	cal, err := (&Admin{FleetSeed: 42}).Calibrate(Spec{ID: "tk1-new"})
	if err != nil {
		t.Fatal(err)
	}
	n.SetCalibration(cal)
	if err := reg.SetState("tk1-new", StateActive); err != nil {
		t.Fatal(err)
	}
	if len(reg.Active()) != 4 {
		t.Fatalf("active=%d after activation, want 4", len(reg.Active()))
	}
	// The new member owns ring keys: some key routes to it.
	found := false
	for _, k := range []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"} {
		if reg.Route(k).ID == "tk1-new" {
			found = true
			break
		}
	}
	if !found {
		t.Error("activated device owns no ring keys across 12 probes")
	}
	// Duplicate IDs are refused.
	dup := newTestNode(t, "tk1-new")
	if err := reg.Add(dup, StateActive); err == nil {
		t.Error("Add accepted a duplicate device id")
	}
}

func TestEvictSettlesCacheWaitersAndFreesLRU(t *testing.T) {
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-hot")
	n.Cache.Put("warm", 1)

	// Owner holds a flight open; a second caller joins it as a waiter.
	started := make(chan struct{})
	release := make(chan struct{})
	var ownerErr, waiterErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _, ownerErr = n.Cache.Do(context.Background(), "k", func() (any, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		_, _, waiterErr = n.Cache.Do(context.Background(), "k", func() (any, error) { return 7, nil })
	}()
	// Give the waiter a beat to join the flight, then evict.
	time.Sleep(10 * time.Millisecond)
	if err := reg.Evict("tk1-hot"); err != nil {
		t.Fatal(err)
	}
	close(release)
	wg.Wait()

	if !errors.Is(waiterErr, ErrDeviceRemoved) {
		t.Errorf("waiter settled with %v, want ErrDeviceRemoved", waiterErr)
	}
	if ownerErr != nil {
		t.Errorf("owner ran to completion but got %v", ownerErr)
	}
	if n.State() != StateRemoved {
		t.Errorf("evicted node state = %s, want removed", n.State())
	}
	if n.Cache.Len() != 0 {
		t.Errorf("evicted node retains %d cached entries", n.Cache.Len())
	}
	if _, ok := n.Cache.Get("warm"); ok {
		t.Error("evicted node still serves its LRU")
	}
	// New work on the closed cache fails fast with the same error.
	if _, _, err := n.Cache.Do(context.Background(), "x", func() (any, error) { return nil, nil }); !errors.Is(err, ErrDeviceRemoved) {
		t.Errorf("Do on a removed device = %v, want ErrDeviceRemoved", err)
	}
	if _, ok := reg.Get("tk1-hot"); ok {
		t.Error("evicted device still resolvable")
	}
	if reg.Len() != 2 {
		t.Errorf("len=%d after evict, want 2", reg.Len())
	}
	if err := reg.Evict("tk1-hot"); err == nil {
		t.Error("double evict accepted")
	}
}

func TestDrainWaitsForInflight(t *testing.T) {
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-a")
	releaseLoad := n.Acquire()

	done := make(chan struct{})
	var graceful bool
	var err error
	go func() {
		defer close(done)
		graceful, err = reg.Drain(context.Background(), "tk1-a")
	}()
	// The device must leave the ring while the drain waits.
	deadline := time.Now().Add(2 * time.Second)
	for n.State() != StateDraining {
		if time.Now().After(deadline) {
			t.Fatal("drain never marked the device draining")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("drain returned with a request still in flight")
	case <-time.After(20 * time.Millisecond):
	}
	releaseLoad()
	<-done
	if err != nil || !graceful {
		t.Fatalf("drain = (graceful=%v, err=%v), want graceful", graceful, err)
	}
	if _, ok := reg.Get("tk1-a"); ok {
		t.Error("drained device still in the registry")
	}
	if n.State() != StateRemoved {
		t.Errorf("drained node state = %s, want removed", n.State())
	}
}

func TestDrainDeadlineStillRemoves(t *testing.T) {
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-a")
	release := n.Acquire()
	defer release()

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	graceful, err := reg.Drain(ctx, "tk1-a")
	if err != nil {
		t.Fatal(err)
	}
	if graceful {
		t.Error("drain with a stuck request reported graceful")
	}
	if _, ok := reg.Get("tk1-a"); ok {
		t.Error("deadline-expired drain left the device in the registry")
	}
}

func TestDrainAllIdlesFleet(t *testing.T) {
	reg := buildTestFleet(t)
	if !reg.DrainAll(context.Background()) {
		t.Fatal("idle fleet did not drain gracefully")
	}
	if len(reg.Active()) != 0 {
		t.Fatalf("%d devices still active after DrainAll", len(reg.Active()))
	}
	// Members stay for inventory until process exit.
	if reg.Len() != 3 {
		t.Fatalf("DrainAll removed members: len=%d", reg.Len())
	}
	if reg.Route("any") != nil || reg.LeastLoaded() != nil {
		t.Error("drained fleet still routes")
	}
	if n, _ := reg.RouteHealthy("any"); n != nil {
		t.Error("drained fleet still routes healthy")
	}
}

// TestRegistryChurnUnderRace hammers ring walks against concurrent
// add/drain/evict churn; run with -race this is the epoch-swap safety
// test. Three core devices never leave, so routing always has a target.
func TestRegistryChurnUnderRace(t *testing.T) {
	reg := buildTestFleet(t)
	stop := make(chan struct{})
	var walks atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			keys := []string{"wl-a", "wl-b", "wl-c", "wl-d"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				k := keys[int(walks.Add(1))%len(keys)]
				if n := reg.Route(k); n == nil {
					t.Error("Route returned nil with actives present")
					return
				}
				if n, _ := reg.RouteHealthy(k); n == nil {
					t.Error("RouteHealthy returned nil with actives present")
					return
				}
				if reg.LeastLoaded() == nil {
					t.Error("LeastLoaded returned nil with actives present")
					return
				}
				reg.Epoch()
				reg.Active()
			}
		}(i)
	}
	// Churner: a transient device joins, serves, drains or gets evicted.
	churn := newTestNode(t, "churn-0")
	for i := 0; i < 40; i++ {
		if err := reg.Add(churn, StateActive); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if err := reg.Evict(churn.ID); err != nil {
				t.Fatal(err)
			}
		} else {
			if _, err := reg.Drain(context.Background(), churn.ID); err != nil {
				t.Fatal(err)
			}
		}
		// A removed node's machinery is dead; rebuild for the next lap.
		churn = newTestNode(t, "churn-0")
	}
	close(stop)
	wg.Wait()
	if reg.Len() != 3 || len(reg.Active()) != 3 {
		t.Fatalf("churn left len=%d active=%d, want 3/3", reg.Len(), len(reg.Active()))
	}
}

func TestSetCalibrationBumpsGeneration(t *testing.T) {
	n := newTestNode(t, "gen")
	if g := n.CalGeneration(); g != 1 {
		t.Fatalf("fresh node generation = %d, want 1", g)
	}
	cal, err := SyntheticCalibration(DeclaredModel(Spec{ID: "gen"}.DeviceParams()))
	if err != nil {
		t.Fatal(err)
	}
	n.SetCalibration(cal)
	if g := n.CalGeneration(); g != 2 {
		t.Errorf("generation = %d after swap, want 2", g)
	}
	n.SetCalibration(nil) // nil swap is ignored
	if n.Cal() == nil || n.CalGeneration() != 2 {
		t.Error("nil SetCalibration must be a no-op")
	}
	var _ *experiments.Calibration = n.Cal()
}
