package fleet

import (
	"context"
	"errors"
	"testing"
	"time"
)

// tickN advances the health loop n ticks spaced step apart, starting at
// start, and returns the time after the last tick.
func tickN(h *Health, start time.Time, step time.Duration, n int) time.Time {
	now := start
	for i := 0; i < n; i++ {
		h.Tick(context.Background(), now)
		now = now.Add(step)
	}
	return now
}

func TestHealthQuarantinesAfterConsecutiveOpenTicks(t *testing.T) {
	reg := buildTestFleet(t)
	okProbe := func(ctx context.Context, n *Node) error { return nil }
	h := NewHealth(reg, HealthConfig{QuarantineAfter: 3, ProbeBackoff: time.Minute, Seed: 42}, okProbe)
	n, _ := reg.Get("tk1-hot")
	start := time.Unix(1000, 0)

	// A closed breaker never accumulates.
	tickN(h, start, time.Second, 5)
	if n.State() != StateActive {
		t.Fatalf("healthy device state = %s", n.State())
	}

	// An open breaker observed twice then recovered resets the count:
	// only CONSECUTIVE open ticks quarantine.
	n.Breaker.ForceOpen(true)
	now := tickN(h, start, time.Second, 2)
	n.Breaker.ForceOpen(false)
	now = tickN(h, now, time.Second, 1)
	n.Breaker.ForceOpen(true)
	now = tickN(h, now, time.Second, 2)
	if n.State() != StateActive {
		t.Fatal("non-consecutive open windows quarantined the device")
	}
	tickN(h, now, time.Second, 1)
	if n.State() != StateQuarantined {
		t.Fatalf("state = %s after 3 consecutive open ticks, want quarantined", n.State())
	}
	if n.Quarantines() != 1 {
		t.Errorf("quarantines = %d, want 1", n.Quarantines())
	}
	// The quarantined device left the ring; the others cover its keys.
	for _, a := range reg.Active() {
		if a.ID == n.ID {
			t.Fatal("quarantined device still active")
		}
	}
}

func TestHealthProbeRecoversDevice(t *testing.T) {
	reg := buildTestFleet(t)
	probes := 0
	probe := func(ctx context.Context, n *Node) error {
		probes++
		if probes < 3 {
			return errors.New("still sick")
		}
		return nil
	}
	base := 10 * time.Second
	h := NewHealth(reg, HealthConfig{QuarantineAfter: 1, ProbeBackoff: base, Seed: 42}, probe)
	n, _ := reg.Get("tk1-a")
	// Trip the breaker organically (not ForceOpen, which pins the
	// snapshot open past any recovery).
	for i := 0; i < 5; i++ {
		n.Breaker.Failure()
	}
	if bs, _ := n.Breaker.Snapshot(); bs != BreakerOpen {
		t.Fatalf("breaker = %s after 5 failures, want open", bs)
	}

	start := time.Unix(0, 0)
	h.Tick(context.Background(), start)
	if n.State() != StateQuarantined {
		t.Fatalf("state = %s, want quarantined", n.State())
	}

	// Before the backoff elapses no probe may run; jitter is < 25% of the
	// base, so base/2 is safely early and 2*base safely late.
	h.Tick(context.Background(), start.Add(base/2))
	if probes != 0 {
		t.Fatal("probe ran before its backoff elapsed")
	}
	now := start.Add(2 * base)
	h.Tick(context.Background(), now) // probe 1 fails -> backoff doubles
	if probes != 1 || n.State() != StateQuarantined {
		t.Fatalf("after failed probe: probes=%d state=%s", probes, n.State())
	}
	// Attempt 1's wait is 2*base (+jitter < 25%): the next tick at
	// +base must not probe, at +3*base it must.
	h.Tick(context.Background(), now.Add(base))
	if probes != 1 {
		t.Fatal("backoff did not double after a failed probe")
	}
	now = now.Add(3 * base)
	h.Tick(context.Background(), now) // probe 2 fails
	if probes != 2 {
		t.Fatalf("probes = %d, want 2", probes)
	}
	now = now.Add(6 * base)
	h.Tick(context.Background(), now) // probe 3 passes
	if probes != 3 {
		t.Fatalf("probes = %d, want 3", probes)
	}
	if n.State() != StateActive {
		t.Fatalf("state = %s after a passing probe, want active", n.State())
	}
	if bs, _ := n.Breaker.Snapshot(); bs == BreakerOpen {
		t.Error("recovery did not reclose the breaker")
	}
	// Fully recovered: quarantine count stands at 1, fleet serves 3.
	if n.Quarantines() != 1 || len(reg.Active()) != 3 {
		t.Errorf("quarantines=%d active=%d, want 1/3", n.Quarantines(), len(reg.Active()))
	}
}

// TestHealthBackoffDeterministic: the jitter derives from (seed, device,
// attempt) — identical inputs give identical waits (replayable soaks),
// different devices get different jitter (no thundering herd).
func TestHealthBackoffDeterministic(t *testing.T) {
	reg := buildTestFleet(t)
	cfg := HealthConfig{ProbeBackoff: time.Second, Seed: 42}
	h1 := NewHealth(reg, cfg, nil)
	h2 := NewHealth(reg, cfg, nil)
	for attempt := 0; attempt < 6; attempt++ {
		a := h1.backoff("tk1-a", attempt)
		if b := h2.backoff("tk1-a", attempt); a != b {
			t.Fatalf("attempt %d: two loops computed %v and %v", attempt, a, b)
		}
		base := time.Second << attempt
		if max := cfg.probeBackoffMax(); base > max {
			base = max
		}
		if a < base || a > base+base/4 {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, a, base, base+base/4)
		}
	}
	if h1.backoff("tk1-a", 1) == h1.backoff("tk1-hot", 1) {
		t.Error("two devices drew identical jitter; probes would synchronize")
	}
	// The cap holds: attempt 30 must not overflow past the max.
	if got, max := h1.backoff("tk1-a", 30), cfg.probeBackoffMax(); got > max+max/4 {
		t.Errorf("backoff %v exceeds cap %v", got, max)
	}
}

func TestHealthForgetsDepartedDevices(t *testing.T) {
	reg := buildTestFleet(t)
	h := NewHealth(reg, HealthConfig{QuarantineAfter: 1, Seed: 42}, func(ctx context.Context, n *Node) error { return nil })
	n, _ := reg.Get("tk1-hot")
	n.Breaker.ForceOpen(true)
	h.Tick(context.Background(), time.Unix(0, 0))
	if len(h.devs) == 0 {
		t.Fatal("tick tracked no devices")
	}
	if err := reg.Evict("tk1-hot"); err != nil {
		t.Fatal(err)
	}
	h.Tick(context.Background(), time.Unix(10, 0))
	if _, ok := h.devs["tk1-hot"]; ok {
		t.Error("health loop retains bookkeeping for an evicted device")
	}
}

// TestDefaultProbeObservesFaults: the probe is a real measured sweep, so
// a device whose measurement path is down fails it and a healthy one
// passes.
func TestDefaultProbeObservesFaults(t *testing.T) {
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-a")
	if err := DefaultProbe(context.Background(), n); err != nil {
		t.Fatalf("healthy device failed its probe: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := DefaultProbe(ctx, n); err == nil {
		t.Error("probe succeeded under a dead context")
	}
}
