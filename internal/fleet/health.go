package fleet

import (
	"context"
	"sync"
	"time"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
)

// The health loop turns persistent sweep failure into membership: a
// breaker keeps one device's own request path honest, but the ring
// keeps handing an open-breakered device fresh placements that can only
// be answered degraded. After QuarantineAfter consecutive ticks with
// the breaker open, the device leaves the ring (quarantined), and a
// probe schedule with deterministic exponential backoff brings it back:
// a real measured probe sweep on the device itself — the faults-aware
// path — so recovery is observed, not assumed. The backoff jitter
// derives from MixSeed(seed, hash(id), attempt): fully reproducible,
// so chaos soaks replay byte-identically, yet de-synchronized across
// devices so a correlated outage doesn't produce a thundering probe
// herd.

// HealthConfig tunes quarantine and probing; zero fields select the
// documented defaults.
type HealthConfig struct {
	// QuarantineAfter is how many consecutive health ticks must observe
	// the device's breaker open before it is quarantined; zero selects 2.
	QuarantineAfter int
	// ProbeBackoff is the base wait before the first recovery probe;
	// zero selects 30 s. Each failed probe doubles it.
	ProbeBackoff time.Duration
	// ProbeBackoffMax caps the doubling; zero selects 16x the base.
	ProbeBackoffMax time.Duration
	// Seed anchors the probe-jitter lineage (normally the fleet seed).
	Seed int64
}

func (c HealthConfig) quarantineAfter() int {
	if c.QuarantineAfter <= 0 {
		return 2
	}
	return c.QuarantineAfter
}

func (c HealthConfig) probeBackoff() time.Duration {
	if c.ProbeBackoff <= 0 {
		return 30 * time.Second
	}
	return c.ProbeBackoff
}

func (c HealthConfig) probeBackoffMax() time.Duration {
	if c.ProbeBackoffMax > 0 {
		return c.ProbeBackoffMax
	}
	return 16 * c.probeBackoff()
}

// ProbeFunc checks one device end to end; nil selects DefaultProbe.
type ProbeFunc func(ctx context.Context, n *Node) error

// Health drives quarantine and recovery for one registry. It is
// pull-driven: the owner calls Tick with the current time (a wall
// ticker in cmd/energyd, a step clock in soaks), and each tick observes
// breaker states, quarantines repeat offenders, and runs due probes
// synchronously. One goroutine calls Tick at a time.
type Health struct {
	reg   *Registry
	cfg   HealthConfig
	probe ProbeFunc

	mu   sync.Mutex
	devs map[string]*deviceHealth // guarded by mu
}

// deviceHealth is the loop's per-device bookkeeping.
type deviceHealth struct {
	openTicks int       // consecutive ticks with the breaker open
	attempt   int       // failed probes this quarantine spell
	nextProbe time.Time // when the next probe is due
}

// NewHealth builds the health loop over a registry.
func NewHealth(reg *Registry, cfg HealthConfig, probe ProbeFunc) *Health {
	if probe == nil {
		probe = DefaultProbe
	}
	return &Health{reg: reg, cfg: cfg, probe: probe, devs: make(map[string]*deviceHealth)}
}

// Tick runs one health pass at the given time: active devices with open
// breakers accumulate toward quarantine, quarantined devices whose
// backoff elapsed are probed, and probe outcomes move them back to
// active or deeper into backoff. Probes run synchronously on the
// calling goroutine.
func (h *Health) Tick(ctx context.Context, now time.Time) {
	for _, n := range h.reg.Nodes() {
		select {
		case <-ctx.Done():
			return
		default:
		}
		switch n.State() {
		case StateActive:
			h.tickActive(n, now)
		case StateQuarantined:
			h.tickQuarantined(ctx, n, now)
		default:
			// Draining, drained, calibrating and probing devices are
			// either leaving anyway or already owned by another actor.
		}
	}
	h.forget()
}

// tickActive counts consecutive open-breaker observations and
// quarantines at the threshold.
func (h *Health) tickActive(n *Node, now time.Time) {
	d := h.dev(n.ID)
	if state, _ := n.Breaker.Snapshot(); state != BreakerOpen {
		d.openTicks = 0
		return
	}
	d.openTicks++
	if d.openTicks < h.cfg.quarantineAfter() {
		return
	}
	if err := h.reg.SetState(n.ID, StateQuarantined); err != nil {
		return // lost a race with drain/evict; forget() cleans up
	}
	d.openTicks = 0
	d.attempt = 0
	d.nextProbe = now.Add(h.backoff(n.ID, 0))
}

// tickQuarantined runs a due probe and lands its outcome.
func (h *Health) tickQuarantined(ctx context.Context, n *Node, now time.Time) {
	d := h.dev(n.ID)
	if now.Before(d.nextProbe) {
		return
	}
	if err := h.reg.SetState(n.ID, StateProbing); err != nil {
		return
	}
	if err := h.probe(ctx, n); err != nil {
		d.attempt++
		if h.reg.SetState(n.ID, StateQuarantined) == nil {
			d.nextProbe = now.Add(h.backoff(n.ID, d.attempt))
		}
		return
	}
	// The device answered a real measured sweep: reclose its breaker so
	// the ring hands it fresh work immediately, not after a cooldown
	// that was measuring a failure mode that no longer exists.
	n.Breaker.Success()
	if h.reg.SetState(n.ID, StateActive) == nil {
		d.openTicks, d.attempt = 0, 0
	}
}

// backoff returns the wait before probe number attempt of a quarantine
// spell: base<<attempt capped at the max, plus up to 25% deterministic
// jitter drawn from the (seed, device, attempt) identity — stable
// across replays, uncorrelated across devices.
func (h *Health) backoff(id string, attempt int) time.Duration {
	base, maxB := h.cfg.probeBackoff(), h.cfg.probeBackoffMax()
	d := base
	for i := 0; i < attempt && d < maxB; i++ {
		d *= 2
	}
	if d > maxB {
		d = maxB
	}
	rng := stats.NewRNG(stats.MixSeed(h.cfg.Seed, int64(hashKey(id)), int64(attempt)))
	return d + time.Duration(rng.Float64()*float64(d)/4)
}

// dev returns the bookkeeping entry for id, creating it on first sight.
// Single-ticker discipline makes the lock nearly free; it exists so
// Snapshot-style future readers stay safe.
func (h *Health) dev(id string) *deviceHealth {
	h.mu.Lock()
	defer h.mu.Unlock()
	d, ok := h.devs[id]
	if !ok {
		d = &deviceHealth{}
		h.devs[id] = d
	}
	return d
}

// forget drops bookkeeping for devices that left the registry.
func (h *Health) forget() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for id := range h.devs {
		if _, ok := h.reg.Get(id); !ok {
			delete(h.devs, id)
		}
	}
}

// DefaultProbe runs one real measured sweep point on the device — a
// tiny fixed workload at the first calibration-grid setting, through
// the same faults-aware measurement path as serving sweeps — so a
// device only rejoins the ring after demonstrating it can answer.
func DefaultProbe(ctx context.Context, n *Node) error {
	grid := n.Grids["calibration"]
	if len(grid) == 0 {
		grid = n.Grids["full"]
	}
	if len(grid) == 0 {
		return nil
	}
	w := tegra.Workload{
		Profile:   counters.Profile{SP: 1e8, Int: 5e7, DRAMWords: 2e7},
		Occupancy: 0.5,
	}
	_, err := experiments.SweepWorkload(ctx, n.Dev, n.Cfg, w, grid[:1])
	return err
}
