package fleet

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// NodeState is a device's position in the membership lifecycle.
//
// The serving lifecycle is
//
//	calibrating → active → draining → drained → removed
//
// and the health loop moves a sick device through
//
//	active → quarantined → probing → active (probe passed)
//	                     ↖ probing (probe failed, backoff grows)
//
// Only active devices receive ring placements; every other state keeps
// the device visible on the inventory endpoints so operators can watch
// it move. Transitions are validated by Registry.SetState, and every
// transition publishes a new registry epoch.
type NodeState int32

const (
	// StateActive devices own ring keys and accept new placements.
	StateActive NodeState = iota
	// StateCalibrating devices were added at runtime and are waiting
	// for their calibration to land; they take no traffic yet.
	StateCalibrating
	// StateDraining devices accept no new placements but still hold
	// their in-flight requests; Drain waits for the gauge to hit zero.
	StateDraining
	// StateDrained devices have no in-flight work left and are about to
	// be removed.
	StateDrained
	// StateQuarantined devices were pulled from the ring by the health
	// loop after repeated breaker-open windows or failed probes; they
	// wait out a backoff before the next probe.
	StateQuarantined
	// StateProbing devices are running a health probe; its outcome
	// sends them back to active or to a longer quarantine.
	StateProbing
	// StateRemoved devices have left the registry; the state is kept on
	// the node object so stragglers holding a pointer see why their
	// flights were settled.
	StateRemoved
)

// String returns the wire spelling used in JSON responses and metrics
// labels.
func (s NodeState) String() string {
	switch s {
	case StateActive:
		return "active"
	case StateCalibrating:
		return "calibrating"
	case StateDraining:
		return "draining"
	case StateDrained:
		return "drained"
	case StateQuarantined:
		return "quarantined"
	case StateProbing:
		return "probing"
	case StateRemoved:
		return "removed"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// ErrDeviceRemoved settles the in-flight single-flight waiters of a
// device that was evicted or drained out of the fleet: the computation
// they joined will never complete because its device no longer exists.
var ErrDeviceRemoved = errors.New("fleet: device removed from the fleet")

// validTransitions is the membership state machine. A transition absent
// here is a programming error surfaced by SetState.
var validTransitions = map[NodeState][]NodeState{
	StateCalibrating: {StateActive, StateDraining},
	StateActive:      {StateDraining, StateQuarantined},
	StateQuarantined: {StateProbing, StateDraining},
	StateProbing:     {StateActive, StateQuarantined, StateDraining},
	StateDraining:    {StateDrained},
	StateDrained:     {},
	StateRemoved:     {},
}

func transitionOK(from, to NodeState) bool {
	for _, t := range validTransitions[from] {
		if t == to {
			return true
		}
	}
	return false
}

// Add admits a new member. The node enters in state — StateActive for a
// node whose calibration is already set, StateCalibrating for a runtime
// add whose calibration is still running off the request path. The new
// epoch publishes before Add returns; a calibrating node appears on the
// inventory endpoints immediately but owns no ring keys until it
// activates.
func (r *Registry) Add(n *Node, state NodeState) error {
	if n == nil || n.ID == "" {
		return fmt.Errorf("fleet: add: node must have a non-empty id")
	}
	if state != StateActive && state != StateCalibrating {
		return fmt.Errorf("fleet: add: node %q cannot join in state %s", n.ID, state)
	}
	if state == StateActive && n.Cal() == nil {
		return fmt.Errorf("fleet: add: node %q has no calibration yet", n.ID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, m := range r.members {
		if m.ID == n.ID {
			return fmt.Errorf("fleet: add: duplicate device id %q", n.ID)
		}
	}
	n.state.Store(int32(state))
	members := make([]*Node, 0, len(r.members)+1)
	inserted := false
	for _, m := range r.members {
		if !inserted && n.ID < m.ID {
			members = append(members, n)
			inserted = true
		}
		members = append(members, m)
	}
	if !inserted {
		members = append(members, n)
	}
	r.members = members
	r.rebuildLocked()
	return nil
}

// SetState applies one lifecycle transition and publishes the new
// epoch. Activation (calibrating → active, probing → active) requires a
// live calibration; quarantine entry bumps the node's quarantine
// counter.
func (r *Registry) SetState(id string, to NodeState) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.memberLocked(id)
	if n == nil {
		return fmt.Errorf("fleet: set state: unknown device %q", id)
	}
	from := n.State()
	if !transitionOK(from, to) {
		return fmt.Errorf("fleet: device %q: invalid transition %s -> %s", id, from, to)
	}
	if to == StateActive && n.Cal() == nil {
		return fmt.Errorf("fleet: device %q cannot activate without a calibration", id)
	}
	if to == StateQuarantined && from != StateProbing {
		n.quarantines.Add(1)
	}
	n.state.Store(int32(to))
	r.rebuildLocked()
	return nil
}

// memberLocked finds a member by ID. Callers hold r.mu.
func (r *Registry) memberLocked(id string) *Node {
	for _, m := range r.members {
		if m.ID == id {
			return m
		}
	}
	return nil
}

// removeLocked drops the member from the list, publishes the new epoch,
// marks the node removed, and settles its cache — any waiter still
// joined to one of the node's in-flight sweeps fails with
// ErrDeviceRemoved instead of blocking on a flight whose owner is gone.
// Callers hold r.mu.
func (r *Registry) removeLocked(n *Node) {
	members := make([]*Node, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != n {
			members = append(members, m)
		}
	}
	r.members = members
	r.rebuildLocked()
	n.state.Store(int32(StateRemoved))
	n.Cache.Close(ErrDeviceRemoved)
}

// Evict removes the device immediately: its ring keys re-home on the
// surviving actives, its cache is freed, and in-flight single-flight
// waiters settle with ErrDeviceRemoved. In-flight requests already
// executing on the node run to completion against the pointers they
// hold; evict just stops anything new from starting.
func (r *Registry) Evict(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.memberLocked(id)
	if n == nil {
		return fmt.Errorf("fleet: evict: unknown device %q", id)
	}
	r.removeLocked(n)
	return nil
}

// Drain removes the device gracefully: it stops new placements first
// (draining state, new epoch), then waits for the node's in-flight
// gauge to reach zero before removing it. graceful reports whether the
// gauge hit zero in time; on ctx expiry the device is removed anyway —
// drain-with-deadline is a removal guarantee, not a hung operation —
// with graceful=false so the caller knows requests were abandoned.
func (r *Registry) Drain(ctx context.Context, id string) (graceful bool, err error) {
	r.mu.Lock()
	n := r.memberLocked(id)
	if n == nil {
		r.mu.Unlock()
		return false, fmt.Errorf("fleet: drain: unknown device %q", id)
	}
	from := n.State()
	if from != StateDraining {
		if !transitionOK(from, StateDraining) {
			r.mu.Unlock()
			return false, fmt.Errorf("fleet: device %q: invalid transition %s -> %s", id, from, StateDraining)
		}
		n.state.Store(int32(StateDraining))
		r.rebuildLocked()
	}
	r.mu.Unlock()

	graceful = waitIdle(ctx, n)

	r.mu.Lock()
	defer r.mu.Unlock()
	if r.memberLocked(id) != n {
		// Lost a race with another remover; nothing left to do.
		return graceful, nil
	}
	if n.State() == StateDraining {
		n.state.Store(int32(StateDrained))
	}
	r.removeLocked(n)
	return graceful, nil
}

// DrainAll marks every member draining in one epoch and waits for the
// whole fleet's in-flight work, for daemon shutdown: members stay in
// the registry (the process is exiting; inventory endpoints keep
// answering until the listener closes) but no ring placements remain.
// It reports whether every node idled before ctx expired.
func (r *Registry) DrainAll(ctx context.Context) bool {
	r.mu.Lock()
	//energylint:allow ctxloop(state flips under the registry lock must complete as one epoch; the ctx-bounded waiting happens in waitIdle below)
	for _, n := range r.members {
		if transitionOK(n.State(), StateDraining) {
			n.state.Store(int32(StateDraining))
		}
	}
	r.rebuildLocked()
	nodes := r.members
	r.mu.Unlock()

	all := true
	for _, n := range nodes {
		if !waitIdle(ctx, n) {
			all = false
		}
	}
	r.mu.Lock()
	//energylint:allow ctxloop(bounded bookkeeping pass under the registry lock; ctx already gated the waiting above)
	for _, n := range nodes {
		if n.State() == StateDraining && n.Load() == 0 {
			n.state.Store(int32(StateDrained))
		}
	}
	r.rebuildLocked()
	r.mu.Unlock()
	return all
}

// waitIdle polls the node's in-flight gauge until it reaches zero or
// ctx ends.
func waitIdle(ctx context.Context, n *Node) bool {
	for {
		if n.Load() == 0 {
			return true
		}
		select {
		case <-ctx.Done():
			return n.Load() == 0
		case <-time.After(time.Millisecond):
		}
	}
}
