package fleet

import (
	"sync"
	"time"
)

// BreakerState enumerates a circuit breaker's states. The numeric
// values are exported on /metrics as the energyd_breaker_state gauge.
type BreakerState int

const (
	BreakerClosed   BreakerState = 0 // sweeps run normally
	BreakerHalfOpen BreakerState = 1 // one probe sweep allowed
	BreakerOpen     BreakerState = 2 // sweeps rejected; cache serves stale
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "open"
	}
}

// Breaker is the circuit breaker around one device's sweep path.
// Consecutive sweep failures (timeouts, internal errors) trip it open;
// while open, the serving layer answers from the device's stale sweep
// cache with a degraded flag instead of queueing more doomed sweeps, and
// the fleet router steers traffic to healthier devices. After a
// cooldown, one half-open probe sweep is allowed through: success
// recloses the breaker, failure reopens it for another cooldown.
// ForceOpen pins the breaker open regardless of outcomes (the
// -force-degraded drill flag of cmd/energyd).
type Breaker struct {
	mu        sync.Mutex
	threshold int              // consecutive failures that trip the breaker
	cooldown  time.Duration    // open period before a half-open probe
	now       func() time.Time // injectable clock for tests

	state    BreakerState // guarded by mu
	failures int          // consecutive failures while closed; guarded by mu
	openedAt time.Time    // guarded by mu
	probing  bool         // a half-open probe is in flight; guarded by mu
	forced   bool         // guarded by mu
	opens    uint64       // cumulative closed/half-open -> open transitions; guarded by mu
}

// NewBreaker builds a breaker; zero threshold/cooldown select 5 failures
// and 30 s, and a nil clock selects wall time.
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	if now == nil {
		//energylint:allow determinism(defensive default for direct construction in tests; the serving layer always injects its Options.Clock)
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether a fresh sweep may run now. In the half-open
// state only one caller at a time gets a probe slot.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.forced {
		return false
	}
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if !b.probing {
			b.probing = true
			return true
		}
		return false
	}
}

// Success records a completed sweep: it recloses the breaker and resets
// the consecutive-failure count.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed sweep. A failed half-open probe reopens the
// breaker immediately; while closed, the threshold-th consecutive
// failure trips it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trip()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.trip()
	}
}

// Release frees a probe slot granted by Allow without recording an
// outcome — the caller was answered from cache, so no sweep ran and
// the breaker learned nothing.
func (b *Breaker) Release() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
	b.opens++
}

// ForceOpen pins the breaker open (true) or releases the pin (false).
// Releasing does not close an organically opened breaker.
func (b *Breaker) ForceOpen(v bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if v && !b.forced {
		b.opens++
	}
	b.forced = v
}

// Snapshot returns the effective state and the cumulative open count.
func (b *Breaker) Snapshot() (state BreakerState, opens uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	state = b.state
	if b.forced {
		state = BreakerOpen
	}
	return state, b.opens
}
