package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over device IDs. Every device projects
// `replicas` virtual points onto a 64-bit circle (FNV-1a of "id#k"), and
// a request key routes to the first point clockwise of its own hash.
// Consistent hashing gives the fleet two properties the serving layer
// leans on:
//
//  1. Cache affinity — the same workload always lands on the same
//     device, so its sweep cache entry is computed once fleet-wide.
//  2. Minimal disruption — adding or removing one device of N remaps
//     only ~K/N of K keys (the arcs owned by the changed device), so a
//     rolling fleet change does not cold-start every device's cache.
//
// The ring is immutable after construction and safe for concurrent use.
type ring struct {
	points []ringPoint // sorted by (hash, index)
	nodes  int         // distinct node count (len of the ID list)
}

type ringPoint struct {
	hash  uint64
	index int // position in the registry's sorted node slice
}

// defaultReplicas spreads each device over enough virtual points that
// arc lengths even out (~3% load stddev at 3 devices in tests).
const defaultReplicas = 128

func newRing(ids []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, len(ids)*replicas), nodes: len(ids)}
	for i, id := range ids {
		for k := 0; k < replicas; k++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", id, k)), index: i})
		}
	}
	// Ties (hash collisions across devices) break by slice position so
	// the mapping is a pure function of the sorted ID list.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].index < r.points[b].index
	})
	return r
}

// hashKey is FNV-1a over the key bytes with a splitmix64 finalizer:
// deterministic across processes and platforms (routing stays
// reproducible in tests and restarts), and well dispersed even for the
// short, near-identical strings device IDs tend to be — raw FNV-1a
// clusters "dev-01#k" and "dev-02#k" badly enough to skew arc lengths.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// successor returns the node index owning key: the first virtual point
// at or clockwise of the key's hash, wrapping at the top of the circle.
//
//energylint:hotpath
func (r *ring) successor(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].index
}

// walkFrom visits every distinct node index in ring order starting from
// key's successor, stopping early when visit returns true or when all
// nodes have been seen. The serving layer uses it for deterministic
// failover: when the primary's breaker is open, traffic moves to the
// next device on the ring, not to an arbitrary one.
//
// This is the per-request hot path, so it allocates nothing for fleets
// of up to 64 devices: the seen-set is a uint64 bitmask, and the scan
// stops as soon as every distinct node has appeared — typically after a
// handful of points, not the full 128·N ring. Larger fleets fall back
// to a []bool seen-set (one allocation).
//
//energylint:hotpath
func (r *ring) walkFrom(key string, visit func(node int) (stop bool)) {
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	var mask uint64 // seen-set for nodes < 64
	var seen []bool // lazy fallback for the rest
	if r.nodes > 64 {
		seen = make([]bool, r.nodes)
	}
	found := 0
	for k := 0; k < len(r.points) && found < r.nodes; k++ {
		i := start + k
		if i >= len(r.points) {
			i -= len(r.points)
		}
		idx := r.points[i].index
		if seen != nil {
			if seen[idx] {
				continue
			}
			seen[idx] = true
		} else {
			bit := uint64(1) << uint(idx)
			if mask&bit != 0 {
				continue
			}
			mask |= bit
		}
		found++
		if visit(idx) {
			return
		}
	}
}

// walk returns every distinct node index in ring order starting from
// key's successor — walkFrom collected into a slice, for callers that
// need the whole failover order at once (tests, diagnostics).
//
//energylint:hotpath
func (r *ring) walk(key string) []int {
	order := make([]int, 0, r.nodes)
	r.walkFrom(key, func(idx int) bool {
		order = append(order, idx)
		return false
	})
	return order
}
