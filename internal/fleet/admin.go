package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"

	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
)

// Admin assembles nodes from specs after boot, for the runtime
// add-device path. It captures exactly what Build captured at boot —
// the fleet seed, the base experiment config, the calibration loader
// and the node options — so a device added live is byte-identical to
// the same spec declared in fleet.json.
type Admin struct {
	// FleetSeed anchors the seed lineage of devices without a pinned
	// seed (see NodeSeed).
	FleetSeed int64
	// Base supplies fleet-wide experiment knobs (workers, meter,
	// faults); each node gets a copy with its own seed.
	Base experiments.Config
	// Load resolves calibration cache paths; nil rejects specs that
	// declare one (there is no way to honor them).
	Load Loader
	// Node tunes the per-device cache/breaker/clock.
	Node NodeOptions
}

// ParseSpec decodes one device spec with the same strictness as the
// fleet config decoder: unknown fields are rejected so a typo cannot
// silently yield a baseline TK1, and the spec is validated before it is
// returned. This is the admin add-device request body.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("fleet: parsing device spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// BuildNode assembles a node from a validated spec: simulator from the
// merged parameters, filtered grids, identity-derived seed — but no
// calibration yet. The caller decides when calibration lands relative
// to activation (Build sets it before the registry exists; the admin
// API sets it off the request path and only then activates).
func (a Admin) BuildNode(spec Spec) (*Node, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	dev, err := tegra.NewCustomDevice(spec.DeviceParams())
	if err != nil {
		return nil, fmt.Errorf("fleet: device %q: %w", spec.ID, err)
	}
	grids, err := spec.Grids()
	if err != nil {
		return nil, err
	}
	cfg := a.Base
	cfg.Seed = NodeSeed(a.FleetSeed, spec)
	cfg.OnProgress = nil
	n := NewNode(spec.ID, dev, nil, cfg, grids, a.Node)
	n.Spec = spec
	return n, nil
}

// Calibrate produces the spec's boot calibration: the declared cache
// when one is named, the instant synthetic fixture otherwise. Runtime
// adds run this off the request path; the device activates only after
// the result is set on the node.
func (a Admin) Calibrate(spec Spec) (*experiments.Calibration, error) {
	if spec.CalibrationCache != "" {
		if a.Load == nil {
			return nil, fmt.Errorf("fleet: device %q declares calibration_cache but no loader is configured", spec.ID)
		}
		cal, err := a.Load(spec.CalibrationCache)
		if err != nil {
			return nil, fmt.Errorf("fleet: device %q: loading calibration cache: %w", spec.ID, err)
		}
		return cal, nil
	}
	cal, err := SyntheticCalibration(DeclaredModel(spec.DeviceParams()))
	if err != nil {
		return nil, fmt.Errorf("fleet: device %q: synthetic calibration: %w", spec.ID, err)
	}
	return cal, nil
}
