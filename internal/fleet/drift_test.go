package fleet

import (
	"context"
	"errors"
	"testing"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/units"
)

func TestDriftCUSUMAccumulatesOneSidedBias(t *testing.T) {
	var w driftWatch
	// Symmetric noise at the slack magnitude never fires.
	for i := 0; i < 500; i++ {
		r := 0.08
		if i%2 == 1 {
			r = -0.08
		}
		if w.observe(r, 0.05, 1.0) {
			t.Fatalf("symmetric noise fired the watchdog at observation %d", i)
		}
	}
	// Sustained +15% bias with 5% slack accumulates 0.10 per observation:
	// the 500 alternating observations left at most ~0.03 on each side,
	// so the threshold crosses on observation 10 or 11.
	w.reset()
	fired := -1
	for i := 0; i < 20; i++ {
		if w.observe(0.15, 0.05, 1.0) {
			fired = i
			break
		}
	}
	if fired != 10 {
		t.Errorf("one-sided bias fired at observation %d, want 10", fired)
	}
	// Firing reset the statistic: the next crossing takes as long again.
	for i := 0; i < 10; i++ {
		if w.observe(0.15, 0.05, 1.0) && i != 10 {
			t.Fatalf("post-fire statistic not reset: refired at %d", i)
		}
	}
	// The negative side fires symmetrically (model over-predicts).
	w.reset()
	fired = -1
	for i := 0; i < 20; i++ {
		if w.observe(-0.15, 0.05, 1.0) {
			fired = i
			break
		}
	}
	if fired != 10 {
		t.Errorf("negative bias fired at observation %d, want 10", fired)
	}
}

// TestObserveSweepFiresOnThrottledMeasurements: an injected sustained
// throttle makes measured energies diverge from the calibrated model,
// and the watchdog notices from sweep traffic alone.
func TestObserveSweepFiresOnThrottledMeasurements(t *testing.T) {
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-a")
	cal := n.Cal()
	grid := n.Grids["full"]

	// Honest candidates: measured == predicted, zero residual.
	p := counters.Profile{SP: 1e9, Int: 4e8, DRAMWords: 1e8}
	honest := make([]core.Candidate, 0, len(grid))
	for _, set := range grid {
		tm := units.Second(0.01)
		honest = append(honest, core.Candidate{
			Setting:        set,
			Profile:        p,
			Time:           tm,
			MeasuredEnergy: cal.Model.Predict(p, set, tm),
		})
	}
	cfg := DriftConfig{Window: 64, Slack: 0.05, Threshold: 1.0}
	for round := 0; round < 5; round++ {
		if n.ObserveSweep(cfg, honest) {
			t.Fatal("honest measurements fired the drift watchdog")
		}
	}

	// Throttled hardware: everything measures 30% above prediction.
	drifted := make([]core.Candidate, len(honest))
	copy(drifted, honest)
	for i := range drifted {
		drifted[i].MeasuredEnergy = units.Joule(float64(drifted[i].MeasuredEnergy) / 0.7)
	}
	fired := false
	for round := 0; round < 5 && !fired; round++ {
		fired = n.ObserveSweep(cfg, drifted)
	}
	if !fired {
		t.Fatal("30% sustained drift never fired the watchdog")
	}

	// Zero/negative measurements and nil-cal nodes are ignored, not NaN.
	junk := []core.Candidate{{MeasuredEnergy: 0}, {MeasuredEnergy: -1}}
	if n.ObserveSweep(cfg, junk) {
		t.Error("junk candidates fired the watchdog")
	}
	bare := &Node{}
	if bare.ObserveSweep(cfg, honest) {
		t.Error("calibration-less node fired the watchdog")
	}
}

func TestRecalibrationSlotAndGeneration(t *testing.T) {
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-a")
	if !n.BeginRecalibration() {
		t.Fatal("free slot refused")
	}
	if n.BeginRecalibration() {
		t.Fatal("slot double-claimed")
	}
	// Failure path: constants and generation stand, failure counted.
	gen := n.CalGeneration()
	n.FinishRecalibration(nil, errors.New("campaign died"))
	if n.CalGeneration() != gen || n.Recalibrations() != 0 || n.RecalFailures() != 1 {
		t.Fatalf("failed recal: gen=%d recals=%d fails=%d", n.CalGeneration(), n.Recalibrations(), n.RecalFailures())
	}
	if !n.BeginRecalibration() {
		t.Fatal("slot not released after failure")
	}
	cal, err := SyntheticCalibration(DeclaredModel(Spec{ID: "tk1-a"}.DeviceParams()))
	if err != nil {
		t.Fatal(err)
	}
	n.FinishRecalibration(cal, nil)
	if n.CalGeneration() != gen+1 || n.Recalibrations() != 1 {
		t.Fatalf("successful recal: gen=%d recals=%d", n.CalGeneration(), n.Recalibrations())
	}
	if n.Cal() != cal {
		t.Error("new constants did not swap in")
	}
}

// TestDefaultRecalibratorRefitsUnderFaults: the recalibration campaign
// runs the node's own (faulted) config, so the refit constants describe
// the hardware as it now behaves.
func TestDefaultRecalibratorRefitsUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full calibration campaign")
	}
	reg := buildTestFleet(t)
	n, _ := reg.Get("tk1-a")
	n.Cfg.Faults = faults.Plan{Throttle: 1, Seed: 5}
	cal, err := DefaultRecalibrator(context.Background(), n)
	if err != nil {
		t.Fatal(err)
	}
	if len(cal.Samples) == 0 {
		t.Fatal("recalibration produced no samples")
	}
	// A permanently throttled device fits different constants than the
	// clean boot calibration.
	if cal.Model == n.Cal().Model {
		t.Error("throttled refit reproduced the clean constants exactly")
	}
}
