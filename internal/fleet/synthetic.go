package fleet

import (
	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Synthetic calibrations let a fleet of heterogeneous devices boot
// without N x 1856-sample measurement campaigns: each device's declared
// parameters ARE its ideal Eq. 9 constants, so a small noiseless sample
// campaign generated from them in closed form refits to exactly those
// constants. The simulated device itself still carries its non-ideality
// knobs, so model-vs-measured comparisons in sweeps stay honest — the
// synthetic shortcut only replaces the fit's input, not the ground
// truth being predicted. serve.FixtureSamples is the single-device
// instance of this generator.

// syntheticProfiles are eight operation mixes diverse enough to identify
// all nine Eq. 9 constants: one near-pure workload per class plus two
// blends, in units of 1e9 operations.
func syntheticProfiles() []counters.Profile {
	const g = 1e9
	return []counters.Profile{
		{SP: 4 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{DPFMA: 1.5 * g, DPAdd: 0.3 * g, DPMul: 0.2 * g, DRAMWords: 0.05 * g},
		{Int: 3 * g, DRAMWords: 0.05 * g},
		{SharedWords: 2 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{L1Words: 1.5 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{L2Words: 1 * g, Int: 0.1 * g, DRAMWords: 0.05 * g},
		{SP: 0.2 * g, Int: 0.1 * g, DRAMWords: 0.8 * g},
		{DPFMA: 0.8 * g, Int: 0.5 * g, SharedWords: 0.5 * g, L2Words: 0.3 * g, DRAMWords: 0.3 * g},
	}
}

// SyntheticSamples builds the synthetic campaign for one model: every
// synthetic profile at every one of the 16 calibration settings,
// setting-major as experiments.Calibrate produces and
// CalibrateFromSamples expects. Execution times scale with the core
// period so the constant-energy term varies across settings and the
// leakage coefficients are identifiable.
func SyntheticSamples(model *core.Model) []core.Sample {
	settings := dvfs.CalibrationSettings()
	profiles := syntheticProfiles()
	samples := make([]core.Sample, 0, len(settings)*len(profiles))
	for _, cs := range settings {
		s := cs.Setting
		for pi, p := range profiles {
			// A deterministic, physically plausible runtime: longer on
			// slower clocks, different per profile.
			t := units.Second(0.2 * (1 + 0.1*float64(pi)) * (852.0 / float64(s.Core.FreqMHz)))
			samples = append(samples, core.Sample{
				Profile: p,
				Setting: s,
				Time:    t,
				Energy:  model.Predict(p, s, t),
			})
		}
	}
	return samples
}

// SyntheticCalibration fits and validates the synthetic campaign for one
// model; the fitted constants recover the input exactly (noiseless).
func SyntheticCalibration(model *core.Model) (*experiments.Calibration, error) {
	return experiments.CalibrateFromSamples(SyntheticSamples(model))
}

// DeclaredModel maps a device's declared physical parameters onto the
// Eq. 9 constants an ideal calibration of that device would fit:
// per-class capacitance coefficients carry over one to one (shared and
// L1 words share the one Kepler SRAM, hence one SM constant), leakage
// slopes become the c1 terms, and the misc draw the constant power.
func DeclaredModel(p tegra.DeviceParams) *core.Model {
	return &core.Model{
		SPpJ: p.SPpJ, DPpJ: p.DPpJ, IntpJ: p.IntpJ,
		SMpJ: p.SharedpJ, L2pJ: p.L2pJ, DRAMpJ: p.DRAMpJ,
		C1Proc: p.LeakProcWpV, C1Mem: p.LeakMemWpV, PMisc: p.MiscW,
	}
}
