package nnls

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvfsroofline/internal/linalg"
	"dvfsroofline/internal/units"
)

// joules converts a raw right-hand-side vector to the typed form Solve
// takes, keeping the test matrices in plain float64.
func joules(v []float64) []units.Joule {
	out := make([]units.Joule, len(v))
	for i, x := range v {
		out[i] = units.Joule(x)
	}
	return out
}

func TestSolveRecoverNonnegative(t *testing.T) {
	// When the unconstrained LS solution is already non-negative, NNLS
	// must find it exactly.
	a := linalg.FromRows([][]float64{
		{1, 0, 0},
		{0, 2, 0},
		{0, 0, 3},
		{1, 1, 1},
	})
	want := []float64{1, 0.5, 2}
	b := a.MulVec(want)
	res, err := Solve(a, joules(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %v, want %v", i, res.X[i], want[i])
		}
	}
	if res.Residual > 1e-10 {
		t.Errorf("residual = %v, want ~0", res.Residual)
	}
}

func TestSolveClampsNegative(t *testing.T) {
	// Classic example: the LS solution has a negative component; NNLS
	// must clamp it to zero and re-optimize the rest.
	a := linalg.FromRows([][]float64{
		{1, 1},
		{1, -1},
	})
	// Unconstrained solution of b=(0,2) is x=(1,-1); NNLS must return
	// x=(x1,0) minimizing (x1)²+(x1-2)² -> x1=1.
	b := []float64{0, 2}
	res, err := Solve(a, joules(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[1] != 0 {
		t.Errorf("x[1] = %v, want 0 (clamped)", res.X[1])
	}
	if math.Abs(res.X[0]-1) > 1e-10 {
		t.Errorf("x[0] = %v, want 1", res.X[0])
	}
}

func TestSolveAllZero(t *testing.T) {
	// If b is in the cone of -A columns, the best non-negative x is 0.
	a := linalg.FromRows([][]float64{{1}, {1}})
	res, err := Solve(a, []units.Joule{-1, -1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0] != 0 {
		t.Errorf("x = %v, want 0", res.X[0])
	}
	if math.Abs(float64(res.Residual)-math.Sqrt(2)) > 1e-12 {
		t.Errorf("residual = %v, want sqrt(2)", res.Residual)
	}
}

func TestKKTConditions(t *testing.T) {
	// Property: the NNLS solution satisfies the KKT conditions —
	// x >= 0, w = Aᵀ(b-Ax) <= tol for active vars, |w| ~ 0 for passive.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 5 + rng.Intn(10)
		n := 1 + rng.Intn(5)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := Solve(a, joules(b), 0)
		if err != nil {
			return true // ill-conditioned draw is acceptable
		}
		ax := a.MulVec(res.X)
		r := make([]float64, m)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		w := a.T().MulVec(r)
		for j := 0; j < n; j++ {
			if res.X[j] < 0 {
				return false
			}
			if res.X[j] > 0 && math.Abs(w[j]) > 1e-6 {
				return false // gradient must vanish for interior vars
			}
			if res.X[j] == 0 && w[j] > 1e-6 {
				return false // no descent direction may remain
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestResidualNeverWorseThanZeroVector(t *testing.T) {
	// Property: NNLS cannot do worse than x = 0.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 4 + rng.Intn(8)
		n := 1 + rng.Intn(4)
		a := linalg.NewMatrix(m, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		res, err := Solve(a, joules(b), 0)
		if err != nil {
			return true
		}
		return float64(res.Residual) <= linalg.Norm2(b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestEnergyModelShapedProblem(t *testing.T) {
	// A fit shaped like the paper's Eq. 9 design matrix: columns are
	// op-count x voltage² products plus time columns, with known
	// non-negative ground truth and small noise. NNLS must recover the
	// truth to within the noise level.
	rng := rand.New(rand.NewSource(42))
	truth := []float64{27.33, 131.12, 56.56, 369.63, 2.70, 3.80, 0.15}
	n := len(truth)
	m := 120
	a := linalg.NewMatrix(m, n)
	b := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.Float64()*10)
		}
		dot := 0.0
		for j := 0; j < n; j++ {
			dot += a.At(i, j) * truth[j]
		}
		b[i] = dot * (1 + 0.001*rng.NormFloat64())
	}
	res, err := Solve(a, joules(b), 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := range truth {
		// Small coefficients absorb proportionally more of the noise, so
		// allow them a looser relative tolerance.
		tol := 0.05
		if truth[j] < 10 {
			tol = 0.15
		}
		rel := math.Abs(res.X[j]-truth[j]) / truth[j]
		if rel > tol {
			t.Errorf("coefficient %d: got %v, want %v (rel err %.3f)", j, res.X[j], truth[j], rel)
		}
	}
}

// TestDegenerateColumnNoLivelock is the regression test for the
// zero-progress livelock: column 1 is numerically dependent on column 0
// (the pair is rank-deficient to the QR solver) yet carries a positive
// dual after column 0 converges, because b has a huge component along the
// tiny independent tail. The old loop admitted it, failed the passive
// solve, dropped it, recomputed the *unchanged* dual, re-admitted it, and
// burned iterations until ErrMaxIterations.
func TestDegenerateColumnNoLivelock(t *testing.T) {
	a := linalg.FromRows([][]float64{
		{2, 1},
		{0, 1e-13},
		{0, 0},
	})
	b := []float64{1, 1e6, 0}
	res, err := Solve(a, joules(b), 0)
	if err != nil {
		t.Fatalf("degenerate column livelocked: %v", err)
	}
	// Column 0 alone solves the reachable part of b: x0 = (2·1)/4.
	if math.Abs(res.X[0]-0.5) > 1e-10 {
		t.Errorf("x[0] = %v, want 0.5", res.X[0])
	}
	if res.X[1] != 0 {
		t.Errorf("x[1] = %v, want 0 (degenerate column must stay clamped)", res.X[1])
	}
}

// TestNearDuplicateColumnsStress feeds the solver batches of matrices
// with exactly and nearly duplicated columns. None may hit
// ErrMaxIterations, every solution must be non-negative, and no solution
// may fit worse than x = 0.
func TestNearDuplicateColumnsStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m, n := 6, 4
		a := linalg.NewMatrix(m, n)
		for i := 0; i < m; i++ {
			a.Set(i, 0, rng.NormFloat64())
			a.Set(i, 1, rng.NormFloat64())
		}
		for i := 0; i < m; i++ {
			// Column 2 duplicates column 0 exactly; column 3 nearly
			// duplicates column 1, with a tail small enough to be
			// rank-deficient to the QR factorization.
			a.Set(i, 2, a.At(i, 0))
			a.Set(i, 3, a.At(i, 1)+1e-14*rng.NormFloat64())
		}
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64() * math.Pow(10, float64(trial%7)-3)
		}
		res, err := Solve(a, joules(b), 0)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j, xj := range res.X {
			if xj < 0 {
				t.Fatalf("trial %d: x[%d] = %v negative", trial, j, xj)
			}
		}
		if zero := linalg.Norm2(b); float64(res.Residual) > zero*(1+1e-9) {
			t.Fatalf("trial %d: residual %v worse than zero vector %v", trial, res.Residual, zero)
		}
	}
}

func TestSolveRHSMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for mismatched rhs")
		}
	}()
	Solve(linalg.NewMatrix(3, 2), []units.Joule{1, 2}, 0)
}

// BenchmarkNNLSSolve runs a fixed, well-conditioned Eq. 9-sized fit
// (16 settings x 7 coefficients, the paper's calibration shape). The
// bench gate watches allocs/op: the PR10 sweep hoisted the per-
// iteration Aᵀ copy out of the active-set loop, and a regression here
// means a per-iteration allocation crept back in.
func BenchmarkNNLSSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	m, n := 16, 7
	a := linalg.NewMatrix(m, n)
	for i := range a.Data {
		a.Data[i] = math.Abs(rng.NormFloat64())
	}
	truth := make([]float64, n)
	for j := range truth {
		truth[j] = float64(j%3) * 0.5
	}
	bvec := a.MulVec(truth)
	for i := range bvec {
		bvec[i] += 0.01 * rng.NormFloat64()
	}
	rhs := joules(bvec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(a, rhs, 0); err != nil {
			b.Fatal(err)
		}
	}
}
