// Package nnls implements the Lawson–Hanson active-set algorithm for
// non-negative least squares: given A (m-by-n) and b, find x >= 0
// minimizing ||A*x - b||_2.
//
// The paper instantiates its DVFS-aware energy roofline (Eq. 9) by NNLS
// rather than ordinary least squares because every fitted constant is a
// physical quantity — a switched capacitance or a leakage coefficient —
// that cannot be negative; under measurement noise an unconstrained fit
// can and does produce negative energy costs (see BenchmarkNNLSvsLS in
// the repository root for the ablation).
package nnls

import (
	"errors"
	"math"

	"dvfsroofline/internal/linalg"
	"dvfsroofline/internal/units"
)

// ErrMaxIterations is returned when the active-set loop fails to converge.
// With exact arithmetic Lawson–Hanson terminates finitely; hitting this
// limit indicates a pathologically conditioned problem.
var ErrMaxIterations = errors.New("nnls: exceeded maximum iterations")

// Result reports the solution and diagnostics of an NNLS solve. X stays
// raw float64 because its entries are dimensionally heterogeneous — for
// the Eq. 9 fit they mix pJ/op/V², W/V and W coefficients — and acquire
// their unit types only when core.Fit unpacks them into a Model.
type Result struct {
	X          []float64   // solution, all entries >= 0
	Residual   units.Joule // ||A*x - b||_2
	Iterations int         // outer-loop iterations used
	Passive    []bool      // Passive[j] reports whether x[j] is unconstrained (in the passive set)
}

// Solve runs Lawson–Hanson NNLS on measured energies: given the design
// matrix A and the observed right-hand side, find x >= 0 minimizing
// ||A*x - rhs||_2. The tolerance for the dual feasibility test is scaled
// from the data; passing tol <= 0 selects it automatically.
//
//energylint:hotpath
func Solve(a *linalg.Matrix, rhs []units.Joule, tol float64) (*Result, error) {
	m, n := a.Rows, a.Cols
	if len(rhs) != m {
		panic("nnls: right-hand side length mismatch")
	}
	b := make([]float64, len(rhs))
	for i, v := range rhs {
		b[i] = float64(v)
	}
	// Aᵀ is used once per outer iteration for the dual vector; Matrix.T
	// copies the whole matrix, so build it once up front.
	at := a.T()
	if tol <= 0 {
		// Standard choice: a small multiple of machine epsilon scaled by
		// the problem size and the magnitude of Aᵀb.
		tol = 10 * 2.220446049250313e-16 * float64(m*n) * maxAbs(at.MulVec(b))
		if tol == 0 {
			tol = 1e-12
		}
	}

	x := make([]float64, n)
	passive := make([]bool, n)
	// banned marks variables that were admitted and then dropped again
	// without the iterate moving — a numerically dependent column, or a
	// zero-length step that clamped the variable straight back out. Since
	// x (and therefore the dual vector) is unchanged, the dual test would
	// re-select such a variable immediately and livelock until
	// ErrMaxIterations. Banning it until x actually changes (when the
	// duals are recomputed on new data) is the Lawson–Hanson degeneracy
	// guard; bans are cleared on every real step.
	banned := make([]bool, n)
	resid := append([]float64(nil), b...) // b - A*x, x = 0 initially
	w := make([]float64, n)               // dual vector, reused each iteration
	ax := make([]float64, m)              // A*x scratch, reused each iteration

	maxIter := 3 * n
	if maxIter < 30 {
		maxIter = 30
	}
	iters := 0
	for {
		// Dual vector w = Aᵀ(b - A*x).
		at.MulVecTo(w, resid)

		// Find the most violated constraint among active (clamped) vars.
		t := -1
		wmax := tol
		for j := 0; j < n; j++ {
			if !passive[j] && !banned[j] && w[j] > wmax {
				wmax = w[j]
				t = j
			}
		}
		if t < 0 {
			break // KKT conditions met (up to banned degenerate variables)
		}
		passive[t] = true

		for {
			iters++
			if iters > maxIter {
				return nil, ErrMaxIterations
			}
			// Solve the unconstrained LS problem on the passive set.
			z, err := solvePassive(a, b, passive)
			if err != nil {
				// Numerically dependent column: drop the variable we just
				// admitted and continue with the rest. x is unchanged, so
				// ban it or the dual test re-selects it forever.
				passive[t] = false
				banned[t] = true
				break
			}
			if allPositive(z, passive, 0) {
				copyPassive(x, z, passive)
				clearBans(banned)
				break
			}
			// Some passive variable went non-positive: move along the
			// segment from x toward z until the first variable hits zero,
			// then clamp it back into the active set.
			alpha := math.Inf(1)
			for j := 0; j < n; j++ {
				if passive[j] && z[j] <= 0 {
					if d := x[j] - z[j]; d > 0 {
						if r := x[j] / d; r < alpha {
							alpha = r
						}
					} else {
						alpha = 0
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			if alpha > 0 {
				clearBans(banned)
			}
			for j := 0; j < n; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= tol {
						x[j] = 0
						passive[j] = false
						if alpha == 0 {
							// Dropped at a zero step: x is unchanged, so
							// this variable must not be re-admitted until
							// some step moves the iterate.
							banned[j] = true
						}
					}
				}
			}
		}

		// Refresh the residual for the next dual test.
		a.MulVecTo(ax, x)
		for i := range resid {
			resid[i] = b[i] - ax[i]
		}
	}

	a.MulVecTo(ax, x)
	for i := range resid {
		resid[i] = b[i] - ax[i]
	}
	return &Result{
		X:          x,
		Residual:   units.Joule(linalg.Norm2(resid)),
		Iterations: iters,
		Passive:    passive,
	}, nil
}

// solvePassive solves the least-squares problem restricted to the passive
// columns, returning a full-length vector with zeros in active positions.
func solvePassive(a *linalg.Matrix, b []float64, passive []bool) ([]float64, error) {
	cols := make([]int, 0, len(passive))
	for j, p := range passive {
		if p {
			cols = append(cols, j)
		}
	}
	if len(cols) == 0 {
		return make([]float64, len(passive)), nil
	}
	sub := linalg.NewMatrix(a.Rows, len(cols))
	for i := 0; i < a.Rows; i++ {
		for jj, j := range cols {
			sub.Set(i, jj, a.At(i, j))
		}
	}
	zsub, err := linalg.SolveLS(sub, b)
	if err != nil {
		return nil, err
	}
	z := make([]float64, len(passive))
	for jj, j := range cols {
		z[j] = zsub[jj]
	}
	return z, nil
}

func allPositive(z []float64, passive []bool, tol float64) bool {
	for j, p := range passive {
		if p && z[j] <= tol {
			return false
		}
	}
	return true
}

func copyPassive(x, z []float64, passive []bool) {
	for j, p := range passive {
		if p {
			x[j] = z[j]
		} else {
			x[j] = 0
		}
	}
}

func clearBans(banned []bool) {
	for j := range banned {
		banned[j] = false
	}
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
