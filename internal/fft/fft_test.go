package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n^2) reference implementation.
func naiveDFT(x []complex128, inverse bool) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			s += x[j] * cmplx.Rect(1, sign*2*math.Pi*float64(j*k)/float64(n))
		}
		if inverse {
			s /= complex(float64(n), 0)
		}
		out[k] = s
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Cover radix-2 sizes, Bluestein sizes (including primes), and edges.
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 12, 13, 16, 17, 31, 32, 60, 64, 100} {
		x := randComplex(rng, n)
		want := naiveDFT(x, false)
		got := append([]complex128(nil), x...)
		Forward(got)
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: forward differs from naive DFT by %v", n, d)
		}
	}
}

func TestInverseMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{2, 3, 8, 15, 16, 27} {
		x := randComplex(rng, n)
		want := naiveDFT(x, true)
		got := append([]complex128(nil), x...)
		Inverse(got)
		if d := maxDiff(got, want); d > 1e-9 {
			t.Errorf("n=%d: inverse differs from naive by %v", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: Inverse(Forward(x)) == x for arbitrary lengths.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(96)
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		Forward(y)
		Inverse(y)
		return maxDiff(x, y) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParsevalProperty(t *testing.T) {
	// Property: sum |x|^2 == (1/n) sum |X|^2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(64)
		x := randComplex(rng, n)
		var ex float64
		for _, v := range x {
			ex += real(v)*real(v) + imag(v)*imag(v)
		}
		Forward(x)
		var eX float64
		for _, v := range x {
			eX += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(ex-eX/float64(n)) < 1e-8*(1+ex)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLinearityProperty(t *testing.T) {
	// Property: F(a*x + y) == a*F(x) + F(y).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		x := randComplex(rng, n)
		y := randComplex(rng, n)
		a := complex(rng.NormFloat64(), rng.NormFloat64())
		mix := make([]complex128, n)
		for i := range mix {
			mix[i] = a*x[i] + y[i]
		}
		Forward(mix)
		Forward(x)
		Forward(y)
		for i := range mix {
			if cmplx.Abs(mix[i]-(a*x[i]+y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 5, 8, 9, 16} {
		a := randComplex(rng, n)
		b := randComplex(rng, n)
		got := Convolve(a, b)
		for k := 0; k < n; k++ {
			var want complex128
			for j := 0; j < n; j++ {
				want += a[j] * b[((k-j)%n+n)%n]
			}
			if cmplx.Abs(got[k]-want) > 1e-9 {
				t.Errorf("n=%d k=%d: conv = %v, want %v", n, k, got[k], want)
			}
		}
	}
}

func TestConvolveLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Convolve(make([]complex128, 3), make([]complex128, 4))
}

func TestForward3MatchesSeparableNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := Dim3{Nx: 3, Ny: 4, Nz: 5}
	x := randComplex(rng, d.Len())
	got := append([]complex128(nil), x...)
	Forward3(got, d)
	// Direct triple-sum DFT.
	for a := 0; a < d.Nx; a++ {
		for b := 0; b < d.Ny; b++ {
			for c := 0; c < d.Nz; c++ {
				var s complex128
				for i := 0; i < d.Nx; i++ {
					for j := 0; j < d.Ny; j++ {
						for k := 0; k < d.Nz; k++ {
							ph := float64(a*i)/float64(d.Nx) + float64(b*j)/float64(d.Ny) + float64(c*k)/float64(d.Nz)
							s += x[d.Index(i, j, k)] * cmplx.Rect(1, -2*math.Pi*ph)
						}
					}
				}
				if cmplx.Abs(got[d.Index(a, b, c)]-s) > 1e-9 {
					t.Fatalf("3-D DFT mismatch at (%d,%d,%d)", a, b, c)
				}
			}
		}
	}
}

func TestRoundTrip3(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, d := range []Dim3{{2, 2, 2}, {4, 4, 4}, {3, 5, 2}, {8, 8, 8}, {1, 1, 7}} {
		x := randComplex(rng, d.Len())
		y := append([]complex128(nil), x...)
		Forward3(y, d)
		Inverse3(y, d)
		if diff := maxDiff(x, y); diff > 1e-9 {
			t.Errorf("dims %v: 3-D round trip error %v", d, diff)
		}
	}
}

func TestConvolve3MatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := Dim3{Nx: 3, Ny: 2, Nz: 4}
	a := randComplex(rng, d.Len())
	b := randComplex(rng, d.Len())
	got := Convolve3(a, b, d)
	for i := 0; i < d.Nx; i++ {
		for j := 0; j < d.Ny; j++ {
			for k := 0; k < d.Nz; k++ {
				var want complex128
				for p := 0; p < d.Nx; p++ {
					for q := 0; q < d.Ny; q++ {
						for r := 0; r < d.Nz; r++ {
							ii := ((i-p)%d.Nx + d.Nx) % d.Nx
							jj := ((j-q)%d.Ny + d.Ny) % d.Ny
							kk := ((k-r)%d.Nz + d.Nz) % d.Nz
							want += a[d.Index(p, q, r)] * b[d.Index(ii, jj, kk)]
						}
					}
				}
				if cmplx.Abs(got[d.Index(i, j, k)]-want) > 1e-9 {
					t.Fatalf("3-D convolution mismatch at (%d,%d,%d)", i, j, k)
				}
			}
		}
	}
}

func TestFlopEstimate(t *testing.T) {
	if FlopEstimate(1) != 0 {
		t.Error("FlopEstimate(1) should be 0")
	}
	if got := FlopEstimate(8); got != 5*8*3 {
		t.Errorf("FlopEstimate(8) = %v, want 120", got)
	}
}

func BenchmarkForward1024(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(1)), 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}

func BenchmarkForwardBluestein1000(b *testing.B) {
	x := randComplex(rand.New(rand.NewSource(1)), 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Forward(x)
	}
}
