// Package fft implements the fast Fourier transforms the FMM substrate
// needs: an iterative radix-2 complex FFT, Bluestein's chirp-z algorithm
// for arbitrary lengths, multidimensional transforms, and fast cyclic
// convolution. The paper's V-list (M2L) phase is FFT-accelerated; this
// package provides that acceleration for the kernel-independent FMM.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward computes the in-place forward DFT of x:
// X[k] = sum_j x[j] * exp(-2*pi*i*j*k/n). Any length is supported: powers
// of two use the radix-2 path, other lengths use Bluestein's algorithm.
func Forward(x []complex128) {
	transform(x, false)
}

// Inverse computes the in-place inverse DFT of x, including the 1/n
// normalization, so Inverse(Forward(x)) == x up to round-off.
func Inverse(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if n&(n-1) == 0 {
		radix2(x, inverse)
		return
	}
	bluestein(x, inverse)
}

// radix2 is the iterative Cooley-Tukey FFT for power-of-two lengths.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := sign * 2 * math.Pi / float64(size)
		// w = exp(i*step); computed incrementally per butterfly group.
		wStep := cmplx.Rect(1, step)
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// bluestein computes an arbitrary-length DFT as a convolution of
// chirp-modulated sequences, which is evaluated with a power-of-two FFT.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp: w[j] = exp(sign*i*pi*j^2/n). j^2 mod 2n keeps the argument
	// bounded for large n.
	w := make([]complex128, n)
	for j := 0; j < n; j++ {
		jj := (int64(j) * int64(j)) % int64(2*n)
		w[j] = cmplx.Rect(1, sign*math.Pi*float64(jj)/float64(n))
	}
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for j := 0; j < n; j++ {
		a[j] = x[j] * w[j]
		b[j] = cmplx.Conj(w[j])
	}
	for j := 1; j < n; j++ {
		b[m-j] = cmplx.Conj(w[j])
	}
	radix2(a, false)
	radix2(b, false)
	for j := range a {
		a[j] *= b[j]
	}
	radix2(a, true)
	scale := complex(1/float64(m), 0)
	for j := 0; j < n; j++ {
		x[j] = a[j] * scale * w[j]
	}
}

// Convolve returns the cyclic convolution of a and b, which must have the
// same length n: out[k] = sum_j a[j]*b[(k-j) mod n].
func Convolve(a, b []complex128) []complex128 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("fft: Convolve length mismatch %d vs %d", len(a), len(b)))
	}
	n := len(a)
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	Forward(fa)
	Forward(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	Inverse(fa)
	_ = n
	return fa
}

// Dim3 describes the extents of a 3-D array stored in row-major order
// with index (i, j, k) at position (i*Ny+j)*Nz+k.
type Dim3 struct {
	Nx, Ny, Nz int
}

// Len returns the total number of elements.
func (d Dim3) Len() int { return d.Nx * d.Ny * d.Nz }

// Index returns the linear index of (i, j, k).
func (d Dim3) Index(i, j, k int) int { return (i*d.Ny+j)*d.Nz + k }

// Forward3 computes the forward 3-D DFT of x in place.
func Forward3(x []complex128, d Dim3) {
	transform3(x, d, false)
}

// Inverse3 computes the normalized inverse 3-D DFT of x in place.
func Inverse3(x []complex128, d Dim3) {
	transform3(x, d, true)
	n := complex(float64(d.Len()), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform3(x []complex128, d Dim3, inverse bool) {
	if len(x) != d.Len() {
		panic(fmt.Sprintf("fft: array length %d does not match dims %dx%dx%d", len(x), d.Nx, d.Ny, d.Nz))
	}
	// Transform along z (contiguous).
	for i := 0; i < d.Nx; i++ {
		for j := 0; j < d.Ny; j++ {
			off := d.Index(i, j, 0)
			transform(x[off:off+d.Nz], inverse)
		}
	}
	// Transform along y (stride Nz).
	buf := make([]complex128, d.Ny)
	for i := 0; i < d.Nx; i++ {
		for k := 0; k < d.Nz; k++ {
			for j := 0; j < d.Ny; j++ {
				buf[j] = x[d.Index(i, j, k)]
			}
			transform(buf, inverse)
			for j := 0; j < d.Ny; j++ {
				x[d.Index(i, j, k)] = buf[j]
			}
		}
	}
	// Transform along x (stride Ny*Nz).
	bufX := make([]complex128, d.Nx)
	for j := 0; j < d.Ny; j++ {
		for k := 0; k < d.Nz; k++ {
			for i := 0; i < d.Nx; i++ {
				bufX[i] = x[d.Index(i, j, k)]
			}
			transform(bufX, inverse)
			for i := 0; i < d.Nx; i++ {
				x[d.Index(i, j, k)] = bufX[i]
			}
		}
	}
}

// Convolve3 returns the cyclic 3-D convolution of a and b (both with
// extents d): out[p] = sum_q a[q]*b[(p-q) mod d].
func Convolve3(a, b []complex128, d Dim3) []complex128 {
	if len(a) != d.Len() || len(b) != d.Len() {
		panic("fft: Convolve3 length mismatch")
	}
	fa := append([]complex128(nil), a...)
	fb := append([]complex128(nil), b...)
	Forward3(fa, d)
	Forward3(fb, d)
	for i := range fa {
		fa[i] *= fb[i]
	}
	Inverse3(fa, d)
	return fa
}

// FlopEstimate returns the standard 5*n*log2(n) floating-point operation
// estimate for a complex FFT of length n. The FMM's counter profile uses
// it to attribute V-list work, mirroring how the paper's authors counted
// their cuFFT-based translation phase.
func FlopEstimate(n int) float64 {
	if n <= 1 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}
