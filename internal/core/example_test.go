package core_test

import (
	"fmt"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
)

// paperModel carries the ground-truth constants of DESIGN.md §5.
func paperModel() *core.Model {
	return &core.Model{
		SPpJ: 27.35, DPpJ: 131.08, IntpJ: 56.55, SMpJ: 33.36, L2pJ: 85.00, DRAMpJ: 369.57,
		C1Proc: 2.70, C1Mem: 3.80, PMisc: 0.15,
	}
}

func ExampleModel_EpsAt() {
	m := paperModel()
	e := m.EpsAt(dvfs.MustSetting(852, 924))
	fmt.Printf("SP %.1f pJ, DP %.1f pJ, DRAM %.1f pJ, const %.1f W\n",
		e.SP, e.DP, e.DRAM, e.ConstPower)
	// Output: SP 29.0 pJ, DP 139.1 pJ, DRAM 377.0 pJ, const 6.8 W
}

func ExampleModel_Predict() {
	m := paperModel()
	// A kernel: 1 G DP FMA, 2 G integer ops, 100 M DRAM words, 0.5 s.
	p := counters.Profile{DPFMA: 1e9, Int: 2e9, DRAMWords: 1e8}
	e := m.Predict(p, dvfs.MustSetting(852, 924), 0.5)
	fmt.Printf("%.2f J\n", e)
	// Output: 3.68 J
}

func ExamplePickTimeOracle() {
	cands := []core.Candidate{
		{Setting: dvfs.MustSetting(396, 528), Time: 0.9, MeasuredEnergy: 5.0},
		{Setting: dvfs.MustSetting(852, 924), Time: 0.4, MeasuredEnergy: 5.5},
	}
	i := core.PickTimeOracle(cands)
	fmt.Println("race-to-halt picks", cands[i].Setting.Core.FreqMHz, "MHz")
	fmt.Println("measured minimum is index", core.PickMeasuredMin(cands))
	// Output:
	// race-to-halt picks 852 MHz
	// measured minimum is index 0
}
