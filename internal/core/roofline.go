package core

import (
	"fmt"
	"math"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

// This file implements the energy-roofline analysis the DVFS-aware model
// extends (the authors' prior IPDPS'13/'14 work, paper refs [2,3]): for
// a kernel characterized only by its arithmetic intensity I — operations
// per word of DRAM traffic — the model yields closed-form performance,
// power and energy-efficiency curves and the machine's *balance points*,
// the intensities at which a kernel transitions from memory-bound to
// compute-bound in time and in energy.

// OpClass selects the operation class of a roofline analysis.
type OpClass int

const (
	// ClassSP analyzes single-precision flops.
	ClassSP OpClass = iota
	// ClassDP analyzes double-precision flops.
	ClassDP
	// ClassInt analyzes integer operations.
	ClassInt
)

func (c OpClass) String() string {
	switch c {
	case ClassSP:
		return "SP"
	case ClassDP:
		return "DP"
	case ClassInt:
		return "Int"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// Machine carries the time-side peaks of the platform at one DVFS
// setting: the peak operation throughput of the analyzed class and the
// peak DRAM word bandwidth. (The energy-side costs come from the fitted
// Model.)
type Machine struct {
	OpsPerSec   units.OpsPerSecond   // peak throughput of the op class
	WordsPerSec units.WordsPerSecond // peak DRAM bandwidth, 32-bit words
}

// Validate reports an error for non-physical machines.
func (m Machine) Validate() error {
	if m.OpsPerSec <= 0 || m.WordsPerSec <= 0 {
		return fmt.Errorf("core: machine peaks must be positive, got %+v", m)
	}
	return nil
}

// TimeBalance returns B_τ, the arithmetic intensity (ops per word) at
// which execution time transitions from memory- to compute-bound:
// below it the kernel is bandwidth-limited.
func (m Machine) TimeBalance() units.OpsPerWord {
	return units.OpsPerWord(float64(m.OpsPerSec) / float64(m.WordsPerSec))
}

// epsOf returns the model's per-op energy for the class at s.
func (m *Model) epsOf(c OpClass, s dvfs.Setting) units.PicoJoulePerOp {
	e := m.EpsAt(s)
	switch c {
	case ClassSP:
		return e.SP
	case ClassDP:
		return e.DP
	case ClassInt:
		return e.Int
	default:
		panic(fmt.Sprintf("core: unknown op class %d", int(c)))
	}
}

// EnergyBalance returns B_ε, the intensity at which a kernel spends as
// much energy on DRAM traffic as on operations: ε_mem / ε_op. Below it,
// data movement dominates the kernel's dynamic energy.
func (m *Model) EnergyBalance(c OpClass, s dvfs.Setting) units.OpsPerWord {
	e := m.EpsAt(s)
	return units.OpsPerWord(e.DRAM / m.epsOf(c, s))
}

// RooflinePoint is one sample of the energy roofline curves at a given
// arithmetic intensity, all per-op quantities normalized per operation.
type RooflinePoint struct {
	Intensity units.OpsPerWord

	TimePerOp   units.Second       // max(1/peak, 1/(I*BW))
	OpsPerSec   units.OpsPerSecond // attained performance (the classic roofline)
	EnergyPerOp units.JoulePerOp   // ε_op + ε_mem/I + π0·TimePerOp
	OpsPerJoule units.OpsPerJoule  // attained energy efficiency (the energy roofline)
	Power       units.Watt         // EnergyPerOp / TimePerOp
}

// RooflineAt evaluates the roofline curves for intensity I at setting s.
func (m *Model) RooflineAt(c OpClass, mach Machine, s dvfs.Setting, intensity units.OpsPerWord) RooflinePoint {
	if err := mach.Validate(); err != nil {
		panic(err)
	}
	if intensity <= 0 {
		panic(fmt.Sprintf("core: non-positive intensity %g", float64(intensity)))
	}
	const pJ = 1e-12
	e := m.EpsAt(s)
	inten := float64(intensity)
	tOp := math.Max(1/float64(mach.OpsPerSec), 1/(inten*float64(mach.WordsPerSec)))
	eOp := float64(m.epsOf(c, s))*pJ + float64(e.DRAM)*pJ/inten + float64(e.ConstPower)*tOp
	return RooflinePoint{
		Intensity:   intensity,
		TimePerOp:   units.Second(tOp),
		OpsPerSec:   units.OpsPerSecond(1 / tOp),
		EnergyPerOp: units.JoulePerOp(eOp),
		OpsPerJoule: units.OpsPerJoule(1 / eOp),
		Power:       units.Watt(eOp / tOp),
	}
}

// Roofline samples the curves at the given intensities.
func (m *Model) Roofline(c OpClass, mach Machine, s dvfs.Setting, intensities []units.OpsPerWord) []RooflinePoint {
	out := make([]RooflinePoint, len(intensities))
	for i, x := range intensities {
		out[i] = m.RooflineAt(c, mach, s, x)
	}
	return out
}

// EffectiveEnergyBalance returns the intensity at which *total* energy
// per op (including constant energy, which depends on the time roofline)
// is split evenly between operation energy and everything else. Unlike
// EnergyBalance it accounts for constant power, which shifts the balance
// right on platforms with high idle power — the effect that makes
// race-to-halt nearly optimal for the paper's FMM.
func (m *Model) EffectiveEnergyBalance(c OpClass, mach Machine, s dvfs.Setting) units.OpsPerWord {
	const pJ = 1e-12
	e := m.EpsAt(s)
	opE := float64(m.epsOf(c, s)) * pJ
	// Solve ε_mem/I + π0·t(I) = ε_op by bisection on I; the left side is
	// strictly decreasing in I.
	nonOp := func(i float64) float64 {
		tOp := math.Max(1/float64(mach.OpsPerSec), 1/(i*float64(mach.WordsPerSec)))
		return float64(e.DRAM)*pJ/i + float64(e.ConstPower)*tOp
	}
	lo, hi := 1e-6, 1e9
	if nonOp(hi) > opE {
		return units.OpsPerWord(math.Inf(1)) // constant power alone exceeds op energy
	}
	if nonOp(lo) < opE {
		return units.OpsPerWord(lo)
	}
	for iter := 0; iter < 200; iter++ {
		mid := math.Sqrt(lo * hi)
		if nonOp(mid) > opE {
			lo = mid
		} else {
			hi = mid
		}
	}
	return units.OpsPerWord(math.Sqrt(lo * hi))
}

// MachineFor derives the time-side peaks for a class at a setting from
// per-cycle throughputs — a convenience for platforms described the way
// internal/tegra describes the Tegra K1.
func MachineFor(opsPerCycle, wordsPerCycle units.PerCycle, s dvfs.Setting) Machine {
	return Machine{
		OpsPerSec:   units.OpsPerSecond(float64(opsPerCycle) * float64(s.Core.FreqHz())),
		WordsPerSec: units.WordsPerSecond(float64(wordsPerCycle) * float64(s.Mem.FreqHz())),
	}
}

// ProfileIntensity returns a profile's arithmetic intensity with respect
// to one op class: class operations per DRAM word. It returns +Inf for
// profiles without DRAM traffic.
func ProfileIntensity(c OpClass, p counters.Profile) units.OpsPerWord {
	var ops float64
	switch c {
	case ClassSP:
		ops = p.SP
	case ClassDP:
		ops = p.DPFMA + p.DPAdd + p.DPMul
	case ClassInt:
		ops = p.Int
	default:
		panic(fmt.Sprintf("core: unknown op class %d", int(c)))
	}
	if p.DRAMWords == 0 {
		return units.OpsPerWord(math.Inf(1))
	}
	return units.OpsPerWord(ops / p.DRAMWords)
}
