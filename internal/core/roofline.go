package core

import (
	"fmt"
	"math"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
)

// This file implements the energy-roofline analysis the DVFS-aware model
// extends (the authors' prior IPDPS'13/'14 work, paper refs [2,3]): for
// a kernel characterized only by its arithmetic intensity I — operations
// per word of DRAM traffic — the model yields closed-form performance,
// power and energy-efficiency curves and the machine's *balance points*,
// the intensities at which a kernel transitions from memory-bound to
// compute-bound in time and in energy.

// OpClass selects the operation class of a roofline analysis.
type OpClass int

const (
	// ClassSP analyzes single-precision flops.
	ClassSP OpClass = iota
	// ClassDP analyzes double-precision flops.
	ClassDP
	// ClassInt analyzes integer operations.
	ClassInt
)

func (c OpClass) String() string {
	switch c {
	case ClassSP:
		return "SP"
	case ClassDP:
		return "DP"
	case ClassInt:
		return "Int"
	default:
		return fmt.Sprintf("OpClass(%d)", int(c))
	}
}

// Machine carries the time-side peaks of the platform at one DVFS
// setting: the peak operation throughput of the analyzed class and the
// peak DRAM word bandwidth. (The energy-side costs come from the fitted
// Model.)
type Machine struct {
	OpsPerSec   float64 // peak throughput of the op class, ops/s
	WordsPerSec float64 // peak DRAM bandwidth, 32-bit words/s
}

// Validate reports an error for non-physical machines.
func (m Machine) Validate() error {
	if m.OpsPerSec <= 0 || m.WordsPerSec <= 0 {
		return fmt.Errorf("core: machine peaks must be positive, got %+v", m)
	}
	return nil
}

// TimeBalance returns B_τ, the arithmetic intensity (ops per word) at
// which execution time transitions from memory- to compute-bound:
// below it the kernel is bandwidth-limited.
func (m Machine) TimeBalance() float64 {
	return m.OpsPerSec / m.WordsPerSec
}

// epsOf returns the model's per-op energy (pJ) for the class at s.
func (m *Model) epsOf(c OpClass, s dvfs.Setting) float64 {
	e := m.EpsAt(s)
	switch c {
	case ClassSP:
		return e.SP
	case ClassDP:
		return e.DP
	case ClassInt:
		return e.Int
	default:
		panic(fmt.Sprintf("core: unknown op class %d", int(c)))
	}
}

// EnergyBalance returns B_ε, the intensity at which a kernel spends as
// much energy on DRAM traffic as on operations: ε_mem / ε_op. Below it,
// data movement dominates the kernel's dynamic energy.
func (m *Model) EnergyBalance(c OpClass, s dvfs.Setting) float64 {
	e := m.EpsAt(s)
	return e.DRAM / m.epsOf(c, s)
}

// RooflinePoint is one sample of the energy roofline curves at a given
// arithmetic intensity, all per-op quantities normalized per operation.
type RooflinePoint struct {
	Intensity float64 // ops per DRAM word

	TimePerOp   float64 // seconds, max(1/peak, 1/(I*BW))
	OpsPerSec   float64 // attained performance (the classic roofline)
	EnergyPerOp float64 // joules: ε_op + ε_mem/I + π0·TimePerOp
	OpsPerJoule float64 // attained energy efficiency (the energy roofline)
	Power       float64 // watts: EnergyPerOp / TimePerOp
}

// RooflineAt evaluates the roofline curves for intensity I at setting s.
func (m *Model) RooflineAt(c OpClass, mach Machine, s dvfs.Setting, intensity float64) RooflinePoint {
	if err := mach.Validate(); err != nil {
		panic(err)
	}
	if intensity <= 0 {
		panic(fmt.Sprintf("core: non-positive intensity %g", intensity))
	}
	const pJ = 1e-12
	e := m.EpsAt(s)
	tOp := math.Max(1/mach.OpsPerSec, 1/(intensity*mach.WordsPerSec))
	eOp := m.epsOf(c, s)*pJ + e.DRAM*pJ/intensity + e.ConstPower*tOp
	return RooflinePoint{
		Intensity:   intensity,
		TimePerOp:   tOp,
		OpsPerSec:   1 / tOp,
		EnergyPerOp: eOp,
		OpsPerJoule: 1 / eOp,
		Power:       eOp / tOp,
	}
}

// Roofline samples the curves at the given intensities.
func (m *Model) Roofline(c OpClass, mach Machine, s dvfs.Setting, intensities []float64) []RooflinePoint {
	out := make([]RooflinePoint, len(intensities))
	for i, x := range intensities {
		out[i] = m.RooflineAt(c, mach, s, x)
	}
	return out
}

// EffectiveEnergyBalance returns the intensity at which *total* energy
// per op (including constant energy, which depends on the time roofline)
// is split evenly between operation energy and everything else. Unlike
// EnergyBalance it accounts for constant power, which shifts the balance
// right on platforms with high idle power — the effect that makes
// race-to-halt nearly optimal for the paper's FMM.
func (m *Model) EffectiveEnergyBalance(c OpClass, mach Machine, s dvfs.Setting) float64 {
	const pJ = 1e-12
	e := m.EpsAt(s)
	opE := m.epsOf(c, s) * pJ
	// Solve ε_mem/I + π0·t(I) = ε_op by bisection on I; the left side is
	// strictly decreasing in I.
	nonOp := func(i float64) float64 {
		tOp := math.Max(1/mach.OpsPerSec, 1/(i*mach.WordsPerSec))
		return e.DRAM*pJ/i + e.ConstPower*tOp
	}
	lo, hi := 1e-6, 1e9
	if nonOp(hi) > opE {
		return math.Inf(1) // constant power alone exceeds op energy
	}
	if nonOp(lo) < opE {
		return lo
	}
	for iter := 0; iter < 200; iter++ {
		mid := math.Sqrt(lo * hi)
		if nonOp(mid) > opE {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}

// MachineFor derives the time-side peaks for a class at a setting from
// per-cycle throughputs — a convenience for platforms described the way
// internal/tegra describes the Tegra K1.
func MachineFor(opsPerCycle, wordsPerCycle float64, s dvfs.Setting) Machine {
	return Machine{
		OpsPerSec:   opsPerCycle * s.Core.FreqHz(),
		WordsPerSec: wordsPerCycle * s.Mem.FreqHz(),
	}
}

// ProfileIntensity returns a profile's arithmetic intensity with respect
// to one op class: class operations per DRAM word. It returns +Inf for
// profiles without DRAM traffic.
func ProfileIntensity(c OpClass, p counters.Profile) float64 {
	var ops float64
	switch c {
	case ClassSP:
		ops = p.SP
	case ClassDP:
		ops = p.DPFMA + p.DPAdd + p.DPMul
	case ClassInt:
		ops = p.Int
	default:
		panic(fmt.Sprintf("core: unknown op class %d", int(c)))
	}
	if p.DRAMWords == 0 {
		return math.Inf(1)
	}
	return ops / p.DRAMWords
}
