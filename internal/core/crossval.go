package core

import (
	"fmt"

	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

// CVResult reports a cross-validation run: the per-test-sample relative
// errors (as fractions, not percent) and their summary.
type CVResult struct {
	Errors  []units.Ratio
	Summary stats.Summary
}

// Percent returns the error summary scaled to percent, the unit the
// paper quotes (e.g. "mean error of 6.56% with a standard deviation of
// 3.80%").
func (r CVResult) Percent() stats.Summary {
	return stats.Summary{
		N:      r.Summary.N,
		Mean:   r.Summary.Mean * 100,
		Stddev: r.Summary.Stddev * 100,
		Min:    r.Summary.Min * 100,
		Max:    r.Summary.Max * 100,
	}
}

// validateFolds evaluates the model fit on each fold's training indices
// against its test indices.
func validateFolds(samples []Sample, folds []stats.Fold) (CVResult, error) {
	var errs []float64
	for fi, fold := range folds {
		train := make([]Sample, len(fold.Train))
		for i, idx := range fold.Train {
			train[i] = samples[idx]
		}
		m, err := Fit(train)
		if err != nil {
			return CVResult{}, fmt.Errorf("core: fold %d: %w", fi, err)
		}
		for _, idx := range fold.Test {
			s := samples[idx]
			pred := m.Predict(s.Profile, s.Setting, s.Time)
			errs = append(errs, stats.RelErr(float64(pred), float64(s.Energy)))
		}
	}
	typed := make([]units.Ratio, len(errs))
	for i, e := range errs {
		typed[i] = units.Ratio(e)
	}
	return CVResult{Errors: typed, Summary: stats.Summarize(errs)}, nil
}

// HoldoutValidate performs the paper's 2-fold "holdout method" (§II-D):
// samples with trainMask[i] true train the model, the rest validate it.
func HoldoutValidate(samples []Sample, trainMask []bool) (CVResult, error) {
	if len(trainMask) != len(samples) {
		return CVResult{}, fmt.Errorf("core: mask length %d does not match %d samples", len(trainMask), len(samples))
	}
	return validateFolds(samples, []stats.Fold{stats.Holdout(trainMask)})
}

// CrossValidate performs k-fold cross-validation with a deterministic
// shuffle (§II-D uses k = 16).
func CrossValidate(samples []Sample, k int, seed int64) (CVResult, error) {
	return validateFolds(samples, stats.KFold(len(samples), k, seed))
}

// CrossValidateGrouped performs leave-one-group-out cross-validation:
// groups[i] assigns sample i to a group (e.g. its DVFS setting), and each
// fold holds one whole group out. With one group per calibration setting
// this is the paper's 16-fold validation — it measures how the model
// extrapolates to voltage/frequency settings it has never seen, which is
// the generalization §II-D cares about.
func CrossValidateGrouped(samples []Sample, groups []int) (CVResult, error) {
	if len(groups) != len(samples) {
		return CVResult{}, fmt.Errorf("core: %d group labels for %d samples", len(groups), len(samples))
	}
	idx := map[int][]int{}
	var order []int
	for i, g := range groups {
		if _, ok := idx[g]; !ok {
			order = append(order, g)
		}
		idx[g] = append(idx[g], i)
	}
	if len(order) < 2 {
		return CVResult{}, fmt.Errorf("core: grouped CV needs at least 2 groups, got %d", len(order))
	}
	folds := make([]stats.Fold, 0, len(order))
	for _, g := range order {
		var f stats.Fold
		f.Test = idx[g]
		for _, h := range order {
			if h != g {
				f.Train = append(f.Train, idx[h]...)
			}
		}
		folds = append(folds, f)
	}
	return validateFolds(samples, folds)
}
