package core

import (
	"math"
	"testing"
	"testing/quick"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

func tk1Machine(s dvfs.Setting) Machine {
	return MachineFor(tegra.DPPerCycle, tegra.DRAMWordsPerCycle, s)
}

func TestTimeBalance(t *testing.T) {
	s := dvfs.MaxSetting()
	m := tk1Machine(s)
	// B_τ = peak DP / peak DRAM words: (8*852e6) / (4*924e6).
	want := (8.0 * 852e6) / (4.0 * 924e6)
	if math.Abs(float64(m.TimeBalance())-want) > 1e-12 {
		t.Errorf("TimeBalance = %v, want %v", m.TimeBalance(), want)
	}
}

func TestEnergyBalanceMatchesEpsRatio(t *testing.T) {
	m := knownModel()
	s := dvfs.MaxSetting()
	e := m.EpsAt(s)
	if got := m.EnergyBalance(ClassDP, s); math.Abs(float64(got)-float64(e.DRAM/e.DP)) > 1e-12 {
		t.Errorf("EnergyBalance = %v, want %v", got, e.DRAM/e.DP)
	}
	if got := m.EnergyBalance(ClassSP, s); math.Abs(float64(got)-float64(e.DRAM/e.SP)) > 1e-12 {
		t.Errorf("SP EnergyBalance = %v, want %v", got, e.DRAM/e.SP)
	}
}

func TestRooflineShape(t *testing.T) {
	// The classic roofline: performance rises linearly with intensity in
	// the memory-bound region and saturates at the compute peak.
	m := knownModel()
	s := dvfs.MaxSetting()
	mach := tk1Machine(s)
	bt := mach.TimeBalance()

	low := m.RooflineAt(ClassDP, mach, s, bt/100)
	mid := m.RooflineAt(ClassDP, mach, s, bt)
	high := m.RooflineAt(ClassDP, mach, s, bt*100)

	// Memory-bound: perf = I * BW.
	if rel := math.Abs(float64(low.OpsPerSec)-float64(low.Intensity)*float64(mach.WordsPerSec)) / float64(low.OpsPerSec); rel > 1e-12 {
		t.Errorf("memory-bound perf %v != I*BW", low.OpsPerSec)
	}
	// Compute-bound: perf = peak.
	if rel := math.Abs(float64(high.OpsPerSec-mach.OpsPerSec)) / float64(mach.OpsPerSec); rel > 1e-12 {
		t.Errorf("compute-bound perf %v != peak %v", high.OpsPerSec, mach.OpsPerSec)
	}
	// The ridge point attains peak too.
	if rel := math.Abs(float64(mid.OpsPerSec-mach.OpsPerSec)) / float64(mach.OpsPerSec); rel > 1e-9 {
		t.Errorf("ridge perf %v != peak", mid.OpsPerSec)
	}
}

func TestRooflineMonotonicity(t *testing.T) {
	// Property: ops/J and ops/s are non-decreasing in intensity, power is
	// positive and bounded by a sane envelope.
	m := knownModel()
	s := dvfs.MustSetting(540, 528)
	mach := tk1Machine(s)
	f := func(a, b uint16) bool {
		i1 := units.OpsPerWord(0.01 * (1 + float64(a%1000)))
		i2 := i1 * units.OpsPerWord(1+float64(b%100)/10)
		p1 := m.RooflineAt(ClassDP, mach, s, i1)
		p2 := m.RooflineAt(ClassDP, mach, s, i2)
		return p2.OpsPerSec >= p1.OpsPerSec-1e-9 &&
			p2.OpsPerJoule >= p1.OpsPerJoule-1e-9 &&
			p1.Power > 0 && p1.Power < 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRooflineEnergyDecomposition(t *testing.T) {
	// At very high intensity the energy per op approaches
	// ε_op + π0/peak; at very low intensity the DRAM term dominates.
	m := knownModel()
	s := dvfs.MaxSetting()
	mach := tk1Machine(s)
	e := m.EpsAt(s)
	const pJ = 1e-12

	high := m.RooflineAt(ClassDP, mach, s, 1e9)
	want := float64(e.DP)*pJ + float64(e.ConstPower)/float64(mach.OpsPerSec)
	if rel := math.Abs(float64(high.EnergyPerOp)-want) / want; rel > 1e-3 {
		t.Errorf("high-intensity energy/op = %v, want %v", high.EnergyPerOp, want)
	}

	low := m.RooflineAt(ClassDP, mach, s, 1e-6)
	// Dominated by ε_mem/I.
	if float64(low.EnergyPerOp) < float64(e.DRAM)*pJ/1e-6*0.9 {
		t.Errorf("low-intensity energy/op %v should be DRAM-dominated", low.EnergyPerOp)
	}
}

func TestEffectiveEnergyBalanceExceedsPureBalance(t *testing.T) {
	// Constant power adds a time-dependent term, so the intensity at
	// which op energy reaches half the total is strictly larger than the
	// dynamic-only balance ε_mem/ε_op.
	m := knownModel()
	s := dvfs.MaxSetting()

	// On the real TK1 the DP (and even SP) peaks are too low to amortize
	// constant power: π0/peak exceeds ε_op, so the effective balance is
	// +Inf — precisely the paper's §IV-C finding that constant power
	// dominates any DP application on this SoC.
	if eff := m.EffectiveEnergyBalance(ClassDP, tk1Machine(s), s); !math.IsInf(float64(eff), 1) {
		t.Errorf("TK1 DP effective balance = %v, want +Inf (idle power > ε_DP at peak)", eff)
	}

	// A hypothetical machine with a 1 Tops/s pipe amortizes π0 and has a
	// finite balance strictly above the dynamic-only one.
	mach := Machine{OpsPerSec: 1e12, WordsPerSec: 4 * 924e6}
	pure := m.EnergyBalance(ClassDP, s)
	eff := m.EffectiveEnergyBalance(ClassDP, mach, s)
	if math.IsInf(float64(eff), 1) || eff <= pure {
		t.Fatalf("effective balance %v should be finite and exceed pure balance %v", eff, pure)
	}
	// At the effective balance, non-op energy equals op energy, so the
	// total is twice the op energy (within bisection tolerance).
	pt := m.RooflineAt(ClassDP, mach, s, eff)
	opE := float64(m.epsOf(ClassDP, s)) * 1e-12
	if rel := math.Abs(float64(pt.EnergyPerOp)-2*opE) / (2 * opE); rel > 1e-6 {
		t.Errorf("at effective balance, energy/op = %v, want %v", pt.EnergyPerOp, 2*opE)
	}
}

func TestRooflinePanics(t *testing.T) {
	m := knownModel()
	s := dvfs.MaxSetting()
	for name, fn := range map[string]func(){
		"bad machine":   func() { m.RooflineAt(ClassDP, Machine{}, s, 1) },
		"bad intensity": func() { m.RooflineAt(ClassDP, tk1Machine(s), s, 0) },
		"bad class":     func() { m.epsOf(OpClass(9), s) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestProfileIntensity(t *testing.T) {
	p := counters.Profile{DPFMA: 100, DPAdd: 50, DPMul: 50, SP: 10, Int: 400, DRAMWords: 20}
	if got := ProfileIntensity(ClassDP, p); got != 10 {
		t.Errorf("DP intensity = %v, want 10", got)
	}
	if got := ProfileIntensity(ClassSP, p); got != 0.5 {
		t.Errorf("SP intensity = %v, want 0.5", got)
	}
	if got := ProfileIntensity(ClassInt, p); got != 20 {
		t.Errorf("Int intensity = %v, want 20", got)
	}
	if !math.IsInf(float64(ProfileIntensity(ClassDP, counters.Profile{DPFMA: 1})), 1) {
		t.Error("intensity without DRAM traffic should be +Inf")
	}
}

func TestOpClassStrings(t *testing.T) {
	if ClassSP.String() != "SP" || ClassDP.String() != "DP" || ClassInt.String() != "Int" {
		t.Error("OpClass strings wrong")
	}
	if OpClass(7).String() != "OpClass(7)" {
		t.Error("unknown OpClass string wrong")
	}
}

func TestRooflineIdentifiesFMMRegime(t *testing.T) {
	// The FMM's overall DP intensity on the TK1 sits near or below the
	// machine's effective energy balance — which is why constant power
	// dominates its energy (§IV-C) and race-to-halt is near-optimal.
	m := knownModel()
	s := dvfs.MaxSetting()
	mach := tk1Machine(s)
	// A representative FMM profile shape (from Figure 4): per DRAM word,
	// roughly 13 DP ops at Q=64.
	fmmIntensity := units.OpsPerWord(13)
	eff := m.EffectiveEnergyBalance(ClassDP, mach, s)
	pt := m.RooflineAt(ClassDP, mach, s, fmmIntensity)
	constShare := float64(m.ConstPower(s)) * float64(pt.TimePerOp) / float64(pt.EnergyPerOp)
	if eff < fmmIntensity && constShare > 0.5 {
		t.Errorf("inconsistent regime: intensity %v above balance %v yet constant-dominated (%.2f)",
			fmmIntensity, eff, constShare)
	}
	t.Logf("TK1 DP: time balance %.1f, energy balance %.1f, effective balance %.1f; FMM at ~%.0f ops/word -> constant share %.2f",
		mach.TimeBalance(), m.EnergyBalance(ClassDP, s), eff, fmmIntensity, constShare)
}

func TestRooflineSamplesCurve(t *testing.T) {
	m := knownModel()
	s := dvfs.MaxSetting()
	mach := tk1Machine(s)
	intensities := []units.OpsPerWord{0.5, 1, 2, 4, 8}
	pts := m.Roofline(ClassDP, mach, s, intensities)
	if len(pts) != len(intensities) {
		t.Fatalf("got %d points, want %d", len(pts), len(intensities))
	}
	for i, p := range pts {
		if p.Intensity != intensities[i] {
			t.Errorf("point %d at intensity %v, want %v", i, p.Intensity, intensities[i])
		}
		single := m.RooflineAt(ClassDP, mach, s, intensities[i])
		if p != single {
			t.Errorf("point %d differs from RooflineAt", i)
		}
	}
}
