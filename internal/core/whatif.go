package core

import (
	"fmt"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

// What-if analyses (paper §VI): "One scenario in which our model could
// be useful is in deciding whether to use prefetching. If we could
// estimate the ratio between used and unused prefetched data, we could
// estimate how much energy could be saved by turning prefetching off
// (from not loading unused data) and how that might impact performance —
// a performance loss could increase total energy (from constant power)."
// This file implements exactly that estimator.

// PrefetchScenario describes a kernel whose prefetching can be toggled.
type PrefetchScenario struct {
	// Profile is the kernel's counted profile *with prefetching on*
	// (DRAMWords includes the unused prefetched data).
	Profile counters.Profile
	// UsedFraction is the fraction of prefetched DRAM data actually
	// consumed, in (0, 1].
	UsedFraction units.Ratio
	// Slowdown is the runtime multiplier of disabling prefetch (>= 1):
	// demand misses stall the pipeline.
	Slowdown units.Ratio
	// TimeWithPrefetch is the measured execution time with prefetching
	// on.
	TimeWithPrefetch units.Second
}

// Validate reports an error for meaningless scenarios.
func (s PrefetchScenario) Validate() error {
	if s.UsedFraction <= 0 || s.UsedFraction > 1 {
		return fmt.Errorf("core: used fraction %g outside (0, 1]", float64(s.UsedFraction))
	}
	if s.Slowdown < 1 {
		return fmt.Errorf("core: slowdown %g below 1", float64(s.Slowdown))
	}
	if s.TimeWithPrefetch <= 0 {
		return fmt.Errorf("core: non-positive time %g", float64(s.TimeWithPrefetch))
	}
	return nil
}

// PrefetchVerdict is the estimator's output.
type PrefetchVerdict struct {
	WithPrefetchJ    units.Joule // predicted energy with prefetching on
	WithoutPrefetchJ units.Joule // predicted energy with prefetching off
	DRAMSavedJ       units.Joule // energy saved by not loading unused data
	ConstantPaidJ    units.Joule // extra constant energy from running longer
	KeepPrefetch     bool        // true if prefetching is the lower-energy choice
}

// PrefetchAdvice evaluates the scenario at a DVFS setting with the
// fitted model.
func (m *Model) PrefetchAdvice(s PrefetchScenario, setting dvfs.Setting) (PrefetchVerdict, error) {
	if err := s.Validate(); err != nil {
		return PrefetchVerdict{}, err
	}
	withOff := s.Profile
	withOff.DRAMWords = s.Profile.DRAMWords * float64(s.UsedFraction)
	tOff := units.Second(float64(s.TimeWithPrefetch) * float64(s.Slowdown))

	on := m.PredictParts(s.Profile, setting, s.TimeWithPrefetch)
	off := m.PredictParts(withOff, setting, tOff)

	return PrefetchVerdict{
		WithPrefetchJ:    on.Total(),
		WithoutPrefetchJ: off.Total(),
		DRAMSavedJ:       on.DRAM - off.DRAM,
		ConstantPaidJ:    off.Constant - on.Constant,
		KeepPrefetch:     on.Total() <= off.Total(),
	}, nil
}

// PrefetchBreakEven returns the used-data fraction below which disabling
// prefetch becomes the lower-energy choice for the given slowdown, found
// by bisection. It returns 0 if prefetching wins even at arbitrarily low
// utilization, and 1 if disabling wins even at full utilization.
func (m *Model) PrefetchBreakEven(s PrefetchScenario, setting dvfs.Setting) (units.Ratio, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	keepAt := func(frac float64) bool {
		sc := s
		sc.UsedFraction = units.Ratio(frac)
		// The with-prefetch profile loads usedWords/frac DRAM words for
		// the same used data; rescale so the used volume is constant.
		used := s.Profile.DRAMWords * float64(s.UsedFraction)
		sc.Profile.DRAMWords = used / frac
		v, err := m.PrefetchAdvice(sc, setting)
		if err != nil {
			return true
		}
		return v.KeepPrefetch
	}
	const eps = 1e-6
	if keepAt(eps) {
		return 0, nil
	}
	if !keepAt(1) {
		return 1, nil
	}
	lo, hi := eps, 1.0 // keepAt(lo)=false, keepAt(hi)=true
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if keepAt(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return units.Ratio((lo + hi) / 2), nil
}
