package core

import (
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/microbench"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// knownModel returns a model with the paper's Table I ground-truth
// constants (DESIGN.md §5).
func knownModel() *Model {
	return &Model{
		SPpJ: 27.35, DPpJ: 131.08, IntpJ: 56.55, SMpJ: 33.36, L2pJ: 85.00, DRAMpJ: 369.57,
		C1Proc: 2.70, C1Mem: 3.80, PMisc: 0.15,
	}
}

// calibrationSamples runs the microbenchmark suite (or a subset) over the
// paper's 16 calibration settings on the given device, metering each
// sample with the given meter config and campaign seed.
func calibrationSamples(t *testing.T, dev *tegra.Device, meterCfg powermon.Config, seed int64, benches []microbench.Benchmark) []Sample {
	t.Helper()
	r := &microbench.Runner{Device: dev, MeterConfig: meterCfg, Seed: seed, TargetTime: 0.1}
	var settings []dvfs.Setting
	for _, cs := range dvfs.CalibrationSettings() {
		settings = append(settings, cs.Setting)
	}
	raw, err := r.RunSuite(benches, settings)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Sample, len(raw))
	for i, s := range raw {
		out[i] = Sample{Profile: s.Workload.Profile, Setting: s.Setting, Time: s.Time, Energy: s.Energy}
	}
	return out
}

// smallSuite returns a reduced benchmark set that still spans all six
// operation classes, for fast tests.
func smallSuite() []microbench.Benchmark {
	var out []microbench.Benchmark
	for _, k := range microbench.Kinds() {
		is := k.Intensities()
		out = append(out,
			microbench.Benchmark{Kind: k, Intensity: is[0]},
			microbench.Benchmark{Kind: k, Intensity: is[len(is)/2]},
			microbench.Benchmark{Kind: k, Intensity: is[len(is)-1]},
		)
	}
	return out
}

func noiselessCfg() powermon.Config {
	return powermon.Config{SampleRate: powermon.MaxSampleRate}
}

func TestFitRecoversGroundTruthOnIdealDevice(t *testing.T) {
	// With the ideal device and a noiseless meter the NNLS fit must
	// recover the hidden Table I constants almost exactly.
	samples := calibrationSamples(t, tegra.NewIdealDevice(), noiselessCfg(), 1, smallSuite())
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := knownModel()
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"SPpJ", float64(m.SPpJ), float64(want.SPpJ), 0.02},
		{"DPpJ", float64(m.DPpJ), float64(want.DPpJ), 0.02},
		{"IntpJ", float64(m.IntpJ), float64(want.IntpJ), 0.02},
		{"SMpJ", float64(m.SMpJ), float64(want.SMpJ), 0.02},
		{"L2pJ", float64(m.L2pJ), float64(want.L2pJ), 0.02},
		{"DRAMpJ", float64(m.DRAMpJ), float64(want.DRAMpJ), 0.02},
		{"C1Proc", float64(m.C1Proc), float64(want.C1Proc), 0.10},
		{"C1Mem", float64(m.C1Mem), float64(want.C1Mem), 0.10},
	}
	for _, c := range checks {
		if rel := math.Abs(c.got-c.want) / c.want; rel > c.tol {
			t.Errorf("%s = %v, want %v (rel err %.4f > %.2f)", c.name, c.got, c.want, rel, c.tol)
		}
	}
}

func TestFitOnNoisyDeviceStaysCalibrated(t *testing.T) {
	// With realistic noise and the device's non-idealities, the full-
	// suite fit must recover dynamic coefficients within ~18% of truth —
	// the regime in which a printed Table I remains meaningful.
	samples := calibrationSamples(t, tegra.NewDevice(),
		powermon.DefaultConfig(), 7, microbench.Suite())
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	want := knownModel()
	pairs := [][2]units.PicoJoulePerOpPerVoltSq{
		{m.SPpJ, want.SPpJ}, {m.DPpJ, want.DPpJ}, {m.IntpJ, want.IntpJ},
		{m.SMpJ, want.SMpJ}, {m.L2pJ, want.L2pJ}, {m.DRAMpJ, want.DRAMpJ},
	}
	for i, p := range pairs {
		if rel := math.Abs(float64(p[0]-p[1])) / float64(p[1]); rel > 0.18 {
			t.Errorf("coefficient %d: got %v, want %v (rel %.3f)", i, p[0], p[1], rel)
		}
	}
}

func TestEpsAtReproducesTableIRows(t *testing.T) {
	// The known model evaluated at Table I settings must reproduce the
	// printed per-op energies (to printed precision).
	m := knownModel()
	e := m.EpsAt(dvfs.MustSetting(852, 924))
	rows := []struct {
		name      string
		got, want float64
	}{
		{"SP", float64(e.SP), 29.0}, {"DP", float64(e.DP), 139.1}, {"Int", float64(e.Int), 60.0},
		{"SM", float64(e.SM), 35.4}, {"L2", float64(e.L2), 90.2}, {"DRAM", float64(e.DRAM), 377.0},
		{"pi0", float64(e.ConstPower), 6.8},
	}
	for _, r := range rows {
		if math.Abs(r.got-r.want) > 0.1 {
			t.Errorf("%s = %.2f, Table I says %.1f", r.name, r.got, r.want)
		}
	}
	e = m.EpsAt(dvfs.MustSetting(396, 204))
	if math.Abs(float64(e.SP)-16.2) > 0.1 || math.Abs(float64(e.DRAM)-236.5) > 0.1 || math.Abs(float64(e.ConstPower)-5.2) > 0.1 {
		t.Errorf("396/204 row wrong: %+v", e)
	}
}

func TestPredictMatchesHandComputation(t *testing.T) {
	m := knownModel()
	s := dvfs.MustSetting(852, 924)
	p := counters.Profile{DPFMA: 1e9, Int: 2e9, DRAMWords: 1e8}
	tm := units.Second(0.5)
	e := m.EpsAt(s)
	want := (1e9*float64(e.DP) + 2e9*float64(e.Int) + 1e8*float64(e.DRAM)) * 1e-12 // dynamic
	want += float64(e.ConstPower) * float64(tm)
	got := m.Predict(p, s, tm)
	if math.Abs(float64(got)-want)/want > 1e-12 {
		t.Errorf("Predict = %v, want %v", got, want)
	}
}

func TestPartsSumToTotal(t *testing.T) {
	m := knownModel()
	p := counters.Profile{SP: 1e8, DPFMA: 2e8, DPAdd: 1e7, DPMul: 1e7, Int: 5e8,
		SharedWords: 3e8, L1Words: 1e8, L2Words: 5e7, DRAMWords: 2e7}
	parts := m.PredictParts(p, dvfs.MustSetting(540, 528), 0.7)
	sum := parts.Compute() + parts.Data() + parts.Constant
	if math.Abs(float64(sum-parts.Total()))/float64(parts.Total()) > 1e-12 {
		t.Errorf("Compute+Data+Constant = %v != Total %v", sum, parts.Total())
	}
	if parts.Constant <= 0 || parts.DP <= 0 || parts.SM <= 0 {
		t.Errorf("expected positive parts: %+v", parts)
	}
}

func TestL1ChargedAtSharedCost(t *testing.T) {
	m := knownModel()
	s := dvfs.MustSetting(852, 924)
	a := m.Predict(counters.Profile{SharedWords: 1e9, SP: 1}, s, 0.1)
	b := m.Predict(counters.Profile{L1Words: 1e9, SP: 1}, s, 0.1)
	if math.Abs(float64(a-b))/float64(a) > 1e-12 {
		t.Errorf("L1 words charged differently from shared words: %v vs %v", a, b)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("expected error for empty sample set")
	}
	bad := make([]Sample, numCoeffs)
	for i := range bad {
		bad[i] = Sample{Profile: counters.Profile{SP: 1}, Setting: dvfs.MaxSetting(), Time: 0, Energy: 1}
	}
	if _, err := Fit(bad); err == nil {
		t.Error("expected error for zero-time samples")
	}
}

func TestPredictionEquationMatchesEq9Form(t *testing.T) {
	// Doubling every operation count doubles the dynamic part but leaves
	// the constant part unchanged; doubling time does the reverse.
	m := knownModel()
	s := dvfs.MustSetting(756, 924)
	p := counters.Profile{DPFMA: 1e9, Int: 1e9, L2Words: 1e8, DRAMWords: 1e7}
	base := m.PredictParts(p, s, 1.0)
	doubleOps := m.PredictParts(p.Scale(2), s, 1.0)
	if math.Abs(float64(doubleOps.Compute()+doubleOps.Data()-2*(base.Compute()+base.Data()))) > 1e-9 {
		t.Error("dynamic energy not linear in operation counts")
	}
	if doubleOps.Constant != base.Constant {
		t.Error("constant energy should not depend on counts")
	}
	doubleTime := m.PredictParts(p, s, 2.0)
	if math.Abs(float64(doubleTime.Constant-2*base.Constant)) > 1e-12 {
		t.Error("constant energy not linear in time")
	}
	if doubleTime.Compute() != base.Compute() {
		t.Error("dynamic energy should not depend on time")
	}
}

func TestFitDegenerateSingleSetting(t *testing.T) {
	// All samples at one setting: the voltage columns are collinear with
	// the time column, so some coefficients are unidentifiable. NNLS must
	// still return a usable (non-negative) model that reproduces the
	// training energies, rather than failing.
	dev := tegra.NewIdealDevice()
	r := &microbench.Runner{Device: dev, MeterConfig: noiselessCfg(), Seed: 1, TargetTime: 0.05}
	s := dvfs.MaxSetting()
	var samples []Sample
	for _, k := range microbench.Kinds() {
		for _, ai := range k.Intensities() {
			smp, err := r.Run(microbench.Benchmark{Kind: k, Intensity: ai}, s)
			if err != nil {
				t.Fatal(err)
			}
			samples = append(samples, Sample{Profile: smp.Workload.Profile, Setting: s, Time: smp.Time, Energy: smp.Energy})
		}
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatalf("degenerate fit failed: %v", err)
	}
	for _, c := range []float64{
		float64(m.SPpJ), float64(m.DPpJ), float64(m.IntpJ), float64(m.SMpJ), float64(m.L2pJ), float64(m.DRAMpJ),
		float64(m.C1Proc), float64(m.C1Mem), float64(m.PMisc),
	} {
		if c < 0 {
			t.Fatalf("negative coefficient in degenerate fit: %+v", *m)
		}
	}
	// In-sample predictions must still be accurate.
	var worst float64
	for _, smp := range samples {
		rel := math.Abs(float64(m.Predict(smp.Profile, smp.Setting, smp.Time)-smp.Energy)) / float64(smp.Energy)
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.02 {
		t.Errorf("degenerate fit in-sample error %.3f too large", worst)
	}
}
