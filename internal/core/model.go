// Package core implements the paper's primary contribution: the
// DVFS-aware energy roofline model (Eq. 9),
//
//	E = Σ_k W_k·ĉ0k·V² + (c1,proc·Vproc + c1,mem·Vmem + Pmisc)·T ,
//
// where each operation class k (single- and double-precision flops,
// integer ops, shared/L1 words, L2 words, DRAM words) is charged a
// dynamic energy proportional to the square of its domain's supply
// voltage, and constant power scales linearly with the two domain
// voltages.
//
// The package provides model instantiation by non-negative least squares
// over measured samples (§II-C), energy prediction and per-component
// breakdowns (§IV), cross-validation (§II-D), and the energy autotuner
// with its race-to-halt "time oracle" baseline (§II-E).
//
// Every physical quantity is carried in the defined types of
// internal/units, so a Watt handed where a Joule belongs is a compile
// error (enforced repo-wide by the energylint unittypes rule).
package core

import (
	"errors"
	"fmt"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/linalg"
	"dvfsroofline/internal/nnls"
	"dvfsroofline/internal/units"
)

// Sample is one training/validation observation: an operation profile
// executed at a DVFS setting, with its measured execution time and
// measured energy. Samples typically come from the microbenchmark runner
// or from profiled application phases.
type Sample struct {
	Profile counters.Profile
	Setting dvfs.Setting
	Time    units.Second // measured
	Energy  units.Joule  // measured
}

// Validate reports an error for samples the fit cannot consume.
func (s Sample) Validate() error {
	if s.Time <= 0 {
		return fmt.Errorf("core: sample has non-positive time %g", float64(s.Time))
	}
	if s.Energy <= 0 {
		return fmt.Errorf("core: sample has non-positive energy %g", float64(s.Energy))
	}
	return nil
}

// Model holds the fitted constants of Eq. 9.
type Model struct {
	SPpJ   units.PicoJoulePerOpPerVoltSq // ĉ0 for single-precision flops
	DPpJ   units.PicoJoulePerOpPerVoltSq // ĉ0 for double-precision flops (FMA, add and mul alike)
	IntpJ  units.PicoJoulePerOpPerVoltSq // ĉ0 for integer instructions
	SMpJ   units.PicoJoulePerOpPerVoltSq // ĉ0 for shared-memory/L1 words (one SRAM on Kepler)
	L2pJ   units.PicoJoulePerOpPerVoltSq // ĉ0 for L2 words
	DRAMpJ units.PicoJoulePerOpPerVoltSq // ĉ0 for DRAM words (scales with the memory voltage)

	C1Proc units.WattPerVolt // processor leakage coefficient
	C1Mem  units.WattPerVolt // memory leakage coefficient
	PMisc  units.Watt        // operation-independent miscellaneous power
}

// ErrTooFewSamples is returned when the training set cannot identify the
// model's nine constants.
var ErrTooFewSamples = errors.New("core: need at least 9 samples to fit the model")

const numCoeffs = 9

// designRow fills one row of the Eq. 9 design matrix. Count columns carry
// a 1e-12 scale so the fitted dynamic coefficients come out in pJ/V².
// The row is dimensionally heterogeneous by construction (counts·V²
// against V·s and s columns), so it stays raw float64 like the NNLS
// solution vector it pairs with.
func designRow(row []float64, p counters.Profile, s dvfs.Setting, time float64) {
	vp := float64(s.Core.Volts())
	vm := float64(s.Mem.Volts())
	vp2, vm2 := vp*vp, vm*vm
	const scale = 1e-12
	row[0] = p.SP * vp2 * scale
	row[1] = (p.DPFMA + p.DPAdd + p.DPMul) * vp2 * scale
	row[2] = p.Int * vp2 * scale
	row[3] = (p.SharedWords + p.L1Words) * vp2 * scale
	row[4] = p.L2Words * vp2 * scale
	row[5] = p.DRAMWords * vm2 * scale
	row[6] = vp * time
	row[7] = vm * time
	row[8] = time
}

// Fit instantiates the model from measured samples by non-negative least
// squares, exactly as §II-C prescribes. Every coefficient is a physical
// capacitance or leakage term, so negativity is excluded by construction.
func Fit(samples []Sample) (*Model, error) {
	if len(samples) < numCoeffs {
		return nil, ErrTooFewSamples
	}
	a := linalg.NewMatrix(len(samples), numCoeffs)
	b := make([]units.Joule, len(samples))
	for i, s := range samples {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		designRow(a.Row(i), s.Profile, s.Setting, float64(s.Time))
		b[i] = s.Energy
	}
	res, err := nnls.Solve(a, b, 0)
	if err != nil {
		return nil, fmt.Errorf("core: NNLS fit failed: %w", err)
	}
	x := res.X
	return &Model{
		SPpJ:   units.PicoJoulePerOpPerVoltSq(x[0]),
		DPpJ:   units.PicoJoulePerOpPerVoltSq(x[1]),
		IntpJ:  units.PicoJoulePerOpPerVoltSq(x[2]),
		SMpJ:   units.PicoJoulePerOpPerVoltSq(x[3]),
		L2pJ:   units.PicoJoulePerOpPerVoltSq(x[4]),
		DRAMpJ: units.PicoJoulePerOpPerVoltSq(x[5]),
		C1Proc: units.WattPerVolt(x[6]),
		C1Mem:  units.WattPerVolt(x[7]),
		PMisc:  units.Watt(x[8]),
	}, nil
}

// Eps returns the model's per-operation energies at a setting — one
// derived row of the paper's Table I.
type Eps struct {
	SP, DP, Int, SM, L2, DRAM units.PicoJoulePerOp
	ConstPower                units.Watt
}

// EpsAt evaluates the per-operation energy costs at setting s
// (Eqs. 6–8): ε = ĉ0·V² with the processor voltage for on-chip classes
// and the memory voltage for DRAM.
func (m *Model) EpsAt(s dvfs.Setting) Eps {
	vp2 := s.Core.Volts().Squared()
	vm2 := s.Mem.Volts().Squared()
	return Eps{
		SP:         m.SPpJ.At(vp2),
		DP:         m.DPpJ.At(vp2),
		Int:        m.IntpJ.At(vp2),
		SM:         m.SMpJ.At(vp2),
		L2:         m.L2pJ.At(vp2),
		DRAM:       m.DRAMpJ.At(vm2),
		ConstPower: m.ConstPower(s),
	}
}

// ConstPower returns the model's constant power π0 at setting s (Eq. 8).
func (m *Model) ConstPower(s dvfs.Setting) units.Watt {
	return m.C1Proc.At(s.Core.Volts()) + m.C1Mem.At(s.Mem.Volts()) + m.PMisc
}

// Parts is an energy prediction decomposed by component. It is the data
// behind the paper's Figures 6 and 7.
type Parts struct {
	SP, DP, Int  units.Joule // computation instructions
	SM, L2, DRAM units.Joule // data movement (SM includes L1)
	Constant     units.Joule // π0 · T
}

// Total returns the summed predicted energy.
func (p Parts) Total() units.Joule {
	return p.SP + p.DP + p.Int + p.SM + p.L2 + p.DRAM + p.Constant
}

// Compute returns the computation-instruction energy (Figure 7's
// "Computation" bar).
func (p Parts) Compute() units.Joule { return p.SP + p.DP + p.Int }

// Data returns the data-movement energy (Figure 7's "Data" bar).
func (p Parts) Data() units.Joule { return p.SM + p.L2 + p.DRAM }

// PredictParts predicts the energy of executing profile p at setting s
// with measured execution time t, decomposed by component.
func (m *Model) PredictParts(p counters.Profile, s dvfs.Setting, t units.Second) Parts {
	e := m.EpsAt(s)
	const pJ = 1e-12
	return Parts{
		SP:       units.Joule(p.SP * float64(e.SP) * pJ),
		DP:       units.Joule((p.DPFMA + p.DPAdd + p.DPMul) * float64(e.DP) * pJ),
		Int:      units.Joule(p.Int * float64(e.Int) * pJ),
		SM:       units.Joule((p.SharedWords + p.L1Words) * float64(e.SM) * pJ),
		L2:       units.Joule(p.L2Words * float64(e.L2) * pJ),
		DRAM:     units.Joule(p.DRAMWords * float64(e.DRAM) * pJ),
		Constant: units.Energy(e.ConstPower, t),
	}
}

// Predict returns the total predicted energy for profile p at setting s
// with measured time t (Eq. 9 with the fitted constants).
func (m *Model) Predict(p counters.Profile, s dvfs.Setting, t units.Second) units.Joule {
	return m.PredictParts(p, s, t).Total()
}
