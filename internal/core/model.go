// Package core implements the paper's primary contribution: the
// DVFS-aware energy roofline model (Eq. 9),
//
//	E = Σ_k W_k·ĉ0k·V² + (c1,proc·Vproc + c1,mem·Vmem + Pmisc)·T ,
//
// where each operation class k (single- and double-precision flops,
// integer ops, shared/L1 words, L2 words, DRAM words) is charged a
// dynamic energy proportional to the square of its domain's supply
// voltage, and constant power scales linearly with the two domain
// voltages.
//
// The package provides model instantiation by non-negative least squares
// over measured samples (§II-C), energy prediction and per-component
// breakdowns (§IV), cross-validation (§II-D), and the energy autotuner
// with its race-to-halt "time oracle" baseline (§II-E).
package core

import (
	"errors"
	"fmt"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/linalg"
	"dvfsroofline/internal/nnls"
)

// Sample is one training/validation observation: an operation profile
// executed at a DVFS setting, with its measured execution time and
// measured energy. Samples typically come from the microbenchmark runner
// or from profiled application phases.
type Sample struct {
	Profile counters.Profile
	Setting dvfs.Setting
	Time    float64 // seconds, measured
	Energy  float64 // joules, measured
}

// Validate reports an error for samples the fit cannot consume.
func (s Sample) Validate() error {
	if s.Time <= 0 {
		return fmt.Errorf("core: sample has non-positive time %g", s.Time)
	}
	if s.Energy <= 0 {
		return fmt.Errorf("core: sample has non-positive energy %g", s.Energy)
	}
	return nil
}

// Model holds the fitted constants of Eq. 9. Dynamic coefficients are in
// picojoules per operation per volt²; leakage coefficients in watts per
// volt; PMisc in watts.
type Model struct {
	SPpJ   float64 // ĉ0 for single-precision flops
	DPpJ   float64 // ĉ0 for double-precision flops (FMA, add and mul alike)
	IntpJ  float64 // ĉ0 for integer instructions
	SMpJ   float64 // ĉ0 for shared-memory/L1 words (one SRAM on Kepler)
	L2pJ   float64 // ĉ0 for L2 words
	DRAMpJ float64 // ĉ0 for DRAM words (scales with the memory voltage)

	C1Proc float64 // processor leakage coefficient, W/V
	C1Mem  float64 // memory leakage coefficient, W/V
	PMisc  float64 // operation-independent miscellaneous power, W
}

// ErrTooFewSamples is returned when the training set cannot identify the
// model's nine constants.
var ErrTooFewSamples = errors.New("core: need at least 9 samples to fit the model")

const numCoeffs = 9

// designRow fills one row of the Eq. 9 design matrix. Count columns carry
// a 1e-12 scale so the fitted dynamic coefficients come out in pJ/V².
func designRow(row []float64, p counters.Profile, s dvfs.Setting, time float64) {
	vp := s.Core.Volts()
	vm := s.Mem.Volts()
	vp2, vm2 := vp*vp, vm*vm
	const scale = 1e-12
	row[0] = p.SP * vp2 * scale
	row[1] = (p.DPFMA + p.DPAdd + p.DPMul) * vp2 * scale
	row[2] = p.Int * vp2 * scale
	row[3] = (p.SharedWords + p.L1Words) * vp2 * scale
	row[4] = p.L2Words * vp2 * scale
	row[5] = p.DRAMWords * vm2 * scale
	row[6] = vp * time
	row[7] = vm * time
	row[8] = time
}

// Fit instantiates the model from measured samples by non-negative least
// squares, exactly as §II-C prescribes. Every coefficient is a physical
// capacitance or leakage term, so negativity is excluded by construction.
func Fit(samples []Sample) (*Model, error) {
	if len(samples) < numCoeffs {
		return nil, ErrTooFewSamples
	}
	a := linalg.NewMatrix(len(samples), numCoeffs)
	b := make([]float64, len(samples))
	for i, s := range samples {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("sample %d: %w", i, err)
		}
		designRow(a.Row(i), s.Profile, s.Setting, s.Time)
		b[i] = s.Energy
	}
	res, err := nnls.Solve(a, b, 0)
	if err != nil {
		return nil, fmt.Errorf("core: NNLS fit failed: %w", err)
	}
	x := res.X
	return &Model{
		SPpJ: x[0], DPpJ: x[1], IntpJ: x[2], SMpJ: x[3], L2pJ: x[4], DRAMpJ: x[5],
		C1Proc: x[6], C1Mem: x[7], PMisc: x[8],
	}, nil
}

// Eps returns the model's per-operation energies at a setting, in
// picojoules — one derived row of the paper's Table I.
type Eps struct {
	SP, DP, Int, SM, L2, DRAM float64 // pJ per operation
	ConstPower                float64 // W
}

// EpsAt evaluates the per-operation energy costs at setting s
// (Eqs. 6–8): ε = ĉ0·V² with the processor voltage for on-chip classes
// and the memory voltage for DRAM.
func (m *Model) EpsAt(s dvfs.Setting) Eps {
	vp := s.Core.Volts()
	vm := s.Mem.Volts()
	vp2, vm2 := vp*vp, vm*vm
	return Eps{
		SP:         m.SPpJ * vp2,
		DP:         m.DPpJ * vp2,
		Int:        m.IntpJ * vp2,
		SM:         m.SMpJ * vp2,
		L2:         m.L2pJ * vp2,
		DRAM:       m.DRAMpJ * vm2,
		ConstPower: m.ConstPower(s),
	}
}

// ConstPower returns the model's constant power π0 at setting s (Eq. 8).
func (m *Model) ConstPower(s dvfs.Setting) float64 {
	return m.C1Proc*s.Core.Volts() + m.C1Mem*s.Mem.Volts() + m.PMisc
}

// Parts is an energy prediction decomposed by component, in joules. It
// is the data behind the paper's Figures 6 and 7.
type Parts struct {
	SP, DP, Int  float64 // computation instructions
	SM, L2, DRAM float64 // data movement (SM includes L1)
	Constant     float64 // π0 · T
}

// Total returns the summed predicted energy.
func (p Parts) Total() float64 {
	return p.SP + p.DP + p.Int + p.SM + p.L2 + p.DRAM + p.Constant
}

// Compute returns the computation-instruction energy (Figure 7's
// "Computation" bar).
func (p Parts) Compute() float64 { return p.SP + p.DP + p.Int }

// Data returns the data-movement energy (Figure 7's "Data" bar).
func (p Parts) Data() float64 { return p.SM + p.L2 + p.DRAM }

// PredictParts predicts the energy of executing profile p at setting s
// with measured execution time t, decomposed by component.
func (m *Model) PredictParts(p counters.Profile, s dvfs.Setting, t float64) Parts {
	e := m.EpsAt(s)
	const pJ = 1e-12
	return Parts{
		SP:       p.SP * e.SP * pJ,
		DP:       (p.DPFMA + p.DPAdd + p.DPMul) * e.DP * pJ,
		Int:      p.Int * e.Int * pJ,
		SM:       (p.SharedWords + p.L1Words) * e.SM * pJ,
		L2:       p.L2Words * e.L2 * pJ,
		DRAM:     p.DRAMWords * e.DRAM * pJ,
		Constant: e.ConstPower * t,
	}
}

// Predict returns the total predicted energy in joules for profile p at
// setting s with measured time t (Eq. 9 with the fitted constants).
func (m *Model) Predict(p counters.Profile, s dvfs.Setting, t float64) float64 {
	return m.PredictParts(p, s, t).Total()
}
