package core

import (
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

func prefetchScenario(usedFrac float64) PrefetchScenario {
	return PrefetchScenario{
		Profile: counters.Profile{
			DPFMA:     3e8,
			Int:       9e8,
			DRAMWords: 5e8 / usedFrac,
		},
		UsedFraction:     units.Ratio(usedFrac),
		Slowdown:         1.25,
		TimeWithPrefetch: 0.5,
	}
}

func TestPrefetchAdviceHighUtilizationKeeps(t *testing.T) {
	m := knownModel()
	v, err := m.PrefetchAdvice(prefetchScenario(0.8), dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if !v.KeepPrefetch {
		t.Error("high utilization should favor prefetching")
	}
	// The verdict's decomposition must be internally consistent: the
	// energy difference equals constant paid minus DRAM saved plus any
	// dynamic-time-independent terms (zero here).
	diff := v.WithoutPrefetchJ - v.WithPrefetchJ
	if math.Abs(float64(diff-(v.ConstantPaidJ-v.DRAMSavedJ))) > 1e-9 {
		t.Errorf("decomposition inconsistent: diff %v vs paid-saved %v",
			diff, v.ConstantPaidJ-v.DRAMSavedJ)
	}
}

func TestPrefetchAdviceLowUtilizationDisables(t *testing.T) {
	m := knownModel()
	v, err := m.PrefetchAdvice(prefetchScenario(0.05), dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if v.KeepPrefetch {
		t.Errorf("5%% utilization should favor disabling prefetch: %+v", v)
	}
	if v.DRAMSavedJ <= v.ConstantPaidJ {
		t.Error("at 5% utilization, DRAM savings should exceed the constant-power cost")
	}
}

func TestPrefetchBreakEvenMonotone(t *testing.T) {
	m := knownModel()
	s := dvfs.MaxSetting()
	be, err := m.PrefetchBreakEven(prefetchScenario(0.4), s)
	if err != nil {
		t.Fatal(err)
	}
	if be <= 0 || be >= 1 {
		t.Fatalf("break-even %v not interior; scenario should have a crossover", be)
	}
	// Consistency: slightly above the break-even keep, slightly below
	// disable. (Rebuild the scenario at each fraction with constant used
	// data, as PrefetchBreakEven does.)
	check := func(frac units.Ratio) bool {
		sc := prefetchScenario(0.4)
		used := sc.Profile.DRAMWords * float64(sc.UsedFraction)
		sc.UsedFraction = frac
		sc.Profile.DRAMWords = used / float64(frac)
		v, err := m.PrefetchAdvice(sc, s)
		if err != nil {
			t.Fatal(err)
		}
		return v.KeepPrefetch
	}
	if !check(be * 1.2) {
		t.Errorf("keep expected just above break-even %v", be)
	}
	if check(be * 0.8) {
		t.Errorf("disable expected just below break-even %v", be)
	}
}

func TestPrefetchBreakEvenGrowsWithSlowdown(t *testing.T) {
	// A larger no-prefetch slowdown makes disabling costlier, pushing the
	// break-even utilization lower.
	m := knownModel()
	s := dvfs.MaxSetting()
	mild := prefetchScenario(0.4)
	mild.Slowdown = 1.1
	harsh := prefetchScenario(0.4)
	harsh.Slowdown = 1.6
	beMild, err := m.PrefetchBreakEven(mild, s)
	if err != nil {
		t.Fatal(err)
	}
	beHarsh, err := m.PrefetchBreakEven(harsh, s)
	if err != nil {
		t.Fatal(err)
	}
	if !(beHarsh < beMild) {
		t.Errorf("break-even should fall with slowdown: mild %v, harsh %v", beMild, beHarsh)
	}
}

func TestPrefetchScenarioValidation(t *testing.T) {
	m := knownModel()
	bad := []PrefetchScenario{
		{UsedFraction: 0, Slowdown: 1.2, TimeWithPrefetch: 1},
		{UsedFraction: 1.5, Slowdown: 1.2, TimeWithPrefetch: 1},
		{UsedFraction: 0.5, Slowdown: 0.9, TimeWithPrefetch: 1},
		{UsedFraction: 0.5, Slowdown: 1.2, TimeWithPrefetch: 0},
	}
	for i, s := range bad {
		if _, err := m.PrefetchAdvice(s, dvfs.MaxSetting()); err == nil {
			t.Errorf("scenario %d should be rejected", i)
		}
	}
}
