package core

import (
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

// syntheticSweep builds a three-candidate sweep where candidate 1 is the
// measured minimum, candidate 0 is fastest, and candidate 2 is worst on
// both axes.
func syntheticSweep() []Candidate {
	p := counters.Profile{SP: 1e9, DRAMWords: 1e8}
	return []Candidate{
		{Setting: dvfs.MustSetting(852, 924), Profile: p, Time: 0.10, MeasuredEnergy: 1.20},
		{Setting: dvfs.MustSetting(540, 528), Profile: p, Time: 0.15, MeasuredEnergy: 1.00},
		{Setting: dvfs.MustSetting(72, 68), Profile: p, Time: 0.90, MeasuredEnergy: 4.00},
	}
}

func TestPickTimeOracle(t *testing.T) {
	if got := PickTimeOracle(syntheticSweep()); got != 0 {
		t.Errorf("time oracle picked %d, want 0 (fastest)", got)
	}
}

func TestPickMeasuredMin(t *testing.T) {
	if got := PickMeasuredMin(syntheticSweep()); got != 1 {
		t.Errorf("measured min is %d, want 1", got)
	}
}

func TestPickModelMinEnergyUsesPrediction(t *testing.T) {
	// With the true model, the prediction ranks candidate 1 lowest when
	// its energies are consistent with Eq. 9; build such a sweep from the
	// model itself.
	m := knownModel()
	p := counters.Profile{SP: 1e9, DRAMWords: 2e8}
	sweep := make([]Candidate, 0, 3)
	for _, cfg := range [][3]float64{{852, 924, 0.10}, {540, 528, 0.18}, {72, 68, 1.4}} {
		s := dvfs.MustSetting(units.MegaHertz(cfg[0]), units.MegaHertz(cfg[1]))
		sweep = append(sweep, Candidate{
			Setting: s, Profile: p, Time: units.Second(cfg[2]),
			MeasuredEnergy: m.Predict(p, s, units.Second(cfg[2])),
		})
	}
	pick := m.PickModelMinEnergy(sweep)
	if pick != PickMeasuredMin(sweep) {
		t.Errorf("model pick %d disagrees with its own energy ranking %d", pick, PickMeasuredMin(sweep))
	}
}

func TestPickersPanicOnEmpty(t *testing.T) {
	m := knownModel()
	for name, fn := range map[string]func(){
		"model":  func() { m.PickModelMinEnergy(nil) },
		"oracle": func() { PickTimeOracle(nil) },
		"min":    func() { PickMeasuredMin(nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on empty sweep", name)
				}
			}()
			fn()
		}()
	}
}

func TestEvaluateStrategyCountsAndLoss(t *testing.T) {
	sweep := syntheticSweep()
	// A picker that always takes index 0 (fastest): mispredicts, losing
	// (1.20-1.00)/1.00 = 20%.
	st := EvaluateStrategy([][]Candidate{sweep, sweep}, func([]Candidate) int { return 0 })
	if st.Cases != 2 || st.Mispredictions != 2 {
		t.Fatalf("stats = %+v, want 2 cases 2 mispredictions", st)
	}
	if math.Abs(st.Lost.Mean-0.20) > 1e-12 {
		t.Errorf("mean energy lost = %v, want 0.20", st.Lost.Mean)
	}
	lp := st.LostPercent()
	if math.Abs(lp.Mean-20) > 1e-9 {
		t.Errorf("LostPercent mean = %v, want 20", lp.Mean)
	}
	// A perfect picker: no mispredictions, empty loss summary.
	st = EvaluateStrategy([][]Candidate{sweep}, PickMeasuredMin)
	if st.Mispredictions != 0 || st.Lost.N != 0 {
		t.Errorf("perfect picker scored %+v", st)
	}
}

func TestCompareStrategiesRowShape(t *testing.T) {
	m := knownModel()
	row := m.CompareStrategies("Synthetic", [][]Candidate{syntheticSweep()})
	if row.Family != "Synthetic" {
		t.Error("family label lost")
	}
	if row.Oracle.Mispredictions != 1 {
		t.Errorf("oracle mispredictions = %d, want 1", row.Oracle.Mispredictions)
	}
	if row.Model.Cases != 1 || row.Oracle.Cases != 1 {
		t.Error("case counts wrong")
	}
}

func TestStrategyStatsString(t *testing.T) {
	st := EvaluateStrategy([][]Candidate{syntheticSweep()}, func([]Candidate) int { return 2 })
	s := st.String()
	if s == "" || st.Mispredictions != 1 {
		t.Errorf("unexpected stats: %q %+v", s, st)
	}
}
