package core

import (
	"fmt"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

// Candidate is one DVFS configuration of a kernel in an autotuning sweep:
// the kernel's profile, its measured execution time at that setting, and
// its measured energy. MeasuredEnergy serves as the experimental ground
// truth for scoring strategies; the model strategy never reads it.
type Candidate struct {
	Setting        dvfs.Setting
	Profile        counters.Profile
	Time           units.Second
	MeasuredEnergy units.Joule
}

// PickModelMinEnergy returns the index of the candidate the model
// predicts to consume the least energy (§II-E, "our model").
func (m *Model) PickModelMinEnergy(cands []Candidate) int {
	if len(cands) == 0 {
		panic("core: empty candidate list")
	}
	best, bestE := 0, units.Joule(0)
	for i, c := range cands {
		e := m.Predict(c.Profile, c.Setting, c.Time)
		if i == 0 || e < bestE {
			best, bestE = i, e
		}
	}
	return best
}

// PickTimeOracle returns the index of the fastest candidate — the
// race-to-halt baseline the paper calls the "time oracle". Ties (to one
// part in 10⁹) break toward the higher clock frequencies: race-to-halt's
// prescription is to run everything as fast as possible.
func PickTimeOracle(cands []Candidate) int {
	if len(cands) == 0 {
		panic("core: empty candidate list")
	}
	best := 0
	for i, c := range cands {
		b := cands[best]
		switch {
		case c.Time < b.Time*(1-1e-9):
			best = i
		case c.Time <= b.Time*(1+1e-9):
			// Effectively tied on time: prefer the faster clocks.
			if c.Setting.Core.FreqMHz > b.Setting.Core.FreqMHz ||
				(c.Setting.Core.FreqMHz == b.Setting.Core.FreqMHz &&
					c.Setting.Mem.FreqMHz > b.Setting.Mem.FreqMHz) {
				best = i
			}
		}
	}
	return best
}

// PickMeasuredMin returns the index with the experimentally measured
// minimum energy — the ground truth both strategies are scored against.
func PickMeasuredMin(cands []Candidate) int {
	if len(cands) == 0 {
		panic("core: empty candidate list")
	}
	best := 0
	for i, c := range cands {
		if c.MeasuredEnergy < cands[best].MeasuredEnergy {
			best = i
		}
	}
	return best
}

// TuneOutcome scores one strategy on one kernel sweep.
type TuneOutcome struct {
	Pick       int         // candidate index the strategy chose
	Best       int         // candidate index with measured-minimum energy
	Mispredict bool        // strategy picked a non-minimal configuration
	EnergyLost units.Ratio // fraction of extra energy over the measured minimum
}

// scoreOutcome evaluates a pick against the measured minimum.
func scoreOutcome(cands []Candidate, pick int) TuneOutcome {
	best := PickMeasuredMin(cands)
	out := TuneOutcome{Pick: pick, Best: best}
	minE := cands[best].MeasuredEnergy
	pickE := cands[pick].MeasuredEnergy
	if pickE > minE {
		out.Mispredict = true
		out.EnergyLost = units.Ratio((pickE - minE) / minE)
	}
	return out
}

// StrategyStats aggregates a strategy over many kernel sweeps — one row
// pair of the paper's Table II.
type StrategyStats struct {
	Cases          int           // number of kernel sweeps evaluated
	Mispredictions int           // sweeps where the pick was not the measured minimum
	Lost           stats.Summary // energy lost (fraction) over mispredicted sweeps
}

// LostPercent returns the energy-lost summary scaled to percent, as
// Table II prints it.
func (s StrategyStats) LostPercent() stats.Summary {
	return stats.Summary{
		N:      s.Lost.N,
		Mean:   s.Lost.Mean * 100,
		Stddev: s.Lost.Stddev * 100,
		Min:    s.Lost.Min * 100,
		Max:    s.Lost.Max * 100,
	}
}

func (s StrategyStats) String() string {
	lp := s.LostPercent()
	return fmt.Sprintf("%d (out of %d) mispredictions, energy lost mean=%.2f%% min=%.2f%% max=%.2f%%",
		s.Mispredictions, s.Cases, lp.Mean, lp.Min, lp.Max)
}

// Picker selects one candidate index from a sweep.
type Picker func(cands []Candidate) int

// EvaluateStrategy scores a picker over a set of kernel sweeps (one sweep
// per intensity, as in Table II). Energy-lost statistics summarize only
// the mispredicted sweeps, matching the table's definition.
func EvaluateStrategy(sweeps [][]Candidate, pick Picker) StrategyStats {
	var out StrategyStats
	var losses []float64
	for _, cands := range sweeps {
		o := scoreOutcome(cands, pick(cands))
		out.Cases++
		if o.Mispredict {
			out.Mispredictions++
			losses = append(losses, float64(o.EnergyLost))
		}
	}
	out.Lost = stats.Summarize(losses)
	return out
}

// TableIIRow holds the model-vs-time-oracle comparison for one
// microbenchmark family.
type TableIIRow struct {
	Family string
	Model  StrategyStats
	Oracle StrategyStats
}

// CompareStrategies evaluates both Table II strategies on the same sweeps.
func (m *Model) CompareStrategies(family string, sweeps [][]Candidate) TableIIRow {
	return TableIIRow{
		Family: family,
		Model:  EvaluateStrategy(sweeps, m.PickModelMinEnergy),
		Oracle: EvaluateStrategy(sweeps, PickTimeOracle),
	}
}
