package core

import (
	"testing"

	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
)

func TestHoldoutValidateIdealIsNearExact(t *testing.T) {
	samples := calibrationSamples(t, tegra.NewIdealDevice(), noiselessCfg(), 1, smallSuite())
	// Train on the T-type settings (first 8 of 16), validate on V-type,
	// mirroring §II-D. Samples are setting-major: first half T.
	mask := make([]bool, len(samples))
	for i := range mask {
		mask[i] = i < len(samples)/2
	}
	res, err := HoldoutValidate(samples, mask)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Mean > 0.01 {
		t.Errorf("ideal-device holdout mean error %.4f, want < 1%%", res.Summary.Mean)
	}
}

func TestHoldoutValidateRealisticErrorBand(t *testing.T) {
	// §II-D: holdout mean error 2.87%, max 11.94%. With our simulated
	// noise the pipeline must land in the same regime: mean within
	// [0.5%, 6%], max below 20%.
	samples := calibrationSamples(t, tegra.NewDevice(),
		powermon.DefaultConfig(), 11, smallSuite())
	mask := make([]bool, len(samples))
	for i := range mask {
		mask[i] = i < len(samples)/2
	}
	res, err := HoldoutValidate(samples, mask)
	if err != nil {
		t.Fatal(err)
	}
	pct := res.Percent()
	if pct.Mean < 0.5 || pct.Mean > 6 {
		t.Errorf("holdout mean error %.2f%%, paper regime is ~2.9%%", pct.Mean)
	}
	if pct.Max > 20 {
		t.Errorf("holdout max error %.2f%%, paper max was 11.94%%", pct.Max)
	}
}

func TestCrossValidate16Fold(t *testing.T) {
	// §II-D: 16-fold CV mean 6.56%, max 15.22%. Accept a generous band
	// around the paper's numbers.
	samples := calibrationSamples(t, tegra.NewDevice(),
		powermon.DefaultConfig(), 13, smallSuite())
	res, err := CrossValidate(samples, 16, 99)
	if err != nil {
		t.Fatal(err)
	}
	pct := res.Percent()
	if pct.Mean < 0.5 || pct.Mean > 10 {
		t.Errorf("16-fold mean error %.2f%%, paper regime is ~6.6%%", pct.Mean)
	}
	if pct.N != len(samples) {
		t.Errorf("CV evaluated %d errors, want one per sample (%d)", pct.N, len(samples))
	}
}

func TestHoldoutMaskLengthMismatch(t *testing.T) {
	samples := make([]Sample, 4)
	if _, err := HoldoutValidate(samples, []bool{true}); err == nil {
		t.Error("expected error for mask length mismatch")
	}
}

func TestCrossValidatePanicsOnBadK(t *testing.T) {
	samples := calibrationSamples(t, tegra.NewIdealDevice(), noiselessCfg(), 1, smallSuite()[:2])
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k < 2")
		}
	}()
	CrossValidate(samples, 1, 0)
}

func TestCrossValidateGrouped(t *testing.T) {
	samples := calibrationSamples(t, tegra.NewIdealDevice(), noiselessCfg(), 1, smallSuite())
	// Group by setting: samples are setting-major with equal group sizes.
	per := len(samples) / 16
	groups := make([]int, len(samples))
	for i := range groups {
		groups[i] = i / per
	}
	res, err := CrossValidateGrouped(samples, groups)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.N != len(samples) {
		t.Errorf("evaluated %d errors, want %d", res.Summary.N, len(samples))
	}
	if res.Summary.Mean > 0.01 {
		t.Errorf("ideal-device grouped CV mean %.4f, want ~0", res.Summary.Mean)
	}
	// Error paths.
	if _, err := CrossValidateGrouped(samples, groups[:3]); err == nil {
		t.Error("mismatched group labels accepted")
	}
	one := make([]int, len(samples))
	if _, err := CrossValidateGrouped(samples, one); err == nil {
		t.Error("single group accepted")
	}
}
