package experiments

import (
	"context"
	"math"
	"testing"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// testConfig keeps experiment tests fast while exercising the full paths.
func testConfig() Config {
	return Config{Seed: 2024, BenchTargetTime: 0.1}
}

// testMeter builds a meter from the config, failing the test on error.
func testMeter(t *testing.T, cfg Config, offset int64) *powermon.Meter {
	t.Helper()
	m, err := cfg.meter(offset)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func calibrate(t *testing.T) (*tegra.Device, *Calibration) {
	t.Helper()
	dev := tegra.NewDevice()
	cal, err := Calibrate(context.Background(), dev, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev, cal
}

func TestCalibrationSampleCount(t *testing.T) {
	_, cal := calibrate(t)
	// §II-C: "a total of 1856 sample measurements".
	if len(cal.Samples) != 1856 {
		t.Fatalf("got %d samples, paper says 1856", len(cal.Samples))
	}
	var train int
	for _, m := range cal.TrainMask {
		if m {
			train++
		}
	}
	if train != 928 {
		t.Errorf("got %d training samples, want 928 (8 T settings)", train)
	}
}

func TestCalibrationErrorBands(t *testing.T) {
	_, cal := calibrate(t)
	// §II-D: holdout mean 2.87% (max 11.94%), 16-fold mean 6.56%
	// (max 15.22%). Our simulated non-idealities land in the same
	// few-percent regime; accept [1, 6]% means and <20% maxima.
	h := cal.Holdout.Percent()
	if h.Mean < 1 || h.Mean > 6 {
		t.Errorf("holdout mean %.2f%%, want the paper's ~2.9%% regime", h.Mean)
	}
	if h.Max > 20 {
		t.Errorf("holdout max %.2f%% too large", h.Max)
	}
	k := cal.KFold.Percent()
	if k.Mean < 1 || k.Mean > 10 {
		t.Errorf("16-fold mean %.2f%%, want the paper's ~6.6%% regime", k.Mean)
	}
	if k.Max > 25 {
		t.Errorf("16-fold max %.2f%% too large", k.Max)
	}
	if k.N != 1856 {
		t.Errorf("16-fold evaluated %d samples, want all 1856", k.N)
	}
}

func TestTableIReproducesPaperValues(t *testing.T) {
	_, cal := calibrate(t)
	rows := cal.TableI()
	if len(rows) != 16 {
		t.Fatalf("Table I has %d rows, want 16", len(rows))
	}
	// Compare the fitted first row (852/924) against the paper's printed
	// values. The fit sees measurement noise and the device's
	// non-idealities; cache-traffic coefficients absorb the cache
	// kernels' occupancy-activity effect and drift the most, so they get
	// a wider band.
	paper := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"SP", float64(rows[0].Eps.SP), 29.0, 0.15},
		{"DP", float64(rows[0].Eps.DP), 139.1, 0.15},
		{"Int", float64(rows[0].Eps.Int), 60.0, 0.15},
		{"SM", float64(rows[0].Eps.SM), 35.4, 0.25},
		{"L2", float64(rows[0].Eps.L2), 90.2, 0.25},
		{"DRAM", float64(rows[0].Eps.DRAM), 377.0, 0.15},
		{"pi0", float64(rows[0].Eps.ConstPower), 6.8, 0.15},
	}
	for _, p := range paper {
		if rel := math.Abs(p.got-p.want) / p.want; rel > p.tol {
			t.Errorf("fitted %s = %.1f, paper prints %.1f (rel %.3f)", p.name, p.got, p.want, rel)
		}
	}
	// Structural invariants across all rows: ε ratios follow the class
	// ordering and every row scales as V² of the right domain.
	for _, r := range rows {
		e := r.Eps
		if !(e.DP > e.Int && e.Int > e.SM && e.DRAM > e.L2 && e.L2 > e.SM && e.SM > 0) {
			t.Errorf("row %v: per-op energies out of order: %+v", r.Setting, e)
		}
	}
	// Same core voltage ⇒ same on-chip ε regardless of memory setting.
	if math.Abs(float64(rows[0].Eps.SP-rows[2].Eps.SP)) > 1e-9 {
		t.Error("SP energy depends on memory setting")
	}
}

func TestAutotuneTableIIShape(t *testing.T) {
	dev, cal := calibrate(t)
	rows, err := Autotune(context.Background(), dev, cal.Model, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table II has %d families, want 5", len(rows))
	}
	wantCases := map[string]int{
		"Single": 25, "Double": 36, "Integer": 23, "Shared memory": 10, "L2": 9,
	}
	for _, r := range rows {
		if r.Model.Cases != wantCases[r.Family] {
			t.Errorf("%s: %d cases, want %d", r.Family, r.Model.Cases, wantCases[r.Family])
		}
		// The paper's headline: the model beats the race-to-halt oracle.
		if r.Model.Mispredictions > r.Oracle.Mispredictions {
			t.Errorf("%s: model mispredicts more (%d) than the oracle (%d)",
				r.Family, r.Model.Mispredictions, r.Oracle.Mispredictions)
		}
		if r.Oracle.Mispredictions > 0 && r.Model.Lost.N > 0 &&
			r.Model.Lost.Mean > r.Oracle.Lost.Mean {
			t.Errorf("%s: model loses more energy (%.3f) than the oracle (%.3f)",
				r.Family, r.Model.Lost.Mean, r.Oracle.Lost.Mean)
		}
		// Model losses stay small (paper: ≤3.31% means).
		if r.Model.Lost.N > 0 && r.Model.Lost.Mean > 0.08 {
			t.Errorf("%s: model mean loss %.1f%% too large", r.Family, r.Model.Lost.Mean*100)
		}
	}
	// Single precision: oracle must mispredict in the vast majority of
	// cases (paper: 20 of 25) with double-digit percent losses.
	single := rows[0]
	if single.Oracle.Mispredictions < 15 {
		t.Errorf("Single oracle mispredictions = %d, paper regime is ~20/25", single.Oracle.Mispredictions)
	}
	if single.Oracle.Lost.N > 0 && single.Oracle.Lost.Mean < 0.05 {
		t.Errorf("Single oracle mean loss %.1f%%, paper says 18.52%%", single.Oracle.Lost.Mean*100)
	}
}

func TestFMMInputsMatchTableIV(t *testing.T) {
	ins := FMMInputs()
	want := []FMMInput{
		{ID: "F1", N: 262144, Q: 128}, {ID: "F2", N: 131072, Q: 64},
		{ID: "F3", N: 131072, Q: 256}, {ID: "F4", N: 131072, Q: 512},
		{ID: "F5", N: 65536, Q: 1024}, {ID: "F6", N: 65536, Q: 512},
		{ID: "F7", N: 65536, Q: 128}, {ID: "F8", N: 65536, Q: 64},
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d inputs, want %d", len(ins), len(want))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("input %d = %+v, Table IV says %+v", i, ins[i], want[i])
		}
	}
}

// smallRun builds a reduced FMM run for fast tests.
func smallRun(t *testing.T) (*tegra.Device, *Calibration, *FMMRun) {
	t.Helper()
	dev, cal := calibrate(t)
	run, err := RunFMMInput(FMMInput{ID: "T1", N: 16384, Q: 64}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return dev, cal, run
}

func TestFMMRunProfileShape(t *testing.T) {
	_, _, run := smallRun(t)
	tot := run.TotalProfile()
	// Figure 4 shape: integers ≈60% of computation instructions.
	if f := tot.IntegerFraction(); f < 0.45 || f < 0 || f > 0.75 {
		t.Errorf("integer fraction %.2f, paper says ~0.60", f)
	}
	// DRAM a small share of accesses (paper ~13%).
	if f := tot.DRAMFraction(); f <= 0 || f > 0.30 {
		t.Errorf("DRAM fraction %.3f, paper says ~0.13", f)
	}
	// Per-phase: U and V must dominate the work (§III-B).
	var instr [fmm.NumPhases]float64
	var sum float64
	for ph := fmm.Phase(0); ph < fmm.NumPhases; ph++ {
		instr[ph] = run.Result.Profiles[ph].Instructions()
		sum += instr[ph]
	}
	if (instr[fmm.PhaseU]+instr[fmm.PhaseV])/sum < 0.5 {
		t.Errorf("U+V phases are only %.2f of instructions; they should dominate",
			(instr[fmm.PhaseU]+instr[fmm.PhaseV])/sum)
	}
}

func TestFMMCaseValidation(t *testing.T) {
	dev, cal, run := smallRun(t)
	cfg := testConfig()
	meter := testMeter(t, cfg, 5)
	c, err := RunFMMCase(dev, meter, cal.Model, run, "S1", dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if c.RelErr > 0.20 {
		t.Errorf("FMM case error %.1f%%, paper max is 14.89%%", c.RelErr*100)
	}
	if c.MeasuredEnergy <= 0 || c.PredictedEnergy <= 0 || c.Time <= 0 {
		t.Errorf("degenerate case: %+v", c)
	}
	// Figure 7: constant power dominates the FMM's energy.
	if f := c.ConstantFraction(); f < 0.70 || f > 0.995 {
		t.Errorf("constant fraction %.2f, paper says 0.75–0.95", f)
	}
	// Prediction parts must be internally consistent.
	if math.Abs(float64(c.PredictedParts.Total()-c.PredictedEnergy)) > 1e-12*float64(c.PredictedEnergy) {
		t.Error("parts do not sum to the prediction")
	}
}

func TestFigure5SmallSweep(t *testing.T) {
	dev, cal, run := smallRun(t)
	f5, err := Figure5(context.Background(), dev, cal.Model, []*FMMRun{run}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Cases) != 8 {
		t.Fatalf("got %d cases, want 8 (1 input x 8 settings)", len(f5.Cases))
	}
	pct := f5.Summary.Mean * 100
	if pct > 12 {
		t.Errorf("mean validation error %.2f%%, paper regime is ~6.2%%", pct)
	}
	if f5.Summary.Max*100 > 25 {
		t.Errorf("max validation error %.2f%% too large", f5.Summary.Max*100)
	}
	// §IV-C observation: for the FMM, the most energy-efficient setting
	// is (near) the fastest one, because constant power dominates. Check
	// that the measured-minimum-energy setting is within 10% of the
	// fastest time.
	bestE, bestT := 0, 0
	for i, c := range f5.Cases {
		if c.MeasuredEnergy < f5.Cases[bestE].MeasuredEnergy {
			bestE = i
		}
		if c.Time < f5.Cases[bestT].Time {
			bestT = i
		}
	}
	if f5.Cases[bestE].Time > f5.Cases[bestT].Time*1.10 {
		t.Errorf("min-energy setting %s is %.0f%% slower than the fastest %s; paper says they coincide",
			f5.Cases[bestE].SettingID,
			100*(f5.Cases[bestE].Time/f5.Cases[bestT].Time-1),
			f5.Cases[bestT].SettingID)
	}
}

func TestMicrobenchVsFMMConstantFraction(t *testing.T) {
	dev, cal, run := smallRun(t)
	cfg := testConfig()
	mb, err := MicrobenchConstantFraction(dev, cal.Model, cfg, dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	// §IV-C: "constant power only accounts for about 30% of the total
	// energy" for the microbenchmarks.
	if mb < 0.20 || mb > 0.50 {
		t.Errorf("microbenchmark constant fraction %.2f, paper says ~0.30", mb)
	}
	c, err := RunFMMCase(dev, testMeter(t, cfg, 9), cal.Model, run, "S1", dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if c.ConstantFraction() <= mb+0.2 {
		t.Errorf("FMM constant fraction %.2f should far exceed microbenchmark's %.2f",
			c.ConstantFraction(), mb)
	}
}

func TestScheduleConsistency(t *testing.T) {
	dev, _, run := smallRun(t)
	s := dvfs.MustSetting(540, 528)
	sched := run.Schedule(dev, s)
	if len(sched.Execs) == 0 {
		t.Fatal("empty schedule")
	}
	var sum units.Second
	for _, e := range sched.Execs {
		sum += e.Time
	}
	if math.Abs(float64(sum-sched.Duration())) > 1e-12 {
		t.Error("Duration() does not sum the segments")
	}
	// The trace at a time inside the first segment equals the segment's.
	t0 := sched.Execs[0].Time / 2
	if sched.PowerAt(t0) != sched.Execs[0].PowerAt(t0) {
		t.Error("PowerAt does not delegate to the first segment")
	}
}

func TestFMMRunDeterministicProfiles(t *testing.T) {
	cfg := testConfig()
	a, err := RunFMMInput(FMMInput{ID: "T", N: 8192, Q: 64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFMMInput(FMMInput{ID: "T", N: 8192, Q: 64}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalProfile() != b.TotalProfile() {
		t.Error("FMM profiles are not deterministic")
	}
}

func TestFMMUnderutilizationMatchesPaper(t *testing.T) {
	// §IV-C: "Compared to the maximum instructions per cycle (IPC) that
	// the system can deliver, our code delivers less than a quarter of
	// that", and the achievable peak "given the mix of instructions for
	// the U list phase" is itself bounded — not all FMM computation
	// translates to FMA instructions.
	_, _, run := smallRun(t)
	u := run.Result.Profiles[fmm.PhaseU]
	frac := tegra.AchievableIPCFraction(u)
	if frac >= 0.25 {
		t.Errorf("U-phase achievable IPC fraction %.3f; paper says under a quarter", frac)
	}
	if frac < 0.03 {
		t.Errorf("U-phase achievable fraction %.3f implausibly low", frac)
	}
	if tegra.BottleneckPipe(u) != "dp" {
		t.Errorf("U phase gated by %s pipe, expected dp", tegra.BottleneckPipe(u))
	}
	// The whole application is likewise underutilized.
	tot := tegra.AchievableIPCFraction(run.TotalProfile())
	if tot >= 0.25 {
		t.Errorf("whole-app achievable fraction %.3f; paper says under a quarter", tot)
	}
}

func TestFMMCaseNonUniformDistribution(t *testing.T) {
	// Extension beyond the paper's uniform inputs: the validation
	// pipeline must hold up on an adaptive (Plummer) tree, where the W
	// and X phases carry real work.
	dev, cal := calibrate(t)
	run, err := RunFMMInput(FMMInput{ID: "P1", N: 16384, Q: 64, Dist: fmm.Plummer}, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	wInstr := run.Result.Profiles[fmm.PhaseW].Instructions()
	xInstr := run.Result.Profiles[fmm.PhaseX].Instructions()
	if wInstr == 0 || xInstr == 0 {
		t.Error("Plummer input should exercise the W and X phases")
	}
	cfg := testConfig()
	c, err := RunFMMCase(dev, testMeter(t, cfg, 11), cal.Model, run, "S1", dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if c.RelErr > 0.20 {
		t.Errorf("non-uniform case error %.1f%%", c.RelErr*100)
	}
	if f := c.ConstantFraction(); f < 0.70 {
		t.Errorf("constant fraction %.2f; §IV-C dominance should persist on adaptive trees", f)
	}
}
