package experiments

import (
	"math"
	"testing"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/microbench"
)

func TestMeasuredRooflineMatchesModel(t *testing.T) {
	dev, cal := calibrate(t)
	pts, err := MeasuredRoofline(dev, cal.Model, testConfig(), microbench.Double, dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(microbench.Double.Intensities()) {
		t.Fatalf("got %d points, want %d", len(pts), len(microbench.Double.Intensities()))
	}
	for _, p := range pts {
		// Measured performance is bounded by the ideal roofline (the
		// microbenchmarks run just under peak occupancy) and within ~20%
		// of it.
		if p.OpsPerSec > p.Predicted.OpsPerSec*1.01 {
			t.Errorf("I=%.2f: measured %.3g ops/s exceeds the roofline %.3g",
				p.Intensity, p.OpsPerSec, p.Predicted.OpsPerSec)
		}
		if p.OpsPerSec < p.Predicted.OpsPerSec*0.80 {
			t.Errorf("I=%.2f: measured %.3g ops/s far below the roofline %.3g",
				p.Intensity, p.OpsPerSec, p.Predicted.OpsPerSec)
		}
		// Energy efficiency agrees with the model's curve within the
		// measurement-noise envelope. The prediction ignores the kernel's
		// small integer loop overhead, so allow a slightly wider band.
		if rel := math.Abs(float64(p.OpsPerJoule-p.Predicted.OpsPerJoule)) / float64(p.Predicted.OpsPerJoule); rel > 0.25 {
			t.Errorf("I=%.2f: measured %.3g ops/J vs predicted %.3g (rel %.2f)",
				p.Intensity, p.OpsPerJoule, p.Predicted.OpsPerJoule, rel)
		}
		if p.Power <= 0 || p.Power > 30 {
			t.Errorf("I=%.2f: implausible measured power %.1f W", p.Intensity, p.Power)
		}
	}
	// The sweep must show the roofline shape: performance grows then
	// saturates — the last two points differ by <5%, the first two by
	// ~the intensity ratio.
	n := len(pts)
	if d := pts[n-1].OpsPerSec / pts[n-2].OpsPerSec; d > 1.05 {
		t.Errorf("performance not saturated at high intensity (ratio %.3f)", d)
	}
	growth := float64(pts[1].OpsPerSec / pts[0].OpsPerSec)
	want := float64(pts[1].Intensity / pts[0].Intensity)
	if math.Abs(growth-want)/want > 0.1 {
		t.Errorf("memory-bound growth %.3f, want ~%.3f", growth, want)
	}
}

func TestMeasuredRooflineUnsupportedFamily(t *testing.T) {
	dev, cal := calibrate(t)
	if _, err := MeasuredRoofline(dev, cal.Model, testConfig(), microbench.Shared, dvfs.MaxSetting()); err == nil {
		t.Error("cache family should be rejected")
	}
}

func TestMeasuredRooflineEfficiencyPeaksNearBalance(t *testing.T) {
	// Energy efficiency (ops/J) must be monotone non-decreasing with
	// intensity and level off past the time balance — the defining
	// energy-roofline shape. Every point carries an independent ~3%
	// per-measurement gain error (powermon.DefaultConfig), so the ratio
	// of adjacent points has σ ≈ 4.2%; across ~24 pairs the monotonicity
	// band must allow ~3σ.
	dev, cal := calibrate(t)
	pts, err := MeasuredRoofline(dev, cal.Model, testConfig(), microbench.Single, dvfs.MustSetting(540, 528))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].OpsPerJoule < pts[i-1].OpsPerJoule*0.87 {
			t.Errorf("ops/J dropped at I=%.2f: %.3g after %.3g",
				pts[i].Intensity, pts[i].OpsPerJoule, pts[i-1].OpsPerJoule)
		}
	}
}
