package experiments

import (
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
)

func TestEnergyHeatmapShape(t *testing.T) {
	dev, cal := calibrate(t)
	// A compute-bound SP workload: time depends only on the core clock,
	// so the energy-optimal memory frequency must be the lowest.
	p := counters.Profile{SP: 4e10, Int: 8e8, DRAMWords: 1e8}
	h, err := EnergyHeatmap(dev, cal.Model, p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Cells) != len(dvfs.CoreTable) || len(h.Cells[0]) != len(dvfs.MemTable) {
		t.Fatalf("heatmap is %dx%d, want %dx%d",
			len(h.Cells), len(h.Cells[0]), len(dvfs.CoreTable), len(dvfs.MemTable))
	}
	// The optimal EMC clock is a low one — but not necessarily the
	// lowest: at 68 MHz even this kernel's modest DRAM stream becomes
	// the time bottleneck and constant energy grows past the savings.
	if h.MinEnergyMem > 1 {
		t.Errorf("compute-bound min-energy memory index %d, want 0 or 1 (a low EMC clock)", h.MinEnergyMem)
	}
	// Time-minimal cell must be at max core frequency.
	if h.MinTimeCore != len(dvfs.CoreTable)-1 {
		t.Errorf("min-time core index %d, want the top step", h.MinTimeCore)
	}
	// Race-to-halt penalty is positive: the grid-wide Table II story.
	if pen := h.RaceToHaltPenalty(); pen <= 0 {
		t.Errorf("race-to-halt penalty %v, want > 0 for a compute-bound kernel", pen)
	}
	// The energy minimum must be no more expensive than every cell.
	minE := h.MinEnergy().PredictedJ
	for _, row := range h.Cells {
		for _, c := range row {
			if c.PredictedJ < minE {
				t.Fatalf("cell %v beats the reported minimum", c.Setting)
			}
		}
	}
}

func TestEnergyHeatmapMemoryBound(t *testing.T) {
	dev, cal := calibrate(t)
	// A streaming workload: time depends only on the memory clock, so
	// the energy-optimal core frequency is the lowest.
	p := counters.Profile{SP: 2e8, Int: 4e8, DRAMWords: 4e9}
	h, err := EnergyHeatmap(dev, cal.Model, p, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if h.MinEnergyCore != 0 {
		t.Errorf("memory-bound min-energy core index %d, want 0", h.MinEnergyCore)
	}
	if h.MinTimeMem != len(dvfs.MemTable)-1 {
		t.Errorf("min-time memory index %d, want the top step", h.MinTimeMem)
	}
}

func TestEnergyHeatmapInvalidWorkload(t *testing.T) {
	dev, cal := calibrate(t)
	if _, err := EnergyHeatmap(dev, cal.Model, counters.Profile{}, 0.9); err == nil {
		t.Error("empty workload accepted")
	}
	if _, err := EnergyHeatmap(dev, cal.Model, counters.Profile{SP: 1}, 0); err == nil {
		t.Error("zero occupancy accepted")
	}
}
