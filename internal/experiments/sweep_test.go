package experiments

import (
	"context"
	"errors"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
)

func sweepWorkload() tegra.Workload {
	return tegra.Workload{
		Profile: counters.Profile{
			DPFMA:     2e8,
			Int:       1e8,
			DRAMWords: 5e7,
		},
		Occupancy: 0.9,
	}
}

func sweepGrid() []dvfs.Setting {
	cs := dvfs.CalibrationSettings()
	grid := make([]dvfs.Setting, len(cs))
	for i, c := range cs {
		grid[i] = c.Setting
	}
	return grid
}

func TestSweepWorkloadCoversGrid(t *testing.T) {
	dev := tegra.NewDevice()
	grid := sweepGrid()
	cands, err := SweepWorkload(context.Background(), dev, Config{Seed: 42}, sweepWorkload(), grid)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != len(grid) {
		t.Fatalf("got %d candidates, want %d", len(cands), len(grid))
	}
	for i, c := range cands {
		if c.Setting != grid[i] {
			t.Errorf("candidate %d at %v, want %v", i, c.Setting, grid[i])
		}
		if c.Time <= 0 || c.MeasuredEnergy <= 0 {
			t.Errorf("candidate %d has non-positive time %g or energy %g", i, c.Time, c.MeasuredEnergy)
		}
	}
}

func TestSweepWorkloadWorkerCountInvariant(t *testing.T) {
	dev := tegra.NewDevice()
	grid := sweepGrid()
	serial, err := SweepWorkload(context.Background(), dev, Config{Seed: 42, Workers: 1}, sweepWorkload(), grid)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := SweepWorkload(context.Background(), dev, Config{Seed: 42, Workers: 8}, sweepWorkload(), grid)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("candidate %d differs across worker counts: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

func TestSweepWorkloadHonorsCancellation(t *testing.T) {
	dev := tegra.NewDevice()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepWorkload(ctx, dev, Config{Seed: 42}, sweepWorkload(), sweepGrid())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestSweepWorkloadRejectsBadInput(t *testing.T) {
	dev := tegra.NewDevice()
	if _, err := SweepWorkload(context.Background(), dev, Config{Seed: 42}, sweepWorkload(), nil); err == nil {
		t.Error("empty grid accepted")
	}
	bad := tegra.Workload{Occupancy: 0.9} // empty profile
	if _, err := SweepWorkload(context.Background(), dev, Config{Seed: 42}, bad, sweepGrid()); err == nil {
		t.Error("empty workload accepted")
	}
}

// TestSweepWorkloadShortRunRepetition drives the sweep with a workload
// far too short for a single measurement window; the repetition path
// must still land near the device's closed-form energy.
func TestSweepWorkloadShortRunRepetition(t *testing.T) {
	dev := tegra.NewDevice()
	w := tegra.Workload{
		Profile:   counters.Profile{DPFMA: 1e5, DRAMWords: 1e4, Int: 1e4},
		Occupancy: 0.9,
	}
	s := dvfs.MaxSetting()
	cands, err := SweepWorkload(context.Background(), dev, Config{Seed: 42}, w, []dvfs.Setting{s})
	if err != nil {
		t.Fatal(err)
	}
	exec := dev.Execute(w, s)
	truth := exec.TrueEnergy()
	rel := (cands[0].MeasuredEnergy - truth) / truth
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.12 {
		t.Errorf("repeated short run measured %g J vs true %g J (rel %g)", cands[0].MeasuredEnergy, truth, rel)
	}
}
