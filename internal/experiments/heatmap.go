package experiments

import (
	"fmt"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Energy heatmap: the model evaluated over the full 105-setting DVFS
// grid for one workload — the complete E(f_core, f_mem) surface behind
// the §II-E autotuning decisions. Rows follow dvfs.CoreTable, columns
// dvfs.MemTable.

// HeatmapCell is one grid point of the surface.
type HeatmapCell struct {
	Setting    dvfs.Setting
	Time       units.Second // from the device's timing model
	PredictedJ units.Joule  // model prediction
}

// Heatmap holds the full surface and the locations of its minima.
type Heatmap struct {
	Cells [][]HeatmapCell // [core index][mem index]

	MinEnergyCore, MinEnergyMem int // indices of the predicted-energy minimum
	MinTimeCore, MinTimeMem     int // indices of the time minimum
}

// EnergyHeatmap evaluates the model across the whole DVFS grid for a
// workload with the given occupancy.
func EnergyHeatmap(dev *tegra.Device, model *core.Model, p counters.Profile, occupancy units.Ratio) (*Heatmap, error) {
	w := tegra.Workload{Profile: p, Occupancy: occupancy}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: heatmap: %w", err)
	}
	h := &Heatmap{Cells: make([][]HeatmapCell, len(dvfs.CoreTable))}
	for ci, cp := range dvfs.CoreTable {
		h.Cells[ci] = make([]HeatmapCell, len(dvfs.MemTable))
		for mi, mp := range dvfs.MemTable {
			s := dvfs.Setting{Core: cp, Mem: mp}
			exec := dev.Execute(w, s)
			cell := HeatmapCell{
				Setting:    s,
				Time:       exec.Time,
				PredictedJ: model.Predict(p, s, exec.Time),
			}
			h.Cells[ci][mi] = cell
			if cell.PredictedJ < h.Cells[h.MinEnergyCore][h.MinEnergyMem].PredictedJ {
				h.MinEnergyCore, h.MinEnergyMem = ci, mi
			}
			if cell.Time < h.Cells[h.MinTimeCore][h.MinTimeMem].Time {
				h.MinTimeCore, h.MinTimeMem = ci, mi
			}
		}
	}
	return h, nil
}

// MinEnergy returns the predicted-energy-minimal cell.
func (h *Heatmap) MinEnergy() HeatmapCell {
	return h.Cells[h.MinEnergyCore][h.MinEnergyMem]
}

// MinTime returns the time-minimal cell.
func (h *Heatmap) MinTime() HeatmapCell {
	return h.Cells[h.MinTimeCore][h.MinTimeMem]
}

// RaceToHaltPenalty returns the fraction of extra energy the time-minimal
// setting costs over the energy-minimal one — the grid-wide version of
// Table II's "energy lost".
func (h *Heatmap) RaceToHaltPenalty() float64 {
	minE := h.MinEnergy().PredictedJ
	return float64((h.MinTime().PredictedJ - minE) / minE)
}
