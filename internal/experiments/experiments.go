// Package experiments composes the repository's substrates into the
// paper's experiments. Each exported entry point regenerates one table or
// figure of the evaluation:
//
//   - Calibrate — Table I (per-op energy costs under DVFS) and the §II-D
//     holdout / 16-fold cross-validation error statistics.
//   - Autotune — Table II (model vs time-oracle DVFS selection).
//   - FMMInputs / RunFMMInput — Table IV inputs F1–F8 and their counted
//     per-phase profiles (Figure 4).
//   - RunFMMCase / Figure5 — the 64-case predicted-vs-measured energy
//     validation (Figure 5) with per-component breakdowns (Figures 6, 7).
//
// Every experiment observes the simulated Jetson TK1 only through
// simulated PowerMon measurements, mirroring the paper's methodology.
//
// Experiments that sweep independent units of work — calibration
// samples, autotuning grid sweeps, FMM inputs, Figure 5 cases, Q-sweep
// candidates — run on a deterministic concurrent pipeline (pipeline.go):
// Config.Workers bounds the parallelism, contexts cancel in-flight
// campaigns, Config.OnProgress observes completion, and per-unit seed
// derivation guarantees results never depend on the worker count.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/microbench"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Config carries the knobs shared by all experiments.
type Config struct {
	// Seed drives every random stream (measurement noise, point sets).
	Seed int64
	// Meter configures the PowerMon simulation; zero value selects
	// powermon.DefaultConfig().
	Meter powermon.Config
	// BenchTargetTime sizes microbenchmark runs (seconds); zero = 0.3.
	BenchTargetTime float64
	// Workers bounds the experiment pipeline's parallelism (calibration
	// samples, autotuning sweeps, FMM runs, Figure 5 cases) as well as
	// FMM evaluation parallelism; zero = GOMAXPROCS. Results are
	// identical for every worker count: each unit of work derives its
	// measurement-noise seed from its identity, not from a shared
	// stream.
	Workers int
	// OnProgress, if non-nil, receives progress updates from the
	// pipelined experiments. Invocations are serialized, but workers
	// wait on the callback, so it must return quickly.
	OnProgress func(Progress)
	// Faults is the deterministic fault-injection plan threaded through
	// every measurement; the zero Plan injects nothing.
	Faults faults.Plan
	// Retry bounds the per-sample retry loop around transient
	// measurement failures; the zero value selects faults.Retry
	// defaults.
	Retry faults.Retry
	// MinCoverage is the fraction of the calibration grid that must
	// survive retries for Calibrate to proceed, in (0, 1]. Zero selects
	// 1.0 — the historical fail-fast behavior, where the first permanent
	// failure aborts the campaign. Below 1.0, permanently failed samples
	// are quarantined instead and reported in Calibration.Coverage.
	MinCoverage float64
}

// minCoverage resolves the configured coverage floor (zero = 1.0).
func (c Config) minCoverage() float64 {
	if c.MinCoverage == 0 {
		return 1.0
	}
	return c.MinCoverage
}

// meterConfig resolves the PowerMon configuration (zero value selects
// the default).
func (c Config) meterConfig() powermon.Config {
	if c.Meter == (powermon.Config{}) {
		return powermon.DefaultConfig()
	}
	return c.Meter
}

func (c Config) meter(offset int64) (*powermon.Meter, error) {
	return powermon.NewMeter(c.meterConfig(), c.Seed+offset)
}

// NewMeter returns a fresh meter with the config's noise model, for
// callers outside this package composing their own measurement sessions.
func (c Config) NewMeter(seed int64) (*powermon.Meter, error) {
	return powermon.NewMeter(c.meterConfig(), seed)
}

// Calibration is the outcome of the §II-C/D pipeline.
type Calibration struct {
	// Samples are all 1856 measurements (116 kernels x 16 settings),
	// setting-major in Table I order. Quarantined samples keep their
	// slot (so indices stay grid positions) but hold the zero Sample;
	// Valid marks the measured ones.
	Samples []core.Sample
	// TrainMask marks the samples from "T"-type settings.
	TrainMask []bool
	// Valid marks the samples that survived measurement (all of them in
	// a fault-free campaign).
	Valid []bool
	// Coverage reports how the campaign survived its faults.
	Coverage Coverage
	// Model is fitted on the valid training samples only (minus any
	// outliers the median/MAD screen removed).
	Model *core.Model
	// Holdout is the 2-fold validation on the "V"-type samples.
	Holdout core.CVResult
	// KFold is the 16-fold cross-validation over all samples.
	KFold core.CVResult
}

// Quarantined records one permanently failed calibration sample.
type Quarantined struct {
	Index    int // position in the setting-major sample grid
	Bench    microbench.Benchmark
	Setting  dvfs.Setting
	Attempts int   // measurement attempts made before giving up
	Err      error // the final error
}

// Coverage reports how a calibration campaign survived measurement
// faults: how much of the grid was measured, how hard the retry loop
// worked, and what the fit's outlier screen removed.
type Coverage struct {
	Total            int // grid size (1856 for the full campaign)
	Measured         int // samples that produced a measurement
	Retried          int // extra attempts spent on transient failures
	ScreenedOutliers int // training samples removed by the median/MAD screen
	// Quarantined lists the permanently failed samples, ordered by grid
	// index (so the report is identical for every worker count).
	Quarantined []Quarantined
}

// Fraction returns the measured fraction of the grid (1.0 when empty).
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 1.0
	}
	return float64(c.Measured) / float64(c.Total)
}

// Complete reports whether every sample of the grid was measured.
func (c Coverage) Complete() bool { return c.Measured == c.Total }

// Calibrate runs the microbenchmark suite over the paper's 16 settings,
// fits the model by NNLS, and cross-validates it. The 1856 sample
// measurements fan out over cfg.Workers workers; per-sample seed
// derivation (microbench.SampleSeed) makes the result identical for
// every worker count.
//
// Under an active cfg.Faults plan, each sample retries transient
// failures per cfg.Retry; when cfg.MinCoverage < 1, samples that fail
// every attempt are quarantined rather than aborting the campaign, and
// the calibration proceeds as long as the surviving fraction of the
// grid stays at or above the floor. The quarantine report, retry
// counts and outlier-screen tally land in Calibration.Coverage — all
// worker-count-invariant, like the samples themselves.
func Calibrate(ctx context.Context, dev *tegra.Device, cfg Config) (*Calibration, error) {
	if err := cfg.meterConfig().Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	if err := cfg.Faults.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	minCov := cfg.minCoverage()
	if minCov <= 0 || minCov > 1 {
		return nil, fmt.Errorf("experiments: min coverage %g outside (0, 1]", cfg.MinCoverage)
	}
	runner := &microbench.Runner{
		Device:      dev,
		MeterConfig: cfg.meterConfig(),
		Seed:        cfg.Seed + 1,
		TargetTime:  cfg.BenchTargetTime,
		Faults:      cfg.Faults,
	}
	calSettings := dvfs.CalibrationSettings()
	benches := microbench.Suite()
	samples := make([]core.Sample, len(calSettings)*len(benches))
	valid := make([]bool, len(samples))
	var (
		mu          sync.Mutex // guards retried and quarantined
		retried     int
		quarantined []Quarantined
	)
	err := forEach(ctx, cfg, "calibrate", len(samples), func(i int) error {
		s := calSettings[i/len(benches)].Setting
		b := benches[i%len(benches)]
		var smp microbench.Sample
		attempts, runErr := faults.Do(ctx, cfg.Retry, func(attempt int) error {
			var err error
			smp, err = runner.RunAttempt(b, s, attempt)
			return err
		})
		if attempts > 1 {
			mu.Lock()
			retried += attempts - 1
			mu.Unlock()
		}
		if runErr != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if minCov >= 1 {
				return runErr // fail-fast mode: first permanent failure aborts
			}
			mu.Lock()
			quarantined = append(quarantined, Quarantined{
				Index: i, Bench: b, Setting: s, Attempts: attempts, Err: runErr,
			})
			mu.Unlock()
			return nil
		}
		samples[i] = core.Sample{
			Profile: smp.Workload.Profile,
			Setting: smp.Setting,
			Time:    smp.Time,
			Energy:  smp.Energy,
		}
		valid[i] = true
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Workers append quarantine entries in completion order; sort by grid
	// index so the report is identical for every worker count.
	sort.Slice(quarantined, func(a, b int) bool { return quarantined[a].Index < quarantined[b].Index })
	cov := Coverage{
		Total:       len(samples),
		Measured:    len(samples) - len(quarantined),
		Retried:     retried,
		Quarantined: quarantined,
	}
	if cov.Fraction() < minCov {
		return nil, fmt.Errorf("experiments: calibration coverage %.3f below the required %.2f (%d of %d samples quarantined, e.g. %v at %v: %w)",
			cov.Fraction(), minCov, len(quarantined), len(samples),
			quarantined[0].Bench, quarantined[0].Setting, quarantined[0].Err)
	}
	return fitAndValidate(samples, calSettings, valid, cov)
}

// Outlier-screen tuning. A spike-corrupted measurement reads tens of
// percent high and a throttled one tens of percent low, while honest
// noise plus the device's non-idealities keep |relative residual| under
// ~8%. The cut is the larger of screenK robust standard deviations
// (1.4826·MAD) and an absolute screenFloor, so a near-noiseless
// campaign (MAD ≈ 0, as with cached fixture samples) screens nothing.
const (
	screenK     = 6.0
	screenFloor = 0.12
)

// screenOutliers applies the median/MAD screen to the training set's
// relative fit residuals and returns the surviving samples. When
// nothing is flagged — every fault-free campaign — it returns train
// unchanged, so the screened fit is byte-identical to the historical
// one. It refuses to screen below the model's coefficient count.
func screenOutliers(m *core.Model, train []core.Sample) (kept []core.Sample, screened int) {
	res := make([]float64, len(train))
	for i, s := range train {
		res[i] = float64((m.Predict(s.Profile, s.Setting, s.Time) - s.Energy) / s.Energy)
	}
	mask := stats.OutlierMask(res, screenK, screenFloor)
	for _, bad := range mask {
		if bad {
			screened++
		}
	}
	if screened == 0 || len(train)-screened < 9 {
		return train, 0
	}
	kept = make([]core.Sample, 0, len(train)-screened)
	for i, s := range train {
		if !mask[i] {
			kept = append(kept, s)
		}
	}
	return kept, screened
}

// fitAndValidate is the deterministic tail of the calibration pipeline:
// given the setting-major sample slice, it rebuilds the train mask,
// fits the model by NNLS (with a median/MAD outlier screen protecting
// the fit from spike-corrupted measurements) and runs the §II-D
// validations on the valid samples. Calibrate and CalibrateFromSamples
// share it, which is what guarantees that a cached sample set yields
// the same model as a fresh campaign. A nil valid mask means every
// sample was measured.
func fitAndValidate(samples []core.Sample, calSettings []dvfs.CalibrationSetting, valid []bool, cov Coverage) (*Calibration, error) {
	if valid == nil {
		valid = make([]bool, len(samples))
		for i := range valid {
			valid[i] = true
		}
	}
	out := &Calibration{
		Samples:   samples,
		TrainMask: make([]bool, len(samples)),
		Valid:     valid,
		Coverage:  cov,
	}
	perSetting := len(samples) / len(calSettings)
	var train []core.Sample
	for i, s := range samples {
		out.TrainMask[i] = calSettings[i/perSetting].Type == "T"
		if out.TrainMask[i] && valid[i] {
			train = append(train, s)
		}
	}
	var err error
	if out.Model, err = core.Fit(train); err != nil {
		return nil, fmt.Errorf("experiments: fit: %w", err)
	}
	if kept, screened := screenOutliers(out.Model, train); screened > 0 {
		if out.Model, err = core.Fit(kept); err != nil {
			return nil, fmt.Errorf("experiments: refit after outlier screen: %w", err)
		}
		out.Coverage.ScreenedOutliers = screened
	}
	// Validations run over the valid samples only; quarantined slots
	// hold no measurement to validate against.
	vSamples := make([]core.Sample, 0, len(samples))
	vMask := make([]bool, 0, len(samples))
	vGroups := make([]int, 0, len(samples))
	for i, s := range samples {
		if valid[i] {
			vSamples = append(vSamples, s)
			vMask = append(vMask, out.TrainMask[i])
			vGroups = append(vGroups, i/perSetting)
		}
	}
	if out.Holdout, err = core.HoldoutValidate(vSamples, vMask); err != nil {
		return nil, fmt.Errorf("experiments: holdout: %w", err)
	}
	// 16-fold CV leaves one whole setting out per fold, assessing
	// generalization to unseen voltage/frequency points (§II-D).
	if out.KFold, err = core.CrossValidateGrouped(vSamples, vGroups); err != nil {
		return nil, fmt.Errorf("experiments: 16-fold: %w", err)
	}
	return out, nil
}

// CalibrateFromSamples rebuilds a full Calibration — train mask, NNLS
// fit, holdout and 16-fold validation — from previously measured
// calibration samples, e.g. a samples.csv written by export.WriteSamples.
// The slice must be the setting-major campaign Calibrate produces: its
// length a multiple of the 16 calibration settings, with each block's
// setting matching dvfs.CalibrationSettings order. This is the cache
// path the cmd/* binaries use to skip recalibration.
func CalibrateFromSamples(samples []core.Sample) (*Calibration, error) {
	calSettings := dvfs.CalibrationSettings()
	if len(samples) == 0 || len(samples)%len(calSettings) != 0 {
		return nil, fmt.Errorf("experiments: %d samples do not divide into %d calibration settings",
			len(samples), len(calSettings))
	}
	perSetting := len(samples) / len(calSettings)
	for i, s := range samples {
		if want := calSettings[i/perSetting].Setting; s.Setting != want {
			return nil, fmt.Errorf("experiments: sample %d measured at %v, want %v: not a setting-major calibration export",
				i, s.Setting, want)
		}
	}
	return fitAndValidate(samples, calSettings, nil, Coverage{Total: len(samples), Measured: len(samples)})
}

// TableIRow is one derived row of Table I.
type TableIRow struct {
	Type    string
	Setting dvfs.Setting
	Eps     core.Eps
}

// TableI evaluates the fitted model at the 16 calibration settings.
func (c *Calibration) TableI() []TableIRow {
	cs := dvfs.CalibrationSettings()
	rows := make([]TableIRow, len(cs))
	for i, s := range cs {
		rows[i] = TableIRow{Type: s.Type, Setting: s.Setting, Eps: c.Model.EpsAt(s.Setting)}
	}
	return rows
}

// Autotune reproduces Table II: for every microbenchmark family and every
// intensity, sweep the full DVFS grid, and score the model's pick against
// the race-to-halt time oracle. The 103 per-intensity grid sweeps fan
// out over cfg.Workers workers; sample values depend only on each
// (benchmark, setting) identity, so the rows are worker-count-invariant.
func Autotune(ctx context.Context, dev *tegra.Device, model *core.Model, cfg Config) ([]core.TableIIRow, error) {
	runner := &microbench.Runner{
		Device:      dev,
		MeterConfig: cfg.meterConfig(),
		Seed:        cfg.Seed + 3,
		TargetTime:  cfg.BenchTargetTime,
		Faults:      cfg.Faults,
	}
	// Candidates are the paper's 16 measured calibration settings: the
	// autotuner picks among configurations for which measurements exist,
	// as in §II-E.
	var grid []dvfs.Setting
	for _, cs := range dvfs.CalibrationSettings() {
		grid = append(grid, cs.Setting)
	}
	// Table II covers the five families shown in the paper (not DRAM).
	var kinds []microbench.Kind
	for _, kind := range microbench.Kinds() {
		if kind != microbench.DRAM {
			kinds = append(kinds, kind)
		}
	}
	// stop consults the context for the cheap assembly and scoring
	// loops below. ctxloop's one-level summary recognizes callees that
	// check a captured ctx internally, so the loops carry no inline
	// ctx.Err() guards.
	stop := func() error { return ctx.Err() }
	// One unit of work = one (family, intensity) sweep over the grid.
	type unit struct{ kind, intensity int }
	var units []unit
	sweeps := make([][][]core.Candidate, len(kinds))
	for ki, kind := range kinds {
		if err := stop(); err != nil {
			return nil, err
		}
		n := len(kind.Intensities())
		sweeps[ki] = make([][]core.Candidate, n)
		for ii := 0; ii < n; ii++ {
			units = append(units, unit{ki, ii})
		}
	}
	err := forEach(ctx, cfg, "autotune", len(units), func(i int) error {
		u := units[i]
		kind := kinds[u.kind]
		b := microbench.Benchmark{Kind: kind, Intensity: kind.Intensities()[u.intensity]}
		// Fix the workload once (sized at the fastest setting) so that
		// every candidate runs identical work — energies are only
		// comparable at equal work.
		elements := runner.SizeFor(b, dvfs.MaxSetting(), cfg.BenchTargetTime)
		cands := make([]core.Candidate, 0, len(grid))
		for _, s := range grid {
			// Transient faults retry like calibration samples do; an
			// autotuning sweep has no quarantine — a hole in the grid
			// would silently bias the pick, so persistent failure aborts.
			var smp microbench.Sample
			_, err := faults.Do(ctx, cfg.Retry, func(attempt int) error {
				var err error
				smp, err = runner.RunSizedAttempt(b, elements, s, attempt)
				return err
			})
			if err != nil {
				return err
			}
			cands = append(cands, core.Candidate{
				Setting:        s,
				Profile:        smp.Workload.Profile,
				Time:           smp.Time,
				MeasuredEnergy: smp.Energy,
			})
		}
		sweeps[u.kind][u.intensity] = cands
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]core.TableIIRow, len(kinds))
	for ki, kind := range kinds {
		if err := stop(); err != nil {
			return nil, err
		}
		rows[ki] = model.CompareStrategies(kind.String(), sweeps[ki])
	}
	return rows, nil
}

// FMMInput is one Table IV input configuration. Dist selects the point
// distribution; the zero value is the paper's uniform cloud, and the
// Plummer/sphere options extend the study to adaptive trees.
type FMMInput struct {
	ID   string
	N    int // total number of points
	Q    int // maximum points per box
	Dist fmm.Distribution
}

// FMMInputs returns the paper's Table IV inputs F1–F8.
func FMMInputs() []FMMInput {
	return []FMMInput{
		{ID: "F1", N: 262144, Q: 128},
		{ID: "F2", N: 131072, Q: 64},
		{ID: "F3", N: 131072, Q: 256},
		{ID: "F4", N: 131072, Q: 512},
		{ID: "F5", N: 65536, Q: 1024},
		{ID: "F6", N: 65536, Q: 512},
		{ID: "F7", N: 65536, Q: 128},
		{ID: "F8", N: 65536, Q: 64},
	}
}

// ScaleInputs divides every input's point count by factor, for quick
// demo runs (the cmd/* -small flag). An input whose scaled N would drop
// to Q or below would build a degenerate single-leaf octree — every
// interaction handled by the direct P2P kernel, profiling nothing — so
// such inputs are clamped to N = 2Q instead; their IDs are returned so
// callers can warn.
func ScaleInputs(inputs []FMMInput, factor int) (scaled []FMMInput, clamped []string) {
	if factor < 1 {
		factor = 1
	}
	scaled = append([]FMMInput(nil), inputs...)
	for i := range scaled {
		n := scaled[i].N / factor
		if min := 2 * scaled[i].Q; n < min {
			n = min
			clamped = append(clamped, scaled[i].ID)
		}
		scaled[i].N = n
	}
	return scaled, clamped
}

// FMMRun bundles an executed FMM evaluation with its input tag.
type FMMRun struct {
	Input  FMMInput
	Result *fmm.Result
}

// RunFMMInput executes the FMM proxy application for one input. As in
// the paper's GPU implementation the V list uses the FFT-accelerated
// translation. The result's counted profiles are setting-independent, so
// one run serves all eight validation settings.
func RunFMMInput(in FMMInput, cfg Config) (*FMMRun, error) {
	pts := fmm.GeneratePoints(in.Dist, in.N, cfg.Seed+100)
	dens := fmm.GenerateDensities(in.N, cfg.Seed+101)
	res, err := fmm.Evaluate(pts, dens, fmm.Options{
		Q:         in.Q,
		UseFFTM2L: true,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: FMM %s: %w", in.ID, err)
	}
	return &FMMRun{Input: in, Result: res}, nil
}

// RunFMMInputs executes the FMM proxy for every input, fanning the runs
// out over cfg.Workers workers. Each run is deterministic in (input,
// cfg.Seed) alone, so the result is identical for any worker count.
func RunFMMInputs(ctx context.Context, inputs []FMMInput, cfg Config) ([]*FMMRun, error) {
	runs := make([]*FMMRun, len(inputs))
	err := forEach(ctx, cfg, "fmm", len(inputs), func(i int) error {
		run, err := RunFMMInput(inputs[i], cfg)
		if err != nil {
			return err
		}
		runs[i] = run
		return nil
	})
	if err != nil {
		return nil, err
	}
	return runs, nil
}

// Schedule maps the run's phases onto the device at a setting.
func (r *FMMRun) Schedule(dev *tegra.Device, s dvfs.Setting) tegra.Schedule {
	var sched tegra.Schedule
	for _, ph := range fmm.Phases() {
		p := r.Result.Profiles[ph]
		if p.Instructions() == 0 && p.Accesses() == 0 {
			continue
		}
		sched.Execs = append(sched.Execs, dev.Execute(tegra.Workload{
			Profile:   p,
			Occupancy: units.Ratio(ph.Occupancy()),
		}, s))
	}
	return sched
}

// TotalProfile returns the run's summed operation profile (the nvprof
// view the model consumes).
func (r *FMMRun) TotalProfile() counters.Profile { return r.Result.Profiles.Total() }

// FMMCase is one point of the Figure 5 validation: an (input, setting)
// pair with measured and predicted energy.
type FMMCase struct {
	Input     FMMInput
	SettingID string
	Setting   dvfs.Setting

	Time            units.Second // measured
	MeasuredEnergy  units.Joule  // PowerMon-integrated
	PredictedEnergy units.Joule  // Eq. 9 with fitted constants
	RelErr          float64      // signed fraction, (predicted - measured)/measured

	// PredictedParts decomposes the prediction (Figures 6 and 7).
	PredictedParts core.Parts
	// TrueBreakdown is the device's exact decomposition (test oracle).
	TrueBreakdown tegra.Breakdown
}

// RunFMMCase measures one (input, setting) pair and predicts its energy.
func RunFMMCase(dev *tegra.Device, meter *powermon.Meter, model *core.Model, run *FMMRun, settingID string, s dvfs.Setting) (FMMCase, error) {
	sched := run.Schedule(dev, s)
	dur := sched.Duration()
	meas, err := meter.Measure(sched.PowerAt, dur)
	if err != nil {
		return FMMCase{}, fmt.Errorf("experiments: case %s/%s: %w", run.Input.ID, settingID, err)
	}
	prof := run.TotalProfile()
	parts := model.PredictParts(prof, s, dur)
	var truth tegra.Breakdown
	for _, e := range sched.Execs {
		b := dev.TrueBreakdown(e)
		truth.Compute += b.Compute
		truth.Data += b.Data
		truth.Constant += b.Constant
	}
	return FMMCase{
		Input:           run.Input,
		SettingID:       settingID,
		Setting:         s,
		Time:            dur,
		MeasuredEnergy:  meas.Energy,
		PredictedEnergy: parts.Total(),
		RelErr:          stats.RelErr(float64(parts.Total()), float64(meas.Energy)),
		PredictedParts:  parts,
		TrueBreakdown:   truth,
	}, nil
}

// Figure5 runs the full 64-case validation: every Table IV input against
// every Table IV setting.
type Figure5Result struct {
	Cases   []FMMCase
	Summary stats.Summary // relative errors (fractions)
}

// Figure5 measures and predicts all (settings x runs) cases, fanned out
// over cfg.Workers workers. Every case owns a meter seeded from its
// (setting, input) grid position, so the 64 cases come out identical
// for any worker count, in setting-major order.
func Figure5(ctx context.Context, dev *tegra.Device, model *core.Model, runs []*FMMRun, cfg Config) (*Figure5Result, error) {
	settings := dvfs.ValidationSettings()
	out := &Figure5Result{Cases: make([]FMMCase, len(settings)*len(runs))}
	err := forEach(ctx, cfg, "figure5", len(out.Cases), func(i int) error {
		si, ri := i/len(runs), i%len(runs)
		meter, err := cfg.NewMeter(deriveSeed(cfg.Seed+5, int64(si), int64(ri)))
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		c, err := RunFMMCase(dev, meter, model, runs[ri], dvfs.ValidationID(si), settings[si])
		if err != nil {
			return err
		}
		out.Cases[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	errsList := make([]float64, len(out.Cases))
	for i, c := range out.Cases {
		errsList[i] = c.RelErr
	}
	out.Summary = stats.Summarize(errsList)
	return out, nil
}

// ConstantFraction returns the constant-power share of the case's
// predicted energy — the quantity behind the paper's Figure 7 claim that
// constant power is 75–95% of FMM energy.
func (c FMMCase) ConstantFraction() float64 {
	t := c.PredictedParts.Total()
	if t == 0 {
		return 0
	}
	return float64(c.PredictedParts.Constant / t)
}

// MicrobenchConstantFraction measures the constant-power energy share of
// a microbenchmark that saturates several resources at once (SP, integer
// and shared-memory pipes dual-issuing, plus a DRAM stream) — the ~30%
// comparison point of §IV-C, which the paper contrasts against the FMM's
// 75–95%.
func MicrobenchConstantFraction(dev *tegra.Device, model *core.Model, cfg Config, s dvfs.Setting) (float64, error) {
	meter, err := cfg.meter(7)
	if err != nil {
		return 0, err
	}
	// Per-cycle saturation mix at occupancy 0.97: 192 SP, 130 integer,
	// 48 shared words, and enough DRAM words to stream without becoming
	// the bottleneck.
	const elems = 2e8
	w := tegra.Workload{
		Profile: counters.Profile{
			SP:          192 * elems,
			Int:         130 * elems,
			SharedWords: 48 * elems,
			DRAMWords:   2 * elems,
		},
		Occupancy: 0.97,
	}
	e := dev.Execute(w, s)
	meas, err := meter.Measure(e.PowerAt, e.Time)
	if err != nil {
		return 0, err
	}
	parts := model.PredictParts(w.Profile, s, meas.Duration)
	return float64(parts.Constant / parts.Total()), nil
}
