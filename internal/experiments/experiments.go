// Package experiments composes the repository's substrates into the
// paper's experiments. Each exported entry point regenerates one table or
// figure of the evaluation:
//
//   - Calibrate — Table I (per-op energy costs under DVFS) and the §II-D
//     holdout / 16-fold cross-validation error statistics.
//   - Autotune — Table II (model vs time-oracle DVFS selection).
//   - FMMInputs / RunFMMInput — Table IV inputs F1–F8 and their counted
//     per-phase profiles (Figure 4).
//   - RunFMMCase / Figure5 — the 64-case predicted-vs-measured energy
//     validation (Figure 5) with per-component breakdowns (Figures 6, 7).
//
// Every experiment observes the simulated Jetson TK1 only through
// simulated PowerMon measurements, mirroring the paper's methodology.
package experiments

import (
	"fmt"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/microbench"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/tegra"
)

// Config carries the knobs shared by all experiments.
type Config struct {
	// Seed drives every random stream (measurement noise, point sets).
	Seed int64
	// Meter configures the PowerMon simulation; zero value selects
	// powermon.DefaultConfig().
	Meter powermon.Config
	// BenchTargetTime sizes microbenchmark runs (seconds); zero = 0.3.
	BenchTargetTime float64
	// Workers bounds FMM evaluation parallelism; zero = GOMAXPROCS.
	Workers int
}

func (c Config) meter(offset int64) *powermon.Meter {
	cfg := c.Meter
	if cfg == (powermon.Config{}) {
		cfg = powermon.DefaultConfig()
	}
	return powermon.NewMeter(cfg, c.Seed+offset)
}

// NewMeter returns a fresh meter with the config's noise model, for
// callers outside this package composing their own measurement sessions.
func (c Config) NewMeter(seed int64) *powermon.Meter {
	cfg := c.Meter
	if cfg == (powermon.Config{}) {
		cfg = powermon.DefaultConfig()
	}
	return powermon.NewMeter(cfg, seed)
}

// Calibration is the outcome of the §II-C/D pipeline.
type Calibration struct {
	// Samples are all 1856 measurements (116 kernels x 16 settings),
	// setting-major in Table I order.
	Samples []core.Sample
	// TrainMask marks the samples from "T"-type settings.
	TrainMask []bool
	// Model is fitted on the training samples only.
	Model *core.Model
	// Holdout is the 2-fold validation on the "V"-type samples.
	Holdout core.CVResult
	// KFold is the 16-fold cross-validation over all samples.
	KFold core.CVResult
}

// Calibrate runs the microbenchmark suite over the paper's 16 settings,
// fits the model by NNLS, and cross-validates it.
func Calibrate(dev *tegra.Device, cfg Config) (*Calibration, error) {
	runner := &microbench.Runner{
		Device:     dev,
		Meter:      cfg.meter(1),
		TargetTime: cfg.BenchTargetTime,
	}
	calSettings := dvfs.CalibrationSettings()
	settings := make([]dvfs.Setting, len(calSettings))
	for i, cs := range calSettings {
		settings[i] = cs.Setting
	}
	raw, err := runner.RunSuite(microbench.Suite(), settings)
	if err != nil {
		return nil, err
	}
	out := &Calibration{
		Samples:   make([]core.Sample, len(raw)),
		TrainMask: make([]bool, len(raw)),
	}
	perSetting := len(raw) / len(settings)
	for i, s := range raw {
		out.Samples[i] = core.Sample{
			Profile: s.Workload.Profile,
			Setting: s.Setting,
			Time:    s.Time,
			Energy:  s.Energy,
		}
		out.TrainMask[i] = calSettings[i/perSetting].Type == "T"
	}
	var train []core.Sample
	for i, s := range out.Samples {
		if out.TrainMask[i] {
			train = append(train, s)
		}
	}
	if out.Model, err = core.Fit(train); err != nil {
		return nil, fmt.Errorf("experiments: fit: %w", err)
	}
	if out.Holdout, err = core.HoldoutValidate(out.Samples, out.TrainMask); err != nil {
		return nil, fmt.Errorf("experiments: holdout: %w", err)
	}
	// 16-fold CV leaves one whole setting out per fold, assessing
	// generalization to unseen voltage/frequency points (§II-D).
	groups := make([]int, len(out.Samples))
	for i := range groups {
		groups[i] = i / perSetting
	}
	if out.KFold, err = core.CrossValidateGrouped(out.Samples, groups); err != nil {
		return nil, fmt.Errorf("experiments: 16-fold: %w", err)
	}
	return out, nil
}

// TableIRow is one derived row of Table I.
type TableIRow struct {
	Type    string
	Setting dvfs.Setting
	Eps     core.Eps
}

// TableI evaluates the fitted model at the 16 calibration settings.
func (c *Calibration) TableI() []TableIRow {
	cs := dvfs.CalibrationSettings()
	rows := make([]TableIRow, len(cs))
	for i, s := range cs {
		rows[i] = TableIRow{Type: s.Type, Setting: s.Setting, Eps: c.Model.EpsAt(s.Setting)}
	}
	return rows
}

// Autotune reproduces Table II: for every microbenchmark family and every
// intensity, sweep the full DVFS grid, and score the model's pick against
// the race-to-halt time oracle.
func Autotune(dev *tegra.Device, model *core.Model, cfg Config) ([]core.TableIIRow, error) {
	runner := &microbench.Runner{
		Device:     dev,
		Meter:      cfg.meter(3),
		TargetTime: cfg.BenchTargetTime,
	}
	// Candidates are the paper's 16 measured calibration settings: the
	// autotuner picks among configurations for which measurements exist,
	// as in §II-E.
	var grid []dvfs.Setting
	for _, cs := range dvfs.CalibrationSettings() {
		grid = append(grid, cs.Setting)
	}
	var rows []core.TableIIRow
	for _, kind := range microbench.Kinds() {
		if kind == microbench.DRAM {
			continue // Table II covers the five families shown in the paper
		}
		var sweeps [][]core.Candidate
		for _, ai := range kind.Intensities() {
			b := microbench.Benchmark{Kind: kind, Intensity: ai}
			// Fix the workload once (sized at the fastest setting) so that
			// every candidate runs identical work — energies are only
			// comparable at equal work.
			elements := runner.SizeFor(b, dvfs.MaxSetting(), cfg.BenchTargetTime)
			cands := make([]core.Candidate, 0, len(grid))
			for _, s := range grid {
				smp, err := runner.RunSized(b, elements, s)
				if err != nil {
					return nil, err
				}
				cands = append(cands, core.Candidate{
					Setting:        s,
					Profile:        smp.Workload.Profile,
					Time:           smp.Time,
					MeasuredEnergy: smp.Energy,
				})
			}
			sweeps = append(sweeps, cands)
		}
		rows = append(rows, model.CompareStrategies(kind.String(), sweeps))
	}
	return rows, nil
}

// FMMInput is one Table IV input configuration. Dist selects the point
// distribution; the zero value is the paper's uniform cloud, and the
// Plummer/sphere options extend the study to adaptive trees.
type FMMInput struct {
	ID   string
	N    int // total number of points
	Q    int // maximum points per box
	Dist fmm.Distribution
}

// FMMInputs returns the paper's Table IV inputs F1–F8.
func FMMInputs() []FMMInput {
	return []FMMInput{
		{ID: "F1", N: 262144, Q: 128},
		{ID: "F2", N: 131072, Q: 64},
		{ID: "F3", N: 131072, Q: 256},
		{ID: "F4", N: 131072, Q: 512},
		{ID: "F5", N: 65536, Q: 1024},
		{ID: "F6", N: 65536, Q: 512},
		{ID: "F7", N: 65536, Q: 128},
		{ID: "F8", N: 65536, Q: 64},
	}
}

// FMMRun bundles an executed FMM evaluation with its input tag.
type FMMRun struct {
	Input  FMMInput
	Result *fmm.Result
}

// RunFMMInput executes the FMM proxy application for one input. As in
// the paper's GPU implementation the V list uses the FFT-accelerated
// translation. The result's counted profiles are setting-independent, so
// one run serves all eight validation settings.
func RunFMMInput(in FMMInput, cfg Config) (*FMMRun, error) {
	pts := fmm.GeneratePoints(in.Dist, in.N, cfg.Seed+100)
	dens := fmm.GenerateDensities(in.N, cfg.Seed+101)
	res, err := fmm.Evaluate(pts, dens, fmm.Options{
		Q:         in.Q,
		UseFFTM2L: true,
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: FMM %s: %w", in.ID, err)
	}
	return &FMMRun{Input: in, Result: res}, nil
}

// Schedule maps the run's phases onto the device at a setting.
func (r *FMMRun) Schedule(dev *tegra.Device, s dvfs.Setting) tegra.Schedule {
	var sched tegra.Schedule
	for _, ph := range fmm.Phases() {
		p := r.Result.Profiles[ph]
		if p.Instructions() == 0 && p.Accesses() == 0 {
			continue
		}
		sched.Execs = append(sched.Execs, dev.Execute(tegra.Workload{
			Profile:   p,
			Occupancy: ph.Occupancy(),
		}, s))
	}
	return sched
}

// TotalProfile returns the run's summed operation profile (the nvprof
// view the model consumes).
func (r *FMMRun) TotalProfile() counters.Profile { return r.Result.Profiles.Total() }

// FMMCase is one point of the Figure 5 validation: an (input, setting)
// pair with measured and predicted energy.
type FMMCase struct {
	Input     FMMInput
	SettingID string
	Setting   dvfs.Setting

	Time            float64 // seconds, measured
	MeasuredEnergy  float64 // joules, PowerMon-integrated
	PredictedEnergy float64 // joules, Eq. 9 with fitted constants
	RelErr          float64

	// PredictedParts decomposes the prediction (Figures 6 and 7).
	PredictedParts core.Parts
	// TrueBreakdown is the device's exact decomposition (test oracle).
	TrueBreakdown tegra.Breakdown
}

// RunFMMCase measures one (input, setting) pair and predicts its energy.
func RunFMMCase(dev *tegra.Device, meter *powermon.Meter, model *core.Model, run *FMMRun, settingID string, s dvfs.Setting) (FMMCase, error) {
	sched := run.Schedule(dev, s)
	dur := sched.Duration()
	meas, err := meter.Measure(sched.PowerAt, dur)
	if err != nil {
		return FMMCase{}, fmt.Errorf("experiments: case %s/%s: %w", run.Input.ID, settingID, err)
	}
	prof := run.TotalProfile()
	parts := model.PredictParts(prof, s, dur)
	var truth tegra.Breakdown
	for _, e := range sched.Execs {
		b := dev.TrueBreakdown(e)
		truth.Compute += b.Compute
		truth.Data += b.Data
		truth.Constant += b.Constant
	}
	return FMMCase{
		Input:           run.Input,
		SettingID:       settingID,
		Setting:         s,
		Time:            dur,
		MeasuredEnergy:  meas.Energy,
		PredictedEnergy: parts.Total(),
		RelErr:          stats.RelErr(parts.Total(), meas.Energy),
		PredictedParts:  parts,
		TrueBreakdown:   truth,
	}, nil
}

// Figure5 runs the full 64-case validation: every Table IV input against
// every Table IV setting.
type Figure5Result struct {
	Cases   []FMMCase
	Summary stats.Summary // relative errors (fractions)
}

// Figure5 measures and predicts all (settings x runs) cases.
func Figure5(dev *tegra.Device, model *core.Model, runs []*FMMRun, cfg Config) (*Figure5Result, error) {
	meter := cfg.meter(5)
	settings := dvfs.ValidationSettings()
	out := &Figure5Result{}
	var errsList []float64
	for si, s := range settings {
		for _, run := range runs {
			c, err := RunFMMCase(dev, meter, model, run, dvfs.ValidationID(si), s)
			if err != nil {
				return nil, err
			}
			out.Cases = append(out.Cases, c)
			errsList = append(errsList, c.RelErr)
		}
	}
	out.Summary = stats.Summarize(errsList)
	return out, nil
}

// ConstantFraction returns the constant-power share of the case's
// predicted energy — the quantity behind the paper's Figure 7 claim that
// constant power is 75–95% of FMM energy.
func (c FMMCase) ConstantFraction() float64 {
	t := c.PredictedParts.Total()
	if t == 0 {
		return 0
	}
	return c.PredictedParts.Constant / t
}

// MicrobenchConstantFraction measures the constant-power energy share of
// a microbenchmark that saturates several resources at once (SP, integer
// and shared-memory pipes dual-issuing, plus a DRAM stream) — the ~30%
// comparison point of §IV-C, which the paper contrasts against the FMM's
// 75–95%.
func MicrobenchConstantFraction(dev *tegra.Device, model *core.Model, cfg Config, s dvfs.Setting) (float64, error) {
	meter := cfg.meter(7)
	// Per-cycle saturation mix at occupancy 0.97: 192 SP, 130 integer,
	// 48 shared words, and enough DRAM words to stream without becoming
	// the bottleneck.
	const elems = 2e8
	w := tegra.Workload{
		Profile: counters.Profile{
			SP:          192 * elems,
			Int:         130 * elems,
			SharedWords: 48 * elems,
			DRAMWords:   2 * elems,
		},
		Occupancy: 0.97,
	}
	e := dev.Execute(w, s)
	meas, err := meter.Measure(e.PowerAt, e.Time)
	if err != nil {
		return 0, err
	}
	parts := model.PredictParts(w.Profile, s, meas.Duration)
	return parts.Constant / parts.Total(), nil
}
