package experiments

import (
	"fmt"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Phase-level energy attribution: the paper's stated purpose is to find
// "where a program spends its energy". This experiment closes the loop
// from the measurement side: segment the raw PowerMon trace of a phased
// FMM run (blindly — the segmenter does not know the application),
// integrate measured energy per phase window, and set it against the
// model's per-phase prediction.

// PhaseEnergy is one phase's window and energies.
type PhaseEnergy struct {
	Phase      fmm.Phase
	Start, End units.Second // window within the run
	PredictedJ units.Joule  // model prediction (counts + ε + π0·T)
	MeasuredJ  units.Joule  // integrated from the trace over [Start, End)
}

// PhaseAttribution is the outcome of AttributePhases.
type PhaseAttribution struct {
	Segments []powermon.Segment // blind segmentation of the trace
	Phases   []PhaseEnergy      // per executed phase, in schedule order
	TotalJ   units.Joule        // measured total
}

// AttributePhases measures run's schedule at setting s, segments the
// power trace, and attributes measured and predicted energy per phase.
func AttributePhases(dev *tegra.Device, meter *powermon.Meter, model *core.Model, run *FMMRun, s dvfs.Setting) (*PhaseAttribution, error) {
	sched := run.Schedule(dev, s)
	meas, err := meter.Measure(sched.PowerAt, sched.Duration())
	if err != nil {
		return nil, fmt.Errorf("experiments: attribute: %w", err)
	}
	segs, err := meter.SegmentTrace(meas, 0, 0.2)
	if err != nil {
		return nil, fmt.Errorf("experiments: attribute: %w", err)
	}

	out := &PhaseAttribution{Segments: segs, TotalJ: meas.Energy}
	cursor := units.Second(0)
	execIdx := 0
	for _, ph := range fmm.Phases() {
		p := run.Result.Profiles[ph]
		if p.Instructions() == 0 && p.Accesses() == 0 {
			continue
		}
		exec := sched.Execs[execIdx]
		execIdx++
		start, end := cursor, cursor+exec.Time
		cursor = end

		pe := PhaseEnergy{
			Phase: ph,
			Start: start,
			End:   end,
			// The model charges the phase its counted dynamic energy plus
			// constant power over its own window.
			PredictedJ: model.Predict(p, s, exec.Time),
			MeasuredJ:  integrateSegments(segs, start, end),
		}
		out.Phases = append(out.Phases, pe)
	}
	return out, nil
}

// integrateSegments returns the energy the segmentation assigns to the
// window [start, end), pro-rating segments that straddle the borders.
func integrateSegments(segs []powermon.Segment, start, end units.Second) units.Joule {
	var e units.Joule
	for _, s := range segs {
		lo := s.Start
		if start > lo {
			lo = start
		}
		hi := s.End
		if end < hi {
			hi = end
		}
		if hi > lo {
			e += units.Energy(s.MeanPower, hi-lo)
		}
	}
	return e
}
