package experiments

import (
	"context"
	"fmt"
	"math"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// SweepWorkload measures one fixed workload at every setting of grid:
// the single-workload, context-aware entry point behind the energyd
// /v1/autotune endpoint. Each grid point executes the same work on the
// device and integrates a simulated PowerMon trace, fanning out over
// cfg.Workers workers; ctx cancellation (a request deadline, a client
// disconnect) stops the sweep between units.
//
// Short executions are repeated back-to-back until they fill a
// measurable window, exactly as the paper's microbenchmark harness
// repeats short kernels, and the integrated energy is divided by the
// repetition count. Every candidate derives its measurement-noise seed
// from the setting's identity, so the sweep is byte-identical for any
// worker count. Under an active cfg.Faults plan, transient failures
// retry per cfg.Retry; a candidate that fails every attempt aborts the
// sweep — a hole in the grid would silently bias the pick.
func SweepWorkload(ctx context.Context, dev *tegra.Device, cfg Config, w tegra.Workload, grid []dvfs.Setting) ([]core.Candidate, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("experiments: empty setting grid")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: sweep workload: %w", err)
	}
	cands := make([]core.Candidate, len(grid))
	err := forEach(ctx, cfg, "sweep", len(grid), func(i int) error {
		s := grid[i]
		exec := dev.Execute(w, s)
		key := deriveSeed(cfg.Seed+9,
			int64(math.Float64bits(float64(s.Core.FreqMHz))), int64(math.Float64bits(float64(s.Core.VoltageMV))),
			int64(math.Float64bits(float64(s.Mem.FreqMHz))), int64(math.Float64bits(float64(s.Mem.VoltageMV))))
		var meas powermon.Measurement
		var reps float64
		_, err := faults.Do(ctx, cfg.Retry, func(attempt int) error {
			inj := cfg.Faults.ForSample(key, attempt)
			if inj != nil {
				if err := inj.DVFSTransition(); err != nil {
					return fmt.Errorf("experiments: sweep at %v: %w", s, err)
				}
			}
			mcfg := cfg.meterConfig()
			if inj != nil {
				mcfg.Faults = inj
			}
			seed := key
			if attempt > 0 {
				seed = deriveSeed(key, int64(attempt))
			}
			meter, err := powermon.NewMeter(mcfg, seed)
			if err != nil {
				return fmt.Errorf("experiments: %w", err)
			}
			// Repeat the execution periodically until the run is long enough
			// for the meter to integrate a stable sample count.
			reps = 1.0
			if min := meter.MinDuration(16); exec.Time < min {
				reps = math.Ceil(float64(min / exec.Time))
			}
			// Throttle windows land inside one execution period and repeat
			// with it, so their relative energy effect is the same whether
			// the run needed repetition or not.
			trace := exec.PowerAt
			if inj != nil {
				trace = exec.ThrottledTrace(inj.ThrottleWindows(exec.Time))
			}
			if reps > 1 {
				period := float64(exec.Time)
				inner := trace
				trace = func(t units.Second) units.Watt {
					return inner(units.Second(math.Mod(float64(t), period)))
				}
			}
			m, err := meter.Measure(trace, units.Second(reps*float64(exec.Time)))
			if err != nil {
				return fmt.Errorf("experiments: sweep at %v: %w", s, err)
			}
			meas = m
			return nil
		})
		if err != nil {
			return err
		}
		cands[i] = core.Candidate{
			Setting:        s,
			Profile:        w.Profile,
			Time:           exec.Time,
			MeasuredEnergy: units.Joule(float64(meas.Energy) / reps),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}
