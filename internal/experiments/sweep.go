package experiments

import (
	"context"
	"fmt"
	"math"
	"sync"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// measureCandidate executes one fixed workload at one setting on one
// device and integrates a simulated PowerMon trace, producing the sweep
// candidate for that grid point. Short executions are repeated
// back-to-back until they fill a measurable window, exactly as the
// paper's microbenchmark harness repeats short kernels, and the
// integrated energy is divided by the repetition count. The
// measurement-noise seed derives from cfg.Seed and the setting's
// identity — never from scheduling order — so any sweep built from
// these units is byte-identical at any worker count. Under an active
// cfg.Faults plan, transient failures retry per cfg.Retry.
func measureCandidate(ctx context.Context, dev *tegra.Device, cfg Config, w tegra.Workload, s dvfs.Setting) (core.Candidate, error) {
	exec := dev.Execute(w, s)
	key := deriveSeed(cfg.Seed+9,
		int64(math.Float64bits(float64(s.Core.FreqMHz))), int64(math.Float64bits(float64(s.Core.VoltageMV))),
		int64(math.Float64bits(float64(s.Mem.FreqMHz))), int64(math.Float64bits(float64(s.Mem.VoltageMV))))
	var meas powermon.Measurement
	var reps float64
	_, err := faults.Do(ctx, cfg.Retry, func(attempt int) error {
		inj := cfg.Faults.ForSample(key, attempt)
		if inj != nil {
			if err := inj.DVFSTransition(); err != nil {
				return fmt.Errorf("experiments: sweep at %v: %w", s, err)
			}
		}
		mcfg := cfg.meterConfig()
		if inj != nil {
			mcfg.Faults = inj
		}
		seed := key
		if attempt > 0 {
			seed = deriveSeed(key, int64(attempt))
		}
		meter, err := powermon.NewMeter(mcfg, seed)
		if err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
		// Repeat the execution periodically until the run is long enough
		// for the meter to integrate a stable sample count.
		reps = 1.0
		if min := meter.MinDuration(16); exec.Time < min {
			reps = math.Ceil(float64(min / exec.Time))
		}
		// Throttle windows land inside one execution period and repeat
		// with it, so their relative energy effect is the same whether
		// the run needed repetition or not.
		trace := exec.PowerAt
		if inj != nil {
			trace = exec.ThrottledTrace(inj.ThrottleWindows(exec.Time))
		}
		if reps > 1 {
			period := float64(exec.Time)
			inner := trace
			trace = func(t units.Second) units.Watt {
				return inner(units.Second(math.Mod(float64(t), period)))
			}
		}
		m, err := meter.Measure(trace, units.Second(reps*float64(exec.Time)))
		if err != nil {
			return fmt.Errorf("experiments: sweep at %v: %w", s, err)
		}
		meas = m
		return nil
	})
	if err != nil {
		return core.Candidate{}, err
	}
	return core.Candidate{
		Setting:        s,
		Profile:        w.Profile,
		Time:           exec.Time,
		MeasuredEnergy: units.Joule(float64(meas.Energy) / reps),
	}, nil
}

// SweepWorkload measures one fixed workload at every setting of grid:
// the single-device, context-aware entry point behind the energyd
// /v1/autotune endpoint. Each grid point executes the same work on the
// device and integrates a simulated PowerMon trace, fanning out over
// cfg.Workers workers; ctx cancellation (a request deadline, a client
// disconnect) stops the sweep between units. Every candidate derives
// its measurement-noise seed from the setting's identity, so the sweep
// is byte-identical for any worker count. A candidate that fails every
// retry attempt aborts the sweep — a hole in the grid would silently
// bias the pick.
func SweepWorkload(ctx context.Context, dev *tegra.Device, cfg Config, w tegra.Workload, grid []dvfs.Setting) ([]core.Candidate, error) {
	if len(grid) == 0 {
		return nil, fmt.Errorf("experiments: empty setting grid")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: sweep workload: %w", err)
	}
	cands := make([]core.Candidate, len(grid))
	err := forEach(ctx, cfg, "sweep", len(grid), func(i int) error {
		c, err := measureCandidate(ctx, dev, cfg, w, grid[i])
		if err != nil {
			return err
		}
		cands[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	return cands, nil
}

// SweepTarget is one device's share of a fleet sweep: the device, its
// own config (seed lineage, fault plan) and its own candidate grid —
// heterogeneous devices may run different slices of the DVFS ladder.
type SweepTarget struct {
	Dev  *tegra.Device
	Cfg  Config
	Grid []dvfs.Setting
}

// TargetSweep is one target's outcome: its candidates, or the first
// error (in grid order) that its share of the sweep produced.
type TargetSweep struct {
	Candidates []core.Candidate
	Err        error
}

// SweepTargets measures one workload on every target, flattening all
// (target, setting) pairs onto a single worker pool — the fleet
// placement fan-out. Each unit derives its measurement-noise seed from
// its target's cfg.Seed and its setting's identity, so per-target
// results are byte-identical to running SweepWorkload on that target
// alone, at any pool worker count and in any scheduling order.
//
// Unlike SweepWorkload, one target's permanent failure does not abort
// the others: its TargetSweep carries the error (deterministically the
// first in grid order) and its candidates are nil, so the fleet layer
// can report the device unavailable while the rest still answer. Only
// ctx cancellation — a request deadline or client disconnect — stops
// the whole fan-out, returning the ctx error.
//
// pool supplies the shared concurrency knobs (Workers, OnProgress);
// per-unit measurement behavior comes from each target's own Cfg.
func SweepTargets(ctx context.Context, pool Config, w tegra.Workload, targets []SweepTarget) ([]TargetSweep, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: sweep workload: %w", err)
	}
	type unit struct{ target, point int }
	var work []unit
	out := make([]TargetSweep, len(targets))
	errs := make([][]error, len(targets))
	//energylint:allow ctxloop(bounded in-memory setup; the measurement fan-out below runs under forEach, which honors ctx)
	for ti, t := range targets {
		if len(t.Grid) == 0 {
			out[ti].Err = fmt.Errorf("experiments: target %d: empty setting grid", ti)
			continue
		}
		out[ti].Candidates = make([]core.Candidate, len(t.Grid))
		errs[ti] = make([]error, len(t.Grid))
		for gi := range t.Grid {
			work = append(work, unit{target: ti, point: gi})
		}
	}
	var mu sync.Mutex
	err := forEach(ctx, pool, "fleetsweep", len(work), func(i int) error {
		u := work[i]
		t := targets[u.target]
		c, err := measureCandidate(ctx, t.Dev, t.Cfg, w, t.Grid[u.point])
		if err != nil {
			if ctx.Err() != nil {
				// Cancellation aborts the fan-out; per-target errors are
				// reserved for genuine measurement failures.
				return err
			}
			mu.Lock()
			errs[u.target][u.point] = err
			mu.Unlock()
			return nil
		}
		out[u.target].Candidates[u.point] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	for ti := range out {
		if out[ti].Err != nil {
			continue
		}
		for _, e := range errs[ti] {
			if e != nil {
				out[ti] = TargetSweep{Err: e}
				break
			}
		}
	}
	return out, nil
}
