package experiments

import (
	"context"
	"testing"

	"dvfsroofline/internal/dvfs"
)

func TestTuneQSweep(t *testing.T) {
	dev, cal := calibrate(t)
	// For a uniform 16 Ki-point cloud the leaf level changes at Q ≈ 4,
	// 32, 256, 2048 (powers of 8 per level); pick one Q per level so the
	// sweep actually moves the tree.
	res, err := TuneQ(context.Background(), dev, cal.Model, testConfig(), 16384, []int{8, 32, 256, 2048}, dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 4 {
		t.Fatalf("got %d candidates, want 4", len(res.Candidates))
	}
	// §III-B: larger Q shifts work toward the compute-bound U phase, so
	// the U instruction share and the DP intensity must rise
	// monotonically over this range.
	for i := 1; i < len(res.Candidates); i++ {
		prev, cur := res.Candidates[i-1], res.Candidates[i]
		if cur.UInstrShare <= prev.UInstrShare {
			t.Errorf("Q=%d: U share %.3f not above Q=%d's %.3f",
				cur.Q, cur.UInstrShare, prev.Q, prev.UInstrShare)
		}
		if cur.DPIntensity <= prev.DPIntensity {
			t.Errorf("Q=%d: DP intensity %.1f not above Q=%d's %.1f",
				cur.Q, cur.DPIntensity, prev.Q, prev.DPIntensity)
		}
	}
	// Picks are indices into the sweep and internally consistent.
	be, bt := res.Candidates[res.BestEnergy], res.Candidates[res.BestTime]
	for _, c := range res.Candidates {
		if c.PredictedJ < be.PredictedJ {
			t.Error("BestEnergy is not the minimum-energy candidate")
		}
		if c.Time < bt.Time {
			t.Error("BestTime is not the minimum-time candidate")
		}
	}
	// Constant power dominates everywhere, so the energy-best Q should
	// be (close to) the time-best Q — the paper's §IV-C logic applied to
	// algorithm tuning.
	if be.Time > bt.Time*1.15 {
		t.Errorf("energy-best Q=%d is %.0f%% slower than time-best Q=%d",
			be.Q, 100*(be.Time/bt.Time-1), bt.Q)
	}
	t.Logf("Q sweep at max setting: best energy Q=%d (%.2f J), best time Q=%d (%.3f s)",
		be.Q, be.PredictedJ, bt.Q, bt.Time)
}

func TestTuneQEmpty(t *testing.T) {
	dev, cal := calibrate(t)
	if _, err := TuneQ(context.Background(), dev, cal.Model, testConfig(), 1024, nil, dvfs.MaxSetting()); err == nil {
		t.Error("empty sweep accepted")
	}
}
