package experiments

import (
	"context"
	"runtime"
	"sync"

	"dvfsroofline/internal/stats"
)

// This file is the experiment layer's concurrency substrate. Every
// pipelined experiment (Calibrate, Autotune, Figure5, RunFMMInputs,
// TuneQ) fans its independent units of work out over a bounded worker
// pool and writes results into pre-indexed slots, so the outcome is
// byte-identical for any worker count. Randomness stays deterministic
// because every unit derives its own seed from the unit's identity
// (deriveSeed, microbench.SampleSeed) rather than from a shared stream.

// Progress is one pipeline progress update.
type Progress struct {
	Stage string // e.g. "calibrate", "autotune", "fmm", "figure5", "tuneq"
	Done  int    // units completed so far
	Total int    // total units in this stage
}

// workers resolves the configured parallelism: zero or negative selects
// GOMAXPROCS.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// progress invokes the OnProgress callback, if any. Callers serialize
// invocations.
func (c Config) progress(stage string, done, total int) {
	if c.OnProgress != nil {
		c.OnProgress(Progress{Stage: stage, Done: done, Total: total})
	}
}

// forEach runs n indexed tasks on a worker pool bounded by cfg.Workers.
// It honors ctx cancellation, stops scheduling new tasks after the first
// error, and reports completions through cfg.OnProgress (serialized).
// Tasks must be independent and write only to their own result slot;
// forEach guarantees every started task has returned before it does.
func forEach(ctx context.Context, cfg Config, stage string, n int, task func(i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	workers := cfg.workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := task(i); err != nil {
				return err
			}
			cfg.progress(stage, i+1, n)
		}
		return nil
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex // guards firstErr, done, and OnProgress calls
		firstErr error
		done     int
	)
	idx := make(chan int)
	go func() {
		defer close(idx)
		for i := 0; i < n; i++ {
			select {
			case idx <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if ctx.Err() != nil {
					return
				}
				if err := task(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				done++
				cfg.progress(stage, done, n)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// deriveSeed mixes a base seed with stream indices (FNV-1a over the bit
// patterns) so that every pipelined unit of work owns an independent
// random stream tied to its identity, not to execution order.
func deriveSeed(base int64, idx ...int64) int64 {
	return stats.MixSeed(base, idx...)
}
