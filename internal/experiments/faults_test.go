package experiments

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/tegra"
)

// soakPlan is the acceptance-criteria fault load: >=10% of samples hit a
// transient failure (disconnects + DVFS failures) and >=2% complete with
// spike-corrupted traces that only the outlier screen can catch.
func soakPlan() faults.Plan {
	return faults.Plan{
		Seed:            99,
		MeterDisconnect: 0.06,
		DVFSFailure:     0.05,
		MeterSpike:      0.025,
		MeterDropout:    0.02,
		Throttle:        0.01,
	}
}

func soakConfig(workers int) Config {
	cfg := testConfig()
	cfg.Workers = workers
	cfg.Faults = soakPlan()
	// Two attempts: enough to recover most transients while leaving the
	// unluckiest samples to exercise the quarantine path.
	cfg.Retry = faults.Retry{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	cfg.MinCoverage = 0.97
	return cfg
}

// tableIConstants flattens the recovered Table I (per-op energies and
// constant power at every calibration setting) into named values.
func tableIConstants(cal *Calibration) map[string]float64 {
	out := make(map[string]float64)
	for _, row := range cal.TableI() {
		key := fmt.Sprintf("%v/", row.Setting)
		out[key+"SP"] = float64(row.Eps.SP)
		out[key+"DP"] = float64(row.Eps.DP)
		out[key+"Int"] = float64(row.Eps.Int)
		out[key+"SM"] = float64(row.Eps.SM)
		out[key+"L2"] = float64(row.Eps.L2)
		out[key+"DRAM"] = float64(row.Eps.DRAM)
		out[key+"ConstW"] = float64(row.Eps.ConstPower)
	}
	return out
}

func TestCalibrateSurvivesHighFaultPlan(t *testing.T) {
	dev, clean := calibrate(t) // fault-free reference fit

	cal, err := Calibrate(context.Background(), dev, soakConfig(0))
	if err != nil {
		t.Fatalf("calibration died under the fault plan: %v", err)
	}
	cov := cal.Coverage
	if cov.Fraction() < 0.97 {
		t.Fatalf("coverage %.3f below the configured floor", cov.Fraction())
	}
	if cov.Retried == 0 {
		t.Error("no retries recorded; the plan should hit transient faults")
	}
	if len(cov.Quarantined) == 0 {
		t.Error("no quarantined samples; expected some to exhaust retries")
	}
	if cov.ScreenedOutliers == 0 {
		t.Error("outlier screen caught nothing; spikes should corrupt some fits")
	}
	t.Logf("coverage %.4f, %d retries, %d quarantined, %d screened",
		cov.Fraction(), cov.Retried, len(cov.Quarantined), cov.ScreenedOutliers)

	// Every recovered Table I constant within 5% of the fault-free fit.
	ref := tableIConstants(clean)
	for name, got := range tableIConstants(cal) {
		want := ref[name]
		if rel := math.Abs(got-want) / math.Abs(want); rel > 0.05 {
			t.Errorf("%s = %g vs fault-free %g (%.1f%% off, want <5%%)", name, got, want, 100*rel)
		}
	}
}

func TestFaultyCalibrationWorkerInvariant(t *testing.T) {
	dev := tegra.NewDevice()
	serial, err := Calibrate(context.Background(), dev, soakConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Calibrate(context.Background(), dev, soakConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Samples, par.Samples) {
		t.Error("samples differ between 1 and 4 workers under faults")
	}
	if *serial.Model != *par.Model {
		t.Errorf("fitted models differ: %+v vs %+v", *serial.Model, *par.Model)
	}
	if serial.Coverage.Retried != par.Coverage.Retried {
		t.Errorf("retry counts differ: %d vs %d", serial.Coverage.Retried, par.Coverage.Retried)
	}
	qIdx := func(c *Calibration) []int {
		out := make([]int, len(c.Coverage.Quarantined))
		for i, q := range c.Coverage.Quarantined {
			out[i] = q.Index
		}
		return out
	}
	if !reflect.DeepEqual(qIdx(serial), qIdx(par)) {
		t.Errorf("quarantine reports differ: %v vs %v", qIdx(serial), qIdx(par))
	}
}

func TestCalibrateFaultFreePlanUnchanged(t *testing.T) {
	// An inactive fault plan with retry machinery configured must yield
	// byte-identical results to the historical pipeline.
	dev, ref := calibrate(t)
	cfg := testConfig()
	cfg.Retry = faults.Retry{MaxAttempts: 4, Sleep: func(time.Duration) {}}
	cfg.MinCoverage = 0.5
	cal, err := Calibrate(context.Background(), dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref.Samples, cal.Samples) {
		t.Error("inactive fault plan changed the samples")
	}
	if *ref.Model != *cal.Model {
		t.Error("inactive fault plan changed the fit")
	}
	if !cal.Coverage.Complete() || cal.Coverage.Retried != 0 || cal.Coverage.ScreenedOutliers != 0 {
		t.Errorf("clean campaign reported fault activity: %+v", cal.Coverage)
	}
}

func TestCalibrateCoverageGate(t *testing.T) {
	dev := tegra.NewDevice()

	// Default MinCoverage (1.0) keeps the historical fail-fast contract.
	cfg := testConfig()
	cfg.Faults = faults.Plan{Seed: 1, MeterDisconnect: 1}
	cfg.Retry = faults.Retry{MaxAttempts: 2, Sleep: func(time.Duration) {}}
	if _, err := Calibrate(context.Background(), dev, cfg); err == nil {
		t.Error("fail-fast mode completed despite guaranteed disconnects")
	}

	// With quarantining enabled but everything failing, the coverage gate
	// must refuse to fit and say why.
	cfg.MinCoverage = 0.5
	_, err := Calibrate(context.Background(), dev, cfg)
	if err == nil {
		t.Fatal("coverage gate passed a campaign with zero survivors")
	}
	if !strings.Contains(err.Error(), "coverage") {
		t.Errorf("gate error %q does not mention coverage", err)
	}
}

func TestCalibrateRejectsBadFaultPlan(t *testing.T) {
	dev := tegra.NewDevice()
	cfg := testConfig()
	cfg.Faults = faults.Plan{MeterDropout: 2}
	if _, err := Calibrate(context.Background(), dev, cfg); err == nil {
		t.Error("invalid fault plan accepted")
	}
	cfg = testConfig()
	cfg.MinCoverage = 1.5
	if _, err := Calibrate(context.Background(), dev, cfg); err == nil {
		t.Error("min coverage above 1 accepted")
	}
}
