package experiments

import (
	"context"
	"fmt"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/fmm"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Q tuning: the paper (§III-B) points out that the leaf capacity Q
// shifts work between the compute-bound U phase and the bandwidth-bound
// V phase, so "the FMM's overall arithmetic intensity can be tailored to
// a particular platform". This experiment sweeps Q for a fixed problem
// and uses the fitted energy model to pick the Q minimizing energy (or
// time) on the simulated device.

// QCandidate is one point of a Q sweep.
type QCandidate struct {
	Q           int
	Time        units.Second     // on the device at the sweep's setting
	PredictedJ  units.Joule      // model-predicted energy
	UInstrShare float64          // U-phase share of instructions
	DPIntensity units.OpsPerWord // DP ops per DRAM word
	ConstShare  float64          // constant power share of predicted energy
}

// QSweepResult holds a full sweep plus the tuner's picks.
type QSweepResult struct {
	Setting    dvfs.Setting
	Candidates []QCandidate
	BestEnergy int // index of the minimum-predicted-energy Q
	BestTime   int // index of the minimum-time Q
}

// TuneQ sweeps the given leaf capacities for an N-point uniform problem
// at one DVFS setting, predicting time and energy for each. The sweep
// candidates fan out over cfg.Workers workers; each candidate is purely
// model-evaluated, so the result is worker-count-invariant.
func TuneQ(ctx context.Context, dev *tegra.Device, model *core.Model, cfg Config, n int, qs []int, s dvfs.Setting) (*QSweepResult, error) {
	if len(qs) == 0 {
		return nil, fmt.Errorf("experiments: empty Q sweep")
	}
	out := &QSweepResult{Setting: s, Candidates: make([]QCandidate, len(qs))}
	err := forEach(ctx, cfg, "tuneq", len(qs), func(i int) error {
		q := qs[i]
		run, err := RunFMMInput(FMMInput{ID: fmt.Sprintf("Q%d", q), N: n, Q: q}, cfg)
		if err != nil {
			return err
		}
		sched := run.Schedule(dev, s)
		dur := sched.Duration()
		tot := run.TotalProfile()
		parts := model.PredictParts(tot, s, dur)
		instr := tot.Instructions()
		out.Candidates[i] = QCandidate{
			Q:           q,
			Time:        dur,
			PredictedJ:  parts.Total(),
			UInstrShare: run.Result.Profiles[fmm.PhaseU].Instructions() / instr,
			DPIntensity: core.ProfileIntensity(core.ClassDP, tot),
			ConstShare:  float64(parts.Constant / parts.Total()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range out.Candidates {
		if c.PredictedJ < out.Candidates[out.BestEnergy].PredictedJ {
			out.BestEnergy = i
		}
		if c.Time < out.Candidates[out.BestTime].Time {
			out.BestTime = i
		}
	}
	return out, nil
}
