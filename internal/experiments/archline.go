package experiments

import (
	"fmt"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/microbench"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// Measured rooflines: the authors' "archline" microbenchmark suite
// (paper §II-C, footnote 2) exists to trace out the measured performance
// and power of a platform as functions of arithmetic intensity — the
// empirical counterpart of the model's closed-form roofline curves. This
// experiment runs the intensity sweep at one DVFS setting and reports
// both the measurements and the model's predictions, so the two can be
// compared point by point.

// RooflinePoint is one measured point of the intensity sweep, with the
// model's prediction alongside.
type RooflinePoint struct {
	Intensity units.OpsPerWord // target ops per DRAM word

	// Measured through the device + PowerMon path.
	OpsPerSec   units.OpsPerSecond
	Power       units.Watt
	OpsPerJoule units.OpsPerJoule

	// Model predictions from the fitted constants and the machine peaks.
	Predicted core.RooflinePoint
}

// MeasuredRoofline sweeps a microbenchmark family's intensities at one
// setting, measuring each kernel and predicting it with the model.
func MeasuredRoofline(dev *tegra.Device, model *core.Model, cfg Config, kind microbench.Kind, s dvfs.Setting) ([]RooflinePoint, error) {
	runner := &microbench.Runner{
		Device:      dev,
		MeterConfig: cfg.meterConfig(),
		Seed:        cfg.Seed + 31,
		TargetTime:  cfg.BenchTargetTime,
	}
	var class core.OpClass
	var opsPerCycle units.PerCycle
	switch kind {
	case microbench.Single, microbench.DRAM:
		class, opsPerCycle = core.ClassSP, tegra.SPPerCycle
	case microbench.Double:
		class, opsPerCycle = core.ClassDP, tegra.DPPerCycle
	case microbench.Integer:
		class, opsPerCycle = core.ClassInt, tegra.IntPerCycle
	default:
		return nil, fmt.Errorf("experiments: roofline sweep undefined for %v (cache families have no single op class)", kind)
	}
	mach := core.MachineFor(opsPerCycle, tegra.DRAMWordsPerCycle, s)

	var out []RooflinePoint
	for _, ai := range kind.Intensities() {
		b := microbench.Benchmark{Kind: kind, Intensity: ai}
		smp, err := runner.Run(b, s)
		if err != nil {
			return nil, err
		}
		ops := ai * smp.Workload.Profile.DRAMWords
		out = append(out, RooflinePoint{
			Intensity:   units.OpsPerWord(ai),
			OpsPerSec:   units.OpsPerSecond(ops / float64(smp.Time)),
			Power:       smp.Power,
			OpsPerJoule: units.OpsPerJoule(ops / float64(smp.Energy)),
			Predicted:   model.RooflineAt(class, mach, s, units.OpsPerWord(ai)),
		})
	}
	return out, nil
}
