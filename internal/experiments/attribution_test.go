package experiments

import (
	"math"
	"testing"

	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/powermon"
	"dvfsroofline/internal/units"
)

func TestAttributePhases(t *testing.T) {
	dev, cal, run := smallRun(t)
	cfg := testConfig()
	att, err := AttributePhases(dev, testMeter(t, cfg, 21), cal.Model, run, dvfs.MaxSetting())
	if err != nil {
		t.Fatal(err)
	}
	if len(att.Phases) == 0 {
		t.Fatal("no phases attributed")
	}
	if len(att.Segments) < 1 {
		t.Fatal("no segments found")
	}

	// Phase windows must tile the run contiguously.
	for i := 1; i < len(att.Phases); i++ {
		if math.Abs(float64(att.Phases[i].Start-att.Phases[i-1].End)) > 1e-12 {
			t.Errorf("phase %v does not start where %v ends",
				att.Phases[i].Phase, att.Phases[i-1].Phase)
		}
	}

	// Measured phase energies must sum to ~the measured total.
	var sumM, sumP units.Joule
	for _, pe := range att.Phases {
		sumM += pe.MeasuredJ
		sumP += pe.PredictedJ
		if pe.MeasuredJ <= 0 || pe.PredictedJ <= 0 {
			t.Errorf("%v: non-positive energies %+v", pe.Phase, pe)
		}
	}
	if rel := math.Abs(float64(sumM-att.TotalJ)) / float64(att.TotalJ); rel > 0.02 {
		t.Errorf("phase energies sum to %.3f vs total %.3f", sumM, att.TotalJ)
	}

	// Every substantial phase (>10% of the run) must agree between the
	// blind measurement and the model within 20%.
	for _, pe := range att.Phases {
		if pe.End-pe.Start < 0.1*att.Phases[len(att.Phases)-1].End {
			continue
		}
		rel := math.Abs(float64(pe.MeasuredJ-pe.PredictedJ)) / float64(pe.MeasuredJ)
		if rel > 0.20 {
			t.Errorf("%v: measured %.3f J vs predicted %.3f J (rel %.2f)",
				pe.Phase, pe.MeasuredJ, pe.PredictedJ, rel)
		}
	}
}

func TestIntegrateSegmentsPartial(t *testing.T) {
	segs := []powermon.Segment{
		{Start: 0, End: 1, MeanPower: 10, Energy: 10},
		{Start: 1, End: 2, MeanPower: 20, Energy: 20},
	}
	// A window straddling the boundary takes pro-rated shares.
	got := integrateSegments(segs, 0.5, 1.5)
	want := units.Joule(10*0.5 + 20*0.5)
	if math.Abs(float64(got-want)) > 1e-12 {
		t.Errorf("integrate = %v, want %v", got, want)
	}
	// Window outside all segments integrates to zero.
	if integrateSegments(segs, 5, 6) != 0 {
		t.Error("out-of-range window should integrate to 0")
	}
	// Full-range window returns total energy.
	if got := integrateSegments(segs, 0, 2); math.Abs(float64(got)-30) > 1e-12 {
		t.Errorf("full window = %v, want 30", got)
	}
}
