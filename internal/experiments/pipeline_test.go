package experiments

import (
	"context"
	"errors"
	"sync"
	"testing"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/tegra"
)

// TestCalibrateParallelMatchesSerial is the pipeline's central
// determinism guarantee: because every sample's meter is seeded from the
// (seed, benchmark, setting) identity rather than from a shared stream,
// the worker count must not change a single bit of the campaign — not
// the samples, not the fitted constants, not the validation statistics.
func TestCalibrateParallelMatchesSerial(t *testing.T) {
	dev := tegra.NewDevice()
	serial := testConfig()
	serial.Workers = 1
	parallel := testConfig()
	parallel.Workers = 8

	c1, err := Calibrate(context.Background(), dev, serial)
	if err != nil {
		t.Fatal(err)
	}
	c8, err := Calibrate(context.Background(), dev, parallel)
	if err != nil {
		t.Fatal(err)
	}

	if len(c1.Samples) != len(c8.Samples) {
		t.Fatalf("sample counts differ: %d vs %d", len(c1.Samples), len(c8.Samples))
	}
	for i := range c1.Samples {
		if c1.Samples[i] != c8.Samples[i] {
			t.Fatalf("sample %d differs between 1 and 8 workers:\n %+v\n %+v",
				i, c1.Samples[i], c8.Samples[i])
		}
	}
	if *c1.Model != *c8.Model {
		t.Errorf("fitted models differ:\n %+v\n %+v", *c1.Model, *c8.Model)
	}
	if c1.Holdout.Summary != c8.Holdout.Summary {
		t.Errorf("holdout summaries differ: %+v vs %+v", c1.Holdout.Summary, c8.Holdout.Summary)
	}
	if c1.KFold.Summary != c8.KFold.Summary {
		t.Errorf("16-fold summaries differ: %+v vs %+v", c1.KFold.Summary, c8.KFold.Summary)
	}
	t1, t8 := c1.TableI(), c8.TableI()
	for i := range t1 {
		if t1[i] != t8[i] {
			t.Errorf("Table I row %d differs: %+v vs %+v", i, t1[i], t8[i])
		}
	}
}

// TestAutotuneWorkerInvariant checks the Table II sweep the same way:
// identical rows for 1 and 8 workers.
func TestAutotuneWorkerInvariant(t *testing.T) {
	dev, cal := calibrate(t)
	serial := testConfig()
	serial.Workers = 1
	parallel := testConfig()
	parallel.Workers = 8

	r1, err := Autotune(context.Background(), dev, cal.Model, serial)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Autotune(context.Background(), dev, cal.Model, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r8) {
		t.Fatalf("row counts differ: %d vs %d", len(r1), len(r8))
	}
	for i := range r1 {
		if r1[i] != r8[i] {
			t.Errorf("Table II row %d differs:\n %+v\n %+v", i, r1[i], r8[i])
		}
	}
}

// TestFigure5WorkerInvariant checks the validation sweep: every case
// owns a meter seeded from its grid position, so the 8 cases of a
// one-input sweep must be identical for any worker count.
func TestFigure5WorkerInvariant(t *testing.T) {
	dev, cal, run := smallRun(t)
	serial := testConfig()
	serial.Workers = 1
	parallel := testConfig()
	parallel.Workers = 8

	f1, err := Figure5(context.Background(), dev, cal.Model, []*FMMRun{run}, serial)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Figure5(context.Background(), dev, cal.Model, []*FMMRun{run}, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Cases) != len(f8.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(f1.Cases), len(f8.Cases))
	}
	for i := range f1.Cases {
		if f1.Cases[i] != f8.Cases[i] {
			t.Errorf("case %d differs between worker counts", i)
		}
	}
	if f1.Summary != f8.Summary {
		t.Errorf("summaries differ: %+v vs %+v", f1.Summary, f8.Summary)
	}
}

// TestCalibrateFromSamplesMatchesFresh: refitting from the recorded
// samples must reproduce the fresh calibration exactly — the property
// the cmd/* -cache flag depends on.
func TestCalibrateFromSamplesMatchesFresh(t *testing.T) {
	_, cal := calibrate(t)
	re, err := CalibrateFromSamples(cal.Samples)
	if err != nil {
		t.Fatal(err)
	}
	if *re.Model != *cal.Model {
		t.Errorf("refit model differs:\n %+v\n %+v", *re.Model, *cal.Model)
	}
	if re.Holdout.Summary != cal.Holdout.Summary || re.KFold.Summary != cal.KFold.Summary {
		t.Error("refit validation statistics differ from the fresh calibration")
	}
	for i := range cal.TrainMask {
		if re.TrainMask[i] != cal.TrainMask[i] {
			t.Fatalf("train mask differs at %d", i)
		}
	}
}

func TestCalibrateFromSamplesRejectsBadInput(t *testing.T) {
	_, cal := calibrate(t)
	if _, err := CalibrateFromSamples(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, err := CalibrateFromSamples(cal.Samples[:17]); err == nil {
		t.Error("sample count not divisible by 16 accepted")
	}
	// Swapping two setting blocks breaks the setting-major invariant.
	swapped := append([]core.Sample(nil), cal.Samples...)
	per := len(swapped) / 16
	for i := 0; i < per; i++ {
		swapped[i], swapped[per+i] = swapped[per+i], swapped[i]
	}
	if _, err := CalibrateFromSamples(swapped); err == nil {
		t.Error("setting-order violation accepted")
	}
}

// TestCalibrateCancellation: a cancelled context must abort the campaign
// with the context's error.
func TestCalibrateCancellation(t *testing.T) {
	dev := tegra.NewDevice()
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		cfg := testConfig()
		cfg.Workers = workers
		if _, err := Calibrate(ctx, dev, cfg); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: got %v, want context.Canceled", workers, err)
		}
	}
}

// TestCalibrateProgress: OnProgress must report the calibration stage
// monotonically up to completion, under any worker count.
func TestCalibrateProgress(t *testing.T) {
	dev := tegra.NewDevice()
	for _, workers := range []int{1, 8} {
		var mu sync.Mutex
		var got []Progress
		cfg := testConfig()
		cfg.Workers = workers
		cfg.OnProgress = func(p Progress) {
			mu.Lock()
			got = append(got, p)
			mu.Unlock()
		}
		if _, err := Calibrate(context.Background(), dev, cfg); err != nil {
			t.Fatal(err)
		}
		if len(got) == 0 {
			t.Fatalf("workers=%d: no progress reported", workers)
		}
		for i, p := range got {
			if p.Stage != "calibrate" {
				t.Fatalf("workers=%d: unexpected stage %q", workers, p.Stage)
			}
			if p.Done != i+1 || p.Total != len(got) {
				t.Fatalf("workers=%d: progress %d = %+v, want Done=%d Total=%d",
					workers, i, p, i+1, len(got))
			}
		}
		if last := got[len(got)-1]; last.Done != last.Total {
			t.Errorf("workers=%d: final progress %+v incomplete", workers, last)
		}
	}
}

func TestScaleInputsClamp(t *testing.T) {
	inputs := []FMMInput{
		{ID: "A", N: 80000, Q: 100},
		{ID: "B", N: 1000, Q: 500}, // 1000/8 = 125 <= Q: must clamp to 2Q
	}
	scaled, clamped := ScaleInputs(inputs, 8)
	if scaled[0].N != 10000 {
		t.Errorf("A scaled to N=%d, want 10000", scaled[0].N)
	}
	if scaled[1].N != 1000 {
		t.Errorf("B clamped to N=%d, want 2Q=1000", scaled[1].N)
	}
	if len(clamped) != 1 || clamped[0] != "B" {
		t.Errorf("clamped IDs = %v, want [B]", clamped)
	}
	if inputs[1].N != 1000 || inputs[0].N != 80000 {
		t.Error("ScaleInputs mutated its input slice")
	}
	// Guard against a degenerate single-leaf octree: scaled N must stay
	// strictly above Q for every input.
	for _, in := range scaled {
		if in.N <= in.Q {
			t.Errorf("%s: scaled N=%d <= Q=%d (degenerate octree)", in.ID, in.N, in.Q)
		}
	}
}

// TestTuneQWorkerInvariant: the Q sweep fans out per candidate and must
// not depend on the worker count either.
func TestTuneQWorkerInvariant(t *testing.T) {
	dev, cal := calibrate(t)
	serial := testConfig()
	serial.Workers = 1
	parallel := testConfig()
	parallel.Workers = 4

	qs := []int{32, 64, 128}
	s := dvfs.MaxSetting()
	r1, err := TuneQ(context.Background(), dev, cal.Model, serial, 16384, qs, s)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := TuneQ(context.Background(), dev, cal.Model, parallel, 16384, qs, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Candidates) != len(r4.Candidates) {
		t.Fatalf("candidate counts differ: %d vs %d", len(r1.Candidates), len(r4.Candidates))
	}
	for i := range r1.Candidates {
		if r1.Candidates[i] != r4.Candidates[i] {
			t.Errorf("Q candidate %d differs between worker counts", i)
		}
	}
}
