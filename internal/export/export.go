// Package export writes the repository's experiment data as CSV files.
// The paper emphasizes replicability — its measurement dataset and R
// analysis scripts are public — and this package provides the equivalent
// artifact: calibration samples, Table I/II rows and the Figure 5 cases
// in a form any external analysis environment can load.
package export

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/units"
)

// f formats any float64-backed quantity — raw or unit-typed — with the
// same 'g'/12 encoding, so adopting internal/units moved no CSV byte.
func f[T ~float64](x T) string { return strconv.FormatFloat(float64(x), 'g', 12, 64) }

// WriteSamples writes model-training samples (one row per measurement):
// the DVFS setting, the operation profile, and the measured time/energy.
func WriteSamples(w io.Writer, samples []core.Sample) error {
	cw := csv.NewWriter(w)
	header := []string{
		"core_mhz", "core_mv", "mem_mhz", "mem_mv",
		"sp", "dp_fma", "dp_add", "dp_mul", "int",
		"shared_words", "l1_words", "l2_words", "dram_words",
		"time_s", "energy_j",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range samples {
		p := s.Profile
		row := []string{
			f(s.Setting.Core.FreqMHz), f(s.Setting.Core.VoltageMV),
			f(s.Setting.Mem.FreqMHz), f(s.Setting.Mem.VoltageMV),
			f(p.SP), f(p.DPFMA), f(p.DPAdd), f(p.DPMul), f(p.Int),
			f(p.SharedWords), f(p.L1Words), f(p.L2Words), f(p.DRAMWords),
			f(s.Time), f(s.Energy),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableI writes the derived Table I rows.
func WriteTableI(w io.Writer, rows []experiments.TableIRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"type", "core_mhz", "core_mv", "mem_mhz", "mem_mv",
		"sp_pj", "dp_pj", "int_pj", "sm_pj", "l2_pj", "mem_pj", "const_w",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		e := r.Eps
		row := []string{
			r.Type,
			f(r.Setting.Core.FreqMHz), f(r.Setting.Core.VoltageMV),
			f(r.Setting.Mem.FreqMHz), f(r.Setting.Mem.VoltageMV),
			f(e.SP), f(e.DP), f(e.Int), f(e.SM), f(e.L2), f(e.DRAM), f(e.ConstPower),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableII writes the autotuning comparison rows.
func WriteTableII(w io.Writer, rows []core.TableIIRow) error {
	cw := csv.NewWriter(w)
	header := []string{
		"family", "strategy", "mispredictions", "cases",
		"lost_mean_pct", "lost_min_pct", "lost_max_pct",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range rows {
		for _, sr := range []struct {
			name  string
			stats core.StrategyStats
		}{{"model", r.Model}, {"time_oracle", r.Oracle}} {
			lp := sr.stats.LostPercent()
			row := []string{
				r.Family, sr.name,
				strconv.Itoa(sr.stats.Mispredictions), strconv.Itoa(sr.stats.Cases),
				f(lp.Mean), f(lp.Min), f(lp.Max),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5 writes the 64 validation cases.
func WriteFigure5(w io.Writer, cases []experiments.FMMCase) error {
	cw := csv.NewWriter(w)
	header := []string{
		"setting", "input", "n", "q", "time_s",
		"measured_j", "predicted_j", "rel_err",
		"compute_j", "data_j", "constant_j",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, c := range cases {
		row := []string{
			c.SettingID, c.Input.ID,
			strconv.Itoa(c.Input.N), strconv.Itoa(c.Input.Q),
			f(c.Time), f(c.MeasuredEnergy), f(c.PredictedEnergy), f(c.RelErr),
			f(c.PredictedParts.Compute()), f(c.PredictedParts.Data()), f(c.PredictedParts.Constant),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSamples parses a CSV written by WriteSamples back into samples —
// the round trip external analysts would make.
func ReadSamples(r io.Reader) ([]core.Sample, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("export: empty CSV")
	}
	if len(records[0]) != 15 {
		return nil, fmt.Errorf("export: expected 15 columns, got %d", len(records[0]))
	}
	out := make([]core.Sample, 0, len(records)-1)
	for li, rec := range records[1:] {
		vals := make([]float64, len(rec))
		for i, cell := range rec {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("export: line %d column %d: %w", li+2, i+1, err)
			}
			vals[i] = v
		}
		var s core.Sample
		s.Setting.Core.FreqMHz = units.MegaHertz(vals[0])
		s.Setting.Core.VoltageMV = units.MilliVolt(vals[1])
		s.Setting.Mem.FreqMHz = units.MegaHertz(vals[2])
		s.Setting.Mem.VoltageMV = units.MilliVolt(vals[3])
		s.Profile.SP = vals[4]
		s.Profile.DPFMA = vals[5]
		s.Profile.DPAdd = vals[6]
		s.Profile.DPMul = vals[7]
		s.Profile.Int = vals[8]
		s.Profile.SharedWords = vals[9]
		s.Profile.L1Words = vals[10]
		s.Profile.L2Words = vals[11]
		s.Profile.DRAMWords = vals[12]
		s.Time = units.Second(vals[13])
		s.Energy = units.Joule(vals[14])
		out = append(out, s)
	}
	return out, nil
}
