package export

import (
	"bytes"
	"os"
	"testing"

	"dvfsroofline/internal/experiments"
)

// FuzzReadSamples hammers the calibration-sample CSV parser — the
// surface external data crosses on the cmd/* cache path (-samples
// files) — with the shipped energyd corpus as the seed. Properties:
//
//  1. ReadSamples never panics, whatever the bytes.
//  2. Anything it accepts survives a write→read→write cycle with
//     byte-identical CSV output: the canonical form is a fixed point,
//     which is the determinism guarantee cached artifacts rely on.
//     (One write→read hop may legitimately reduce precision — the
//     writer rounds to 12 significant digits — but 12 < 15, float64's
//     unique-decimal threshold, so the canonical form re-reads exactly.)
//  3. CalibrateFromSamples never panics on parsed samples; it may
//     reject them with an error, which is its job.
func FuzzReadSamples(f *testing.F) {
	corpus, err := os.ReadFile("../../cmd/energyd/testdata/samples.csv")
	if err != nil {
		f.Fatalf("reading seed corpus: %v", err)
	}
	f.Add(corpus)
	f.Add([]byte(""))
	f.Add([]byte("a,b,c\n1,2,3\n"))
	header := "core_mhz,core_mv,mem_mhz,mem_mv,sp,dp_fma,dp_add,dp_mul,int,shared_words,l1_words,l2_words,dram_words,time_s,energy_j\n"
	f.Add([]byte(header + "852,1030,924,1010,NaN,+Inf,-Inf,0x1p10,1_000,0,0,0,0,0.2,1.5\n"))
	f.Add([]byte(header + "852,1030,924,1010,4e9,0,0,0,1e8,0,0,0,5e7,0.2,notanumber\n"))
	f.Add([]byte(header))

	f.Fuzz(func(t *testing.T, data []byte) {
		samples, err := ReadSamples(bytes.NewReader(data))
		if err != nil {
			return // rejecting malformed input is correct behavior
		}
		var buf1 bytes.Buffer
		if err := WriteSamples(&buf1, samples); err != nil {
			t.Fatalf("WriteSamples on parsed samples: %v", err)
		}
		again, err := ReadSamples(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatalf("ReadSamples rejects WriteSamples output: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed sample count: %d -> %d", len(samples), len(again))
		}
		var buf2 bytes.Buffer
		if err := WriteSamples(&buf2, again); err != nil {
			t.Fatalf("WriteSamples on round-tripped samples: %v", err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("canonical CSV is not a fixed point:\nfirst:\n%s\nsecond:\n%s", buf1.Bytes(), buf2.Bytes())
		}
		// The cache path feeds parsed samples straight into the fitter;
		// errors are expected for non-campaign shapes, panics are not.
		if _, err := experiments.CalibrateFromSamples(samples); err != nil {
			return
		}
	})
}
