package export

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/stats"
	"dvfsroofline/internal/units"
)

func testSamples() []core.Sample {
	return []core.Sample{
		{
			Profile: counters.Profile{SP: 1e9, Int: 2e7, DRAMWords: 1e8},
			Setting: dvfs.MustSetting(852, 924),
			Time:    0.31, Energy: 2.71,
		},
		{
			Profile: counters.Profile{DPFMA: 5e8, SharedWords: 3e8, DRAMWords: 2e7},
			Setting: dvfs.MustSetting(396, 204),
			Time:    0.62, Energy: 3.42,
		},
	}
}

func TestSamplesRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := testSamples()
	if err := WriteSamples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost samples: %d vs %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Errorf("sample %d changed: %+v vs %+v", i, in[i], out[i])
		}
	}
}

func TestSamplesRoundTripPrecision(t *testing.T) {
	// Samples are serialized at 12 significant digits (%g). Measured
	// times and energies carry full float64 entropy, so the round trip
	// cannot be bit-exact — but every field must come back within 1 ulp
	// of 12 digits (rel. 5e-12), and the DVFS setting fields, which are
	// small integers in every rail table, must be exact.
	in := []core.Sample{
		{
			Profile: counters.Profile{
				SP: 1.23456789012345e9, DPFMA: 9.87654321098765e8,
				DPAdd: 1.11111111111111e7, DPMul: 2.22222222222222e7,
				Int: 0.333333333333333e9, SharedWords: 1e8 / 3,
				L1Words: 7.77777777777777e6, L2Words: 1 / 3e-8,
				DRAMWords: 2.99999999999999e7,
			},
			Setting: dvfs.MustSetting(852, 924),
			Time:    0.123456789012345,
			Energy:  2.71828182845905,
		},
		{
			Profile: counters.Profile{SP: 1e-30, DRAMWords: 1e30},
			Setting: dvfs.MustSetting(180, 204),
			Time:    1e-3 + 1e-15,
			Energy:  3.14159265358979,
		},
	}
	var buf bytes.Buffer
	if err := WriteSamples(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost samples: %d vs %d", len(out), len(in))
	}
	const rel = 5e-12
	closeEnough := func(a, b float64) bool {
		if a == b {
			return true
		}
		return math.Abs(a-b) <= rel*math.Max(math.Abs(a), math.Abs(b))
	}
	for i := range in {
		if in[i].Setting != out[i].Setting {
			t.Errorf("sample %d: setting changed: %+v vs %+v", i, in[i].Setting, out[i].Setting)
		}
		fields := []struct {
			name    string
			in, out float64
		}{
			{"SP", in[i].Profile.SP, out[i].Profile.SP},
			{"DPFMA", in[i].Profile.DPFMA, out[i].Profile.DPFMA},
			{"DPAdd", in[i].Profile.DPAdd, out[i].Profile.DPAdd},
			{"DPMul", in[i].Profile.DPMul, out[i].Profile.DPMul},
			{"Int", in[i].Profile.Int, out[i].Profile.Int},
			{"SharedWords", in[i].Profile.SharedWords, out[i].Profile.SharedWords},
			{"L1Words", in[i].Profile.L1Words, out[i].Profile.L1Words},
			{"L2Words", in[i].Profile.L2Words, out[i].Profile.L2Words},
			{"DRAMWords", in[i].Profile.DRAMWords, out[i].Profile.DRAMWords},
			{"Time", float64(in[i].Time), float64(out[i].Time)},
			{"Energy", float64(in[i].Energy), float64(out[i].Energy)},
		}
		for _, f := range fields {
			if !closeEnough(f.in, f.out) {
				t.Errorf("sample %d: %s = %.17g round-tripped to %.17g (rel err > %g)",
					i, f.name, f.in, f.out, rel)
			}
		}
	}
	// The setting columns of every calibration setting round-trip
	// exactly: all rail tables hold integral MHz and mV values.
	var all []core.Sample
	for _, cs := range dvfs.CalibrationSettings() {
		all = append(all, core.Sample{Setting: cs.Setting, Time: 1, Energy: 1,
			Profile: counters.Profile{DRAMWords: 1}})
	}
	buf.Reset()
	if err := WriteSamples(&buf, all); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if all[i].Setting != back[i].Setting {
			t.Errorf("calibration setting %d not exact after round trip: %+v vs %+v",
				i, all[i].Setting, back[i].Setting)
		}
	}
}

func TestSamplesFitAfterRoundTrip(t *testing.T) {
	// The exported dataset must be usable to re-fit the model, as the
	// paper's public dataset is.
	dev := experiments.Config{Seed: 7}
	_ = dev
	var samples []core.Sample
	// Build enough variety for a full-rank fit.
	for i, cs := range dvfs.CalibrationSettings() {
		p := counters.Profile{
			SP: float64(1+i) * 1e8, DPFMA: float64(16-i) * 1e7,
			Int: 5e7, SharedWords: float64(1+i%3) * 1e8,
			L2Words: 4e7, DRAMWords: float64(2+i%5) * 1e7,
		}
		m := core.Model{SPpJ: 27, DPpJ: 131, IntpJ: 56, SMpJ: 33, L2pJ: 85, DRAMpJ: 370,
			C1Proc: 2.7, C1Mem: 3.8, PMisc: 0.15}
		tm := units.Second(0.2 + 0.01*float64(i))
		samples = append(samples, core.Sample{
			Profile: p, Setting: cs.Setting, Time: tm,
			Energy: m.Predict(p, cs.Setting, tm),
		})
	}
	var buf bytes.Buffer
	if err := WriteSamples(&buf, samples); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Fit(back); err != nil {
		t.Fatalf("re-fit from exported CSV failed: %v", err)
	}
}

func TestReadSamplesErrors(t *testing.T) {
	if _, err := ReadSamples(strings.NewReader("")); err == nil {
		t.Error("empty CSV accepted")
	}
	if _, err := ReadSamples(strings.NewReader("a,b,c\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	bad := "core_mhz,core_mv,mem_mhz,mem_mv,sp,dp_fma,dp_add,dp_mul,int,shared_words,l1_words,l2_words,dram_words,time_s,energy_j\n" +
		"852,1030,924,1010,x,0,0,0,0,0,0,0,0,1,1\n"
	if _, err := ReadSamples(strings.NewReader(bad)); err == nil {
		t.Error("non-numeric cell accepted")
	}
}

func TestWriteTableI(t *testing.T) {
	rows := []experiments.TableIRow{{
		Type:    "T",
		Setting: dvfs.MustSetting(852, 924),
		Eps:     core.Eps{SP: 29, DP: 139.1, Int: 60, SM: 35.4, L2: 90.2, DRAM: 377, ConstPower: 6.8},
	}}
	var buf bytes.Buffer
	if err := WriteTableI(&buf, rows); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"type", "852", "377", "6.8", "T"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I CSV missing %q:\n%s", want, s)
		}
	}
	if lines := strings.Count(s, "\n"); lines != 2 {
		t.Errorf("Table I CSV has %d lines, want 2", lines)
	}
}

func TestWriteTableII(t *testing.T) {
	rows := []core.TableIIRow{{
		Family: "Single",
		Model:  core.StrategyStats{Cases: 25, Mispredictions: 0},
		Oracle: core.StrategyStats{Cases: 25, Mispredictions: 20, Lost: stats.Summarize([]float64{0.1, 0.2})},
	}}
	var buf bytes.Buffer
	if err := WriteTableII(&buf, rows); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if strings.Count(s, "\n") != 3 { // header + 2 strategy rows
		t.Errorf("Table II CSV line count wrong:\n%s", s)
	}
	if !strings.Contains(s, "time_oracle") || !strings.Contains(s, "Single") {
		t.Errorf("Table II CSV missing content:\n%s", s)
	}
}

func TestWriteFigure5(t *testing.T) {
	cases := []experiments.FMMCase{{
		Input:           experiments.FMMInput{ID: "F8", N: 65536, Q: 64},
		SettingID:       "S1",
		Setting:         dvfs.MaxSetting(),
		Time:            0.9,
		MeasuredEnergy:  7.2,
		PredictedEnergy: 7.0,
		RelErr:          0.028,
		PredictedParts:  core.Parts{DP: 0.3, Int: 0.2, SM: 0.1, Constant: 6.4},
	}}
	var buf bytes.Buffer
	if err := WriteFigure5(&buf, cases); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"S1", "F8", "65536", "7.2"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 5 CSV missing %q:\n%s", want, s)
		}
	}
}
