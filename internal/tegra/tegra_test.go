package tegra

import (
	"math"
	"testing"
	"testing/quick"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

func spWorkload(n float64) Workload {
	return Workload{Profile: counters.Profile{SP: n, DRAMWords: n / 1000}, Occupancy: 0.95}
}

func TestTableIEnergiesReproduced(t *testing.T) {
	// The ideal device must reproduce every per-op energy in Table I to
	// the table's printed precision (0.1 pJ). ε_op = ĉ0·V², evaluated by
	// running single-op-class workloads and dividing out the counts.
	d := NewIdealDevice()
	rows := []struct {
		coreMHz, memMHz                units.MegaHertz
		sp, dp, intg, sm, l2, mem, pw0 float64
	}{
		{852, 924, 29.0, 139.1, 60.0, 35.4, 90.2, 377.0, 6.8},
		{396, 924, 16.2, 77.7, 33.5, 19.8, 50.4, 377.0, 6.1},
		{852, 528, 29.0, 139.1, 60.0, 35.4, 90.2, 286.2, 6.3},
		{648, 528, 21.7, 103.8, 44.8, 26.4, 67.3, 286.2, 5.9},
		{396, 528, 16.2, 77.7, 33.5, 19.8, 50.4, 286.2, 5.6},
		{852, 204, 29.0, 139.1, 60.0, 35.4, 90.2, 236.5, 6.0},
		{648, 204, 21.7, 103.8, 44.8, 26.4, 67.3, 236.5, 5.6},
		{396, 204, 16.2, 77.7, 33.5, 19.8, 50.4, 236.5, 5.2},
		{756, 924, 24.7, 118.3, 51.0, 30.1, 76.7, 377.0, 6.6},
		{180, 528, 15.8, 75.7, 32.7, 19.3, 49.1, 286.2, 5.5},
		{540, 528, 19.3, 92.5, 39.9, 23.5, 59.9, 286.2, 5.8},
		{540, 204, 19.3, 92.5, 39.9, 23.5, 59.9, 236.5, 5.4},
		{756, 204, 24.7, 118.3, 51.0, 30.1, 76.7, 236.5, 5.8},
		{72, 68, 15.8, 75.7, 32.7, 19.3, 49.1, 236.5, 5.2},
		{756, 68, 24.7, 118.3, 51.0, 30.1, 76.7, 236.5, 5.8},
		{180, 924, 15.8, 75.7, 32.7, 19.3, 49.1, 377.0, 6.0},
	}
	const n = 1e9
	perOp := func(p counters.Profile, s dvfs.Setting) float64 {
		e := d.Execute(Workload{Profile: p, Occupancy: 0.95}, s)
		b := d.TrueBreakdown(e)
		return float64((b.Compute + b.Data) / n * 1e12) // pJ per op
	}
	for _, r := range rows {
		s := dvfs.MustSetting(r.coreMHz, r.memMHz)
		checks := []struct {
			name string
			prof counters.Profile
			want float64
		}{
			{"SP", counters.Profile{SP: n}, r.sp},
			{"DP", counters.Profile{DPFMA: n}, r.dp},
			{"Int", counters.Profile{Int: n}, r.intg},
			{"SM", counters.Profile{SharedWords: n}, r.sm},
			{"L2", counters.Profile{L2Words: n}, r.l2},
			{"Mem", counters.Profile{DRAMWords: n}, r.mem},
		}
		// Tolerance: Table I prints to 0.1 pJ / 0.1 W, and the published
		// rows are themselves inconsistent beyond ~0.05 pJ (they come from
		// the authors' own rounded fit), so half a printed unit is the
		// tightest defensible bound.
		for _, c := range checks {
			got := perOp(c.prof, s)
			if math.Abs(got-c.want) > 0.1 {
				t.Errorf("%v %s: ε = %.2f pJ, Table I says %.1f", s, c.name, got, c.want)
			}
		}
		// Constant power (ideal device: no thermal drift).
		e := d.Execute(Workload{Profile: counters.Profile{SP: n}, Occupancy: 0.95}, s)
		if got := e.ConstPower(); math.Abs(float64(got)-r.pw0) > 0.1 {
			t.Errorf("%v: constant power = %.2f W, Table I says %.1f", s, got, r.pw0)
		}
	}
}

func TestTimeScalesInverselyWithFrequency(t *testing.T) {
	d := NewIdealDevice()
	w := Workload{Profile: counters.Profile{SP: 1e9}, Occupancy: 1}
	fast := d.Execute(w, dvfs.MustSetting(852, 924))
	slow := d.Execute(w, dvfs.MustSetting(396, 924))
	ratio := float64(slow.Time / fast.Time)
	want := 852.0 / 396.0
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("compute-bound time ratio = %v, want %v", ratio, want)
	}
}

func TestDRAMBoundScalesWithMemFrequency(t *testing.T) {
	d := NewIdealDevice()
	w := Workload{Profile: counters.Profile{DRAMWords: 1e9}, Occupancy: 1}
	fast := d.Execute(w, dvfs.MustSetting(852, 924))
	slow := d.Execute(w, dvfs.MustSetting(852, 204))
	ratio := float64(slow.Time / fast.Time)
	want := 924.0 / 204.0
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("DRAM-bound time ratio = %v, want %v", ratio, want)
	}
	// And core frequency must not matter for a pure-DRAM stream.
	other := d.Execute(w, dvfs.MustSetting(72, 924))
	if math.Abs(float64(other.Time-fast.Time)) > 1e-15 {
		t.Error("DRAM-bound time depends on core frequency")
	}
}

func TestOccupancyStretchesTime(t *testing.T) {
	d := NewIdealDevice()
	s := dvfs.MustSetting(852, 924)
	full := d.Execute(Workload{Profile: counters.Profile{SP: 1e9}, Occupancy: 1}, s)
	quarter := d.Execute(Workload{Profile: counters.Profile{SP: 1e9}, Occupancy: 0.25}, s)
	if math.Abs(float64(quarter.Time/full.Time)-4) > 1e-9 {
		t.Errorf("quarter occupancy should run 4x slower, got %vx", quarter.Time/full.Time)
	}
}

func TestEnergyAdditivity(t *testing.T) {
	// Property (ideal device): dynamic energy is additive across op
	// classes — E(a+b) = E(a) + E(b) at fixed occupancy.
	d := NewIdealDevice()
	s := dvfs.MustSetting(540, 528)
	f := func(a, b uint32) bool {
		na, nb := float64(a%1e6)+1, float64(b%1e6)+1
		wa := Workload{Profile: counters.Profile{SP: na}, Occupancy: 0.9}
		wb := Workload{Profile: counters.Profile{DRAMWords: nb}, Occupancy: 0.9}
		wab := Workload{Profile: counters.Profile{SP: na, DRAMWords: nb}, Occupancy: 0.9}
		ba := d.TrueBreakdown(d.Execute(wa, s))
		bb := d.TrueBreakdown(d.Execute(wb, s))
		bab := d.TrueBreakdown(d.Execute(wab, s))
		sum := ba.Compute + ba.Data + bb.Compute + bb.Data
		got := bab.Compute + bab.Data
		return math.Abs(float64(sum-got)) < 1e-9*(1+float64(sum))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPowerTraceConsistentWithEnergy(t *testing.T) {
	// Integrating PowerAt numerically over the run must match TrueEnergy
	// (the sinusoidal ripple integrates to ~zero).
	d := NewDevice()
	w := Workload{Profile: counters.Profile{SP: 5e8, DRAMWords: 1e7}, Occupancy: 0.8}
	e := d.Execute(w, dvfs.MustSetting(852, 924))
	const steps = 200000
	dt := e.Time / steps
	var sum float64
	for i := 0; i < steps; i++ {
		sum += float64(e.PowerAt(units.Second(float64(i)+0.5) * dt))
	}
	integral := sum * float64(dt)
	if rel := math.Abs(integral-float64(e.TrueEnergy())) / float64(e.TrueEnergy()); rel > 0.002 {
		t.Errorf("trace integral %v vs TrueEnergy %v (rel %v)", integral, e.TrueEnergy(), rel)
	}
}

func TestIdlePowerOutsideRun(t *testing.T) {
	d := NewDevice()
	e := d.Execute(spWorkload(1e8), dvfs.MustSetting(852, 924))
	if p := e.PowerAt(e.Time + 1); p > e.ConstPower()*1.02 {
		t.Errorf("idle power %v exceeds constant power %v", p, e.ConstPower())
	}
	if p := e.PowerAt(-1); p > e.ConstPower()*1.02 {
		t.Errorf("pre-run power %v exceeds constant power %v", p, e.ConstPower())
	}
}

func TestNonIdealitiesRaiseEnergyAtLowOccupancy(t *testing.T) {
	d := NewDevice()
	s := dvfs.MustSetting(852, 924)
	p := counters.Profile{DPFMA: 1e8, Int: 2e8, DRAMWords: 1e7}
	lo := d.Execute(Workload{Profile: p, Occupancy: 0.25}, s)
	hi := d.Execute(Workload{Profile: p, Occupancy: 0.95}, s)
	// Same op counts: low occupancy must burn strictly more dynamic
	// energy (activity factor) on the non-ideal device.
	bLo := d.TrueBreakdown(lo)
	bHi := d.TrueBreakdown(hi)
	if bLo.Compute <= bHi.Compute {
		t.Errorf("low-occupancy compute energy %v should exceed high-occupancy %v", bLo.Compute, bHi.Compute)
	}
	// And the ideal device must not show this effect.
	ideal := NewIdealDevice()
	bLoI := ideal.TrueBreakdown(ideal.Execute(Workload{Profile: p, Occupancy: 0.25}, s))
	bHiI := ideal.TrueBreakdown(ideal.Execute(Workload{Profile: p, Occupancy: 0.95}, s))
	if math.Abs(float64(bLoI.Compute-bHiI.Compute)) > 1e-12 {
		t.Error("ideal device compute energy depends on occupancy")
	}
}

func TestBreakdownSumsToTrueEnergy(t *testing.T) {
	d := NewDevice()
	w := Workload{Profile: counters.Profile{DPFMA: 1e8, Int: 3e8, SharedWords: 1e8, L2Words: 3e7, DRAMWords: 1e7}, Occupancy: 0.5}
	e := d.Execute(w, dvfs.MustSetting(612, 528))
	b := d.TrueBreakdown(e)
	if rel := math.Abs(float64(b.Total()-e.TrueEnergy())) / float64(e.TrueEnergy()); rel > 1e-9 {
		t.Errorf("breakdown total %v != TrueEnergy %v", b.Total(), e.TrueEnergy())
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := []Workload{
		{Profile: counters.Profile{SP: 1}, Occupancy: 0},
		{Profile: counters.Profile{SP: 1}, Occupancy: 1.5},
		{Profile: counters.Profile{SP: -1}, Occupancy: 0.5},
		{Profile: counters.Profile{}, Occupancy: 0.5},
		{Profile: counters.Profile{SP: math.NaN()}, Occupancy: 0.5},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %d should be invalid", i)
		}
	}
	good := Workload{Profile: counters.Profile{SP: 1}, Occupancy: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
}

func TestExecutePanicsOnInvalidWorkload(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewDevice().Execute(Workload{}, dvfs.MaxSetting())
}

func TestDeterminism(t *testing.T) {
	d := NewDevice()
	w := Workload{Profile: counters.Profile{DPFMA: 12345, Int: 6789, DRAMWords: 321}, Occupancy: 0.42}
	s := dvfs.MustSetting(540, 528)
	a := d.Execute(w, s)
	b := d.Execute(w, s)
	if a.Time != b.Time || a.TrueEnergy() != b.TrueEnergy() {
		t.Error("device execution is not deterministic")
	}
}

func TestThrottledTrace(t *testing.T) {
	dev := NewDevice()
	w := Workload{Profile: counters.Profile{SP: 5e9, DRAMWords: 5e7}, Occupancy: 0.9}
	e := dev.Execute(w, dvfs.MustSetting(852, 924))

	// No windows: identical to the honest trace everywhere.
	same := e.ThrottledTrace(nil)
	for _, ts := range []units.Second{0, e.Time / 3, e.Time / 2, e.Time} {
		if same(ts) != e.PowerAt(ts) {
			t.Fatalf("empty-window trace differs from PowerAt at t=%g", ts)
		}
	}

	win := ThrottleWindow{Start: e.Time / 4, Duration: e.Time / 4, Factor: 0.3}
	tr := e.ThrottledTrace([]ThrottleWindow{win})
	inside := win.Start + win.Duration/2
	outside := win.Start + win.Duration + e.Time/8
	if tr(outside) != e.PowerAt(outside) {
		t.Error("trace altered outside the throttle window")
	}
	if got := tr(inside); got >= e.PowerAt(inside) {
		t.Errorf("power inside window %g not depressed (honest %g)", got, e.PowerAt(inside))
	}
	// Only dynamic power scales: ripple aside, the throttled level is
	// const + 0.3*dyn.
	ripple := 1 + 0.01*rippleAt(e, inside)
	want := float64(e.ConstPower()+0.3*(e.TruePower()-e.ConstPower())) * ripple
	if got := tr(inside); !closeTo(float64(got), want, 1e-9) {
		t.Errorf("throttled power %g, want %g", float64(tr(inside)), want)
	}
}

// rippleAt reproduces the trace's sinusoidal term for assertions.
func rippleAt(e Execution, t units.Second) float64 {
	return math.Sin(2 * math.Pi * e.rippleFreq * float64(t))
}

func closeTo(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*math.Max(math.Abs(a), math.Abs(b))
}
