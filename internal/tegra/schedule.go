package tegra

import "dvfsroofline/internal/units"

// Schedule is a sequence of executions run back to back on the device —
// how a phased application such as the FMM occupies the SoC. The
// PowerMon simulator samples a schedule's combined power trace exactly as
// it samples a single run's.
type Schedule struct {
	Execs []Execution
}

// Duration returns the total wall-clock time of the schedule.
func (s Schedule) Duration() units.Second {
	var d units.Second
	for _, e := range s.Execs {
		d += e.Time
	}
	return d
}

// PowerAt returns the instantaneous power at time t into the schedule.
// Before the start or after the end the device idles at the first/last
// segment's constant power.
func (s Schedule) PowerAt(t units.Second) units.Watt {
	if len(s.Execs) == 0 {
		return 0
	}
	if t < 0 {
		return s.Execs[0].PowerAt(-1)
	}
	for _, e := range s.Execs {
		if t < e.Time {
			return e.PowerAt(t)
		}
		t -= e.Time
	}
	last := s.Execs[len(s.Execs)-1]
	return last.PowerAt(last.Time + 1)
}

// TrueEnergy returns the closed-form total energy (for tests and
// oracles; the modeling pipeline uses PowerMon measurements).
func (s Schedule) TrueEnergy() units.Joule {
	var e units.Joule
	for _, x := range s.Execs {
		e += x.TrueEnergy()
	}
	return e
}
