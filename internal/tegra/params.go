package tegra

import "fmt"

// DeviceParams describes a SoC for the simulator, so analysts can apply
// the paper's methodology to platforms other than the Tegra K1 ("users
// can easily replicate our experiments on their own systems", §VI). The
// zero value is invalid; start from TK1Params and adjust.
type DeviceParams struct {
	// Per-op dynamic energy coefficients ĉ0, pJ per op per V².
	SPpJ, DPpJ, IntpJ, SharedpJ, L2pJ, DRAMpJ float64
	// Leakage coefficients in W/V and the operation-independent power.
	LeakProcWpV, LeakMemWpV, MiscW float64
	// Non-ideality knobs; zero values yield an ideal (exactly-linear)
	// device.
	ActivitySlope float64
	ThermalSlope  float64
	FreqSlope     float64
	MixJitterAmp  float64
	StallWatts    float64
}

// TK1Params returns the Tegra K1 ground truth used throughout the
// reproduction (DESIGN.md §5), including its default non-idealities.
func TK1Params() DeviceParams {
	t := defaultTruth
	return DeviceParams{
		SPpJ: t.sp, DPpJ: t.dp, IntpJ: t.intg,
		SharedpJ: t.shared, L2pJ: t.l2, DRAMpJ: t.dram,
		LeakProcWpV: t.leakProc, LeakMemWpV: t.leakMem, MiscW: t.misc,
		ActivitySlope: t.activitySlope, ThermalSlope: t.thermalSlope,
		FreqSlope: t.freqSlope, MixJitterAmp: t.mixJitterAmp, StallWatts: t.stallWatts,
	}
}

// Validate reports an error for physically meaningless parameters.
func (p DeviceParams) Validate() error {
	for name, v := range map[string]float64{
		"SPpJ": p.SPpJ, "DPpJ": p.DPpJ, "IntpJ": p.IntpJ,
		"SharedpJ": p.SharedpJ, "L2pJ": p.L2pJ, "DRAMpJ": p.DRAMpJ,
	} {
		if v <= 0 {
			return fmt.Errorf("tegra: %s must be positive, got %g", name, v)
		}
	}
	for name, v := range map[string]float64{
		"LeakProcWpV": p.LeakProcWpV, "LeakMemWpV": p.LeakMemWpV, "MiscW": p.MiscW,
		"ActivitySlope": p.ActivitySlope, "ThermalSlope": p.ThermalSlope,
		"MixJitterAmp": p.MixJitterAmp, "StallWatts": p.StallWatts,
	} {
		if v < 0 {
			return fmt.Errorf("tegra: %s must be non-negative, got %g", name, v)
		}
	}
	return nil
}

// NewCustomDevice builds a simulated device from explicit parameters.
func NewCustomDevice(p DeviceParams) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{truth: groundTruth{
		sp: p.SPpJ, dp: p.DPpJ, intg: p.IntpJ,
		shared: p.SharedpJ, l2: p.L2pJ, dram: p.DRAMpJ,
		leakProc: p.LeakProcWpV, leakMem: p.LeakMemWpV, misc: p.MiscW,
		activitySlope: p.ActivitySlope, thermalSlope: p.ThermalSlope,
		freqSlope: p.FreqSlope, mixJitterAmp: p.MixJitterAmp, stallWatts: p.StallWatts,
	}}, nil
}
