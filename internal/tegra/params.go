package tegra

import (
	"fmt"

	"dvfsroofline/internal/units"
)

// DeviceParams describes a SoC for the simulator, so analysts can apply
// the paper's methodology to platforms other than the Tegra K1 ("users
// can easily replicate our experiments on their own systems", §VI). The
// zero value is invalid; start from TK1Params and adjust.
type DeviceParams struct {
	// Per-op dynamic energy coefficients ĉ0.
	SPpJ, DPpJ, IntpJ, SharedpJ, L2pJ, DRAMpJ units.PicoJoulePerOpPerVoltSq
	// Leakage coefficients and the operation-independent power.
	LeakProcWpV, LeakMemWpV units.WattPerVolt
	MiscW                   units.Watt
	// Non-ideality knobs; zero values yield an ideal (exactly-linear)
	// device.
	ActivitySlope units.Ratio
	ThermalSlope  units.Ratio
	FreqSlope     units.Ratio
	MixJitterAmp  units.Ratio
	StallWatts    units.Watt
}

// TK1Params returns the Tegra K1 ground truth used throughout the
// reproduction (DESIGN.md §5), including its default non-idealities.
func TK1Params() DeviceParams {
	t := defaultTruth
	return DeviceParams{
		SPpJ:          units.PicoJoulePerOpPerVoltSq(t.sp),
		DPpJ:          units.PicoJoulePerOpPerVoltSq(t.dp),
		IntpJ:         units.PicoJoulePerOpPerVoltSq(t.intg),
		SharedpJ:      units.PicoJoulePerOpPerVoltSq(t.shared),
		L2pJ:          units.PicoJoulePerOpPerVoltSq(t.l2),
		DRAMpJ:        units.PicoJoulePerOpPerVoltSq(t.dram),
		LeakProcWpV:   units.WattPerVolt(t.leakProc),
		LeakMemWpV:    units.WattPerVolt(t.leakMem),
		MiscW:         units.Watt(t.misc),
		ActivitySlope: units.Ratio(t.activitySlope),
		ThermalSlope:  units.Ratio(t.thermalSlope),
		FreqSlope:     units.Ratio(t.freqSlope),
		MixJitterAmp:  units.Ratio(t.mixJitterAmp),
		StallWatts:    units.Watt(t.stallWatts),
	}
}

// Validate reports an error for physically meaningless parameters.
func (p DeviceParams) Validate() error {
	for name, v := range map[string]float64{
		"SPpJ": float64(p.SPpJ), "DPpJ": float64(p.DPpJ), "IntpJ": float64(p.IntpJ),
		"SharedpJ": float64(p.SharedpJ), "L2pJ": float64(p.L2pJ), "DRAMpJ": float64(p.DRAMpJ),
	} {
		if v <= 0 {
			return fmt.Errorf("tegra: %s must be positive, got %g", name, v)
		}
	}
	for name, v := range map[string]float64{
		"LeakProcWpV": float64(p.LeakProcWpV), "LeakMemWpV": float64(p.LeakMemWpV),
		"MiscW":         float64(p.MiscW),
		"ActivitySlope": float64(p.ActivitySlope), "ThermalSlope": float64(p.ThermalSlope),
		"MixJitterAmp": float64(p.MixJitterAmp), "StallWatts": float64(p.StallWatts),
	} {
		if v < 0 {
			return fmt.Errorf("tegra: %s must be non-negative, got %g", name, v)
		}
	}
	return nil
}

// NewCustomDevice builds a simulated device from explicit parameters.
func NewCustomDevice(p DeviceParams) (*Device, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Device{truth: groundTruth{
		sp: float64(p.SPpJ), dp: float64(p.DPpJ), intg: float64(p.IntpJ),
		shared: float64(p.SharedpJ), l2: float64(p.L2pJ), dram: float64(p.DRAMpJ),
		leakProc: float64(p.LeakProcWpV), leakMem: float64(p.LeakMemWpV), misc: float64(p.MiscW),
		activitySlope: float64(p.ActivitySlope), thermalSlope: float64(p.ThermalSlope),
		freqSlope: float64(p.FreqSlope), mixJitterAmp: float64(p.MixJitterAmp),
		stallWatts: float64(p.StallWatts),
	}}, nil
}
