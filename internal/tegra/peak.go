package tegra

import (
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/units"
)

// Achievable-peak analysis (paper §IV-C): the paper explains the FMM's
// low IPC by showing that, *given its instruction mix*, the best any
// implementation could achieve is bounded well below the machine's peak —
// "not all computation in the FMM translates to FMA instructions". This
// file computes that bound for an arbitrary operation profile.

// AchievableIPCFraction returns the highest fraction of the device's
// peak instruction throughput that a kernel with the given profile could
// sustain, assuming unlimited parallelism (no latency stalls): the mix
// is bound by its most contended pipe, so the attainable instructions
// per cycle are total instructions divided by the bottleneck pipe's
// cycle count, normalized by the SP peak issue rate.
//
// A pure SP stream returns 1.0. The paper's U-list analysis found its
// DP-heavy mix capped "slightly above 1/4 of the peak performance".
func AchievableIPCFraction(p counters.Profile) units.Ratio {
	instr := p.Instructions()
	if instr == 0 {
		return 0
	}
	// Cycles required by each issue pipe; the slowest pipe gates the run.
	cycles := maxOf(
		p.SP/SPPerCycle,
		(p.DPFMA+p.DPAdd+p.DPMul)/DPPerCycle,
		p.Int/IntPerCycle,
	)
	if cycles == 0 {
		return 0
	}
	ipc := instr / cycles
	return units.Ratio(ipc / SPPerCycle)
}

// BottleneckPipe names the compute pipe that gates a profile's issue
// rate: "sp", "dp" or "int".
func BottleneckPipe(p counters.Profile) string {
	sp := p.SP / SPPerCycle
	dp := (p.DPFMA + p.DPAdd + p.DPMul) / DPPerCycle
	in := p.Int / IntPerCycle
	switch {
	case dp >= sp && dp >= in:
		return "dp"
	case in >= sp:
		return "int"
	default:
		return "sp"
	}
}

func maxOf(xs ...float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
