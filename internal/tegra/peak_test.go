package tegra

import (
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
)

func TestAchievableIPCPureStreams(t *testing.T) {
	// A pure SP stream can reach peak; a pure DP stream only 8/192.
	if got := AchievableIPCFraction(counters.Profile{SP: 1e9}); math.Abs(float64(got)-1) > 1e-12 {
		t.Errorf("pure SP fraction = %v, want 1", got)
	}
	if got := AchievableIPCFraction(counters.Profile{DPFMA: 1e9}); math.Abs(float64(got)-DPPerCycle/SPPerCycle) > 1e-12 {
		t.Errorf("pure DP fraction = %v, want %v", got, DPPerCycle/SPPerCycle)
	}
	if got := AchievableIPCFraction(counters.Profile{Int: 1e9}); math.Abs(float64(got)-IntPerCycle/SPPerCycle) > 1e-12 {
		t.Errorf("pure int fraction = %v, want %v", got, IntPerCycle/SPPerCycle)
	}
	if AchievableIPCFraction(counters.Profile{}) != 0 {
		t.Error("empty profile should yield 0")
	}
}

func TestAchievableIPCMixedDPInt(t *testing.T) {
	// The paper's U-list regime: a DP kernel with ~60% integer overhead.
	// DP gates the run; integer instructions issue alongside, lifting the
	// total IPC above the DP pipe's alone but far below SP peak.
	p := counters.Profile{DPFMA: 4e8, Int: 6e8}
	got := AchievableIPCFraction(p)
	// cycles = 4e8/8 = 5e7; instr = 1e9; IPC = 20; fraction = 20/192.
	want := 20.0 / 192.0
	if math.Abs(float64(got)-want) > 1e-12 {
		t.Errorf("mixed fraction = %v, want %v", got, want)
	}
	if BottleneckPipe(p) != "dp" {
		t.Errorf("bottleneck = %s, want dp", BottleneckPipe(p))
	}
}

func TestBottleneckPipe(t *testing.T) {
	cases := []struct {
		p    counters.Profile
		want string
	}{
		{counters.Profile{SP: 1e9, Int: 1e6}, "sp"},
		{counters.Profile{Int: 1e9, SP: 1e6}, "int"},
		{counters.Profile{DPFMA: 1e8, Int: 1e8, SP: 1e8}, "dp"},
	}
	for i, c := range cases {
		if got := BottleneckPipe(c.p); got != c.want {
			t.Errorf("case %d: bottleneck = %s, want %s", i, got, c.want)
		}
	}
}

func TestAchievableIPCConsistentWithExecute(t *testing.T) {
	// The analysis must agree with the simulator's timing model: at
	// occupancy 1 with no memory bottleneck, attained IPC fraction
	// equals the achievable fraction.
	p := counters.Profile{DPFMA: 2e8, Int: 3e8, SP: 1e8}
	d := NewIdealDevice()
	e := d.Execute(Workload{Profile: p, Occupancy: 1}, mustMax())
	cycles := float64(e.Time) * float64(mustMax().Core.FreqHz())
	attained := p.Instructions() / cycles / SPPerCycle
	want := AchievableIPCFraction(p)
	if math.Abs(attained-float64(want)) > 1e-12 {
		t.Errorf("attained fraction %v vs achievable %v", attained, want)
	}
}

func mustMax() dvfs.Setting { return dvfs.MaxSetting() }
