package tegra

import (
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
)

func TestTK1ParamsRoundTrip(t *testing.T) {
	// A device built from TK1Params must behave identically to
	// NewDevice().
	custom, err := NewCustomDevice(TK1Params())
	if err != nil {
		t.Fatal(err)
	}
	stock := NewDevice()
	w := Workload{
		Profile:   counters.Profile{DPFMA: 1e8, Int: 2e8, SharedWords: 5e7, DRAMWords: 1e7},
		Occupancy: 0.4,
	}
	s := dvfs.MustSetting(540, 528)
	a := stock.Execute(w, s)
	b := custom.Execute(w, s)
	if a.Time != b.Time || a.TrueEnergy() != b.TrueEnergy() {
		t.Errorf("custom TK1 differs from stock: T %v vs %v, E %v vs %v",
			a.Time, b.Time, a.TrueEnergy(), b.TrueEnergy())
	}
}

func TestCustomDeviceScalesEnergy(t *testing.T) {
	// Doubling every dynamic coefficient doubles dynamic energy but not
	// time.
	p := TK1Params()
	p.ActivitySlope, p.ThermalSlope, p.FreqSlope, p.MixJitterAmp, p.StallWatts = 0, 0, 0, 0, 0
	base, err := NewCustomDevice(p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.SPpJ *= 2
	p2.DPpJ *= 2
	p2.IntpJ *= 2
	p2.SharedpJ *= 2
	p2.L2pJ *= 2
	p2.DRAMpJ *= 2
	hot, err := NewCustomDevice(p2)
	if err != nil {
		t.Fatal(err)
	}
	w := Workload{Profile: counters.Profile{DPFMA: 1e9, DRAMWords: 1e8}, Occupancy: 0.9}
	s := dvfs.MaxSetting()
	a, b := base.Execute(w, s), hot.Execute(w, s)
	if a.Time != b.Time {
		t.Error("dynamic coefficients must not affect time")
	}
	da := base.TrueBreakdown(a)
	db := hot.TrueBreakdown(b)
	if math.Abs(float64(db.Compute-2*da.Compute)) > 1e-12*float64(da.Compute) ||
		math.Abs(float64(db.Data-2*da.Data)) > 1e-12*float64(da.Data) {
		t.Error("doubled coefficients did not double dynamic energy")
	}
}

func TestCustomDeviceValidation(t *testing.T) {
	good := TK1Params()
	if err := good.Validate(); err != nil {
		t.Errorf("TK1 params invalid: %v", err)
	}
	bad := good
	bad.DPpJ = 0
	if _, err := NewCustomDevice(bad); err == nil {
		t.Error("zero DP coefficient accepted")
	}
	bad = good
	bad.MiscW = -1
	if _, err := NewCustomDevice(bad); err == nil {
		t.Error("negative misc power accepted")
	}
	bad = good
	bad.StallWatts = -0.1
	if _, err := NewCustomDevice(bad); err == nil {
		t.Error("negative stall watts accepted")
	}
}

func TestCustomDeviceFitsItsOwnTableI(t *testing.T) {
	// Build a hypothetical more-efficient SoC and verify EpsAt-style
	// reasoning transfers: per-op energy at a setting equals c0·V².
	p := TK1Params()
	p.ActivitySlope, p.ThermalSlope, p.FreqSlope, p.MixJitterAmp, p.StallWatts = 0, 0, 0, 0, 0
	p.SPpJ = 10
	p.DRAMpJ = 100
	dev, err := NewCustomDevice(p)
	if err != nil {
		t.Fatal(err)
	}
	s := dvfs.MustSetting(756, 792)
	const n = 1e9
	e := dev.Execute(Workload{Profile: counters.Profile{SP: n}, Occupancy: 0.95}, s)
	b := dev.TrueBreakdown(e)
	wantSP := 10 * float64(s.Core.Volts()) * float64(s.Core.Volts()) // pJ per op
	if got := float64(b.Compute+b.Data) / n * 1e12; math.Abs(got-wantSP) > 1e-9 {
		t.Errorf("custom SP ε = %v pJ, want %v", got, wantSP)
	}
}
