package tegra

import (
	"math"
	"testing"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

func testSchedule() (Schedule, *Device) {
	dev := NewDevice()
	s := dvfs.MustSetting(852, 924)
	w1 := Workload{Profile: counters.Profile{DPFMA: 5e8}, Occupancy: 0.3}
	w2 := Workload{Profile: counters.Profile{DRAMWords: 2e8}, Occupancy: 0.9}
	return Schedule{Execs: []Execution{dev.Execute(w1, s), dev.Execute(w2, s)}}, dev
}

func TestScheduleDuration(t *testing.T) {
	sched, _ := testSchedule()
	want := sched.Execs[0].Time + sched.Execs[1].Time
	if math.Abs(float64(sched.Duration()-want)) > 1e-15 {
		t.Errorf("Duration = %v, want %v", sched.Duration(), want)
	}
}

func TestSchedulePowerSegments(t *testing.T) {
	sched, _ := testSchedule()
	t0 := sched.Execs[0].Time
	// Inside segment 1.
	if got, want := sched.PowerAt(t0/2), sched.Execs[0].PowerAt(t0/2); got != want {
		t.Errorf("segment 1 power %v, want %v", got, want)
	}
	// Inside segment 2 (offset by segment 1's duration).
	dt := sched.Execs[1].Time / 2
	if got, want := sched.PowerAt(t0+dt), sched.Execs[1].PowerAt(dt); got != want {
		t.Errorf("segment 2 power %v, want %v", got, want)
	}
	// Before and after: idle at constant power, never dynamic.
	if p := sched.PowerAt(-1); p > sched.Execs[0].ConstPower()*1.02 {
		t.Errorf("pre-run power %v too high", p)
	}
	after := sched.PowerAt(sched.Duration() + 1)
	if after > sched.Execs[1].ConstPower()*1.02 {
		t.Errorf("post-run power %v too high", after)
	}
}

func TestScheduleTrueEnergyAdds(t *testing.T) {
	sched, _ := testSchedule()
	want := sched.Execs[0].TrueEnergy() + sched.Execs[1].TrueEnergy()
	if math.Abs(float64(sched.TrueEnergy()-want)) > 1e-12 {
		t.Errorf("TrueEnergy = %v, want %v", sched.TrueEnergy(), want)
	}
}

func TestScheduleEmpty(t *testing.T) {
	var s Schedule
	if s.Duration() != 0 || s.TrueEnergy() != 0 || s.PowerAt(1) != 0 {
		t.Error("empty schedule should be all zeros")
	}
}

func TestScheduleTraceIntegratesToEnergy(t *testing.T) {
	sched, _ := testSchedule()
	const steps = 400000
	dt := sched.Duration() / steps
	var sum float64
	for i := 0; i < steps; i++ {
		sum += float64(sched.PowerAt(units.Second(float64(i)+0.5) * dt))
	}
	integral := sum * float64(dt)
	if rel := math.Abs(integral-float64(sched.TrueEnergy())) / float64(sched.TrueEnergy()); rel > 0.005 {
		t.Errorf("trace integral %v vs TrueEnergy %v (rel %v)", integral, sched.TrueEnergy(), rel)
	}
}
