// Package tegra simulates the NVIDIA Jetson TK1's Tegra K1 SoC — the
// hardware platform of the paper — at the fidelity the energy-modeling
// methodology needs. The paper's experiments require a device that (a)
// executes a workload characterized by instruction and memory-traffic
// counts under any DVFS setting, (b) takes time governed by
// roofline-style throughput limits, and (c) dissipates power following
// the classic CMOS dynamic + leakage equations (paper Eqs. 1–4).
//
// The simulator's ground-truth constants are *hidden* from the modeling
// pipeline: they were reverse-engineered from the paper's Table I (see
// DESIGN.md §5) so that a correct NNLS instantiation of Eq. 9 recovers
// the paper's published per-operation energies. On top of the ideal
// linear model the device adds deterministic non-idealities — an
// occupancy-dependent activity factor and a temperature-dependent
// leakage drift — so that, as on real silicon, the fitted linear model
// carries honest residual error.
//
// Substitution note (DESIGN.md §2): this package replaces the physical
// Jetson TK1 board. Nothing in the calibration, validation or autotuning
// pipeline reads the ground truth directly; they observe the device only
// through simulated PowerMon measurements, exactly as the paper's
// analysts observed theirs.
package tegra

import (
	"fmt"
	"math"

	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/units"
)

// Architectural throughput constants of the Tegra K1's single Kepler SMX,
// in operations (or 32-bit words) per clock cycle.
const (
	SPPerCycle  = 192.0 // 192 CUDA cores, 1 SP FMA each per cycle
	DPPerCycle  = 8.0   // DP throughput is 1/24 of SP (paper §II-B)
	IntPerCycle = 160.0 // integer ALUs share issue slots with FP
	// On-chip word throughput per cycle (32-bit words). L1 and shared
	// memory share one 64 KB SRAM on Kepler, but shared memory's banked
	// access sustains higher throughput.
	SharedWordsPerCycle = 64.0
	L1WordsPerCycle     = 32.0
	L2WordsPerCycle     = 16.0
	// DRAM: 64-bit LPDDR3, double data rate -> 16 B/cycle of EMC clock.
	DRAMWordsPerCycle = 4.0
)

// groundTruth holds the hidden physical constants of the device. The
// values reproduce the paper's Table I exactly under the ideal model
// (DESIGN.md §5).
type groundTruth struct {
	// Dynamic-energy coefficients ĉ0 in pJ per operation per V².
	sp, dp, intg, shared, l2, dram float64
	// Leakage coefficients c1 in W per V, and operation-independent power.
	leakProc, leakMem, misc float64
	// Non-ideality knobs. All are zero on the ideal device; each models a
	// physical effect the paper's linear Eq. 9 cannot capture, so the
	// fitted model carries honest residuals like it does on real silicon.
	activitySlope float64 // switching-activity dependence on occupancy
	thermalSlope  float64 // leakage dependence on dynamic power (heating)
	freqSlope     float64 // per-op energy drift with clock frequency
	// mixJitterAmp: per-kernel switching-activity idiosyncrasy. Two
	// kernels with identical counted op mixes still toggle different
	// datapaths (unrolling, operand values, register pressure), so their
	// true energy differs by a few percent in a way no count-based model
	// can express. Modeled as a deterministic pseudo-random factor keyed
	// on the workload's op-mix ratios.
	mixJitterAmp float64
	// stallWatts: clock-gating imperfection — stalled pipelines keep
	// toggling, drawing power proportional to (1 - occupancy), scaled by
	// V²·f. Negligible for the saturating microbenchmarks, significant
	// for a low-IPC application like the FMM (§IV-C underutilization).
	stallWatts float64
}

var defaultTruth = groundTruth{
	sp: 27.35, dp: 131.08, intg: 56.55, shared: 33.36, l2: 85.00, dram: 369.57,
	leakProc: 2.70, leakMem: 3.80, misc: 0.15,
	activitySlope: 0.060, thermalSlope: 0.040,
	freqSlope: 0.10, stallWatts: 0.65, mixJitterAmp: 0.06,
}

// Reference frequencies (the top of each DVFS ladder) used to normalize
// the frequency-dependent non-idealities.
const (
	refCoreHz = 852e6
	refMemHz  = 924e6
)

// Device is a simulated Tegra K1. The zero value is not usable; create
// devices with NewDevice.
type Device struct {
	truth groundTruth
}

// NewDevice returns a simulated Tegra K1 with the default ground truth.
func NewDevice() *Device {
	return &Device{truth: defaultTruth}
}

// NewIdealDevice returns a device without the occupancy and thermal
// non-idealities: its behaviour follows the paper's Eq. 9 exactly. Tests
// use it to verify that the modeling pipeline is unbiased.
func NewIdealDevice() *Device {
	t := defaultTruth
	t.activitySlope = 0
	t.thermalSlope = 0
	t.freqSlope = 0
	t.stallWatts = 0
	t.mixJitterAmp = 0
	return &Device{truth: t}
}

// Workload describes one kernel execution: its operation profile plus an
// occupancy factor in (0, 1] giving the fraction of peak issue throughput
// the kernel's instruction-level parallelism can sustain. The paper's
// microbenchmarks run near 1.0; its FMM phases run near 0.25 (§IV-C:
// "our code delivers less than a quarter of [peak] IPC").
type Workload struct {
	Profile   counters.Profile
	Occupancy units.Ratio
}

// Validate reports an error for physically meaningless workloads.
func (w Workload) Validate() error {
	if w.Occupancy <= 0 || w.Occupancy > 1 {
		return fmt.Errorf("tegra: occupancy %g outside (0, 1]", float64(w.Occupancy))
	}
	p := w.Profile
	for _, v := range []float64{p.SP, p.DPFMA, p.DPAdd, p.DPMul, p.Int,
		p.SharedWords, p.L1Words, p.L2Words, p.DRAMWords} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("tegra: invalid profile count %g", v)
		}
	}
	if p.Instructions() == 0 && p.Accesses() == 0 {
		return fmt.Errorf("tegra: empty workload")
	}
	return nil
}

// Execution is the result of running a workload on the device at one DVFS
// setting. Time is exact; power is exposed as an instantaneous trace for
// the PowerMon simulator to sample. TrueEnergy integrates the trace in
// closed form and exists for tests and oracle baselines — the modeling
// pipeline must not use it.
type Execution struct {
	Setting  dvfs.Setting
	Workload Workload
	Time     units.Second

	dynPower   float64 // W, constant over the run
	constPower float64 // W, constant power during the run (incl. thermal drift)
	ripple     float64 // relative amplitude of the supply ripple
	rippleFreq float64 // Hz; an integer number of periods fits in Time
}

// Execute runs w at setting s and returns the resulting execution record.
// It panics on invalid workloads, which indicate programming errors in
// the experiment harness.
func (d *Device) Execute(w Workload, s dvfs.Setting) Execution {
	if err := w.Validate(); err != nil {
		panic(err)
	}
	t := d.truth
	p := w.Profile

	// --- Time: roofline over compute and each memory level. ---
	fc := float64(s.Core.FreqHz())
	fm := float64(s.Mem.FreqHz())
	occ := float64(w.Occupancy)
	// The Kepler SMX dual-issues across its SP, DP and integer pipes, so
	// compute time is a roofline over the per-pipe cycle counts rather
	// than their sum.
	computeCycles := math.Max(p.SP/SPPerCycle,
		math.Max((p.DPFMA+p.DPAdd+p.DPMul)/DPPerCycle, p.Int/IntPerCycle))
	tCompute := computeCycles / (fc * occ)
	tShared := p.SharedWords / (SharedWordsPerCycle * fc * occ)
	tL1 := p.L1Words / (L1WordsPerCycle * fc * occ)
	tL2 := p.L2Words / (L2WordsPerCycle * fc * occ)
	// DRAM streams are prefetched deeply enough that occupancy matters
	// less; apply half the penalty.
	dramOcc := math.Min(1, occ*1.5)
	tDRAM := p.DRAMWords / (DRAMWordsPerCycle * fm * dramOcc)
	time := math.Max(tCompute, math.Max(math.Max(tShared, tL1), math.Max(tL2, tDRAM)))

	// --- Dynamic energy (shared with TrueBreakdown). ---
	compute, data := d.dynamicEnergy(w, s)
	eDyn := compute + data

	// Non-ideality 3: imperfectly gated stalled pipelines draw power for
	// the whole run, proportional to the unused issue bandwidth.
	vc := float64(s.Core.Volts())
	stall := t.stallWatts * (1 - occ) * vc * vc * (fc / refCoreHz)

	dynPower := eDyn/time + stall

	// Constant power per Eq. 8.
	constPower := t.leakProc*vc + t.leakMem*float64(s.Mem.Volts()) + t.misc
	// Non-ideality 2: leakage grows with die temperature, which tracks
	// dynamic power; normalized against a ~10 W envelope.
	constPower *= 1 + t.thermalSlope*dynPower/10.0

	// Supply ripple near 50 Hz, adjusted so that an integer number of
	// periods fits in the run: the ripple then contributes exactly zero
	// net energy and TrueEnergy stays in closed form.
	periods := math.Max(1, math.Round(50*time))
	return Execution{
		Setting:    s,
		Workload:   w,
		Time:       units.Second(time),
		dynPower:   dynPower,
		constPower: constPower,
		ripple:     0.01,
		rippleFreq: periods / time,
	}
}

// PowerAt returns the instantaneous power draw at time t into the run.
// Outside [0, Time] the device idles at constant power. A small 50 Hz
// supply ripple keeps the trace from being trivially flat, as on the
// real board's unregulated rail.
func (e Execution) PowerAt(t units.Second) units.Watt {
	base := e.constPower
	if t >= 0 && t < e.Time {
		base += e.dynPower
	}
	return units.Watt(base * (1 + e.ripple*math.Sin(2*math.Pi*e.rippleFreq*float64(t))))
}

// ThrottleWindow is an interval of a run during which thermal
// throttling depresses the device's dynamic power. The fault-injection
// layer (internal/faults) schedules windows; the simulator only applies
// them to the trace, since throttling is a property of the silicon, not
// of the meter.
type ThrottleWindow struct {
	Start    units.Second // offset into the run
	Duration units.Second
	Factor   units.Ratio // dynamic power multiplier inside the window, in [0, 1]
}

// ThrottledTrace returns the run's power trace with the given throttle
// windows applied: inside a window the dynamic power is scaled by the
// window's factor, while constant power (leakage does not gate) and the
// supply ripple are unchanged. With no windows it returns PowerAt
// itself.
func (e Execution) ThrottledTrace(windows []ThrottleWindow) func(t units.Second) units.Watt {
	if len(windows) == 0 {
		return e.PowerAt
	}
	ws := append([]ThrottleWindow(nil), windows...)
	return func(t units.Second) units.Watt {
		base := e.constPower
		if t >= 0 && t < e.Time {
			dyn := e.dynPower
			for _, w := range ws {
				if t >= w.Start && t < w.Start+w.Duration {
					dyn *= float64(w.Factor)
					break
				}
			}
			base += dyn
		}
		return units.Watt(base * (1 + e.ripple*math.Sin(2*math.Pi*e.rippleFreq*float64(t))))
	}
}

// TrueEnergy returns the exact energy of the run (the integral of the
// trace over [0, Time], with the zero-mean ripple integrating away). It
// exists for tests and for the experiment harness's "measured minimum"
// oracle; the modeling pipeline sees only PowerMon samples.
func (e Execution) TrueEnergy() units.Joule {
	return units.Joule((e.dynPower + e.constPower) * float64(e.Time))
}

// TruePower returns the exact mean power of the run.
func (e Execution) TruePower() units.Watt { return units.Watt(e.dynPower + e.constPower) }

// ConstPower returns the run's operation-independent power (leakage
// plus miscellaneous, including the thermal drift).
func (e Execution) ConstPower() units.Watt { return units.Watt(e.constPower) }

// Breakdown decomposes the run's true energy the way the paper's Figure 7
// does: computation instructions, data movement, and constant power.
type Breakdown struct {
	Compute  units.Joule // SP + DP + integer instructions
	Data     units.Joule // shared + L1 + L2 + DRAM traffic
	Constant units.Joule // constant power x time
}

// Total returns the summed energy of the breakdown.
func (b Breakdown) Total() units.Joule { return b.Compute + b.Data + b.Constant }

// dynamicEnergy returns the exact compute- and data-movement energy (J)
// of a workload at a setting, including the activity and frequency
// non-idealities (zero on the ideal device).
func (d *Device) dynamicEnergy(w Workload, s dvfs.Setting) (compute, data float64) {
	t := d.truth
	p := w.Profile
	vp := float64(s.Core.Volts())
	vm := float64(s.Mem.Volts())
	vp2 := vp * vp
	vm2 := vm * vm
	const pJ = 1e-12

	compute = (p.SP*t.sp + (p.DPFMA+p.DPAdd+p.DPMul)*t.dp + p.Int*t.intg) * vp2 * pJ
	// L1 hits are charged at the shared-memory cost: on Kepler both live
	// in the same 64 KB SRAM (the paper's Table I has no separate L1
	// column for the same reason).
	dataProc := ((p.SharedWords+p.L1Words)*t.shared + p.L2Words*t.l2) * vp2 * pJ
	dataMem := p.DRAMWords * t.dram * vm2 * pJ

	// Non-ideality 1: the switching activity factor rises slightly for
	// poorly pipelined (low-occupancy) kernels — replayed issues and
	// register re-fetches burn energy the linear model cannot see.
	activity := 1 + t.activitySlope*(0.95-float64(w.Occupancy)) + t.mixJitterAmp*mixJitter(p)
	// Non-ideality 2: per-op energy drifts mildly with clock frequency
	// (short-circuit currents), so ε is not exactly ĉ·V² — the linear
	// model's extrapolation to unseen frequencies carries error.
	procDrift := 1 + t.freqSlope*(float64(s.Core.FreqHz())/refCoreHz-0.5)
	memDrift := 1 + t.freqSlope*(float64(s.Mem.FreqHz())/refMemHz-0.5)

	compute *= activity * procDrift
	data = dataProc*activity*procDrift + dataMem*activity*memDrift
	return compute, data
}

// TrueBreakdown returns the device's exact energy decomposition for e.
// Like TrueEnergy it is an oracle for tests and figures, not an input to
// the model fit. The stall-power non-ideality is accounted under
// Constant, where a power meter would see it.
func (d *Device) TrueBreakdown(e Execution) Breakdown {
	compute, data := d.dynamicEnergy(e.Workload, e.Setting)
	return Breakdown{
		Compute:  units.Joule(compute),
		Data:     units.Joule(data),
		Constant: e.TrueEnergy() - units.Joule(compute) - units.Joule(data),
	}
}

// PeakIPC returns the device's peak instructions per cycle for a pure-SP
// instruction stream; exposed for the underutilization analysis of the
// paper's §IV-C.
func PeakIPC() units.PerCycle { return SPPerCycle }

// mixJitter maps a workload's op-mix ratios to a deterministic
// pseudo-random value in [-1, 1]. Workloads with the same mix always get
// the same value (it is a property of the kernel, not of the run), and
// scaling every count equally leaves it unchanged.
func mixJitter(p counters.Profile) float64 {
	tot := p.Instructions() + p.Accesses()
	if tot == 0 {
		return 0
	}
	x := 13.37*(p.SP/tot) + 7.91*((p.DPFMA+p.DPAdd+p.DPMul)/tot) + 5.53*(p.Int/tot) +
		3.17*(p.SharedWords/tot) + 2.71*(p.L1Words/tot) + 1.93*(p.L2Words/tot) +
		1.41*(p.DRAMWords/tot)
	return math.Sin(97.0 * x)
}
