// Package cli factors out the scaffolding every cmd/* binary used to
// duplicate: the uniform flag set (-seed, -workers, -csv, -cache),
// logger and device construction, the calibration cache on top of
// internal/export, tabwriter setup, and fatal-error plumbing. Keeping it
// here means a new experiment command is a main() of table-printing
// code and nothing else.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"text/tabwriter"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/export"
	"dvfsroofline/internal/faults"
	"dvfsroofline/internal/tegra"
)

// App carries the flag values shared by every experiment command.
type App struct {
	Name        string
	Seed        int64
	Workers     int
	CSVDir      string
	Cache       string
	FaultSpec   string
	MinCoverage float64

	faultPlan faults.Plan // parsed from FaultSpec by Validate
	lastPct   int         // progress milestone tracker
}

// New registers the uniform flags on the default flag set and configures
// the standard logger. Commands add their own flags afterwards and then
// call Parse.
func New(name string) *App {
	return NewOn(name, flag.CommandLine)
}

// NewOn registers the uniform flags on an explicit flag set, for
// commands with subcommands (each subcommand owns a flag.FlagSet but
// shares the uniform -seed/-workers/-faults/... vocabulary). The caller
// parses the set itself and then calls Validate.
func NewOn(name string, fs *flag.FlagSet) *App {
	a := &App{Name: name, lastPct: -1}
	fs.Int64Var(&a.Seed, "seed", 42, "seed for measurement noise and experiment randomness")
	fs.IntVar(&a.Workers, "workers", 0, "experiment pipeline parallelism (0 = GOMAXPROCS)")
	fs.StringVar(&a.CSVDir, "csv", "", "directory to write CSV artifacts (empty disables)")
	fs.StringVar(&a.Cache, "cache", "", "calibration sample cache file: loaded when present, written after a fresh calibration")
	fs.StringVar(&a.FaultSpec, "faults", "", "fault-injection plan, e.g. \"disconnect=0.1,spike=0.02,seed=7\" (see internal/faults)")
	fs.Float64Var(&a.MinCoverage, "min-coverage", 1.0, "calibration sample coverage floor in (0,1]; below 1 quarantines failing samples instead of aborting")
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	return a
}

// Parse parses the command line and validates the uniform flags,
// exiting with usage on a bad value.
func (a *App) Parse() {
	flag.Parse()
	if err := a.Validate(); err != nil {
		fmt.Fprintf(flag.CommandLine.Output(), "%s: %v\n", a.Name, err)
		flag.Usage()
		os.Exit(2)
	}
}

// Validate checks the uniform flag values without exiting (exposed for
// tests; Parse calls it).
func (a *App) Validate() error {
	if a.Workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 = GOMAXPROCS)", a.Workers)
	}
	if a.Seed <= 0 {
		return fmt.Errorf("invalid -seed %d: must be positive", a.Seed)
	}
	if a.MinCoverage <= 0 || a.MinCoverage > 1 {
		return fmt.Errorf("invalid -min-coverage %g: must be in (0, 1]", a.MinCoverage)
	}
	plan, err := faults.ParsePlan(a.FaultSpec)
	if err != nil {
		return fmt.Errorf("invalid -faults: %w", err)
	}
	a.faultPlan = plan
	return nil
}

// Device returns the simulated Jetson TK1 every command runs against.
func (a *App) Device() *tegra.Device { return tegra.NewDevice() }

// Config builds the experiment configuration from the parsed flags,
// wiring pipeline progress to stderr at quarter milestones.
func (a *App) Config() experiments.Config {
	return experiments.Config{
		Seed:        a.Seed,
		Workers:     a.Workers,
		OnProgress:  a.reportProgress,
		Faults:      a.faultPlan,
		MinCoverage: a.MinCoverage,
	}
}

// reportProgress logs long-running pipeline stages at 25% steps.
func (a *App) reportProgress(p experiments.Progress) {
	if p.Total < 100 {
		return
	}
	pct := 100 * p.Done / p.Total
	if pct/25 > a.lastPct/25 || p.Done == p.Total && a.lastPct != 100 {
		a.lastPct = pct
		log.Printf("%s: %d/%d", p.Stage, p.Done, p.Total)
	}
	if p.Done == p.Total {
		a.lastPct = -1
	}
}

// Check aborts the command on a non-nil error.
func (a *App) Check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// Calibrate returns the model calibration, going through the -cache file
// when one is configured: an existing cache is loaded and refitted
// (skipping the measurement campaign entirely); otherwise a fresh
// campaign runs and its samples are written back to the cache path. A
// stale or malformed cache is reported and ignored.
func (a *App) Calibrate(ctx context.Context, dev *tegra.Device) (*experiments.Calibration, error) {
	if a.Cache != "" {
		cal, err := LoadCalibration(a.Cache)
		switch {
		case err == nil:
			log.Printf("refitted from %d cached samples in %s", len(cal.Samples), a.Cache)
			return cal, nil
		case !errors.Is(err, fs.ErrNotExist):
			log.Printf("ignoring cache %s: %v", a.Cache, err)
		}
	}
	cal, err := experiments.Calibrate(ctx, dev, a.Config())
	if err != nil {
		return nil, err
	}
	if !cal.Coverage.Complete() {
		log.Printf("degraded calibration: %d/%d samples measured (%.1f%% coverage), %d quarantined, %d retries",
			cal.Coverage.Measured, cal.Coverage.Total, 100*cal.Coverage.Fraction(),
			len(cal.Coverage.Quarantined), cal.Coverage.Retried)
	}
	if a.Cache != "" {
		if !cal.Coverage.Complete() {
			// A partial campaign holds zeroed samples in quarantined
			// slots; caching it would silently poison later refits.
			log.Printf("not caching partial calibration to %s", a.Cache)
		} else if err := SaveSamples(a.Cache, cal.Samples); err != nil {
			log.Printf("could not write cache %s: %v", a.Cache, err)
		} else {
			log.Printf("cached %d calibration samples to %s", len(cal.Samples), a.Cache)
		}
	}
	return cal, nil
}

// LoadCalibration reads a calibration sample CSV (as written by
// export.WriteSamples, the -csv flag of fitmodel, or a previous -cache
// run) and rebuilds the full calibration from it.
func LoadCalibration(path string) (*experiments.Calibration, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples, err := export.ReadSamples(f)
	if err != nil {
		return nil, fmt.Errorf("cli: reading %s: %w", path, err)
	}
	return experiments.CalibrateFromSamples(samples)
}

// SaveSamples writes calibration samples as CSV to path.
func SaveSamples(path string, samples []core.Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := export.WriteSamples(f, samples); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Table returns a tabwriter on stdout with the formatting every command
// table uses; pass tabwriter.AlignRight for numeric tables or 0 for
// left-aligned ones.
func Table(flags uint) *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', flags)
}

// WriteArtifact writes one CSV artifact into the -csv directory and logs
// the path; it is a no-op when the flag is unset.
func (a *App) WriteArtifact(name string, fn func(io.Writer) error) error {
	if a.CSVDir == "" {
		return nil
	}
	path := filepath.Join(a.CSVDir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
