package cli

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"testing"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
)

// modelsClose compares fitted constants with a tolerance covering the
// CSV round trip: samples are serialized at 12 significant digits, so a
// refit must agree to far better than 1e-6 relative.
func modelsClose(t *testing.T, got, want *core.Model) {
	t.Helper()
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"SPpJ", float64(got.SPpJ), float64(want.SPpJ)}, {"DPpJ", float64(got.DPpJ), float64(want.DPpJ)},
		{"IntpJ", float64(got.IntpJ), float64(want.IntpJ)}, {"SMpJ", float64(got.SMpJ), float64(want.SMpJ)},
		{"L2pJ", float64(got.L2pJ), float64(want.L2pJ)}, {"DRAMpJ", float64(got.DRAMpJ), float64(want.DRAMpJ)},
		{"C1Proc", float64(got.C1Proc), float64(want.C1Proc)}, {"C1Mem", float64(got.C1Mem), float64(want.C1Mem)},
		{"PMisc", float64(got.PMisc), float64(want.PMisc)},
	}
	for _, p := range pairs {
		if diff := math.Abs(p.got - p.want); diff > 1e-6*(1+math.Abs(p.want)) {
			t.Errorf("%s = %v, want %v (diff %g)", p.name, p.got, p.want, diff)
		}
	}
}

func testCfg() experiments.Config {
	return experiments.Config{Seed: 42, BenchTargetTime: 0.1}
}

func TestSaveLoadCalibrationRoundTrip(t *testing.T) {
	dev := tegra.NewDevice()
	cal, err := experiments.Calibrate(context.Background(), dev, testCfg())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "samples.csv")
	if err := SaveSamples(path, cal.Samples); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCalibration(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Samples) != len(cal.Samples) {
		t.Fatalf("loaded %d samples, want %d", len(loaded.Samples), len(cal.Samples))
	}
	modelsClose(t, loaded.Model, cal.Model)
	// Validation statistics must survive the round trip as well.
	if d := math.Abs(loaded.Holdout.Summary.Mean - cal.Holdout.Summary.Mean); d > 1e-9 {
		t.Errorf("holdout mean drifted by %g across the cache round trip", d)
	}
	if d := math.Abs(loaded.KFold.Summary.Mean - cal.KFold.Summary.Mean); d > 1e-9 {
		t.Errorf("16-fold mean drifted by %g across the cache round trip", d)
	}
}

func TestLoadCalibrationMissingFile(t *testing.T) {
	_, err := LoadCalibration(filepath.Join(t.TempDir(), "absent.csv"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("got %v, want a does-not-exist error", err)
	}
	// Calibrate distinguishes "no cache yet" from "malformed cache" with
	// errors.Is, which must keep working even if the path error is
	// wrapped along the way (os.IsNotExist would not).
	if wrapped := fmt.Errorf("loading cache: %w", err); !errors.Is(wrapped, fs.ErrNotExist) {
		t.Errorf("wrapped error %v lost the not-exist sentinel", wrapped)
	}
}

func TestLoadCalibrationMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.csv")
	if err := os.WriteFile(path, []byte("this,is,not\na,sample,file\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCalibration(path)
	if err == nil {
		t.Fatal("malformed cache accepted")
	}
	if os.IsNotExist(err) {
		t.Error("malformed cache misreported as missing")
	}
}

// TestAppCalibrateCachePopulatesAndReuses drives App.Calibrate the way
// the cmd/* binaries do: the first call measures and writes the cache,
// the second loads it and must agree with the fresh fit.
func TestAppCalibrateCachePopulatesAndReuses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cache.csv")
	app := &App{Name: "test", Seed: 42, Cache: path, lastPct: -1}
	dev := tegra.NewDevice()

	fresh, err := app.Calibrate(context.Background(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("cache not written: %v", err)
	}
	cached, err := app.Calibrate(context.Background(), dev)
	if err != nil {
		t.Fatal(err)
	}
	modelsClose(t, cached.Model, fresh.Model)
}

func TestAppValidate(t *testing.T) {
	valid := func() *App {
		return &App{Name: "test", Seed: 42, Workers: 0, MinCoverage: 1.0}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*App)
	}{
		{"negative workers", func(a *App) { a.Workers = -1 }},
		{"zero seed", func(a *App) { a.Seed = 0 }},
		{"negative seed", func(a *App) { a.Seed = -7 }},
		{"zero coverage", func(a *App) { a.MinCoverage = 0 }},
		{"coverage above one", func(a *App) { a.MinCoverage = 1.01 }},
		{"bad fault spec", func(a *App) { a.FaultSpec = "dropout=nope" }},
		{"out-of-range fault", func(a *App) { a.FaultSpec = "spike=2" }},
	}
	for _, c := range cases {
		a := valid()
		c.mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", c.name, a)
		}
	}
}

func TestAppConfigCarriesFaultPlan(t *testing.T) {
	a := &App{Name: "test", Seed: 42, MinCoverage: 0.95, FaultSpec: "disconnect=0.1,seed=3"}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	cfg := a.Config()
	if cfg.MinCoverage != 0.95 {
		t.Errorf("MinCoverage = %g, want 0.95", cfg.MinCoverage)
	}
	if cfg.Faults.MeterDisconnect != 0.1 || cfg.Faults.Seed != 3 {
		t.Errorf("fault plan not threaded through: %+v", cfg.Faults)
	}
}
