package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/fleet"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// maxBodyBytes bounds request bodies; profiles are a handful of numbers.
const maxBodyBytes = 1 << 20

// ProfileJSON is the wire form of an operation profile: every field is
// an operation or word count for one kernel execution. Field names
// match the calibration CSV columns, so a row of samples.csv maps
// directly onto a request body. The unit types marshal exactly like the
// raw floats they replaced, so no wire byte moved.
type ProfileJSON struct {
	SP          units.Count `json:"sp,omitempty"`           // single-precision flop count
	DPFMA       units.Count `json:"dp_fma,omitempty"`       // double-precision FMA count
	DPAdd       units.Count `json:"dp_add,omitempty"`       // double-precision add count
	DPMul       units.Count `json:"dp_mul,omitempty"`       // double-precision mul count
	Int         units.Count `json:"int,omitempty"`          // integer instruction count
	SharedWords units.Count `json:"shared_words,omitempty"` // shared-memory words
	L1Words     units.Count `json:"l1_words,omitempty"`     // L1 words
	L2Words     units.Count `json:"l2_words,omitempty"`     // L2 words
	DRAMWords   units.Count `json:"dram_words,omitempty"`   // DRAM words
}

func (p ProfileJSON) profile() counters.Profile {
	return counters.Profile{
		SP:    float64(p.SP),
		DPFMA: float64(p.DPFMA), DPAdd: float64(p.DPAdd), DPMul: float64(p.DPMul),
		Int:         float64(p.Int),
		SharedWords: float64(p.SharedWords), L1Words: float64(p.L1Words),
		L2Words: float64(p.L2Words), DRAMWords: float64(p.DRAMWords),
	}
}

// SettingJSON selects a DVFS setting by its two frequencies; voltages
// follow from the board's tables, as on the real Tegra K1.
type SettingJSON struct {
	CoreMHz units.MegaHertz `json:"core_mhz"`
	MemMHz  units.MegaHertz `json:"mem_mhz"`
}

// SettingInfo is the wire form of a resolved setting.
type SettingInfo struct {
	CoreMHz units.MegaHertz `json:"core_mhz"`
	CoreMV  units.MilliVolt `json:"core_mv"`
	MemMHz  units.MegaHertz `json:"mem_mhz"`
	MemMV   units.MilliVolt `json:"mem_mv"`
}

func settingInfo(s dvfs.Setting) SettingInfo {
	return SettingInfo{
		CoreMHz: s.Core.FreqMHz, CoreMV: s.Core.VoltageMV,
		MemMHz: s.Mem.FreqMHz, MemMV: s.Mem.VoltageMV,
	}
}

// PredictRequest asks for the Eq. 9 energy of one operation profile at
// one DVFS setting. The setting comes either as explicit frequencies or
// as a named ID ("S1".."S8" from Table IV, or "max"). When time_s is
// zero the execution time is simulated on the device at the requested
// occupancy (default 0.25, the paper's FMM operating point).
type PredictRequest struct {
	Profile   ProfileJSON  `json:"profile"`
	Setting   *SettingJSON `json:"setting,omitempty"`
	SettingID string       `json:"setting_id,omitempty"`
	TimeS     units.Second `json:"time_s,omitempty"`
	Occupancy units.Ratio  `json:"occupancy,omitempty"`
}

// PartsJSON decomposes a prediction by component, in joules.
type PartsJSON struct {
	SP       units.Joule `json:"sp"`
	DP       units.Joule `json:"dp"`
	Int      units.Joule `json:"int"`
	SM       units.Joule `json:"sm"`
	L2       units.Joule `json:"l2"`
	DRAM     units.Joule `json:"dram"`
	Constant units.Joule `json:"constant"`
	Compute  units.Joule `json:"compute"`
	Data     units.Joule `json:"data"`
}

func partsJSON(p core.Parts) PartsJSON {
	return PartsJSON{
		SP: p.SP, DP: p.DP, Int: p.Int, SM: p.SM, L2: p.L2, DRAM: p.DRAM,
		Constant: p.Constant, Compute: p.Compute(), Data: p.Data(),
	}
}

// PredictResponse is the answer to a /v1/predict request.
type PredictResponse struct {
	Setting     SettingInfo  `json:"setting"`
	TimeS       units.Second `json:"time_s"`
	PredictedJ  units.Joule  `json:"predicted_j"`
	Parts       PartsJSON    `json:"parts"`
	ConstPowerW units.Watt   `json:"const_power_w"`
}

// predictOn answers one predict request against one device's simulator
// and calibration. Every failure is a client error (bad setting,
// invalid workload), so callers map a non-nil error to a 400.
//
//energylint:hotpath
func (s *Server) predictOn(n *fleet.Node, req PredictRequest) (PredictResponse, error) {
	setting, err := s.resolveSetting(req.Setting, req.SettingID)
	if err != nil {
		return PredictResponse{}, err
	}
	prof := req.Profile.profile()
	t := req.TimeS
	if t == 0 {
		wl := tegra.Workload{Profile: prof, Occupancy: occupancyOrDefault(req.Occupancy)}
		if err := wl.Validate(); err != nil {
			return PredictResponse{}, err
		}
		t = n.Dev.Execute(wl, setting).Time
	} else if t < 0 {
		//energylint:allow hotalloc(client-error exit, not the per-request success path)
		return PredictResponse{}, fmt.Errorf("negative time_s %g", t)
	}
	parts := n.Cal().Model.PredictParts(prof, setting, t)
	return PredictResponse{
		Setting:     settingInfo(setting),
		TimeS:       t,
		PredictedJ:  parts.Total(),
		Parts:       partsJSON(parts),
		ConstPowerW: n.Cal().Model.ConstPower(setting),
	}, nil
}

//energylint:hotpath
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	node := s.reg.Route(predictKey(req))
	if node == nil {
		writeError(w, http.StatusServiceUnavailable, "no active device in the fleet")
		return
	}
	release := node.Acquire()
	defer release()
	resp, err := s.predictOn(node, req)
	if err != nil {
		writeErrorDev(w, http.StatusBadRequest, err.Error(), node.ID)
		return
	}
	markDevice(w, node.ID)
	writeJSON(w, http.StatusOK, &resp)
}

// predictKey canonicalizes a predict request for routing: two identical
// requests land on the same device, whose answer for them is fully
// deterministic. The encoding is strconv appends into one preallocated
// buffer — the bytes must stay identical to the original fmt-based
// encoding (%g == AppendFloat 'g', -1, 64), because the key feeds the
// consistent-hash ring and a byte change remaps every cached sweep; see
// TestPredictKeyBytes.
//
//energylint:hotpath
func predictKey(req PredictRequest) string {
	p := req.Profile
	b := make([]byte, 0, 192)
	b = append(b, "p id="...)
	b = append(b, req.SettingID...)
	b = append(b, " t="...)
	b = strconv.AppendFloat(b, float64(req.TimeS), 'g', -1, 64)
	b = append(b, " occ="...)
	b = strconv.AppendFloat(b, float64(req.Occupancy), 'g', -1, 64)
	if req.Setting != nil {
		b = append(b, " core="...)
		b = strconv.AppendFloat(b, float64(req.Setting.CoreMHz), 'g', -1, 64)
		b = append(b, " mem="...)
		b = strconv.AppendFloat(b, float64(req.Setting.MemMHz), 'g', -1, 64)
	}
	fields := [...]struct {
		label string
		v     units.Count
	}{
		{" sp=", p.SP}, {" fma=", p.DPFMA}, {" add=", p.DPAdd},
		{" mul=", p.DPMul}, {" int=", p.Int}, {" sm=", p.SharedWords},
		{" l1=", p.L1Words}, {" l2=", p.L2Words}, {" dram=", p.DRAMWords},
	}
	for _, f := range fields {
		b = append(b, f.label...)
		b = strconv.AppendFloat(b, float64(f.v), 'g', -1, 64)
	}
	return string(b)
}

// AutotuneRequest asks for the energy-optimal (f_core, f_mem) pair for
// one workload. grid selects the candidate set: "calibration" (default,
// the paper's 16 measured settings) or "full" (all 105 permutations).
// timeout_s bounds the sweep; it combines with the server-wide cap and
// the client's connection lifetime, whichever ends first.
type AutotuneRequest struct {
	Profile   ProfileJSON  `json:"profile"`
	Occupancy units.Ratio  `json:"occupancy,omitempty"`
	Grid      string       `json:"grid,omitempty"`
	TimeoutS  units.Second `json:"timeout_s,omitempty"`
}

// PickJSON reports one strategy's choice over the sweep.
type PickJSON struct {
	Setting    SettingInfo  `json:"setting"`
	TimeS      units.Second `json:"time_s"`
	PredictedJ units.Joule  `json:"predicted_j"`
	MeasuredJ  units.Joule  `json:"measured_j"`
}

// AutotuneResponse is the answer to a /v1/autotune request. Extra-energy
// percentages are relative to the measured-minimum candidate, matching
// the paper's Table II "energy lost" definition. Degraded marks an
// answer served stale from the cache while the sweep breaker was open.
type AutotuneResponse struct {
	Grid                 string        `json:"grid"`
	Candidates           int           `json:"candidates"`
	Cached               bool          `json:"cached"`
	Degraded             bool          `json:"degraded"`
	Model                PickJSON      `json:"model"`
	TimeOracle           PickJSON      `json:"time_oracle"`
	MeasuredMin          PickJSON      `json:"measured_min"`
	ModelExtraEnergyPct  units.Percent `json:"model_extra_energy_pct"`
	OracleExtraEnergyPct units.Percent `json:"oracle_extra_energy_pct"`
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	gridName := req.Grid
	if gridName == "" {
		gridName = "calibration"
	}
	wl := tegra.Workload{Profile: req.Profile.profile(), Occupancy: occupancyOrDefault(req.Occupancy)}

	// Sweep traffic routes to the healthiest device in ring order from
	// the workload's hash: cache-affine when the primary is up, a
	// deterministic neighbor when its breaker is open.
	node, _ := s.reg.RouteHealthy(workloadKey(gridName, wl))
	if node == nil {
		writeError(w, http.StatusServiceUnavailable, "no active device in the fleet")
		return
	}
	release := node.Acquire()
	defer release()
	markDevice(w, node.ID)

	grid, ok := node.Grids[gridName]
	if !ok {
		writeErrorDev(w, http.StatusBadRequest, fmt.Sprintf("unknown grid %q (want \"calibration\" or \"full\")", gridName), node.ID)
		return
	}
	if err := wl.Validate(); err != nil {
		writeErrorDev(w, http.StatusBadRequest, err.Error(), node.ID)
		return
	}

	// The request deadline propagates into the sweep pipeline: client
	// disconnects and timeouts cancel the in-flight forEach between
	// units of work.
	timeout := s.timeout
	if req.TimeoutS > 0 && time.Duration(float64(req.TimeoutS)*float64(time.Second)) < timeout {
		timeout = time.Duration(float64(req.TimeoutS) * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := autotuneKey(gridName, wl, node.Cfg.Seed)
	if !node.Breaker.Allow() {
		// Degraded mode: the breaker is open, so no fresh sweep runs.
		// A stale cached sweep is still exactly the answer a fresh one
		// would give (sweeps are deterministic in the key), so serve it
		// flagged; with nothing cached there is nothing safe to say.
		if val, ok := node.Cache.Get(key); ok {
			s.metrics.cacheHit(node.ID)
			s.metrics.degradedHit(node.ID)
			resp := scoreSweep(node.Cal().Model, gridName, val.([]core.Candidate))
			resp.Cached = true
			resp.Degraded = true
			s.metrics.addAnsweredJoules(node.ID, float64(resp.Model.MeasuredJ))
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeErrorDev(w, http.StatusServiceUnavailable, "sweep breaker open and no cached sweep for this workload", node.ID)
		return
	}
	// The Allow above may hold the breaker's single half-open probe
	// slot; every exit below must settle it exactly once. The deferred
	// release is the backstop for a panicking sweep unwinding through
	// this handler — without it the probe slot leaks and the breaker
	// never admits another probe.
	settled := false
	defer func() {
		if !settled {
			node.Breaker.Release()
		}
	}()
	val, hit, err := node.Cache.Do(ctx, key, func() (any, error) {
		cands, err := experiments.SweepWorkload(ctx, node.Dev, node.Cfg, wl, grid)
		if err != nil {
			return nil, err
		}
		return cands, nil
	})
	switch {
	case hit:
		s.metrics.cacheHit(node.ID)
		node.Breaker.Release() // no sweep ran; free any half-open probe slot
	case errors.Is(err, fleet.ErrShared), errors.Is(err, fleet.ErrWaiterAbandoned):
		// Waiter outcomes: another request's sweep failed, or this
		// waiter's context ended first. Neither says anything about a
		// sweep this request ran, so the probe slot is released, not
		// scored — and the owner already fed the breaker its verdict.
		node.Breaker.Release()
	case err == nil:
		s.metrics.cacheMiss(node.ID)
		node.Breaker.Success()
		var sweep units.Joule
		for _, c := range val.([]core.Candidate) {
			sweep += c.MeasuredEnergy
		}
		s.metrics.addSweepJoules(node.ID, float64(sweep))
		// Only this branch ran a fresh measured sweep; cached and shared
		// results re-score old bytes and carry no drift signal.
		s.observeSweep(node, val.([]core.Candidate))
	case errors.Is(err, context.Canceled):
		// This request's own cancellation says nothing about the sweep
		// path's health, so it carries no signal either way — but the
		// probe slot must still be freed.
		s.metrics.cacheMiss(node.ID)
		node.Breaker.Release()
	default:
		s.metrics.cacheMiss(node.ID)
		node.Breaker.Failure()
	}
	settled = true
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeErrorDev(w, http.StatusGatewayTimeout, "sweep deadline exceeded", node.ID)
		case errors.Is(err, context.Canceled):
			writeErrorDev(w, http.StatusServiceUnavailable, "sweep cancelled", node.ID)
		default:
			writeErrorDev(w, http.StatusInternalServerError, err.Error(), node.ID)
		}
		return
	}
	resp := scoreSweep(node.Cal().Model, gridName, val.([]core.Candidate))
	resp.Cached = hit
	s.metrics.addAnsweredJoules(node.ID, float64(resp.Model.MeasuredJ))
	writeJSON(w, http.StatusOK, resp)
}

// scoreSweep runs the three pickers of §II-E over one finished sweep.
// Scoring is pure arithmetic over the cached candidates, so re-running
// it at serve time keeps the cache value model-independent.
func scoreSweep(m *core.Model, gridName string, cands []core.Candidate) *AutotuneResponse {
	pick := func(i int) PickJSON {
		c := cands[i]
		return PickJSON{
			Setting:    settingInfo(c.Setting),
			TimeS:      c.Time,
			PredictedJ: m.Predict(c.Profile, c.Setting, c.Time),
			MeasuredJ:  c.MeasuredEnergy,
		}
	}
	model := pick(m.PickModelMinEnergy(cands))
	oracle := pick(core.PickTimeOracle(cands))
	best := pick(core.PickMeasuredMin(cands))
	extra := func(p PickJSON) units.Percent {
		if best.MeasuredJ == 0 {
			return 0
		}
		return units.Percent(100 * (p.MeasuredJ - best.MeasuredJ) / best.MeasuredJ)
	}
	return &AutotuneResponse{
		Grid:                 gridName,
		Candidates:           len(cands),
		Model:                model,
		TimeOracle:           oracle,
		MeasuredMin:          best,
		ModelExtraEnergyPct:  extra(model),
		OracleExtraEnergyPct: extra(oracle),
	}
}

// autotuneKey canonicalizes a sweep request for one device's cache. Two
// requests with the same key are guaranteed to produce identical sweeps
// (the measurement noise is seeded by setting identity and the device's
// campaign seed alone).
func autotuneKey(grid string, wl tegra.Workload, seed int64) string {
	return fmt.Sprintf("g=%s occ=%g seed=%d %s", grid, wl.Occupancy, seed, profileKey(wl.Profile))
}

// workloadKey canonicalizes a sweep request for routing: the
// device-independent part of autotuneKey, so the same workload hashes
// to the same device no matter which device ends up serving it.
func workloadKey(grid string, wl tegra.Workload) string {
	return fmt.Sprintf("g=%s occ=%g %s", grid, wl.Occupancy, profileKey(wl.Profile))
}

func profileKey(p counters.Profile) string {
	return fmt.Sprintf("sp=%g fma=%g add=%g mul=%g int=%g sm=%g l1=%g l2=%g dram=%g",
		p.SP, p.DPFMA, p.DPAdd, p.DPMul, p.Int,
		p.SharedWords, p.L1Words, p.L2Words, p.DRAMWords)
}

// CalibrationResponse summarizes one device's loaded calibration: the
// fitted constants, Table I, and the §II-D validation statistics.
// DeviceID is absent in single-device mode, keeping the legacy JSON
// bytes unchanged.
type CalibrationResponse struct {
	DeviceID string         `json:"device_id,omitempty"`
	Samples  int            `json:"samples"`
	Model    ModelJSON      `json:"model"`
	TableI   []TableIRow    `json:"table_i"`
	Holdout  CVSummaryJSON  `json:"holdout"`
	KFold    CVSummaryJSON  `json:"kfold_16"`
	Grids    map[string]int `json:"grids"`
}

// ModelJSON is the wire form of the fitted Eq. 9 constants. Dynamic
// coefficients are pJ/V², leakage coefficients W/V, PMisc plain watts —
// the JSON names carry the same unit tags so external analysts cannot
// confuse the V²-scaled and V-linear terms.
type ModelJSON struct {
	SPpJ   units.PicoJoulePerOpPerVoltSq `json:"sp_pj_v2"`
	DPpJ   units.PicoJoulePerOpPerVoltSq `json:"dp_pj_v2"`
	IntpJ  units.PicoJoulePerOpPerVoltSq `json:"int_pj_v2"`
	SMpJ   units.PicoJoulePerOpPerVoltSq `json:"sm_pj_v2"`
	L2pJ   units.PicoJoulePerOpPerVoltSq `json:"l2_pj_v2"`
	DRAMpJ units.PicoJoulePerOpPerVoltSq `json:"dram_pj_v2"`
	C1Proc units.WattPerVolt             `json:"c1_proc_w_v"` // W/V, processor leakage
	C1Mem  units.WattPerVolt             `json:"c1_mem_w_v"`  // W/V, memory leakage
	PMisc  units.Watt                    `json:"p_misc_w"`    // W, operation-independent
}

// TableIRow is one derived row of the paper's Table I.
type TableIRow struct {
	Type    string               `json:"type"`
	Setting SettingInfo          `json:"setting"`
	SPpJ    units.PicoJoulePerOp `json:"sp_pj"`
	DPpJ    units.PicoJoulePerOp `json:"dp_pj"`
	IntpJ   units.PicoJoulePerOp `json:"int_pj"`
	SMpJ    units.PicoJoulePerOp `json:"sm_pj"`
	L2pJ    units.PicoJoulePerOp `json:"l2_pj"`
	DRAMpJ  units.PicoJoulePerOp `json:"dram_pj"`
	ConstW  units.Watt           `json:"const_w"`
}

// CVSummaryJSON reports validation relative errors in percent.
type CVSummaryJSON struct {
	N      int           `json:"n"`
	Mean   units.Percent `json:"mean_pct"`
	Stddev units.Percent `json:"stddev_pct"`
	Min    units.Percent `json:"min_pct"`
	Max    units.Percent `json:"max_pct"`
}

// deviceParam picks the node a GET request addresses: the ?device=
// query parameter when present, the fleet's first device (sorted by ID;
// the single node in legacy mode) otherwise.
func (s *Server) deviceParam(r *http.Request) (*fleet.Node, error) {
	id := r.URL.Query().Get("device")
	if id == "" {
		nodes := s.reg.Nodes()
		if len(nodes) == 0 {
			return nil, fmt.Errorf("no devices in the fleet")
		}
		return nodes[0], nil
	}
	n, ok := s.reg.Get(id)
	if !ok {
		return nil, fmt.Errorf("unknown device %q", id)
	}
	return n, nil
}

func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	node, err := s.deviceParam(r)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if node.Cal() == nil {
		writeErrorDev(w, http.StatusServiceUnavailable, fmt.Sprintf("device %q is still calibrating", node.ID), node.ID)
		return
	}
	markDevice(w, node.ID)
	m := node.Cal().Model
	resp := CalibrationResponse{
		DeviceID: node.ID,
		Samples:  len(node.Cal().Samples),
		Model: ModelJSON{
			SPpJ: m.SPpJ, DPpJ: m.DPpJ, IntpJ: m.IntpJ, SMpJ: m.SMpJ,
			L2pJ: m.L2pJ, DRAMpJ: m.DRAMpJ,
			C1Proc: m.C1Proc, C1Mem: m.C1Mem, PMisc: m.PMisc,
		},
		Holdout: cvSummary(node.Cal().Holdout),
		KFold:   cvSummary(node.Cal().KFold),
		Grids:   map[string]int{},
	}
	for name, grid := range node.Grids {
		resp.Grids[name] = len(grid)
	}
	for _, row := range node.Cal().TableI() {
		resp.TableI = append(resp.TableI, TableIRow{
			Type: row.Type, Setting: settingInfo(row.Setting),
			SPpJ: row.Eps.SP, DPpJ: row.Eps.DP, IntpJ: row.Eps.Int,
			SMpJ: row.Eps.SM, L2pJ: row.Eps.L2, DRAMpJ: row.Eps.DRAM,
			ConstW: row.Eps.ConstPower,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func cvSummary(r core.CVResult) CVSummaryJSON {
	p := r.Percent()
	return CVSummaryJSON{
		N:    p.N,
		Mean: units.Percent(p.Mean), Stddev: units.Percent(p.Stddev),
		Min: units.Percent(p.Min), Max: units.Percent(p.Max),
	}
}

// handleHealthz is liveness only: the process is up and holds
// calibrations. It stays 200 in degraded mode so orchestrators do not
// restart a daemon that is usefully serving stale answers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.legacy {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"samples": len(s.reg.Nodes()[0].Cal().Samples),
		})
		return
	}
	samples := 0
	for _, n := range s.reg.Nodes() {
		if cal := n.Cal(); cal != nil {
			samples += len(cal.Samples)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"devices": s.reg.Len(),
		"samples": samples,
	})
}

// handleReadyz is readiness. Legacy mode keeps its historic contract:
// 503 while the single device's breaker is open. Fleet mode reports
// per-state device counts and fails readiness only when zero devices
// are active — a fleet with one healthy member out of fifty is still a
// fleet worth routing to, and open breakers alone mean degraded cached
// serving, not unreadiness.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.legacy {
		node := s.reg.Nodes()[0]
		state, _ := node.Breaker.Snapshot()
		code := http.StatusOK
		status := "ready"
		if state == fleet.BreakerOpen {
			code = http.StatusServiceUnavailable
			status = "degraded"
		}
		writeJSON(w, code, map[string]any{
			"status":   status,
			"breaker":  state.String(),
			"samples":  len(node.Cal().Samples),
			"coverage": node.Cal().Coverage.Fraction(),
		})
		return
	}
	open := 0
	states := make(map[string]int)
	devices := make([]deviceReadiness, 0, s.reg.Len())
	for _, n := range s.reg.Nodes() {
		state, _ := n.Breaker.Snapshot()
		if state == fleet.BreakerOpen {
			open++
		}
		samples := 0
		var coverage units.Ratio
		if cal := n.Cal(); cal != nil {
			samples = len(cal.Samples)
			coverage = units.Ratio(cal.Coverage.Fraction())
		}
		states[n.State().String()]++
		devices = append(devices, deviceReadiness{
			DeviceID: n.ID,
			State:    n.State().String(),
			Breaker:  state.String(),
			Samples:  samples,
			Coverage: coverage,
		})
	}
	active := len(s.reg.Active())
	code := http.StatusOK
	status := "ready"
	if active == 0 {
		code = http.StatusServiceUnavailable
		status = "no-active-devices"
	}
	writeJSON(w, code, map[string]any{
		"status":  status,
		"epoch":   s.reg.Epoch(),
		"active":  active,
		"open":    open,
		"states":  states,
		"devices": devices,
	})
}

// deviceReadiness is one device's row in the fleet /readyz body.
type deviceReadiness struct {
	DeviceID string      `json:"device_id"`
	State    string      `json:"state"`
	Breaker  string      `json:"breaker"`
	Samples  int         `json:"samples"`
	Coverage units.Ratio `json:"coverage"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeText(w)

	// Per-device gauges. The legacy node's empty ID prints the historic
	// unlabeled lines, so single-device scrape output is byte-identical.
	deviceLine := func(name, id string, v any) {
		if id == "" {
			fmt.Fprintf(w, "%s %v\n", name, v)
		} else {
			fmt.Fprintf(w, "%s{device=%q} %v\n", name, id, v)
		}
	}
	nodes := s.reg.Nodes()

	fmt.Fprintln(w, "# HELP energyd_breaker_state Sweep circuit breaker state (0=closed, 1=half-open, 2=open).")
	fmt.Fprintln(w, "# TYPE energyd_breaker_state gauge")
	for _, n := range nodes {
		state, _ := n.Breaker.Snapshot()
		deviceLine("energyd_breaker_state", n.ID, int(state))
	}
	fmt.Fprintln(w, "# HELP energyd_breaker_opens_total Times the sweep breaker has opened.")
	fmt.Fprintln(w, "# TYPE energyd_breaker_opens_total counter")
	for _, n := range nodes {
		_, opens := n.Breaker.Snapshot()
		deviceLine("energyd_breaker_opens_total", n.ID, opens)
	}

	// Calibration gauges cover calibrated devices only: a runtime add
	// still calibrating has no coverage to report yet.
	fmt.Fprintln(w, "# HELP energyd_calibration_coverage_fraction Fraction of calibration samples measured (1 = complete).")
	fmt.Fprintln(w, "# TYPE energyd_calibration_coverage_fraction gauge")
	for _, n := range nodes {
		if cal := n.Cal(); cal != nil {
			deviceLine("energyd_calibration_coverage_fraction", n.ID, cal.Coverage.Fraction())
		}
	}
	fmt.Fprintln(w, "# HELP energyd_calibration_retries_total Calibration measurement retries after transient faults.")
	fmt.Fprintln(w, "# TYPE energyd_calibration_retries_total counter")
	for _, n := range nodes {
		if cal := n.Cal(); cal != nil {
			deviceLine("energyd_calibration_retries_total", n.ID, cal.Coverage.Retried)
		}
	}
	fmt.Fprintln(w, "# HELP energyd_calibration_quarantined_total Calibration samples quarantined after permanent faults.")
	fmt.Fprintln(w, "# TYPE energyd_calibration_quarantined_total counter")
	for _, n := range nodes {
		if cal := n.Cal(); cal != nil {
			deviceLine("energyd_calibration_quarantined_total", n.ID, len(cal.Coverage.Quarantined))
		}
	}
	fmt.Fprintln(w, "# HELP energyd_calibration_screened_outliers_total Calibration samples excluded from the fit by the robust outlier screen.")
	fmt.Fprintln(w, "# TYPE energyd_calibration_screened_outliers_total counter")
	for _, n := range nodes {
		if cal := n.Cal(); cal != nil {
			deviceLine("energyd_calibration_screened_outliers_total", n.ID, cal.Coverage.ScreenedOutliers)
		}
	}

	if !s.legacy {
		fmt.Fprintln(w, "# HELP energyd_fleet_devices Devices in the serving fleet.")
		fmt.Fprintln(w, "# TYPE energyd_fleet_devices gauge")
		fmt.Fprintf(w, "energyd_fleet_devices %d\n", s.reg.Len())
		fmt.Fprintln(w, "# HELP energyd_fleet_epoch Registry membership generation; moves on every add, remove, and state change.")
		fmt.Fprintln(w, "# TYPE energyd_fleet_epoch counter")
		fmt.Fprintf(w, "energyd_fleet_epoch %d\n", s.reg.Epoch())
		fmt.Fprintln(w, "# HELP energyd_device_inflight_requests Requests currently holding each device.")
		fmt.Fprintln(w, "# TYPE energyd_device_inflight_requests gauge")
		for _, n := range nodes {
			deviceLine("energyd_device_inflight_requests", n.ID, n.Load())
		}
		fmt.Fprintln(w, "# HELP energyd_device_state Membership lifecycle state (0=active, 1=calibrating, 2=draining, 3=drained, 4=quarantined, 5=probing, 6=removed).")
		fmt.Fprintln(w, "# TYPE energyd_device_state gauge")
		for _, n := range nodes {
			deviceLine("energyd_device_state", n.ID, int(n.State()))
		}
		fmt.Fprintln(w, "# HELP energyd_device_cal_generation Calibration generation: 1 from boot, +1 per drift recalibration.")
		fmt.Fprintln(w, "# TYPE energyd_device_cal_generation counter")
		for _, n := range nodes {
			deviceLine("energyd_device_cal_generation", n.ID, n.CalGeneration())
		}
		fmt.Fprintln(w, "# HELP energyd_device_quarantines_total Times the health loop has quarantined each device.")
		fmt.Fprintln(w, "# TYPE energyd_device_quarantines_total counter")
		for _, n := range nodes {
			deviceLine("energyd_device_quarantines_total", n.ID, n.Quarantines())
		}
		fmt.Fprintln(w, "# HELP energyd_device_recalibrations_total Completed drift recalibrations per device.")
		fmt.Fprintln(w, "# TYPE energyd_device_recalibrations_total counter")
		for _, n := range nodes {
			deviceLine("energyd_device_recalibrations_total", n.ID, n.Recalibrations())
		}
	}
}

// resolveSetting maps the request's setting selector onto the board's
// DVFS tables. Exactly one of explicit frequencies or a named ID must be
// present.
func (s *Server) resolveSetting(explicit *SettingJSON, id string) (dvfs.Setting, error) {
	switch {
	case explicit != nil && id != "":
		return dvfs.Setting{}, errors.New("give either setting or setting_id, not both")
	case explicit != nil:
		core, err := dvfs.CorePoint(explicit.CoreMHz)
		if err != nil {
			return dvfs.Setting{}, err
		}
		mem, err := dvfs.MemPoint(explicit.MemMHz)
		if err != nil {
			return dvfs.Setting{}, err
		}
		return dvfs.Setting{Core: core, Mem: mem}, nil
	case id == "":
		return dvfs.Setting{}, errors.New("missing setting or setting_id")
	case strings.EqualFold(id, "max"):
		return dvfs.MaxSetting(), nil
	default:
		for i, s := range dvfs.ValidationSettings() {
			if strings.EqualFold(dvfs.ValidationID(i), id) {
				return s, nil
			}
		}
		//energylint:allow hotalloc(client-error exit, not the per-request success path)
		return dvfs.Setting{}, fmt.Errorf("unknown setting_id %q (want S1..S8 or max)", id)
	}
}

// occupancyOrDefault applies the FMM-like default occupancy.
func occupancyOrDefault(occ units.Ratio) units.Ratio {
	if occ == 0 {
		return 0.25
	}
	return occ
}

// decodeJSON parses a POST body, rejecting unknown fields so typos in
// profile keys surface as 400s instead of silently predicting zero.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		//energylint:allow hotalloc(malformed-body exit, not the per-request success path)
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorJSON is the wire form of every energyd error. DeviceID names the
// device that failed the request when one had been chosen; it is absent
// in single-device mode (the empty legacy ID), keeping legacy error
// bytes unchanged.
type ErrorJSON struct {
	Error    string `json:"error"`
	DeviceID string `json:"device_id,omitempty"`
}

func writeError(w http.ResponseWriter, code int, msg string) {
	//energylint:allow hotalloc(error responses are off the hot path; the boxed struct is the price of the shared writeJSON shape)
	writeJSON(w, code, ErrorJSON{Error: msg})
}

// writeErrorDev is writeError carrying the serving device's ID.
func writeErrorDev(w http.ResponseWriter, code int, msg, dev string) {
	markDevice(w, dev)
	//energylint:allow hotalloc(error responses are off the hot path; the boxed struct is the price of the shared writeJSON shape)
	writeJSON(w, code, ErrorJSON{Error: msg, DeviceID: dev})
}
