package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"dvfsroofline/internal/core"
	"dvfsroofline/internal/counters"
	"dvfsroofline/internal/dvfs"
	"dvfsroofline/internal/experiments"
	"dvfsroofline/internal/tegra"
	"dvfsroofline/internal/units"
)

// maxBodyBytes bounds request bodies; profiles are a handful of numbers.
const maxBodyBytes = 1 << 20

// ProfileJSON is the wire form of an operation profile: every field is
// an operation or word count for one kernel execution. Field names
// match the calibration CSV columns, so a row of samples.csv maps
// directly onto a request body. The unit types marshal exactly like the
// raw floats they replaced, so no wire byte moved.
type ProfileJSON struct {
	SP          units.Count `json:"sp,omitempty"`           // single-precision flop count
	DPFMA       units.Count `json:"dp_fma,omitempty"`       // double-precision FMA count
	DPAdd       units.Count `json:"dp_add,omitempty"`       // double-precision add count
	DPMul       units.Count `json:"dp_mul,omitempty"`       // double-precision mul count
	Int         units.Count `json:"int,omitempty"`          // integer instruction count
	SharedWords units.Count `json:"shared_words,omitempty"` // shared-memory words
	L1Words     units.Count `json:"l1_words,omitempty"`     // L1 words
	L2Words     units.Count `json:"l2_words,omitempty"`     // L2 words
	DRAMWords   units.Count `json:"dram_words,omitempty"`   // DRAM words
}

func (p ProfileJSON) profile() counters.Profile {
	return counters.Profile{
		SP:    float64(p.SP),
		DPFMA: float64(p.DPFMA), DPAdd: float64(p.DPAdd), DPMul: float64(p.DPMul),
		Int:         float64(p.Int),
		SharedWords: float64(p.SharedWords), L1Words: float64(p.L1Words),
		L2Words: float64(p.L2Words), DRAMWords: float64(p.DRAMWords),
	}
}

// SettingJSON selects a DVFS setting by its two frequencies; voltages
// follow from the board's tables, as on the real Tegra K1.
type SettingJSON struct {
	CoreMHz units.MegaHertz `json:"core_mhz"`
	MemMHz  units.MegaHertz `json:"mem_mhz"`
}

// SettingInfo is the wire form of a resolved setting.
type SettingInfo struct {
	CoreMHz units.MegaHertz `json:"core_mhz"`
	CoreMV  units.MilliVolt `json:"core_mv"`
	MemMHz  units.MegaHertz `json:"mem_mhz"`
	MemMV   units.MilliVolt `json:"mem_mv"`
}

func settingInfo(s dvfs.Setting) SettingInfo {
	return SettingInfo{
		CoreMHz: s.Core.FreqMHz, CoreMV: s.Core.VoltageMV,
		MemMHz: s.Mem.FreqMHz, MemMV: s.Mem.VoltageMV,
	}
}

// PredictRequest asks for the Eq. 9 energy of one operation profile at
// one DVFS setting. The setting comes either as explicit frequencies or
// as a named ID ("S1".."S8" from Table IV, or "max"). When time_s is
// zero the execution time is simulated on the device at the requested
// occupancy (default 0.25, the paper's FMM operating point).
type PredictRequest struct {
	Profile   ProfileJSON  `json:"profile"`
	Setting   *SettingJSON `json:"setting,omitempty"`
	SettingID string       `json:"setting_id,omitempty"`
	TimeS     units.Second `json:"time_s,omitempty"`
	Occupancy units.Ratio  `json:"occupancy,omitempty"`
}

// PartsJSON decomposes a prediction by component, in joules.
type PartsJSON struct {
	SP       units.Joule `json:"sp"`
	DP       units.Joule `json:"dp"`
	Int      units.Joule `json:"int"`
	SM       units.Joule `json:"sm"`
	L2       units.Joule `json:"l2"`
	DRAM     units.Joule `json:"dram"`
	Constant units.Joule `json:"constant"`
	Compute  units.Joule `json:"compute"`
	Data     units.Joule `json:"data"`
}

func partsJSON(p core.Parts) PartsJSON {
	return PartsJSON{
		SP: p.SP, DP: p.DP, Int: p.Int, SM: p.SM, L2: p.L2, DRAM: p.DRAM,
		Constant: p.Constant, Compute: p.Compute(), Data: p.Data(),
	}
}

// PredictResponse is the answer to a /v1/predict request.
type PredictResponse struct {
	Setting     SettingInfo  `json:"setting"`
	TimeS       units.Second `json:"time_s"`
	PredictedJ  units.Joule  `json:"predicted_j"`
	Parts       PartsJSON    `json:"parts"`
	ConstPowerW units.Watt   `json:"const_power_w"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	setting, err := s.resolveSetting(req.Setting, req.SettingID)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	prof := req.Profile.profile()
	t := req.TimeS
	if t == 0 {
		wl := tegra.Workload{Profile: prof, Occupancy: occupancyOrDefault(req.Occupancy)}
		if err := wl.Validate(); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		t = s.dev.Execute(wl, setting).Time
	} else if t < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("negative time_s %g", t))
		return
	}
	parts := s.cal.Model.PredictParts(prof, setting, t)
	writeJSON(w, http.StatusOK, PredictResponse{
		Setting:     settingInfo(setting),
		TimeS:       t,
		PredictedJ:  parts.Total(),
		Parts:       partsJSON(parts),
		ConstPowerW: s.cal.Model.ConstPower(setting),
	})
}

// AutotuneRequest asks for the energy-optimal (f_core, f_mem) pair for
// one workload. grid selects the candidate set: "calibration" (default,
// the paper's 16 measured settings) or "full" (all 105 permutations).
// timeout_s bounds the sweep; it combines with the server-wide cap and
// the client's connection lifetime, whichever ends first.
type AutotuneRequest struct {
	Profile   ProfileJSON  `json:"profile"`
	Occupancy units.Ratio  `json:"occupancy,omitempty"`
	Grid      string       `json:"grid,omitempty"`
	TimeoutS  units.Second `json:"timeout_s,omitempty"`
}

// PickJSON reports one strategy's choice over the sweep.
type PickJSON struct {
	Setting    SettingInfo  `json:"setting"`
	TimeS      units.Second `json:"time_s"`
	PredictedJ units.Joule  `json:"predicted_j"`
	MeasuredJ  units.Joule  `json:"measured_j"`
}

// AutotuneResponse is the answer to a /v1/autotune request. Extra-energy
// percentages are relative to the measured-minimum candidate, matching
// the paper's Table II "energy lost" definition. Degraded marks an
// answer served stale from the cache while the sweep breaker was open.
type AutotuneResponse struct {
	Grid                 string        `json:"grid"`
	Candidates           int           `json:"candidates"`
	Cached               bool          `json:"cached"`
	Degraded             bool          `json:"degraded"`
	Model                PickJSON      `json:"model"`
	TimeOracle           PickJSON      `json:"time_oracle"`
	MeasuredMin          PickJSON      `json:"measured_min"`
	ModelExtraEnergyPct  units.Percent `json:"model_extra_energy_pct"`
	OracleExtraEnergyPct units.Percent `json:"oracle_extra_energy_pct"`
}

func (s *Server) handleAutotune(w http.ResponseWriter, r *http.Request) {
	var req AutotuneRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	gridName := req.Grid
	if gridName == "" {
		gridName = "calibration"
	}
	grid, ok := s.grids[gridName]
	if !ok {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown grid %q (want \"calibration\" or \"full\")", gridName))
		return
	}
	wl := tegra.Workload{Profile: req.Profile.profile(), Occupancy: occupancyOrDefault(req.Occupancy)}
	if err := wl.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// The request deadline propagates into the sweep pipeline: client
	// disconnects and timeouts cancel the in-flight forEach between
	// units of work.
	timeout := s.timeout
	if req.TimeoutS > 0 && time.Duration(float64(req.TimeoutS)*float64(time.Second)) < timeout {
		timeout = time.Duration(float64(req.TimeoutS) * float64(time.Second))
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	key := autotuneKey(gridName, wl, s.cfg.Seed)
	if !s.breaker.allow() {
		// Degraded mode: the breaker is open, so no fresh sweep runs.
		// A stale cached sweep is still exactly the answer a fresh one
		// would give (sweeps are deterministic in the key), so serve it
		// flagged; with nothing cached there is nothing safe to say.
		if val, ok := s.cache.Get(key); ok {
			s.metrics.cacheHit()
			s.metrics.degradedHit()
			resp := *val.(*AutotuneResponse)
			resp.Cached = true
			resp.Degraded = true
			writeJSON(w, http.StatusOK, resp)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "sweep breaker open and no cached sweep for this workload")
		return
	}
	val, hit, err := s.cache.Do(ctx, key, func() (any, error) {
		cands, err := experiments.SweepWorkload(ctx, s.dev, s.cfg, wl, grid)
		if err != nil {
			return nil, err
		}
		return s.scoreSweep(gridName, cands), nil
	})
	if hit {
		s.metrics.cacheHit()
		s.breaker.release() // no sweep ran; free any half-open probe slot
	} else {
		s.metrics.cacheMiss()
		// Feed the breaker from sweeps this request actually ran. A
		// client cancellation says nothing about the sweep path's
		// health, so it carries no signal either way.
		switch {
		case err == nil:
			s.breaker.success()
		case errors.Is(err, context.Canceled):
		default:
			s.breaker.failure()
		}
	}
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, "sweep deadline exceeded")
		case errors.Is(err, context.Canceled):
			writeError(w, http.StatusServiceUnavailable, "sweep cancelled")
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	resp := *val.(*AutotuneResponse)
	resp.Cached = hit
	writeJSON(w, http.StatusOK, resp)
}

// scoreSweep runs the three pickers of §II-E over one finished sweep.
func (s *Server) scoreSweep(gridName string, cands []core.Candidate) *AutotuneResponse {
	m := s.cal.Model
	pick := func(i int) PickJSON {
		c := cands[i]
		return PickJSON{
			Setting:    settingInfo(c.Setting),
			TimeS:      c.Time,
			PredictedJ: m.Predict(c.Profile, c.Setting, c.Time),
			MeasuredJ:  c.MeasuredEnergy,
		}
	}
	model := pick(m.PickModelMinEnergy(cands))
	oracle := pick(core.PickTimeOracle(cands))
	best := pick(core.PickMeasuredMin(cands))
	extra := func(p PickJSON) units.Percent {
		if best.MeasuredJ == 0 {
			return 0
		}
		return units.Percent(100 * (p.MeasuredJ - best.MeasuredJ) / best.MeasuredJ)
	}
	return &AutotuneResponse{
		Grid:                 gridName,
		Candidates:           len(cands),
		Model:                model,
		TimeOracle:           oracle,
		MeasuredMin:          best,
		ModelExtraEnergyPct:  extra(model),
		OracleExtraEnergyPct: extra(oracle),
	}
}

// autotuneKey canonicalizes a sweep request. Two requests with the same
// key are guaranteed to produce identical sweeps (the measurement noise
// is seeded by setting identity and the campaign seed alone).
func autotuneKey(grid string, wl tegra.Workload, seed int64) string {
	p := wl.Profile
	return fmt.Sprintf("g=%s occ=%g seed=%d sp=%g fma=%g add=%g mul=%g int=%g sm=%g l1=%g l2=%g dram=%g",
		grid, wl.Occupancy, seed,
		p.SP, p.DPFMA, p.DPAdd, p.DPMul, p.Int,
		p.SharedWords, p.L1Words, p.L2Words, p.DRAMWords)
}

// CalibrationResponse summarizes the loaded calibration: the fitted
// constants, Table I, and the §II-D validation statistics.
type CalibrationResponse struct {
	Samples int            `json:"samples"`
	Model   ModelJSON      `json:"model"`
	TableI  []TableIRow    `json:"table_i"`
	Holdout CVSummaryJSON  `json:"holdout"`
	KFold   CVSummaryJSON  `json:"kfold_16"`
	Grids   map[string]int `json:"grids"`
}

// ModelJSON is the wire form of the fitted Eq. 9 constants. Dynamic
// coefficients are pJ/V², leakage coefficients W/V, PMisc plain watts —
// the JSON names carry the same unit tags so external analysts cannot
// confuse the V²-scaled and V-linear terms.
type ModelJSON struct {
	SPpJ   units.PicoJoulePerOpPerVoltSq `json:"sp_pj_v2"`
	DPpJ   units.PicoJoulePerOpPerVoltSq `json:"dp_pj_v2"`
	IntpJ  units.PicoJoulePerOpPerVoltSq `json:"int_pj_v2"`
	SMpJ   units.PicoJoulePerOpPerVoltSq `json:"sm_pj_v2"`
	L2pJ   units.PicoJoulePerOpPerVoltSq `json:"l2_pj_v2"`
	DRAMpJ units.PicoJoulePerOpPerVoltSq `json:"dram_pj_v2"`
	C1Proc units.WattPerVolt             `json:"c1_proc_w_v"` // W/V, processor leakage
	C1Mem  units.WattPerVolt             `json:"c1_mem_w_v"`  // W/V, memory leakage
	PMisc  units.Watt                    `json:"p_misc_w"`    // W, operation-independent
}

// TableIRow is one derived row of the paper's Table I.
type TableIRow struct {
	Type    string               `json:"type"`
	Setting SettingInfo          `json:"setting"`
	SPpJ    units.PicoJoulePerOp `json:"sp_pj"`
	DPpJ    units.PicoJoulePerOp `json:"dp_pj"`
	IntpJ   units.PicoJoulePerOp `json:"int_pj"`
	SMpJ    units.PicoJoulePerOp `json:"sm_pj"`
	L2pJ    units.PicoJoulePerOp `json:"l2_pj"`
	DRAMpJ  units.PicoJoulePerOp `json:"dram_pj"`
	ConstW  units.Watt           `json:"const_w"`
}

// CVSummaryJSON reports validation relative errors in percent.
type CVSummaryJSON struct {
	N      int           `json:"n"`
	Mean   units.Percent `json:"mean_pct"`
	Stddev units.Percent `json:"stddev_pct"`
	Min    units.Percent `json:"min_pct"`
	Max    units.Percent `json:"max_pct"`
}

func (s *Server) handleCalibration(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	m := s.cal.Model
	resp := CalibrationResponse{
		Samples: len(s.cal.Samples),
		Model: ModelJSON{
			SPpJ: m.SPpJ, DPpJ: m.DPpJ, IntpJ: m.IntpJ, SMpJ: m.SMpJ,
			L2pJ: m.L2pJ, DRAMpJ: m.DRAMpJ,
			C1Proc: m.C1Proc, C1Mem: m.C1Mem, PMisc: m.PMisc,
		},
		Holdout: cvSummary(s.cal.Holdout),
		KFold:   cvSummary(s.cal.KFold),
		Grids:   map[string]int{},
	}
	for name, grid := range s.grids {
		resp.Grids[name] = len(grid)
	}
	for _, row := range s.cal.TableI() {
		resp.TableI = append(resp.TableI, TableIRow{
			Type: row.Type, Setting: settingInfo(row.Setting),
			SPpJ: row.Eps.SP, DPpJ: row.Eps.DP, IntpJ: row.Eps.Int,
			SMpJ: row.Eps.SM, L2pJ: row.Eps.L2, DRAMpJ: row.Eps.DRAM,
			ConstW: row.Eps.ConstPower,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func cvSummary(r core.CVResult) CVSummaryJSON {
	p := r.Percent()
	return CVSummaryJSON{
		N:    p.N,
		Mean: units.Percent(p.Mean), Stddev: units.Percent(p.Stddev),
		Min: units.Percent(p.Min), Max: units.Percent(p.Max),
	}
}

// handleHealthz is liveness only: the process is up and holds a
// calibration. It stays 200 in degraded mode so orchestrators do not
// restart a daemon that is usefully serving stale answers.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"samples": len(s.cal.Samples),
	})
}

// handleReadyz is readiness: 503 while the sweep breaker is open, so
// load balancers steer fresh traffic away without the process being
// killed. The body carries the breaker state and calibration coverage
// for operators.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	state, _ := s.breaker.snapshot()
	code := http.StatusOK
	status := "ready"
	if state == breakerOpen {
		code = http.StatusServiceUnavailable
		status = "degraded"
	}
	writeJSON(w, code, map[string]any{
		"status":   status,
		"breaker":  state.String(),
		"samples":  len(s.cal.Samples),
		"coverage": s.cal.Coverage.Fraction(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.writeText(w)

	state, opens := s.breaker.snapshot()
	fmt.Fprintln(w, "# HELP energyd_breaker_state Sweep circuit breaker state (0=closed, 1=half-open, 2=open).")
	fmt.Fprintln(w, "# TYPE energyd_breaker_state gauge")
	fmt.Fprintf(w, "energyd_breaker_state %d\n", state)
	fmt.Fprintln(w, "# HELP energyd_breaker_opens_total Times the sweep breaker has opened.")
	fmt.Fprintln(w, "# TYPE energyd_breaker_opens_total counter")
	fmt.Fprintf(w, "energyd_breaker_opens_total %d\n", opens)

	cov := s.cal.Coverage
	fmt.Fprintln(w, "# HELP energyd_calibration_coverage_fraction Fraction of calibration samples measured (1 = complete).")
	fmt.Fprintln(w, "# TYPE energyd_calibration_coverage_fraction gauge")
	fmt.Fprintf(w, "energyd_calibration_coverage_fraction %g\n", cov.Fraction())
	fmt.Fprintln(w, "# HELP energyd_calibration_retries_total Calibration measurement retries after transient faults.")
	fmt.Fprintln(w, "# TYPE energyd_calibration_retries_total counter")
	fmt.Fprintf(w, "energyd_calibration_retries_total %d\n", cov.Retried)
	fmt.Fprintln(w, "# HELP energyd_calibration_quarantined_total Calibration samples quarantined after permanent faults.")
	fmt.Fprintln(w, "# TYPE energyd_calibration_quarantined_total counter")
	fmt.Fprintf(w, "energyd_calibration_quarantined_total %d\n", len(cov.Quarantined))
	fmt.Fprintln(w, "# HELP energyd_calibration_screened_outliers_total Calibration samples excluded from the fit by the robust outlier screen.")
	fmt.Fprintln(w, "# TYPE energyd_calibration_screened_outliers_total counter")
	fmt.Fprintf(w, "energyd_calibration_screened_outliers_total %d\n", cov.ScreenedOutliers)
}

// resolveSetting maps the request's setting selector onto the board's
// DVFS tables. Exactly one of explicit frequencies or a named ID must be
// present.
func (s *Server) resolveSetting(explicit *SettingJSON, id string) (dvfs.Setting, error) {
	switch {
	case explicit != nil && id != "":
		return dvfs.Setting{}, errors.New("give either setting or setting_id, not both")
	case explicit != nil:
		core, err := dvfs.CorePoint(explicit.CoreMHz)
		if err != nil {
			return dvfs.Setting{}, err
		}
		mem, err := dvfs.MemPoint(explicit.MemMHz)
		if err != nil {
			return dvfs.Setting{}, err
		}
		return dvfs.Setting{Core: core, Mem: mem}, nil
	case id == "":
		return dvfs.Setting{}, errors.New("missing setting or setting_id")
	case strings.EqualFold(id, "max"):
		return dvfs.MaxSetting(), nil
	default:
		for i, s := range dvfs.ValidationSettings() {
			if strings.EqualFold(dvfs.ValidationID(i), id) {
				return s, nil
			}
		}
		return dvfs.Setting{}, fmt.Errorf("unknown setting_id %q (want S1..S8 or max)", id)
	}
}

// occupancyOrDefault applies the FMM-like default occupancy.
func occupancyOrDefault(occ units.Ratio) units.Ratio {
	if occ == 0 {
		return 0.25
	}
	return occ
}

// decodeJSON parses a POST body, rejecting unknown fields so typos in
// profile keys surface as 400s instead of silently predicting zero.
func decodeJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
